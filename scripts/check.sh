#!/bin/sh
# Repo health check: formatting and the tier-1 gate, a race-detector pass
# over the packages with real concurrency (the simulated cluster, the
# solvers that run inside it, and the parallel experiment engine), a
# seeded chaos fault campaign under the race detector, short fuzz smokes
# over the seed corpora, the observation-disabled zero-allocation gate,
# a service integration gate (resilienced under a seeded resilience-load
# burst: queue-full rejections, byte-identical responses, clean drain),
# a chaos-fleet gate (a sharded 2k-scenario campaign byte-compared to
# the in-process oracle, plus an injected violation that must shrink
# server-side to a minimal scenario), and a benchdiff comparison against
# the most recent BENCH_*.json perf baseline.
set -eux

cd "$(dirname "$0")/.."

test -z "$(gofmt -l .)"
go build ./...
go test ./...
go vet ./...
go test -race ./internal/cluster/... ./internal/solver/... ./internal/experiments/... \
    ./internal/service/... ./internal/telemetry/...

# Flake audit: the chaos and service suites lean hardest on goroutine
# pools, httptest servers, and arrival-order-independent determinism
# contracts — run them five times under the race detector so ordering
# flakes surface here instead of once a week in CI.
go test -race -count=5 ./internal/chaos/... ./internal/service/...

# Chaos: a seeded fault campaign (all ten default schemes — the paper's
# eight plus ESR and LCR — 0-3 faults per scenario, full invariant
# battery) under the race detector. Any failure prints a replayable
# '-replay' flag string.
go run -race ./cmd/chaos -n 50 -seed 1

# Scheduler gate: the cooperative runtime must pass the concurrency and
# solver suites (deadlock diagnostics included) and render the same
# seeded chaos campaign byte-for-byte as the goroutine oracle. The SELL
# SpMV layout rides the same gate: both knobs on at once is the
# configuration furthest from the defaults.
sched_dir=$(mktemp -d)
go run ./cmd/chaos -n 50 -seed 1 > "$sched_dir/goroutine.out"
RES_SCHED=coop go run ./cmd/chaos -n 50 -seed 1 > "$sched_dir/coop.out"
cmp "$sched_dir/goroutine.out" "$sched_dir/coop.out"
rm -rf "$sched_dir"
RES_SCHED=coop RES_SPMV=sell go test ./internal/cluster/... ./internal/solver/... ./internal/experiments/...

# Fuzz smokes: a few seconds per target on top of the checked-in seed
# corpora (testdata/fuzz/). Coverage-guided mutation beyond the corpus;
# any crasher is written back as a new seed.
go test -run '^$' -fuzz '^FuzzCSRMulVec$' -fuzztime 5s ./internal/sparse
go test -run '^$' -fuzz '^FuzzSELLFromCSR$' -fuzztime 5s ./internal/sparse
go test -run '^$' -fuzz '^FuzzPartition$' -fuzztime 5s ./internal/sparse
go test -run '^$' -fuzz '^FuzzScenarioArgs$' -fuzztime 5s ./internal/chaos
go test -run '^$' -fuzz '^FuzzCanonicalKey$' -fuzztime 5s ./internal/service
go test -run '^$' -fuzz '^FuzzSchemeSpec$' -fuzztime 5s ./internal/service

# The hot paths must stay allocation-free with no recorder attached
# (attaching one may allocate for span storage; that variant is measured
# by BenchmarkCGIterationObserved but not gated). Gated under both
# schedulers and both SpMV layouts: the CG iteration on the goroutine
# default and on the cooperative scheduler, plus the blocked SELL kernel.
go test -run '^$' -bench '^BenchmarkCGIteration(Coop)?$|^BenchmarkSpMVSELL$' \
    -benchmem -benchtime 2000x . |
    awk '/^BenchmarkCGIteration[^O]|^BenchmarkSpMVSELL/ { if ($(NF-1) != 0) { print "ALLOCATING HOT PATH: " $0; bad = 1 } found++ }
         END { exit (bad || found != 3) }'

# The cache serving hot paths (hit, miss, single-flight join) run once
# per request on the daemon and must also stay allocation-free.
go test -run '^$' -bench '^BenchmarkCacheGetHit$|^BenchmarkCacheGetMiss$|^BenchmarkSingleflightJoin$' \
    -benchmem -benchtime 2000x ./internal/service/cache |
    awk '/^Benchmark/ { if ($(NF-1) != 0) { print "ALLOCATING HOT PATH: " $0; bad = 1 } found++ }
         END { exit (bad || found != 3) }'

# The telemetry hot paths run on every request and every histogram
# sample; they must stay allocation-free so metrics can never perturb
# what they measure.
go test -run '^$' -bench '^BenchmarkHistogramRecord$|^BenchmarkSpanStartEnd$' \
    -benchmem -benchtime 2000x ./internal/telemetry |
    awk '/^Benchmark/ { if ($(NF-1) != 0) { print "ALLOCATING HOT PATH: " $0; bad = 1 } found++ }
         END { exit (bad || found != 2) }'

# Fabric gate: boot a full solve topology — one resilience-router over
# two deliberately small resilienced replicas — then drive three phases
# through the router: a sleep-job burst that must hit queue-full (429 +
# Retry-After forwarded, retried to completion), a seeded scenario
# stream whose responses must be byte-identical to the offline oracle,
# and a duplicate-heavy zipf stream (20k requests over 96 unique jobs)
# that must clear a 50% fleet cache hit rate with every response still
# byte-identical. Finish with a SIGTERM drain of all three processes,
# each of which must exit clean.
svc_dir=$(mktemp -d)
go build -o "$svc_dir/resilienced" ./cmd/resilienced
go build -o "$svc_dir/resilience-router" ./cmd/resilience-router
go build -o "$svc_dir/resilience-load" ./cmd/resilience-load

wait_addr() {
    addr=''
    for _ in $(seq 1 100); do
        addr=$(sed -n 's#.*listening on http://\([^ ]*\).*#\1#p' "$1" | head -n 1)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    test -n "$addr"
    echo "$addr"
}

"$svc_dir/resilienced" -addr 127.0.0.1:0 -workers 2 -queue 2 -retry-after 1s \
    > "$svc_dir/replica1.log" 2>&1 &
rep1_pid=$!
"$svc_dir/resilienced" -addr 127.0.0.1:0 -workers 2 -queue 2 -retry-after 1s \
    > "$svc_dir/replica2.log" 2>&1 &
rep2_pid=$!
rep1_addr=$(wait_addr "$svc_dir/replica1.log")
rep2_addr=$(wait_addr "$svc_dir/replica2.log")

"$svc_dir/resilience-router" -addr 127.0.0.1:0 \
    -replicas "http://$rep1_addr,http://$rep2_addr" -health-every 500ms \
    > "$svc_dir/router.log" 2>&1 &
router_pid=$!
router_addr=$(wait_addr "$svc_dir/router.log")

"$svc_dir/resilience-load" -addr "http://$router_addr" -n 16 -c 8 -seed 1 \
    -burst 16 -sleep-ms 200 \
    -dup-jobs 20000 -dup-unique 96 -dup-zipf 1.2 -min-hit-rate 0.5

# The router's fleet-aggregate hit counter must have moved.
curl -s "http://$router_addr/metrics" |
    awk '/^resilience_router_cache_hits_total / { found = ($2 > 0) } END { exit found ? 0 : 1 }' ||
    { echo "router reported no cache hits"; exit 1; }

# Fleet gate: shard a bounded 2k-scenario chaos campaign across the same
# router + two replicas and byte-compare the indexed verdict stream
# against the in-process oracle — sharding, batching, caching, and
# arrival order must not change one byte. Then inject a violation
# (-break convergence) and require the server-side shrinker to reduce it
# to a minimal scenario of at most 3 fault events, and the router's
# campaign counters to have seen the whole campaign.
go build -o "$svc_dir/chaos-fleet" ./cmd/chaos-fleet
"$svc_dir/chaos-fleet" -oracle -n 2000 -seed 1 -verdicts-out "$svc_dir/oracle.verdicts"
"$svc_dir/chaos-fleet" -addr "http://$router_addr" -n 2000 -seed 1 \
    -verdicts-out "$svc_dir/fleet.verdicts"
cmp "$svc_dir/oracle.verdicts" "$svc_dir/fleet.verdicts"

broken_rc=0
"$svc_dir/chaos-fleet" -addr "http://$router_addr" -n 200 -seed 1 -break convergence \
    > "$svc_dir/broken.out" 2>&1 || broken_rc=$?
cat "$svc_dir/broken.out"
test "$broken_rc" -eq 1
grep -q 'minimal failing scenario' "$svc_dir/broken.out"
awk '/-faults/ { for (i = 1; i <= NF; i++) if ($i == "-faults") { n = split($(i+1), a, ","); if (n > 3) { print "shrunk scenario has " n " fault events: " $0; bad = 1 } } }
     END { exit bad }' "$svc_dir/broken.out"

curl -s "http://$router_addr/metrics" |
    awk '/^resilience_router_campaign_jobs_total / { jobs = $2 }
         /^resilience_router_campaign_verdicts_total / { v = $2 }
         /^resilience_router_campaign_fail_total / { f = $2 }
         END { exit (jobs >= 2200 && v >= 2200 && f > 0) ? 0 : 1 }' ||
    { echo "router campaign counters did not account for the fleet campaign"; exit 1; }

# Telemetry gate: at each replica, the wall-clock solve histogram must
# account for exactly the completed jobs (no sample lost, none double-
# counted), and the router's bucket-merged fleet histogram must equal
# the sum over replicas.
completed_of() {
    curl -s "http://$1/metrics" |
        awk '/^resilienced_jobs_completed_total / { print $2 }'
}
hist_count_of() {
    curl -s "http://$1/metrics" |
        awk '/^resilienced_solve_wall_seconds_count\{/ { s += $2 } END { print s + 0 }'
}
rep1_done=$(completed_of "$rep1_addr")
rep2_done=$(completed_of "$rep2_addr")
test "$(hist_count_of "$rep1_addr")" -eq "$rep1_done"
test "$(hist_count_of "$rep2_addr")" -eq "$rep2_done"
fleet_count=$(curl -s "http://$router_addr/metrics" |
    awk '/^resilience_router_fleet_solve_wall_seconds_count / { print $2 }')
test "$fleet_count" -eq "$((rep1_done + rep2_done))"

kill -TERM "$router_pid" "$rep1_pid" "$rep2_pid"
wait "$router_pid" "$rep1_pid" "$rep2_pid"
grep -q 'drained clean' "$svc_dir/router.log"
grep -q 'drained clean' "$svc_dir/replica1.log"
grep -q 'drained clean' "$svc_dir/replica2.log"

# Flight-recorder gate: kill a job mid-solve (1ms deadline on a 5s
# sleep) against a replica with a dump directory configured. The 504
# must produce a crash dump on disk naming the request ID.
"$svc_dir/resilienced" -addr 127.0.0.1:0 -workers 1 -queue 2 \
    -flight-dir "$svc_dir/flight" > "$svc_dir/flightrep.log" 2>&1 &
flight_pid=$!
flight_addr=$(wait_addr "$svc_dir/flightrep.log")
code=$(curl -s -o /dev/null -w '%{http_code}' \
    -H 'X-Request-Id: check-flight-1' -H 'Content-Type: application/json' \
    -d '{"sleep_ms":5000,"timeout_ms":1}' "http://$flight_addr/solve")
test "$code" -eq 504
grep -l 'check-flight-1' "$svc_dir"/flight/flight-resilienced-*.json
kill -TERM "$flight_pid"
wait "$flight_pid"
grep -q 'drained clean' "$svc_dir/flightrep.log"
rm -rf "$svc_dir"

# Perf trajectory: fail on ns/op, allocs/op or bytes/op regressions
# against the latest recorded baseline. Kernel-only (fast); the timing
# threshold is generous because CI machines are noisy.
baseline=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -n 1 || true)
if [ -n "$baseline" ]; then
    go run ./cmd/benchdiff -out '' -baseline "$baseline" -threshold 0.5 -tolerance-bytes 64
fi
