#!/bin/sh
# Repo health check: formatting and the tier-1 gate, a race-detector pass
# over the packages with real concurrency (the simulated cluster, the
# solvers that run inside it, and the parallel experiment engine), the
# observation-disabled zero-allocation gate, and a benchdiff comparison
# against the most recent BENCH_*.json perf baseline.
set -eux

cd "$(dirname "$0")/.."

test -z "$(gofmt -l .)"
go build ./...
go test ./...
go vet ./...
go test -race ./internal/cluster/... ./internal/solver/... ./internal/experiments/...

# The hot path must stay allocation-free with no recorder attached
# (attaching one may allocate for span storage; that variant is measured
# by BenchmarkCGIterationObserved but not gated).
go test -run '^$' -bench '^BenchmarkCGIteration$' -benchmem -benchtime 2000x . |
    grep '^BenchmarkCGIteration[^O]' | grep -q ' 0 allocs/op'

# Perf trajectory: fail on ns/op, allocs/op or bytes/op regressions
# against the latest recorded baseline. Kernel-only (fast); the timing
# threshold is generous because CI machines are noisy.
baseline=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -n 1 || true)
if [ -n "$baseline" ]; then
    go run ./cmd/benchdiff -out '' -baseline "$baseline" -threshold 0.5 -tolerance-bytes 64
fi
