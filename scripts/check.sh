#!/bin/sh
# Repo health check: formatting and the tier-1 gate, a race-detector pass
# over the packages with real concurrency (the simulated cluster, the
# solvers that run inside it, and the parallel experiment engine), a
# seeded chaos fault campaign under the race detector, short fuzz smokes
# over the seed corpora, the observation-disabled zero-allocation gate,
# a service integration gate (resilienced under a seeded resilience-load
# burst: queue-full rejections, byte-identical responses, clean drain),
# and a benchdiff comparison against the most recent BENCH_*.json perf
# baseline.
set -eux

cd "$(dirname "$0")/.."

test -z "$(gofmt -l .)"
go build ./...
go test ./...
go vet ./...
go test -race ./internal/cluster/... ./internal/solver/... ./internal/experiments/...

# Chaos: a seeded fault campaign (all eight default schemes, 0-3 faults
# per scenario, full invariant battery) under the race detector. Any
# failure prints a replayable '-replay' flag string.
go run -race ./cmd/chaos -n 50 -seed 1

# Fuzz smokes: a few seconds per target on top of the checked-in seed
# corpora (testdata/fuzz/). Coverage-guided mutation beyond the corpus;
# any crasher is written back as a new seed.
go test -run '^$' -fuzz '^FuzzCSRMulVec$' -fuzztime 5s ./internal/sparse
go test -run '^$' -fuzz '^FuzzPartition$' -fuzztime 5s ./internal/sparse
go test -run '^$' -fuzz '^FuzzScenarioArgs$' -fuzztime 5s ./internal/chaos

# The hot path must stay allocation-free with no recorder attached
# (attaching one may allocate for span storage; that variant is measured
# by BenchmarkCGIterationObserved but not gated).
go test -run '^$' -bench '^BenchmarkCGIteration$' -benchmem -benchtime 2000x . |
    grep '^BenchmarkCGIteration[^O]' | grep -q ' 0 allocs/op'

# Service gate: boot resilienced deliberately small (2 workers, 2 queue
# slots), flood it with a sleep-job burst that must hit queue-full (429 +
# Retry-After, retried to completion), then replay a seeded scenario
# stream whose responses must be byte-identical to the offline oracle;
# finish with a SIGTERM drain that must exit clean.
svc_dir=$(mktemp -d)
go build -o "$svc_dir/resilienced" ./cmd/resilienced
go build -o "$svc_dir/resilience-load" ./cmd/resilience-load
"$svc_dir/resilienced" -addr 127.0.0.1:0 -workers 2 -queue 2 -retry-after 1s \
    > "$svc_dir/resilienced.log" 2>&1 &
svc_pid=$!
svc_addr=''
for _ in $(seq 1 100); do
    svc_addr=$(sed -n 's#.*listening on http://\([^ ]*\).*#\1#p' "$svc_dir/resilienced.log")
    [ -n "$svc_addr" ] && break
    sleep 0.1
done
test -n "$svc_addr"
"$svc_dir/resilience-load" -addr "http://$svc_addr" -n 16 -c 8 -seed 1 -burst 8 -sleep-ms 200
kill -TERM "$svc_pid"
wait "$svc_pid"
grep -q 'drained clean' "$svc_dir/resilienced.log"
rm -rf "$svc_dir"

# Perf trajectory: fail on ns/op, allocs/op or bytes/op regressions
# against the latest recorded baseline. Kernel-only (fast); the timing
# threshold is generous because CI machines are noisy.
baseline=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -n 1 || true)
if [ -n "$baseline" ]; then
    go run ./cmd/benchdiff -out '' -baseline "$baseline" -threshold 0.5 -tolerance-bytes 64
fi
