package resilience

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper, each regenerating the artifact through the experiment
// runners, plus micro-benchmarks of the core kernels. Scale is selected
// with RES_SCALE (tiny|ci|paper, default tiny so `go test -bench=.`
// completes quickly; use ci to reproduce EXPERIMENTS.md).
//
//	go test -bench=BenchmarkFig5 -benchmem
//	RES_SCALE=ci go test -bench=. -benchtime=1x -timeout 2h

import (
	"fmt"
	"os"
	"testing"

	"resilience/internal/cluster"
	"resilience/internal/platform"
	"resilience/internal/power"
	"resilience/internal/solver"
	"resilience/internal/sparse"
	"resilience/internal/vec"
)

func benchScale() string {
	if s := os.Getenv("RES_SCALE"); s != "" {
		return s
	}
	return "tiny"
}

// benchExperiment runs one paper artifact per iteration and reports its
// output on the first run.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(id, scale)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && testing.Verbose() {
			fmt.Println(res.String())
		}
	}
}

// --- paper artifacts ----------------------------------------------------

func BenchmarkFig1MTBFProjection(b *testing.B)      { benchExperiment(b, "fig1") }
func BenchmarkFig3RecoveryCost(b *testing.B)        { benchExperiment(b, "fig3") }
func BenchmarkFig4CGConstruction(b *testing.B)      { benchExperiment(b, "fig4") }
func BenchmarkTable3Catalog(b *testing.B)           { benchExperiment(b, "tab3") }
func BenchmarkTable4Parallelism(b *testing.B)       { benchExperiment(b, "tab4") }
func BenchmarkFig5IterationsPerMatrix(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig6ResidualHistories(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7DVFSSavings(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkTable5ResilienceCost(b *testing.B)    { benchExperiment(b, "tab5") }
func BenchmarkFig8BestScheme(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkTable6ModelValidation(b *testing.B)   { benchExperiment(b, "tab6") }
func BenchmarkFig9WeakScaling(b *testing.B)         { benchExperiment(b, "fig9") }

// --- ablations (extensions beyond the paper) ----------------------------

func BenchmarkAblationCkptInterval(b *testing.B)     { benchExperiment(b, "ablation-interval") }
func BenchmarkAblationLocalTol(b *testing.B)         { benchExperiment(b, "ablation-tol") }
func BenchmarkAblationDVFSFloor(b *testing.B)        { benchExperiment(b, "ablation-dvfs") }
func BenchmarkAblationTMR(b *testing.B)              { benchExperiment(b, "ablation-tmr") }
func BenchmarkAblationJacobiPCG(b *testing.B)        { benchExperiment(b, "ablation-pcg") }
func BenchmarkAblationMultilevelCkpt(b *testing.B)   { benchExperiment(b, "ablation-multilevel") }
func BenchmarkAblationSDCLatency(b *testing.B)       { benchExperiment(b, "ablation-sdc") }
func BenchmarkAblationPipelinedCG(b *testing.B)      { benchExperiment(b, "ablation-pipeline") }
func BenchmarkAblationConstructionCost(b *testing.B) { benchExperiment(b, "ablation-construction") }
func BenchmarkAblationOverlap(b *testing.B)          { benchExperiment(b, "ablation-overlap") }

// --- kernel micro-benchmarks --------------------------------------------

func BenchmarkSolveFaultFree(b *testing.B) {
	a := Laplacian2D(48)
	rhs, _ := RHS(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Solve(a, rhs, SolveOptions{Ranks: 8, Tol: 1e-10})
		if err != nil || !rep.Converged {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveWithLIRecovery(b *testing.B) {
	a := Laplacian2D(48)
	rhs, _ := RHS(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Solve(a, rhs, SolveOptions{Scheme: "LI-DVFS", Ranks: 8, Tol: 1e-10, Faults: 3})
		if err != nil || !rep.Converged {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveWithCheckpointing(b *testing.B) {
	a := Laplacian2D(48)
	rhs, _ := RHS(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Solve(a, rhs, SolveOptions{Scheme: "CR-M", Ranks: 8, Tol: 1e-10, Faults: 3, CkptEvery: 25})
		if err != nil || !rep.Converged {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpMV(b *testing.B) {
	a := Laplacian2D(128) // 16K rows, ~80K nnz
	x := make([]float64, a.Rows)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i)
	}
	b.SetBytes(int64(8 * a.NNZ()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(y, x)
	}
}

// BenchmarkSpMVSELL is BenchmarkSpMV with the SELL-C-σ blocked layout:
// same matrix, bitwise-identical products, so the two rows compare the
// kernels directly.
func BenchmarkSpMVSELL(b *testing.B) {
	a := Laplacian2D(128)
	s := sparse.NewSELLFromCSR(a, sparse.DefaultSELLC, sparse.DefaultSELLSigma)
	x := make([]float64, a.Rows)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i)
	}
	b.SetBytes(int64(8 * a.NNZ()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MulVec(y, x)
	}
}

// BenchmarkAllreduceScalar measures one scalar allreduce across 4
// simulated ranks per op. The setup cost of the cluster is amortized over
// b.N; steady state must be 0 allocs/op (the scalar fast path never
// touches the heap).
func BenchmarkAllreduceScalar(b *testing.B) {
	b.ReportAllocs()
	_, err := cluster.Run(4, platform.Default(), power.NewMeter(false), func(c *cluster.Comm) error {
		for i := 0; i < b.N; i++ {
			c.AllreduceScalarSum(float64(c.Rank()))
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHaloExchange measures one collective halo exchange on the
// distributed operator (4 ranks, 1024-row stencil): the per-iteration
// communication cost every MulVecDist pays.
func BenchmarkHaloExchange(b *testing.B) {
	a := Laplacian2D(32)
	const ranks = 4
	part := sparse.NewPartition(a.Rows, ranks)
	b.ReportAllocs()
	b.ResetTimer()
	_, err := cluster.Run(ranks, platform.Default(), power.NewMeter(false), func(c *cluster.Comm) error {
		op := solver.NewLocalOp(c, a, part)
		x := make([]float64, op.N)
		for i := range x {
			x[i] = float64(i % 13)
		}
		for i := 0; i < b.N; i++ {
			op.GatherHalo(c, x)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// benchMulVecDist measures the distributed SpMV on the fused or
// overlapped path; both compute bitwise-identical products, so any
// wall-clock gap between them is pure kernel-dispatch overhead.
func benchMulVecDist(b *testing.B, overlap bool) {
	a := Laplacian2D(32)
	const ranks = 4
	part := sparse.NewPartition(a.Rows, ranks)
	b.ReportAllocs()
	b.ResetTimer()
	_, err := cluster.Run(ranks, platform.Default(), power.NewMeter(false), func(c *cluster.Comm) error {
		op := solver.NewLocalOp(c, a, part)
		op.SetOverlap(overlap)
		x := make([]float64, op.N)
		y := make([]float64, op.N)
		for i := range x {
			x[i] = float64(i % 13)
		}
		for i := 0; i < b.N; i++ {
			op.MulVecDist(c, y, x)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkMulVecDistFused(b *testing.B)   { benchMulVecDist(b, false) }
func BenchmarkMulVecDistOverlap(b *testing.B) { benchMulVecDist(b, true) }

// BenchmarkCGIteration measures one full distributed CG inner iteration
// (halo exchange + SpMV, two dots, two scalar allreduces, the fused
// axpy/dot updates) on 4 ranks per op. The Krylov recurrence is
// re-anchored from a zeroed iterate every 50 iterations with pure
// copies, so the loop runs indefinitely; steady state must be 0
// allocs/op.
func BenchmarkCGIteration(b *testing.B) { benchCGIteration(b, false, cluster.SchedAuto) }

// BenchmarkCGIterationObserved is the same loop with a span recorder
// attached: the cost of observability when it is on. Span appends
// amortize but are not allocation-free, so only the tracing-off variant
// is part of the 0 allocs/op gate.
func BenchmarkCGIterationObserved(b *testing.B) { benchCGIteration(b, true, cluster.SchedAuto) }

// BenchmarkCGIterationCoop pins the cooperative scheduler explicitly
// (BenchmarkCGIteration resolves RES_SCHED, defaulting to goroutine).
// The 0 allocs/op gate covers it: cooperative handoffs must stay off the
// heap.
func BenchmarkCGIterationCoop(b *testing.B) { benchCGIteration(b, false, cluster.SchedCoop) }

func benchCGIteration(b *testing.B, observed bool, mode cluster.SchedMode) {
	a := Laplacian2D(32) // 1024 rows
	rhs, _ := RHS(a)
	const ranks = 4
	part := sparse.NewPartition(a.Rows, ranks)
	rt := cluster.NewRuntimeOpts(ranks, platform.Default(), power.NewMeter(false), cluster.Options{Sched: mode})
	if observed {
		rt.SetRecorder(NewRecorder())
	}
	b.ReportAllocs()
	b.ResetTimer()
	_, err := rt.Run(func(c *cluster.Comm) error {
		op := solver.NewLocalOp(c, a, part)
		n := op.N
		bl := make([]float64, n)
		copy(bl, part.Slice(rhs, c.Rank()))
		x := make([]float64, n)
		r := make([]float64, n)
		p := make([]float64, n)
		q := make([]float64, n)
		restart := func() float64 {
			vec.Zero(x)
			op.MulVecDist(c, r, x)
			vec.Sub(r, bl, r)
			copy(p, r)
			return c.AllreduceScalarSum(vec.Dot(r, r))
		}
		rho := restart()
		for i := 0; i < b.N; i++ {
			if i%50 == 49 {
				rho = restart()
			}
			op.MulVecDist(c, q, p)
			pq := c.AllreduceScalarSum(vec.Dot(p, q))
			alpha := rho / pq
			vec.Axpy(alpha, p, x)
			rhoNew := c.AllreduceScalarSum(vec.AxpyDot(-alpha, q, r))
			vec.Xpby(r, rhoNew/rho, p)
			rho = rhoNew
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
