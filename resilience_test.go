package resilience

import (
	"math"
	"testing"

	"resilience/internal/fault"
)

func TestSolveFaultFree(t *testing.T) {
	a := Laplacian2D(16)
	b, xTrue := RHS(a)
	rep, err := Solve(a, b, SolveOptions{Ranks: 4, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("did not converge")
	}
	var maxErr float64
	for i := range xTrue {
		if d := math.Abs(rep.Solution[i] - xTrue[i]); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 1e-6 {
		t.Errorf("solution error %g", maxErr)
	}
}

func TestSolveAllPublicSchemes(t *testing.T) {
	a := Laplacian2D(12)
	b, _ := RHS(a)
	for _, scheme := range SchemeNames() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			opts := SolveOptions{Scheme: scheme, Ranks: 4, Tol: 1e-9}
			if scheme != "FF" {
				opts.Faults = 2
			}
			rep, err := Solve(a, b, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Converged {
				t.Errorf("%s did not converge (relres %g)", scheme, rep.RelRes)
			}
			if scheme != "FF" && len(rep.Faults) != 2 {
				t.Errorf("%s saw %d faults", scheme, len(rep.Faults))
			}
		})
	}
}

func TestSolveRejectsConflictingFaultModes(t *testing.T) {
	a := Laplacian2D(8)
	b, _ := RHS(a)
	if _, err := Solve(a, b, SolveOptions{Scheme: "LI", Faults: 1, MTBF: 1}); err == nil {
		t.Error("Faults+MTBF accepted")
	}
}

func TestSolvePoissonMode(t *testing.T) {
	a := Laplacian2D(16)
	b, _ := RHS(a)
	ff, err := Solve(a, b, SolveOptions{Ranks: 4, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Solve(a, b, SolveOptions{
		Scheme: "LI", Ranks: 4, Tol: 1e-9, MTBF: ff.Time / 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Error("Poisson-mode solve did not converge")
	}
}

func TestParseScheme(t *testing.T) {
	for _, name := range SchemeNames() {
		if _, err := ParseScheme(name); err != nil {
			t.Errorf("ParseScheme(%s): %v", name, err)
		}
	}
	if _, err := ParseScheme("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
	// Case-insensitive.
	if _, err := ParseScheme("li-dvfs"); err != nil {
		t.Error("lowercase rejected")
	}
}

func TestCatalogAccess(t *testing.T) {
	names := CatalogNames()
	if len(names) != 14 {
		t.Fatalf("%d catalog names", len(names))
	}
	a, err := CatalogMatrix("Kuu", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows == 0 {
		t.Error("empty matrix")
	}
	if _, err := CatalogMatrix("Kuu", "bogus"); err == nil {
		t.Error("bad scale accepted")
	}
	if _, err := CatalogMatrix("bogus", "tiny"); err == nil {
		t.Error("bad name accepted")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 12 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	want := map[string]bool{
		"fig1": true, "fig3": true, "fig4": true, "fig5": true, "fig6": true,
		"fig7": true, "fig8": true, "fig9": true,
		"tab3": true, "tab4": true, "tab5": true, "tab6": true,
	}
	for _, e := range exps {
		delete(want, e.ID)
	}
	if len(want) != 0 {
		t.Errorf("missing experiments: %v", want)
	}
}

func TestRunExperimentTiny(t *testing.T) {
	res, err := RunExperiment("fig1", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 {
		t.Error("no tables")
	}
	if _, err := RunExperiment("bogus", "tiny"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := RunExperiment("fig1", "bogus"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestSolveCR2L(t *testing.T) {
	a := Laplacian2D(16)
	b, _ := RHS(a)
	rep, err := Solve(a, b, SolveOptions{
		Scheme: "CR-2L", Ranks: 4, Tol: 1e-9, Faults: 3, CkptEvery: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || rep.Checkpoints == 0 {
		t.Errorf("CR-2L converged=%v checkpoints=%d", rep.Converged, rep.Checkpoints)
	}
}

func TestSolveJacobi(t *testing.T) {
	a, err := CatalogMatrix("cvxbqp1", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RHS(a)
	plain, err := Solve(a, b, SolveOptions{Ranks: 4, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	pcg, err := Solve(a, b, SolveOptions{Ranks: 4, Tol: 1e-10, Jacobi: true})
	if err != nil {
		t.Fatal(err)
	}
	if !pcg.Converged {
		t.Fatal("Jacobi solve did not converge")
	}
	if pcg.Iters >= plain.Iters {
		t.Errorf("Jacobi %d iterations not below plain %d", pcg.Iters, plain.Iters)
	}
}

func TestSolveKeepPowerSegments(t *testing.T) {
	a := Laplacian2D(12)
	b, _ := RHS(a)
	rep, err := Solve(a, b, SolveOptions{
		Scheme: "LI", Ranks: 4, Tol: 1e-9, Faults: 2, KeepPowerSegments: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Meter == nil || len(rep.Meter.Segments()) == 0 {
		t.Error("power segments not retained")
	}
	if len(rep.Meter.PhaseWindows("reconstruct")) == 0 {
		t.Error("no reconstruction windows recorded")
	}
}

func TestSolveSDCFaultClass(t *testing.T) {
	a := Laplacian2D(16)
	b, xTrue := RHS(a)
	rep, err := Solve(a, b, SolveOptions{
		Scheme: "LSI", Ranks: 4, Tol: 1e-9, Faults: 2, FaultClass: fault.SDC,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("SDC run did not converge")
	}
	var maxErr float64
	for i := range xTrue {
		if d := math.Abs(rep.Solution[i] - xTrue[i]); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 1e-5 {
		t.Errorf("solution error %g after SDC recovery", maxErr)
	}
}
