// Quickstart: solve a Poisson system with forward recovery under faults.
//
// This is the smallest end-to-end use of the library: build an SPD
// system, pick a recovery scheme, inject a few faults, and read the
// time/energy/iteration report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"resilience"
)

func main() {
	// A 64x64 5-point stencil Poisson problem (4096 unknowns).
	a := resilience.Laplacian2D(64)
	b, xTrue := resilience.RHS(a)

	// Solve on 16 simulated ranks with the paper's optimized forward
	// recovery (localized CG construction + DVFS power management),
	// injecting 5 single-node failures spread over the run.
	rep, err := resilience.Solve(a, b, resilience.SolveOptions{
		Scheme: "LI-DVFS",
		Ranks:  16,
		Faults: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheme      %s\n", rep.Scheme)
	fmt.Printf("converged   %v (relative residual %.2g)\n", rep.Converged, rep.RelRes)
	fmt.Printf("iterations  %d\n", rep.Iters)
	fmt.Printf("faults      %d\n", len(rep.Faults))
	fmt.Printf("time        %.4g virtual seconds\n", rep.Time)
	fmt.Printf("energy      %.4g joules\n", rep.Energy)
	fmt.Printf("avg power   %.4g watts\n", rep.AvgPower)

	// The solution is the assembled global iterate; verify it against
	// the known true solution.
	var maxErr float64
	for i, v := range rep.Solution {
		if d := abs(v - xTrue[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("max |x - x_true| = %.3g\n", maxErr)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
