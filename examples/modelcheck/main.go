// Modelcheck: fit the paper's Section 3 analytical models from measured
// runs and compare their predictions against measurements — a miniature
// of Table 6, exercising the model and fitting API directly.
//
//	go run ./examples/modelcheck
package main

import (
	"fmt"
	"log"

	"resilience/internal/core"
	"resilience/internal/fault"
	"resilience/internal/matgen"
	"resilience/internal/model"
	"resilience/internal/platform"
)

func main() {
	spec, err := matgen.Lookup("crystm02")
	if err != nil {
		log.Fatal(err)
	}
	a := spec.Generate(matgen.CI)
	b, _ := matgen.RHS(a)
	plat := platform.Default()

	cfg := core.RunConfig{
		A: a, B: b, Ranks: 16, Plat: plat, Tol: 1e-12,
		MaxIters: 40 * spec.TargetIters(matgen.CI), Seed: 1,
	}
	ff, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free: %d iterations, %.4gs, %.4g J\n\n", ff.Iters, ff.Time, ff.Energy)
	base := model.BaseParams(ff)

	run := func(spec core.SchemeSpec, keepSegs bool) *core.RunReport {
		c := cfg
		c.Scheme = spec
		c.KeepSegments = keepSegs
		ffIters := ff.Iters
		c.InjectorFactory = func() fault.Injector {
			return fault.NewSchedule(10, ffIters, cfg.Ranks, fault.SNF, 1)
		}
		rep, err := core.Run(c)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	fmt.Printf("%-10s | %9s %9s %9s | %9s %9s %9s\n",
		"", "model", "", "", "measured", "", "")
	fmt.Printf("%-10s | %9s %9s %9s | %9s %9s %9s\n",
		"scheme", "T_res", "P", "E_res", "T_res", "P", "E_res")

	show := func(v model.Validation) {
		fmt.Printf("%-10s | %9.3f %9.3f %9.3f | %9.3f %9.3f %9.3f\n",
			v.Scheme, v.ModelTRes, v.ModelP, v.ModelERes, v.MeasTRes, v.MeasP, v.MeasERes)
	}

	// RD: Eq. 12.
	rdRun := run(core.SchemeSpec{Kind: core.RD}, false)
	rdPred, err := model.PredictRD(model.FitRD(ff, 2))
	if err != nil {
		log.Fatal(err)
	}
	show(model.Validate("RD", rdPred, base, ff, rdRun))

	// LI-DVFS: Eqs. 13-16 with measured t_const from the power trace.
	liRun := run(core.SchemeSpec{Kind: core.LI, DVFS: true}, true)
	liParams, err := model.FitFW(ff, liRun, plat, true)
	if err != nil {
		log.Fatal(err)
	}
	liPred, err := model.PredictFW(liParams)
	if err != nil {
		log.Fatal(err)
	}
	show(model.Validate("LI-DVFS", liPred, base, ff, liRun))

	// CR-M: Eqs. 9-11 with a fixed interval.
	crRun := run(core.SchemeSpec{Kind: core.CRM, CkptEvery: 100}, false)
	crParams, err := model.FitCR(ff, crRun, plat, 100)
	if err != nil {
		log.Fatal(err)
	}
	crPred, err := model.PredictCR(crParams)
	if err != nil {
		log.Fatal(err)
	}
	show(model.Validate("CR-M", crPred, base, ff, crRun))

	fmt.Println("\nFitted FW parameters:")
	fmt.Printf("  lambda            %.4g faults/s\n", liParams.Lambda)
	fmt.Printf("  t_const           %.4g s/fault\n", liParams.TConst)
	fmt.Printf("  extra frac/fault  %.4g of T_ff\n", liParams.ExtraFracPerFault)
	fmt.Printf("  P_idle/P_active   %.4g (parked at f_min)\n", liParams.PIdleFrac)
}
