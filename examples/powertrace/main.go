// Powertrace: visualize the cluster power profile of forward recovery
// with and without DVFS power management — a miniature of the paper's
// Figure 7(a). During each reconstruction window only the failed rank
// computes; without DVFS the other cores busy-wait near full power, with
// DVFS they park at the lowest frequency.
//
//	go run ./examples/powertrace
package main

import (
	"fmt"
	"log"
	"strings"

	"resilience"
)

func main() {
	a, err := resilience.CatalogMatrix("nd24k", "ci")
	if err != nil {
		log.Fatal(err)
	}
	b, _ := resilience.RHS(a)

	for _, scheme := range []string{"LI", "LI-DVFS"} {
		rep, err := resilience.Solve(a, b, resilience.SolveOptions{
			Scheme:            scheme,
			Ranks:             24, // one node's worth of cores
			Faults:            6,
			KeepPowerSegments: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d iterations, %.4g J, avg %.4g W\n",
			scheme, rep.Iters, rep.Energy, rep.AvgPower)

		samples := rep.Meter.Timeline(rep.Time / 72)
		var peak float64
		for _, s := range samples {
			if s.Watts > peak {
				peak = s.Watts
			}
		}
		// Render the power profile as rows of a bar chart over time.
		const height = 8
		for level := height; level >= 1; level-- {
			var sb strings.Builder
			threshold := peak * float64(level) / float64(height)
			for _, s := range samples {
				if s.Watts >= threshold {
					sb.WriteByte('#')
				} else {
					sb.WriteByte(' ')
				}
			}
			fmt.Printf("%6.1fW |%s\n", threshold, sb.String())
		}
		fmt.Printf("        +%s time ->\n\n", strings.Repeat("-", len(samples)))
	}
	fmt.Println("The dips are reconstruction windows; DVFS deepens them (~0.75x -> ~0.45x),")
	fmt.Println("cutting energy with no impact on time-to-solution (Section 4.2 of the paper).")
}
