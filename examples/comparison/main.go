// Comparison: run every recovery scheme on one workload and rank them by
// time, power and energy — a miniature of the paper's Figure 8, which
// shows the best scheme depends on the workload and on which constraint
// (time, power or energy) is being optimized.
//
//	go run ./examples/comparison [matrix]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"resilience"
)

func main() {
	name := "crystm02"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	a, err := resilience.CatalogMatrix(name, "ci")
	if err != nil {
		log.Fatalf("%v\navailable: %v", err, resilience.CatalogNames())
	}
	b, _ := resilience.RHS(a)
	fmt.Printf("workload: %s analog (%v), 10 faults, 32 ranks\n\n", name, a)

	ff, err := resilience.Solve(a, b, resilience.SolveOptions{Scheme: "FF", Ranks: 32})
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		scheme string
		iters  float64
		time   float64
		power  float64
		energy float64
	}
	var rows []row
	for _, scheme := range []string{"RD", "F0", "FI", "LI", "LI-DVFS", "LSI", "LSI-DVFS", "CR-M", "CR-D"} {
		rep, err := resilience.Solve(a, b, resilience.SolveOptions{
			Scheme: scheme,
			Ranks:  32,
			Faults: 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{
			scheme: scheme,
			iters:  float64(rep.Iters) / float64(ff.Iters),
			time:   rep.Time / ff.Time,
			power:  rep.AvgPower / ff.AvgPower,
			energy: rep.Energy / ff.Energy,
		})
	}

	fmt.Printf("%-10s %8s %8s %8s %8s   (normalized to fault-free)\n",
		"scheme", "iters", "time", "power", "energy")
	for _, r := range rows {
		fmt.Printf("%-10s %8.3f %8.3f %8.3f %8.3f\n", r.scheme, r.iters, r.time, r.power, r.energy)
	}

	best := func(metric func(row) float64, label string) {
		sorted := append([]row(nil), rows...)
		sort.Slice(sorted, func(i, j int) bool { return metric(sorted[i]) < metric(sorted[j]) })
		fmt.Printf("best by %-7s %s (%.3fx)\n", label+":", sorted[0].scheme, metric(sorted[0]))
	}
	fmt.Println()
	best(func(r row) float64 { return r.time }, "time")
	best(func(r row) float64 { return r.power }, "power")
	best(func(r row) float64 { return r.energy }, "energy")
}
