// Exascale: project resilience cost to large systems under weak scaling
// — a miniature of the paper's Figure 9 and Section 6 analysis. Keeps
// 50K non-zeros per process and a constant per-process MTBF, so the
// system MTBF shrinks linearly as the machine grows.
//
//	go run ./examples/exascale
package main

import (
	"fmt"
	"log"

	"resilience/internal/projection"
)

func main() {
	cfg := projection.DefaultConfig()
	rows, err := projection.Project(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Weak scaling, 50K nnz/process, per-process MTBF 6000h.")
	fmt.Println("All values normalized to the fault-free run at each size.")
	fmt.Println()
	fmt.Printf("%10s %10s | %22s | %22s | %22s\n", "", "", "T_res/T", "E_res/E", "P/P_ff")
	fmt.Printf("%10s %10s | %5s %5s %5s %5s | %5s %5s %5s %5s | %5s %5s %5s %5s\n",
		"#procs", "MTBF(h)",
		"RD", "CR-D", "CR-M", "FW",
		"RD", "CR-D", "CR-M", "FW",
		"RD", "CR-D", "CR-M", "FW")

	byN := map[int]map[string]projection.Row{}
	var sizes []int
	for _, r := range rows {
		if byN[r.N] == nil {
			byN[r.N] = map[string]projection.Row{}
			sizes = append(sizes, r.N)
		}
		byN[r.N][r.Scheme] = r
	}
	schemes := []string{"RD", "CR-D", "CR-M", "FW"}
	for _, n := range sizes {
		m := byN[n]
		fmt.Printf("%10d %10.2f |", n, m["RD"].MTBFHours)
		for _, s := range schemes {
			fmt.Printf(" %5.2f", m[s].TResNorm)
		}
		fmt.Printf(" |")
		for _, s := range schemes {
			fmt.Printf(" %5.2f", m[s].EResNorm)
		}
		fmt.Printf(" |")
		for _, s := range schemes {
			fmt.Printf(" %5.2f", m[s].PNorm)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Expected trends (paper Section 6): RD flat; FW grows ~linearly; CR-D grows")
	fmt.Println("fastest (shared disk + shrinking MTBF); CR-M stays smallest but cannot")
	fmt.Println("survive all fault classes; FW and CR-D average power drops as recovery")
	fmt.Println("time dominates.")
}
