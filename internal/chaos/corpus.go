package chaos

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// CorpusEntry is one distilled "interesting" scenario: a canonical
// replay flag string plus the sorted reasons the distiller kept it
// (multi-fault, swo-compound, near-budget, slow-converge, dup-key, ...).
// The committed corpus under testdata/corpus seeds the native fuzz
// targets and gives future schemes a hard regression set to start from.
type CorpusEntry struct {
	Args    string
	Reasons []string
}

// WriteCorpus renders entries in the corpus file format: one line per
// scenario, reasons comma-joined, a tab, then the replay string. Lines
// starting with '#' are comments. The rendering is deterministic for a
// fixed entry list.
func WriteCorpus(w io.Writer, entries []CorpusEntry) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# distilled chaos corpus: reasons<TAB>replay flag string")
	fmt.Fprintln(bw, "# regenerate with: go run ./cmd/chaos-fleet -oracle -corpus-out <path>")
	for _, e := range entries {
		if _, err := fmt.Fprintf(bw, "%s\t%s\n", strings.Join(e.Reasons, ","), e.Args); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCorpus parses the corpus file format back into entries, validating
// every replay string through the scenario codec — a corpus line that no
// longer parses is a hard error, not a silent skip.
func ReadCorpus(r io.Reader) ([]CorpusEntry, error) {
	var out []CorpusEntry
	sc := bufio.NewScanner(r)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		reasons, args, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("chaos: corpus line %d has no tab separator: %q", ln, line)
		}
		if _, err := ParseArgs(args); err != nil {
			return nil, fmt.Errorf("chaos: corpus line %d: %w", ln, err)
		}
		out = append(out, CorpusEntry{Args: args, Reasons: strings.Split(reasons, ",")})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
