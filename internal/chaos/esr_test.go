package chaos

import (
	"strings"
	"testing"
)

// TestESRTwoRankSimultaneousZeroRollback is the acceptance scenario for
// exact state reconstruction: two ranks fail hard at the same iteration
// boundary, the full nine-invariant battery (with the determinism
// recheck) passes, and the run finishes with zero restarts — both
// failures were reconstructed exactly, no iteration was rolled back or
// repeated.
func TestESRTwoRankSimultaneousZeroRollback(t *testing.T) {
	s, err := ParseArgs("-grid 8 -ranks 4 -scheme ESR -tol 1e-10 -seed 3 -faults SNF@7:r1,SNF@7:r2")
	if err != nil {
		t.Fatal(err)
	}
	rn := NewRunner(Options{Recheck: true})
	res := rn.Run(0, s)
	if res.Failed() {
		t.Fatalf("invariant battery failed: %s", res.Line())
	}
	rep := res.Report
	if !rep.Converged {
		t.Fatalf("did not converge: relres %g after %d iters", rep.RelRes, rep.Iters)
	}
	if rep.Restarts != 0 {
		t.Errorf("ESR restarted %d times; 2-rank reconstruction must not roll back", rep.Restarts)
	}
	if len(rep.Faults) != 2 || rep.Faults[0].Iter != rep.Faults[1].Iter {
		t.Errorf("expected two same-iteration faults in the report, got %v", rep.Faults)
	}
	// Zero rollback also means zero extra iterations beyond the exact
	// run's: compare against the fault-free baseline on the same system.
	ff, err := rn.faultFree(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iters != ff.Iters {
		t.Errorf("ESR took %d iters vs %d fault-free; exact reconstruction must not add iterations",
			rep.Iters, ff.Iters)
	}
}

// TestDefaultSchemesCoverExtensions pins the widened campaign pool: the
// fleet and chaos gates exercise ESR and LCR alongside the original
// eight, and every pooled name parses.
func TestDefaultSchemesCoverExtensions(t *testing.T) {
	pool := DefaultSchemes()
	if len(pool) != 10 {
		t.Fatalf("default pool has %d schemes, want 10: %v", len(pool), pool)
	}
	joined := strings.Join(pool, ",")
	for _, want := range []string{"ESR", "LCR"} {
		if !strings.Contains(joined, want) {
			t.Errorf("default pool missing %s: %v", want, pool)
		}
	}
	for _, name := range pool {
		if _, err := ParseSchemeName(name); err != nil {
			t.Errorf("pooled scheme %q does not parse: %v", name, err)
		}
	}
}
