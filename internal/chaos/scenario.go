// Package chaos is the adversarial-testing layer of the repository: a
// deterministic, seed-driven fault-campaign engine plus a battery of
// runtime invariants checked against every run.
//
// A campaign generates randomized scenarios — fault counts 0..k, faults
// at arbitrary iterations including inside reconstruction, checkpoint and
// rollback windows, back-to-back and simultaneous multi-rank faults,
// varying ranks/matrix/scheme/overlap — runs each through internal/core,
// and checks invariants that must hold for *every* correct execution:
// convergence to the fault-free tolerance (or a classified expected
// failure), per-rank clock monotonicity, energy conservation in the power
// meter, well-nested span trees whose counters reconcile with the clocks,
// traffic conservation, collective symmetry, run-to-run determinism, and
// overlap/fused numerical equivalence.
//
// Every scenario serializes to a replayable flag string (see Args), so a
// failure found by a 10^5-scenario campaign reproduces from one shell
// line. The shrinking reporter (see Shrink) reduces a failing scenario to
// a local minimum before printing it.
package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"resilience/internal/core"
	"resilience/internal/fault"
	"resilience/internal/matgen"
	"resilience/internal/recovery"
	"resilience/internal/sparse"
)

// FaultSpec places one fault in a scenario: a class striking a rank at a
// solver iteration. Faults at iterations the run never reaches simply do
// not fire (the run report lists the faults that did).
type FaultSpec struct {
	Class fault.Class
	Rank  int
	Iter  int
}

func (f FaultSpec) String() string {
	return fmt.Sprintf("%s@%d:r%d", f.Class, f.Iter, f.Rank)
}

// Scenario is one fully-determined chaos run. Every field participates in
// the Args flag string, so a scenario replays exactly from its printed
// form.
type Scenario struct {
	Grid        int     // 2-D Laplacian grid side; the system has Grid^2 rows
	Ranks       int     // process count
	Scheme      string  // recovery scheme name (see ParseSchemeName)
	Tol         float64 // solver tolerance
	CkptEvery   int     // checkpoint interval in iterations (CR schemes)
	DetectDelay int     // SDC detection delay in iterations
	Overlap     bool    // overlapped halo exchange
	Jacobi      bool    // diagonal preconditioning
	Seed        int64   // drives fault corruption patterns
	Faults      []FaultSpec
}

// N returns the system size.
func (s *Scenario) N() int { return s.Grid * s.Grid }

// MaxIters returns the scenario's deterministic iteration budget: enough
// for the fault-free solve plus generous recovery headroom per fault.
// Runs that exhaust it with faults present are classified as expected
// failures, not invariant violations (e.g. F0 restarting from zero under
// a hard-fault barrage makes no progress by design).
func (s *Scenario) MaxIters() int {
	return 4*s.N() + 60*len(s.Faults) + 200
}

// Args renders the scenario as its canonical replayable flag string, e.g.
//
//	-grid 8 -ranks 4 -scheme LI-DVFS -tol 1e-10 -ckpt 6 -detect 2 -seed 7 -overlap -faults SNF@5:r2,SDC@9:r0
//
// ParseArgs inverts it exactly (see TestScenarioArgsRoundTrip).
func (s *Scenario) Args() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-grid %d -ranks %d -scheme %s -tol %s -ckpt %d -detect %d -seed %d",
		s.Grid, s.Ranks, s.Scheme, strconv.FormatFloat(s.Tol, 'g', -1, 64),
		s.CkptEvery, s.DetectDelay, s.Seed)
	if s.Overlap {
		b.WriteString(" -overlap")
	}
	if s.Jacobi {
		b.WriteString(" -jacobi")
	}
	if len(s.Faults) > 0 {
		b.WriteString(" -faults ")
		for i, f := range s.Faults {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(f.String())
		}
	}
	return b.String()
}

// ParseArgs decodes a scenario flag string produced by Args (tokens may
// appear in any order; booleans are presence flags). It validates every
// field, so it doubles as the campaign-config decoder fuzz target.
func ParseArgs(args string) (*Scenario, error) {
	s := &Scenario{Grid: 8, Ranks: 4, Scheme: "LI", Tol: 1e-10, Seed: 1}
	toks := strings.Fields(args)
	need := func(i int, flag string) (string, error) {
		if i+1 >= len(toks) {
			return "", fmt.Errorf("chaos: flag %s needs a value", flag)
		}
		return toks[i+1], nil
	}
	for i := 0; i < len(toks); i++ {
		switch toks[i] {
		case "-grid", "-ranks", "-ckpt", "-detect", "-seed":
			v, err := need(i, toks[i])
			if err != nil {
				return nil, err
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad %s value %q: %v", toks[i], v, err)
			}
			switch toks[i] {
			case "-grid":
				s.Grid = int(n)
			case "-ranks":
				s.Ranks = int(n)
			case "-ckpt":
				s.CkptEvery = int(n)
			case "-detect":
				s.DetectDelay = int(n)
			case "-seed":
				s.Seed = n
			}
			i++
		case "-tol":
			v, err := need(i, "-tol")
			if err != nil {
				return nil, err
			}
			t, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad -tol value %q: %v", v, err)
			}
			s.Tol = t
			i++
		case "-scheme":
			v, err := need(i, "-scheme")
			if err != nil {
				return nil, err
			}
			s.Scheme = v
			i++
		case "-overlap":
			s.Overlap = true
		case "-jacobi":
			s.Jacobi = true
		case "-faults":
			v, err := need(i, "-faults")
			if err != nil {
				return nil, err
			}
			fs, err := parseFaults(v)
			if err != nil {
				return nil, err
			}
			s.Faults = fs
			i++
		default:
			return nil, fmt.Errorf("chaos: unknown scenario flag %q", toks[i])
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseFaults decodes the comma-separated CLASS@ITER:rRANK fault list.
func parseFaults(v string) ([]FaultSpec, error) {
	parts := strings.Split(v, ",")
	out := make([]FaultSpec, 0, len(parts))
	for _, p := range parts {
		at := strings.IndexByte(p, '@')
		colon := strings.LastIndexByte(p, ':')
		if at < 0 || colon < at || !strings.HasPrefix(p[colon:], ":r") {
			return nil, fmt.Errorf("chaos: bad fault spec %q (want CLASS@ITER:rRANK)", p)
		}
		cls, err := parseClass(p[:at])
		if err != nil {
			return nil, err
		}
		iter, err := strconv.Atoi(p[at+1 : colon])
		if err != nil {
			return nil, fmt.Errorf("chaos: bad fault iteration in %q: %v", p, err)
		}
		rank, err := strconv.Atoi(p[colon+2:])
		if err != nil {
			return nil, fmt.Errorf("chaos: bad fault rank in %q: %v", p, err)
		}
		out = append(out, FaultSpec{Class: cls, Iter: iter, Rank: rank})
	}
	return out, nil
}

// parseClass resolves a fault class name.
func parseClass(name string) (fault.Class, error) {
	for _, c := range fault.Classes() {
		if strings.EqualFold(name, c.String()) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown fault class %q", name)
}

// Validate checks every scenario field for internal consistency.
func (s *Scenario) Validate() error {
	if s.Grid < 2 || s.Grid > 64 {
		return fmt.Errorf("chaos: grid %d out of range [2, 64]", s.Grid)
	}
	if s.Ranks < 1 || s.Ranks > s.N() {
		return fmt.Errorf("chaos: ranks %d out of range [1, %d]", s.Ranks, s.N())
	}
	if _, err := ParseSchemeName(s.Scheme); err != nil {
		return err
	}
	if !(s.Tol > 0 && s.Tol < 1) {
		return fmt.Errorf("chaos: tolerance %g out of range (0, 1)", s.Tol)
	}
	if s.CkptEvery < 0 {
		return fmt.Errorf("chaos: negative checkpoint interval %d", s.CkptEvery)
	}
	if s.DetectDelay < 0 || s.DetectDelay > 64 {
		return fmt.Errorf("chaos: detection delay %d out of range [0, 64]", s.DetectDelay)
	}
	for _, f := range s.Faults {
		if f.Iter < 1 || f.Iter > s.MaxIters() {
			return fmt.Errorf("chaos: fault %s iteration out of range [1, %d]", f, s.MaxIters())
		}
		if f.Rank < 0 || f.Rank >= s.Ranks {
			return fmt.Errorf("chaos: fault %s rank out of range [0, %d)", f, s.Ranks)
		}
		if int(f.Class) < 0 || int(f.Class) >= len(fault.Classes()) {
			return fmt.Errorf("chaos: fault %s has unknown class", f)
		}
	}
	return nil
}

// ParseSchemeName resolves a scheme name to its core spec. It recognizes
// the presentation names of resilience.SchemeNames minus FF — a chaos
// scenario without a recovery scheme cannot take faults, and with zero
// faults every scheme degenerates to the fault-free path anyway.
func ParseSchemeName(name string) (core.SchemeSpec, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "F0":
		return core.SchemeSpec{Kind: core.F0}, nil
	case "FI":
		return core.SchemeSpec{Kind: core.FI}, nil
	case "LI":
		return core.SchemeSpec{Kind: core.LI}, nil
	case "LI-DVFS":
		return core.SchemeSpec{Kind: core.LI, DVFS: true}, nil
	case "LI(LU)", "LI-LU":
		return core.SchemeSpec{Kind: core.LI, Construct: recovery.ConstructExact}, nil
	case "LSI":
		return core.SchemeSpec{Kind: core.LSI}, nil
	case "LSI-DVFS":
		return core.SchemeSpec{Kind: core.LSI, DVFS: true}, nil
	case "LSI(QR)", "LSI-QR":
		return core.SchemeSpec{Kind: core.LSI, Construct: recovery.ConstructExact}, nil
	case "CR-M", "CRM":
		return core.SchemeSpec{Kind: core.CRM}, nil
	case "CR-D", "CRD":
		return core.SchemeSpec{Kind: core.CRD}, nil
	case "CR-2L", "CR2L":
		return core.SchemeSpec{Kind: core.CR2L}, nil
	case "LCR":
		return core.SchemeSpec{Kind: core.LCR}, nil
	case "RD", "DMR":
		return core.SchemeSpec{Kind: core.RD}, nil
	case "TMR":
		return core.SchemeSpec{Kind: core.TMR}, nil
	case "ESR":
		return core.SchemeSpec{Kind: core.ESR}, nil
	}
	return core.SchemeSpec{}, fmt.Errorf("chaos: unknown scheme %q", name)
}

// DefaultSchemes is the campaign's default scheme pool: the acceptance
// set of ten (forward recovery with and without DVFS, both single-level
// checkpoint/restart variants, exact state reconstruction, and lossy-
// compressed checkpoint/restart).
func DefaultSchemes() []string {
	return []string{"F0", "FI", "LI", "LI-DVFS", "LSI", "LSI-DVFS", "CR-M", "CR-D", "ESR", "LCR"}
}

// System builds the scenario's linear system (cached by the campaign
// runner; cheap enough to rebuild for one-off replays).
func (s *Scenario) System() (*sparse.CSR, []float64) {
	a := matgen.Laplacian2D(s.Grid)
	b, _ := matgen.RHS(a)
	return a, b
}

// RunConfig assembles the core.RunConfig for this scenario. keepSegments
// controls power-segment retention (required by the energy-conservation
// invariant; off for auxiliary reruns).
func (s *Scenario) RunConfig(a *sparse.CSR, b []float64, keepSegments bool) (core.RunConfig, error) {
	spec, err := ParseSchemeName(s.Scheme)
	if err != nil {
		return core.RunConfig{}, err
	}
	if spec.Kind == core.CRM || spec.Kind == core.CRD || spec.Kind == core.CR2L || spec.Kind == core.LCR {
		ck := s.CkptEvery
		if ck <= 0 {
			ck = 8
		}
		spec.CkptEvery = ck
	}
	faults := make([]fault.Fault, len(s.Faults))
	for i, f := range s.Faults {
		faults[i] = fault.Fault{Class: f.Class, Rank: f.Rank, Iter: f.Iter}
	}
	cfg := core.RunConfig{
		A:            a,
		B:            b,
		Ranks:        s.Ranks,
		Scheme:       spec,
		Tol:          s.Tol,
		MaxIters:     s.MaxIters(),
		Jacobi:       s.Jacobi,
		Overlap:      s.Overlap,
		DetectDelay:  s.DetectDelay,
		KeepSegments: keepSegments,
		Seed:         s.Seed,
	}
	if len(faults) > 0 {
		cfg.InjectorFactory = func() fault.Injector { return fault.NewScheduleAt(faults) }
	}
	return cfg, nil
}
