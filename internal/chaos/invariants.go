package chaos

import (
	"fmt"
	"math"
	"sort"

	"resilience/internal/core"
	"resilience/internal/obs"
)

// Invariant names, used in violation reports and by the -break fault
// injection of the checker itself (testing the tester).
const (
	InvConvergence      = "convergence"
	InvClockMonotone    = "clock-monotone"
	InvEnergyConserve   = "energy-conservation"
	InvSpanNesting      = "span-nesting"
	InvMetricsReconcile = "metrics-reconcile"
	InvTraffic          = "traffic-conservation"
	InvCollectiveSym    = "collective-symmetry"
	InvDeterminism      = "determinism"
	InvOverlapEquiv     = "overlap-equivalence"
)

// InvariantNames lists every invariant the battery checks, in report
// order. InvDeterminism and InvOverlapEquiv are checked by the campaign
// runner (they need auxiliary reruns); the rest by CheckInvariants.
func InvariantNames() []string {
	return []string{
		InvConvergence, InvClockMonotone, InvEnergyConserve, InvSpanNesting,
		InvMetricsReconcile, InvTraffic, InvCollectiveSym, InvDeterminism,
		InvOverlapEquiv,
	}
}

// Violation is one failed invariant with a human-readable diagnosis.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// timeTol is the absolute tolerance for virtual-clock comparisons. Clock
// arithmetic accumulates float error across ~1e5 advances, so exact
// equality is not meaningful, but drifts at this scale are bugs.
const timeTol = 1e-6

// CheckInvariants runs the post-run invariant battery over one completed
// scenario. rep must come from a run with KeepSegments and an attached
// obs.Recorder; ff is the converged fault-free baseline on the same
// system. The returned slice is empty when every invariant holds.
func CheckInvariants(s *Scenario, rep *core.RunReport, ff *core.RunReport, rec *obs.Recorder) []Violation {
	var vs []Violation
	vs = append(vs, checkConvergence(s, rep, ff)...)
	vs = append(vs, checkEnergy(rep)...)
	vs = append(vs, checkSpans(s, rep, rec)...)
	vs = append(vs, checkTraffic(rec)...)
	return vs
}

// ExpectedFailure classifies a non-converged run that is still a correct
// execution: the iteration budget ran out with faults present. Schemes
// with no forward progress under a given fault pattern (F0 restarting
// from zero on every hard fault, SDC storms with long detection delays)
// legitimately exhaust the budget; what they may not do is claim
// convergence or violate a runtime invariant while failing.
func ExpectedFailure(s *Scenario, rep *core.RunReport) (string, bool) {
	if rep.Converged {
		return "", false
	}
	if len(s.Faults) > 0 && rep.Iters >= s.MaxIters() {
		return fmt.Sprintf("budget-exhausted (%d iters, %d faults injected)", rep.Iters, len(rep.Faults)), true
	}
	return "", false
}

// checkConvergence: the faulted run must reach the same tolerance the
// fault-free baseline does, unless classified as an expected failure.
func checkConvergence(s *Scenario, rep *core.RunReport, ff *core.RunReport) []Violation {
	var vs []Violation
	if !ff.Converged {
		vs = append(vs, Violation{InvConvergence,
			fmt.Sprintf("fault-free baseline did not converge (relres %.3g after %d iters) — scenario budget bug", ff.RelRes, ff.Iters)})
		return vs
	}
	if !rep.Converged {
		if _, ok := ExpectedFailure(s, rep); !ok {
			vs = append(vs, Violation{InvConvergence,
				fmt.Sprintf("run stopped unconverged at iter %d/%d with relres %.3g (not classifiable as expected failure)",
					rep.Iters, s.MaxIters(), rep.RelRes)})
		}
		return vs
	}
	if !(rep.RelRes <= s.Tol) {
		vs = append(vs, Violation{InvConvergence,
			fmt.Sprintf("converged=true but relres %.3g > tol %g", rep.RelRes, s.Tol)})
	}
	return vs
}

// checkEnergy: the meter's aggregate energy must equal the integral of
// its retained segments, the segment timelines must cover each core's
// span gap-free, and the report must expose Energy = total * redundancy.
func checkEnergy(rep *core.RunReport) []Violation {
	var vs []Violation
	m := rep.Meter
	if m == nil {
		return []Violation{{InvEnergyConserve, "run report has no meter (KeepSegments was off)"}}
	}
	var segSum float64
	for _, seg := range m.Segments() {
		segSum += seg.Energy()
	}
	total := m.TotalEnergy()
	if !closeRel(segSum, total, 1e-8) {
		vs = append(vs, Violation{InvEnergyConserve,
			fmt.Sprintf("segment integral %.9g J != aggregate energy %.9g J", segSum, total)})
	}
	want := total * float64(rep.Redundancy)
	if !closeRel(want, rep.Energy, 1e-12) {
		vs = append(vs, Violation{InvEnergyConserve,
			fmt.Sprintf("report energy %.9g J != meter total x redundancy %.9g J", rep.Energy, want)})
	}
	if gaps := m.Gaps(timeTol); len(gaps) > 0 {
		g := gaps[0]
		vs = append(vs, Violation{InvEnergyConserve,
			fmt.Sprintf("%d unmetered gap(s); first on core %d: [%.6g, %.6g]", len(gaps), g.Core, g.Start, g.End)})
	}
	if span := m.Span(); span > rep.Time+timeTol {
		vs = append(vs, Violation{InvEnergyConserve,
			fmt.Sprintf("meter span %.6g s exceeds reported time-to-solution %.6g s", span, rep.Time)})
	}
	return vs
}

// isComposite reports whether a span kind wraps primitives (and is
// therefore excluded from the seconds counters).
func isComposite(k obs.SpanKind) bool {
	switch k {
	case obs.SpanCompute, obs.SpanSend, obs.SpanRecv, obs.SpanWait, obs.SpanCollective:
		return false
	}
	return true
}

// checkSpans validates, per rank: primitive spans are disjoint and
// monotone (the rank's virtual clock never runs backwards), the full span
// forest is well-nested (composites contain, never straddle), counters
// reconcile bitwise with the span durations they were accumulated from,
// collective counts agree across ranks, and no span outlives the run.
func checkSpans(s *Scenario, rep *core.RunReport, rec *obs.Recorder) []Violation {
	var vs []Violation
	if rec == nil {
		return []Violation{{InvSpanNesting, "run had no span recorder attached"}}
	}
	metrics := rec.Metrics()
	if len(metrics) != s.Ranks {
		return []Violation{{InvSpanNesting,
			fmt.Sprintf("recorder saw %d ranks, scenario has %d", len(metrics), s.Ranks)}}
	}
	for rank := 0; rank < s.Ranks; rank++ {
		spans := rec.RankSpans(rank)
		vs = append(vs, checkRankClocks(rank, spans, rep.Time)...)
		vs = append(vs, checkRankNesting(rank, spans)...)
		vs = append(vs, checkRankCounters(rank, spans, metrics[rank])...)
		if len(vs) > 8 { // one broken rank floods; keep reports readable
			return vs
		}
	}
	for rank := 1; rank < s.Ranks; rank++ {
		if metrics[rank].Collectives != metrics[0].Collectives {
			vs = append(vs, Violation{InvCollectiveSym,
				fmt.Sprintf("rank %d entered %d collectives, rank 0 entered %d — a bulk-synchronous program must agree",
					rank, metrics[rank].Collectives, metrics[0].Collectives)})
		}
	}
	return vs
}

// checkRankClocks: primitives in recording order are the rank's clock
// trajectory — starts never decrease, consecutive spans never overlap,
// everything is finite and within the run's time span.
func checkRankClocks(rank int, spans []obs.Span, runTime float64) []Violation {
	var vs []Violation
	prevEnd := math.Inf(-1)
	for i, sp := range spans {
		if math.IsNaN(sp.Start) || math.IsInf(sp.Start, 0) || math.IsNaN(sp.Dur) || sp.Dur < 0 {
			return []Violation{{InvClockMonotone,
				fmt.Sprintf("rank %d span %d (%s) has invalid extent start=%g dur=%g", rank, i, sp.Kind, sp.Start, sp.Dur)}}
		}
		if sp.End() > runTime+timeTol {
			return []Violation{{InvClockMonotone,
				fmt.Sprintf("rank %d span %d (%s) ends at %.6g, after the run's %.6g", rank, i, sp.Kind, sp.End(), runTime)}}
		}
		if isComposite(sp.Kind) {
			continue
		}
		if sp.Start < prevEnd-timeTol {
			return []Violation{{InvClockMonotone,
				fmt.Sprintf("rank %d span %d (%s) starts at %.9g before the previous primitive ended at %.9g — clock ran backwards",
					rank, i, sp.Kind, sp.Start, prevEnd)}}
		}
		if e := sp.End(); e > prevEnd {
			prevEnd = e
		}
	}
	return vs
}

// checkRankNesting: sort the rank's spans by (start asc, end desc) and
// sweep with a stack; every span must either be disjoint from the stack
// top or fully contained in it, and a composite may never sit inside a
// primitive. O(n log n) — campaign runs record ~10^4 spans per rank.
func checkRankNesting(rank int, spans []obs.Span) []Violation {
	idx := make([]int, len(spans))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := spans[idx[a]], spans[idx[b]]
		if sa.Start != sb.Start {
			return sa.Start < sb.Start
		}
		if sa.End() != sb.End() {
			return sa.End() > sb.End()
		}
		// Equal extents: treat the composite as the outer span. A halo
		// wrapping a single send whose receives completed without waiting
		// has exactly its send's extent.
		return isComposite(sa.Kind) && !isComposite(sb.Kind)
	})
	var stack []obs.Span
	for _, i := range idx {
		sp := spans[i]
		for len(stack) > 0 && stack[len(stack)-1].End() <= sp.Start+timeTol {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			if sp.End() > top.End()+timeTol {
				return []Violation{{InvSpanNesting,
					fmt.Sprintf("rank %d: %s [%.9g, %.9g] straddles %s [%.9g, %.9g]",
						rank, sp.Kind, sp.Start, sp.End(), top.Kind, top.Start, top.End())}}
			}
			if isComposite(sp.Kind) && !isComposite(top.Kind) {
				return []Violation{{InvSpanNesting,
					fmt.Sprintf("rank %d: composite %s nested inside primitive %s", rank, sp.Kind, top.Kind)}}
			}
		}
		stack = append(stack, sp)
	}
	return nil
}

// checkRankCounters recomputes the per-kind seconds counters by replaying
// the span sequence with the same left-to-right accumulation obs.Rank
// uses, then demands bitwise equality — any divergence means a span was
// recorded without being counted (or vice versa).
func checkRankCounters(rank int, spans []obs.Span, m obs.Metrics) []Violation {
	var compute, send, wait, coll float64
	for _, sp := range spans {
		switch sp.Kind {
		case obs.SpanCompute:
			compute += sp.Dur
		case obs.SpanSend:
			send += sp.Dur
		case obs.SpanRecv, obs.SpanWait:
			wait += sp.Dur
		case obs.SpanCollective:
			coll += sp.Dur
		}
	}
	mismatch := func(name string, got, want float64) Violation {
		return Violation{InvMetricsReconcile,
			fmt.Sprintf("rank %d %s counter %.17g != span-sequence sum %.17g", rank, name, got, want)}
	}
	switch {
	case m.ComputeSec != compute:
		return []Violation{mismatch("ComputeSec", m.ComputeSec, compute)}
	case m.SendSec != send:
		return []Violation{mismatch("SendSec", m.SendSec, send)}
	case m.WaitSec != wait:
		return []Violation{mismatch("WaitSec", m.WaitSec, wait)}
	case m.CollectiveSec != coll:
		return []Violation{mismatch("CollectiveSec", m.CollectiveSec, coll)}
	}
	return nil
}

// checkTraffic: every point-to-point byte (and message) sent must be
// received. The run completed, so no message may still be in flight.
func checkTraffic(rec *obs.Recorder) []Violation {
	if rec == nil {
		return nil
	}
	var sentMsgs, recvMsgs, sentBytes, recvBytes int64
	for _, m := range rec.Metrics() {
		sentMsgs += m.MsgsSent
		recvMsgs += m.MsgsRecv
		sentBytes += m.BytesSent
		recvBytes += m.BytesRecv
	}
	if sentMsgs != recvMsgs || sentBytes != recvBytes {
		return []Violation{{InvTraffic,
			fmt.Sprintf("sent %d msgs / %d bytes but received %d msgs / %d bytes",
				sentMsgs, sentBytes, recvMsgs, recvBytes)}}
	}
	return nil
}

// closeRel reports approximate equality under a relative tolerance
// (absolute near zero).
func closeRel(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}
