// Package fleet shards seeded chaos campaigns across the distributed
// solve service. A campaign of N scenarios (10^5–10^6 at production
// scale; bounded in CI) is partitioned into contiguous index batches,
// each batch is evaluated as one set of verdict-bearing jobs — over HTTP
// against a resilience-router fronting resilienced replicas, or against
// the in-process oracle — and the per-scenario invariant verdicts stream
// back. Any violation is then shrunk server-side: the greedy shrinker's
// candidate passes are themselves batches of jobs, so minimization
// parallelizes across the same fleet that found the failure.
//
// The whole pipeline is byte-deterministic. Scenario i is derived from
// the campaign seed alone (chaos.ScenarioAt), verdicts are recorded at
// their scenario index regardless of arrival order, and the shrinker
// accepts the first failing candidate in candidate order of a fully
// evaluated pass — so the same campaign seed produces an identical
// verdict stream, failure set, and shrunk minimal scenarios whether it
// ran against one replica, a dozen, or the oracle. The e2e tests
// byte-compare all three.
package fleet

import (
	"context"
	"fmt"
	"io"
	"sync"

	"resilience/internal/chaos"
)

// Evaluator turns scenarios into encoded verdict lines (chaos.Verdict
// wire form), one per scenario, in input order. Implementations must be
// pure: the verdict for a scenario depends on the scenario alone, never
// on the batch it arrived in. Client (HTTP) and Oracle (in-process) are
// the two implementations, and the determinism contract is that they
// agree byte-for-byte.
type Evaluator interface {
	Evaluate(ctx context.Context, scenarios []*chaos.Scenario) ([]string, error)
}

// Options configures one fleet campaign.
type Options struct {
	// Campaign is the underlying seeded campaign: N scenarios generated
	// from Seed via chaos.ScenarioAt, with the generator's MaxFaults,
	// Schemes, and Tol knobs. Campaign.BreakInvariant is the self-test
	// hook; evaluators must be constructed with the same value so broken
	// verdicts agree across transports.
	Campaign chaos.Options

	// Batch is the scenarios per evaluator call (<=0: 64). Over HTTP one
	// batch is one POST /batch.
	Batch int
	// Workers is how many batches are in flight at once (<=0: 4).
	Workers int

	// ShrinkBudget caps candidate evaluations per shrunk failure
	// (<=0: 400). Each greedy pass evaluates its whole candidate list as
	// one batch.
	ShrinkBudget int
	// MaxShrinks caps how many failures are shrunk, lowest campaign
	// index first (<=0: 3). Campaigns with a systematically broken
	// invariant fail everywhere; shrinking every failure would be both
	// slow and redundant.
	MaxShrinks int

	// Progress, when set, is called after each completed batch with the
	// number of scenarios evaluated so far and the campaign total.
	Progress func(done, total int)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Batch <= 0 {
		out.Batch = 64
	}
	if out.Workers <= 0 {
		out.Workers = 4
	}
	if out.ShrinkBudget <= 0 {
		out.ShrinkBudget = 400
	}
	if out.MaxShrinks <= 0 {
		out.MaxShrinks = 3
	}
	return out
}

// Shrunk is one server-side-minimized failure.
type Shrunk struct {
	Index   int    // campaign index of the original failing scenario
	Args    string // minimal failing scenario's canonical replay string
	Verdict string // encoded verdict of the minimal scenario
	Evals   int    // candidate evaluations the shrink spent
}

// Report is a completed fleet campaign.
type Report struct {
	N int
	// Lines holds the encoded verdict of scenario i at index i — the
	// campaign's canonical byte stream (see WriteVerdicts).
	Lines []string
	// Verdicts are the parsed counterparts of Lines.
	Verdicts []*chaos.Verdict

	OK, Expected, Failed int
	// Failures lists the failing scenario indices, ascending.
	Failures []int
	// Shrunk holds the minimized failures, in Failures order, at most
	// MaxShrinks of them.
	Shrunk []Shrunk

	// Evaluations counts every scenario sent to the evaluator, campaign
	// and shrink passes together.
	Evaluations int
}

// Run drives one campaign through ev. The returned report is
// byte-deterministic in the campaign options: evaluator transport, batch
// size, worker count, and arrival order cannot change a single byte of
// Lines, Failures, or Shrunk (they can change Evaluations only through
// ShrinkBudget truncation, which is itself deterministic).
func Run(ctx context.Context, opts Options, ev Evaluator) (*Report, error) {
	o := opts.withDefaults()
	n := o.Campaign.N
	if n <= 0 {
		return nil, fmt.Errorf("fleet: campaign N must be positive, got %d", n)
	}

	lines := make([]string, n)
	type span struct{ lo, hi int }
	work := make(chan span)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	done := 0
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sp := range work {
				if failed() || ctx.Err() != nil {
					continue
				}
				scen := make([]*chaos.Scenario, sp.hi-sp.lo)
				for i := range scen {
					scen[i] = chaos.ScenarioAt(o.Campaign, sp.lo+i)
				}
				out, err := ev.Evaluate(ctx, scen)
				if err != nil {
					fail(fmt.Errorf("fleet: batch [%d,%d): %w", sp.lo, sp.hi, err))
					continue
				}
				if len(out) != len(scen) {
					fail(fmt.Errorf("fleet: batch [%d,%d): evaluator returned %d verdicts for %d scenarios",
						sp.lo, sp.hi, len(out), len(scen)))
					continue
				}
				copy(lines[sp.lo:sp.hi], out)
				mu.Lock()
				done += len(scen)
				d := done
				mu.Unlock()
				if o.Progress != nil {
					o.Progress(d, n)
				}
			}
		}()
	}
	for lo := 0; lo < n; lo += o.Batch {
		hi := lo + o.Batch
		if hi > n {
			hi = n
		}
		work <- span{lo, hi}
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &Report{N: n, Lines: lines, Verdicts: make([]*chaos.Verdict, n), Evaluations: n}
	for i, line := range lines {
		v, err := chaos.ParseVerdict(line)
		if err != nil {
			return nil, fmt.Errorf("fleet: scenario %d verdict: %w", i, err)
		}
		rep.Verdicts[i] = v
		switch v.Status {
		case chaos.StatusOK:
			rep.OK++
		case chaos.StatusExpected:
			rep.Expected++
		default:
			rep.Failed++
			rep.Failures = append(rep.Failures, i)
		}
	}

	for _, idx := range rep.Failures {
		if len(rep.Shrunk) >= o.MaxShrinks {
			break
		}
		sh, err := shrinkOne(ctx, ev, chaos.ScenarioAt(o.Campaign, idx), lines[idx], o.ShrinkBudget)
		if err != nil {
			return nil, fmt.Errorf("fleet: shrinking scenario %d: %w", idx, err)
		}
		sh.Index = idx
		rep.Shrunk = append(rep.Shrunk, sh)
		rep.Evaluations += sh.Evals
	}
	return rep, nil
}

// shrinkOne greedily minimizes one failing scenario through the
// evaluator. Each pass evaluates the full valid candidate list of
// chaos.ShrinkCandidates as ONE batch and accepts the first failing
// candidate in candidate order — a deterministic rule whatever the
// evaluator's internal parallelism, which is what lets 1-replica,
// 3-replica, and oracle runs agree on the minimal scenario byte-for-byte.
// Like chaos.Shrink, the result is 1-minimal with respect to the
// candidate moves (unless the budget ran out first).
func shrinkOne(ctx context.Context, ev Evaluator, s *chaos.Scenario, verdict string, budget int) (Shrunk, error) {
	cur, curLine := s, verdict
	evals := 0
	for {
		var cands []*chaos.Scenario
		for _, c := range chaos.ShrinkCandidates(cur) {
			if c.Validate() == nil {
				cands = append(cands, c)
			}
		}
		if len(cands) > budget-evals {
			cands = cands[:budget-evals]
		}
		if len(cands) == 0 {
			break
		}
		out, err := ev.Evaluate(ctx, cands)
		if err != nil {
			return Shrunk{}, err
		}
		if len(out) != len(cands) {
			return Shrunk{}, fmt.Errorf("evaluator returned %d verdicts for %d candidates", len(out), len(cands))
		}
		evals += len(cands)
		improved := false
		for j, line := range out {
			v, err := chaos.ParseVerdict(line)
			if err != nil {
				return Shrunk{}, err
			}
			if v.Status == chaos.StatusFail {
				cur, curLine = cands[j], line
				improved = true
				break
			}
		}
		if !improved || evals >= budget {
			break
		}
	}
	return Shrunk{Args: cur.Args(), Verdict: curLine, Evals: evals}, nil
}

// WriteVerdicts renders the campaign's canonical verdict stream: one
// "#<index><TAB><verdict>" line per scenario in index order. Two
// campaigns are byte-equal on this stream exactly when every scenario
// ran bitwise-identically and was classified the same way — the artifact
// the fleet determinism gates cmp(1).
func WriteVerdicts(w io.Writer, lines []string) error {
	for i, l := range lines {
		if _, err := fmt.Fprintf(w, "#%06d\t%s\n", i, l); err != nil {
			return err
		}
	}
	return nil
}
