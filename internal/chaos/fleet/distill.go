package fleet

import (
	"fmt"
	"strconv"

	"resilience/internal/chaos"
)

// maxCorpus caps the distilled corpus: enough to seed the fuzz targets
// densely, small enough to review in a diff.
const maxCorpus = 64

// Distill selects a campaign's "interesting" scenarios for the
// committed fuzz corpus. A scenario is kept when any classifier fires:
//
//   - violation: the verdict failed the invariant battery (the whole
//     point of the corpus — confirmed bug inputs never rot away)
//   - multi-fault: two or more faults (compound recovery paths)
//   - swo-compound: a system-wide outage plus another fault (the
//     stale-restore bug class)
//   - multi-rank-simultaneous: distinct ranks struck at one iteration
//     (the collective-recovery path)
//   - near-budget: the run finished within 10% of its iteration budget
//     (one recovery regression away from a spurious expected-failure)
//   - slow-converge: converged but took at least twice the system size
//     in iterations (heavy recovery churn)
//   - near-tol: converged with a residual within 4x of the tolerance
//     (margin thin enough that a single-ULP change flips the verdict)
//   - dup-key: the canonical args appeared earlier in the campaign
//     (cache-adversarial — exercises the content-addressed dedup path)
//
// Entries are deduplicated by canonical args (first index wins, reasons
// merged), ordered by campaign index, and capped at maxCorpus — all
// deterministic, so regeneration from the same campaign is a no-op diff.
func Distill(opts chaos.Options, lines []string) ([]chaos.CorpusEntry, error) {
	firstAt := make(map[string]int, len(lines))
	reasonsOf := make(map[string][]string)
	var order []string
	for i, line := range lines {
		v, err := chaos.ParseVerdict(line)
		if err != nil {
			return nil, fmt.Errorf("fleet: distill scenario %d: %w", i, err)
		}
		s, err := chaos.ParseArgs(v.Args)
		if err != nil {
			return nil, fmt.Errorf("fleet: distill scenario %d: %w", i, err)
		}
		reasons := classify(s, v)
		if _, seen := firstAt[v.Args]; seen {
			reasons = append(reasons, "dup-key")
			reasonsOf[v.Args] = mergeReasons(reasonsOf[v.Args], reasons)
			continue
		}
		if len(reasons) == 0 {
			continue
		}
		firstAt[v.Args] = i
		reasonsOf[v.Args] = reasons
		order = append(order, v.Args)
	}
	if len(order) > maxCorpus {
		order = order[:maxCorpus]
	}
	out := make([]chaos.CorpusEntry, len(order))
	for i, args := range order {
		out[i] = chaos.CorpusEntry{Args: args, Reasons: reasonsOf[args]}
	}
	return out, nil
}

// classify returns the reasons a scenario is corpus-worthy, in a fixed
// order (the corpus file is diffed, so ordering is part of the format).
func classify(s *chaos.Scenario, v *chaos.Verdict) []string {
	var reasons []string
	if v.Status == chaos.StatusFail {
		reasons = append(reasons, "violation")
	}
	if len(s.Faults) >= 2 {
		reasons = append(reasons, "multi-fault")
		hasSWO := false
		for _, f := range s.Faults {
			if f.Class.String() == "SWO" {
				hasSWO = true
				break
			}
		}
		if hasSWO {
			reasons = append(reasons, "swo-compound")
		}
		for i := 1; i < len(s.Faults); i++ {
			if s.Faults[i].Iter == s.Faults[i-1].Iter && s.Faults[i].Rank != s.Faults[i-1].Rank {
				reasons = append(reasons, "multi-rank-simultaneous")
				break
			}
		}
	}
	if v.RelRes != "" { // the run produced a report
		if max := s.MaxIters(); v.Iters*10 >= max*9 {
			reasons = append(reasons, "near-budget")
		}
		if v.Converged && v.Iters >= 2*s.N() {
			reasons = append(reasons, "slow-converge")
		}
		if rr, err := strconv.ParseFloat(v.RelRes, 64); err == nil &&
			v.Converged && rr*4 >= s.Tol {
			reasons = append(reasons, "near-tol")
		}
	}
	return reasons
}

// mergeReasons appends the reasons of add not already in base, keeping
// base's order.
func mergeReasons(base, add []string) []string {
	have := make(map[string]bool, len(base))
	for _, r := range base {
		have[r] = true
	}
	for _, r := range add {
		if !have[r] {
			base = append(base, r)
			have[r] = true
		}
	}
	return base
}
