package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"resilience/internal/chaos"
	"resilience/internal/service"
)

// Client evaluates scenario batches against a live fleet: a
// resilience-router (preferred — one POST /batch per batch, fanned out
// across replicas by the consistent-hash ring) or a bare resilienced
// replica (automatic fallback to per-item POST /solve when the target
// has no /batch). Backpressured items — 429s and transient 5xx — are
// retried per item, so replica churn and queue saturation cost time,
// never verdicts. Safe for concurrent use.
type Client struct {
	// Base is the router or replica base URL (http://host:port).
	Base string
	// BreakInvariant is sent as each job's break_invariant field.
	BreakInvariant string
	// HTTP is the transport (nil: a 5-minute-timeout client).
	HTTP *http.Client
	// MaxRetries bounds per-item retries of backpressured responses
	// (<=0: 240).
	MaxRetries int
	// RetrySleep is the pause between per-item retries (<=0: 25 ms).
	RetrySleep time.Duration

	noBatch atomic.Bool // target answered 404/405 on /batch: use /solve
}

// NewClient builds an HTTP evaluator for the fleet at base.
func NewClient(base, breakInvariant string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), BreakInvariant: breakInvariant}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 5 * time.Minute}
}

func (c *Client) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 240
}

func (c *Client) retrySleep() time.Duration {
	if c.RetrySleep > 0 {
		return c.RetrySleep
	}
	return 25 * time.Millisecond
}

// wireItem mirrors the router's /batch response element.
type wireItem struct {
	Code int             `json:"code"`
	Body json.RawMessage `json:"body"`
}

// Evaluate implements Evaluator: one round-trip for the whole batch when
// the target speaks /batch, per-item /solve otherwise, with per-item
// retry of backpressured responses either way.
func (c *Client) Evaluate(ctx context.Context, scenarios []*chaos.Scenario) ([]string, error) {
	reqs := make([]service.JobRequest, len(scenarios))
	for i, s := range scenarios {
		reqs[i] = service.JobRequest{Scenario: s.Args(), Verdict: true, BreakInvariant: c.BreakInvariant}
	}
	items, err := c.postBatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(reqs))
	for i := range reqs {
		line, err := c.finishItem(ctx, reqs[i], items[i])
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", reqs[i].Scenario, err)
		}
		out[i] = line
	}
	return out, nil
}

// postBatch submits the batch, falling back to per-item /solve when the
// target has no /batch endpoint, and retrying whole-batch backpressure
// (a saturated router rejects the batch before fanning it out).
func (c *Client) postBatch(ctx context.Context, reqs []service.JobRequest) ([]wireItem, error) {
	if c.noBatch.Load() {
		return c.solveAll(ctx, reqs)
	}
	body, err := json.Marshal(reqs)
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		code, respBody, err := c.post(ctx, "/batch", body)
		if err != nil {
			return nil, err
		}
		switch {
		case code == http.StatusOK:
			var items []wireItem
			if err := json.Unmarshal(respBody, &items); err != nil {
				return nil, fmt.Errorf("fleet: bad batch response: %w", err)
			}
			if len(items) != len(reqs) {
				return nil, fmt.Errorf("fleet: batch answered %d items for %d requests", len(items), len(reqs))
			}
			return items, nil
		case code == http.StatusNotFound || code == http.StatusMethodNotAllowed:
			// A bare replica: it solves, it just doesn't batch.
			c.noBatch.Store(true)
			return c.solveAll(ctx, reqs)
		case retryable(code) && attempt < c.maxRetries():
			if err := sleepCtx(ctx, c.retrySleep()); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("fleet: batch status %d: %s", code, respBody)
		}
	}
}

// solveAll is the no-/batch fallback: sequential per-item /solve posts
// shaped into batch items. (Concurrency comes from the driver running
// multiple batches; this path exists for bare replicas and tests.)
func (c *Client) solveAll(ctx context.Context, reqs []service.JobRequest) ([]wireItem, error) {
	items := make([]wireItem, len(reqs))
	for i := range reqs {
		body, err := json.Marshal(reqs[i])
		if err != nil {
			return nil, err
		}
		code, respBody, err := c.post(ctx, "/solve", body)
		if err != nil {
			return nil, err
		}
		items[i] = wireItem{Code: code, Body: respBody}
	}
	return items, nil
}

// finishItem extracts one item's verdict line, retrying backpressured
// items individually through /solve until they land or the retry budget
// is gone. Retries re-enter through the router's normal routing path, so
// an item whose replica died mid-campaign re-shards to a survivor.
func (c *Client) finishItem(ctx context.Context, req service.JobRequest, item wireItem) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	for attempt := 0; ; attempt++ {
		if item.Code == http.StatusOK {
			var res service.JobResult
			if err := json.Unmarshal(item.Body, &res); err != nil {
				return "", fmt.Errorf("fleet: bad job result: %w", err)
			}
			if res.Verdict == "" {
				return "", fmt.Errorf("fleet: job result carries no verdict: %s", item.Body)
			}
			return res.Verdict, nil
		}
		if !retryable(item.Code) || attempt >= c.maxRetries() {
			return "", fmt.Errorf("fleet: item status %d: %s", item.Code, item.Body)
		}
		if err := sleepCtx(ctx, c.retrySleep()); err != nil {
			return "", err
		}
		code, respBody, err := c.post(ctx, "/solve", body)
		if err != nil {
			return "", err
		}
		item = wireItem{Code: code, Body: respBody}
	}
}

// retryable classifies backpressure and transient fleet churn: queue
// saturation (429), draining or no-replica windows (503), and forward
// failures while the ring re-shards (502). 4xx validation errors and
// 504 deadlines are permanent for the same request.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusBadGateway
}

func (c *Client) post(ctx context.Context, path string, body []byte) (int, []byte, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(hr)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, respBody, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
