package fleet_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"resilience/internal/chaos"
	"resilience/internal/chaos/fleet"
	"resilience/internal/service"
	"resilience/internal/service/router"
)

// campaign is the bounded e2e campaign: small enough for CI, broken on
// purpose so the full detect-and-shrink pipeline runs.
func campaign(n int) fleet.Options {
	return fleet.Options{
		Campaign: chaos.Options{
			N:              n,
			Seed:           7,
			BreakInvariant: chaos.InvConvergence,
		},
		Batch:      6,
		Workers:    3,
		MaxShrinks: 2,
	}
}

func bootFleet(t *testing.T, replicas int) (*router.Router, string, []*httptest.Server) {
	t.Helper()
	urls := make([]string, replicas)
	servers := make([]*httptest.Server, replicas)
	for i := range urls {
		ts := httptest.NewServer(service.New(service.Config{Workers: 2, QueueCap: 64}))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
		servers[i] = ts
	}
	rt, err := router.New(router.Config{Replicas: urls, HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	return rt, ts.URL, servers
}

func stream(t *testing.T, rep *fleet.Report) string {
	t.Helper()
	var b strings.Builder
	if err := fleet.WriteVerdicts(&b, rep.Lines); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestFleetDeterminismAcrossReplicaCounts is the fleet determinism
// contract end to end: the same bounded campaign, run against the
// in-process oracle, a router over ONE replica, and a router over THREE
// replicas, must produce byte-identical verdict streams, identical
// failure sets, and byte-identical server-side-shrunk minimal scenarios
// — sharding, arrival order, caching, and replica count must not be able
// to change a single byte.
func TestFleetDeterminismAcrossReplicaCounts(t *testing.T) {
	opts := campaign(24)
	ctx := context.Background()

	oracleRep, err := fleet.Run(ctx, opts, fleet.NewOracle(opts.Campaign.BreakInvariant, 4))
	if err != nil {
		t.Fatal(err)
	}
	if oracleRep.Failed == 0 {
		t.Fatal("broken campaign produced no failures — the e2e pipeline exercised nothing")
	}
	if len(oracleRep.Shrunk) == 0 {
		t.Fatal("no failure was shrunk")
	}
	oracleStream := stream(t, oracleRep)

	for _, replicas := range []int{1, 3} {
		_, base, _ := bootFleet(t, replicas)
		rep, err := fleet.Run(ctx, opts, fleet.NewClient(base, opts.Campaign.BreakInvariant))
		if err != nil {
			t.Fatalf("%d replicas: %v", replicas, err)
		}
		if got := stream(t, rep); got != oracleStream {
			t.Errorf("%d replicas: verdict stream differs from oracle\n%s", replicas, firstDiff(got, oracleStream))
		}
		if len(rep.Shrunk) != len(oracleRep.Shrunk) {
			t.Fatalf("%d replicas: %d shrunk failures, oracle %d", replicas, len(rep.Shrunk), len(oracleRep.Shrunk))
		}
		for i, sh := range rep.Shrunk {
			want := oracleRep.Shrunk[i]
			if sh.Index != want.Index || sh.Args != want.Args || sh.Verdict != want.Verdict {
				t.Errorf("%d replicas: shrunk %d differs\n got: #%d %s\nwant: #%d %s",
					replicas, i, sh.Index, sh.Args, want.Index, want.Args)
			}
		}
		if rep.OK != oracleRep.OK || rep.Expected != oracleRep.Expected || rep.Failed != oracleRep.Failed {
			t.Errorf("%d replicas: counts (%d,%d,%d) != oracle (%d,%d,%d)", replicas,
				rep.OK, rep.Expected, rep.Failed, oracleRep.OK, oracleRep.Expected, oracleRep.Failed)
		}
	}
}

// firstDiff renders the first differing line of two streams.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return "line " + g[i] + "\n  vs " + w[i]
		}
	}
	return "streams differ in length"
}

// TestFleetReplicaDeathMidCampaign kills one of three replicas while the
// campaign is in flight. The router must re-shard only the dead
// replica's key range and the client must retry backpressured items, so
// the campaign completes with every scenario's verdict exactly once —
// the final stream still byte-equals the oracle — and the router's
// reroute/campaign counters reconcile with the scenario count.
func TestFleetReplicaDeathMidCampaign(t *testing.T) {
	opts := campaign(30)
	opts.MaxShrinks = 1
	ctx := context.Background()

	oracleRep, err := fleet.Run(ctx, opts, fleet.NewOracle(opts.Campaign.BreakInvariant, 4))
	if err != nil {
		t.Fatal(err)
	}

	rt, base, servers := bootFleet(t, 3)
	var once sync.Once
	opts.Progress = func(done, total int) {
		if done >= opts.Batch {
			once.Do(func() {
				servers[0].CloseClientConnections()
				servers[0].Close()
			})
		}
	}
	rep, err := fleet.Run(ctx, opts, fleet.NewClient(base, opts.Campaign.BreakInvariant))
	if err != nil {
		t.Fatal(err)
	}

	// Verdict-count algebra: exactly one verdict per scenario (no index
	// lost, none duplicated), and the stream byte-equals the oracle's.
	if len(rep.Lines) != opts.Campaign.N {
		t.Fatalf("%d verdict lines for %d scenarios", len(rep.Lines), opts.Campaign.N)
	}
	if rep.OK+rep.Expected+rep.Failed != opts.Campaign.N {
		t.Fatalf("verdict counts %d+%d+%d do not sum to %d", rep.OK, rep.Expected, rep.Failed, opts.Campaign.N)
	}
	if got := stream(t, rep); got != stream(t, oracleRep) {
		t.Errorf("stream after replica death differs from oracle\n%s", firstDiff(got, stream(t, oracleRep)))
	}

	// The dead replica must be off the ring, and the campaign counters
	// must have seen at least one verdict job per scenario (retries may
	// add more, losses may not subtract).
	alive := 0
	for _, m := range rt.Members() {
		if m.Alive {
			alive++
		}
	}
	if alive != 2 {
		t.Errorf("%d replicas alive after death, want 2", alive)
	}
	metrics := scrape(t, base+"/metrics")
	if jobs := metricValueOf(metrics, "resilience_router_campaign_jobs_total"); jobs < float64(opts.Campaign.N) {
		t.Errorf("campaign_jobs_total = %v, want >= %d", jobs, opts.Campaign.N)
	}
	if v := metricValueOf(metrics, "resilience_router_campaign_verdicts_total"); v < float64(opts.Campaign.N) {
		t.Errorf("campaign_verdicts_total = %v, want >= %d", v, opts.Campaign.N)
	}
	if f := metricValueOf(metrics, "resilience_router_campaign_fail_total"); f < float64(rep.Failed) {
		t.Errorf("campaign_fail_total = %v, want >= %d", f, rep.Failed)
	}
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func metricValueOf(metrics, name string) float64 {
	for _, line := range strings.Split(metrics, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
				return v
			}
		}
	}
	return -1
}

// TestFleetBareReplicaFallback points the HTTP client straight at one
// replica (which has /solve but no /batch): the client must fall back to
// per-item posts and still produce the oracle's bytes.
func TestFleetBareReplicaFallback(t *testing.T) {
	opts := campaign(12)
	opts.MaxShrinks = 1
	ctx := context.Background()

	oracleRep, err := fleet.Run(ctx, opts, fleet.NewOracle(opts.Campaign.BreakInvariant, 4))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.New(service.Config{Workers: 2, QueueCap: 64}))
	defer ts.Close()
	rep, err := fleet.Run(ctx, opts, fleet.NewClient(ts.URL, opts.Campaign.BreakInvariant))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stream(t, rep), stream(t, oracleRep); got != want {
		t.Errorf("bare-replica stream differs from oracle\n%s", firstDiff(got, want))
	}
}

// TestVerdictKeyRoundTrip is the scenario-codec property test over the
// wire path: for generated campaign scenarios, encoding into a verdict
// job, keying through service.CanonicalKey, stripping the key prefix,
// and decoding back must reproduce the scenario unchanged — the cache
// key IS the canonical scenario.
func TestVerdictKeyRoundTrip(t *testing.T) {
	opts := chaos.Options{Seed: 11}
	for i := 0; i < 64; i++ {
		s := chaos.ScenarioAt(opts, i)
		args := s.Args()
		key, cacheable, err := service.CanonicalKey(service.JobRequest{Scenario: args, Verdict: true})
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		if !cacheable {
			t.Fatalf("scenario %d: verdict job not cacheable", i)
		}
		rest, ok := strings.CutPrefix(key, "j1|verdict||")
		if !ok {
			t.Fatalf("scenario %d: key %q missing verdict prefix", i, key)
		}
		back, err := chaos.ParseArgs(rest)
		if err != nil {
			t.Fatalf("scenario %d: key args do not decode: %v", i, err)
		}
		if back.Args() != args {
			t.Fatalf("scenario %d: encode->key->decode changed the scenario\n in: %s\nout: %s", i, args, back.Args())
		}
	}
}

// TestDistillDeterministic pins the corpus distiller: same campaign,
// same corpus bytes; every entry re-parses as a codec fixpoint with at
// least one reason; duplicates collapse with a dup-key reason.
func TestDistillDeterministic(t *testing.T) {
	opts := chaos.Options{N: 48, Seed: 7}
	oracle := fleet.NewOracle("", 4)
	rep, err := fleet.Run(context.Background(), fleet.Options{Campaign: opts, Batch: 12}, oracle)
	if err != nil {
		t.Fatal(err)
	}
	a, err := fleet.Distill(opts, rep.Lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("48-scenario campaign distilled nothing")
	}
	b, err := fleet.Distill(opts, rep.Lines)
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	if err := chaos.WriteCorpus(&ab, a); err != nil {
		t.Fatal(err)
	}
	if err := chaos.WriteCorpus(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatal("distillation is not deterministic")
	}
	back, err := chaos.ReadCorpus(&ab)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(a) {
		t.Fatalf("corpus round-trip lost entries: %d -> %d", len(a), len(back))
	}
	for _, e := range back {
		if len(e.Reasons) == 0 || e.Reasons[0] == "" {
			t.Fatalf("entry %q has no reasons", e.Args)
		}
		s, err := chaos.ParseArgs(e.Args)
		if err != nil {
			t.Fatal(err)
		}
		if s.Args() != e.Args {
			t.Fatalf("corpus entry is not a codec fixpoint: %q", e.Args)
		}
	}
}
