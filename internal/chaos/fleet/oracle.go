package fleet

import (
	"context"
	"sync"

	"resilience/internal/chaos"
)

// Oracle evaluates scenarios in-process. It is the single-process ground
// truth the distributed path is byte-compared against, and the engine
// behind `chaos-fleet -oracle` (corpus distillation without a running
// fleet). Safe for concurrent use.
type Oracle struct {
	breakInvariant string
	workers        int
	runner         *chaos.Runner
}

// NewOracle builds an in-process evaluator. breakInvariant mirrors the
// wire protocol's break_invariant field; workers bounds per-batch
// parallelism (<=0: 1).
func NewOracle(breakInvariant string, workers int) *Oracle {
	if workers <= 0 {
		workers = 1
	}
	// The runner takes default options — exactly the configuration of the
	// service's verdict runner — and the break hook is applied outside it,
	// the way the service applies it (see service.RunJob's verdict path).
	return &Oracle{
		breakInvariant: breakInvariant,
		workers:        workers,
		runner:         chaos.NewRunner(chaos.Options{}),
	}
}

// Evaluate implements Evaluator.
func (o *Oracle) Evaluate(ctx context.Context, scenarios []*chaos.Scenario) ([]string, error) {
	out := make([]string, len(scenarios))
	workers := o.workers
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				line, err := o.one(ctx, scenarios[i])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				out[i] = line
			}
		}()
	}
	for i := range scenarios {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// one mirrors the service's verdict job step for step: re-parse the
// canonical args exactly as the wire does (so any codec drift shows up
// as a stream mismatch, not a silent divergence), run the shared-runner
// invariant battery, apply the break hook to faulted scenarios, encode.
func (o *Oracle) one(ctx context.Context, s *chaos.Scenario) (string, error) {
	parsed, err := chaos.ParseArgs(s.Args())
	if err != nil {
		return "", err
	}
	res := o.runner.RunContext(ctx, 0, parsed)
	if res.Err != nil && ctx.Err() != nil {
		return "", res.Err
	}
	if o.breakInvariant != "" && len(parsed.Faults) > 0 {
		res.Violations = append(res.Violations, chaos.SelfTestViolation(o.breakInvariant))
	}
	return chaos.VerdictOf(res).Encode(), nil
}
