package chaos

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Verdict is one scenario's campaign outcome in wire form: the canonical
// scenario, its classification, and the bitwise-faithful run facts. It is
// the unit the distributed chaos fleet streams back from service
// replicas, so the encoding is strictly deterministic — two verdicts are
// byte-equal exactly when the underlying runs were bitwise-identical and
// classified the same way.
//
// Float fields are hex float64 strings (strconv 'x' round-trips every
// bit); the solution and residual history are folded to FNV-1a-64 hashes
// (see HashFloats). Fields describing the run report are empty when the
// run errored before producing one.
type Verdict struct {
	Status   string // "ok", "expected", or "fail"
	Args     string // canonical scenario flag string (Scenario.Args)
	Expected string // classification when Status == "expected"

	// Run-report facts (present when the run completed).
	Iters        int
	Converged    bool
	RelRes       string // hex float64
	Time         string // hex float64 (modeled seconds)
	Energy       string // hex float64 (modeled joules)
	SolutionHash string
	HistoryHash  string

	// Violations renders each failed invariant as "name: detail"
	// (run-level errors appear as "run-error: ..."). Non-empty exactly
	// when Status == "fail".
	Violations []string
}

// verdictVersion prefixes every encoded verdict so a future codec change
// can never alias lines produced by an older one.
const verdictVersion = "v1"

// Statuses a verdict can carry.
const (
	StatusOK       = "ok"
	StatusExpected = "expected"
	StatusFail     = "fail"
)

// Encode renders the verdict as one deterministic line: space-separated
// key=value fields in fixed order, free-text values Go-quoted. ParseVerdict
// inverts it exactly (pinned by TestVerdictRoundTrip and the fleet codec
// property test).
func (v *Verdict) Encode() string {
	var b strings.Builder
	b.WriteString(verdictVersion)
	fmt.Fprintf(&b, " status=%s", v.Status)
	fmt.Fprintf(&b, " args=%s", strconv.Quote(v.Args))
	if v.Expected != "" {
		fmt.Fprintf(&b, " expected=%s", strconv.Quote(v.Expected))
	}
	if v.RelRes != "" {
		fmt.Fprintf(&b, " iters=%d converged=%t relres=%s time=%s energy=%s xhash=%s hhash=%s",
			v.Iters, v.Converged, v.RelRes, v.Time, v.Energy, v.SolutionHash, v.HistoryHash)
	}
	for _, viol := range v.Violations {
		fmt.Fprintf(&b, " violation=%s", strconv.Quote(viol))
	}
	return b.String()
}

// ParseVerdict decodes one line produced by Encode. It validates the
// version, the status, and every field syntactically; re-encoding the
// result reproduces the input byte-for-byte.
func ParseVerdict(line string) (*Verdict, error) {
	rest, ok := strings.CutPrefix(line, verdictVersion+" ")
	if !ok {
		return nil, fmt.Errorf("chaos: verdict line missing %q prefix: %q", verdictVersion, line)
	}
	v := &Verdict{}
	seenReport := false
	for rest != "" {
		rest = strings.TrimPrefix(rest, " ")
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("chaos: verdict token %q has no '='", rest)
		}
		key, val := rest[:eq], rest[eq+1:]
		var raw string
		if strings.HasPrefix(val, `"`) {
			q, err := strconv.QuotedPrefix(val)
			if err != nil {
				return nil, fmt.Errorf("chaos: verdict field %s has a torn quote: %v", key, err)
			}
			raw, err = strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("chaos: verdict field %s: %v", key, err)
			}
			rest = val[len(q):]
		} else {
			end := strings.IndexByte(val, ' ')
			if end < 0 {
				end = len(val)
			}
			raw = val[:end]
			rest = val[end:]
		}
		switch key {
		case "status":
			switch raw {
			case StatusOK, StatusExpected, StatusFail:
				v.Status = raw
			default:
				return nil, fmt.Errorf("chaos: unknown verdict status %q", raw)
			}
		case "args":
			v.Args = raw
		case "expected":
			v.Expected = raw
		case "iters":
			n, err := strconv.Atoi(raw)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad verdict iters %q: %v", raw, err)
			}
			v.Iters = n
			seenReport = true
		case "converged":
			t, err := strconv.ParseBool(raw)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad verdict converged %q: %v", raw, err)
			}
			v.Converged = t
		case "relres", "time", "energy":
			if _, err := strconv.ParseFloat(raw, 64); err != nil {
				return nil, fmt.Errorf("chaos: bad verdict %s %q: %v", key, raw, err)
			}
			switch key {
			case "relres":
				v.RelRes = raw
			case "time":
				v.Time = raw
			case "energy":
				v.Energy = raw
			}
		case "xhash":
			v.SolutionHash = raw
		case "hhash":
			v.HistoryHash = raw
		case "violation":
			v.Violations = append(v.Violations, raw)
		default:
			return nil, fmt.Errorf("chaos: unknown verdict field %q", key)
		}
	}
	if v.Status == "" {
		return nil, fmt.Errorf("chaos: verdict line has no status: %q", line)
	}
	if seenReport && v.RelRes == "" {
		return nil, fmt.Errorf("chaos: verdict has iters but no relres: %q", line)
	}
	if (v.Status == StatusFail) != (len(v.Violations) > 0) {
		return nil, fmt.Errorf("chaos: verdict status %q disagrees with %d violations", v.Status, len(v.Violations))
	}
	return v, nil
}

// VerdictOf folds a campaign Result into its wire verdict. Both halves of
// the fleet determinism contract go through it: the in-process oracle
// directly, and the service's verdict-bearing job result (which the fleet
// driver forwards untouched) — so fleet and oracle streams can only agree
// byte-for-byte.
func VerdictOf(r *Result) *Verdict {
	v := &Verdict{Args: r.Scenario.Args(), Expected: r.Expected}
	switch {
	case r.Failed():
		v.Status = StatusFail
	case r.Expected != "":
		v.Status = StatusExpected
	default:
		v.Status = StatusOK
	}
	if r.Err != nil {
		v.Violations = append(v.Violations, "run-error: "+r.Err.Error())
	}
	for _, viol := range r.Violations {
		v.Violations = append(v.Violations, viol.String())
	}
	if rep := r.Report; rep != nil {
		v.Iters = rep.Iters
		v.Converged = rep.Converged
		v.RelRes = HexFloat(rep.RelRes)
		v.Time = HexFloat(rep.Time)
		v.Energy = HexFloat(rep.Energy)
		v.SolutionHash = HashFloats(rep.Solution)
		v.HistoryHash = HashFloats(rep.History)
	}
	return v
}

// SelfTestViolation is the violation the campaign's -break hook injects:
// a deliberate failure proving the detection/shrinking pipeline
// end-to-end. One constructor keeps the detail text identical between the
// in-process campaign runner and the service's verdict jobs, so broken
// runs stay byte-comparable across the fleet and the oracle.
func SelfTestViolation(invariant string) Violation {
	return Violation{Invariant: invariant, Detail: "deliberately broken via -break (checker self-test)"}
}

// HexFloat renders a float64 with every bit intact ('x' format
// round-trips exactly; %g does not).
func HexFloat(v float64) string {
	return strconv.FormatFloat(v, 'x', -1, 64)
}

// HashFloats folds a vector to an FNV-1a-64 hash over the little-endian
// bit patterns of its elements, preceded by the length — small on the
// wire, sensitive to any single-ULP difference.
func HashFloats(xs []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(xs)))
	h.Write(buf[:])
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
