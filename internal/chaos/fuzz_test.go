package chaos

import "testing"

// FuzzScenarioArgs fuzzes the campaign-config decoder: any input either
// fails to parse, or parses to a scenario whose canonical encoding is a
// fixpoint of ParseArgs — Parse(Encode(Parse(x))) == Parse(x). The seed
// corpus (also checked in under testdata/fuzz) covers every flag, all
// fault classes, clustered faults, and near-miss malformed inputs, plus
// every scenario the fleet distilled as interesting from a real
// campaign (testdata/corpus/distilled.txt).
func FuzzScenarioArgs(f *testing.F) {
	for _, e := range readDistilled(f) {
		f.Add(e.Args)
	}
	f.Add("")
	f.Add("-grid 8 -ranks 4 -scheme LI-DVFS -tol 1e-10 -ckpt 6 -detect 2 -seed 7 -overlap -faults SNF@5:r2,SDC@9:r0")
	f.Add("-grid 6 -ranks 1 -scheme CR-M -tol 1e-08 -ckpt 2 -detect 0 -seed 1 -jacobi")
	f.Add("-grid 10 -ranks 6 -scheme F0 -faults DCE@1:r0,DUE@1:r1,SWO@2:r5,LNF@2:r3")
	f.Add("-scheme LSI(QR) -overlap -jacobi -faults SNF@33:r0")
	f.Add("-tol 1e-320 -seed -9223372036854775808")
	f.Add("-faults SNF@5:r2,")
	f.Add("-grid 08 -ranks 004")
	f.Fuzz(func(t *testing.T, args string) {
		s, err := ParseArgs(args)
		if err != nil {
			return // malformed input rejected: fine
		}
		enc := s.Args()
		back, err := ParseArgs(enc)
		if err != nil {
			t.Fatalf("canonical encoding of %q does not re-parse: %q: %v", args, enc, err)
		}
		if back.Args() != enc {
			t.Fatalf("encoding is not a fixpoint:\n in: %s\nout: %s", enc, back.Args())
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("re-parsed scenario invalid: %v", err)
		}
	})
}
