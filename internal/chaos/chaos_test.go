package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"resilience/internal/core"
)

// TestScenarioArgsRoundTrip: Args/ParseArgs are exact inverses over
// randomly generated scenarios. Each sub-test is named by its derived
// seed so a failure replays with -run 'TestScenarioArgsRoundTrip/seed=N'.
func TestScenarioArgsRoundTrip(t *testing.T) {
	for i := 0; i < 200; i++ {
		seed := int64(1) + int64(i)*SeedStride
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := NewScenario(rand.New(rand.NewSource(seed)), Options{})
			args := s.Args()
			back, err := ParseArgs(args)
			if err != nil {
				t.Fatalf("ParseArgs(%q): %v", args, err)
			}
			if back.Args() != args {
				t.Fatalf("round trip changed the scenario:\n in: %s\nout: %s", args, back.Args())
			}
		})
	}
}

func TestParseArgsRejectsInvalid(t *testing.T) {
	cases := []string{
		"-grid 1",                       // grid too small
		"-grid 8 -ranks 0",              // no ranks
		"-grid 3 -ranks 10",             // ranks > n
		"-scheme NOPE",                  // unknown scheme
		"-tol 0",                        // tolerance out of range
		"-tol 2",                        // tolerance out of range
		"-faults XXX@1:r0",              // unknown class
		"-faults SNF@0:r0",              // iteration < 1
		"-ranks 2 -faults SNF@1:r5",     // fault rank out of range
		"-faults SNF@1",                 // missing rank
		"-wat 3",                        // unknown flag
		"-grid",                         // missing value
		"-ckpt -1",                      // negative interval
		"-detect 1000",                  // delay out of range
		"-faults SNF@999999999999:r0",   // iteration past any budget
		"-grid 8 -ranks 4 -seed banana", // non-numeric
	}
	for _, c := range cases {
		if _, err := ParseArgs(c); err == nil {
			t.Errorf("ParseArgs(%q) accepted an invalid scenario", c)
		}
	}
}

func TestParseArgsDefaults(t *testing.T) {
	s, err := ParseArgs("")
	if err != nil {
		t.Fatal(err)
	}
	if s.Grid != 8 || s.Ranks != 4 || s.Scheme != "LI" || s.Tol != 1e-10 {
		t.Fatalf("unexpected defaults: %+v", s)
	}
}

// TestCampaignInvariantsHold is the package's core property test: a
// seeded mixed-scheme campaign with up to 3 overlapping faults per
// scenario passes the full invariant battery, including the rerun-based
// determinism and overlap-equivalence checks. Each scenario is a
// sub-test named by its index, so `-run 'TestCampaignInvariantsHold/scn=17'`
// replays one exactly.
func TestCampaignInvariantsHold(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 8
	}
	opts := Options{N: n, Seed: 1, Workers: 4, Recheck: true}
	results := RunCampaign(opts)
	for _, r := range results {
		r := r
		t.Run(fmt.Sprintf("scn=%d", r.Index), func(t *testing.T) {
			if r.Failed() {
				t.Fatalf("scenario failed:\n%s\nreplay: %s", r.Line(), r.Scenario.Args())
			}
		})
	}
}

// TestCampaignDeterministicAcrossWorkers: the campaign report is
// byte-identical regardless of worker count.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		var b strings.Builder
		for _, r := range RunCampaign(Options{N: 10, Seed: 42, Workers: workers}) {
			b.WriteString(r.Line())
			b.WriteByte('\n')
		}
		return b.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("campaign output depends on worker count:\n--- workers=1\n%s--- workers=8\n%s", seq, par)
	}
}

// TestExpectedFailureClassification: a run that exhausts its budget with
// faults present is an expected failure; without faults it is not.
func TestExpectedFailureClassification(t *testing.T) {
	s := &Scenario{Grid: 6, Ranks: 2, Scheme: "F0", Tol: 1e-10, Seed: 1,
		Faults: []FaultSpec{{Rank: 0, Iter: 3}}}
	rep := fakeReport(false, s.MaxIters())
	if _, ok := ExpectedFailure(s, rep); !ok {
		t.Error("budget exhaustion with faults should classify as expected failure")
	}
	rep = fakeReport(false, s.MaxIters()-1)
	if _, ok := ExpectedFailure(s, rep); ok {
		t.Error("stopping before the budget must not classify as expected")
	}
	noFaults := &Scenario{Grid: 6, Ranks: 2, Scheme: "F0", Tol: 1e-10, Seed: 1}
	rep = fakeReport(false, noFaults.MaxIters())
	if _, ok := ExpectedFailure(noFaults, rep); ok {
		t.Error("a fault-free run may never fail expectedly")
	}
	rep = fakeReport(true, 10)
	if _, ok := ExpectedFailure(s, rep); ok {
		t.Error("a converged run is not a failure at all")
	}
}

// TestShrinkMinimizes: the shrinker reduces a large scenario to the
// 1-minimal core under an oracle that fails whenever any fault is
// present.
func TestShrinkMinimizes(t *testing.T) {
	s := &Scenario{
		Grid: 10, Ranks: 6, Scheme: "LSI-DVFS", Tol: 1e-10, CkptEvery: 7,
		DetectDelay: 2, Overlap: true, Jacobi: true, Seed: 999,
		Faults: []FaultSpec{
			{Class: 4, Rank: 3, Iter: 9},
			{Class: 2, Rank: 5, Iter: 9},
			{Class: 3, Rank: 1, Iter: 14},
		},
	}
	min := Shrink(s, func(c *Scenario) bool { return len(c.Faults) > 0 })
	if len(min.Faults) != 1 {
		t.Fatalf("want 1 fault after shrinking, got %d (%s)", len(min.Faults), min.Args())
	}
	if min.Grid != 4 || min.Ranks != 1 || min.Overlap || min.Jacobi || min.DetectDelay != 0 {
		t.Fatalf("shrinker left reducible structure: %s", min.Args())
	}
	if f := min.Faults[0]; f.Iter != 1 || f.Rank != 0 {
		t.Fatalf("shrinker left reducible fault placement: %s", min.Args())
	}
	if err := min.Validate(); err != nil {
		t.Fatalf("shrunk scenario invalid: %v", err)
	}
}

// TestShrinkKeepsFailing: whatever the oracle, the shrunk scenario still
// fails it (the minimum is a witness, not a guess).
func TestShrinkKeepsFailing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		s := NewScenario(rng, Options{MaxFaults: 3})
		if len(s.Faults) < 2 {
			continue
		}
		// Oracle: fails while a hard fault on an even rank remains.
		oracle := func(c *Scenario) bool {
			for _, f := range c.Faults {
				if f.Class.IsHard() && f.Rank%2 == 0 {
					return true
				}
			}
			return false
		}
		if !oracle(s) {
			continue
		}
		min := Shrink(s, oracle)
		if !oracle(min) {
			t.Fatalf("shrink lost the failure: %s -> %s", s.Args(), min.Args())
		}
	}
}

// TestBreakInvariantReportsAndShrinks: the checker's self-test hook must
// surface as a violation and shrink to a minimal single-fault scenario —
// the end-to-end path the CLI uses to prove the reporter works.
func TestBreakInvariantReportsAndShrinks(t *testing.T) {
	opts := Options{N: 12, Seed: 3, Workers: 2, BreakInvariant: InvConvergence}
	results := RunCampaign(opts)
	var failing *Result
	for _, r := range results {
		if r.Failed() {
			failing = r
			break
		}
	}
	if failing == nil {
		t.Fatal("campaign with -break produced no failure")
	}
	found := false
	for _, v := range failing.Violations {
		if v.Invariant == InvConvergence && strings.Contains(v.Detail, "deliberately") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing deliberate violation in %s", failing.Line())
	}
	rn := NewRunner(opts)
	min := Shrink(failing.Scenario, func(c *Scenario) bool {
		return rn.Run(0, c).Failed()
	})
	if len(min.Faults) != 1 {
		t.Fatalf("broken-invariant scenario should shrink to one fault, got %s", min.Args())
	}
}

// fakeReport builds the minimal report the classifier reads.
func fakeReport(converged bool, iters int) *core.RunReport {
	return &core.RunReport{Converged: converged, Iters: iters}
}
