package chaos

import (
	"os"
	"testing"
)

const distilledCorpus = "testdata/corpus/distilled.txt"

// readDistilled loads the committed fleet-distilled corpus.
func readDistilled(t testing.TB) []CorpusEntry {
	t.Helper()
	f, err := os.Open(distilledCorpus)
	if err != nil {
		t.Fatalf("committed corpus missing: %v (regenerate with go run ./cmd/chaos-fleet -oracle -corpus-out %s)", err, distilledCorpus)
	}
	defer f.Close()
	entries, err := ReadCorpus(f)
	if err != nil {
		t.Fatalf("committed corpus does not parse: %v", err)
	}
	return entries
}

// TestDistilledCorpus validates the committed corpus the fleet driver
// distilled: enough entries to be worth seeding fuzzers with, every
// entry a canonical codec fixpoint with at least one classifier reason,
// and no duplicate scenarios (the distiller merges duplicates into one
// entry with a dup-key reason).
func TestDistilledCorpus(t *testing.T) {
	entries := readDistilled(t)
	if len(entries) < 20 {
		t.Fatalf("corpus has %d entries, want >= 20 — rerun the distiller over a bigger campaign", len(entries))
	}
	seen := make(map[string]bool, len(entries))
	for i, e := range entries {
		if len(e.Reasons) == 0 {
			t.Fatalf("entry %d %q has no reasons", i, e.Args)
		}
		if seen[e.Args] {
			t.Fatalf("entry %d %q duplicated — distiller dedupe is broken", i, e.Args)
		}
		seen[e.Args] = true
		s, err := ParseArgs(e.Args)
		if err != nil {
			t.Fatalf("entry %d does not parse: %v", i, err)
		}
		if s.Args() != e.Args {
			t.Fatalf("entry %d is not canonical:\n in: %s\nout: %s", i, e.Args, s.Args())
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("entry %d invalid: %v", i, err)
		}
	}
}
