package chaos

import "sort"

// Shrink greedily minimizes a failing scenario: it tries a fixed
// candidate sequence of simplifications (drop faults, shrink the grid,
// drop ranks, clear booleans, pull fault placements toward iteration 1 /
// rank 0) and keeps any candidate for which fails still returns true,
// looping until a full pass makes no progress. The result is 1-minimal
// with respect to the candidate moves — no single move keeps it failing —
// which in practice collapses a 3-fault 6-rank scenario to the one fault
// and the smallest system that still trip the invariant.
//
// fails must be deterministic (true = the scenario still fails). The
// total number of candidate evaluations is bounded by maxShrinkRuns, so a
// pathological oracle cannot stall the reporter.
func Shrink(s *Scenario, fails func(*Scenario) bool) *Scenario {
	cur := cloneScenario(s)
	budget := maxShrinkRuns
	for improved := true; improved && budget > 0; {
		improved = false
		for _, cand := range ShrinkCandidates(cur) {
			if budget--; budget <= 0 {
				break
			}
			if cand.Validate() != nil {
				continue
			}
			if fails(cand) {
				cur = cand
				improved = true
				break // restart the pass from the simplified scenario
			}
		}
	}
	return cur
}

const maxShrinkRuns = 200

func cloneScenario(s *Scenario) *Scenario {
	out := *s
	out.Faults = append([]FaultSpec(nil), s.Faults...)
	return &out
}

// ShrinkCandidates returns the one-step simplifications of s, most
// aggressive first (dropping whole faults beats nudging their fields).
// Candidates may be invalid (callers filter through Validate); each is an
// independent clone, safe to evaluate in parallel — the distributed fleet
// evaluates a whole pass as one batch of server-side verdict jobs.
func ShrinkCandidates(s *Scenario) []*Scenario {
	var cands []*Scenario
	mod := func(f func(*Scenario)) {
		c := cloneScenario(s)
		f(c)
		cands = append(cands, c)
	}
	// Drop each fault.
	for i := range s.Faults {
		i := i
		mod(func(c *Scenario) {
			c.Faults = append(c.Faults[:i], c.Faults[i+1:]...)
		})
	}
	// Shrink the system and the cluster. Fault coordinates are clamped
	// back into range so the candidate stays valid.
	if s.Grid > 4 {
		mod(func(c *Scenario) { c.Grid = c.Grid - 1; clampFaults(c) })
		mod(func(c *Scenario) { c.Grid = 4; clampFaults(c) })
	}
	if s.Ranks > 1 {
		mod(func(c *Scenario) { c.Ranks = c.Ranks - 1; clampFaults(c) })
		mod(func(c *Scenario) { c.Ranks = 1; clampFaults(c) })
	}
	// Clear the optional machinery.
	if s.Overlap {
		mod(func(c *Scenario) { c.Overlap = false })
	}
	if s.Jacobi {
		mod(func(c *Scenario) { c.Jacobi = false })
	}
	if s.DetectDelay > 0 {
		mod(func(c *Scenario) { c.DetectDelay = 0 })
	}
	// Pull fault placements toward the origin.
	for i, f := range s.Faults {
		i, f := i, f
		if f.Iter > 1 {
			mod(func(c *Scenario) { c.Faults[i].Iter = 1; sortFaults(c) })
			mod(func(c *Scenario) { c.Faults[i].Iter = f.Iter / 2; sortFaults(c) })
		}
		if f.Rank > 0 {
			mod(func(c *Scenario) { c.Faults[i].Rank = 0 })
		}
	}
	if s.Seed != 1 {
		mod(func(c *Scenario) { c.Seed = 1 })
	}
	return cands
}

func clampFaults(c *Scenario) {
	for i := range c.Faults {
		if c.Faults[i].Rank >= c.Ranks {
			c.Faults[i].Rank = c.Ranks - 1
		}
	}
}

func sortFaults(c *Scenario) {
	sort.SliceStable(c.Faults, func(i, j int) bool { return c.Faults[i].Iter < c.Faults[j].Iter })
}
