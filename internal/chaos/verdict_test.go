package chaos

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// TestVerdictRoundTrip pins the verdict wire codec: Encode and
// ParseVerdict invert each other exactly across hand-picked edge cases.
func TestVerdictRoundTrip(t *testing.T) {
	cases := []Verdict{
		{Status: StatusOK, Args: "-grid 6 -ranks 2 -scheme LI -tol 1e-10 -ckpt 0 -detect 0 -seed 1"},
		{Status: StatusExpected, Args: "-grid 6 -ranks 1 -scheme F0 -tol 1e-10 -ckpt 0 -detect 0 -seed 1 -faults SNF@1:r0",
			Expected: "budget-exhausted: F0 under a hard-fault barrage",
			Iters:    999, Converged: false, RelRes: HexFloat(0.25), Time: HexFloat(1.5), Energy: HexFloat(2.0),
			SolutionHash: "0123456789abcdef", HistoryHash: "fedcba9876543210"},
		{Status: StatusFail, Args: `-grid 4 -ranks 1 -scheme CR-M -tol 1e-10 -ckpt 8 -detect 0 -seed 1 -faults SWO@1:r0`,
			Violations: []string{`convergence: relres 3.0e-01 above "tolerance"`, "clock-monotone: rank 0 went backwards"}},
		{Status: StatusFail, Args: "quoted \"args\" with\ttabs and \\ backslashes",
			Violations: []string{"run-error: boom"}},
		{Status: StatusOK, Args: "x",
			Iters: 1, Converged: true, RelRes: HexFloat(math.SmallestNonzeroFloat64),
			Time: HexFloat(0), Energy: HexFloat(math.MaxFloat64),
			SolutionHash: "0000000000000000", HistoryHash: "ffffffffffffffff"},
	}
	for i, v := range cases {
		line := v.Encode()
		back, err := ParseVerdict(line)
		if err != nil {
			t.Fatalf("case %d: %q does not parse: %v", i, line, err)
		}
		if back.Encode() != line {
			t.Fatalf("case %d: re-encode differs\n in: %s\nout: %s", i, line, back.Encode())
		}
		if back.Status != v.Status || back.Args != v.Args || back.Expected != v.Expected ||
			back.Iters != v.Iters || back.Converged != v.Converged || back.RelRes != v.RelRes ||
			len(back.Violations) != len(v.Violations) {
			t.Fatalf("case %d: fields did not round-trip:\n in: %+v\nout: %+v", i, v, back)
		}
	}
}

// TestVerdictRoundTripGenerated round-trips verdicts of real campaign
// results: every VerdictOf encoding must parse back to an identical
// re-encoding, and the status must agree with the result.
func TestVerdictRoundTripGenerated(t *testing.T) {
	rn := NewRunner(Options{})
	opts := Options{Seed: 3}
	for i := 0; i < 12; i++ {
		s := ScenarioAt(opts, i)
		res := rn.Run(i, s)
		v := VerdictOf(res)
		line := v.Encode()
		back, err := ParseVerdict(line)
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		if back.Encode() != line {
			t.Fatalf("scenario %d: not a fixpoint\n in: %s\nout: %s", i, line, back.Encode())
		}
		if (back.Status == StatusFail) != res.Failed() {
			t.Fatalf("scenario %d: status %q disagrees with Failed()=%t", i, back.Status, res.Failed())
		}
		if back.Args != s.Args() {
			t.Fatalf("scenario %d: verdict args %q != scenario args %q", i, back.Args, s.Args())
		}
	}
}

// TestParseVerdictRejects pins the codec's validation: structural lies
// (fail with no violations, report fields without relres, torn quotes,
// unknown fields) are hard errors, never best-effort parses.
func TestParseVerdictRejects(t *testing.T) {
	bad := []string{
		"",
		"v0 status=ok args=\"x\"",
		"v1 status=meh args=\"x\"",
		"v1 args=\"x\"",
		"v1 status=fail args=\"x\"", // fail without violations
		"v1 status=ok args=\"x\" violation=\"y: z\"",              // violations without fail
		"v1 status=ok args=\"x\" iters=3",                         // report without relres
		"v1 status=ok args=\"x\" iters=abc",                       //
		"v1 status=ok args=\"x\" relres=zz",                       //
		"v1 status=ok args=\"torn",                                // torn quote
		"v1 status=ok args=\"x\" wholenew=\"y\"",                  // unknown field
		"v1 status=ok args=\"x\" noequals",                        //
		"v1 status=fail args=\"x\" violation=\"a\" status=broken", // second bad status
	}
	for _, line := range bad {
		if v, err := ParseVerdict(line); err == nil {
			t.Errorf("ParseVerdict accepted %q as %+v", line, v)
		}
	}
}

// TestHexFloatHashFloats pins the bitwise helpers the verdict codec (and
// the service's JSON results) are built on.
func TestHexFloatHashFloats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		x := math.Float64frombits(rng.Uint64())
		if math.IsNaN(x) {
			continue
		}
		s := HexFloat(x)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("HexFloat(%v) = %q does not parse: %v", x, s, err)
		}
		if math.Float64bits(back) != math.Float64bits(x) {
			t.Fatalf("HexFloat round-trip lost bits: %v -> %q -> %v", x, s, back)
		}
	}
	a := HashFloats([]float64{1, 2, 3})
	if b := HashFloats([]float64{1, 2, 3}); b != a {
		t.Fatalf("HashFloats not deterministic: %s != %s", a, b)
	}
	if b := HashFloats([]float64{1, 2, 3 + 1e-15}); b == a {
		t.Fatal("HashFloats insensitive to a ULP-scale change")
	}
	if b := HashFloats([]float64{1, 2}); b == a {
		t.Fatal("HashFloats insensitive to length")
	}
	if len(a) != 16 || strings.ToLower(a) != a {
		t.Fatalf("HashFloats format drifted: %q", a)
	}
}
