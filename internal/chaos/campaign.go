package chaos

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"resilience/internal/core"
	"resilience/internal/fault"
	"resilience/internal/obs"
	"resilience/internal/sparse"
	"resilience/internal/telemetry"
)

// Options configures a campaign.
type Options struct {
	N         int      // number of scenarios
	Seed      int64    // campaign seed; scenario i derives its own seed from it
	Workers   int      // concurrent scenario runners (<=0: 1)
	MaxFaults int      // faults per scenario drawn from 0..MaxFaults (<=0: 3)
	Schemes   []string // scheme pool (nil: DefaultSchemes)
	Tol       float64  // solver tolerance (<=0: 1e-10)

	// Recheck enables the determinism invariant (rerun each scenario and
	// demand bitwise-identical results) and the overlap-equivalence
	// invariant (rerun with the halo-exchange mode flipped and demand
	// bitwise-identical numerics). Both roughly triple the campaign cost.
	Recheck bool

	// BreakInvariant deliberately fails the named invariant on every
	// scenario that injects at least one fault. It exists to prove the
	// reporting pipeline end-to-end: a campaign must detect the failure
	// and shrink it to a minimal replayable scenario.
	BreakInvariant string
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Workers <= 0 {
		out.Workers = 1
	}
	if out.MaxFaults <= 0 {
		out.MaxFaults = 3
	}
	if len(out.Schemes) == 0 {
		out.Schemes = DefaultSchemes()
	}
	if out.Tol <= 0 {
		out.Tol = 1e-10
	}
	return out
}

// SeedStride decorrelates per-scenario seeds (the 32-bit golden ratio,
// the usual splitmix increment). Scenario i of a campaign is generated
// from Seed + i*SeedStride, so any index subrange regenerates alone —
// the property the distributed fleet shards on.
const SeedStride = 0x9E3779B9

// ScenarioAt deterministically derives campaign scenario i from the
// campaign options. It is the single generation path shared by the
// in-process campaign runner, the load generator, and the distributed
// fleet driver: the same (Seed, i) names the same scenario everywhere,
// independent of worker count, shard assignment, or arrival order.
func ScenarioAt(opts Options, i int) *Scenario {
	o := opts.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed + int64(i)*SeedStride))
	return NewScenario(rng, o)
}

// NewScenario draws one randomized scenario from rng. The generator
// deliberately concentrates probability mass on the hard cases from the
// multi-node-failure literature: simultaneous multi-rank faults,
// back-to-back faults (same or adjacent iterations, which the solver
// boundary recovers within one window — a fault during recovery), and
// faults just after a checkpoint (inside the rollback window).
func NewScenario(rng *rand.Rand, opts Options) *Scenario {
	o := opts.withDefaults()
	s := &Scenario{
		Grid:      6 + rng.Intn(5), // n = 36 .. 100
		Ranks:     1 + rng.Intn(6),
		Scheme:    o.Schemes[rng.Intn(len(o.Schemes))],
		Tol:       o.Tol,
		CkptEvery: 2 + rng.Intn(9),
		Overlap:   rng.Intn(2) == 0,
		Jacobi:    rng.Intn(4) == 0,
		Seed:      1 + rng.Int63n(1<<30),
	}
	if rng.Intn(2) == 0 {
		s.DetectDelay = 1 + rng.Intn(3)
	}
	nf := rng.Intn(o.MaxFaults + 1)
	for i := 0; i < nf; i++ {
		f := FaultSpec{
			Class: fault.Classes()[rng.Intn(len(fault.Classes()))],
			Rank:  rng.Intn(s.Ranks),
			Iter:  1 + rng.Intn(3*s.Grid),
		}
		if i > 0 && rng.Intn(2) == 0 {
			// Cluster onto the previous fault: same iteration
			// (simultaneous; recovered back-to-back in one boundary) or the
			// next one (strikes the just-recovered state).
			f.Iter = s.Faults[i-1].Iter + rng.Intn(2)
		} else if isCR(s.Scheme) && rng.Intn(3) == 0 {
			// Land just after a checkpoint write: the rollback window.
			f.Iter = s.CkptEvery + 1 + rng.Intn(2)
		}
		s.Faults = append(s.Faults, f)
	}
	if isCR(s.Scheme) && len(s.Faults) >= 2 && rng.Intn(3) == 0 {
		// Stale-restore pattern: a system-wide outage voids the memory
		// checkpoints, then a non-SWO fault lands right after — its
		// recovery must roll back to the initial guess, not the destroyed
		// copy (the CR-M bug class this generator keeps covered).
		k := rng.Intn(len(s.Faults) - 1)
		s.Faults[k].Class = fault.SWO
		next := &s.Faults[k+1]
		if next.Class == fault.SWO {
			next.Class = fault.SNF
		}
		next.Iter = s.Faults[k].Iter + 1 + rng.Intn(2)
	}
	// The schedule injector fires faults in iteration order; keep the
	// scenario's list in that order so Args round-trips the actual firing
	// sequence.
	sort.SliceStable(s.Faults, func(i, j int) bool { return s.Faults[i].Iter < s.Faults[j].Iter })
	return s
}

func isCR(scheme string) bool {
	u := strings.ToUpper(scheme)
	return strings.HasPrefix(u, "CR") || u == "LCR"
}

// Result is the outcome of one scenario.
type Result struct {
	Index      int
	Scenario   *Scenario
	Report     *core.RunReport
	Expected   string // non-empty: classified expected failure
	Violations []Violation
	Err        error // run-level error (itself an invariant violation)
}

// Failed reports whether the scenario violated any invariant (run errors
// count; classified expected failures do not).
func (r *Result) Failed() bool { return len(r.Violations) > 0 || r.Err != nil }

// Line renders the result as one deterministic report line.
func (r *Result) Line() string {
	var b strings.Builder
	status := "ok  "
	switch {
	case r.Failed():
		status = "FAIL"
	case r.Expected != "":
		status = "exp "
	}
	fmt.Fprintf(&b, "#%04d %s %-8s g=%d p=%d faults=%d", r.Index, status,
		r.Scenario.Scheme, r.Scenario.Grid, r.Scenario.Ranks, len(r.Scenario.Faults))
	if r.Report != nil {
		fmt.Fprintf(&b, " iters=%d relres=%.3g", r.Report.Iters, r.Report.RelRes)
	}
	if r.Expected != "" {
		fmt.Fprintf(&b, " expected-failure: %s", r.Expected)
	}
	if r.Err != nil {
		fmt.Fprintf(&b, " run-error: %v", r.Err)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, " [%s]", v)
	}
	return b.String()
}

// Runner executes scenarios and checks invariants, caching the per-system
// fault-free baselines a campaign shares. Safe for concurrent use.
type Runner struct {
	opts Options

	mu      sync.Mutex
	ffCache map[ffKey]*core.RunReport
	sysMu   sync.Mutex
	sys     map[int]cachedSystem
}

type ffKey struct {
	grid, ranks int
	tol         float64
	jacobi      bool
}

type cachedSystem struct {
	a *sparse.CSR
	b []float64
}

// NewRunner builds a scenario runner with the given options.
func NewRunner(opts Options) *Runner {
	return &Runner{
		opts:    opts.withDefaults(),
		ffCache: make(map[ffKey]*core.RunReport),
		sys:     make(map[int]cachedSystem),
	}
}

// system returns the (cached) linear system for a grid size.
func (rn *Runner) system(grid int) (*sparse.CSR, []float64) {
	rn.sysMu.Lock()
	defer rn.sysMu.Unlock()
	if cs, ok := rn.sys[grid]; ok {
		return cs.a, cs.b
	}
	s := Scenario{Grid: grid}
	a, b := s.System()
	rn.sys[grid] = cachedSystem{a: a, b: b}
	return a, b
}

// faultFree returns the (cached) converged baseline for a scenario's
// system shape. The baseline's numerics do not depend on the scheme,
// overlap mode, or seed — only on the system, partitioning, tolerance and
// preconditioning.
func (rn *Runner) faultFree(s *Scenario) (*core.RunReport, error) {
	key := ffKey{grid: s.Grid, ranks: s.Ranks, tol: s.Tol, jacobi: s.Jacobi}
	rn.mu.Lock()
	if rep, ok := rn.ffCache[key]; ok {
		rn.mu.Unlock()
		return rep, nil
	}
	rn.mu.Unlock()
	ff := &Scenario{
		Grid: s.Grid, Ranks: s.Ranks, Scheme: "LI", Tol: s.Tol,
		Jacobi: s.Jacobi, Seed: 1,
	}
	a, b := rn.system(s.Grid)
	cfg, err := ff.RunConfig(a, b, false)
	if err != nil {
		return nil, err
	}
	cfg.Scheme = core.SchemeSpec{Kind: core.FF}
	rep, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	rn.mu.Lock()
	// The cache is keyed by (grid, ranks, tol, jacobi); tol is
	// client-controlled when a Runner serves network verdict jobs, so cap
	// residency instead of trusting the key space to stay small. Past the
	// cap, baselines are recomputed — pure slowdown, never a result change.
	if len(rn.ffCache) < ffCacheCap {
		rn.ffCache[key] = rep
	}
	rn.mu.Unlock()
	return rep, nil
}

// ffCacheCap bounds the fault-free baseline cache of a long-lived Runner.
const ffCacheCap = 1024

// Run executes one scenario and its invariant battery.
func (rn *Runner) Run(index int, s *Scenario) *Result {
	return rn.RunContext(context.Background(), index, s)
}

// RunContext is Run honoring ctx for cancellation and deadlines on the
// main scenario run — the entry point the service's verdict-bearing jobs
// use, so a fleet campaign's per-job timeouts cut solves short instead of
// holding workers.
func (rn *Runner) RunContext(ctx context.Context, index int, s *Scenario) *Result {
	res := &Result{Index: index, Scenario: s}
	if err := s.Validate(); err != nil {
		res.Err = err
		return res
	}
	ff, err := rn.faultFree(s)
	if err != nil {
		res.Err = fmt.Errorf("fault-free baseline: %w", err)
		return res
	}
	a, b := rn.system(s.Grid)
	cfg, err := s.RunConfig(a, b, true)
	if err != nil {
		res.Err = err
		return res
	}
	rec := obs.NewRecorder()
	cfg.Obs = rec
	rep, err := core.RunContext(ctx, cfg)
	if err != nil {
		res.Err = err
		return res
	}
	res.Report = rep
	res.Expected, _ = ExpectedFailure(s, rep)
	res.Violations = CheckInvariants(s, rep, ff, rec)
	if rn.opts.Recheck {
		res.Violations = append(res.Violations, rn.recheck(s, a, b, rep)...)
	}
	if rn.opts.BreakInvariant != "" && len(s.Faults) > 0 {
		res.Violations = append(res.Violations, SelfTestViolation(rn.opts.BreakInvariant))
	}
	// Violations also land in the process flight recorder: a campaign that
	// trips an invariant leaves the recent event timeline in the crash dump
	// (memory-only unless a dump directory was configured, so stdout — the
	// determinism oracle — is untouched).
	for _, v := range res.Violations {
		telemetry.DefaultFlight().Notef("chaos-violation", "", "%s: %s: %s", s.Args(), v.Invariant, v.Detail)
	}
	return res
}

// recheck runs the two rerun-based invariants: bitwise run-to-run
// determinism, and bitwise numerical equivalence of the overlapped and
// fused halo-exchange paths.
func (rn *Runner) recheck(s *Scenario, a *sparse.CSR, b []float64, rep *core.RunReport) []Violation {
	var vs []Violation
	cfg, err := s.RunConfig(a, b, false)
	if err != nil {
		return []Violation{{InvDeterminism, err.Error()}}
	}
	again, err := core.Run(cfg)
	if err != nil {
		return []Violation{{InvDeterminism, fmt.Sprintf("rerun failed: %v", err)}}
	}
	switch {
	case again.Iters != rep.Iters:
		vs = append(vs, Violation{InvDeterminism,
			fmt.Sprintf("rerun took %d iters, first run %d", again.Iters, rep.Iters)})
	case again.RelRes != rep.RelRes:
		vs = append(vs, Violation{InvDeterminism,
			fmt.Sprintf("rerun relres %.17g != %.17g", again.RelRes, rep.RelRes)})
	case again.Time != rep.Time:
		vs = append(vs, Violation{InvDeterminism,
			fmt.Sprintf("rerun time %.17g != %.17g", again.Time, rep.Time)})
	case again.Energy != rep.Energy:
		vs = append(vs, Violation{InvDeterminism,
			fmt.Sprintf("rerun energy %.17g != %.17g", again.Energy, rep.Energy)})
	case !bitEqual(again.History, rep.History):
		vs = append(vs, Violation{InvDeterminism, "rerun residual history diverged"})
	case !bitEqual(again.Solution, rep.Solution):
		vs = append(vs, Violation{InvDeterminism, "rerun solution diverged"})
	}
	flipped := *s
	flipped.Overlap = !s.Overlap
	fcfg, err := flipped.RunConfig(a, b, false)
	if err != nil {
		return append(vs, Violation{InvOverlapEquiv, err.Error()})
	}
	frep, err := core.Run(fcfg)
	if err != nil {
		return append(vs, Violation{InvOverlapEquiv, fmt.Sprintf("flipped-overlap run failed: %v", err)})
	}
	switch {
	case frep.Iters != rep.Iters:
		vs = append(vs, Violation{InvOverlapEquiv,
			fmt.Sprintf("overlap=%t took %d iters, overlap=%t took %d", flipped.Overlap, frep.Iters, s.Overlap, rep.Iters)})
	case !bitEqual(frep.History, rep.History):
		vs = append(vs, Violation{InvOverlapEquiv, "residual history differs between overlapped and fused paths"})
	case !bitEqual(frep.Solution, rep.Solution):
		vs = append(vs, Violation{InvOverlapEquiv, "solution differs between overlapped and fused paths"})
	}
	return vs
}

// bitEqual compares float slices bitwise (NaN == NaN, +0 != -0), the
// right notion for determinism checks.
func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// RunCampaign generates and runs opts.N scenarios. Results come back in
// scenario order regardless of worker count, so campaign output is
// byte-identical for any parallelism. Scenario i's generator is seeded
// with opts.Seed + i*SeedStride (see ScenarioAt), so a campaign is a set
// of independently replayable runs, not one serial random stream — any
// subrange can be re-examined alone.
func RunCampaign(opts Options) []*Result {
	o := opts.withDefaults()
	rn := NewRunner(o)
	results := make([]*Result, o.N)
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = rn.Run(i, ScenarioAt(o, i))
			}
		}()
	}
	for i := 0; i < o.N; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}
