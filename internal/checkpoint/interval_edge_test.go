package checkpoint

import (
	"math"
	"testing"
)

// TestIntervalExtremes drives Young's and Daly's formulas to the edges of
// their domains: MTBF approaching zero (faults effectively continuous) and
// MTBF approaching infinity (effectively fault-free), plus the Daly branch
// switch at tC >= 2*MTBF. Every output must stay finite, positive and
// ordered the way the derivations promise.
func TestIntervalExtremes(t *testing.T) {
	const tC = 1.0
	cases := []struct {
		name string
		mtbf float64
	}{
		{"mtbf-1e-300", 1e-300}, // tiniest normal-ish MTBF: interval → 0
		{"mtbf-1e-12", 1e-12},
		{"mtbf-1", 1},
		{"mtbf-1e12", 1e12},
		{"mtbf-1e300", 1e300}, // effectively infinite MTBF: interval → huge
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			young := YoungInterval(tC, tc.mtbf)
			daly := DalyInterval(tC, tc.mtbf)
			for _, v := range []struct {
				name string
				got  float64
			}{{"Young", young}, {"Daly", daly}} {
				if math.IsNaN(v.got) || math.IsInf(v.got, 0) {
					t.Fatalf("%sInterval(%g, %g) = %g, want finite", v.name, tC, tc.mtbf, v.got)
				}
				if v.got <= 0 {
					t.Fatalf("%sInterval(%g, %g) = %g, want > 0", v.name, tC, tc.mtbf, v.got)
				}
			}
			if want := math.Sqrt(2 * tC * tc.mtbf); young != want {
				t.Errorf("YoungInterval(%g, %g) = %g, want sqrt(2*tC*M) = %g", tC, tc.mtbf, young, want)
			}
			// When checkpointing costs as much as the time between faults,
			// Daly degenerates to "checkpoint once per MTBF".
			if tC >= 2*tc.mtbf && daly != tc.mtbf {
				t.Errorf("DalyInterval(%g, %g) = %g, want the MTBF itself in the degenerate branch", tC, tc.mtbf, daly)
			}
			// In the regular branch Daly's correction shortens the interval
			// relative to Young's first-order estimate (it subtracts tC; at
			// extreme MTBF the subtraction underflows and the two coincide).
			if tC < 2*tc.mtbf && daly > young {
				t.Errorf("DalyInterval(%g, %g) = %g, want <= YoungInterval %g", tC, tc.mtbf, daly, young)
			}
		})
	}
}

// TestIntervalMonotoneInMTBF: rarer faults must never shorten the optimal
// interval, across thirty orders of magnitude.
func TestIntervalMonotoneInMTBF(t *testing.T) {
	const tC = 0.5
	prevYoung, prevDaly := 0.0, 0.0
	for exp := -15; exp <= 15; exp++ {
		mtbf := math.Pow(10, float64(exp))
		young := YoungInterval(tC, mtbf)
		daly := DalyInterval(tC, mtbf)
		if young < prevYoung {
			t.Fatalf("YoungInterval not monotone: %g at MTBF 1e%d < %g at 1e%d", young, exp, prevYoung, exp-1)
		}
		if daly < prevDaly {
			t.Fatalf("DalyInterval not monotone: %g at MTBF 1e%d < %g at 1e%d", daly, exp, prevDaly, exp-1)
		}
		prevYoung, prevDaly = young, daly
	}
}

// TestIntervalPanicsOnNonPositiveInputs: the formulas are undefined at or
// below zero and must fail loudly rather than return NaN into a policy.
func TestIntervalPanicsOnNonPositiveInputs(t *testing.T) {
	cases := []struct {
		name     string
		tC, mtbf float64
	}{
		{"zero-tC", 0, 100},
		{"negative-tC", -1, 100},
		{"zero-mtbf", 1, 0},
		{"negative-mtbf", 1, -5},
		{"both-zero", 0, 0},
	}
	for _, tc := range cases {
		for _, fn := range []struct {
			name string
			call func(float64, float64) float64
		}{{"Young", YoungInterval}, {"Daly", DalyInterval}} {
			t.Run(fn.name+"/"+tc.name, func(t *testing.T) {
				defer func() {
					if recover() == nil {
						t.Errorf("%sInterval(%g, %g) did not panic", fn.name, tc.tC, tc.mtbf)
					}
				}()
				fn.call(tc.tC, tc.mtbf)
			})
		}
	}
}

// TestIntervalItersExtremes: the iteration conversion clamps to at least
// one checkpointed iteration even when the interval rounds to zero, and
// stays finite for huge intervals.
func TestIntervalItersExtremes(t *testing.T) {
	cases := []struct {
		name              string
		intervalSec, iter float64
		want              int
	}{
		{"interval-shorter-than-iter", 1e-9, 1.0, 1},
		{"interval-zero", 0, 1.0, 1},
		{"exact-multiple", 10, 2.0, 5},
		{"rounds-up", 4.6, 1.0, 5},
		{"rounds-down", 4.4, 1.0, 4},
		{"huge-interval", 1e15, 1.0, 1_000_000_000_000_000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IntervalIters(tc.intervalSec, tc.iter); got != tc.want {
				t.Errorf("IntervalIters(%g, %g) = %d, want %d", tc.intervalSec, tc.iter, got, tc.want)
			}
		})
	}
}

// TestYoungPolicyAtExtremeMTBF: policies derived from extreme failure
// rates still produce usable (>= 1 iteration) intervals, and Due never
// fires at iteration zero.
func TestYoungPolicyAtExtremeMTBF(t *testing.T) {
	const tC, iterSec = 0.01, 0.001
	for _, mtbf := range []float64{1e-9, 1e-3, 1, 1e9} {
		p := YoungPolicy(tC, mtbf, iterSec)
		if p.EveryIters < 1 {
			t.Fatalf("YoungPolicy(tC=%g, mtbf=%g): EveryIters = %d, want >= 1", tC, mtbf, p.EveryIters)
		}
		if p.Due(0) {
			t.Fatalf("YoungPolicy(mtbf=%g).Due(0) fired before any iteration completed", mtbf)
		}
		if !p.Due(p.EveryIters) {
			t.Fatalf("YoungPolicy(mtbf=%g).Due(%d) must fire at its own interval", mtbf, p.EveryIters)
		}
		d := DalyPolicy(tC, mtbf, iterSec)
		if d.EveryIters < 1 {
			t.Fatalf("DalyPolicy(tC=%g, mtbf=%g): EveryIters = %d, want >= 1", tC, mtbf, d.EveryIters)
		}
	}
}
