package checkpoint

import (
	"math"
	"testing"
	"testing/quick"

	"resilience/internal/platform"
)

func TestYoungInterval(t *testing.T) {
	// I = sqrt(2 * tC * M).
	if got := YoungInterval(2, 100); math.Abs(got-20) > 1e-12 {
		t.Errorf("Young got %g want 20", got)
	}
}

func TestDalyReducesToYoungForSmallTC(t *testing.T) {
	// For tC << M, Daly ≈ Young - tC.
	tC, m := 0.001, 1000.0
	young := YoungInterval(tC, m)
	daly := DalyInterval(tC, m)
	if math.Abs(daly-(young-tC)) > 0.01*young {
		t.Errorf("Daly %g vs Young %g", daly, young)
	}
}

func TestDalyLargeTC(t *testing.T) {
	if got := DalyInterval(300, 100); got != 100 {
		t.Errorf("Daly with tC >= 2M must return M, got %g", got)
	}
}

// Property: Young's interval minimizes the first-order waste function
// w(I) = tC/I + I/(2M) over a grid around it.
func TestQuickYoungOptimal(t *testing.T) {
	waste := func(i, tC, m float64) float64 { return tC/i + i/(2*m) }
	f := func(a, b float64) bool {
		tC := 0.01 + math.Mod(math.Abs(a), 10)
		m := 10*tC + math.Mod(math.Abs(b), 1000)
		if math.IsNaN(tC) || math.IsNaN(m) {
			return true
		}
		opt := YoungInterval(tC, m)
		w0 := waste(opt, tC, m)
		for _, factor := range []float64{0.5, 0.8, 1.25, 2} {
			if waste(opt*factor, tC, m) < w0-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIntervalIters(t *testing.T) {
	if got := IntervalIters(1.0, 0.1); got != 10 {
		t.Errorf("got %d", got)
	}
	if got := IntervalIters(0.001, 1.0); got != 1 {
		t.Errorf("floor at 1, got %d", got)
	}
}

func TestPolicies(t *testing.T) {
	p := FixedPolicy(100)
	if p.Due(0) || p.Due(99) || !p.Due(100) || !p.Due(200) || p.Due(150) {
		t.Error("FixedPolicy.Due wrong")
	}
	yp := YoungPolicy(0.5, 1000, 0.1)
	if yp.EveryIters < 1 {
		t.Error("Young policy interval must be >= 1 iteration")
	}
	dp := DalyPolicy(0.5, 1000, 0.1)
	if dp.EveryIters < 1 || dp.EveryIters > yp.EveryIters {
		t.Errorf("Daly %d vs Young %d", dp.EveryIters, yp.EveryIters)
	}
}

func TestPolicyPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { FixedPolicy(0) },
		func() { YoungInterval(0, 1) },
		func() { DalyInterval(1, 0) },
		func() { IntervalIters(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStores(t *testing.T) {
	plat := platform.Default()
	mem := MemStore{Plat: plat}
	disk := DiskStore{Plat: plat}
	if mem.Name() != "memory" || disk.Name() != "disk" {
		t.Error("store names")
	}
	if !mem.CPUBusy() || disk.CPUBusy() {
		t.Error("CPU busy semantics")
	}
	const bytes = 1 << 20
	// Disk contends with writers; memory does not.
	if disk.WriteTime(bytes, 10) <= disk.WriteTime(bytes, 1) {
		t.Error("disk must contend")
	}
	if mem.WriteTime(bytes, 10) != mem.WriteTime(bytes, 1) {
		t.Error("memory must not contend")
	}
	// Memory checkpoints are much cheaper than contended disk ones.
	if mem.WriteTime(bytes, 192) >= disk.WriteTime(bytes, 192) {
		t.Error("memory checkpoint should be cheaper than disk")
	}
}

// TestDefaultReadEqualsWrite pins the *default-platform* coupling only:
// with the read-bandwidth knobs unset, restores cost exactly what the
// checkpoint writes did (the seed behavior every golden table assumes).
// The read paths are independent models — once a knob diverges they must
// move apart, which TestDiskStoreReadUsesReadBandwidth and
// TestMemStoreReadUsesReadBandwidth pin separately.
func TestDefaultReadEqualsWrite(t *testing.T) {
	plat := platform.Default()
	const bytes = 1 << 20
	for _, s := range []Store{MemStore{Plat: plat}, DiskStore{Plat: plat}} {
		if s.ReadTime(bytes, 4) != s.WriteTime(bytes, 4) {
			t.Errorf("%s: default read %g != write %g", s.Name(),
				s.ReadTime(bytes, 4), s.WriteTime(bytes, 4))
		}
	}
}

// TestDiskLinearInWriters pins the CR-D property that drives Figure 9:
// per-checkpoint cost grows linearly with the writer count.
func TestDiskLinearInWriters(t *testing.T) {
	plat := platform.Default()
	disk := DiskStore{Plat: plat}
	const bytes = 1 << 16
	base := disk.WriteTime(bytes, 1) - plat.DiskLatency
	for _, w := range []int{2, 8, 64, 1024} {
		got := disk.WriteTime(bytes, w) - plat.DiskLatency
		if math.Abs(got-float64(w)*base) > 1e-9*float64(w)*base {
			t.Errorf("writers=%d: %g want %g", w, got, float64(w)*base)
		}
	}
}

// TestPolicyDueEveryIteration pins the EveryIters=1 edge: a checkpoint
// is due after every completed iteration, but never "after" iteration 0
// (nothing has run yet), and a zero policy is never due.
func TestPolicyDueEveryIteration(t *testing.T) {
	p := FixedPolicy(1)
	if p.Due(0) {
		t.Error("EveryIters=1 due at 0 completed iterations")
	}
	for k := 1; k <= 5; k++ {
		if !p.Due(k) {
			t.Errorf("EveryIters=1 not due at %d", k)
		}
	}
	var zero Policy
	for k := 0; k <= 3; k++ {
		if zero.Due(k) {
			t.Errorf("zero policy due at %d", k)
		}
	}
	if (Policy{EveryIters: 1}).Due(-1) {
		t.Error("due at negative iteration count")
	}
}

// TestDiskStoreReadUsesReadBandwidth: DiskStore.ReadTime routes through
// Platform.DiskReadTime, so a dedicated read bandwidth changes restores
// without touching checkpoint writes.
func TestDiskStoreReadUsesReadBandwidth(t *testing.T) {
	plat := platform.Default()
	disk := DiskStore{Plat: plat}
	const bytes = 1 << 20
	wBefore := disk.WriteTime(bytes, 8)
	rBefore := disk.ReadTime(bytes, 8)
	if rBefore != wBefore {
		t.Fatalf("default read %g != write %g", rBefore, wBefore)
	}
	plat.DiskReadBandwidth = 4 * plat.DiskBandwidth
	if got := disk.WriteTime(bytes, 8); got != wBefore {
		t.Errorf("write time moved with read bandwidth: %g != %g", got, wBefore)
	}
	if got := disk.ReadTime(bytes, 8); got >= rBefore {
		t.Errorf("read time %g not reduced by 4x read bandwidth (was %g)", got, rBefore)
	}
}

// TestMemStoreReadUsesReadBandwidth: MemStore.ReadTime routes through
// Platform.MemReadTime, so a dedicated memory read bandwidth changes
// restores without touching checkpoint writes — the restore path no
// longer silently charges the write cost.
func TestMemStoreReadUsesReadBandwidth(t *testing.T) {
	plat := platform.Default()
	mem := MemStore{Plat: plat}
	const bytes = 1 << 20
	wBefore := mem.WriteTime(bytes, 1)
	rBefore := mem.ReadTime(bytes, 1)
	if rBefore != wBefore {
		t.Fatalf("default read %g != write %g", rBefore, wBefore)
	}
	plat.MemReadBandwidth = 4 * plat.MemBandwidth
	if got := mem.WriteTime(bytes, 1); got != wBefore {
		t.Errorf("write time moved with read bandwidth: %g != %g", got, wBefore)
	}
	if got := mem.ReadTime(bytes, 1); got >= rBefore {
		t.Errorf("read time %g not reduced by 4x read bandwidth (was %g)", got, rBefore)
	}
}

// TestLossyStore pins the compression cost model: an R-times compressed
// checkpoint writes (and reads) R times less data through the inner
// store, transfer character and naming follow the target, and the
// compressed payload never rounds down to zero bytes.
func TestLossyStore(t *testing.T) {
	plat := platform.Default()
	inner := DiskStore{Plat: plat}
	lossy := Lossy{Inner: inner, Ratio: 8}
	if lossy.Name() != "lossy-disk" {
		t.Errorf("name %q", lossy.Name())
	}
	if lossy.CPUBusy() != inner.CPUBusy() {
		t.Error("CPUBusy must follow the inner store")
	}
	const bytes = 1 << 23
	if got, want := lossy.WriteTime(bytes, 8), inner.WriteTime(bytes/8, 8); got != want {
		t.Errorf("compressed write %g want %g", got, want)
	}
	if got, want := lossy.ReadTime(bytes, 8), inner.ReadTime(bytes/8, 8); got != want {
		t.Errorf("compressed read %g want %g", got, want)
	}
	if lossy.WriteTime(bytes, 8) >= inner.WriteTime(bytes, 8) {
		t.Error("lossy write not cheaper than exact write")
	}
	// Ratio <= 1 means no reduction; tiny payloads floor at one byte.
	if (Lossy{Inner: inner, Ratio: 0.5}).WriteTime(bytes, 1) != inner.WriteTime(bytes, 1) {
		t.Error("ratio <= 1 must not reduce the payload")
	}
	if (Lossy{Inner: inner, Ratio: 1e9}).compressed(4) != 1 {
		t.Error("compressed payload must floor at 1 byte")
	}
}
