// Package checkpoint implements the checkpoint/restart substrate: storage
// targets with modeled write/read costs (local memory vs a shared disk,
// the paper's CR-M and CR-D), and the optimal-interval formulas of Young
// and Daly used to set checkpointing frequency from the failure rate.
package checkpoint

import (
	"fmt"
	"math"

	"resilience/internal/platform"
)

// Store models a checkpoint storage target. Stores are cost models only;
// the checkpointed data itself lives with the solver state (one block of
// x per rank).
type Store interface {
	// Name returns "memory" or "disk".
	Name() string
	// WriteTime returns the virtual time for one rank to write `bytes`
	// while `writers` ranks write concurrently.
	WriteTime(bytes int64, writers int) float64
	// ReadTime returns the virtual time for one rank to read `bytes`
	// while `readers` ranks read concurrently.
	ReadTime(bytes int64, readers int) float64
	// CPUBusy reports whether the CPU is actively copying (memory store)
	// or mostly waiting on I/O (disk store) during the transfer; it
	// selects the power accounting for the checkpoint phase.
	CPUBusy() bool
}

// MemStore checkpoints into memory (the paper's CR-M): cheap and of
// constant cost regardless of system size. To survive a single-node
// failure the copy must leave the node, so the model includes one network
// hop to a buddy node alongside the local memory copy; buddy pairs are
// disjoint, so there is no cross-node contention.
type MemStore struct {
	Plat *platform.Platform
}

// Name implements Store.
func (s MemStore) Name() string { return "memory" }

// WriteTime implements Store: a local copy plus the buddy-node transfer.
func (s MemStore) WriteTime(bytes int64, _ int) float64 {
	return s.Plat.MemWriteTime(bytes) + s.Plat.P2PTime(bytes)
}

// ReadTime implements Store: restoration pulls the block back from the
// buddy; the local copy-in runs at the memory read bandwidth
// (Platform.MemReadBandwidth, which defaults to the write bandwidth).
func (s MemStore) ReadTime(bytes int64, _ int) float64 {
	return s.Plat.MemReadTime(bytes) + s.Plat.P2PTime(bytes)
}

// CPUBusy implements Store: a memcpy keeps the core active.
func (s MemStore) CPUBusy() bool { return true }

// DiskStore checkpoints to a shared remote disk (the paper's CR-D). The
// disk bandwidth is shared by all concurrent writers, so per-checkpoint
// cost grows linearly with the number of ranks under weak scaling —
// the behaviour the paper measures and projects in Figure 9.
type DiskStore struct {
	Plat *platform.Platform
}

// Name implements Store.
func (s DiskStore) Name() string { return "disk" }

// WriteTime implements Store.
func (s DiskStore) WriteTime(bytes int64, writers int) float64 {
	return s.Plat.DiskWriteTime(bytes, writers)
}

// ReadTime implements Store; restart reads contend the same way but may
// run at their own bandwidth (Platform.DiskReadBandwidth, which defaults
// to the write bandwidth).
func (s DiskStore) ReadTime(bytes int64, readers int) float64 {
	return s.Plat.DiskReadTime(bytes, readers)
}

// CPUBusy implements Store: the core blocks on I/O.
func (s DiskStore) CPUBusy() bool { return false }

// Lossy wraps a Store with error-bounded lossy compression [Tao et al.,
// arXiv:1804.11268]: checkpoint payloads shrink by Ratio before they hit
// the underlying target, so writes (and restart reads) cost a fraction
// of the exact store's. The fidelity price — a restored iterate carrying
// the compressor's pointwise error bound — is modeled by the recovery
// scheme, not here; the store stays a pure cost model like the others.
type Lossy struct {
	Inner Store
	// Ratio is the compression ratio (compressed size = bytes/Ratio).
	// Values <= 1 mean no reduction. SZ-style compressors reach 5-20x on
	// smooth scientific data at a 1e-4 relative error bound.
	Ratio float64
}

// Name implements Store.
func (s Lossy) Name() string { return "lossy-" + s.Inner.Name() }

// compressed returns the on-target payload size, never below one byte so
// degenerate ratios cannot make a checkpoint free.
func (s Lossy) compressed(bytes int64) int64 {
	if s.Ratio <= 1 {
		return bytes
	}
	cb := int64(float64(bytes) / s.Ratio)
	if cb < 1 {
		cb = 1
	}
	return cb
}

// WriteTime implements Store: the compressed payload pays the inner cost.
func (s Lossy) WriteTime(bytes int64, writers int) float64 {
	return s.Inner.WriteTime(s.compressed(bytes), writers)
}

// ReadTime implements Store.
func (s Lossy) ReadTime(bytes int64, readers int) float64 {
	return s.Inner.ReadTime(s.compressed(bytes), readers)
}

// CPUBusy implements Store: compression/decompression shares the inner
// store's transfer character (SZ throughput far exceeds disk bandwidth,
// so the transfer still dominates).
func (s Lossy) CPUBusy() bool { return s.Inner.CPUBusy() }

// YoungInterval returns Young's first-order optimal checkpoint interval
// [Young 1974]: I = sqrt(2 * tC * MTBF), all in seconds.
func YoungInterval(tC, mtbf float64) float64 {
	if tC <= 0 || mtbf <= 0 {
		panic(fmt.Sprintf("checkpoint: YoungInterval tC=%g mtbf=%g", tC, mtbf))
	}
	return math.Sqrt(2 * tC * mtbf)
}

// DalyInterval returns Daly's higher-order estimate [Daly 2006]:
//
//	I = sqrt(2 tC M) * (1 + sqrt(tC/(2M))/3 + tC/(9*2M)) - tC   for tC < 2M
//	I = M                                                        otherwise
func DalyInterval(tC, mtbf float64) float64 {
	if tC <= 0 || mtbf <= 0 {
		panic(fmt.Sprintf("checkpoint: DalyInterval tC=%g mtbf=%g", tC, mtbf))
	}
	if tC >= 2*mtbf {
		return mtbf
	}
	r := math.Sqrt(tC / (2 * mtbf))
	return math.Sqrt(2*tC*mtbf)*(1+r/3+r*r/9) - tC
}

// IntervalIters converts a time interval into a whole number of solver
// iterations (at least 1) given the measured per-iteration time.
func IntervalIters(intervalSec, iterSec float64) int {
	if iterSec <= 0 {
		panic(fmt.Sprintf("checkpoint: IntervalIters iterSec=%g", iterSec))
	}
	n := int(math.Round(intervalSec / iterSec))
	if n < 1 {
		n = 1
	}
	return n
}

// Policy decides when to checkpoint, in iterations.
type Policy struct {
	// EveryIters checkpoints after every EveryIters solver iterations.
	EveryIters int
}

// FixedPolicy checkpoints every n iterations (the paper's Section 5.2
// uses n = 100).
func FixedPolicy(n int) Policy {
	if n < 1 {
		panic(fmt.Sprintf("checkpoint: FixedPolicy n=%d", n))
	}
	return Policy{EveryIters: n}
}

// YoungPolicy derives the interval from Young's formula (the paper's
// Section 5.3 onward), given the per-checkpoint cost, the MTBF, and the
// per-iteration time, all in seconds.
func YoungPolicy(tC, mtbf, iterSec float64) Policy {
	return Policy{EveryIters: IntervalIters(YoungInterval(tC, mtbf), iterSec)}
}

// DalyPolicy derives the interval from Daly's formula (extension beyond
// the paper, used by the ablation benches).
func DalyPolicy(tC, mtbf, iterSec float64) Policy {
	return Policy{EveryIters: IntervalIters(DalyInterval(tC, mtbf), iterSec)}
}

// Due reports whether a checkpoint should be taken at the end of the
// given iteration (1-based count of completed iterations).
func (p Policy) Due(completedIters int) bool {
	return p.EveryIters > 0 && completedIters > 0 && completedIters%p.EveryIters == 0
}
