// Package platform describes the simulated machine: core counts, the DVFS
// frequency ladder, frequency→power curves, compute rates, network and
// storage parameters. The default configuration reproduces the paper's
// experimental cluster (Section 5.1): 8 dual-socket nodes, 2 × 12-core
// Xeon E5-2670v3 per node, per-core DVFS from 1.2 to 2.3 GHz in 0.1 GHz
// steps.
//
// Power is modeled per core, normalized so that a core active at the
// maximum frequency draws PCoreMax watts:
//
//	P_active(f) = PCoreMax * (ActiveBase + ActiveDyn*(f/fmax)³)
//	P_idle(f)   = PCoreMax * (IdleBase   + IdleDyn  *(f/fmax)²)
//
// The default coefficients are calibrated to the ratios the paper reports
// for reconstruction phases on a 24-core node (Section 4.2): one core
// active at f_max plus 23 idle at f_max draws ≈0.75× of the all-active
// node power; dropping the 23 idle cores to f_min draws ≈0.45×.
package platform

import (
	"fmt"
	"math"
)

// Platform is the simulated machine description. All fields are plain data
// so configurations can be copied and varied freely in sweeps.
type Platform struct {
	Nodes          int
	SocketsPerNode int
	CoresPerSocket int

	// DVFS ladder in GHz.
	FreqMin, FreqMax, FreqStep float64
	// DVFSLatency is the time to switch a core's frequency, seconds.
	DVFSLatency float64

	// FlopRate is the per-core useful flop rate at FreqMax, flops/second,
	// for the sparse kernels under study (memory-bound SpMV rates, not
	// peak). Rates scale linearly with frequency.
	FlopRate float64

	// Network: point-to-point time = NetLatency + bytes/NetBandwidth.
	// Collectives multiply by ceil(log2 P).
	NetLatency   float64 // seconds (alpha)
	NetBandwidth float64 // bytes/second (1/beta)

	// Checkpoint storage. Disk bandwidth is shared across all writers
	// (the paper assumes a shared disk), memory bandwidth is per core.
	DiskBandwidth float64 // bytes/second, aggregate, writes
	// DiskReadBandwidth is the aggregate restart-read bandwidth; zero
	// means "same as DiskBandwidth" (the seed behavior, so existing
	// configurations and golden tables are unchanged).
	DiskReadBandwidth float64 // bytes/second, aggregate, reads
	DiskLatency       float64 // seconds per checkpoint operation
	MemBandwidth      float64 // bytes/second, per core
	// MemReadBandwidth is the per-core restore-read bandwidth; zero means
	// "same as MemBandwidth" (the seed behavior, so existing
	// configurations and golden tables are unchanged).
	MemReadBandwidth float64 // bytes/second, per core, reads

	// Power model (watts per core).
	PCoreMax   float64
	ActiveBase float64
	ActiveDyn  float64
	IdleBase   float64
	IdleDyn    float64
}

// Default returns the paper's cluster. Compute, network and power
// parameters follow the hardware (Section 5.1); the storage constants are
// calibrated so checkpoint costs land at the paper's *relative* magnitude
// (a disk checkpoint costs tens of solver iterations, a memory checkpoint
// well under one) at the scaled-down workload sizes this repository runs.
func Default() *Platform {
	return &Platform{
		Nodes:          8,
		SocketsPerNode: 2,
		CoresPerSocket: 12,
		FreqMin:        1.2,
		FreqMax:        2.3,
		FreqStep:       0.1,
		DVFSLatency:    50e-6,
		FlopRate:       2.0e9,
		NetLatency:     1.5e-6,
		NetBandwidth:   5.0e9,
		DiskBandwidth:  200e6,
		DiskLatency:    500e-6,
		MemBandwidth:   5.0e9,
		PCoreMax:       10.0,
		ActiveBase:     0.45,
		ActiveDyn:      0.55,
		IdleBase:       0.30,
		IdleDyn:        0.44,
	}
}

// Cores returns the total core count.
func (p *Platform) Cores() int { return p.Nodes * p.SocketsPerNode * p.CoresPerSocket }

// CoresPerNode returns the per-node core count.
func (p *Platform) CoresPerNode() int { return p.SocketsPerNode * p.CoresPerSocket }

// ClampFreq snaps f onto the DVFS ladder (clamping to [FreqMin, FreqMax]).
func (p *Platform) ClampFreq(f float64) float64 {
	if f <= p.FreqMin {
		return p.FreqMin
	}
	if f >= p.FreqMax {
		return p.FreqMax
	}
	steps := math.Round((f - p.FreqMin) / p.FreqStep)
	return p.FreqMin + steps*p.FreqStep
}

// Freqs returns the full DVFS ladder, ascending.
func (p *Platform) Freqs() []float64 {
	var fs []float64
	for f := p.FreqMin; f <= p.FreqMax+1e-9; f += p.FreqStep {
		fs = append(fs, math.Round(f*10)/10)
	}
	return fs
}

// Rate returns the flop rate at frequency f (linear frequency scaling).
func (p *Platform) Rate(f float64) float64 {
	return p.FlopRate * f / p.FreqMax
}

// ComputeTime returns the time to execute the given flops at frequency f.
func (p *Platform) ComputeTime(flops int64, f float64) float64 {
	if flops <= 0 {
		return 0
	}
	return float64(flops) / p.Rate(f)
}

// PowerActive returns per-core power when computing at frequency f.
func (p *Platform) PowerActive(f float64) float64 {
	r := f / p.FreqMax
	return p.PCoreMax * (p.ActiveBase + p.ActiveDyn*r*r*r)
}

// PowerIdle returns per-core power when idle (or sleeping in a wait) at
// frequency f.
func (p *Platform) PowerIdle(f float64) float64 {
	r := f / p.FreqMax
	return p.PCoreMax * (p.IdleBase + p.IdleDyn*r*r)
}

// P2PTime returns the point-to-point message time for the given payload.
func (p *Platform) P2PTime(bytes int64) float64 {
	return p.NetLatency + float64(bytes)/p.NetBandwidth
}

// CollectiveTime returns the time of a tree-based collective (allreduce,
// bcast, barrier) over n ranks moving the given payload per stage.
func (p *Platform) CollectiveTime(bytes int64, n int) float64 {
	if n <= 1 {
		return 0
	}
	stages := math.Ceil(math.Log2(float64(n)))
	return stages * (p.NetLatency + float64(bytes)/p.NetBandwidth)
}

// DiskWriteTime returns the time to write the given bytes when `writers`
// ranks share the disk concurrently (bandwidth divides; latency is paid
// once per writer).
func (p *Platform) DiskWriteTime(bytes int64, writers int) float64 {
	if writers < 1 {
		writers = 1
	}
	bw := p.DiskBandwidth / float64(writers)
	return p.DiskLatency + float64(bytes)/bw
}

// DiskReadTime returns the time to read the given bytes when `readers`
// ranks share the disk concurrently. Reads use DiskReadBandwidth, which
// defaults to the write bandwidth when unset.
func (p *Platform) DiskReadTime(bytes int64, readers int) float64 {
	if readers < 1 {
		readers = 1
	}
	bw := p.DiskReadBandwidth
	if bw <= 0 {
		bw = p.DiskBandwidth
	}
	bw /= float64(readers)
	return p.DiskLatency + float64(bytes)/bw
}

// MemWriteTime returns the time to copy the given bytes into a local
// in-memory checkpoint.
func (p *Platform) MemWriteTime(bytes int64) float64 {
	return float64(bytes) / p.MemBandwidth
}

// MemReadTime returns the time to copy the given bytes back out of a
// local in-memory checkpoint. Reads use MemReadBandwidth, which defaults
// to the write bandwidth when unset.
func (p *Platform) MemReadTime(bytes int64) float64 {
	bw := p.MemReadBandwidth
	if bw <= 0 {
		bw = p.MemBandwidth
	}
	return float64(bytes) / bw
}

// Validate reports configuration errors.
func (p *Platform) Validate() error {
	switch {
	case p.Nodes <= 0 || p.SocketsPerNode <= 0 || p.CoresPerSocket <= 0:
		return fmt.Errorf("platform: non-positive core topology %d/%d/%d",
			p.Nodes, p.SocketsPerNode, p.CoresPerSocket)
	case p.FreqMin <= 0 || p.FreqMax < p.FreqMin || p.FreqStep <= 0:
		return fmt.Errorf("platform: bad frequency ladder [%g,%g] step %g",
			p.FreqMin, p.FreqMax, p.FreqStep)
	case p.FlopRate <= 0:
		return fmt.Errorf("platform: non-positive flop rate %g", p.FlopRate)
	case p.NetBandwidth <= 0 || p.NetLatency < 0:
		return fmt.Errorf("platform: bad network parameters alpha=%g bw=%g",
			p.NetLatency, p.NetBandwidth)
	case p.DiskBandwidth <= 0 || p.MemBandwidth <= 0:
		return fmt.Errorf("platform: bad storage bandwidths disk=%g mem=%g",
			p.DiskBandwidth, p.MemBandwidth)
	case p.DiskReadBandwidth < 0:
		return fmt.Errorf("platform: negative disk read bandwidth %g", p.DiskReadBandwidth)
	case p.MemReadBandwidth < 0:
		return fmt.Errorf("platform: negative memory read bandwidth %g", p.MemReadBandwidth)
	case p.PCoreMax <= 0:
		return fmt.Errorf("platform: non-positive core power %g", p.PCoreMax)
	}
	return nil
}
