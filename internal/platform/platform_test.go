package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Cores() != 192 {
		t.Errorf("paper cluster has 192 cores, got %d", p.Cores())
	}
	if p.CoresPerNode() != 24 {
		t.Errorf("paper node has 24 cores, got %d", p.CoresPerNode())
	}
}

func TestFreqLadder(t *testing.T) {
	p := Default()
	fs := p.Freqs()
	if len(fs) != 12 { // 1.2 .. 2.3 in 0.1 steps
		t.Fatalf("ladder has %d steps: %v", len(fs), fs)
	}
	if fs[0] != 1.2 || fs[len(fs)-1] != 2.3 {
		t.Errorf("ladder endpoints %v", fs)
	}
}

func TestClampFreq(t *testing.T) {
	p := Default()
	cases := []struct{ in, want float64 }{
		{0.5, 1.2}, {1.2, 1.2}, {1.24, 1.2}, {1.26, 1.3},
		{2.3, 2.3}, {9.9, 2.3}, {1.75, 1.8},
	}
	for _, c := range cases {
		if got := p.ClampFreq(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("ClampFreq(%g)=%g want %g", c.in, got, c.want)
		}
	}
}

// TestPowerCurveCalibration verifies the paper's Section 4.2 node-power
// ratios: 1 active + 23 idle cores at f_max ≈ 0.75x of all-active; idle
// cores parked at f_min ≈ 0.45x.
func TestPowerCurveCalibration(t *testing.T) {
	p := Default()
	full := 24 * p.PowerActive(p.FreqMax)
	noDVFS := (p.PowerActive(p.FreqMax) + 23*p.PowerIdle(p.FreqMax)) / full
	dvfs := (p.PowerActive(p.FreqMax) + 23*p.PowerIdle(p.FreqMin)) / full
	if math.Abs(noDVFS-0.75) > 0.03 {
		t.Errorf("no-DVFS reconstruction ratio %.3f, paper ~0.75", noDVFS)
	}
	if math.Abs(dvfs-0.45) > 0.03 {
		t.Errorf("DVFS reconstruction ratio %.3f, paper ~0.45", dvfs)
	}
}

// Property: power curves are monotone in frequency, idle < active, and
// rates scale linearly.
func TestQuickPowerMonotone(t *testing.T) {
	p := Default()
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		fa := p.FreqMin + math.Mod(math.Abs(a), p.FreqMax-p.FreqMin)
		span := p.FreqMax - fa
		if span <= 0 {
			return true
		}
		fb := fa + math.Mod(math.Abs(b), span)
		if p.PowerActive(fa) > p.PowerActive(fb)+1e-12 {
			return false
		}
		if p.PowerIdle(fa) > p.PowerIdle(fb)+1e-12 {
			return false
		}
		if p.PowerIdle(fa) >= p.PowerActive(fa) {
			return false
		}
		return p.Rate(fb) >= p.Rate(fa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestComputeTime(t *testing.T) {
	p := Default()
	if p.ComputeTime(0, p.FreqMax) != 0 || p.ComputeTime(-5, p.FreqMax) != 0 {
		t.Error("non-positive flops must cost zero")
	}
	t1 := p.ComputeTime(1e9, p.FreqMax)
	t2 := p.ComputeTime(1e9, p.FreqMin)
	if t2 <= t1 {
		t.Error("lower frequency must be slower")
	}
	// Linear frequency scaling.
	want := t1 * p.FreqMax / p.FreqMin
	if math.Abs(t2-want) > 1e-12*want {
		t.Errorf("rate scaling: %g want %g", t2, want)
	}
}

func TestNetworkCosts(t *testing.T) {
	p := Default()
	if p.P2PTime(0) != p.NetLatency {
		t.Error("zero-byte message must cost latency")
	}
	if p.P2PTime(1<<20) <= p.P2PTime(1) {
		t.Error("bigger messages must cost more")
	}
	if p.CollectiveTime(8, 1) != 0 {
		t.Error("single-rank collective must be free")
	}
	// Tree depth: doubling ranks adds at most one stage.
	c16 := p.CollectiveTime(8, 16)
	c32 := p.CollectiveTime(8, 32)
	if c32 <= c16 || c32 > 2*c16 {
		t.Errorf("collective scaling: %g -> %g", c16, c32)
	}
}

func TestStorageCosts(t *testing.T) {
	p := Default()
	// Disk bandwidth is shared: doubling writers doubles per-rank time
	// (minus the constant latency).
	w1 := p.DiskWriteTime(1<<20, 1) - p.DiskLatency
	w2 := p.DiskWriteTime(1<<20, 2) - p.DiskLatency
	if math.Abs(w2-2*w1) > 1e-12 {
		t.Errorf("disk contention: %g vs 2*%g", w2, w1)
	}
	if p.DiskWriteTime(1, 0) <= 0 {
		t.Error("writers<1 must clamp, not panic")
	}
	if p.MemWriteTime(1<<20) >= w1 {
		t.Error("memory checkpoint must be cheaper than disk")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Platform){
		func(p *Platform) { p.Nodes = 0 },
		func(p *Platform) { p.FreqStep = 0 },
		func(p *Platform) { p.FreqMax = p.FreqMin - 1 },
		func(p *Platform) { p.FlopRate = 0 },
		func(p *Platform) { p.NetBandwidth = 0 },
		func(p *Platform) { p.DiskBandwidth = -1 },
		func(p *Platform) { p.PCoreMax = 0 },
	}
	for i, mutate := range bad {
		p := Default()
		mutate(p)
		if p.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDiskReadTime(t *testing.T) {
	p := Default()
	// Unset read bandwidth defaults to the write bandwidth: reads and
	// writes cost exactly the same (the seed behavior, byte-identical).
	for _, readers := range []int{1, 2, 17, 192} {
		if r, w := p.DiskReadTime(1<<20, readers), p.DiskWriteTime(1<<20, readers); r != w {
			t.Errorf("readers=%d: DiskReadTime %g != DiskWriteTime %g with default read bandwidth", readers, r, w)
		}
	}
	if p.DiskReadTime(1, 0) <= 0 {
		t.Error("readers<1 must clamp, not panic")
	}
	// A dedicated read bandwidth decouples the two: doubling it halves
	// the transfer term.
	p.DiskReadBandwidth = 2 * p.DiskBandwidth
	r := p.DiskReadTime(1<<20, 4) - p.DiskLatency
	w := p.DiskWriteTime(1<<20, 4) - p.DiskLatency
	if math.Abs(r-w/2) > 1e-12 {
		t.Errorf("doubled read bandwidth: read %g want %g", r, w/2)
	}
	// Contention still divides the read bandwidth across readers.
	r1 := p.DiskReadTime(1<<20, 1) - p.DiskLatency
	r2 := p.DiskReadTime(1<<20, 2) - p.DiskLatency
	if math.Abs(r2-2*r1) > 1e-12 {
		t.Errorf("disk read contention: %g vs 2*%g", r2, r1)
	}
	p.DiskReadBandwidth = -1
	if p.Validate() == nil {
		t.Error("negative read bandwidth accepted")
	}
}
