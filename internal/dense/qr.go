package dense

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization of an m x n matrix with m >= n.
// It is the prior-work baseline for the LSI recovery scheme, which solves
// the least-squares problem min ||beta - A_{:,p_i} x|| exactly (Eq. 18).
type QR struct {
	M, N int
	F    *Matrix   // packed R (upper triangle) and Householder vectors (below)
	Tau  []float64 // Householder scalars
}

// NewQR factorizes a (m >= n required).
func NewQR(a *Matrix) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("dense: QR requires rows >= cols, got %dx%d", m, n)
	}
	f := a.Clone()
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		// Compute the Householder reflector for column k.
		var norm float64
		for i := k; i < m; i++ {
			v := f.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil, fmt.Errorf("%w: zero column %d in QR", ErrSingular, k)
		}
		alpha := f.At(k, k)
		if alpha > 0 {
			norm = -norm
		}
		// v = x - norm*e1, normalized so v[0] = 1.
		v0 := alpha - norm
		for i := k + 1; i < m; i++ {
			f.Set(i, k, f.At(i, k)/v0)
		}
		tau[k] = -v0 / norm
		f.Set(k, k, norm)
		// Apply reflector to remaining columns: A := (I - tau v vᵀ) A.
		for j := k + 1; j < n; j++ {
			s := f.At(k, j)
			for i := k + 1; i < m; i++ {
				s += f.At(i, k) * f.At(i, j)
			}
			s *= tau[k]
			f.Set(k, j, f.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				f.Set(i, j, f.At(i, j)-s*f.At(i, k))
			}
		}
	}
	return &QR{M: m, N: n, F: f, Tau: tau}, nil
}

// SolveLS solves the least-squares problem min ||b - A*x||₂ and returns x.
func (qr *QR) SolveLS(b []float64) ([]float64, error) {
	if len(b) != qr.M {
		return nil, fmt.Errorf("dense: QR.SolveLS length %d, want %d", len(b), qr.M)
	}
	y := make([]float64, qr.M)
	copy(y, b)
	// Apply Qᵀ to b.
	for k := 0; k < qr.N; k++ {
		s := y[k]
		for i := k + 1; i < qr.M; i++ {
			s += qr.F.At(i, k) * y[i]
		}
		s *= qr.Tau[k]
		y[k] -= s
		for i := k + 1; i < qr.M; i++ {
			y[i] -= s * qr.F.At(i, k)
		}
	}
	// Back-substitute R*x = y[:n].
	x := make([]float64, qr.N)
	for i := qr.N - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < qr.N; j++ {
			s -= qr.F.At(i, j) * x[j]
		}
		r := qr.F.At(i, i)
		if r == 0 {
			return nil, fmt.Errorf("%w: zero diagonal %d in R", ErrSingular, i)
		}
		x[i] = s / r
	}
	return x, nil
}

// FactorFlops returns the flop count of the factorization (2mn² - 2n³/3).
func (qr *QR) FactorFlops() int64 {
	m, n := int64(qr.M), int64(qr.N)
	return 2*m*n*n - 2*n*n*n/3
}

// SolveFlops returns the flop count of one least-squares solve.
func (qr *QR) SolveFlops() int64 {
	m, n := int64(qr.M), int64(qr.N)
	return 4*m*n + n*n
}
