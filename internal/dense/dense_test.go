package dense

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD builds A = BᵀB + n*I, guaranteed SPD.
func randomSPD(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b.At(k, i) * b.At(k, j)
			}
			if i == j {
				s += float64(n)
			}
			a.Set(i, j, s)
		}
	}
	return a
}

func randomMatrix(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func residual(a *Matrix, x, b []float64) float64 {
	ax := make([]float64, a.Rows)
	a.MulVec(ax, x)
	var s, nb float64
	for i := range ax {
		d := ax[i] - b[i]
		s += d * d
		nb += b[i] * b[i]
	}
	if nb == 0 {
		nb = 1
	}
	return math.Sqrt(s / nb)
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Error("Set/At failed")
	}
	if len(m.Row(1)) != 3 || m.Row(1)[2] != 5 {
		t.Error("Row failed")
	}
	c := m.Clone()
	c.Set(0, 0, 7)
	if m.At(0, 0) == 7 {
		t.Error("Clone aliases")
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 5 {
		t.Error("Transpose failed")
	}
	if m.FrobeniusNorm() != 5 {
		t.Errorf("FrobeniusNorm got %g", m.FrobeniusNorm())
	}
}

func TestMulTransVecAgainstTranspose(t *testing.T) {
	m := randomMatrix(4, 6, 1)
	x := []float64{1, -2, 3, -4}
	y1 := make([]float64, 6)
	m.MulTransVec(y1, x)
	y2 := make([]float64, 6)
	m.Transpose().MulVec(y2, x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-13 {
			t.Fatalf("MulTransVec mismatch at %d", i)
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	for _, n := range []int{1, 2, 5, 20, 50} {
		a := randomSPD(n, int64(n))
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = float64(i%3) - 1
		}
		b := make([]float64, n)
		a.MulVec(b, want)
		x := append([]float64(nil), b...)
		if err := ch.Solve(x); err != nil {
			t.Fatal(err)
		}
		if r := residual(a, x, b); r > 1e-10 {
			t.Errorf("n=%d residual %g", n, r)
		}
	}
}

func TestCholeskyReconstructsA(t *testing.T) {
	a := randomSPD(8, 3)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L*Lᵀ must equal A (lower triangle check suffices by symmetry).
	for i := 0; i < 8; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += ch.L.At(i, k) * ch.L.At(j, k)
			}
			if math.Abs(s-a.At(i, j)) > 1e-9*math.Abs(a.At(i, j)) {
				t.Fatalf("LLᵀ(%d,%d)=%g want %g", i, j, s, a.At(i, j))
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1) // eigenvalues 3, -1
	if _, err := NewCholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Errorf("want ErrNotPositiveDefinite, got %v", err)
	}
	if _, err := NewCholesky(NewMatrix(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
}

func TestLUSolve(t *testing.T) {
	for _, n := range []int{1, 3, 10, 40} {
		a := randomMatrix(n, n, int64(100+n))
		// Make it well-conditioned by boosting the diagonal.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		lu, err := NewLU(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = math.Sin(float64(i))
		}
		b := make([]float64, n)
		a.MulVec(b, want)
		x, err := lu.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := residual(a, x, b); r > 1e-10 {
			t.Errorf("n=%d residual %g", n, r)
		}
	}
}

func TestLUPivoting(t *testing.T) {
	// Zero leading pivot requires a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	lu, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := lu.Solve([]float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-14 || math.Abs(x[1]-3) > 1e-14 {
		t.Errorf("permutation solve got %v", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(2, 2) // all zeros
	if _, err := NewLU(a); !errors.Is(err, ErrSingular) {
		t.Errorf("want ErrSingular, got %v", err)
	}
}

func TestQRLeastSquares(t *testing.T) {
	// Overdetermined: fit a known quadratic exactly sampled.
	m, n := 20, 3
	a := NewMatrix(m, n)
	b := make([]float64, m)
	coef := []float64{2, -1, 0.5}
	for i := 0; i < m; i++ {
		x := float64(i) / float64(m)
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		a.Set(i, 2, x*x)
		b[i] = coef[0] + coef[1]*x + coef[2]*x*x
	}
	qr, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := qr.SolveLS(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coef {
		if math.Abs(x[i]-coef[i]) > 1e-10 {
			t.Errorf("coef %d: got %g want %g", i, x[i], coef[i])
		}
	}
}

// Property: QR least-squares residual is orthogonal to the column space.
func TestQuickQRNormalEquations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := n + rng.Intn(10)
		a := randomMatrix(m, n, seed)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		qr, err := NewQR(a)
		if err != nil {
			return true // singular random draw: skip
		}
		x, err := qr.SolveLS(b)
		if err != nil {
			return true
		}
		// r = b - A x must satisfy Aᵀ r ≈ 0.
		r := make([]float64, m)
		a.MulVec(r, x)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		atr := make([]float64, n)
		a.MulTransVec(atr, r)
		for _, v := range atr {
			if math.Abs(v) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQRSquareMatchesExact(t *testing.T) {
	a := randomSPD(6, 9)
	want := []float64{1, 2, 3, 4, 5, 6}
	b := make([]float64, 6)
	a.MulVec(b, want)
	qr, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := qr.SolveLS(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-8 {
			t.Errorf("x[%d]=%g want %g", i, x[i], want[i])
		}
	}
}

func TestQRRejectsWide(t *testing.T) {
	if _, err := NewQR(NewMatrix(2, 3)); err == nil {
		t.Error("wide matrix accepted")
	}
}

func TestFlopCountsPositive(t *testing.T) {
	a := randomSPD(5, 1)
	ch, _ := NewCholesky(a)
	lu, _ := NewLU(a)
	qr, _ := NewQR(a)
	if ch.FactorFlops() <= 0 || ch.SolveFlops() <= 0 ||
		lu.FactorFlops() <= 0 || lu.SolveFlops() <= 0 ||
		qr.FactorFlops() <= 0 || qr.SolveFlops() <= 0 {
		t.Error("flop counts must be positive")
	}
	// LU costs ~2x Cholesky on the same size (integer division of the
	// cubic terms can be off by one).
	if d := lu.FactorFlops() - 2*ch.FactorFlops(); d < -2 || d > 2 {
		t.Errorf("LU %d vs Cholesky %d flops", lu.FactorFlops(), ch.FactorFlops())
	}
}
