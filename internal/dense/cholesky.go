package dense

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when a non-positive pivot
// is encountered.
var ErrNotPositiveDefinite = errors.New("dense: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of A = L*Lᵀ.
type Cholesky struct {
	N int
	L *Matrix
}

// NewCholesky factorizes the symmetric positive-definite matrix a. Only
// the lower triangle of a is read. The LI recovery scheme factorizes the
// SPD diagonal block A_{p_i,p_i} this way when using the exact (LU/
// Cholesky) baseline.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("dense: Cholesky of non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d is %g", ErrNotPositiveDefinite, j, d)
		}
		diag := math.Sqrt(d)
		l.Set(j, j, diag)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/diag)
		}
	}
	return &Cholesky{N: n, L: l}, nil
}

// Solve solves A*x = b in place: b is overwritten with x.
func (c *Cholesky) Solve(b []float64) error {
	if len(b) != c.N {
		return fmt.Errorf("dense: Cholesky.Solve length %d, want %d", len(b), c.N)
	}
	// Forward: L*y = b.
	for i := 0; i < c.N; i++ {
		s := b[i]
		row := c.L.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * b[k]
		}
		b[i] = s / row[i]
	}
	// Backward: Lᵀ*x = y.
	for i := c.N - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < c.N; k++ {
			s -= c.L.At(k, i) * b[k]
		}
		b[i] = s / c.L.At(i, i)
	}
	return nil
}

// FactorFlops returns the flop count of the factorization (n³/3).
func (c *Cholesky) FactorFlops() int64 {
	n := int64(c.N)
	return n * n * n / 3
}

// SolveFlops returns the flop count of one solve (2n²).
func (c *Cholesky) SolveFlops() int64 {
	n := int64(c.N)
	return 2 * n * n
}
