// Package dense provides the dense linear algebra the recovery baselines
// need: Cholesky and LU factorizations for the LU-based LI scheme, and
// Householder QR for the QR-based LSI scheme (the "previous work"
// baselines the paper's Section 4 optimizations are compared against).
package dense

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("dense: invalid dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing internal storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = M*x.
func (m *Matrix) MulVec(y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("dense: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// MulTransVec computes y = Mᵀ*x.
func (m *Matrix) MulTransVec(y, x []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("dense: MulTransVec dimension mismatch")
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			y[j] += v * xi
		}
	}
}

// Transpose returns Mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}
