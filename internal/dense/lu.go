package dense

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization meets an exactly zero pivot.
var ErrSingular = errors.New("dense: matrix is singular")

// LU holds an LU factorization with partial pivoting: P*A = L*U, stored
// packed in a single matrix (unit lower triangle implicit).
type LU struct {
	N    int
	F    *Matrix // packed L\U
	Perm []int   // row permutation: row i of U corresponds to row Perm[i] of A
}

// NewLU factorizes a with partial pivoting. This is the factorization the
// prior-work LI baseline uses on the diagonal block (Section 4.1 of the
// paper cites its high time and memory cost, which motivates the CG-based
// construction).
func NewLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("dense: LU of non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Pivot search.
		p := k
		max := math.Abs(f.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(f.At(i, k)); v > max {
				max, p = v, i
			}
		}
		if max == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			rowK, rowP := f.Row(k), f.Row(p)
			for j := 0; j < n; j++ {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			perm[k], perm[p] = perm[p], perm[k]
		}
		pivot := f.At(k, k)
		for i := k + 1; i < n; i++ {
			m := f.At(i, k) / pivot
			f.Set(i, k, m)
			if m == 0 {
				continue
			}
			rowI, rowK := f.Row(i), f.Row(k)
			for j := k + 1; j < n; j++ {
				rowI[j] -= m * rowK[j]
			}
		}
	}
	return &LU{N: n, F: f, Perm: perm}, nil
}

// Solve solves A*x = b, returning x in a new slice.
func (lu *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != lu.N {
		return nil, fmt.Errorf("dense: LU.Solve length %d, want %d", len(b), lu.N)
	}
	n := lu.N
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[lu.Perm[i]]
	}
	// Forward with implicit unit diagonal.
	for i := 1; i < n; i++ {
		s := x[i]
		row := lu.F.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s
	}
	// Backward.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := lu.F.Row(i)
		for k := i + 1; k < n; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// FactorFlops returns the flop count of the factorization (2n³/3).
func (lu *LU) FactorFlops() int64 {
	n := int64(lu.N)
	return 2 * n * n * n / 3
}

// SolveFlops returns the flop count of one solve (2n²).
func (lu *LU) SolveFlops() int64 {
	n := int64(lu.N)
	return 2 * n * n
}
