package power

import (
	"math/rand"
	"testing"
)

func TestGapsDetection(t *testing.T) {
	m := NewMeter(true)
	// Core 0: contiguous, then a 0.5s hole, then more work. Core 1: solid.
	m.Record(0, "solve", 0, 1, 10)
	m.Record(0, "solve", 1, 0.5, 20) // different watts: not coalesced
	m.Record(0, "solve", 2, 1, 10)   // hole (1.5, 2)
	m.Record(1, "solve", 0.25, 3, 5) // leading idle is not a gap
	gaps := m.Gaps(1e-9)
	if len(gaps) != 1 {
		t.Fatalf("got %d gaps %v, want 1", len(gaps), gaps)
	}
	g := gaps[0]
	if g.Core != 0 || g.Start != 1.5 || g.End != 2 {
		t.Errorf("gap %+v, want core 0 over (1.5, 2)", g)
	}
	// A tolerance wider than the hole suppresses it.
	if gs := m.Gaps(0.6); len(gs) != 0 {
		t.Errorf("tol 0.6 still reports %v", gs)
	}
}

func TestGapsCoveredOutOfOrder(t *testing.T) {
	m := NewMeter(true)
	// Overlapping and out-of-order segments on one core still count as
	// full coverage: Gaps sorts and tracks the running max end.
	m.Record(2, "solve", 1, 1, 10)
	m.Record(2, "ckpt", 0, 1.5, 10)
	m.Record(2, "solve", 2, 1, 10)
	if gaps := m.Gaps(1e-9); len(gaps) != 0 {
		t.Errorf("covered timeline reports gaps %v", gaps)
	}
}

// TestCoalescingSurvivesInterleaving: another core recording in between
// two contiguous same-power segments must not defeat their merge — the
// retained list per core is a pure function of that core's program order.
func TestCoalescingSurvivesInterleaving(t *testing.T) {
	m := NewMeter(true)
	m.Record(0, "solve", 0, 1, 10)
	m.Record(1, "solve", 0, 2, 5)
	m.Record(0, "solve", 1, 1, 10)
	segs := m.Segments()
	if len(segs) != 2 {
		t.Fatalf("got %d segments %v, want 2 (core 0 coalesced)", len(segs), segs)
	}
	for _, s := range segs {
		if s.Core == 0 && (s.Start != 0 || s.Dur != 2) {
			t.Errorf("core 0 segment %+v, want one merged (0, 2)", s)
		}
	}
}

func TestGapsPanicsWithoutSegments(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Gaps on a segment-less meter must panic, not report full coverage")
		}
	}()
	NewMeter(false).Gaps(1e-9)
}

// TestEnergyDeterministicUnderRaces drives many goroutines through
// disjoint cores in random interleavings and demands bit-identical totals:
// the per-core accumulation plus sorted reduction must erase scheduling
// order from the float sums.
func TestEnergyDeterministicUnderRaces(t *testing.T) {
	const cores, recs = 8, 200
	runOnce := func(seed int64) (float64, map[string]float64) {
		m := NewMeter(false)
		done := make(chan struct{}, cores)
		for c := 0; c < cores; c++ {
			go func(c int) {
				r := rand.New(rand.NewSource(seed + int64(c)))
				clock := 0.0
				for i := 0; i < recs; i++ {
					d := r.Float64()/3 + 1e-4
					ph := "solve"
					if i%7 == 0 {
						ph = "reconstruct"
					}
					m.Record(c, ph, clock, d, 10+r.Float64())
					clock += d
				}
				done <- struct{}{}
			}(c)
		}
		for c := 0; c < cores; c++ {
			<-done
		}
		return m.TotalEnergy(), m.EnergyByPhase()
	}

	e0, p0 := runOnce(42)
	for i := 0; i < 5; i++ {
		e, p := runOnce(42)
		if e != e0 {
			t.Fatalf("total energy drifted across schedules: %v vs %v", e, e0)
		}
		for ph, v := range p0 {
			if p[ph] != v {
				t.Fatalf("phase %q drifted: %v vs %v", ph, p[ph], v)
			}
		}
	}
}
