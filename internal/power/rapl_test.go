package power

import (
	"math"
	"testing"
	"testing/quick"
)

func raplMeter() *Meter {
	m := NewMeter(true)
	m.Record(0, "solve", 0, 2, 10) // 20 J over [0,2]
	m.Record(1, "solve", 1, 2, 5)  // 10 J over [1,3]
	return m
}

func TestCounterEnergyUpTo(t *testing.T) {
	c := NewCounter(raplMeter())
	cases := []struct{ t, want float64 }{
		{0, 0},
		{1, 10},     // core 0 only
		{2, 25},     // 20 + 5
		{3, 30},     // everything
		{100, 30},   // beyond the end
		{0.5, 5},    // partial
		{1.5, 17.5}, // 15 + 2.5
	}
	for _, cse := range cases {
		if got := c.EnergyUpTo(cse.t); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("EnergyUpTo(%g)=%g want %g", cse.t, got, cse.want)
		}
	}
}

func TestCounterWindow(t *testing.T) {
	c := NewCounter(raplMeter())
	j, w := c.Window(1, 3)
	if math.Abs(j-20) > 1e-12 {
		t.Errorf("window energy %g want 20", j)
	}
	if math.Abs(w-10) > 1e-12 {
		t.Errorf("window power %g want 10", w)
	}
	j, w = c.Window(2, 2)
	if j != 0 || w != 0 {
		t.Error("zero-width window must be zero")
	}
}

func TestCounterPanics(t *testing.T) {
	c := NewCounter(raplMeter())
	for _, fn := range []func(){
		func() { c.EnergyUpTo(-1) },
		func() { c.Window(2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPerCoreEnergy(t *testing.T) {
	m := raplMeter()
	per := m.PerCoreEnergy()
	if per[0] != 20 || per[1] != 10 {
		t.Errorf("per-core %v", per)
	}
}

func TestSamplerMatchesCounter(t *testing.T) {
	m := raplMeter()
	s := NewSampler(m)
	c := NewCounter(m)
	for _, tm := range []float64{0, 0.3, 1, 1.7, 2, 2.5, 3, 10} {
		if got, want := s.ReadAt(tm), c.EnergyUpTo(tm); math.Abs(got-want) > 1e-12 {
			t.Errorf("ReadAt(%g)=%g want %g", tm, got, want)
		}
	}
}

func TestSamplerRejectsRewind(t *testing.T) {
	s := NewSampler(raplMeter())
	s.ReadAt(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.ReadAt(1)
}

// Property: the sampler's monotone reads always match the counter on
// random non-decreasing time sequences over random meters.
func TestQuickSamplerConsistent(t *testing.T) {
	f := func(durs []float64, steps []float64) bool {
		m := NewMeter(true)
		t0 := 0.0
		for i, d := range durs {
			d = math.Mod(math.Abs(d), 3) + 0.05
			m.Record(i%4, "p", t0, d, float64(i%3)+1)
			t0 += d * 0.6
		}
		s := NewSampler(m)
		c := NewCounter(m)
		tm := 0.0
		for _, st := range steps {
			tm += math.Mod(math.Abs(st), 2)
			if math.IsNaN(tm) {
				return true
			}
			if math.Abs(s.ReadAt(tm)-c.EnergyUpTo(tm)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
