package power

import (
	"fmt"

	"resilience/internal/platform"
)

// Governor decides the frequency a core runs at, emulating the Linux
// CPUfreq governors the paper uses (Section 5.3):
//
//   - "ondemand": scales with utilization. MPI ranks busy-wait, so under
//     ondemand a rank that is waiting still appears fully utilized and
//     stays at f_max — this is the paper's OS-managed baseline, and why
//     plain LI only drops node power to ~0.75×.
//   - "userspace": the application sets frequencies explicitly; this is
//     what LI-DVFS/LSI-DVFS use to park non-reconstructing cores at f_min.
//   - "performance": pins f_max always.
type Governor interface {
	// Freq returns the frequency for a core given whether the core is
	// nominally busy and the application-requested frequency (used only
	// by userspace).
	Freq(busy bool, requested float64) float64
	Name() string
}

// PerformanceGovernor pins the maximum frequency.
type PerformanceGovernor struct{ P *platform.Platform }

// Freq implements Governor.
func (g PerformanceGovernor) Freq(bool, float64) float64 { return g.P.FreqMax }

// Name implements Governor.
func (g PerformanceGovernor) Name() string { return "performance" }

// OndemandGovernor scales to f_max when the core appears utilized and to
// f_min when it is truly idle. Busy-waiting counts as utilized.
type OndemandGovernor struct{ P *platform.Platform }

// Freq implements Governor.
func (g OndemandGovernor) Freq(busy bool, _ float64) float64 {
	if busy {
		return g.P.FreqMax
	}
	return g.P.FreqMin
}

// Name implements Governor.
func (g OndemandGovernor) Name() string { return "ondemand" }

// UserspaceGovernor obeys the application's requested frequency, clamped
// to the platform ladder.
type UserspaceGovernor struct{ P *platform.Platform }

// Freq implements Governor.
func (g UserspaceGovernor) Freq(_ bool, requested float64) float64 {
	return g.P.ClampFreq(requested)
}

// Name implements Governor.
func (g UserspaceGovernor) Name() string { return "userspace" }

// NewGovernor builds a governor by CPUfreq name.
func NewGovernor(name string, p *platform.Platform) (Governor, error) {
	switch name {
	case "performance":
		return PerformanceGovernor{P: p}, nil
	case "ondemand":
		return OndemandGovernor{P: p}, nil
	case "userspace":
		return UserspaceGovernor{P: p}, nil
	}
	return nil, fmt.Errorf("power: unknown governor %q", name)
}
