package power

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Counter emulates the RAPL energy counter interface the paper reads:
// monotonically increasing cumulative energy, sampled at arbitrary
// virtual-time points. Sampling twice and differencing gives the energy
// of a window, exactly how RAPL-based measurement scripts work.
type Counter struct {
	m *Meter
}

// NewCounter wraps a meter (which must retain segments).
func NewCounter(m *Meter) *Counter { return &Counter{m: m} }

// EnergyUpTo returns the cumulative energy of all cores in [0, t].
func (c *Counter) EnergyUpTo(t float64) float64 {
	if t < 0 {
		panic(fmt.Sprintf("power: EnergyUpTo(%g) before time zero", t))
	}
	var sum float64
	for _, s := range c.m.Segments() {
		if s.Start >= t {
			continue
		}
		hi := math.Min(s.End(), t)
		sum += s.Watts * (hi - s.Start)
	}
	return sum
}

// Window returns the energy consumed in [t0, t1] and the average power
// over the window.
func (c *Counter) Window(t0, t1 float64) (joules, watts float64) {
	if t1 < t0 {
		panic(fmt.Sprintf("power: Window(%g, %g) reversed", t0, t1))
	}
	joules = c.EnergyUpTo(t1) - c.EnergyUpTo(t0)
	if t1 > t0 {
		watts = joules / (t1 - t0)
	}
	return joules, watts
}

// PerCoreEnergy returns each core's total energy. It requires segment
// retention and is used to check load/energy balance across ranks.
func (m *Meter) PerCoreEnergy() map[int]float64 {
	out := map[int]float64{}
	for _, s := range m.Segments() {
		out[s.Core] += s.Energy()
	}
	return out
}

// sampler support: a monotone cache for repeated forward-in-time reads,
// used by long power-profile sweeps to avoid re-scanning all segments.
type Sampler struct {
	c    *Counter
	mu   sync.Mutex
	segs []Segment
	idx  int
	acc  float64
	last float64
}

// NewSampler returns a sampler over the meter's current segments. Reads
// must be issued with non-decreasing timestamps.
func NewSampler(m *Meter) *Sampler {
	segs := m.Segments()
	// Segments are recorded per core concurrently; order by start time.
	sortSegments(segs)
	return &Sampler{c: NewCounter(m), segs: segs}
}

// ReadAt returns cumulative energy up to t; t must not decrease across
// calls.
func (s *Sampler) ReadAt(t float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < s.last {
		panic(fmt.Sprintf("power: Sampler.ReadAt(%g) after %g", t, s.last))
	}
	s.last = t
	// Fold in all segments that end at or before t.
	for s.idx < len(s.segs) && s.segs[s.idx].End() <= t {
		s.acc += s.segs[s.idx].Energy()
		s.idx++
	}
	sum := s.acc
	// Partially overlapping segments (started before t, still running).
	for i := s.idx; i < len(s.segs) && s.segs[i].Start < t; i++ {
		hi := math.Min(s.segs[i].End(), t)
		if hi > s.segs[i].Start {
			sum += s.segs[i].Watts * (hi - s.segs[i].Start)
		}
	}
	return sum
}

func sortSegments(segs []Segment) {
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start })
}
