// Package power implements the simulated energy measurement substrate that
// replaces the Intel RAPL interface the paper reads: a per-core,
// phase-tagged power meter over virtual time, plus DVFS governor
// emulations.
//
// The meter stores (core, phase, start, duration, watts) segments.
// Segments from different cores may be recorded concurrently from rank
// goroutines; the meter is safe for concurrent use. Contiguous segments
// with identical core/phase/watts are coalesced to bound memory.
package power

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Segment is one constant-power interval on one core.
type Segment struct {
	Core  int
	Phase string
	Start float64 // virtual seconds
	Dur   float64
	Watts float64
}

// End returns the segment's end time.
func (s Segment) End() float64 { return s.Start + s.Dur }

// Energy returns the segment's energy in joules.
func (s Segment) Energy() float64 { return s.Watts * s.Dur }

// Meter accumulates energy segments over virtual time.
//
// Energy is accumulated per core, not into shared totals: each core is
// written by a single rank goroutine in its program order, so the per-core
// sums are scheduling-independent, and the read-side reductions walk cores
// in sorted order. Totals are therefore bitwise run-to-run deterministic
// even though ranks record concurrently (a shared += would pick up the
// goroutine interleaving through float non-associativity).
type Meter struct {
	mu       sync.Mutex
	segs     []Segment
	cores    []coreMeter // dense, indexed by core id, grown on demand
	keepSegs bool
	reserved bool // core table pre-sized by Reserve; enables lock-free records
}

// coreMeter is one core's accumulator. Dense per-core state (vs. the
// former int-keyed maps) makes Record — which runs on every virtual
// clock advance of every rank — an index plus a float add.
type coreMeter struct {
	energy  float64
	lastEnd float64
	lastSeg int // index+1 of the last retained segment; 0 = none
	phases  []phaseEnergy
}

// phaseEnergy is one (phase, energy) entry. A core sees only a handful
// of phase labels, so a linear scan with Go's pointer-first string
// compare beats hashing the label on every record; the per-record `+=`
// sequence (and hence every reported bit) is unchanged from the map
// implementation.
type phaseEnergy struct {
	phase string
	e     float64
}

func (cm *coreMeter) addPhase(phase string, e float64) {
	for i := range cm.phases {
		if cm.phases[i].phase == phase {
			cm.phases[i].e += e
			return
		}
	}
	cm.phases = append(cm.phases, phaseEnergy{phase: phase, e: e})
}

// NewMeter returns a meter. If keepSegments is false, only aggregate
// energies are kept (cheaper for large sweeps); timelines then cannot be
// reconstructed.
func NewMeter(keepSegments bool) *Meter {
	return &Meter{keepSegs: keepSegments}
}

// Reserve pre-sizes the per-core table for cores [0, n). On a meter
// without segment retention, records to a reserved core then take a
// lock-free path: each core's accumulator is written by exactly one rank
// goroutine (core id = rank) and aggregate reads happen after the run
// joins, so no synchronization is needed beyond the run's own edges.
// Callers must reserve every core that will be recorded concurrently;
// the cluster runtime reserves its full rank range before any rank
// starts. Record runs on every virtual clock advance of every rank, so
// removing the global mutex removes the last cross-rank serialization
// point from the simulation hot path.
func (m *Meter) Reserve(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n > len(m.cores) {
		grown := make([]coreMeter, n)
		copy(grown, m.cores)
		m.cores = grown
	}
	m.reserved = true
}

// Record adds a segment. Zero-duration segments are ignored; negative
// durations panic (they indicate a virtual-clock bug).
func (m *Meter) Record(core int, phase string, start, dur, watts float64) {
	if dur == 0 {
		return
	}
	if dur < 0 || math.IsNaN(dur) {
		panic(fmt.Sprintf("power: negative/NaN duration %g on core %d phase %q", dur, core, phase))
	}
	if watts < 0 || math.IsNaN(watts) {
		panic(fmt.Sprintf("power: negative/NaN power %g on core %d phase %q", watts, core, phase))
	}
	if m.reserved && !m.keepSegs && core < len(m.cores) {
		// Lock-free single-writer path; see Reserve.
		cm := &m.cores[core]
		e := watts * dur
		cm.energy += e
		cm.addPhase(phase, e)
		if end := start + dur; end > cm.lastEnd {
			cm.lastEnd = end
		}
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if core >= len(m.cores) {
		grown := make([]coreMeter, core+1)
		copy(grown, m.cores)
		m.cores = grown
	}
	cm := &m.cores[core]
	e := watts * dur
	cm.energy += e
	cm.addPhase(phase, e)
	if end := start + dur; end > cm.lastEnd {
		cm.lastEnd = end
	}
	if !m.keepSegs {
		return
	}
	// Coalesce with the core's own previous segment when contiguous and
	// identical in phase and power. Tracking the last segment per core
	// (rather than globally) keeps each core's retained segment list a
	// pure function of its program order: whether another core's record
	// interleaved between two of ours cannot change what is merged.
	if cm.lastSeg > 0 {
		last := &m.segs[cm.lastSeg-1]
		if last.Phase == phase && last.Watts == watts &&
			math.Abs(last.End()-start) < 1e-12 {
			last.Dur += dur
			return
		}
	}
	m.segs = append(m.segs, Segment{Core: core, Phase: phase, Start: start, Dur: dur, Watts: watts})
	cm.lastSeg = len(m.segs)
}

// TotalEnergy returns the total recorded energy in joules, reduced over
// cores in ascending order (never-recorded cores contribute +0, which
// cannot change any bit of the sum).
func (m *Meter) TotalEnergy() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total float64
	for i := range m.cores {
		total += m.cores[i].energy
	}
	return total
}

// EnergyByPhase returns the per-phase energy breakdown, reduced over cores
// in ascending order (each phase appears once per core, so the per-core
// entry order cannot affect the sums).
func (m *Meter) EnergyByPhase() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64)
	for i := range m.cores {
		for _, pe := range m.cores[i].phases {
			out[pe.phase] += pe.e
		}
	}
	return out
}

// Segments returns a copy of the recorded segments (empty when the meter
// was created without segment retention).
func (m *Meter) Segments() []Segment {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Segment, len(m.segs))
	copy(out, m.segs)
	return out
}

// Span returns the latest end time recorded on any core.
func (m *Meter) Span() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var end float64
	for i := range m.cores {
		if t := m.cores[i].lastEnd; t > end {
			end = t
		}
	}
	return end
}

// AveragePower returns total energy divided by the time span. It is the
// quantity the paper reports as P in Tables 5, 6 and Figure 8.
func (m *Meter) AveragePower() float64 {
	span := m.Span()
	if span == 0 {
		return 0
	}
	return m.TotalEnergy() / span
}

// Gap is an interval of one core's timeline with no recorded segment —
// virtual time the clock advanced through without energy accounting.
type Gap struct {
	Core  int
	Start float64
	End   float64
}

// Gaps returns every unaccounted interval longer than tol on any core,
// from each core's first recorded segment to its last (cores start at
// different times by construction, so leading idle is not a gap). A
// non-empty result indicates a clock-accounting bug: every clock advance
// is supposed to pass through Record. Requires segment retention; it
// panics otherwise, since an empty answer from a segment-less meter would
// falsely report full coverage.
func (m *Meter) Gaps(tol float64) []Gap {
	m.mu.Lock()
	keep := m.keepSegs
	segs := make([]Segment, len(m.segs))
	copy(segs, m.segs)
	m.mu.Unlock()
	if !keep {
		panic("power: Gaps requires a meter with segment retention")
	}
	byCore := make(map[int][]Segment)
	var cores []int
	for _, s := range segs {
		if _, ok := byCore[s.Core]; !ok {
			cores = append(cores, s.Core)
		}
		byCore[s.Core] = append(byCore[s.Core], s)
	}
	sort.Ints(cores)
	var gaps []Gap
	for _, core := range cores {
		cs := byCore[core]
		sort.Slice(cs, func(i, j int) bool { return cs[i].Start < cs[j].Start })
		end := cs[0].End()
		for _, s := range cs[1:] {
			if s.Start > end+tol {
				gaps = append(gaps, Gap{Core: core, Start: end, End: s.Start})
			}
			if e := s.End(); e > end {
				end = e
			}
		}
	}
	return gaps
}

// Sample is one point of a power timeline.
type Sample struct {
	Time  float64
	Watts float64
}

// Timeline integrates aggregate power over all cores into dt-wide bins
// from t=0 to the meter span (the power profile of Figure 7a). It
// requires segment retention.
func (m *Meter) Timeline(dt float64) []Sample {
	if dt <= 0 {
		panic("power: Timeline needs dt > 0")
	}
	segs := m.Segments()
	span := m.Span()
	if span == 0 || len(segs) == 0 {
		return nil
	}
	nbins := int(math.Ceil(span/dt)) + 1
	energy := make([]float64, nbins)
	for _, s := range segs {
		// Spread the segment's energy across the bins it overlaps.
		b0 := int(s.Start / dt)
		b1 := int(s.End() / dt)
		if b1 >= nbins {
			b1 = nbins - 1
		}
		for b := b0; b <= b1; b++ {
			lo := math.Max(s.Start, float64(b)*dt)
			hi := math.Min(s.End(), float64(b+1)*dt)
			if hi > lo {
				energy[b] += s.Watts * (hi - lo)
			}
		}
	}
	out := make([]Sample, nbins)
	for b := range energy {
		out[b] = Sample{Time: (float64(b) + 0.5) * dt, Watts: energy[b] / dt}
	}
	return out
}

// PhaseWindows returns, for each recorded phase, the merged time windows
// during which any core ran that phase. Used by tests and the power
// profile reports to locate reconstruction windows.
func (m *Meter) PhaseWindows(phase string) [][2]float64 {
	segs := m.Segments()
	var ws [][2]float64
	for _, s := range segs {
		if s.Phase == phase {
			ws = append(ws, [2]float64{s.Start, s.End()})
		}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i][0] < ws[j][0] })
	var merged [][2]float64
	for _, w := range ws {
		if n := len(merged); n > 0 && w[0] <= merged[n-1][1]+1e-12 {
			if w[1] > merged[n-1][1] {
				merged[n-1][1] = w[1]
			}
			continue
		}
		merged = append(merged, w)
	}
	return merged
}
