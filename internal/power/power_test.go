package power

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"resilience/internal/platform"
)

func TestMeterTotals(t *testing.T) {
	m := NewMeter(true)
	m.Record(0, "solve", 0, 2, 10) // 20 J
	m.Record(1, "solve", 0, 2, 10) // 20 J
	m.Record(0, "ckpt", 2, 1, 5)   // 5 J
	if got := m.TotalEnergy(); got != 45 {
		t.Errorf("total %g want 45", got)
	}
	by := m.EnergyByPhase()
	if by["solve"] != 40 || by["ckpt"] != 5 {
		t.Errorf("by phase %v", by)
	}
	if m.Span() != 3 {
		t.Errorf("span %g", m.Span())
	}
	if math.Abs(m.AveragePower()-15) > 1e-12 {
		t.Errorf("avg power %g want 15", m.AveragePower())
	}
}

func TestMeterCoalescing(t *testing.T) {
	m := NewMeter(true)
	m.Record(0, "solve", 0, 1, 10)
	m.Record(0, "solve", 1, 1, 10) // contiguous, same power: coalesce
	m.Record(0, "solve", 2, 1, 20) // different power: new segment
	segs := m.Segments()
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2: %v", len(segs), segs)
	}
	if segs[0].Dur != 2 {
		t.Errorf("coalesced duration %g", segs[0].Dur)
	}
}

func TestMeterZeroDurationIgnored(t *testing.T) {
	m := NewMeter(true)
	m.Record(0, "solve", 0, 0, 10)
	if len(m.Segments()) != 0 || m.TotalEnergy() != 0 {
		t.Error("zero-duration segment recorded")
	}
}

func TestMeterPanicsOnNegative(t *testing.T) {
	m := NewMeter(false)
	for _, fn := range []func(){
		func() { m.Record(0, "x", 0, -1, 1) },
		func() { m.Record(0, "x", 0, 1, -1) },
		func() { m.Record(0, "x", 0, math.NaN(), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMeterNoSegmentsMode(t *testing.T) {
	m := NewMeter(false)
	m.Record(0, "solve", 0, 1, 10)
	if len(m.Segments()) != 0 {
		t.Error("segments retained in aggregate mode")
	}
	if m.TotalEnergy() != 10 {
		t.Error("aggregate energy lost")
	}
	if m.Timeline(0.1) != nil {
		t.Error("timeline must be empty without segments")
	}
}

func TestMeterConcurrentRecording(t *testing.T) {
	m := NewMeter(true)
	var wg sync.WaitGroup
	for core := 0; core < 8; core++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Record(c, "solve", float64(i), 1, 2)
			}
		}(core)
	}
	wg.Wait()
	if got := m.TotalEnergy(); got != 8*100*2 {
		t.Errorf("concurrent total %g want 1600", got)
	}
}

// Property: timeline bins conserve energy.
func TestQuickTimelineConservesEnergy(t *testing.T) {
	f := func(durs []float64) bool {
		m := NewMeter(true)
		t0 := 0.0
		for i, d := range durs {
			d = math.Mod(math.Abs(d), 5) + 0.01
			m.Record(i%3, "solve", t0, d, float64(i%4)+1)
			t0 += d / 2 // overlapping segments across cores
		}
		if m.Span() == 0 {
			return true
		}
		var sum float64
		for _, s := range m.Timeline(m.Span() / 37) {
			sum += s.Watts * m.Span() / 37
		}
		return math.Abs(sum-m.TotalEnergy()) < 1e-6*math.Max(1, m.TotalEnergy())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPhaseWindowsMerge(t *testing.T) {
	m := NewMeter(true)
	m.Record(0, "reconstruct", 1, 1, 5)
	m.Record(1, "reconstruct", 1.5, 1, 5) // overlaps -> merged
	m.Record(0, "reconstruct", 5, 1, 5)   // separate window
	ws := m.PhaseWindows("reconstruct")
	if len(ws) != 2 {
		t.Fatalf("windows %v", ws)
	}
	if ws[0][0] != 1 || math.Abs(ws[0][1]-2.5) > 1e-12 {
		t.Errorf("first window %v", ws[0])
	}
	if len(m.PhaseWindows("nope")) != 0 {
		t.Error("unknown phase must have no windows")
	}
}

func TestGovernors(t *testing.T) {
	p := platform.Default()
	perf, err := NewGovernor("performance", p)
	if err != nil {
		t.Fatal(err)
	}
	if perf.Freq(false, 1.2) != p.FreqMax {
		t.Error("performance must pin fmax")
	}
	ond, _ := NewGovernor("ondemand", p)
	if ond.Freq(true, 0) != p.FreqMax || ond.Freq(false, 0) != p.FreqMin {
		t.Error("ondemand semantics wrong")
	}
	usr, _ := NewGovernor("userspace", p)
	if usr.Freq(true, 1.55) != p.ClampFreq(1.55) {
		t.Error("userspace must clamp to ladder")
	}
	if _, err := NewGovernor("bogus", p); err == nil {
		t.Error("unknown governor accepted")
	}
	for _, g := range []Governor{perf, ond, usr} {
		if g.Name() == "" {
			t.Error("governor must have a name")
		}
	}
}

func TestTimelinePanicsOnBadDt(t *testing.T) {
	m := NewMeter(true)
	m.Record(0, "solve", 0, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Timeline(0)
}

func TestSegmentAccessors(t *testing.T) {
	s := Segment{Core: 1, Phase: "solve", Start: 2, Dur: 3, Watts: 4}
	if s.End() != 5 || s.Energy() != 12 {
		t.Errorf("End=%g Energy=%g", s.End(), s.Energy())
	}
}
