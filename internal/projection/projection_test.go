package projection

import (
	"testing"
)

func TestProjectDefaultTrends(t *testing.T) {
	cfg := DefaultConfig()
	rows, err := Project(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*len(cfg.Sizes) {
		t.Fatalf("got %d rows", len(rows))
	}
	series := map[string][]Row{}
	for _, r := range rows {
		series[r.Scheme] = append(series[r.Scheme], r)
	}

	// Paper's Figure 9 trends.
	// RD: flat, zero time overhead, E_res = 1 everywhere, P = 2.
	for _, r := range series["RD"] {
		if r.TResNorm != 0 || r.EResNorm != 1 || r.PNorm != 2 {
			t.Errorf("RD at N=%d: %+v", r.N, r)
		}
	}
	// MTBF decreases with size.
	for i := 1; i < len(series["RD"]); i++ {
		if series["RD"][i].MTBFHours >= series["RD"][i-1].MTBFHours {
			t.Error("system MTBF must decrease with size")
		}
	}
	// CR-D: overhead grows with system size, and grows faster than FW at
	// the largest sizes.
	crd := series["CR-D"]
	fw := series["FW"]
	last := len(crd) - 1
	if crd[last].TResNorm <= crd[0].TResNorm {
		t.Error("CR-D overhead must grow")
	}
	if crd[last].TResNorm <= fw[last].TResNorm {
		t.Errorf("CR-D (%g) must exceed FW (%g) at the largest size",
			crd[last].TResNorm, fw[last].TResNorm)
	}
	// FW: overhead grows with size.
	if fw[last].TResNorm <= fw[0].TResNorm {
		t.Error("FW overhead must grow")
	}
	// CR-M: stays far below CR-D everywhere.
	for i, r := range series["CR-M"] {
		if r.TResNorm > crd[i].TResNorm {
			t.Errorf("CR-M above CR-D at N=%d", r.N)
		}
	}
	if series["CR-M"][last].TResNorm > 0.2 {
		t.Errorf("CR-M overhead %g should stay small", series["CR-M"][last].TResNorm)
	}
	// Power of FW and CR-D drops below baseline at the largest sizes
	// (recovery at reduced power dominates).
	if fw[last].PNorm >= 1 || crd[last].PNorm >= 1 {
		t.Errorf("FW/CR-D power must drop: %g, %g", fw[last].PNorm, crd[last].PNorm)
	}
	// Monotone growth of E_res for CR-D.
	for i := 1; i < len(crd); i++ {
		if crd[i].EResNorm < crd[i-1].EResNorm-1e-12 {
			t.Error("CR-D E_res must be non-decreasing")
		}
	}
}

func TestProjectValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NNZPerProc = 0
	if _, err := Project(cfg); err == nil {
		t.Error("invalid config accepted")
	}
	cfg = DefaultConfig()
	cfg.Sizes = []int{0}
	if _, err := Project(cfg); err == nil {
		t.Error("invalid size accepted")
	}
}

func TestProjectDVFSLowersFWEnergy(t *testing.T) {
	on := DefaultConfig()
	on.DVFS = true
	off := DefaultConfig()
	off.DVFS = false
	ron, err := Project(on)
	if err != nil {
		t.Fatal(err)
	}
	roff, err := Project(off)
	if err != nil {
		t.Fatal(err)
	}
	// Compare FW E_res at the largest size: DVFS must not increase it.
	var eOn, eOff float64
	for _, r := range ron {
		if r.Scheme == "FW" {
			eOn = r.EResNorm
		}
	}
	for _, r := range roff {
		if r.Scheme == "FW" {
			eOff = r.EResNorm
		}
	}
	if eOn > eOff {
		t.Errorf("DVFS increased projected FW energy: %g > %g", eOn, eOff)
	}
}
