// Package projection implements the paper's Section 6: projecting
// resilience costs to large systems under weak scaling. The workload
// keeps 50K non-zeros per process (fixed-time scaling), the per-process
// MTBF is constant (6000 hours), so the system MTBF decreases linearly
// with size. Costs come from the Section 3 models with platform-derived
// parameter scaling:
//
//   - t_C of CR-D grows linearly with system size (shared disk),
//   - t_C of CR-M is constant (local memory),
//   - t_const of FW grows with system size (the length-n beta assembly),
//   - t_extra of FW uses the measured average normalized overhead.
package projection

import (
	"fmt"

	"resilience/internal/checkpoint"
	"resilience/internal/model"
	"resilience/internal/platform"
)

// Config parameterizes the weak-scaling projection.
type Config struct {
	Plat *platform.Platform
	// NNZPerProc is the per-process non-zero count (paper: 50,000).
	NNZPerProc int
	// NNZPerRow sets rows-per-process = NNZPerProc / NNZPerRow.
	NNZPerRow int
	// ItersBase is the fault-free iteration count, constant under
	// fixed-time weak scaling.
	ItersBase int
	// PerProcMTBFHours is the constant per-process MTBF (paper: 6000 h).
	PerProcMTBFHours float64
	// ExtraFracPerFault is the measured average FW convergence penalty
	// per fault, normalized to the fault-free time (Section 6 adopts the
	// experimental average).
	ExtraFracPerFault float64
	// LocalConstSecs is the measured local construction time per fault at
	// the experimental scale (block-size constant under weak scaling).
	LocalConstSecs float64
	// DVFS selects the parked-core power level for FW.
	DVFS bool
	// Sizes is the list of process counts to project.
	Sizes []int
}

// DefaultConfig returns the paper's Figure 9 setting with measured
// constants at their experiment-derived defaults.
func DefaultConfig() Config {
	return Config{
		Plat:              platform.Default(),
		NNZPerProc:        50_000,
		NNZPerRow:         16,
		ItersBase:         1000,
		PerProcMTBFHours:  6000,
		ExtraFracPerFault: 0.04,
		LocalConstSecs:    0.05,
		DVFS:              true,
		Sizes:             []int{1 << 7, 1 << 9, 1 << 11, 1 << 13, 1 << 15, 1 << 17, 1 << 19, 1 << 20},
	}
}

// Row is one projected point: a scheme at a system size, normalized to
// the fault-free case at that size.
type Row struct {
	N      int
	Scheme string
	// MTBFHours is the system MTBF at this size.
	MTBFHours float64
	TResNorm  float64
	EResNorm  float64
	PNorm     float64
}

// baseline computes the fault-free T and P at size n.
func (c Config) baseline(n int) model.Params {
	plat := c.Plat
	rowsPerProc := c.NNZPerProc / c.NNZPerRow
	flopsPerIter := int64(2*c.NNZPerProc + 12*rowsPerProc)
	tIter := plat.ComputeTime(flopsPerIter, plat.FreqMax)
	// Parallel overhead per iteration: three allreduces plus a halo
	// exchange of a few neighbor messages.
	tIter += 3 * plat.CollectiveTime(8, n)
	tIter += 4 * plat.P2PTime(int64(8*(rowsPerProc/8+1)))
	tBase := float64(c.ItersBase) * tIter
	return model.Params{
		TBase:  tBase,
		PBase:  float64(n) * plat.PowerActive(plat.FreqMax),
		N:      n,
		Lambda: float64(n) / (c.PerProcMTBFHours * 3600),
	}
}

// Project computes the Figure 9 series for RD, CR-D, CR-M and FW.
func Project(c Config) ([]Row, error) {
	if c.Plat == nil {
		c.Plat = platform.Default()
	}
	if c.NNZPerProc <= 0 || c.NNZPerRow <= 0 || c.ItersBase <= 0 || c.PerProcMTBFHours <= 0 {
		return nil, fmt.Errorf("projection: invalid config %+v", c)
	}
	plat := c.Plat
	rowsPerProc := c.NNZPerProc / c.NNZPerRow
	ckptBytes := int64(8 * rowsPerProc)

	var rows []Row
	for _, n := range c.Sizes {
		if n <= 0 {
			return nil, fmt.Errorf("projection: invalid size %d", n)
		}
		base := c.baseline(n)
		mtbfSec := 1 / base.Lambda
		add := func(scheme string, pred model.Prediction) {
			rows = append(rows, Row{
				N:         n,
				Scheme:    scheme,
				MTBFHours: mtbfSec / 3600,
				TResNorm:  pred.TResNorm(base),
				EResNorm:  pred.EResNorm(base),
				PNorm:     pred.PNorm(base),
			})
		}

		// RD.
		p := base
		p.Replicas = 2
		rd, err := model.PredictRD(p)
		if err != nil {
			return nil, err
		}
		add("RD", rd)

		// CR-D: shared disk, t_C linear in n.
		p = base
		p.TC = (checkpoint.DiskStore{Plat: plat}).WriteTime(ckptBytes, n)
		p.IC = checkpoint.YoungInterval(p.TC, mtbfSec)
		p.PCkptFrac = plat.PowerIdle(plat.FreqMax) / plat.PowerActive(plat.FreqMax)
		crd, err := model.PredictCR(p)
		if err != nil {
			return nil, err
		}
		add("CR-D", crd)

		// CR-M: local memory, t_C constant.
		p = base
		p.TC = (checkpoint.MemStore{Plat: plat}).WriteTime(ckptBytes, n)
		p.IC = checkpoint.YoungInterval(p.TC, mtbfSec)
		p.PCkptFrac = 1
		crm, err := model.PredictCR(p)
		if err != nil {
			return nil, err
		}
		add("CR-M", crm)

		// FW (best case): local construction constant, beta assembly
		// grows with the global problem size.
		p = base
		globalN := int64(rowsPerProc) * int64(n)
		p.TConst = c.LocalConstSecs + plat.CollectiveTime(8*globalN/int64(n), n) // per-stage block payload
		// The allreduce moves ~rowsPerProc doubles per stage across
		// log2(n) stages; add the linear-volume term for the reduction
		// arithmetic.
		p.TConst += float64(globalN) * 8 / plat.NetBandwidth
		p.ExtraFracPerFault = c.ExtraFracPerFault
		p.NTilde = 1
		p.PIdleFrac = plat.PowerIdle(parkFreq(plat, c.DVFS)) / plat.PowerActive(plat.FreqMax)
		fw, err := model.PredictFW(p)
		if err != nil {
			return nil, err
		}
		add("FW", fw)
	}
	return rows, nil
}

func parkFreq(plat *platform.Platform, dvfs bool) float64 {
	if dvfs {
		return plat.FreqMin
	}
	return plat.FreqMax
}
