package projection

import (
	"math"
	"testing"
)

// TestProjectExtremeMTBF runs the weak-scaling projection at both ends of
// the per-process reliability axis. 1e12 hours stands in for the MTBF→∞
// limit (literal +Inf would zero the rate and turn CR's lost-work term
// into 0·∞ = NaN, so the limit is probed with a huge finite value);
// 1e-9 hours is the continuous-fault limit. Every projected row
// must stay finite, and resilience overheads must shrink as machines get
// more reliable.
func TestProjectExtremeMTBF(t *testing.T) {
	run := func(hours float64) []Row {
		c := DefaultConfig()
		c.PerProcMTBFHours = hours
		c.Sizes = []int{128, 1 << 15}
		rows, err := Project(c)
		if err != nil {
			t.Fatalf("Project at MTBF %g h: %v", hours, err)
		}
		for _, r := range rows {
			for _, f := range []float64{r.MTBFHours, r.TResNorm, r.EResNorm, r.PNorm} {
				if math.IsNaN(f) || math.IsInf(f, 0) {
					t.Fatalf("Project at MTBF %g h: non-finite row %+v", hours, r)
				}
			}
			if r.TResNorm < 0 || r.EResNorm < 0 {
				t.Fatalf("Project at MTBF %g h: negative overhead %+v", hours, r)
			}
		}
		return rows
	}
	reliable := run(1e12)
	fragile := run(1e-9)
	if len(reliable) != len(fragile) {
		t.Fatalf("row counts differ: %d vs %d", len(reliable), len(fragile))
	}
	for i := range reliable {
		// Same (size, scheme) cell; the reliable machine must never pay
		// more time overhead than the fragile one.
		if reliable[i].TResNorm > fragile[i].TResNorm {
			t.Errorf("%s at N=%d: TResNorm %g on a 1e12 h machine exceeds %g on a 1e-9 h machine",
				reliable[i].Scheme, reliable[i].N, reliable[i].TResNorm, fragile[i].TResNorm)
		}
	}
	// In the near-fault-free limit the forward-recovery overhead (purely
	// fault-proportional) must be vanishingly small.
	for _, r := range reliable {
		if r.Scheme == "FW" && r.TResNorm > 1e-6 {
			t.Errorf("FW at N=%d with a 1e12 h MTBF keeps TResNorm %g, want ~0", r.N, r.TResNorm)
		}
	}
}

// TestProjectSingleProcess: N = 1 is the degenerate single-rank partition
// of the weak-scaling sweep. The projection must handle it (one process,
// whole-machine MTBF = per-process MTBF) without dividing by zero in the
// per-core power split.
func TestProjectSingleProcess(t *testing.T) {
	c := DefaultConfig()
	c.Sizes = []int{1}
	rows, err := Project(c)
	if err != nil {
		t.Fatalf("Project with Sizes=[1]: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows for one size, want 4 schemes", len(rows))
	}
	wantMTBF := c.PerProcMTBFHours
	for _, r := range rows {
		if r.N != 1 {
			t.Errorf("row %+v: N != 1", r)
		}
		if math.Abs(r.MTBFHours-wantMTBF)/wantMTBF > 1e-12 {
			t.Errorf("%s: system MTBF %g h at N=1, want the per-process MTBF %g h", r.Scheme, r.MTBFHours, wantMTBF)
		}
		for _, f := range []float64{r.TResNorm, r.EResNorm, r.PNorm} {
			if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
				t.Errorf("%s at N=1: bad normalized value %g", r.Scheme, f)
			}
		}
	}
}

// TestProjectRejectsDegenerateConfigs: table of invalid configurations
// that must error rather than emit NaN rows.
func TestProjectRejectsDegenerateConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero-nnz-per-proc", func(c *Config) { c.NNZPerProc = 0 }},
		{"negative-nnz-per-row", func(c *Config) { c.NNZPerRow = -1 }},
		{"zero-iters", func(c *Config) { c.ItersBase = 0 }},
		{"zero-mtbf", func(c *Config) { c.PerProcMTBFHours = 0 }},
		{"negative-mtbf", func(c *Config) { c.PerProcMTBFHours = -6000 }},
		{"zero-size", func(c *Config) { c.Sizes = []int{128, 0} }},
		{"negative-size", func(c *Config) { c.Sizes = []int{-4} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := DefaultConfig()
			tc.mutate(&c)
			if _, err := Project(c); err == nil {
				t.Errorf("Project accepted a %s config", tc.name)
			}
		})
	}
}
