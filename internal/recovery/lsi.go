package recovery

import (
	"fmt"

	"resilience/internal/dense"
	"resilience/internal/fault"
	"resilience/internal/obs"
	"resilience/internal/solver"
	"resilience/internal/vec"
)

// LSI is least-squares interpolation of the lost block (Eq. 18): the
// failed process solves min_x ||beta - A_{:,p_i} x|| with
// beta = b - Σ_{j≠i} A_{:,p_j} x_j^k (Eq. 20).
//
// Forming beta is inherently parallel: each surviving rank contributes
// A_{:,p_j} x_j = (A_{p_j,:})ᵀ x_j from its own row block (A is
// symmetric), and one length-n allreduce delivers the sum — this is why
// the paper's measured t_const for FW grows with system size.
//
// The solve then happens on the failed rank only:
//
//   - ConstructExact: QR of the column block A_{:,p_i}, restricted to its
//     structurally nonzero rows (rows that are entirely zero in A_{:,p_i}
//     contribute a constant to the residual and cannot affect the
//     minimizer) — the dense stand-in for the parallel sparse QR baseline.
//   - ConstructCG: the paper's Eq. 21 transformation
//     (A_{p_i,:} A_{p_i,:}ᵀ) x = A_{p_i,:} beta, solved with localized
//     CGLS that applies the row block twice per iteration.
type LSI struct {
	Base
	Construct     Construction
	DVFS          bool
	LocalTol      float64
	MaxLocalIters int

	z    []float64           // length-n contribution buffer
	beta []float64           // length-n right-hand side, reused per fault
	rhs  []float64           // reduced right-hand side, reused per fault
	x    []float64           // construction solution buffer, reused per fault
	ws   solver.SeqWorkspace // construction scratch, reused per fault
}

// Name implements Scheme.
func (s *LSI) Name() string {
	name := "LSI"
	if s.Construct == ConstructExact {
		name = "LSI(QR)"
	}
	if s.DVFS {
		name += "-DVFS"
	}
	return name
}

// Recover implements Scheme.
func (s *LSI) Recover(ctx *Ctx, f fault.Fault) (bool, error) {
	c := ctx.C
	defer ctx.span(obs.SpanReconstruct)()
	prev := c.SetPhase(PhaseReconstruct)
	defer c.SetPhase(prev)

	n := ctx.St.A.Rows
	if s.z == nil {
		s.z = make([]float64, n)
	}
	vec.Zero(s.z)
	if c.Rank() != f.Rank {
		// Contribute A_{:,p_j} x_j = (A_{p_j,:})ᵀ x_j.
		ctx.Op.RowBlock.MulTransVecAdd(s.z, ctx.St.X)
		c.Compute(ctx.Op.RowBlock.SpMVFlops())
	}
	// The length-n allreduce that assembles beta's subtrahend on every
	// rank (the failed one included).
	zsum := c.AllreduceSum(s.z)

	var solveErr error
	parkOthers(ctx, f.Rank, s.DVFS, func() {
		// beta = b - Σ_{j≠i} A_{:,p_j} x_j  (global length n).
		if s.beta == nil {
			s.beta = make([]float64, n)
		}
		beta := s.beta
		vec.Sub(beta, ctx.St.B, zsum)
		c.Compute(int64(n))
		switch s.Construct {
		case ConstructExact:
			solveErr = s.solveQR(ctx, beta)
		case ConstructCG:
			solveErr = s.solveCGLS(ctx, beta)
		default:
			solveErr = fmt.Errorf("recovery: unknown construction %d", int(s.Construct))
		}
	})
	return true, solveErr
}

// solveQR runs the exact least-squares baseline on the failed rank.
func (s *LSI) solveQR(ctx *Ctx, beta []float64) error {
	c := ctx.C
	nf := ctx.Op.N
	colBlock := ctx.St.Part.ColBlock(ctx.St.A, c.Rank())
	// Restrict to structurally nonzero rows.
	var rows []int
	for i := 0; i < colBlock.Rows; i++ {
		if colBlock.RowNNZ(i) > 0 {
			rows = append(rows, i)
		}
	}
	if len(rows) < nf {
		return fmt.Errorf("recovery: LSI column block is rank-deficient (%d nonzero rows < %d cols)",
			len(rows), nf)
	}
	d := dense.NewMatrix(len(rows), nf)
	rhs := make([]float64, len(rows))
	for di, i := range rows {
		cols, vals := colBlock.Row(i)
		for k, j := range cols {
			d.Set(di, j, vals[k])
		}
		rhs[di] = beta[i]
	}
	qr, err := dense.NewQR(d)
	if err != nil {
		return fmt.Errorf("recovery: LSI exact construction: %w", err)
	}
	x, err := qr.SolveLS(rhs)
	if err != nil {
		return fmt.Errorf("recovery: LSI exact solve: %w", err)
	}
	c.Compute(qr.FactorFlops() + qr.SolveFlops())
	copy(ctx.St.X, x)
	return nil
}

// solveCGLS runs the paper's localized Eq. 21 construction on the failed
// rank: rhs = A_{p_i,:} beta, then CG on G = A_{p_i,:} A_{p_i,:}ᵀ.
func (s *LSI) solveCGLS(ctx *Ctx, beta []float64) error {
	c := ctx.C
	nf := ctx.Op.N
	if len(s.rhs) < nf {
		s.rhs = make([]float64, nf)
		s.x = make([]float64, nf)
	}
	rhs := s.rhs[:nf]
	ctx.Op.RowBlock.MulVec(rhs, beta)
	c.Compute(ctx.Op.RowBlock.SpMVFlops())

	tol := s.LocalTol
	if tol <= 0 {
		tol = 1e-6
	}
	maxIters := s.MaxLocalIters
	if maxIters <= 0 {
		maxIters = 10 * nf
	}
	x := s.x[:nf]
	vec.Zero(x)
	res := solver.PCGLSWork(&s.ws, ctx.Op.RowBlock, rhs, x, tol, maxIters)
	c.Compute(res.Flops)
	copy(ctx.St.X, x)
	return nil
}
