package recovery

import (
	"math"
	"testing"

	"resilience/internal/checkpoint"
	"resilience/internal/cluster"
	"resilience/internal/fault"
	"resilience/internal/matgen"
	"resilience/internal/platform"
	"resilience/internal/power"
	"resilience/internal/solver"
	"resilience/internal/sparse"
	"resilience/internal/vec"
)

// recoverOnce runs a controlled experiment: converge CG partway, corrupt
// rank F's block of x, run the scheme's Recover collectively, and return
// the reconstruction error ||x_rec - x_mid|| / ||x_mid|| on the failed
// block, where x_mid is the pre-fault iterate.
func recoverOnce(t *testing.T, makeScheme func() Scheme, a *sparse.CSR, ranks, failRank, midIters int) (reconErr float64, meter *power.Meter, span float64) {
	t.Helper()
	b, _ := matgen.RHS(a)
	part := sparse.NewPartition(a.Rows, ranks)
	plat := platform.Default()
	meter = power.NewMeter(true)

	errs := make([]float64, ranks)
	maxClock, err := cluster.Run(ranks, plat, meter, func(c *cluster.Comm) error {
		var preFault []float64
		scheme := makeScheme()
		step := 0
		mon := &hookMonitor{
			before: func(it *solver.Iter) (bool, error) {
				step = it.K
				if it.K != midIters {
					return false, nil
				}
				// Snapshot, corrupt, recover.
				preFault = vec.Clone(it.State.X)
				if c.Rank() == failRank {
					vec.Zero(it.State.X)
				}
				ctx := &Ctx{C: c, Op: it.Op, St: it.State, Plat: plat}
				restart, err := scheme.Recover(ctx, fault.Fault{Class: fault.SNF, Rank: failRank, Iter: it.K})
				if err != nil {
					return false, err
				}
				if c.Rank() == failRank {
					errs[c.Rank()] = vec.Dist2(it.State.X, preFault) /
						math.Max(vec.Nrm2(preFault), 1e-300)
				}
				return restart, nil
			},
			after: func(it *solver.Iter) error {
				ctx := &Ctx{C: c, Op: it.Op, St: it.State, Plat: plat}
				return scheme.AfterIteration(ctx, it.K)
			},
		}
		_, err := solver.CG(c, a, b, part, solver.Options{
			Tol: 1e-12, MaxIters: midIters + 50, Monitor: mon,
		})
		_ = step
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return errs[failRank], meter, maxClock
}

type hookMonitor struct {
	before func(*solver.Iter) (bool, error)
	after  func(*solver.Iter) error
}

func (m *hookMonitor) BeforeIteration(it *solver.Iter) (bool, error) { return m.before(it) }
func (m *hookMonitor) AfterIteration(it *solver.Iter) error          { return m.after(it) }

func testMatrix() *sparse.CSR {
	return matgen.BandedSPD(matgen.BandedOpts{N: 160, NNZPerRow: 7, Kappa: 200, Seed: 5})
}

func TestReconstructionAccuracyOrdering(t *testing.T) {
	a := testMatrix()
	err := map[string]float64{}
	for name, mk := range map[string]func() Scheme{
		"F0":      func() Scheme { return &F0{} },
		"LI":      func() Scheme { return &LI{Construct: ConstructCG, LocalTol: 1e-8} },
		"LI(LU)":  func() Scheme { return &LI{Construct: ConstructExact} },
		"LSI":     func() Scheme { return &LSI{Construct: ConstructCG, LocalTol: 1e-8} },
		"LSI(QR)": func() Scheme { return &LSI{Construct: ConstructExact} },
	} {
		e, _, _ := recoverOnce(t, mk, a, 4, 2, 12)
		err[name] = e
	}
	// F0 zeroes the block: error exactly 1 relative to the lost data.
	if math.Abs(err["F0"]-1) > 1e-9 {
		t.Errorf("F0 error %g want 1", err["F0"])
	}
	// Interpolating schemes must beat F0 substantially.
	for _, s := range []string{"LI", "LI(LU)", "LSI", "LSI(QR)"} {
		if err[s] >= 0.5*err["F0"] {
			t.Errorf("%s error %g does not beat F0 %g", s, err[s], err["F0"])
		}
	}
	// CG-based constructions approximate their exact counterparts.
	if err["LI"] > 10*err["LI(LU)"]+1e-6 {
		t.Errorf("LI(CG) error %g vs LI(LU) %g", err["LI"], err["LI(LU)"])
	}
	// LSI uses global information and must be at least as accurate as LI
	// here (the paper's ordering).
	if err["LSI(QR)"] > err["LI(LU)"]*1.5+1e-9 {
		t.Errorf("LSI(QR) %g vs LI(LU) %g", err["LSI(QR)"], err["LI(LU)"])
	}
}

func TestFISetsInitialGuess(t *testing.T) {
	a := testMatrix()
	x0 := make([]float64, 40) // block of rank 2 (160/4)
	for i := range x0 {
		x0[i] = 7
	}
	var captured []float64
	mk := func() Scheme {
		return &FI{X0: x0}
	}
	// Capture the post-recovery block through a wrapper scheme.
	_ = captured
	e, _, _ := recoverOnce(t, mk, a, 4, 2, 12)
	if e <= 0 {
		t.Error("FI must leave a nonzero reconstruction error")
	}
}

func TestCRRollback(t *testing.T) {
	a := testMatrix()
	mk := func() Scheme {
		return &CR{
			Store:  checkpoint.MemStore{Plat: platform.Default()},
			Policy: checkpoint.FixedPolicy(5),
		}
	}
	e, meter, _ := recoverOnce(t, mk, a, 4, 1, 12)
	// Rollback restores the iterate from iteration 10 (last multiple of
	// 5): close to but not equal to iteration 12's state.
	if e == 0 {
		t.Error("CR rollback should differ from the lost state")
	}
	if e > 1 {
		t.Errorf("CR rollback error %g larger than F0's", e)
	}
	if meter.EnergyByPhase()[PhaseCheckpoint] <= 0 {
		t.Error("checkpoint energy not recorded")
	}
	if meter.EnergyByPhase()[PhaseRollback] <= 0 {
		t.Error("rollback energy not recorded")
	}
}

func TestCRWithoutCheckpointFallsBackToX0(t *testing.T) {
	a := testMatrix()
	mk := func() Scheme {
		return &CR{
			Store:  checkpoint.MemStore{Plat: platform.Default()},
			Policy: checkpoint.FixedPolicy(1000), // never due before fault
		}
	}
	e, _, _ := recoverOnce(t, mk, a, 4, 1, 12)
	// Restores zeros (the default initial guess): same error as F0.
	if math.Abs(e-1) > 1e-9 {
		t.Errorf("CR without checkpoint error %g want 1", e)
	}
}

func TestRDExactRecovery(t *testing.T) {
	a := testMatrix()
	mk := func() Scheme { return &RD{} }
	e, _, _ := recoverOnce(t, mk, a, 4, 1, 12)
	if e > 1e-12 {
		t.Errorf("RD must restore exactly, error %g", e)
	}
}

func TestRedundancyDegrees(t *testing.T) {
	if (&RD{}).Redundancy() != 2 {
		t.Error("default RD degree")
	}
	if (&RD{Replicas: 3}).Redundancy() != 3 {
		t.Error("TMR degree")
	}
	if (&RD{Replicas: 3}).Name() != "TMR" || (&RD{}).Name() != "RD" {
		t.Error("RD names")
	}
	if (&F0{}).Redundancy() != 1 {
		t.Error("base redundancy")
	}
}

func TestSchemeNames(t *testing.T) {
	cases := map[string]Scheme{
		"F0":       &F0{},
		"FI":       &FI{},
		"LI":       &LI{Construct: ConstructCG},
		"LI-DVFS":  &LI{Construct: ConstructCG, DVFS: true},
		"LI(LU)":   &LI{Construct: ConstructExact},
		"LSI":      &LSI{Construct: ConstructCG},
		"LSI-DVFS": &LSI{Construct: ConstructCG, DVFS: true},
		"LSI(QR)":  &LSI{Construct: ConstructExact},
	}
	for want, s := range cases {
		if got := s.Name(); got != want {
			t.Errorf("Name() = %q want %q", got, want)
		}
	}
	cr := &CR{Store: checkpoint.MemStore{Plat: platform.Default()}}
	if cr.Name() != "CR-M" {
		t.Errorf("CR name %q", cr.Name())
	}
	crd := &CR{Store: checkpoint.DiskStore{Plat: platform.Default()}}
	if crd.Name() != "CR-D" {
		t.Errorf("CR name %q", crd.Name())
	}
}

// TestDVFSParkingReducesReconstructionEnergy compares the reconstruction
// phase energy with and without DVFS on the same fault.
func TestDVFSParkingReducesReconstructionEnergy(t *testing.T) {
	// A larger block makes the reconstruction long enough to amortize the
	// frequency transitions.
	a := matgen.BandedSPD(matgen.BandedOpts{N: 800, NNZPerRow: 9, Kappa: 3000, Seed: 6})
	energy := map[bool]float64{}
	for _, dvfs := range []bool{false, true} {
		mk := func() Scheme { return &LI{Construct: ConstructExact, DVFS: dvfs} }
		_, meter, _ := recoverOnce(t, mk, a, 4, 1, 10)
		energy[dvfs] = meter.EnergyByPhase()[PhaseReconstruct]
	}
	if energy[true] >= energy[false] {
		t.Errorf("DVFS reconstruction energy %g not below %g", energy[true], energy[false])
	}
}

func TestConstructionString(t *testing.T) {
	if ConstructCG.String() != "cg" || ConstructExact.String() != "exact" {
		t.Error("Construction.String")
	}
}

// TestLIErrorTracksConvergence: LI substitutes the neighbors' *current*
// iterates into the exact relation, so its reconstruction error scales
// with how converged the run is — faults early in the solve reconstruct
// worse than late ones. This is the mechanism behind the paper's
// observation that reconstruction accuracy depends on the workload.
func TestLIErrorTracksConvergence(t *testing.T) {
	a := testMatrix()
	mk := func() Scheme { return &LI{Construct: ConstructExact} }
	early, _, _ := recoverOnce(t, mk, a, 4, 1, 3)
	late, _, _ := recoverOnce(t, mk, a, 4, 1, 40)
	if late >= early {
		t.Errorf("late-fault LI error %g not below early-fault %g", late, early)
	}
}

// TestLSIWithScatteredMatrix exercises the least-squares path on an
// irregular (scattered) matrix, where the column block spreads over many
// rows.
func TestLSIWithScatteredMatrix(t *testing.T) {
	a := matgen.BandedSPD(matgen.BandedOpts{N: 120, NNZPerRow: 7, Kappa: 100, Scatter: 0.6, Seed: 9})
	for name, mk := range map[string]func() Scheme{
		"LSI(QR)": func() Scheme { return &LSI{Construct: ConstructExact} },
		"LSI(CG)": func() Scheme { return &LSI{Construct: ConstructCG, LocalTol: 1e-10} },
	} {
		e, _, _ := recoverOnce(t, mk, a, 4, 2, 15)
		if e >= 1 {
			t.Errorf("%s error %g not below F0's 1.0 on scattered matrix", name, e)
		}
	}
}

// TestRecoverySchemesLeaveOthersIntact: only the failed rank's block may
// change during forward recovery.
func TestRecoverySchemesLeaveOthersIntact(t *testing.T) {
	a := testMatrix()
	b, _ := matgen.RHS(a)
	part := sparse.NewPartition(a.Rows, 4)
	plat := platform.Default()
	meter := power.NewMeter(false)
	_, err := cluster.Run(4, plat, meter, func(c *cluster.Comm) error {
		scheme := &LI{Construct: ConstructCG, LocalTol: 1e-8}
		fired := false
		mon := &hookMonitor{
			before: func(it *solver.Iter) (bool, error) {
				if fired || it.K != 10 {
					return false, nil
				}
				fired = true
				snapshot := vec.Clone(it.State.X)
				if c.Rank() == 2 {
					vec.Zero(it.State.X)
				}
				ctx := &Ctx{C: c, Op: it.Op, St: it.State, Plat: plat}
				restart, err := scheme.Recover(ctx, fault.Fault{Class: fault.SNF, Rank: 2, Iter: it.K})
				if err != nil {
					return false, err
				}
				if c.Rank() != 2 {
					for i := range snapshot {
						if it.State.X[i] != snapshot[i] {
							t.Errorf("rank %d block changed during recovery", c.Rank())
							break
						}
					}
				}
				return restart, nil
			},
			after: func(*solver.Iter) error { return nil },
		}
		_, err := solver.CG(c, a, b, part, solver.Options{Tol: 1e-12, MaxIters: 60, Monitor: mon})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}
