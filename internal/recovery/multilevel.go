package recovery

import (
	"fmt"

	"resilience/internal/checkpoint"
	"resilience/internal/fault"
	"resilience/internal/obs"
	"resilience/internal/vec"
)

// CR2L is two-level checkpoint/restart in the style of SCR [Moody et al.
// 2010], an extension beyond the paper motivated by its related-work
// discussion: frequent cheap checkpoints to (buddy) memory plus rare
// expensive checkpoints to the shared disk. Recovery restores from the
// freshest level the fault class left intact — a system-wide outage
// (SWO) wipes memory copies, every other class can use them.
type CR2L struct {
	Base
	Mem        checkpoint.Store
	Disk       checkpoint.Store
	MemPolicy  checkpoint.Policy
	DiskPolicy checkpoint.Policy
	// X0 is this rank's block of the initial guess (zeros when nil).
	X0 []float64

	lastMem      []float64
	lastDisk     []float64
	memIter      int
	diskIter     int
	hasMem       bool
	hasDisk      bool
	MemWrites    int
	DiskWrites   int
	Rollbacks    int
	DiskRestores int
}

// Name implements Scheme.
func (s *CR2L) Name() string { return "CR-2L" }

func (s *CR2L) ckptBytes(ctx *Ctx) int64 { return int64(8 * ctx.St.Part.Size(0)) }

// AfterIteration implements Scheme: write whichever levels are due. When
// both are due in the same iteration only the disk write is charged in
// full; the memory copy is subsumed by it.
func (s *CR2L) AfterIteration(ctx *Ctx, completedIters int) error {
	memDue := s.MemPolicy.Due(completedIters)
	diskDue := s.DiskPolicy.Due(completedIters)
	if !memDue && !diskDue {
		return nil
	}
	c := ctx.C
	defer ctx.span(obs.SpanCheckpoint)()
	prev := c.SetPhase(PhaseCheckpoint)
	defer c.SetPhase(prev)
	bytes := s.ckptBytes(ctx)
	if diskDue {
		dur := s.Disk.WriteTime(bytes, ctx.Ranks())
		c.ElapseIdle(dur)
		if s.lastDisk == nil {
			s.lastDisk = make([]float64, len(ctx.St.X))
		}
		copy(s.lastDisk, ctx.St.X)
		s.hasDisk = true
		s.diskIter = completedIters
		s.DiskWrites++
	}
	if memDue {
		if !diskDue {
			c.ElapseActive(s.Mem.WriteTime(bytes, ctx.Ranks()))
		}
		if s.lastMem == nil {
			s.lastMem = make([]float64, len(ctx.St.X))
		}
		copy(s.lastMem, ctx.St.X)
		s.hasMem = true
		s.memIter = completedIters
		s.MemWrites++
	}
	return nil
}

// Recover implements Scheme.
func (s *CR2L) Recover(ctx *Ctx, f fault.Fault) (bool, error) {
	c := ctx.C
	defer ctx.span(obs.SpanRollback)()
	prev := c.SetPhase(PhaseRollback)
	defer c.SetPhase(prev)
	bytes := s.ckptBytes(ctx)
	s.Rollbacks++

	if f.Class == fault.SWO {
		// The outage voids the memory level whether or not a disk copy
		// exists to fall back on; a later fault must not restore from the
		// destroyed buddy copy.
		s.hasMem = false
		s.memIter = 0
	}
	switch {
	case s.hasMem && (!s.hasDisk || s.memIter >= s.diskIter):
		c.ElapseActive(s.Mem.ReadTime(bytes, ctx.Ranks()))
		copy(ctx.St.X, s.lastMem)
	case s.hasDisk:
		c.ElapseIdle(s.Disk.ReadTime(bytes, ctx.Ranks()))
		copy(ctx.St.X, s.lastDisk)
		s.DiskRestores++
	default:
		if s.X0 != nil {
			copy(ctx.St.X, s.X0)
		} else {
			vec.Zero(ctx.St.X)
		}
	}
	return true, nil
}

// Validate reports configuration errors.
func (s *CR2L) Validate() error {
	if s.Mem == nil || s.Disk == nil {
		return fmt.Errorf("recovery: CR2L needs both stores")
	}
	if s.MemPolicy.EveryIters < 1 || s.DiskPolicy.EveryIters < 1 {
		return fmt.Errorf("recovery: CR2L needs both policies")
	}
	if s.DiskPolicy.EveryIters < s.MemPolicy.EveryIters {
		return fmt.Errorf("recovery: CR2L disk interval %d below memory interval %d",
			s.DiskPolicy.EveryIters, s.MemPolicy.EveryIters)
	}
	return nil
}
