package recovery

import (
	"testing"

	"resilience/internal/checkpoint"
	"resilience/internal/cluster"
	"resilience/internal/fault"
	"resilience/internal/matgen"
	"resilience/internal/platform"
	"resilience/internal/power"
	"resilience/internal/solver"
	"resilience/internal/sparse"
)

// crSnapshot captures rank 0's view right after the last fault's
// recovery — later iterations resume checkpointing, so post-run state
// cannot pin the rollback behavior.
type crSnapshot struct {
	x            []float64 // the post-recovery block
	dur          float64   // virtual seconds the last recovery consumed
	ckptIter     int       // CR.LastCheckpointIter at that moment
	hasCkpt      bool      // CR.hasCkpt / CR2L.hasMem at that moment
	rollbacks    int
	diskRestores int // CR2L only
}

// runCRFaults converges CG partway on two ranks with the given scheme
// factory and fires the listed faults at their iterations (all ranks
// recover collectively, the struck rank's block is zeroed first).
func runCRFaults(t *testing.T, mk func(x0 []float64) Scheme, faults []fault.Fault, x0Val float64) crSnapshot {
	t.Helper()
	a := testMatrix()
	b, _ := matgen.RHS(a)
	const ranks = 2
	part := sparse.NewPartition(a.Rows, ranks)
	plat := platform.Default()
	meter := power.NewMeter(false)

	snaps := make([]crSnapshot, ranks)
	lastIter := 0
	for _, f := range faults {
		if f.Iter > lastIter {
			lastIter = f.Iter
		}
	}
	_, err := cluster.Run(ranks, plat, meter, func(c *cluster.Comm) error {
		x0 := make([]float64, part.Size(c.Rank()))
		for i := range x0 {
			x0[i] = x0Val
		}
		scheme := mk(x0)
		mon := &hookMonitor{
			before: func(it *solver.Iter) (bool, error) {
				restart := false
				for _, f := range faults {
					if f.Iter != it.K {
						continue
					}
					if c.Rank() == f.Rank {
						for i := range it.State.X {
							it.State.X[i] = 0
						}
					}
					ctx := &Ctx{C: c, Op: it.Op, St: it.State, Plat: plat}
					start := c.Clock()
					r, err := scheme.Recover(ctx, f)
					if err != nil {
						return false, err
					}
					restart = restart || r
					if it.K != lastIter {
						continue
					}
					snap := &snaps[c.Rank()]
					snap.x = append([]float64(nil), it.State.X...)
					snap.dur = c.Clock() - start
					switch s := scheme.(type) {
					case *CR:
						snap.ckptIter = s.LastCheckpointIter()
						snap.hasCkpt = s.hasCkpt
						snap.rollbacks = s.Rollbacks
					case *CR2L:
						snap.ckptIter = s.memIter
						snap.hasCkpt = s.hasMem
						snap.rollbacks = s.Rollbacks
						snap.diskRestores = s.DiskRestores
					}
				}
				return restart, nil
			},
			after: func(it *solver.Iter) error {
				ctx := &Ctx{C: c, Op: it.Op, St: it.State, Plat: plat}
				return scheme.AfterIteration(ctx, it.K)
			},
		}
		_, err := solver.CG(c, a, b, part, solver.Options{
			Tol: 1e-12, MaxIters: lastIter + 20, Monitor: mon,
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return snaps[0]
}

// TestCRStaleCheckpointAfterSWO is the two-fault regression for the
// stale-restore bug: an SWO destroys the memory checkpoints (buddy copies
// included), so the *next* non-SWO fault must roll back to the initial
// guess — not to the destroyed copy the scheme wrote before the outage.
func TestCRStaleCheckpointAfterSWO(t *testing.T) {
	const x0Val = 3.5
	faults := []fault.Fault{
		{Class: fault.SWO, Rank: 0, Iter: 12},
		{Class: fault.SNF, Rank: 1, Iter: 13},
	}
	snap := runCRFaults(t, func(x0 []float64) Scheme {
		return &CR{
			Store:  checkpoint.MemStore{Plat: platform.Default()},
			Policy: checkpoint.FixedPolicy(5), // checkpoints at iters 5 and 10
			X0:     x0,
		}
	}, faults, x0Val)
	for i, v := range snap.x {
		if v != x0Val {
			t.Fatalf("post-SWO rollback target: x[%d] = %g, want initial guess %g (restored the destroyed checkpoint)", i, v, x0Val)
		}
	}
	if snap.hasCkpt {
		t.Error("hasCkpt still set after an SWO destroyed the memory checkpoint")
	}
	if snap.ckptIter != 0 {
		t.Errorf("LastCheckpointIter() = %d after a destroyed checkpoint, want 0", snap.ckptIter)
	}
	if snap.rollbacks != 2 {
		t.Errorf("Rollbacks = %d, want 2", snap.rollbacks)
	}
}

// TestCR2LStaleMemoryAfterSWO pins the same pattern for the two-level
// scheme when no disk checkpoint exists yet: the outage voids the memory
// level even without a disk restore to fall back on.
func TestCR2LStaleMemoryAfterSWO(t *testing.T) {
	const x0Val = 2.25
	faults := []fault.Fault{
		{Class: fault.SWO, Rank: 0, Iter: 12},
		{Class: fault.SNF, Rank: 1, Iter: 13},
	}
	snap := runCRFaults(t, func(x0 []float64) Scheme {
		plat := platform.Default()
		return &CR2L{
			Mem:        checkpoint.MemStore{Plat: plat},
			Disk:       checkpoint.DiskStore{Plat: plat},
			MemPolicy:  checkpoint.FixedPolicy(5),
			DiskPolicy: checkpoint.FixedPolicy(1000), // no disk copy before the faults
			X0:         x0,
		}
	}, faults, x0Val)
	for i, v := range snap.x {
		if v != x0Val {
			t.Fatalf("post-SWO CR-2L rollback target: x[%d] = %g, want initial guess %g", i, v, x0Val)
		}
	}
	if snap.hasCkpt {
		t.Error("hasMem still set after an SWO with no disk checkpoint")
	}
	if snap.diskRestores != 0 {
		t.Errorf("DiskRestores = %d, want 0", snap.diskRestores)
	}
}

// TestCRFailedRestoreChargesNoReadTime: when no surviving checkpoint
// exists, nothing is read, so the rollback must not advance the clock by
// a checkpoint read.
func TestCRFailedRestoreChargesNoReadTime(t *testing.T) {
	mk := func(x0 []float64) Scheme {
		return &CR{
			Store:  checkpoint.MemStore{Plat: platform.Default()},
			Policy: checkpoint.FixedPolicy(5),
			X0:     x0,
		}
	}
	swo := runCRFaults(t, mk, []fault.Fault{{Class: fault.SWO, Rank: 0, Iter: 12}}, 1.0)
	if swo.dur != 0 {
		t.Errorf("failed restore consumed %g virtual seconds, want 0 (no surviving checkpoint to read)", swo.dur)
	}

	// A surviving checkpoint, by contrast, does pay the read.
	snf := runCRFaults(t, mk, []fault.Fault{{Class: fault.SNF, Rank: 0, Iter: 12}}, 1.0)
	if snf.dur <= 0 {
		t.Errorf("surviving-checkpoint restore consumed %g virtual seconds, want > 0", snf.dur)
	}
	if snf.ckptIter != 10 {
		t.Errorf("LastCheckpointIter() = %d, want 10 (policy fires at 5 and 10)", snf.ckptIter)
	}
}
