package recovery

import (
	"sync"
	"testing"

	"resilience/internal/checkpoint"
	"resilience/internal/fault"
	"resilience/internal/matgen"
	"resilience/internal/platform"
)

func mk2L(memEvery, diskEvery int) *CR2L {
	plat := platform.Default()
	return &CR2L{
		Mem:        checkpoint.MemStore{Plat: plat},
		Disk:       checkpoint.DiskStore{Plat: plat},
		MemPolicy:  checkpoint.FixedPolicy(memEvery),
		DiskPolicy: checkpoint.FixedPolicy(diskEvery),
	}
}

func TestCR2LValidate(t *testing.T) {
	if err := mk2L(5, 20).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&CR2L{}).Validate(); err == nil {
		t.Error("missing stores accepted")
	}
	if err := mk2L(20, 5).Validate(); err == nil {
		t.Error("disk interval below memory interval accepted")
	}
	bad := mk2L(5, 20)
	bad.MemPolicy = checkpoint.Policy{}
	if err := bad.Validate(); err == nil {
		t.Error("missing policy accepted")
	}
}

func TestCR2LName(t *testing.T) {
	if mk2L(5, 20).Name() != "CR-2L" {
		t.Error("name")
	}
}

// TestCR2LRecoversFromMemoryForSNF: a node failure restores the freshest
// (memory) checkpoint.
func TestCR2LRecoversFromMemoryForSNF(t *testing.T) {
	a := testMatrix()
	mk := func() Scheme { return mk2L(5, 50) }
	e, _, _ := recoverOnce(t, mk, a, 4, 1, 12)
	// Memory checkpoint from iteration 10 restores a near state.
	if e == 0 || e > 1 {
		t.Errorf("CR-2L SNF rollback error %g", e)
	}
}

// TestCR2LSurvivesSWOThroughDisk: an outage voids the memory level; the
// disk level still bounds the rollback.
func TestCR2LSurvivesSWOThroughDisk(t *testing.T) {
	a := testMatrix()
	var mu sync.Mutex
	var scheme *CR2L
	mkScheme := func() Scheme {
		s := mk2L(5, 10)
		mu.Lock()
		scheme = s
		mu.Unlock()
		return s
	}
	// Reuse recoverOnce's machinery but with an SWO fault, via a wrapper
	// that rewrites the class.
	wrap := func() Scheme { return classRewriter{inner: mkScheme(), class: fault.SWO} }
	e, _, _ := recoverOnce(t, wrap, a, 4, 1, 12)
	if e == 0 || e > 1 {
		t.Errorf("CR-2L SWO rollback error %g", e)
	}
	if scheme.DiskRestores != 1 {
		t.Errorf("disk restores %d, want 1", scheme.DiskRestores)
	}
}

// TestCRMemoryLostOnSWO: plain CR-M cannot use its checkpoint after a
// system-wide outage and falls back to the initial guess.
func TestCRMemoryLostOnSWO(t *testing.T) {
	a := testMatrix()
	mk := func() Scheme {
		return classRewriter{
			inner: &CR{
				Store:  checkpoint.MemStore{Plat: platform.Default()},
				Policy: checkpoint.FixedPolicy(5),
			},
			class: fault.SWO,
		}
	}
	e, _, _ := recoverOnce(t, mk, a, 4, 1, 12)
	// Restoring zeros: error 1 relative to the lost state.
	if e < 0.99 {
		t.Errorf("CR-M after SWO error %g, want ~1 (checkpoint lost)", e)
	}
}

// classRewriter forces a fault class before delegating, so the shared
// recoverOnce fixture (which injects SNF) can exercise other classes.
type classRewriter struct {
	inner Scheme
	class fault.Class
}

func (w classRewriter) Name() string { return w.inner.Name() }
func (w classRewriter) Recover(ctx *Ctx, f fault.Fault) (bool, error) {
	f.Class = w.class
	return w.inner.Recover(ctx, f)
}
func (w classRewriter) AfterIteration(ctx *Ctx, k int) error { return w.inner.AfterIteration(ctx, k) }
func (w classRewriter) Redundancy() int                      { return w.inner.Redundancy() }

func TestCR2LCheckpointCounts(t *testing.T) {
	a := matgen.BandedSPD(matgen.BandedOpts{N: 160, NNZPerRow: 7, Kappa: 200, Seed: 5})
	var mu sync.Mutex
	var scheme *CR2L
	mk := func() Scheme {
		s := mk2L(3, 9)
		mu.Lock()
		scheme = s
		mu.Unlock()
		return s
	}
	_, _, _ = recoverOnce(t, mk, a, 4, 1, 12)
	if scheme.MemWrites == 0 || scheme.DiskWrites == 0 {
		t.Errorf("writes mem=%d disk=%d", scheme.MemWrites, scheme.DiskWrites)
	}
	if scheme.MemWrites < scheme.DiskWrites {
		t.Error("memory level must checkpoint at least as often as disk")
	}
}
