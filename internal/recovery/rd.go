package recovery

import (
	"resilience/internal/fault"
	"resilience/internal/obs"
)

// RD is modular redundancy (the paper's DMR, generalized to N-way): a
// full replica of the computation runs on a disjoint set of cores. When a
// fault destroys a rank's state, the exact state is copied back from the
// replica — recovery is immediate and convergence matches the fault-free
// run, at the price of Replicas× power for the entire execution (Eq. 12).
//
// The replica is not re-executed on additional goroutines: because it
// performs the identical computation, its state equals the primary's
// state one shadow-snapshot ago, which RD maintains. Reports multiply
// power and energy by Redundancy(), implementing Eq. 12 exactly.
type RD struct {
	Base
	// Replicas is the modular redundancy degree: 2 for DMR (the paper's
	// RD), 3 for TMR. Zero means 2.
	Replicas int

	shadowX []float64
	shadowR []float64
	shadowP []float64
	shadowQ []float64
	rho     float64
	has     bool
	// Recoveries counts replica copy-backs.
	Recoveries int
}

// Name implements Scheme.
func (s *RD) Name() string {
	if s.Replicas == 3 {
		return "TMR"
	}
	return "RD"
}

// Redundancy implements Scheme.
func (s *RD) Redundancy() int {
	if s.Replicas <= 0 {
		return 2
	}
	return s.Replicas
}

// AfterIteration implements Scheme: track the replica's state. The
// snapshot is free in virtual time — the replica computes it on its own
// cores concurrently with the primary.
func (s *RD) AfterIteration(ctx *Ctx, _ int) error {
	st := ctx.St
	if s.shadowX == nil {
		n := len(st.X)
		s.shadowX = make([]float64, n)
		s.shadowR = make([]float64, n)
		s.shadowP = make([]float64, n)
		s.shadowQ = make([]float64, n)
	}
	copy(s.shadowX, st.X)
	copy(s.shadowR, st.R)
	copy(s.shadowP, st.P)
	copy(s.shadowQ, st.Q)
	s.rho = st.Rho
	s.has = true
	return nil
}

// Recover implements Scheme: copy the exact state back from the replica.
// Only the failed rank pays the transfer; no CG restart is needed because
// the entire Krylov state is intact.
func (s *RD) Recover(ctx *Ctx, f fault.Fault) (bool, error) {
	c := ctx.C
	if c.Rank() != f.Rank {
		return false, nil
	}
	defer ctx.span(obs.SpanReconstruct)()
	prev := c.SetPhase(PhaseReconstruct)
	// One block of each CG vector crosses the network from the replica.
	bytes := int64(8 * 4 * len(ctx.St.X))
	c.ElapseIdle(ctx.Plat.P2PTime(bytes))
	if s.has {
		copy(ctx.St.X, s.shadowX)
		copy(ctx.St.R, s.shadowR)
		copy(ctx.St.P, s.shadowP)
		copy(ctx.St.Q, s.shadowQ)
		ctx.St.Rho = s.rho
	}
	c.SetPhase(prev)
	s.Recoveries++
	return false, nil
}
