// Package recovery implements the paper's recovery schemes (Table 2):
//
//	CR-D / CR-M  checkpoint to / rollback from disk or memory
//	DMR (RD)     double modular redundancy
//	F0           assign 0 to the lost block of x
//	FI           assign the initial guess to the lost block
//	LI           linear interpolation of the lost block (Eq. 17/19)
//	LSI          least-squares interpolation (Eq. 18/20/21)
//
// plus two extension schemes beyond the paper's set:
//
//	ESR          exact state reconstruction, no rollback (arXiv:2007.04066)
//	LCR          lossy-compressed checkpoint/restart (arXiv:1804.11268)
//
// LI and LSI come in two construction flavors: the prior-work exact
// solvers (dense LU of the diagonal block; QR of the column block) and
// the paper's Section 4 optimization, localized CG/CGLS with a
// configurable tolerance, optionally combined with DVFS power management
// of the non-reconstructing cores (Section 4.2).
//
// Every scheme is instantiated once per rank and invoked bulk-
// synchronously: all ranks call Recover for the same fault, and all ranks
// call AfterIteration with the same iteration count.
package recovery

import (
	"resilience/internal/cluster"
	"resilience/internal/fault"
	"resilience/internal/obs"
	"resilience/internal/platform"
	"resilience/internal/solver"
	"resilience/internal/vec"
)

// Phase labels used for power/energy attribution.
const (
	PhaseSolve       = "solve"
	PhaseReconstruct = "reconstruct"
	PhaseCheckpoint  = "checkpoint"
	PhaseRollback    = "rollback"
)

// Ctx carries the per-rank context recovery code operates in.
type Ctx struct {
	C    *cluster.Comm
	Op   *solver.LocalOp
	St   *solver.State
	Plat *platform.Platform
}

// Ranks returns the number of ranks in the run.
func (ctx *Ctx) Ranks() int { return ctx.C.Size() }

// span brackets a recovery phase for the observability layer: it returns
// a func to defer, which records kind from the current clock to the clock
// at call time. A no-op when no recorder is attached.
func (ctx *Ctx) span(kind obs.SpanKind) func() {
	o := ctx.C.Observer()
	if o == nil {
		return func() {}
	}
	start := ctx.C.Clock()
	return func() { o.Span(kind, start, ctx.C.Clock()-start) }
}

// Scheme is one recovery mechanism, instantiated per rank.
type Scheme interface {
	// Name returns the scheme's presentation name ("LI-DVFS", "CR-D", ...).
	Name() string
	// Recover repairs the solver state after fault f. It is called on
	// every rank collectively. restart reports whether CG must rebuild
	// R and P from X.
	Recover(ctx *Ctx, f fault.Fault) (restart bool, err error)
	// AfterIteration runs after every completed iteration (checkpoint /
	// shadow hooks). completedIters counts executed iterations.
	AfterIteration(ctx *Ctx, completedIters int) error
	// Redundancy is the hardware multiplier the scheme needs: 1 for all
	// schemes except modular redundancy (2 for DMR, 3 for TMR). Reports
	// scale power and energy by it.
	Redundancy() int
}

// Base provides no-op defaults for optional Scheme methods.
type Base struct{}

// AfterIteration implements Scheme with a no-op.
func (Base) AfterIteration(*Ctx, int) error { return nil }

// Redundancy implements Scheme: no redundant hardware.
func (Base) Redundancy() int { return 1 }

// F0 fills the lost block with zeros: the cheapest construction, the
// slowest convergence (Section 3.2: T_const = 0, large T_extra).
type F0 struct{ Base }

// Name implements Scheme.
func (F0) Name() string { return "F0" }

// Recover implements Scheme.
func (F0) Recover(ctx *Ctx, f fault.Fault) (bool, error) {
	if ctx.C.Rank() == f.Rank {
		defer ctx.span(obs.SpanReconstruct)()
		prev := ctx.C.SetPhase(PhaseReconstruct)
		vec.Zero(ctx.St.X)
		ctx.C.Compute(int64(len(ctx.St.X))) // a memset-scale pass
		ctx.C.SetPhase(prev)
	}
	return true, nil
}

// FI fills the lost block with the initial guess.
type FI struct {
	Base
	// X0 is the rank's block of the initial guess (zeros when nil).
	X0 []float64
}

// Name implements Scheme.
func (FI) Name() string { return "FI" }

// Recover implements Scheme.
func (s *FI) Recover(ctx *Ctx, f fault.Fault) (bool, error) {
	if ctx.C.Rank() == f.Rank {
		defer ctx.span(obs.SpanReconstruct)()
		prev := ctx.C.SetPhase(PhaseReconstruct)
		if s.X0 == nil {
			vec.Zero(ctx.St.X)
		} else {
			copy(ctx.St.X, s.X0)
		}
		ctx.C.Compute(int64(len(ctx.St.X)))
		ctx.C.SetPhase(prev)
	}
	return true, nil
}

// parkOthers is the shared DVFS/idle pattern of Section 4.2: every rank
// except the reconstructing one optionally drops to the lowest frequency,
// waits at idle power for the reconstruction to finish (the trailing
// barrier), then restores its frequency. The reconstructing rank calls
// work() at full speed and joins the barrier last.
func parkOthers(ctx *Ctx, failedRank int, dvfs bool, work func()) {
	c := ctx.C
	if c.Rank() == failedRank {
		work()
		c.Barrier()
		return
	}
	prevIdle := c.SetWaitIdle(true)
	prevFreq := c.Freq()
	if dvfs {
		c.SetFreq(ctx.Plat.FreqMin)
	}
	c.Barrier()
	if dvfs {
		c.SetFreq(prevFreq)
	}
	c.SetWaitIdle(prevIdle)
}
