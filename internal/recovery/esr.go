package recovery

import (
	"resilience/internal/fault"
	"resilience/internal/obs"
	"resilience/internal/sparse"
	"resilience/internal/vec"
)

// ESR is exact state reconstruction [Pachajoa, Levonyak et al.,
// arXiv:2007.04066]: each rank streams a small redundancy — its block of
// x and p plus the scalar rho — to a buddy node every iteration. When a
// node fails, the replacement pulls the buddy copies back and rebuilds
// the one vector the redundancy does not carry, its residual block, from
// the exact relation r = b - A x: one collective halo exchange supplies
// the remote x entries, the diagonal-block product is local. The rebuilt
// Krylov state equals the pre-fault state, so CG continues with no
// rollback and no restart — unlike RD this costs no redundant hardware,
// only the per-iteration persist traffic.
//
// Simultaneous multi-rank failures recover back-to-back within one
// iteration boundary: each failed rank's buddy copies are independent
// and still describe the same boundary, so every reconstruction is
// exact. Two documented aborts fall back to a restart from the initial
// guess: a system-wide outage (the buddy memory is wiped with everything
// else; the next completed iteration re-arms the redundancy), and a
// silent corruption detected only after the redundancy was re-persisted
// (the buddy copies are poisoned — restoring them cannot reach the
// pre-fault state).
type ESR struct {
	Base
	// X0 is this rank's block of the initial guess (zeros when nil),
	// the fallback restore when no valid redundancy exists.
	X0 []float64

	snapX    []float64
	snapP    []float64
	rho      float64
	snapIter int
	has      bool

	diag *sparse.CSR // cached diagonal block for residual reconstruction
	y    []float64

	// Persists counts redundancy writes; Reconstructions counts exact
	// recoveries; Fallbacks counts documented aborts of the exact path.
	Persists        int
	Reconstructions int
	Fallbacks       int
}

// Name implements Scheme.
func (s *ESR) Name() string { return "ESR" }

// persistBytes is the per-iteration redundancy payload: the rank's x and
// p blocks. The maximum block size is charged on every rank so all
// clocks advance identically at the iteration boundary that follows.
func (s *ESR) persistBytes(ctx *Ctx) int64 { return int64(8 * 2 * ctx.St.Part.Size(0)) }

// AfterIteration implements Scheme: persist the redundancy. The copy
// runs every iteration — exactness depends on the buddy holding the
// state of the boundary the fault strikes at.
func (s *ESR) AfterIteration(ctx *Ctx, completedIters int) error {
	c := ctx.C
	defer ctx.span(obs.SpanCheckpoint)()
	prev := c.SetPhase(PhaseCheckpoint)
	bytes := s.persistBytes(ctx)
	c.ElapseActive(ctx.Plat.MemWriteTime(bytes) + ctx.Plat.P2PTime(bytes))
	c.SetPhase(prev)

	if s.snapX == nil {
		n := len(ctx.St.X)
		s.snapX = make([]float64, n)
		s.snapP = make([]float64, n)
	}
	copy(s.snapX, ctx.St.X)
	copy(s.snapP, ctx.St.P)
	s.rho = ctx.St.Rho
	s.snapIter = completedIters
	s.has = true
	s.Persists++
	return nil
}

// Recover implements Scheme: rebuild the failed rank's Krylov state. All
// ranks take identical control flow (has, snapIter and the fault are
// globally consistent), so the collective halo exchange of the exact
// path stays symmetric.
func (s *ESR) Recover(ctx *Ctx, f fault.Fault) (bool, error) {
	c := ctx.C
	defer ctx.span(obs.SpanReconstruct)()
	prev := c.SetPhase(PhaseReconstruct)
	defer c.SetPhase(prev)

	if f.Class == fault.SWO {
		// A system-wide outage wipes every node's memory, buddy-held
		// redundancy included. Forget it: a later fault must not restore
		// from the destroyed copy.
		s.has = false
		s.snapIter = 0
	}
	if !s.has || s.snapIter > f.Iter {
		// No valid redundancy: either nothing was persisted yet (or an
		// outage destroyed it), or the fault is a silent corruption
		// detected after the redundancy was re-persisted — the buddy
		// copies are poisoned. Documented abort of the exact path:
		// restore the initial guess on the struck rank and let CG
		// restart from it.
		if c.Rank() == f.Rank {
			if s.X0 != nil {
				copy(ctx.St.X, s.X0)
			} else {
				vec.Zero(ctx.St.X)
			}
			c.Compute(int64(len(ctx.St.X)))
		}
		s.Fallbacks++
		return true, nil
	}

	// The buddy copies of x and p cross the network back to the
	// replacement process; rho rides along for free.
	if c.Rank() == f.Rank {
		c.ElapseIdle(ctx.Plat.P2PTime(int64(8 * 2 * len(ctx.St.X))))
		copy(ctx.St.X, s.snapX)
		copy(ctx.St.P, s.snapP)
		ctx.St.Rho = s.rho
	}

	// Exact residual reconstruction on the failed rank's rows:
	// r = b_local - offdiag·x_remote - A_{p,p}·x_local. The halo
	// exchange is collective; the two products are local.
	buf := ctx.Op.GatherHalo(c, ctx.St.X)
	if c.Rank() == f.Rank {
		if s.diag == nil {
			s.diag = ctx.St.Part.DiagBlock(ctx.St.A, c.Rank())
			s.y = make([]float64, ctx.Op.N)
		}
		ctx.Op.OffDiagApply(c, ctx.St.R, ctx.St.BLocal, buf)
		s.diag.MulVec(s.y, ctx.St.X)
		c.Compute(s.diag.SpMVFlops())
		vec.Sub(ctx.St.R, ctx.St.R, s.y)
		c.Compute(int64(ctx.Op.N))
	}
	s.Reconstructions++
	return false, nil
}
