package recovery

import (
	"fmt"

	"resilience/internal/dense"
	"resilience/internal/fault"
	"resilience/internal/obs"
	"resilience/internal/solver"
	"resilience/internal/sparse"
	"resilience/internal/vec"
)

// Construction selects how LI/LSI build their interpolation.
type Construction int

const (
	// ConstructCG (the default) is the paper's Section 4.1 optimization:
	// localized CG (LI) / CGLS (LSI) to a configurable tolerance on the
	// failed process only.
	ConstructCG Construction = iota
	// ConstructExact is the prior-work baseline: LU factorization of the
	// diagonal block for LI, QR of the column block for LSI [Agullo et
	// al. 2016].
	ConstructExact
)

func (c Construction) String() string {
	if c == ConstructExact {
		return "exact"
	}
	return "cg"
}

// LI is linear interpolation of the lost block (Eq. 17): the failed
// process solves A_{p_i,p_i} x = y with y = b_{p_i} - Σ_{j≠i} A_{p_i,p_j}
// x_j (Eq. 19). Remote x values arrive through one halo exchange; the
// solve is then fully local.
type LI struct {
	Base
	Construct Construction
	// DVFS parks the non-reconstructing cores at the lowest frequency
	// during construction (the paper's LI-DVFS).
	DVFS bool
	// LocalTol is the CG construction tolerance (ConstructCG only). The
	// paper sweeps it in Figure 4; 1e-6 is the experiments' default.
	LocalTol float64
	// MaxLocalIters caps construction CG iterations; 0 means 10x block.
	MaxLocalIters int

	diag *sparse.CSR // cached diagonal block of this rank
	y    []float64
	x    []float64           // construction solution buffer, reused per fault
	ws   solver.SeqWorkspace // construction scratch, reused per fault
}

// Name implements Scheme.
func (s *LI) Name() string {
	name := "LI"
	if s.Construct == ConstructExact {
		name = "LI(LU)"
	}
	if s.DVFS {
		name += "-DVFS"
	}
	return name
}

// Recover implements Scheme.
func (s *LI) Recover(ctx *Ctx, f fault.Fault) (bool, error) {
	c := ctx.C
	// The span covers every rank: on non-failed ranks it shows the parked
	// wait (Figure 7a's f_min plateau), on the failed rank the construction.
	defer ctx.span(obs.SpanReconstruct)()
	prev := c.SetPhase(PhaseReconstruct)
	defer c.SetPhase(prev)

	// One collective halo exchange gives the failed rank every remote x
	// entry its off-diagonal row entries touch.
	buf := ctx.Op.GatherHalo(c, ctx.St.X)

	var solveErr error
	parkOthers(ctx, f.Rank, s.DVFS, func() {
		n := ctx.Op.N
		if s.diag == nil {
			s.diag = ctx.St.Part.DiagBlock(ctx.St.A, c.Rank())
			s.y = make([]float64, n)
		}
		ctx.Op.OffDiagApply(c, s.y, ctx.St.BLocal, buf)
		switch s.Construct {
		case ConstructExact:
			solveErr = s.solveLU(ctx, s.y)
		case ConstructCG:
			solveErr = s.solveCG(ctx, s.y)
		default:
			solveErr = fmt.Errorf("recovery: unknown construction %d", int(s.Construct))
		}
	})
	return true, solveErr
}

// solveLU runs the exact prior-work construction: dense LU of the
// diagonal block. The factorization is re-done per fault, as the baseline
// does, and its flops are charged to the failed rank's clock.
func (s *LI) solveLU(ctx *Ctx, y []float64) error {
	n := ctx.Op.N
	d := dense.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		cols, vals := s.diag.Row(i)
		for k, j := range cols {
			d.Set(i, j, vals[k])
		}
	}
	lu, err := dense.NewLU(d)
	if err != nil {
		return fmt.Errorf("recovery: LI exact construction: %w", err)
	}
	x, err := lu.Solve(y)
	if err != nil {
		return fmt.Errorf("recovery: LI exact solve: %w", err)
	}
	ctx.C.Compute(lu.FactorFlops() + lu.SolveFlops())
	copy(ctx.St.X, x)
	return nil
}

// solveCG runs the paper's localized construction: sequential
// Jacobi-preconditioned CG on the SPD diagonal block to LocalTol,
// starting from zero.
func (s *LI) solveCG(ctx *Ctx, y []float64) error {
	n := ctx.Op.N
	tol := s.LocalTol
	if tol <= 0 {
		tol = 1e-6
	}
	maxIters := s.MaxLocalIters
	if maxIters <= 0 {
		maxIters = 10 * n
	}
	if s.x == nil {
		s.x = make([]float64, n)
	}
	vec.Zero(s.x)
	res := solver.SeqPCGMatrixWork(&s.ws, s.diag, y, s.x, tol, maxIters)
	ctx.C.Compute(res.Flops)
	copy(ctx.St.X, s.x)
	return nil
}
