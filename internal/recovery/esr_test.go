package recovery

import (
	"math"
	"testing"

	"resilience/internal/checkpoint"
	"resilience/internal/cluster"
	"resilience/internal/fault"
	"resilience/internal/matgen"
	"resilience/internal/platform"
	"resilience/internal/power"
	"resilience/internal/solver"
	"resilience/internal/sparse"
	"resilience/internal/vec"
)

// esrRecover is recoverOnce with a chosen fault class and restart capture:
// converge partway, corrupt rank F, Recover collectively, report the
// reconstruction error on the failed block and whether a restart was
// requested.
func esrRecover(t *testing.T, a *sparse.CSR, ranks, failRank, midIters int, class fault.Class) (reconErr float64, restarted bool) {
	t.Helper()
	b, _ := matgen.RHS(a)
	part := sparse.NewPartition(a.Rows, ranks)
	plat := platform.Default()
	meter := power.NewMeter(false)

	errs := make([]float64, ranks)
	restarts := make([]bool, ranks)
	_, err := cluster.Run(ranks, plat, meter, func(c *cluster.Comm) error {
		scheme := &ESR{}
		mon := &hookMonitor{
			before: func(it *solver.Iter) (bool, error) {
				if it.K != midIters {
					return false, nil
				}
				preFault := vec.Clone(it.State.X)
				if c.Rank() == failRank {
					vec.Zero(it.State.X)
				}
				ctx := &Ctx{C: c, Op: it.Op, St: it.State, Plat: plat}
				restart, err := scheme.Recover(ctx, fault.Fault{Class: class, Rank: failRank, Iter: it.K})
				if err != nil {
					return false, err
				}
				restarts[c.Rank()] = restart
				if c.Rank() == failRank {
					errs[c.Rank()] = vec.Dist2(it.State.X, preFault) /
						math.Max(vec.Nrm2(preFault), 1e-300)
				}
				return restart, nil
			},
			after: func(it *solver.Iter) error {
				ctx := &Ctx{C: c, Op: it.Op, St: it.State, Plat: plat}
				return scheme.AfterIteration(ctx, it.K)
			},
		}
		_, err := solver.CG(c, a, b, part, solver.Options{
			Tol: 1e-12, MaxIters: midIters + 50, Monitor: mon,
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return errs[failRank], restarts[failRank]
}

// TestESRExactRecovery: the redundancy persisted at the fault boundary
// restores x and p verbatim and the reconstructed residual is exact, so
// the failed block matches the pre-fault iterate to rounding and no
// restart is requested — the zero-rollback property.
func TestESRExactRecovery(t *testing.T) {
	a := testMatrix()
	e, restarted := esrRecover(t, a, 4, 1, 12, fault.SNF)
	if e > 1e-12 {
		t.Errorf("ESR must restore exactly, error %g", e)
	}
	if restarted {
		t.Error("ESR exact path must not request a restart")
	}
}

// TestESRChargesPersistAndReconstructPhases: the per-iteration redundancy
// writes bill the checkpoint phase and recovery bills the reconstruct
// phase, so E_res attribution sees both sides of the scheme.
func TestESRChargesPersistAndReconstructPhases(t *testing.T) {
	a := testMatrix()
	mk := func() Scheme { return &ESR{} }
	e, meter, _ := recoverOnce(t, mk, a, 4, 1, 12)
	if e > 1e-12 {
		t.Errorf("ESR error %g", e)
	}
	if meter.EnergyByPhase()[PhaseCheckpoint] <= 0 {
		t.Error("redundancy-persist energy not recorded under checkpoint phase")
	}
	if meter.EnergyByPhase()[PhaseReconstruct] <= 0 {
		t.Error("reconstruction energy not recorded")
	}
}

// TestESRSWOFallsBack: a system-wide outage wipes the buddy redundancy,
// so ESR degrades to the documented abort — initial-guess restore plus a
// restart (error 1 against the lost block, like F0).
func TestESRSWOFallsBack(t *testing.T) {
	a := testMatrix()
	e, restarted := esrRecover(t, a, 4, 1, 12, fault.SWO)
	if math.Abs(e-1) > 1e-9 {
		t.Errorf("ESR under SWO error %g want 1 (initial-guess fallback)", e)
	}
	if !restarted {
		t.Error("ESR fallback must request a restart")
	}
}

func TestESRIdentity(t *testing.T) {
	s := &ESR{}
	if s.Name() != "ESR" {
		t.Errorf("name %q", s.Name())
	}
	if s.Redundancy() != 1 {
		t.Error("ESR needs no redundant hardware")
	}
}

// TestLCRRollbackPerturbed: LCR restores the last checkpoint like CR but
// the decompressed iterate carries the error bound, so the recovered
// block differs from both the lost state and the exact checkpoint —
// while checkpoint writes are strictly cheaper than uncompressed CR-D.
func TestLCRRollbackPerturbed(t *testing.T) {
	a := testMatrix()
	plat := platform.Default()
	mkLCR := func() Scheme {
		return &LCR{CR: CR{
			Store:  checkpoint.Lossy{Inner: checkpoint.DiskStore{Plat: plat}, Ratio: 8},
			Policy: checkpoint.FixedPolicy(5),
		}}
	}
	mkCRD := func() Scheme {
		return &CR{
			Store:  checkpoint.DiskStore{Plat: plat},
			Policy: checkpoint.FixedPolicy(5),
		}
	}
	eLCR, mLCR, _ := recoverOnce(t, mkLCR, a, 4, 1, 12)
	eCRD, mCRD, _ := recoverOnce(t, mkCRD, a, 4, 1, 12)
	if eLCR == 0 || eLCR > 1 {
		t.Errorf("LCR rollback error %g out of (0,1]", eLCR)
	}
	if eLCR == eCRD {
		t.Error("lossy restore must differ from the exact rollback")
	}
	if mLCR.EnergyByPhase()[PhaseCheckpoint] >= mCRD.EnergyByPhase()[PhaseCheckpoint] {
		t.Errorf("compressed checkpoints %g J not cheaper than exact %g J",
			mLCR.EnergyByPhase()[PhaseCheckpoint], mCRD.EnergyByPhase()[PhaseCheckpoint])
	}
	if mLCR.EnergyByPhase()[PhaseRollback] <= 0 {
		t.Error("rollback energy not recorded")
	}
}

// TestLCRWithoutCheckpointIsExactFallback: nothing written yet means the
// initial guess comes back exactly — the decompression error only applies
// to data that went through the compressor.
func TestLCRWithoutCheckpointIsExactFallback(t *testing.T) {
	a := testMatrix()
	plat := platform.Default()
	mk := func() Scheme {
		return &LCR{CR: CR{
			Store:  checkpoint.Lossy{Inner: checkpoint.DiskStore{Plat: plat}, Ratio: 8},
			Policy: checkpoint.FixedPolicy(1000),
		}}
	}
	e, _, _ := recoverOnce(t, mk, a, 4, 1, 12)
	if math.Abs(e-1) > 1e-9 {
		t.Errorf("LCR without checkpoint error %g want 1", e)
	}
}

func TestLCRIdentity(t *testing.T) {
	plat := platform.Default()
	s := &LCR{CR: CR{Store: checkpoint.Lossy{Inner: checkpoint.DiskStore{Plat: plat}, Ratio: 8}}}
	if s.Name() != "LCR" {
		t.Errorf("name %q", s.Name())
	}
	if s.Redundancy() != 1 {
		t.Error("LCR needs no redundant hardware")
	}
	if s.Store.Name() != "lossy-disk" {
		t.Errorf("store %q", s.Store.Name())
	}
}
