package recovery

import (
	"resilience/internal/checkpoint"
	"resilience/internal/fault"
	"resilience/internal/obs"
	"resilience/internal/vec"
)

// CR is checkpoint/restart. Each rank periodically writes its block of x
// to the store; on a fault every rank rolls back to the last checkpoint
// (or the initial guess when none exists yet) — the classical global
// restart. CG then re-executes the lost iterations, which is exactly the
// T_lost term of Eq. 11.
type CR struct {
	Base
	Store  checkpoint.Store
	Policy checkpoint.Policy
	// X0 is this rank's block of the initial guess (zeros when nil).
	X0 []float64

	last     []float64
	hasCkpt  bool
	ckptIter int
	// Writes counts checkpoints taken by this rank.
	Writes int
	// Rollbacks counts recoveries.
	Rollbacks int
}

// Name implements Scheme.
func (s *CR) Name() string {
	if s.Store.Name() == "memory" {
		return "CR-M"
	}
	return "CR-D"
}

// ckptBytes returns the per-rank checkpoint payload. The maximum block
// size is used on every rank so all clocks advance identically — the
// iteration boundary that follows must see equal clocks on all ranks for
// the injectors to agree.
func (s *CR) ckptBytes(ctx *Ctx) int64 { return int64(8 * ctx.St.Part.Size(0)) }

// AfterIteration implements Scheme: write a checkpoint when due. All
// ranks write concurrently, so disk bandwidth is shared by Size() writers.
func (s *CR) AfterIteration(ctx *Ctx, completedIters int) error {
	if !s.Policy.Due(completedIters) {
		return nil
	}
	c := ctx.C
	defer ctx.span(obs.SpanCheckpoint)()
	prev := c.SetPhase(PhaseCheckpoint)
	dur := s.Store.WriteTime(s.ckptBytes(ctx), ctx.Ranks())
	if s.Store.CPUBusy() {
		c.ElapseActive(dur)
	} else {
		c.ElapseIdle(dur)
	}
	c.SetPhase(prev)

	if s.last == nil {
		s.last = make([]float64, len(ctx.St.X))
	}
	copy(s.last, ctx.St.X)
	s.hasCkpt = true
	s.ckptIter = completedIters
	s.Writes++
	return nil
}

// Recover implements Scheme: global rollback. A system-wide outage (SWO)
// destroys memory checkpoints — buddy copies included — so CR-M falls
// back to the initial guess for that class and the destroyed checkpoint
// is forgotten: a later fault must not restore from it. No read cost is
// charged when nothing survives to be read.
func (s *CR) Recover(ctx *Ctx, f fault.Fault) (bool, error) {
	c := ctx.C
	defer ctx.span(obs.SpanRollback)()
	prev := c.SetPhase(PhaseRollback)
	if f.Class == fault.SWO && s.Store.Name() == "memory" {
		s.hasCkpt = false
		s.ckptIter = 0
	}
	if s.hasCkpt {
		dur := s.Store.ReadTime(s.ckptBytes(ctx), ctx.Ranks())
		if s.Store.CPUBusy() {
			c.ElapseActive(dur)
		} else {
			c.ElapseIdle(dur)
		}
		copy(ctx.St.X, s.last)
	} else if s.X0 != nil {
		copy(ctx.St.X, s.X0)
	} else {
		vec.Zero(ctx.St.X)
	}
	c.SetPhase(prev)
	s.Rollbacks++
	return true, nil
}

// LastCheckpointIter returns the iteration of the most recent checkpoint
// (0 when none has been taken).
func (s *CR) LastCheckpointIter() int { return s.ckptIter }
