package recovery

import (
	"resilience/internal/fault"
	"resilience/internal/obs"
)

// LCR operating point, calibrated to the Tao et al. [arXiv:1804.11268]
// SZ measurements on smooth scientific data: a pointwise relative error
// bound of 1e-4 buys roughly an 8x compression ratio.
const (
	// DefaultLossyRatio is the compression ratio assumed when a
	// SchemeSpec leaves it unset.
	DefaultLossyRatio = 8.0
	// DefaultLossyErrBound is the compressor's pointwise relative error
	// bound assumed when a SchemeSpec leaves it unset.
	DefaultLossyErrBound = 1e-4
)

// LCR is lossy-compressed checkpoint/restart [Tao et al.,
// arXiv:1804.11268]: plain CR writing through a checkpoint.Lossy store,
// so each checkpoint moves Ratio-times less data — but a restore hands
// back an iterate carrying the compressor's pointwise error bound
// instead of the exact one. The fidelity price is applied on restore as
// a deterministic error-bound-sized perturbation of the rolled-back
// iterate on every rank; CG then spends extra iterations re-converging
// from the degraded restart point. That is the write-cost vs
// iteration-penalty trade the T_res/E_res model prices: cheaper
// T_checkpoint, larger effective T_lost per failure.
type LCR struct {
	CR
	// ErrBound is the compressor's pointwise relative error bound; zero
	// means DefaultLossyErrBound. It should match the error bound the
	// Store's compression ratio was calibrated at.
	ErrBound float64
	// Restores counts lossy restores (rollbacks that reloaded a
	// checkpoint and paid the decompression error).
	Restores int
}

// Name implements Scheme.
func (s *LCR) Name() string { return "LCR" }

// Recover implements Scheme: the usual CR rollback, then the
// decompression error. Only an actual checkpoint reload is lossy — a
// fallback to the initial guess (nothing written yet) restores exact
// data and is not perturbed. The perturbation alternates sign by global
// index at exactly the error bound — the compressor's worst case, so the
// modeled iteration penalty is an upper bound — and is idempotent in the
// sense that re-restoring the same checkpoint reproduces the same
// degraded iterate bit-for-bit.
func (s *LCR) Recover(ctx *Ctx, f fault.Fault) (bool, error) {
	restart, err := s.CR.Recover(ctx, f)
	if err != nil || !s.hasCkpt {
		return restart, err
	}
	c := ctx.C
	defer ctx.span(obs.SpanRollback)()
	prev := c.SetPhase(PhaseRollback)
	eb := s.ErrBound
	if eb <= 0 {
		eb = DefaultLossyErrBound
	}
	lo, _ := ctx.St.Part.Range(c.Rank())
	x := ctx.St.X
	for i := range x {
		if (lo+i)&1 == 0 {
			x[i] *= 1 + eb
		} else {
			x[i] *= 1 - eb
		}
	}
	c.Compute(int64(len(x)))
	c.SetPhase(prev)
	s.Restores++
	return restart, nil
}
