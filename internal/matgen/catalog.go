package matgen

import (
	"fmt"

	"resilience/internal/sparse"
)

// Scale selects how large the synthetic analogs are generated.
type Scale int

const (
	// Tiny is the unit-test scale: a few hundred rows, a few hundred
	// fault-free iterations at most.
	Tiny Scale = iota
	// CI is the default benchmark scale: matrices up to a few thousand
	// rows, iteration counts capped so the full suite runs in minutes.
	CI
	// Paper generates the Table 3 sizes. Iteration counts are still
	// capped at 20000 (the two >80K-iteration matrices are impractical in
	// a simulator and all results are normalized per matrix).
	Paper
)

func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case CI:
		return "ci"
	case Paper:
		return "paper"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// ParseScale parses "tiny", "ci" or "paper".
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return Tiny, nil
	case "ci":
		return CI, nil
	case "paper":
		return Paper, nil
	}
	return 0, fmt.Errorf("matgen: unknown scale %q (want tiny, ci or paper)", s)
}

// Spec describes one matrix of the paper's Table 3 and how to synthesize
// its analog.
type Spec struct {
	Name      string
	Kind      string // problem kind column of Table 3
	PaperRows int
	NNZPerRow int
	// PaperIters is the fault-free iteration count Table 3 reports.
	PaperIters int
	// Scatter marks matrices with irregular structure (the paper observes
	// LI/LSI reconstruct poorly for these, e.g. bcsstk06 and ex10hs).
	Scatter float64
	// Stencil marks the 5-point stencil entry, generated exactly rather
	// than via the random banded generator.
	Stencil bool
	Seed    int64
}

// Catalog returns the 14 matrices of Table 3 in paper order.
func Catalog() []Spec {
	return []Spec{
		{Name: "bcsstk06", Kind: "structural", PaperRows: 420, NNZPerRow: 19, PaperIters: 4476, Scatter: 0.45, Seed: 101},
		{Name: "msc01050", Kind: "structural", PaperRows: 1050, NNZPerRow: 25, PaperIters: 35765, Scatter: 0.30, Seed: 102},
		{Name: "ex10hs", Kind: "CFD", PaperRows: 2548, NNZPerRow: 22, PaperIters: 3217, Scatter: 0.45, Seed: 103},
		{Name: "bcsstk16", Kind: "structural", PaperRows: 4884, NNZPerRow: 59, PaperIters: 553, Seed: 104},
		{Name: "ex15", Kind: "CFD", PaperRows: 6867, NNZPerRow: 17, PaperIters: 1074, Seed: 105},
		{Name: "Kuu", Kind: "structural", PaperRows: 7102, NNZPerRow: 24, PaperIters: 849, Seed: 106},
		{Name: "t2dahe", Kind: "model reduction", PaperRows: 11445, NNZPerRow: 15, PaperIters: 82098, Seed: 107},
		{Name: "crystm02", Kind: "materials", PaperRows: 13965, NNZPerRow: 23, PaperIters: 1154, Seed: 108},
		{Name: "wathen100", Kind: "random 2D/3D", PaperRows: 30401, NNZPerRow: 16, PaperIters: 355, Seed: 109},
		{Name: "cvxbqp1", Kind: "optimization", PaperRows: 50000, NNZPerRow: 7, PaperIters: 11863, Seed: 110},
		{Name: "Andrews", Kind: "graphics", PaperRows: 60000, NNZPerRow: 13, PaperIters: 216, Seed: 111},
		{Name: "nd24k", Kind: "2D/3D", PaperRows: 72000, NNZPerRow: 399, PaperIters: 10019, Seed: 112},
		{Name: "x104", Kind: "structure", PaperRows: 108384, NNZPerRow: 80, PaperIters: 96704, Scatter: 0.20, Seed: 113},
		{Name: "5-point stencil", Kind: "structure", PaperRows: 640000, NNZPerRow: 5, PaperIters: 3162, Stencil: true, Seed: 114},
	}
}

// Lookup returns the catalog spec with the given name.
func Lookup(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("matgen: no catalog matrix named %q", name)
}

// Rows returns the generated dimension at the given scale.
func (s Spec) Rows(scale Scale) int {
	rows := s.PaperRows
	var cap int
	switch scale {
	case Tiny:
		cap = 512
	case CI:
		cap = 4096
	default:
		return rows
	}
	if rows > cap {
		rows = cap
	}
	if s.Stencil {
		// Round to a perfect square grid.
		g := intSqrt(rows)
		if g < 4 {
			g = 4
		}
		return g * g
	}
	return rows
}

// TargetIters returns the fault-free iteration count the generated analog
// is conditioned to approximate at the given scale.
func (s Spec) TargetIters(scale Scale) int {
	it := s.PaperIters
	var cap int
	switch scale {
	case Tiny:
		cap = 260
	case CI:
		cap = 2200
	default:
		cap = 20000
	}
	if it > cap {
		it = cap
	}
	// A matrix cannot take more CG iterations than its dimension (exact
	// arithmetic bound); keep the target under it so conditioning stays
	// attainable.
	if n := s.Rows(scale); it > n {
		it = n
	}
	return it
}

// Generate builds the analog at the given scale.
func (s Spec) Generate(scale Scale) *sparse.CSR {
	rows := s.Rows(scale)
	if s.Stencil {
		return Laplacian2D(intSqrt(rows))
	}
	return BandedSPD(BandedOpts{
		N:         rows,
		NNZPerRow: s.NNZPerRow,
		Kappa:     ItersToKappa(s.TargetIters(scale), DefaultTol),
		Scatter:   s.Scatter,
		Seed:      s.Seed,
	})
}

func intSqrt(n int) int {
	g := 0
	for (g+1)*(g+1) <= n {
		g++
	}
	return g
}
