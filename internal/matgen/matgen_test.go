package matgen

import (
	"math"
	"testing"
	"testing/quick"

	"resilience/internal/dense"
	"resilience/internal/solver"
)

func TestLaplacian1DStructure(t *testing.T) {
	a := Laplacian1D(5)
	if a.Rows != 5 || a.NNZ() != 5+2*4 {
		t.Fatalf("shape %v nnz %d", a, a.NNZ())
	}
	if a.At(0, 0) != 2 || a.At(0, 1) != -1 || a.At(1, 0) != -1 {
		t.Error("stencil values wrong")
	}
	if !a.IsSymmetric(0) {
		t.Error("not symmetric")
	}
}

func TestLaplacian2DStructure(t *testing.T) {
	g := 4
	a := Laplacian2D(g)
	if a.Rows != g*g {
		t.Fatalf("rows %d", a.Rows)
	}
	// Interior point has 5 entries, corner 3.
	if a.RowNNZ(g+1) != 5 {
		t.Errorf("interior row nnz %d", a.RowNNZ(g+1))
	}
	if a.RowNNZ(0) != 3 {
		t.Errorf("corner row nnz %d", a.RowNNZ(0))
	}
	if !a.IsSymmetric(0) {
		t.Error("not symmetric")
	}
	// Row sums: interior rows sum to 0 is false here (no boundary
	// elimination); diagonal dominance holds instead.
	lo, _ := a.GershgorinBounds()
	if lo < 0 {
		t.Errorf("Gershgorin lower bound %g < 0", lo)
	}
}

func TestLaplacian3DStructure(t *testing.T) {
	a := Laplacian3D(3)
	if a.Rows != 27 {
		t.Fatalf("rows %d", a.Rows)
	}
	if !a.IsSymmetric(0) {
		t.Error("not symmetric")
	}
	if a.At(13, 13) != 6 { // center point
		t.Errorf("center diagonal %g", a.At(13, 13))
	}
}

// TestBandedSPDIsSPD verifies symmetry and positive-definiteness via
// Cholesky on small instances.
func TestBandedSPDIsSPD(t *testing.T) {
	for _, scatter := range []float64{0, 0.3, 0.8} {
		a := BandedSPD(BandedOpts{N: 60, NNZPerRow: 9, Kappa: 100, Scatter: scatter, Seed: 7})
		if !a.IsSymmetric(1e-12) {
			t.Fatalf("scatter=%g: not symmetric", scatter)
		}
		d := dense.NewMatrix(a.Rows, a.Rows)
		for i := 0; i < a.Rows; i++ {
			cols, vals := a.Row(i)
			for k, j := range cols {
				d.Set(i, j, vals[k])
			}
		}
		if _, err := dense.NewCholesky(d); err != nil {
			t.Fatalf("scatter=%g: not SPD: %v", scatter, err)
		}
	}
}

// Property: BandedSPD is deterministic in its seed and SPD-consistent by
// Gershgorin for any options.
func TestQuickBandedSPDGershgorin(t *testing.T) {
	f := func(seed int64) bool {
		o := BandedOpts{N: 40 + int(seed%17+17)%17, NNZPerRow: 5, Kappa: 50, Seed: seed}
		a := BandedSPD(o)
		b := BandedSPD(o)
		if a.NNZ() != b.NNZ() {
			return false
		}
		for k := range a.Val {
			if a.Val[k] != b.Val[k] {
				return false
			}
		}
		lo, _ := a.GershgorinBounds()
		return lo > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBandedSPDTargetsKappa(t *testing.T) {
	kappa := 400.0
	a := BandedSPD(BandedOpts{N: 300, NNZPerRow: 7, Kappa: kappa, Seed: 3})
	lo, hi := a.GershgorinBounds()
	if lo <= 0 {
		t.Fatalf("lower bound %g", lo)
	}
	// Gershgorin estimate of the condition number should be within ~2x of
	// the requested kappa.
	est := hi / lo
	if est < kappa/3 || est > kappa*3 {
		t.Errorf("Gershgorin kappa %g, requested %g", est, kappa)
	}
}

func TestItersKappaRoundTrip(t *testing.T) {
	for _, iters := range []int{50, 300, 2000} {
		kappa := ItersToKappa(iters, DefaultTol)
		back := KappaToIters(kappa, DefaultTol)
		// The round trip includes the calibration constant, so compare
		// against iters adjusted by it.
		want := float64(iters) / cgBoundCalibration
		if math.Abs(float64(back)-want) > 0.02*want+2 {
			t.Errorf("iters=%d: kappa=%g back=%d want~%g", iters, kappa, back, want)
		}
	}
	if ItersToKappa(0, DefaultTol) < 1 {
		t.Error("kappa must be >= 1")
	}
}

func TestRHSConsistent(t *testing.T) {
	a := Laplacian2D(8)
	b, xTrue := RHS(a)
	if len(b) != a.Rows || len(xTrue) != a.Rows {
		t.Fatal("length mismatch")
	}
	y := make([]float64, a.Rows)
	a.MulVec(y, xTrue)
	for i := range y {
		if math.Abs(y[i]-b[i]) > 1e-12 {
			t.Fatalf("b != A*xTrue at %d", i)
		}
	}
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 14 {
		t.Fatalf("catalog has %d entries, want 14 (Table 3)", len(cat))
	}
	seen := map[string]bool{}
	for _, s := range cat {
		if seen[s.Name] {
			t.Errorf("duplicate catalog name %s", s.Name)
		}
		seen[s.Name] = true
		if s.PaperRows <= 0 || s.NNZPerRow <= 0 || s.PaperIters <= 0 {
			t.Errorf("%s: invalid paper data", s.Name)
		}
	}
	for _, name := range []string{"Kuu", "crystm02", "Andrews", "nd24k", "x104", "cvxbqp1", "5-point stencil"} {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%s): %v", name, err)
		}
	}
	if _, err := Lookup("nonexistent"); err == nil {
		t.Error("Lookup of unknown matrix must fail")
	}
}

func TestScaleCapsAndParsing(t *testing.T) {
	spec, _ := Lookup("x104")
	if r := spec.Rows(Tiny); r > 512 {
		t.Errorf("tiny rows %d", r)
	}
	if r := spec.Rows(CI); r > 4096 {
		t.Errorf("ci rows %d", r)
	}
	if r := spec.Rows(Paper); r != spec.PaperRows {
		t.Errorf("paper rows %d", r)
	}
	if it := spec.TargetIters(Tiny); it > 260 {
		t.Errorf("tiny iters %d", it)
	}
	for _, s := range []string{"tiny", "ci", "paper"} {
		sc, err := ParseScale(s)
		if err != nil || sc.String() != s {
			t.Errorf("ParseScale(%s) = %v, %v", s, sc, err)
		}
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

// TestCatalogIterationCalibration checks every generated analog lands in
// a broad band around its iteration target (the calibration contract).
func TestCatalogIterationCalibration(t *testing.T) {
	for _, spec := range Catalog() {
		if spec.Stencil {
			continue // generated exactly, not via the kappa knob
		}
		a := spec.Generate(Tiny)
		b, _ := RHS(a)
		target := spec.TargetIters(Tiny)
		iters, conv := solver.SolveFaultFreeIters(a, b, DefaultTol, 40*target)
		if !conv {
			t.Errorf("%s: did not converge", spec.Name)
			continue
		}
		lo, hi := target/3, target*3
		if iters < lo || iters > hi {
			t.Errorf("%s: %d iterations, want within [%d, %d] of target %d",
				spec.Name, iters, lo, hi, target)
		}
	}
}

func TestGenerateStencilSquare(t *testing.T) {
	spec, _ := Lookup("5-point stencil")
	a := spec.Generate(Tiny)
	g := intSqrt(a.Rows)
	if g*g != a.Rows {
		t.Errorf("stencil rows %d not a perfect square", a.Rows)
	}
}

func TestAnisotropic2D(t *testing.T) {
	a := Anisotropic2D(6, 0.01)
	if a.Rows != 36 || !a.IsSymmetric(0) {
		t.Fatalf("shape/symmetry wrong: %v", a)
	}
	if lo, _ := a.GershgorinBounds(); lo < 0 {
		t.Errorf("not diagonally dominant: %g", lo)
	}
	// Anisotropy slows CG relative to the isotropic Laplacian of the
	// same size.
	bIso, _ := RHS(Laplacian2D(6))
	iso, _ := solver.SolveFaultFreeIters(Laplacian2D(6), bIso, 1e-10, 10000)
	bAniso, _ := RHS(a)
	aniso, _ := solver.SolveFaultFreeIters(a, bAniso, 1e-10, 10000)
	if aniso <= iso {
		t.Errorf("anisotropic CG %d iters not above isotropic %d", aniso, iso)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for eps<=0")
		}
	}()
	Anisotropic2D(4, 0)
}
