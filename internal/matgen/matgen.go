// Package matgen generates synthetic symmetric positive-definite matrices
// that stand in for the SuiteSparse matrices of Table 3 in the paper
// (offline substitution: the collection is not available here).
//
// Each generator controls the three properties the paper's experiments
// actually depend on:
//
//   - size (#rows) and sparsity (#nnz per row),
//   - structure regularity (banded vs scattered off-diagonals), which
//     drives how accurate LI/LSI forward reconstruction can be,
//   - conditioning, which drives the fault-free CG iteration count.
//
// The conditioning knob uses the classical CG bound
// iters ~ (sqrt(kappa)/2) ln(2/eps): given a target iteration count the
// generator back-solves for kappa and shapes the spectrum with Gershgorin
// bounds (diagonal d, off-diagonal row mass s  =>  eigs in [d-s, d+s]).
package matgen

import (
	"fmt"
	"math"
	"math/rand"

	"resilience/internal/sparse"
)

// DefaultTol is the solver tolerance the paper uses (Section 5.2).
const DefaultTol = 1e-12

// cgBoundCalibration is the measured ratio between actual CG iterations
// on BandedSPD matrices (log-uniform Gershgorin spectra) and the
// sqrt(kappa) worst-case bound. Calibrated across the Table 3 catalog at
// tiny and CI scales (observed 0.51-0.65, median ~0.57).
const cgBoundCalibration = 0.57

// ItersToKappa inverts the calibrated CG iteration estimate
// iters ≈ calib * (sqrt(kappa)/2) * ln(2/tol) for kappa.
func ItersToKappa(iters int, tol float64) float64 {
	c := cgBoundCalibration * 0.5 * math.Log(2/tol)
	k := float64(iters) / c
	kappa := k * k
	if kappa < 1.0001 {
		kappa = 1.0001
	}
	return kappa
}

// KappaToIters applies the CG iteration bound.
func KappaToIters(kappa, tol float64) int {
	return int(math.Ceil(0.5 * math.Sqrt(kappa) * math.Log(2/tol)))
}

// BandedOpts configures BandedSPD.
type BandedOpts struct {
	N          int     // matrix dimension
	NNZPerRow  int     // approximate stored entries per row (including diagonal)
	Kappa      float64 // target condition number (Gershgorin-shaped)
	Scatter    float64 // fraction of off-diagonals placed at random far columns [0,1]
	Seed       int64   // deterministic generator seed
	RowMass    float64 // off-diagonal absolute row mass (default 2)
	DiagJitter float64 // relative jitter on the diagonal (default 0.01)
}

// BandedSPD builds a symmetric positive-definite matrix with a band (or
// partially scattered) structure and a Gershgorin-shaped spectrum with
// condition number approximately Kappa.
func BandedSPD(o BandedOpts) *sparse.CSR {
	if o.N <= 0 {
		panic(fmt.Sprintf("matgen: invalid N=%d", o.N))
	}
	if o.NNZPerRow < 1 {
		o.NNZPerRow = 3
	}
	if o.Kappa < 1.0001 {
		o.Kappa = 1.0001
	}
	if o.RowMass <= 0 {
		o.RowMass = 2
	}
	if o.DiagJitter <= 0 {
		o.DiagJitter = 0.01
	}
	rng := rand.New(rand.NewSource(o.Seed))

	// Half-bandwidth such that a full band row has ~NNZPerRow entries.
	half := (o.NNZPerRow - 1) / 2
	if half < 1 {
		half = 1
	}
	if half > o.N/3 {
		half = o.N / 3
		if half < 1 {
			half = 1
		}
	}

	coo := sparse.NewCOO(o.N, o.N)
	// Off-diagonals: store upper triangle, mirror symmetric.
	offMass := make([]float64, o.N) // absolute off-diagonal mass per row
	for i := 0; i < o.N; i++ {
		for d := 1; d <= half; d++ {
			j := i + d
			if o.Scatter > 0 && rng.Float64() < o.Scatter {
				// Relocate this entry to a random far column > i.
				j = i + 1 + rng.Intn(o.N-i-1+1)
				if j >= o.N {
					continue
				}
			}
			if j >= o.N || j == i {
				continue
			}
			v := -(0.5 + rng.Float64()) // negative, Laplacian-like
			coo.AddSym(i, j, v)
			offMass[i] += math.Abs(v)
			offMass[j] += math.Abs(v)
		}
	}
	// Normalize the off-diagonal row masses, then choose the diagonal so
	// the Gershgorin discs cover [1, Kappa] with log-uniformly spread
	// centers. A clustered spectrum would let CG converge far faster than
	// the sqrt(kappa) bound; spreading the discs keeps the measured
	// iteration count near the target the catalog requests.
	var maxMass float64
	for _, m := range offMass {
		if m > maxMass {
			maxMass = m
		}
	}
	if maxMass == 0 {
		maxMass = 1
	}
	// Off-diagonal mass budget s: small enough that discs fit in
	// [1, Kappa] with room to spread.
	s := o.RowMass
	if lim := (o.Kappa - 1) / 3; s > lim && lim > 0 {
		s = lim
	}
	scale := s / maxMass
	for k := range coo.V {
		coo.V[k] *= scale
	}
	lnK := math.Log(o.Kappa)
	for i := 0; i < o.N; i++ {
		r := offMass[i] * scale
		low := 1 + r
		high := o.Kappa - r
		var d float64
		if high <= low {
			// Very small kappa: fall back to the clustered placement
			// d = s*(kappa+1)/(kappa-1) (fast convergence is fine there).
			d = s * (o.Kappa + 1) / (o.Kappa - 1)
			if d < low {
				d = low
			}
		} else {
			// Log-uniform disc centers over [low, high].
			t := rng.Float64()
			g := (math.Exp(lnK*t) - 1) / (o.Kappa - 1)
			d = low + (high-low)*g
		}
		jitter := 1 + o.DiagJitter*(rng.Float64()-0.5)
		coo.Add(i, i, d*jitter)
	}
	return coo.ToCSR()
}

// Laplacian1D returns the n x n tridiagonal Poisson matrix
// tridiag(-1, 2, -1), a classic SPD test matrix.
func Laplacian1D(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i+1 < n {
			coo.AddSym(i, i+1, -1)
		}
	}
	return coo.ToCSR()
}

// Laplacian2D returns the 5-point stencil discretization of the Laplacian
// on a g x g grid (n = g² rows, up to 5 nnz/row) — the paper's "5-point
// stencil" matrix.
func Laplacian2D(g int) *sparse.CSR {
	n := g * g
	coo := sparse.NewCOO(n, n)
	idx := func(r, c int) int { return r*g + c }
	for r := 0; r < g; r++ {
		for c := 0; c < g; c++ {
			i := idx(r, c)
			coo.Add(i, i, 4)
			if c+1 < g {
				coo.AddSym(i, idx(r, c+1), -1)
			}
			if r+1 < g {
				coo.AddSym(i, idx(r+1, c), -1)
			}
		}
	}
	return coo.ToCSR()
}

// Laplacian3D returns the 7-point stencil discretization on a g³ grid.
func Laplacian3D(g int) *sparse.CSR {
	n := g * g * g
	coo := sparse.NewCOO(n, n)
	idx := func(x, y, z int) int { return (x*g+y)*g + z }
	for x := 0; x < g; x++ {
		for y := 0; y < g; y++ {
			for z := 0; z < g; z++ {
				i := idx(x, y, z)
				coo.Add(i, i, 6)
				if z+1 < g {
					coo.AddSym(i, idx(x, y, z+1), -1)
				}
				if y+1 < g {
					coo.AddSym(i, idx(x, y+1, z), -1)
				}
				if x+1 < g {
					coo.AddSym(i, idx(x+1, y, z), -1)
				}
			}
		}
	}
	return coo.ToCSR()
}

// RHS builds a right-hand side b = A*x_true for a smooth deterministic
// x_true, so the true solution is known and convergence is measurable.
func RHS(a *sparse.CSR) (b, xTrue []float64) {
	n := a.Rows
	xTrue = make([]float64, n)
	for i := range xTrue {
		t := float64(i) / float64(n)
		xTrue[i] = 1 + math.Sin(2*math.Pi*t) + 0.3*math.Cos(6*math.Pi*t)
	}
	b = make([]float64, n)
	a.MulVec(b, xTrue)
	return b, xTrue
}

// Anisotropic2D returns the 5-point discretization of the anisotropic
// Laplacian -eps*u_xx - u_yy on a g x g grid: diagonal 2(1+eps),
// horizontal couplings -eps, vertical couplings -1. Small eps produces
// the strongly directional problems on which plain CG (and block-local
// reconstruction) degrade — a controlled stand-in for "irregular"
// workloads.
func Anisotropic2D(g int, eps float64) *sparse.CSR {
	if eps <= 0 {
		panic(fmt.Sprintf("matgen: Anisotropic2D eps=%g", eps))
	}
	n := g * g
	coo := sparse.NewCOO(n, n)
	idx := func(r, c int) int { return r*g + c }
	for r := 0; r < g; r++ {
		for c := 0; c < g; c++ {
			i := idx(r, c)
			coo.Add(i, i, 2*(1+eps))
			if c+1 < g {
				coo.AddSym(i, idx(r, c+1), -eps)
			}
			if r+1 < g {
				coo.AddSym(i, idx(r+1, c), -1)
			}
		}
	}
	return coo.ToCSR()
}
