package core

import (
	"fmt"
	"testing"

	"resilience/internal/fault"
	"resilience/internal/matgen"
	"resilience/internal/platform"
	"resilience/internal/recovery"
	"resilience/internal/vec"
)

// TestMultiRankSameIterationFailures injects k simultaneous hard node
// failures at one iteration boundary, for k = 1, 2, P/2, and runs every
// scheme in the registry through them. The contract is uniform: the
// drain loop recovers the failures back-to-back within the boundary and
// the solve still converges to the true solution — schemes that cannot
// recover forward (CR without a checkpoint, ESR after an outage) restart,
// they do not wedge. ESR additionally must come through with zero
// restarts: every simultaneous failure reconstructs exactly.
func TestMultiRankSameIterationFailures(t *testing.T) {
	const ranks = 6
	a := matgen.Laplacian2D(8) // 64 rows
	b, xTrue := matgen.RHS(a)

	specs := []SchemeSpec{
		{Kind: F0},
		{Kind: FI},
		{Kind: LI},
		{Kind: LI, DVFS: true},
		{Kind: LI, Construct: recovery.ConstructExact},
		{Kind: LSI},
		{Kind: LSI, DVFS: true},
		{Kind: LSI, Construct: recovery.ConstructExact},
		{Kind: CRM, CkptEvery: 5},
		{Kind: CRD, CkptEvery: 5},
		{Kind: CR2L, CkptEvery: 5},
		{Kind: RD},
		{Kind: TMR},
		{Kind: ESR},
		{Kind: LCR, CkptEvery: 5},
	}
	for _, k := range []int{1, 2, ranks / 2} {
		faults := make([]fault.Fault, k)
		for i := range faults {
			faults[i] = fault.Fault{Class: fault.SNF, Rank: i, Iter: 9}
		}
		for _, spec := range specs {
			spec := spec
			t.Run(fmt.Sprintf("%s/k=%d", spec.Name(), k), func(t *testing.T) {
				fs := faults
				rep, err := Run(RunConfig{
					A: a, B: b,
					Ranks:    ranks,
					Plat:     platform.Default(),
					Scheme:   spec,
					Tol:      1e-10,
					MaxIters: 1500,
					Seed:     11,
					InjectorFactory: func() fault.Injector {
						return fault.NewScheduleAt(fs)
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Converged {
					t.Fatalf("%s with %d simultaneous failures did not converge (relres %g after %d iters)",
						spec.Name(), k, rep.RelRes, rep.Iters)
				}
				if got := len(rep.Faults); got != k {
					t.Errorf("injected %d faults, report has %d", k, got)
				}
				if d := vec.Dist2(rep.Solution, xTrue) / vec.Nrm2(xTrue); d > 1e-6 {
					t.Errorf("solution error %g", d)
				}
				if spec.Kind == ESR && rep.Restarts != 0 {
					t.Errorf("ESR restarted %d times; exact reconstruction must not roll back", rep.Restarts)
				}
			})
		}
	}
}
