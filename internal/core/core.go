// Package core is the paper's contribution assembled: it orchestrates the
// distributed CG solver, fault injection, a recovery scheme, and power
// management into one resilient run, and reports the metrics the paper
// studies — iterations, time-to-solution, average power, and
// energy-to-solution, with per-phase energy attribution.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"resilience/internal/checkpoint"
	"resilience/internal/cluster"
	"resilience/internal/fault"
	"resilience/internal/obs"
	"resilience/internal/platform"
	"resilience/internal/power"
	"resilience/internal/recovery"
	"resilience/internal/solver"
	"resilience/internal/sparse"
	"resilience/internal/trace"
)

// SchemeKind enumerates the recovery mechanisms under study (Table 2).
type SchemeKind int

// The schemes of Table 2, plus the fault-free baseline.
const (
	FF SchemeKind = iota // fault-free baseline (no injection)
	F0
	FI
	LI
	LSI
	CRM  // checkpoint/restart to memory
	CRD  // checkpoint/restart to disk
	CR2L // two-level checkpoint/restart, memory + disk (extension)
	RD   // dual modular redundancy
	TMR  // triple modular redundancy (extension)
	ESR  // exact state reconstruction (extension)
	LCR  // lossy-compressed checkpoint/restart (extension)
)

var kindNames = map[SchemeKind]string{
	FF: "FF", F0: "F0", FI: "FI", LI: "LI", LSI: "LSI",
	CRM: "CR-M", CRD: "CR-D", CR2L: "CR-2L", RD: "RD", TMR: "TMR",
	ESR: "ESR", LCR: "LCR",
}

func (k SchemeKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("SchemeKind(%d)", int(k))
}

// SchemeSpec selects and configures a recovery scheme.
type SchemeSpec struct {
	Kind SchemeKind
	// Construct picks the LI/LSI construction: the paper's localized CG
	// (default) or the exact prior-work LU/QR baseline.
	Construct recovery.Construction
	// DVFS enables the Section 4.2 power management for LI/LSI.
	DVFS bool
	// LocalTol is the localized construction tolerance (default 1e-6).
	LocalTol float64
	// CkptEvery checkpoints every N iterations (CR only). Zero derives
	// the interval from Young's formula using CkptMTBF.
	CkptEvery int
	// CkptMTBF (seconds) feeds Young's formula when CkptEvery is zero.
	CkptMTBF float64
	// DiskEvery is the disk-level interval for CR-2L in iterations; zero
	// defaults to 4x the memory interval.
	DiskEvery int
	// UseDaly switches the derived interval to Daly's higher-order
	// formula (ablation extension).
	UseDaly bool
	// LossyRatio is the LCR compression ratio (compressed payload =
	// bytes/LossyRatio); zero means recovery.DefaultLossyRatio.
	LossyRatio float64
	// LossyErrBound is the LCR compressor's pointwise relative error
	// bound applied on restore; zero means recovery.DefaultLossyErrBound.
	LossyErrBound float64
}

// Name returns the presentation name used in the paper's tables.
func (s SchemeSpec) Name() string {
	switch s.Kind {
	case LI, LSI:
		name := s.Kind.String()
		if s.Construct == recovery.ConstructExact {
			if s.Kind == LI {
				name = "LI(LU)"
			} else {
				name = "LSI(QR)"
			}
		}
		if s.DVFS {
			name += "-DVFS"
		}
		return name
	default:
		return s.Kind.String()
	}
}

// RunConfig describes one resilient solve.
type RunConfig struct {
	A  *sparse.CSR
	B  []float64
	X0 []float64 // nil = zeros

	Ranks  int
	Plat   *platform.Platform
	Scheme SchemeSpec

	// InjectorFactory builds one injector per rank; all instances must be
	// deterministic and identical (same seed). Nil means fault-free.
	InjectorFactory func() fault.Injector

	Tol      float64
	MaxIters int
	// Jacobi enables diagonal preconditioning of the distributed CG
	// (extension beyond the paper).
	Jacobi bool
	// Overlap hides the halo exchange behind the interior SpMV in every
	// distributed matrix-vector product. Bitwise-identical numerics; the
	// modeled time and energy change.
	Overlap bool
	// Sched selects the cluster execution mode; cluster.SchedAuto (the
	// zero value) resolves RES_SCHED and defaults to the goroutine
	// runtime. Clocks, energy, traces and solutions are byte-identical
	// across modes; only host wall-clock changes.
	Sched cluster.SchedMode
	// SpMV selects the rank-local SpMV kernel layout; solver.SpMVAuto
	// (the zero value) resolves RES_SPMV and defaults to CSR. Results and
	// charged flops are bitwise-identical across layouts.
	SpMV solver.SpMVLayout
	// DetectDelay is the number of iterations a silent data corruption
	// (SDC) propagates before it is detected and recovery runs. Hard
	// faults are always detected immediately. Extension beyond the paper,
	// which assumes prompt detection (Section 3).
	DetectDelay int
	// KeepSegments retains power segments for timeline reports (Fig 7a).
	KeepSegments bool
	// Trace, when non-nil, receives structured per-iteration and fault/
	// recovery events (recorded by rank 0).
	Trace *trace.Trace
	// Obs, when non-nil, records per-rank spans and counters for the
	// observability exporters. Recording is pure: virtual clocks, power,
	// and every numeric result are byte-identical with or without it.
	Obs *obs.Recorder
	// Seed drives fault corruption patterns.
	Seed int64
}

// RunReport is the outcome of one resilient solve.
type RunReport struct {
	Scheme    string
	Ranks     int
	Iters     int
	Converged bool
	RelRes    float64
	Restarts  int

	// Time is the virtual time-to-solution in seconds (max over ranks).
	Time float64
	// Energy is energy-to-solution in joules, including redundant
	// hardware (x Redundancy for RD/TMR).
	Energy float64
	// AvgPower = Energy / Time, the paper's P metric.
	AvgPower float64
	// EnergyByPhase attributes energy to solve/reconstruct/checkpoint/
	// rollback phases (before the redundancy multiplier).
	EnergyByPhase map[string]float64

	Faults      []fault.Fault
	Checkpoints int
	Redundancy  int

	// Seed echoes RunConfig.Seed so any report names the seed that
	// replays it.
	Seed int64

	// History is the relative residual at each iteration (rank 0).
	History []float64
	// Solution is the assembled final iterate.
	Solution []float64
	// Meter exposes segments when KeepSegments was set.
	Meter *power.Meter
	// Obs echoes the recorder passed in RunConfig (nil otherwise), so
	// callers can export spans and metrics from the report alone.
	Obs *obs.Recorder
}

// buildScheme instantiates the per-rank scheme.
func buildScheme(cfg *RunConfig, x0Block []float64, ckptPolicy checkpoint.Policy) (recovery.Scheme, error) {
	switch cfg.Scheme.Kind {
	case FF:
		return nil, nil
	case F0:
		return &recovery.F0{}, nil
	case FI:
		return &recovery.FI{X0: x0Block}, nil
	case LI:
		return &recovery.LI{
			Construct: cfg.Scheme.Construct,
			DVFS:      cfg.Scheme.DVFS,
			LocalTol:  cfg.Scheme.LocalTol,
		}, nil
	case LSI:
		return &recovery.LSI{
			Construct: cfg.Scheme.Construct,
			DVFS:      cfg.Scheme.DVFS,
			LocalTol:  cfg.Scheme.LocalTol,
		}, nil
	case CRM:
		return &recovery.CR{Store: checkpoint.MemStore{Plat: cfg.Plat}, Policy: ckptPolicy, X0: x0Block}, nil
	case CRD:
		return &recovery.CR{Store: checkpoint.DiskStore{Plat: cfg.Plat}, Policy: ckptPolicy, X0: x0Block}, nil
	case CR2L:
		diskEvery := cfg.Scheme.DiskEvery
		if diskEvery == 0 {
			diskEvery = 4 * ckptPolicy.EveryIters
		}
		s := &recovery.CR2L{
			Mem:        checkpoint.MemStore{Plat: cfg.Plat},
			Disk:       checkpoint.DiskStore{Plat: cfg.Plat},
			MemPolicy:  ckptPolicy,
			DiskPolicy: checkpoint.FixedPolicy(diskEvery),
			X0:         x0Block,
		}
		if err := s.Validate(); err != nil {
			return nil, err
		}
		return s, nil
	case RD:
		return &recovery.RD{Replicas: 2}, nil
	case TMR:
		return &recovery.RD{Replicas: 3}, nil
	case ESR:
		return &recovery.ESR{X0: x0Block}, nil
	case LCR:
		return &recovery.LCR{CR: recovery.CR{
			Store:  lossyStore(cfg.Plat, cfg.Scheme),
			Policy: ckptPolicy,
			X0:     x0Block,
		}, ErrBound: cfg.Scheme.LossyErrBound}, nil
	}
	return nil, fmt.Errorf("core: unknown scheme kind %v", cfg.Scheme.Kind)
}

// lossyStore builds the LCR checkpoint target: the shared disk behind an
// error-bounded compressor at the spec's ratio.
func lossyStore(plat *platform.Platform, s SchemeSpec) checkpoint.Store {
	ratio := s.LossyRatio
	if ratio <= 0 {
		ratio = recovery.DefaultLossyRatio
	}
	return checkpoint.Lossy{Inner: checkpoint.DiskStore{Plat: plat}, Ratio: ratio}
}

// resMonitor wires fault injection and recovery into the CG iteration.
type resMonitor struct {
	cfg      *RunConfig
	scheme   recovery.Scheme
	injector fault.Injector
	rng      *rand.Rand
	faults   []fault.Fault
	pending  []pendingFault
	// ctx, when non-nil, is polled at every iteration boundary so a
	// canceled or expired context aborts the run promptly. Only set for
	// cancellable contexts — Run's Background context costs nothing.
	ctx context.Context
}

// pendingFault is an injected-but-undetected silent corruption.
type pendingFault struct {
	f   fault.Fault
	due int
}

func (m *resMonitor) BeforeIteration(it *solver.Iter) (bool, error) {
	if m.ctx != nil {
		if err := m.ctx.Err(); err != nil {
			return false, fmt.Errorf("core: run canceled at iteration %d: %w", it.K, err)
		}
	}
	if m.cfg.Trace != nil && it.C.Rank() == 0 {
		relres := 0.0
		if it.State.NormB > 0 && it.State.Rho >= 0 {
			relres = math.Sqrt(it.State.Rho) / it.State.NormB
		}
		m.cfg.Trace.Add(trace.Event{
			Kind: trace.Iteration, Iter: it.K, Clock: it.C.Clock(), RelRes: relres,
		})
	}
	if m.injector == nil {
		return false, nil
	}
	restart := false
	// Drain every fault due at this iteration: simultaneous failures on
	// multiple processes recover back-to-back within one boundary. The
	// clock is sampled once, before any recovery runs: ranks' clocks are
	// only guaranteed equal at the boundary itself, and every rank must
	// make identical injection decisions.
	clock := it.C.Clock()
	ctx := &recovery.Ctx{C: it.C, Op: it.Op, St: it.State, Plat: m.cfg.Plat}
	for {
		f := m.injector.Check(it.K, clock)
		if f == nil {
			break
		}
		m.faults = append(m.faults, *f)
		if m.cfg.Trace != nil && it.C.Rank() == 0 {
			m.cfg.Trace.Add(trace.Event{
				Kind: trace.FaultEvent, Iter: it.K, Rank: f.Rank, Clock: clock,
				Detail: f.String(),
			})
		}
		if m.scheme == nil {
			// FF with an injector configured is a configuration error.
			return false, fmt.Errorf("core: fault injected but no recovery scheme configured")
		}
		// Destroy/corrupt the dynamic data on the struck rank (Fig. 2b).
		if it.C.Rank() == f.Rank {
			fault.Apply(fault.EffectOf(f.Class), it.State.X, m.rng)
		}
		// Silent corruptions propagate until detected (DetectDelay
		// iterations later); everything else recovers immediately.
		if f.Class == fault.SDC && m.cfg.DetectDelay > 0 {
			m.pending = append(m.pending, pendingFault{f: *f, due: it.K + m.cfg.DetectDelay})
			continue
		}
		r, err := m.scheme.Recover(ctx, *f)
		if err != nil {
			return false, err
		}
		if m.cfg.Trace != nil && it.C.Rank() == 0 {
			m.cfg.Trace.Add(trace.Event{
				Kind: trace.RecoveryEvent, Iter: it.K, Rank: f.Rank,
				Clock: it.C.Clock(), Detail: m.scheme.Name(),
			})
		}
		restart = restart || r
	}
	// Recover any silent corruption whose detection is due.
	if len(m.pending) > 0 {
		keep := m.pending[:0]
		for _, p := range m.pending {
			if it.K < p.due {
				keep = append(keep, p)
				continue
			}
			r, err := m.scheme.Recover(ctx, p.f)
			if err != nil {
				return false, err
			}
			restart = restart || r
		}
		m.pending = keep
	}
	return restart, nil
}

func (m *resMonitor) AfterIteration(it *solver.Iter) error {
	if m.scheme == nil {
		return nil
	}
	ctx := &recovery.Ctx{C: it.C, Op: it.Op, St: it.State, Plat: m.cfg.Plat}
	return m.scheme.AfterIteration(ctx, it.K)
}

// EstimateIterTime approximates the fault-free per-iteration virtual time
// of distributed CG on this configuration: one SpMV plus vector work plus
// three collectives. It feeds Young's formula.
func EstimateIterTime(a *sparse.CSR, ranks int, plat *platform.Platform) float64 {
	flopsPerRank := (2*int64(a.NNZ()) + 12*int64(a.Rows)) / int64(ranks)
	t := plat.ComputeTime(flopsPerRank, plat.FreqMax)
	t += 3 * plat.CollectiveTime(8, ranks)
	// Halo exchange: a handful of neighbor messages.
	t += 4 * plat.P2PTime(8*int64(a.Rows/ranks/8+1))
	return t
}

// ckptPolicy resolves the checkpoint policy for a run.
func ckptPolicy(cfg *RunConfig, maxBlockRows int) (checkpoint.Policy, error) {
	s := cfg.Scheme
	if s.Kind != CRM && s.Kind != CRD && s.Kind != CR2L && s.Kind != LCR {
		return checkpoint.Policy{}, nil
	}
	if s.CkptEvery > 0 {
		return checkpoint.FixedPolicy(s.CkptEvery), nil
	}
	if s.CkptMTBF <= 0 {
		return checkpoint.Policy{}, fmt.Errorf("core: CR scheme needs CkptEvery or CkptMTBF")
	}
	var store checkpoint.Store
	switch {
	case s.Kind == CRM || s.Kind == CR2L:
		store = checkpoint.MemStore{Plat: cfg.Plat}
	case s.Kind == LCR:
		store = lossyStore(cfg.Plat, s)
	default:
		store = checkpoint.DiskStore{Plat: cfg.Plat}
	}
	tC := store.WriteTime(int64(8*maxBlockRows), cfg.Ranks)
	iterSec := EstimateIterTime(cfg.A, cfg.Ranks, cfg.Plat)
	if s.UseDaly {
		return checkpoint.DalyPolicy(tC, s.CkptMTBF, iterSec), nil
	}
	return checkpoint.YoungPolicy(tC, s.CkptMTBF, iterSec), nil
}

// Run executes one resilient solve and reports its metrics.
func Run(cfg RunConfig) (*RunReport, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: every rank polls the
// context at each iteration boundary, so a canceled or expired context
// aborts the solve within one iteration. The returned error wraps
// ctx.Err() (test with errors.Is). A background context adds no per-
// iteration cost: only cancellable contexts are polled.
func RunContext(ctx context.Context, cfg RunConfig) (*RunReport, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: run canceled before start: %w", err)
		}
	}
	if cfg.A == nil || cfg.A.Rows != cfg.A.Cols || len(cfg.B) != cfg.A.Rows {
		return nil, fmt.Errorf("core: invalid system (A %v, len(b)=%d)", cfg.A, len(cfg.B))
	}
	if cfg.Ranks <= 0 || cfg.Ranks > cfg.A.Rows {
		return nil, fmt.Errorf("core: invalid rank count %d for n=%d", cfg.Ranks, cfg.A.Rows)
	}
	if cfg.Plat == nil {
		cfg.Plat = platform.Default()
	}
	if err := cfg.Plat.Validate(); err != nil {
		return nil, err
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-12
	}

	part := sparse.NewPartition(cfg.A.Rows, cfg.Ranks)
	policy, err := ckptPolicy(&cfg, part.Size(0))
	if err != nil {
		return nil, err
	}

	meter := power.NewMeter(cfg.KeepSegments)
	results := make([]*solver.Result, cfg.Ranks)
	monitors := make([]*resMonitor, cfg.Ranks)
	schemes := make([]recovery.Scheme, cfg.Ranks)

	rt := cluster.NewRuntimeOpts(cfg.Ranks, cfg.Plat, meter, cluster.Options{Sched: cfg.Sched})
	if cfg.Obs != nil {
		rt.SetRecorder(cfg.Obs)
	}
	maxClock, err := rt.Run(func(c *cluster.Comm) error {
		var x0Block []float64
		if cfg.X0 != nil {
			x0Block = append([]float64(nil), part.Slice(cfg.X0, c.Rank())...)
		}
		scheme, err := buildScheme(&cfg, x0Block, policy)
		if err != nil {
			return err
		}
		schemes[c.Rank()] = scheme
		mon := &resMonitor{
			cfg:    &cfg,
			scheme: scheme,
			rng:    rand.New(rand.NewSource(cfg.Seed + 7919)),
		}
		if ctx != nil && ctx.Done() != nil {
			mon.ctx = ctx
		}
		if cfg.InjectorFactory != nil {
			mon.injector = cfg.InjectorFactory()
		}
		monitors[c.Rank()] = mon

		res, err := solver.CG(c, cfg.A, cfg.B, part, solver.Options{
			Tol:                cfg.Tol,
			MaxIters:           cfg.MaxIters,
			Monitor:            mon,
			VerifyTrueResidual: true,
			X0:                 cfg.X0,
			Jacobi:             cfg.Jacobi,
			Overlap:            cfg.Overlap,
			SpMV:               cfg.SpMV,
		})
		if err != nil {
			return err
		}
		results[c.Rank()] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	r0 := results[0]
	report := &RunReport{
		Scheme:        cfg.Scheme.Name(),
		Ranks:         cfg.Ranks,
		Iters:         r0.Iters,
		Converged:     r0.Converged,
		RelRes:        r0.RelRes,
		Restarts:      r0.Restarts,
		Time:          maxClock,
		EnergyByPhase: meter.EnergyByPhase(),
		History:       r0.History,
		Faults:        monitors[0].faults,
		Redundancy:    1,
		Seed:          cfg.Seed,
	}
	if s := schemes[0]; s != nil {
		report.Redundancy = s.Redundancy()
		switch sc := s.(type) {
		case *recovery.CR:
			report.Checkpoints = sc.Writes
		case *recovery.LCR:
			report.Checkpoints = sc.Writes
		case *recovery.CR2L:
			report.Checkpoints = sc.MemWrites + sc.DiskWrites
		}
	}
	report.Solution = make([]float64, cfg.A.Rows)
	for r := 0; r < cfg.Ranks; r++ {
		copy(part.Slice(report.Solution, r), results[r].XLocal)
	}
	report.Energy = meter.TotalEnergy() * float64(report.Redundancy)
	if report.Time > 0 {
		report.AvgPower = report.Energy / report.Time
	}
	if cfg.KeepSegments {
		report.Meter = meter
	}
	report.Obs = cfg.Obs
	if cfg.Trace != nil {
		cfg.Trace.Add(trace.Event{
			Kind: trace.ConvergedEvent, Iter: report.Iters, Clock: report.Time,
			RelRes: report.RelRes,
			Detail: fmt.Sprintf("converged=%t", report.Converged),
		})
	}
	return report, nil
}
