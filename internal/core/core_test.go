package core

import (
	"context"
	"errors"
	"strings"
	"time"

	"math"
	"testing"

	"resilience/internal/fault"
	"resilience/internal/matgen"
	"resilience/internal/platform"
	"resilience/internal/recovery"
	"resilience/internal/trace"
	"resilience/internal/vec"
)

// testSystem builds a small well-understood SPD system.
func testSystem(t *testing.T) (cfg RunConfig, xTrue []float64) {
	t.Helper()
	a := matgen.Laplacian2D(16) // 256 rows
	b, xt := matgen.RHS(a)
	return RunConfig{
		A:        a,
		B:        b,
		Ranks:    4,
		Plat:     platform.Default(),
		Tol:      1e-10,
		MaxIters: 4000,
		Seed:     1,
	}, xt
}

func checkSolution(t *testing.T, rep *RunReport, xTrue []float64, tol float64) {
	t.Helper()
	if !rep.Converged {
		t.Fatalf("%s did not converge: relres=%g iters=%d", rep.Scheme, rep.RelRes, rep.Iters)
	}
	if d := vec.Dist2(rep.Solution, xTrue) / vec.Nrm2(xTrue); d > tol {
		t.Fatalf("%s solution error %g > %g", rep.Scheme, d, tol)
	}
}

func TestFaultFreeRun(t *testing.T) {
	cfg, xTrue := testSystem(t)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, rep, xTrue, 1e-6)
	if rep.Time <= 0 {
		t.Errorf("non-positive time %g", rep.Time)
	}
	if rep.Energy <= 0 {
		t.Errorf("non-positive energy %g", rep.Energy)
	}
	if rep.AvgPower <= 0 {
		t.Errorf("non-positive power %g", rep.AvgPower)
	}
	if len(rep.Faults) != 0 {
		t.Errorf("fault-free run reported %d faults", len(rep.Faults))
	}
}

// TestAllSchemesRecover injects faults under every scheme and checks the
// solver still reaches the correct solution.
func TestAllSchemesRecover(t *testing.T) {
	specs := []SchemeSpec{
		{Kind: F0},
		{Kind: FI},
		{Kind: LI, Construct: recovery.ConstructCG},
		{Kind: LI, Construct: recovery.ConstructExact},
		{Kind: LI, Construct: recovery.ConstructCG, DVFS: true},
		{Kind: LSI, Construct: recovery.ConstructCG},
		{Kind: LSI, Construct: recovery.ConstructExact},
		{Kind: LSI, Construct: recovery.ConstructCG, DVFS: true},
		{Kind: CRM, CkptEvery: 25},
		{Kind: CRD, CkptEvery: 25},
		{Kind: RD},
		{Kind: TMR},
	}
	cfg, xTrue := testSystem(t)
	ffIters := faultFreeIters(t, cfg)
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name(), func(t *testing.T) {
			c := cfg
			c.Scheme = spec
			c.InjectorFactory = func() fault.Injector {
				return fault.NewSchedule(3, ffIters, c.Ranks, fault.SNF, 42)
			}
			rep, err := Run(c)
			if err != nil {
				t.Fatal(err)
			}
			checkSolution(t, rep, xTrue, 1e-5)
			if len(rep.Faults) != 3 {
				t.Errorf("want 3 faults, got %d", len(rep.Faults))
			}
		})
	}
}

func faultFreeIters(t *testing.T, cfg RunConfig) int {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Iters
}

func TestRDMatchesFaultFree(t *testing.T) {
	cfg, _ := testSystem(t)
	ff, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.Scheme = SchemeSpec{Kind: RD}
	c.InjectorFactory = func() fault.Injector {
		return fault.NewSchedule(3, ff.Iters, c.Ranks, fault.SNF, 42)
	}
	rd, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Iters != ff.Iters {
		t.Errorf("RD iters %d != FF iters %d", rd.Iters, ff.Iters)
	}
	if rd.Redundancy != 2 {
		t.Errorf("RD redundancy %d != 2", rd.Redundancy)
	}
	// Eq. 12: RD draws double power for the whole run.
	ratio := rd.AvgPower / ff.AvgPower
	if ratio < 1.9 || ratio > 2.2 {
		t.Errorf("RD power ratio %g, want ~2", ratio)
	}
}

func TestForwardRecoveryBeatsF0(t *testing.T) {
	cfg, _ := testSystem(t)
	ffIters := faultFreeIters(t, cfg)
	iters := func(spec SchemeSpec) int {
		c := cfg
		c.Scheme = spec
		c.InjectorFactory = func() fault.Injector {
			return fault.NewSchedule(5, ffIters, c.Ranks, fault.SNF, 7)
		}
		rep, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Converged {
			t.Fatalf("%s did not converge", spec.Name())
		}
		return rep.Iters
	}
	f0 := iters(SchemeSpec{Kind: F0})
	li := iters(SchemeSpec{Kind: LI})
	lsi := iters(SchemeSpec{Kind: LSI})
	if li >= f0 {
		t.Errorf("LI iterations %d not better than F0 %d", li, f0)
	}
	if lsi >= f0 {
		t.Errorf("LSI iterations %d not better than F0 %d", lsi, f0)
	}
	if f0 <= ffIters {
		t.Errorf("F0 iterations %d should exceed fault-free %d", f0, ffIters)
	}
}

func TestCheckpointCountAndRollback(t *testing.T) {
	cfg, xTrue := testSystem(t)
	ffIters := faultFreeIters(t, cfg)
	c := cfg
	c.Scheme = SchemeSpec{Kind: CRM, CkptEvery: 20}
	c.InjectorFactory = func() fault.Injector {
		return fault.NewSchedule(2, ffIters, c.Ranks, fault.SNF, 3)
	}
	rep, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, rep, xTrue, 1e-5)
	if rep.Checkpoints == 0 {
		t.Error("no checkpoints recorded")
	}
	if rep.Iters <= ffIters {
		t.Errorf("CR iterations %d should exceed fault-free %d (rollback recomputation)", rep.Iters, ffIters)
	}
}

func TestDVFSReducesEnergy(t *testing.T) {
	// DVFS pays off when reconstruction is long relative to the frequency
	// transition latency, so use a larger diagonal block and the exact
	// (LU) construction, whose n³ cost dominates.
	cfg, _ := testSystem(t)
	a := matgen.Laplacian2D(32)
	cfg.A = a
	cfg.B, _ = matgen.RHS(a)
	ffIters := faultFreeIters(t, cfg)
	run := func(dvfs bool) *RunReport {
		c := cfg
		c.Scheme = SchemeSpec{Kind: LI, Construct: recovery.ConstructExact, DVFS: dvfs}
		c.InjectorFactory = func() fault.Injector {
			return fault.NewSchedule(5, ffIters, c.Ranks, fault.SNF, 11)
		}
		rep, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := run(false)
	dvfs := run(true)
	if dvfs.Iters != plain.Iters {
		t.Errorf("DVFS changed iterations: %d vs %d", dvfs.Iters, plain.Iters)
	}
	if dvfs.Energy >= plain.Energy {
		t.Errorf("LI-DVFS energy %g not below LI energy %g", dvfs.Energy, plain.Energy)
	}
}

func TestPoissonInjectorRun(t *testing.T) {
	cfg, xTrue := testSystem(t)
	ff, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// MTBF ~ a fifth of the fault-free runtime: expect a handful of faults.
	mtbf := ff.Time / 5
	c := cfg
	c.Scheme = SchemeSpec{Kind: LI}
	c.InjectorFactory = func() fault.Injector {
		return fault.NewPoisson(mtbf, c.Ranks, fault.SNF, 9)
	}
	rep, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, rep, xTrue, 1e-5)
	if len(rep.Faults) == 0 {
		t.Error("expected Poisson faults, got none")
	}
}

// TestSimultaneousFaults schedules several faults at the same iteration:
// multiple processes fail together and the monitor must drain and recover
// them all at one boundary.
func TestSimultaneousFaults(t *testing.T) {
	cfg, xTrue := testSystem(t)
	c := cfg
	c.Scheme = SchemeSpec{Kind: LI}
	c.InjectorFactory = func() fault.Injector {
		// ffIters=1 forces all scheduled iterations to collapse to 1.
		return fault.NewSchedule(3, 1, c.Ranks, fault.SNF, 5)
	}
	rep, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, rep, xTrue, 1e-5)
	if len(rep.Faults) != 3 {
		t.Fatalf("want 3 simultaneous faults, got %d", len(rep.Faults))
	}
	if rep.Faults[0].Iter != rep.Faults[2].Iter {
		t.Errorf("faults not simultaneous: %v", rep.Faults)
	}
}

func TestRunReportEnergyConsistency(t *testing.T) {
	cfg, _ := testSystem(t)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, e := range rep.EnergyByPhase {
		sum += e
	}
	if math.Abs(sum-rep.Energy) > 1e-6*rep.Energy {
		t.Errorf("phase energies sum %g != total %g", sum, rep.Energy)
	}
}

// TestSDCDetectionDelay lets silent corruptions propagate before recovery
// and checks the run still converges to the right answer, at growing cost.
func TestSDCDetectionDelay(t *testing.T) {
	cfg, xTrue := testSystem(t)
	ffIters := faultFreeIters(t, cfg)
	iters := func(delay int) int {
		c := cfg
		c.Scheme = SchemeSpec{Kind: LI}
		c.DetectDelay = delay
		c.InjectorFactory = func() fault.Injector {
			return fault.NewSchedule(2, ffIters, c.Ranks, fault.SDC, 13)
		}
		rep, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		checkSolution(t, rep, xTrue, 1e-5)
		return rep.Iters
	}
	prompt := iters(0)
	delayed := iters(20)
	if delayed < prompt {
		t.Errorf("delayed detection (%d iters) cheaper than prompt (%d)", delayed, prompt)
	}
}

// TestCR2LScheme runs the two-level scheme end to end through core.
func TestCR2LScheme(t *testing.T) {
	cfg, xTrue := testSystem(t)
	ffIters := faultFreeIters(t, cfg)
	c := cfg
	c.Scheme = SchemeSpec{Kind: CR2L, CkptEvery: 10, DiskEvery: 40}
	c.InjectorFactory = func() fault.Injector {
		return fault.NewScheduleClasses(4, ffIters, c.Ranks,
			[]fault.Class{fault.SNF, fault.SWO}, 17)
	}
	rep, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, rep, xTrue, 1e-5)
	if rep.Checkpoints == 0 {
		t.Error("no checkpoints recorded for CR-2L")
	}
	if rep.Scheme != "CR-2L" {
		t.Errorf("scheme name %q", rep.Scheme)
	}
}

func TestRunRejectsInvalidConfigs(t *testing.T) {
	a := matgen.Laplacian2D(8)
	b, _ := matgen.RHS(a)
	cases := []RunConfig{
		{A: nil, B: b, Ranks: 2},
		{A: a, B: b[:10], Ranks: 2},
		{A: a, B: b, Ranks: 0},
		{A: a, B: b, Ranks: a.Rows + 1},
		{A: a, B: b, Ranks: 2, Scheme: SchemeSpec{Kind: CRM}}, // CR without interval or MTBF
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunRejectsFaultsWithoutScheme(t *testing.T) {
	cfg, _ := testSystem(t)
	cfg.InjectorFactory = func() fault.Injector {
		return fault.NewSchedule(1, 10, cfg.Ranks, fault.SNF, 1)
	}
	if _, err := Run(cfg); err == nil {
		t.Error("FF with injector must be a configuration error")
	}
}

func TestYoungPolicyResolution(t *testing.T) {
	cfg, xTrue := testSystem(t)
	ff, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.Scheme = SchemeSpec{Kind: CRD, CkptMTBF: ff.Time / 3}
	c.InjectorFactory = func() fault.Injector {
		return fault.NewSchedule(3, ff.Iters, c.Ranks, fault.SNF, 2)
	}
	rep, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, rep, xTrue, 1e-5)
	if rep.Checkpoints == 0 {
		t.Error("Young policy produced no checkpoints")
	}
}

func TestDalyPolicyResolution(t *testing.T) {
	cfg, xTrue := testSystem(t)
	ff, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.Scheme = SchemeSpec{Kind: CRD, CkptMTBF: ff.Time / 3, UseDaly: true}
	c.InjectorFactory = func() fault.Injector {
		return fault.NewSchedule(3, ff.Iters, c.Ranks, fault.SNF, 2)
	}
	rep, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, rep, xTrue, 1e-5)
}

func TestSchemeSpecNames(t *testing.T) {
	cases := map[string]SchemeSpec{
		"FF":      {Kind: FF},
		"LI":      {Kind: LI},
		"LI-DVFS": {Kind: LI, DVFS: true},
		"LI(LU)":  {Kind: LI, Construct: recovery.ConstructExact},
		"LSI(QR)": {Kind: LSI, Construct: recovery.ConstructExact},
		"CR-2L":   {Kind: CR2L},
		"TMR":     {Kind: TMR},
	}
	for want, spec := range cases {
		if got := spec.Name(); got != want {
			t.Errorf("Name()=%q want %q", got, want)
		}
	}
}

func TestJacobiRunConverges(t *testing.T) {
	cfg, xTrue := testSystem(t)
	cfg.Jacobi = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, rep, xTrue, 1e-6)
}

func TestEstimateIterTimePositive(t *testing.T) {
	a := matgen.Laplacian2D(16)
	est := EstimateIterTime(a, 4, platform.Default())
	if est <= 0 {
		t.Errorf("estimate %g", est)
	}
	// More ranks per fixed problem: less compute per rank but more
	// collective latency; the estimate stays positive and finite.
	est2 := EstimateIterTime(a, 16, platform.Default())
	if est2 <= 0 || math.IsInf(est2, 0) {
		t.Errorf("estimate %g", est2)
	}
}

func TestTraceRecordsRun(t *testing.T) {
	cfg, _ := testSystem(t)
	tr := trace.New()
	cfg.Trace = tr
	cfg.Scheme = SchemeSpec{Kind: LI}
	cfg.InjectorFactory = func() fault.Injector {
		return fault.NewSchedule(2, 40, cfg.Ranks, fault.SNF, 3)
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("did not converge")
	}
	if got := len(tr.Filter(trace.FaultEvent)); got != 2 {
		t.Errorf("%d fault events, want 2", got)
	}
	if got := len(tr.Filter(trace.RecoveryEvent)); got != 2 {
		t.Errorf("%d recovery events, want 2", got)
	}
	if len(tr.Filter(trace.Iteration)) < rep.Iters/2 {
		t.Error("too few iteration events")
	}
	conv := tr.Filter(trace.ConvergedEvent)
	if len(conv) != 1 || conv[0].Iter != rep.Iters {
		t.Errorf("converged event %v", conv)
	}
	// Residual series decreases overall.
	_, rs := tr.ResidualSeries()
	if len(rs) == 0 || rs[len(rs)-1] > rs[0] {
		t.Error("residual series did not decrease")
	}
}

// TestForwardRecoveryFreeWhenFaultFree pins the motivation the paper
// gives for forward recovery (Section 7): unlike CR, FW costs nothing
// when no fault occurs.
func TestForwardRecoveryFreeWhenFaultFree(t *testing.T) {
	cfg, _ := testSystem(t)
	ff, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// LI configured but never triggered: identical cost to FF.
	li := cfg
	li.Scheme = SchemeSpec{Kind: LI}
	liRep, err := Run(li)
	if err != nil {
		t.Fatal(err)
	}
	if liRep.Iters != ff.Iters {
		t.Errorf("idle LI changed iterations: %d vs %d", liRep.Iters, ff.Iters)
	}
	if d := math.Abs(liRep.Time-ff.Time) / ff.Time; d > 1e-9 {
		t.Errorf("idle LI changed time by %g", d)
	}
	// CR keeps checkpointing even without faults: strictly more time.
	cr := cfg
	cr.Scheme = SchemeSpec{Kind: CRD, CkptEvery: 20}
	crRep, err := Run(cr)
	if err != nil {
		t.Fatal(err)
	}
	if crRep.Time <= ff.Time {
		t.Errorf("fault-free CR-D time %g not above FF %g (checkpoint overhead)", crRep.Time, ff.Time)
	}
	if crRep.Checkpoints == 0 {
		t.Error("no checkpoints in fault-free CR run")
	}
}

// TestRunContext pins the context plumbing: a live context changes
// nothing (bitwise-identical to Run), a pre-canceled one fails before
// the cluster spins up, and an expiring deadline stops the solve at an
// iteration boundary with a wrapped context error.
func TestRunContext(t *testing.T) {
	cfg, xTrue := testSystem(t)

	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, withCtx, xTrue, 1e-8)
	if withCtx.Iters != plain.Iters || withCtx.RelRes != plain.RelRes ||
		withCtx.Time != plain.Time || withCtx.Energy != plain.Energy {
		t.Fatalf("background context perturbed the run: %+v vs %+v", withCtx, plain)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(canceled, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled run returned %v, want context.Canceled", err)
	}

	expiring, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	time.Sleep(5 * time.Millisecond)
	_, err = RunContext(expiring, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired run returned %v, want context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "canceled at iteration") && !strings.Contains(err.Error(), "canceled before start") {
		t.Fatalf("cancellation error lost its location: %v", err)
	}
}
