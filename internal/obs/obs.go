// Package obs is the observability layer of the simulated cluster: per-rank
// spans recorded against the virtual clocks, a registry of per-rank
// communication/computation counters, and exporters (Chrome trace-event
// JSON for Perfetto, flat CSV metrics).
//
// Observation is pure by construction. A recorder only *reads* the virtual
// clocks the runtime already maintains — it never advances one, never
// touches the power meter, and never participates in synchronization — so
// every recorded experiment artifact is byte-identical with observation on
// or off. A disabled recorder (the nil default) costs a single pointer
// comparison on the hot path and zero allocations; the repository's
// 0 allocs/op benchmarks gate this.
//
// Concurrency model: each rank goroutine owns one Rank recording surface
// (handed out by Recorder.Rank at run start), so the hot path takes no
// locks. Aggregated reads (Spans, Metrics) must happen after the run
// completes; cluster.Run's WaitGroup provides the happens-before edge.
package obs

import (
	"fmt"
	"sync"
)

// SpanKind classifies a span on a rank's virtual timeline.
type SpanKind uint8

// The span taxonomy, from runtime primitives (compute, send, recv, wait,
// collective — recorded by internal/cluster) to solver phases
// (spmv-interior/boundary, halo — internal/solver) and recovery phases
// (reconstruct, checkpoint, rollback — internal/recovery).
const (
	// SpanCompute is modeled flop work at active power.
	SpanCompute SpanKind = iota
	// SpanSend is a blocking send's injection time.
	SpanSend
	// SpanRecv is the receiver-side wait until a message's arrival.
	SpanRecv
	// SpanWait is the arrival synchronization of a collective.
	SpanWait
	// SpanCollective is the tree cost of a collective operation.
	SpanCollective
	// SpanSpMVInterior is the ghost-free part of an overlapped SpMV.
	SpanSpMVInterior
	// SpanSpMVBoundary is the ghost-dependent part of an overlapped SpMV.
	SpanSpMVBoundary
	// SpanHalo is one collective halo exchange (fused path).
	SpanHalo
	// SpanReconstruct is a forward-recovery reconstruction (LI/LSI/F0/FI/RD).
	SpanReconstruct
	// SpanCheckpoint is a checkpoint write.
	SpanCheckpoint
	// SpanRollback is a checkpoint restore.
	SpanRollback

	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	"compute", "send", "recv", "wait", "collective",
	"spmv-interior", "spmv-boundary", "halo",
	"reconstruct", "checkpoint", "rollback",
}

func (k SpanKind) String() string {
	if k >= numSpanKinds {
		return fmt.Sprintf("SpanKind(%d)", int(k))
	}
	return spanKindNames[k]
}

// Span is one interval of classified activity on a rank's virtual
// timeline. Start and Dur are virtual seconds.
type Span struct {
	Kind  SpanKind
	Start float64
	Dur   float64
}

// End returns the span's end time.
func (s Span) End() float64 { return s.Start + s.Dur }

// Metrics is the per-rank counter registry: who sent what, who waited how
// long, and where the rank's virtual seconds went, broken down by the
// runtime primitives.
type Metrics struct {
	Rank int

	MsgsSent  int64
	BytesSent int64
	MsgsRecv  int64
	BytesRecv int64
	// Collectives counts collective invocations (barriers, allreduces,
	// broadcasts, gathers, scatters).
	Collectives int64
	// Flops counts modeled floating-point operations.
	Flops int64
	// Restarts counts Krylov recurrence rebuilds (recoveries, breakdowns,
	// drifted-residual verifications).
	Restarts int64

	// Virtual-second attribution of the primitive activities.
	ComputeSec    float64
	SendSec       float64
	WaitSec       float64 // blocked receives + collective arrival gaps
	CollectiveSec float64
}

// Rank is one rank's recording surface. It is owned by the rank's
// goroutine for the duration of a run and must not be shared while the
// run is in flight.
type Rank struct {
	m     Metrics
	spans []Span
}

// Span records one classified interval. Zero and negative durations are
// dropped (an instantaneous activity has no timeline extent). Primitive
// kinds also accumulate into the per-kind seconds counters; composite
// kinds (halo, spmv-*, recovery phases) wrap primitives and are excluded
// so the counters never double-count.
func (r *Rank) Span(kind SpanKind, start, dur float64) {
	if dur <= 0 {
		return
	}
	r.spans = append(r.spans, Span{Kind: kind, Start: start, Dur: dur})
	switch kind {
	case SpanCompute:
		r.m.ComputeSec += dur
	case SpanSend:
		r.m.SendSec += dur
	case SpanRecv, SpanWait:
		r.m.WaitSec += dur
	case SpanCollective:
		r.m.CollectiveSec += dur
	}
}

// AddSend counts one outbound point-to-point message of the given size.
func (r *Rank) AddSend(bytes int64) {
	r.m.MsgsSent++
	r.m.BytesSent += bytes
}

// AddRecv counts one inbound point-to-point message of the given size.
func (r *Rank) AddRecv(bytes int64) {
	r.m.MsgsRecv++
	r.m.BytesRecv += bytes
}

// AddCollective counts one collective invocation.
func (r *Rank) AddCollective() { r.m.Collectives++ }

// AddFlops counts modeled floating-point work.
func (r *Rank) AddFlops(flops int64) { r.m.Flops += flops }

// IncRestarts counts one Krylov recurrence rebuild.
func (r *Rank) IncRestarts() { r.m.Restarts++ }

// Recorder collects the per-rank recording surfaces of one run. The zero
// value is not usable; call NewRecorder. A Recorder observes exactly one
// run; Reset it before reuse.
type Recorder struct {
	mu    sync.Mutex
	ranks []*Rank
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Rank returns rank's recording surface, creating surfaces on demand.
// Called once per rank at run start; the returned surface is then used
// lock-free by that rank's goroutine.
func (rec *Recorder) Rank(rank int) *Rank {
	if rank < 0 {
		panic(fmt.Sprintf("obs: invalid rank %d", rank))
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for len(rec.ranks) <= rank {
		rec.ranks = append(rec.ranks, &Rank{m: Metrics{Rank: len(rec.ranks)}})
	}
	return rec.ranks[rank]
}

// Ranks returns the number of rank surfaces handed out.
func (rec *Recorder) Ranks() int {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return len(rec.ranks)
}

// RankSpans returns a copy of one rank's spans in recording order. Spans
// of a composite kind follow the primitives they wrap (they are recorded
// at their end), so the sequence is end-time ordered, not start-time
// ordered.
func (rec *Recorder) RankSpans(rank int) []Span {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rank < 0 || rank >= len(rec.ranks) {
		return nil
	}
	out := make([]Span, len(rec.ranks[rank].spans))
	copy(out, rec.ranks[rank].spans)
	return out
}

// SpanCount returns the total number of recorded spans across ranks.
func (rec *Recorder) SpanCount() int {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	n := 0
	for _, r := range rec.ranks {
		n += len(r.spans)
	}
	return n
}

// Metrics returns a copy of every rank's counter registry, rank order.
func (rec *Recorder) Metrics() []Metrics {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := make([]Metrics, len(rec.ranks))
	for i, r := range rec.ranks {
		out[i] = r.m
	}
	return out
}

// Reset discards every recorded span and counter so the recorder can
// observe another run.
func (rec *Recorder) Reset() {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.ranks = rec.ranks[:0]
}
