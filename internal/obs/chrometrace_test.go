package obs

import (
	"bytes"
	"strings"
	"testing"

	"resilience/internal/power"
)

// goldenRecorder builds a tiny two-rank recorder and a segment-retaining
// meter with a coverage gap on core 0, exercising every exporter branch:
// M metadata, X spans, the aggregate counter delta-walk, and the per-core
// zero samples at gaps and at the end.
func goldenRecorder() (*Recorder, *power.Meter) {
	rec := NewRecorder()
	r0 := rec.Rank(0)
	r0.Span(SpanCompute, 0, 1e-6)
	r0.Span(SpanSend, 1e-6, 5e-7)
	rec.Rank(1).Span(SpanRecv, 0, 1.5e-6)

	m := power.NewMeter(true)
	m.Record(0, "solve", 0, 1e-6, 90)
	m.Record(0, "solve", 2e-6, 1e-6, 90)
	m.Record(1, "solve", 0, 3e-6, 50)
	return rec, m
}

// TestWriteChromeTraceGolden pins the exact exported bytes: field order,
// float rendering, event ordering, and counter derivation are all part of
// the format contract (Perfetto-loadable and diff-stable).
func TestWriteChromeTraceGolden(t *testing.T) {
	rec, m := goldenRecorder()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rec, m); err != nil {
		t.Fatal(err)
	}
	const want = `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"ranks"}},` +
		`{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"power"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"rank 0"}},` +
		`{"name":"compute","ph":"X","ts":0,"dur":1,"pid":0,"tid":0,"cat":"compute"},` +
		`{"name":"send","ph":"X","ts":1,"dur":0.5,"pid":0,"tid":0,"cat":"comm"},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":1,"args":{"name":"rank 1"}},` +
		`{"name":"recv","ph":"X","ts":0,"dur":1.5,"pid":0,"tid":1,"cat":"comm"},` +
		`{"name":"cluster W","ph":"C","ts":0,"pid":1,"tid":0,"args":{"W":140}},` +
		`{"name":"cluster W","ph":"C","ts":1,"pid":1,"tid":0,"args":{"W":50}},` +
		`{"name":"cluster W","ph":"C","ts":2,"pid":1,"tid":0,"args":{"W":140}},` +
		`{"name":"cluster W","ph":"C","ts":3,"pid":1,"tid":0,"args":{"W":0}},` +
		`{"name":"core 0 W","ph":"C","ts":0,"pid":1,"tid":1,"args":{"W":90}},` +
		`{"name":"core 0 W","ph":"C","ts":1,"pid":1,"tid":1,"args":{"W":0}},` +
		`{"name":"core 0 W","ph":"C","ts":2,"pid":1,"tid":1,"args":{"W":90}},` +
		`{"name":"core 0 W","ph":"C","ts":3,"pid":1,"tid":1,"args":{"W":0}},` +
		`{"name":"core 1 W","ph":"C","ts":0,"pid":1,"tid":2,"args":{"W":50}},` +
		`{"name":"core 1 W","ph":"C","ts":3,"pid":1,"tid":2,"args":{"W":0}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("golden mismatch:\ngot:  %s\nwant: %s", got, want)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Errorf("golden trace fails validation: %v", err)
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	rec, m := goldenRecorder()
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, rec, m); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, rec, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exports of the same recorder differ")
	}
}

func TestWriteChromeTraceNilParts(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Errorf("metadata-only trace invalid: %v", err)
	}
	// A meter without segment retention contributes no counter tracks.
	buf.Reset()
	if err := WriteChromeTrace(&buf, NewRecorder(), power.NewMeter(false)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"ph":"C"`) {
		t.Error("segment-less meter produced counter events")
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents":`,
		"no events":     `{"traceEvents":[],"displayTimeUnit":"ms"}`,
		"unknown phase": `{"traceEvents":[{"name":"x","ph":"Q","ts":0,"pid":0,"tid":0}]}`,
		"negative ts":   `{"traceEvents":[{"name":"x","ph":"X","ts":-1,"dur":1,"pid":0,"tid":0}]}`,
		"negative dur":  `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-1,"pid":0,"tid":0}]}`,
		"unnamed X":     `{"traceEvents":[{"name":"","ph":"X","ts":0,"dur":1,"pid":0,"tid":0}]}`,
		"ts regression": `{"traceEvents":[` +
			`{"name":"a","ph":"X","ts":5,"dur":1,"pid":0,"tid":0},` +
			`{"name":"b","ph":"X","ts":1,"dur":1,"pid":0,"tid":0}]}`,
		"straddling spans": `{"traceEvents":[` +
			`{"name":"a","ph":"X","ts":0,"dur":10,"pid":0,"tid":0},` +
			`{"name":"b","ph":"X","ts":5,"dur":10,"pid":0,"tid":0}]}`,
	}
	for name, data := range cases {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
	// Tracks are independent: interleaved timestamps across tids are fine.
	ok := `{"traceEvents":[` +
		`{"name":"a","ph":"X","ts":5,"dur":1,"pid":0,"tid":0},` +
		`{"name":"b","ph":"X","ts":1,"dur":1,"pid":0,"tid":1}]}`
	if err := ValidateChromeTrace([]byte(ok)); err != nil {
		t.Errorf("cross-track ordering rejected: %v", err)
	}
}
