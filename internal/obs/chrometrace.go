package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"resilience/internal/power"
)

// The Chrome trace-event exporter: one Perfetto-loadable JSON document per
// run, with one timeline track per rank (pid 0, tid = rank) carrying the
// recorded spans as complete ("X") events, and counter ("C") tracks
// (pid 1) derived from the power meter's segments — aggregate cluster
// watts plus one per-core series. Timestamps are the virtual clocks
// converted to microseconds, the unit the trace-event format expects.

// pids of the two synthetic processes in the exported trace.
const (
	pidRanks = 0
	pidPower = 1
)

// TraceEvent is one entry of the trace-event JSON array. Field order is
// fixed by the struct, and encoding/json renders floats in their shortest
// form, so exports are byte-deterministic for golden tests. It is
// exported so internal/telemetry can lay wall-clock service tracks
// alongside the virtual-time tracks in one merged trace.
type TraceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Cat  string  `json:"cat,omitempty"`
	Args any     `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

type nameArg struct {
	Name string `json:"name"`
}

type wattsArg struct {
	W float64 `json:"W"`
}

const usPerSec = 1e6

// WriteChromeTrace writes the recorder's spans (and, when meter retains
// segments, its power counters) as Chrome trace-event JSON. Either rec or
// meter may be nil; a nil meter (or one built without segment retention)
// simply omits the counter tracks.
func WriteChromeTrace(w io.Writer, rec *Recorder, meter *power.Meter) error {
	return WriteTraceEvents(w, Events(rec, meter))
}

// Events builds the virtual-time trace events — the rank timeline
// tracks and power counter tracks — without encoding them, so callers
// (internal/telemetry's merged exporter) can append tracks of their own
// before writing one document.
func Events(rec *Recorder, meter *power.Meter) []TraceEvent {
	var events []TraceEvent

	events = append(events,
		TraceEvent{Name: "process_name", Ph: "M", Pid: pidRanks, Args: nameArg{Name: "ranks"}},
		TraceEvent{Name: "process_name", Ph: "M", Pid: pidPower, Args: nameArg{Name: "power"}},
	)
	if rec != nil {
		for rank := 0; rank < rec.Ranks(); rank++ {
			events = append(events, TraceEvent{
				Name: "thread_name", Ph: "M", Pid: pidRanks, Tid: rank,
				Args: nameArg{Name: fmt.Sprintf("rank %d", rank)},
			})
			events = append(events, rankEvents(rank, rec.RankSpans(rank))...)
		}
	}
	if meter != nil {
		events = append(events, powerEvents(meter)...)
	}
	return events
}

// WriteTraceEvents encodes events as one Chrome trace-event JSON
// document (the exact bytes WriteChromeTrace has always produced).
func WriteTraceEvents(w io.Writer, events []TraceEvent) error {
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// rankEvents converts one rank's spans to X events ordered so that every
// enclosing span precedes the spans it contains: ascending start time,
// ties broken by descending duration. sort.SliceStable keeps recording
// order for exact duplicates, so the export is deterministic.
func rankEvents(rank int, spans []Span) []TraceEvent {
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Dur > spans[j].Dur
	})
	evs := make([]TraceEvent, len(spans))
	for i, s := range spans {
		evs[i] = TraceEvent{
			Name: s.Kind.String(),
			Ph:   "X",
			Ts:   s.Start * usPerSec,
			Dur:  s.Dur * usPerSec,
			Pid:  pidRanks,
			Tid:  rank,
			Cat:  spanCategory(s.Kind),
		}
	}
	return evs
}

// spanCategory groups kinds into the coarse categories Perfetto can
// filter on.
func spanCategory(k SpanKind) string {
	switch k {
	case SpanCompute, SpanSpMVInterior, SpanSpMVBoundary:
		return "compute"
	case SpanSend, SpanRecv, SpanWait, SpanCollective, SpanHalo:
		return "comm"
	case SpanReconstruct, SpanCheckpoint, SpanRollback:
		return "recovery"
	}
	return "other"
}

// powerEvents derives counter tracks from the meter's segments: one
// aggregate "cluster W" series (a delta-walk over all segment edges) and
// one "core N W" series per core (piecewise-constant, dropping to zero
// across gaps). Empty when the meter was built without segment retention.
func powerEvents(meter *power.Meter) []TraceEvent {
	segs := meter.Segments()
	if len(segs) == 0 {
		return nil
	}
	var evs []TraceEvent

	// Aggregate: sum of active segment watts at each segment edge.
	type edge struct {
		t float64
		w float64
	}
	edges := make([]edge, 0, 2*len(segs))
	for _, s := range segs {
		edges = append(edges, edge{t: s.Start, w: s.Watts}, edge{t: s.End(), w: -s.Watts})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].t < edges[j].t })
	var acc float64
	for i, e := range edges {
		acc += e.w
		if i+1 < len(edges) && edges[i+1].t == e.t {
			continue // fold simultaneous edges into one sample
		}
		w := acc
		if w < 0 { // guard rounding at the final edge
			w = 0
		}
		evs = append(evs, TraceEvent{
			Name: "cluster W", Ph: "C", Ts: e.t * usPerSec,
			Pid: pidPower, Args: wattsArg{W: round6(w)},
		})
	}

	// Per-core: segments are piecewise-constant already; emit the watts at
	// each segment start and a zero sample over any coverage gap.
	byCore := make(map[int][]power.Segment)
	cores := make([]int, 0)
	for _, s := range segs {
		if _, ok := byCore[s.Core]; !ok {
			cores = append(cores, s.Core)
		}
		byCore[s.Core] = append(byCore[s.Core], s)
	}
	sort.Ints(cores)
	for _, core := range cores {
		cs := byCore[core]
		sort.SliceStable(cs, func(i, j int) bool { return cs[i].Start < cs[j].Start })
		name := fmt.Sprintf("core %d W", core)
		tid := core + 1 // tid 0 is reserved for the aggregate series
		for i, s := range cs {
			evs = append(evs, TraceEvent{
				Name: name, Ph: "C", Ts: s.Start * usPerSec,
				Pid: pidPower, Tid: tid, Args: wattsArg{W: s.Watts},
			})
			end := s.End()
			if i+1 == len(cs) || cs[i+1].Start > end+1e-12 {
				evs = append(evs, TraceEvent{
					Name: name, Ph: "C", Ts: end * usPerSec,
					Pid: pidPower, Tid: tid, Args: wattsArg{W: 0},
				})
			}
		}
	}
	return evs
}

// round6 snaps a watts value to 1e-6 W so the aggregate delta-walk's
// floating-point dust (sums and differences of per-core powers) doesn't
// leak into the export.
func round6(w float64) float64 {
	return math.Round(w*1e6) / 1e6
}

// ValidateChromeTrace structurally checks an exported trace: known phase
// codes, non-negative monotone timestamps per track, well-formed X events,
// and proper nesting of the X events on each rank track. It is the test
// suite's gate on anything WriteChromeTrace emits.
func ValidateChromeTrace(data []byte) error {
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace has no events")
	}
	type track struct{ pid, tid int }
	lastTs := make(map[track]float64)
	stacks := make(map[track][]float64) // open X-event end times
	const eps = 1e-6                    // µs; well below any modeled cost
	for i, e := range tf.TraceEvents {
		switch e.Ph {
		case "M":
			continue
		case "X", "C":
		default:
			return fmt.Errorf("obs: event %d has unknown phase %q", i, e.Ph)
		}
		if e.Ts < 0 || math.IsNaN(e.Ts) || e.Dur < 0 || math.IsNaN(e.Dur) {
			return fmt.Errorf("obs: event %d (%s) has invalid ts=%g dur=%g", i, e.Name, e.Ts, e.Dur)
		}
		k := track{e.Pid, e.Tid}
		if prev, ok := lastTs[k]; ok && e.Ts < prev-eps {
			return fmt.Errorf("obs: event %d (%s) ts %g precedes track (%d,%d) cursor %g",
				i, e.Name, e.Ts, e.Pid, e.Tid, prev)
		}
		lastTs[k] = e.Ts
		if e.Ph != "X" {
			continue
		}
		if e.Name == "" {
			return fmt.Errorf("obs: X event %d has no name", i)
		}
		// Pop completed spans, then require full containment in the
		// innermost still-open span.
		st := stacks[k]
		for len(st) > 0 && st[len(st)-1] <= e.Ts+eps {
			st = st[:len(st)-1]
		}
		end := e.Ts + e.Dur
		if len(st) > 0 && end > st[len(st)-1]+eps {
			return fmt.Errorf("obs: X event %d (%s) on track (%d,%d) ends at %g, past its enclosing span's end %g",
				i, e.Name, e.Pid, e.Tid, end, st[len(st)-1])
		}
		stacks[k] = append(st, end)
	}
	return nil
}
