// End-to-end observability tests. These live in package obs_test so they
// can import the public resilience package (a test-only cycle the Go tool
// permits) and drive a full ci-scale resilient solve.
package obs_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"resilience"
	"resilience/internal/obs"
)

// tracedSolve runs the acceptance scenario: LI-DVFS on a ci-scale catalog
// matrix with injected node failures and a recorder attached.
func tracedSolve(t *testing.T, rec *resilience.Recorder, keepSegs bool) *resilience.Report {
	t.Helper()
	a, err := resilience.CatalogMatrix("Andrews", "ci")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := resilience.RHS(a)
	rep, err := resilience.Solve(a, b, resilience.SolveOptions{
		Scheme:            "LI-DVFS",
		Ranks:             32,
		Faults:            3,
		Observer:          rec,
		KeepPowerSegments: keepSegs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("traced solve did not converge (relres %g)", rep.RelRes)
	}
	return rep
}

func TestEndToEndChromeTrace(t *testing.T) {
	rec := resilience.NewRecorder()
	rep := tracedSolve(t, rec, true)

	if rec.Ranks() != 32 {
		t.Fatalf("recorder saw %d ranks, want 32", rec.Ranks())
	}
	if len(rep.Faults) != 3 {
		t.Fatalf("injected %d faults, want 3", len(rep.Faults))
	}

	// Every rank has a timeline, and all spans lie inside the run.
	kinds := map[obs.SpanKind]bool{}
	for r := 0; r < rec.Ranks(); r++ {
		spans := rec.RankSpans(r)
		if len(spans) == 0 {
			t.Errorf("rank %d recorded no spans", r)
			continue
		}
		for _, s := range spans {
			kinds[s.Kind] = true
			if s.Start < 0 || s.Dur <= 0 || s.End() > rep.Time*(1+1e-9) {
				t.Fatalf("rank %d span %v outside [0, %g]", r, s, rep.Time)
			}
		}
	}
	for _, k := range []obs.SpanKind{
		obs.SpanCompute, obs.SpanSend, obs.SpanRecv, obs.SpanWait,
		obs.SpanCollective, obs.SpanHalo, obs.SpanReconstruct,
	} {
		if !kinds[k] {
			t.Errorf("no %v span in a faulty LI-DVFS run", k)
		}
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, rec, rep.Meter); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`"name":"rank 31"`,     // one track per rank
		`"name":"reconstruct"`, // recovery visible on the timeline
		`"name":"cluster W"`,   // aggregate power counter track
		`"name":"core 0 W"`,    // per-core power counter track
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace JSON lacks %s", want)
		}
	}

	// The retained power segments cover the whole run: no metering holes.
	if gaps := rep.Meter.Gaps(1e-9); len(gaps) != 0 {
		t.Errorf("power trace has %d coverage gaps, first %+v", len(gaps), gaps[0])
	}

	// Counters are coherent: matched message totals, wait time on someone.
	var sent, recv, sentB, recvB int64
	var totalWait float64
	for _, m := range rec.Metrics() {
		sent += m.MsgsSent
		recv += m.MsgsRecv
		sentB += m.BytesSent
		recvB += m.BytesRecv
		totalWait += m.WaitSec
	}
	if sent == 0 || sent != recv || sentB != recvB {
		t.Errorf("message totals unmatched: %d/%d msgs, %d/%d bytes", sent, recv, sentB, recvB)
	}
	if totalWait <= 0 {
		t.Error("no wait time recorded across 32 ranks")
	}
}

// TestEnergyRunToRun pins bitwise run-to-run determinism of the modeled
// energy: the meter reduces per-core sums in sorted core order, so the
// goroutine interleaving of 32 concurrent ranks must not move even the
// last ulp. (Purity comparisons below lean on this.)
func TestEnergyRunToRun(t *testing.T) {
	first := tracedSolve(t, nil, false)
	for i := 0; i < 3; i++ {
		rep := tracedSolve(t, nil, false)
		if rep.Energy != first.Energy || rep.Time != first.Time {
			t.Fatalf("run %d: %v J / %v s, first run %v J / %v s",
				i, rep.Energy, rep.Time, first.Energy, first.Time)
		}
	}
}

// TestObserverPurity is the tentpole guarantee: attaching a recorder must
// not change a single modeled number or solution bit.
func TestObserverPurity(t *testing.T) {
	base := tracedSolve(t, nil, false)
	rec := resilience.NewRecorder()
	obsd := tracedSolve(t, rec, false)

	if base.Time != obsd.Time || base.Energy != obsd.Energy {
		t.Errorf("time/energy drift: %g/%g vs %g/%g",
			base.Time, base.Energy, obsd.Time, obsd.Energy)
	}
	if base.Iters != obsd.Iters || base.Restarts != obsd.Restarts {
		t.Errorf("iteration drift: %d/%d vs %d/%d",
			base.Iters, base.Restarts, obsd.Iters, obsd.Restarts)
	}
	if len(base.History) != len(obsd.History) {
		t.Fatalf("history length drift: %d vs %d", len(base.History), len(obsd.History))
	}
	for i := range base.History {
		if base.History[i] != obsd.History[i] {
			t.Fatalf("history[%d] drift: %g vs %g", i, base.History[i], obsd.History[i])
		}
	}
	for i := range base.Solution {
		if math.Float64bits(base.Solution[i]) != math.Float64bits(obsd.Solution[i]) {
			t.Fatalf("solution[%d] drift: %g vs %g", i, base.Solution[i], obsd.Solution[i])
		}
	}
}
