package obs

import (
	"strings"
	"testing"
)

func TestSpanKindStrings(t *testing.T) {
	want := map[SpanKind]string{
		SpanCompute:      "compute",
		SpanSend:         "send",
		SpanRecv:         "recv",
		SpanWait:         "wait",
		SpanCollective:   "collective",
		SpanSpMVInterior: "spmv-interior",
		SpanSpMVBoundary: "spmv-boundary",
		SpanHalo:         "halo",
		SpanReconstruct:  "reconstruct",
		SpanCheckpoint:   "checkpoint",
		SpanRollback:     "rollback",
	}
	if len(want) != int(numSpanKinds) {
		t.Fatalf("test covers %d kinds, package has %d", len(want), numSpanKinds)
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("kind %d: got %q, want %q", k, k.String(), s)
		}
	}
	if s := SpanKind(200).String(); !strings.Contains(s, "200") {
		t.Errorf("unknown kind renders %q", s)
	}
}

func TestRankSpanAccounting(t *testing.T) {
	rec := NewRecorder()
	r := rec.Rank(1)
	r.Span(SpanCompute, 0, 2)
	r.Span(SpanSend, 2, 1)
	r.Span(SpanRecv, 3, 0.5)
	r.Span(SpanWait, 3.5, 0.5)
	r.Span(SpanCollective, 4, 1)
	// Composite kinds must not double-count into the seconds counters.
	r.Span(SpanHalo, 2, 2)
	r.Span(SpanReconstruct, 0, 5)
	// Zero/negative durations are dropped entirely.
	r.Span(SpanCompute, 9, 0)
	r.Span(SpanCompute, 9, -1)

	ms := rec.Metrics()
	if len(ms) != 2 {
		t.Fatalf("got %d rank surfaces, want 2 (grow-on-demand)", len(ms))
	}
	m := ms[1]
	if m.Rank != 1 {
		t.Errorf("rank id %d", m.Rank)
	}
	if m.ComputeSec != 2 || m.SendSec != 1 || m.WaitSec != 1 || m.CollectiveSec != 1 {
		t.Errorf("seconds attribution: %+v", m)
	}
	if got := len(rec.RankSpans(1)); got != 7 {
		t.Errorf("recorded %d spans, want 7", got)
	}
	if rec.SpanCount() != 7 {
		t.Errorf("SpanCount %d", rec.SpanCount())
	}
	if s := rec.RankSpans(0); len(s) != 0 {
		t.Errorf("rank 0 has %d spans", len(s))
	}
	if s := rec.RankSpans(5); s != nil {
		t.Errorf("out-of-range rank returned %v", s)
	}
}

func TestRankCounters(t *testing.T) {
	rec := NewRecorder()
	r := rec.Rank(0)
	r.AddSend(64)
	r.AddSend(8)
	r.AddRecv(128)
	r.AddCollective()
	r.AddCollective()
	r.AddFlops(1000)
	r.IncRestarts()
	m := rec.Metrics()[0]
	if m.MsgsSent != 2 || m.BytesSent != 72 {
		t.Errorf("send counters: %+v", m)
	}
	if m.MsgsRecv != 1 || m.BytesRecv != 128 {
		t.Errorf("recv counters: %+v", m)
	}
	if m.Collectives != 2 || m.Flops != 1000 || m.Restarts != 1 {
		t.Errorf("counters: %+v", m)
	}
}

func TestRecorderReset(t *testing.T) {
	rec := NewRecorder()
	rec.Rank(3).Span(SpanCompute, 0, 1)
	rec.Reset()
	if rec.Ranks() != 0 || rec.SpanCount() != 0 {
		t.Errorf("reset left %d ranks, %d spans", rec.Ranks(), rec.SpanCount())
	}
}

func TestWriteMetricsCSV(t *testing.T) {
	rec := NewRecorder()
	r := rec.Rank(0)
	r.AddSend(16)
	r.Span(SpanCompute, 0, 0.25)
	var sb strings.Builder
	if err := WriteMetricsCSV(&sb, rec.Metrics()); err != nil {
		t.Fatal(err)
	}
	want := "rank,msgs_sent,bytes_sent,msgs_recv,bytes_recv,collectives,flops,restarts,compute_s,send_s,wait_s,collective_s\n" +
		"0,1,16,0,0,0,0,0,0.25,0,0,0\n"
	if sb.String() != want {
		t.Errorf("metrics CSV:\n%q\nwant:\n%q", sb.String(), want)
	}
}

func TestMetricsTable(t *testing.T) {
	rec := NewRecorder()
	rec.Rank(1).AddRecv(24)
	tbl := MetricsTable(rec.Metrics())
	out := tbl.String()
	if !strings.Contains(out, "msgs_recv") || !strings.Contains(out, "24") {
		t.Errorf("table:\n%s", out)
	}
	if len(tbl.Rows) != 2 {
		t.Errorf("rows %d", len(tbl.Rows))
	}
}
