package obs

import (
	"fmt"
	"io"

	"resilience/internal/report"
)

// metricsHeader is the flat CSV schema of the per-rank counter dump.
const metricsHeader = "rank,msgs_sent,bytes_sent,msgs_recv,bytes_recv,collectives,flops,restarts,compute_s,send_s,wait_s,collective_s"

// WriteMetricsCSV dumps the per-rank counters as CSV, one row per rank.
func WriteMetricsCSV(w io.Writer, ms []Metrics) error {
	if _, err := fmt.Fprintln(w, metricsHeader); err != nil {
		return err
	}
	for _, m := range ms {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%.9g,%.9g,%.9g,%.9g\n",
			m.Rank, m.MsgsSent, m.BytesSent, m.MsgsRecv, m.BytesRecv,
			m.Collectives, m.Flops, m.Restarts,
			m.ComputeSec, m.SendSec, m.WaitSec, m.CollectiveSec)
		if err != nil {
			return err
		}
	}
	return nil
}

// Total sums per-rank counter registries into one aggregate snapshot
// (Rank is set to -1). Serving layers use it to fold a whole run's
// communication and computation into service-level counters.
func Total(ms []Metrics) Metrics {
	t := Metrics{Rank: -1}
	for _, m := range ms {
		t.MsgsSent += m.MsgsSent
		t.BytesSent += m.BytesSent
		t.MsgsRecv += m.MsgsRecv
		t.BytesRecv += m.BytesRecv
		t.Collectives += m.Collectives
		t.Flops += m.Flops
		t.Restarts += m.Restarts
		t.ComputeSec += m.ComputeSec
		t.SendSec += m.SendSec
		t.WaitSec += m.WaitSec
		t.CollectiveSec += m.CollectiveSec
	}
	return t
}

// MetricsTable renders the per-rank counters as an aligned text table for
// the report layer.
func MetricsTable(ms []Metrics) *report.Table {
	t := report.NewTable("Per-rank metrics",
		"rank", "msgs_sent", "bytes_sent", "msgs_recv", "bytes_recv",
		"coll", "flops", "restarts", "compute_s", "send_s", "wait_s", "coll_s")
	for _, m := range ms {
		t.AddF(m.Rank, m.MsgsSent, m.BytesSent, m.MsgsRecv, m.BytesRecv,
			m.Collectives, m.Flops, m.Restarts,
			m.ComputeSec, m.SendSec, m.WaitSec, m.CollectiveSec)
	}
	return t
}
