// Package router fronts a fleet of resilienced replicas with a
// consistent-hash router: canonical job keys map stably onto replicas
// (so each replica's result cache concentrates on its own key range),
// backpressure is explicit at both layers (the router bounds its own
// in-flight forwards; replica 429s pass through untouched), and replica
// drain or membership change re-shards the ring instead of failing
// requests.
package router

import (
	"fmt"
	"sort"
)

// fnv64a hashes a key with FNV-1a-64 and finishes with the splitmix64
// mixer. Raw FNV clusters badly when inputs share long prefixes (vnode
// labels differ only in their numeric suffix), which skews ring
// ownership by 9:1; the finalizer spreads positions uniformly around
// the circle.
func fnv64a(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// point is one virtual node on the ring.
type point struct {
	hash   uint64
	member int // index into ring.members
}

// ring is an immutable consistent-hash ring over the currently-routable
// replicas. Routers swap whole rings on membership change; requests in
// flight keep the ring they looked up, so a re-shard never tears a
// lookup.
type ring struct {
	members []string
	points  []point
}

// buildRing places vnodes virtual nodes per member. Members are sorted
// first so the ring layout depends only on the membership set, not on
// configuration order.
func buildRing(members []string, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = 1
	}
	ms := make([]string, len(members))
	copy(ms, members)
	sort.Strings(ms)
	r := &ring{members: ms, points: make([]point, 0, len(ms)*vnodes)}
	for i, m := range ms {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: fnv64a(fmt.Sprintf("%s#%d", m, v)), member: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].member < r.points[b].member
	})
	return r
}

// lookup returns the member owning hash h: the first virtual node at or
// clockwise after h. Empty rings return "".
func (r *ring) lookup(h uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member]
}

// nth returns member i modulo the alive set — the round-robin spread
// for jobs with no canonical key (sleep diagnostics).
func (r *ring) nth(i uint64) string {
	if len(r.members) == 0 {
		return ""
	}
	return r.members[i%uint64(len(r.members))]
}
