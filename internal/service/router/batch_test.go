package router

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"resilience/internal/chaos"
	"resilience/internal/service"
)

func postBatch(t *testing.T, base string, reqs []service.JobRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(reqs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestBatchByteIdentity pins the /batch contract: every item's body is
// byte-identical to the body a direct /solve of that request returns,
// invalid items fail alone with a 400 without sinking the batch, and
// item order is preserved.
func TestBatchByteIdentity(t *testing.T) {
	_, r1 := replica(t, service.Config{Workers: 2})
	_, r2 := replica(t, service.Config{Workers: 2})
	_, rts := boot(t, Config{}, r1.URL, r2.URL)

	reqs := []service.JobRequest{
		{Scenario: "-grid 6 -ranks 2 -scheme LI -seed 3"},
		{Scenario: "not a scenario"},
		{Scenario: "-grid 7 -ranks 3 -scheme CR-M -ckpt 4 -seed 9 -faults SNF@5:r1", Verdict: true},
	}
	code, body := postBatch(t, rts.URL, reqs)
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %s", code, body)
	}
	var items []struct {
		Code int             `json:"code"`
		Body json.RawMessage `json:"body"`
	}
	if err := json.Unmarshal(body, &items); err != nil {
		t.Fatalf("batch response does not parse: %v: %s", err, body)
	}
	if len(items) != len(reqs) {
		t.Fatalf("%d items for %d requests", len(items), len(reqs))
	}
	if items[1].Code != http.StatusBadRequest {
		t.Fatalf("invalid item code = %d, want 400", items[1].Code)
	}
	for _, i := range []int{0, 2} {
		if items[i].Code != http.StatusOK {
			t.Fatalf("item %d code = %d: %s", i, items[i].Code, items[i].Body)
		}
		soloCode, solo, _ := post(t, rts.URL, reqs[i])
		if soloCode != http.StatusOK {
			t.Fatalf("solo item %d status %d", i, soloCode)
		}
		if !bytes.Equal([]byte(items[i].Body), solo) {
			t.Fatalf("item %d batch body differs from direct /solve\nbatch: %s\nsolo:  %s", i, items[i].Body, solo)
		}
	}
}

// TestBatchCampaignCounters pins the campaign progress surface: verdict
// jobs routed through /batch move campaign_jobs_total and
// campaign_verdicts_total on /metrics, and deliberately broken verdicts
// move campaign_fail_total.
func TestBatchCampaignCounters(t *testing.T) {
	_, r1 := replica(t, service.Config{Workers: 2})
	_, rts := boot(t, Config{}, r1.URL)

	reqs := []service.JobRequest{
		{Scenario: "-grid 6 -ranks 2 -scheme LI -seed 3", Verdict: true},
		{Scenario: "-grid 7 -ranks 3 -scheme CR-M -ckpt 4 -seed 9 -faults SNF@5:r1",
			Verdict: true, BreakInvariant: chaos.InvConvergence},
		{Scenario: "-grid 6 -ranks 2 -scheme LI -seed 4"}, // not a verdict job
	}
	code, body := postBatch(t, rts.URL, reqs)
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %s", code, body)
	}

	resp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := map[string]string{
		"resilience_router_campaign_jobs_total":     "2",
		"resilience_router_campaign_verdicts_total": "2",
		"resilience_router_campaign_fail_total":     "1",
	}
	for name, val := range want {
		found := false
		for _, line := range strings.Split(string(metrics), "\n") {
			if line == name+" "+val {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("metrics missing %q = %s:\n%s", name, val, metrics)
		}
	}
}

// TestBatchRejectsMalformed pins batch-level admission errors.
func TestBatchRejectsMalformed(t *testing.T) {
	_, r1 := replica(t, service.Config{Workers: 1})
	_, rts := boot(t, Config{}, r1.URL)

	if code, _ := postBatch(t, rts.URL, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400", code)
	}
	resp, err := http.Post(rts.URL+"/batch", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed batch status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(rts.URL + "/batch")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /batch status = %d, want 405", resp.StatusCode)
	}
	big := make([]service.JobRequest, maxBatchItems+1)
	for i := range big {
		big[i] = service.JobRequest{SleepMs: 1}
	}
	if code, _ := postBatch(t, rts.URL, big); code != http.StatusBadRequest {
		t.Fatalf("oversized batch status = %d, want 400", code)
	}
}
