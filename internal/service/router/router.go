package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"resilience/internal/service"
	"resilience/internal/telemetry"
)

// Config sizes the router. Replicas is the only required field.
type Config struct {
	// Replicas is the initial replica base URLs (http://host:port).
	Replicas []string
	// VNodes is the virtual nodes per replica on the hash ring
	// (<=0: 64). More vnodes spread keys more evenly; fewer move less
	// data on membership change.
	VNodes int
	// MaxInflight bounds concurrently forwarded requests — the router's
	// own admission queue, mirroring the replica discipline: beyond it
	// the router answers 429 + Retry-After instead of stacking
	// connections (<=0: 256).
	MaxInflight int
	// RetryAfter is the hint sent with router-side 429s (<=0: 1 s).
	// Replica 429s carry the replica's own hint through untouched.
	RetryAfter time.Duration
	// HealthEvery is the background health-probe interval (0: 2 s;
	// negative: no background probing — failures are still detected on
	// forward errors).
	HealthEvery time.Duration
	// ForwardTimeout caps one forwarded solve round-trip (<=0: 150 s —
	// above the replicas' default 120 s job timeout).
	ForwardTimeout time.Duration
	// BatchConcurrency bounds how many items of one /batch request are
	// forwarded at once (<=0: 8). A batch occupies a single router
	// admission slot however large it is; this knob is the router's own
	// fan-out parallelism, so a chaos campaign saturates replicas at a
	// controlled rate instead of admission-slot granularity.
	BatchConcurrency int
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.HealthEvery == 0 {
		c.HealthEvery = 2 * time.Second
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 150 * time.Second
	}
	if c.BatchConcurrency <= 0 {
		c.BatchConcurrency = 8
	}
	return c
}

// member is one configured replica and its routability.
type member struct {
	url     string
	alive   bool
	lastErr string
}

// Router consistent-hash-routes solve jobs across resilienced replicas.
// It implements http.Handler with the same endpoint surface as a
// replica (/solve, /healthz, /metrics) plus /replicas for membership.
type Router struct {
	cfg    Config
	mux    *http.ServeMux
	client *http.Client
	probe  *http.Client

	// admitMu serializes admission against the drain flip, exactly like
	// the replica server's discipline.
	admitMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup
	slots    chan struct{}

	// mu guards membership; the assembled ring is swapped atomically so
	// routing reads never block on membership churn.
	mu      sync.Mutex
	members map[string]*member
	ring    atomic.Pointer[ring]

	rr atomic.Uint64 // round-robin cursor for keyless jobs

	stopHealth chan struct{}
	healthDone chan struct{}

	// The telemetry plane: counters and the forward-latency histogram
	// live in reg; the /metrics collector scrapes every replica's
	// /telemetry snapshot and bucket-merges the histograms into true
	// fleet-wide quantiles. tracer retains recent wall-clock spans;
	// flight is the process crash flight recorder.
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	flight *telemetry.FlightRecorder

	routed    *telemetry.Counter
	rejected  *telemetry.Counter
	rerouted  *telemetry.Counter
	noReplica *telemetry.Counter
	hForward  *telemetry.HistogramVec // forward round-trip wall seconds

	// Campaign progress: verdict-bearing jobs forwarded for the chaos
	// fleet, how many came back as verdicts, and how many of those were
	// invariant violations. On /metrics and /telemetry like every other
	// registry entry, so `watch curl /metrics` is the campaign dashboard.
	campaignJobs     *telemetry.Counter
	campaignVerdicts *telemetry.Counter
	campaignFail     *telemetry.Counter

	perMu     sync.Mutex
	perRouted map[string]int64
}

// New builds a Router and starts its health prober (unless disabled).
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("router: no replicas configured")
	}
	rt := &Router{
		cfg:        cfg,
		client:     &http.Client{Timeout: cfg.ForwardTimeout},
		probe:      &http.Client{Timeout: 2 * time.Second},
		slots:      make(chan struct{}, cfg.MaxInflight),
		members:    make(map[string]*member),
		stopHealth: make(chan struct{}),
		healthDone: make(chan struct{}),
		perRouted:  make(map[string]int64),
		tracer:     telemetry.NewTracer(4096),
		flight:     telemetry.DefaultFlight(),
	}
	for _, u := range cfg.Replicas {
		u = strings.TrimRight(u, "/")
		if u == "" {
			return nil, errors.New("router: empty replica URL")
		}
		rt.members[u] = &member{url: u, alive: true}
	}
	rt.reshard()
	rt.initMetrics()
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/solve", rt.handleSolve)
	rt.mux.HandleFunc("/batch", rt.handleBatch)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/replicas", rt.handleReplicas)
	rt.mux.HandleFunc("/telemetry", rt.handleTelemetry)
	rt.mux.Handle("/debug/flightrecorder", rt.flight)
	if cfg.HealthEvery > 0 {
		go rt.healthLoop()
	} else {
		close(rt.healthDone)
	}
	return rt, nil
}

// initMetrics builds the registry. Registration order is the exposition
// order, kept compatible with the hand-rolled /metrics this replaces
// (resilience_router_routed_total, ..._replica_up{replica=...}, the
// fleet cache counters); the fleet-quantile lines are new.
func (rt *Router) initMetrics() {
	r := telemetry.NewRegistry("resilience_router")
	rt.reg = r
	rt.routed = r.Counter("routed_total")
	rt.rejected = r.Counter("rejected_total")
	rt.rerouted = r.Counter("rerouted_total")
	rt.noReplica = r.Counter("no_replica_total")
	rt.campaignJobs = r.Counter("campaign_jobs_total")
	rt.campaignVerdicts = r.Counter("campaign_verdicts_total")
	rt.campaignFail = r.Counter("campaign_fail_total")
	r.GaugeFunc("max_inflight", func() float64 { return float64(rt.cfg.MaxInflight) })
	r.GaugeFunc("replicas", func() float64 { return float64(len(rt.Members())) })
	r.GaugeFunc("replicas_alive", func() float64 {
		n := 0
		for _, m := range rt.Members() {
			if m.Alive {
				n++
			}
		}
		return float64(n)
	})
	rt.hForward = r.HistogramVec("forward_seconds", "")
	r.Collector(rt.exposeFleet)
}

// exposeFleet renders the per-replica rows and the fleet view: cache
// counters summed from the legacy text scrape, plus true fleet-wide
// latency and energy quantiles from exact bucket-merges of every alive
// replica's /telemetry snapshot. Member order is URL-sorted, so the
// output is deterministic for a fixed fleet state.
func (rt *Router) exposeFleet(e *telemetry.Expo) {
	members := rt.Members()
	rt.perMu.Lock()
	routedCopy := make(map[string]int64, len(rt.perRouted))
	for k, v := range rt.perRouted {
		routedCopy[k] = v
	}
	rt.perMu.Unlock()

	var hits, misses float64
	var fleet telemetry.Snapshot
	scraped := 0
	for _, m := range members {
		up := int64(0)
		if m.Alive {
			up = 1
		}
		e.IntL("replica_up", "replica", m.URL, up)
		e.IntL("replica_routed_total", "replica", m.URL, routedCopy[m.URL])
		if !m.Alive {
			continue
		}
		if st := rt.scrapeReplica(m.URL); st.scraped {
			e.LineL("replica_queue_depth", "replica", m.URL, st.queueDepth)
			hits += st.hits
			misses += st.misses
		}
		if snap, ok := rt.scrapeTelemetry(m.URL); ok {
			telemetry.Merge(&fleet, snap)
			scraped++
		}
	}
	e.Int("cache_hits_total", int64(hits))
	e.Int("cache_misses_total", int64(misses))
	ratio := 0.0
	if hits+misses > 0 {
		ratio = hits / (hits + misses)
	}
	e.Line("cache_hit_ratio", ratio)

	// Fleet quantiles. Because every histogram shares one fixed bucket
	// layout, the merged quantiles are the true quantiles of the pooled
	// sample stream — not an average of per-replica quantiles.
	e.Int("fleet_replicas_scraped", int64(scraped))
	wall := fleet.Histogram("solve_wall_seconds")
	e.Int("fleet_solve_wall_seconds_count", int64(wall.Count))
	e.Line("fleet_solve_wall_seconds_p50", wall.Quantile(0.50))
	e.Line("fleet_solve_wall_seconds_p95", wall.Quantile(0.95))
	e.Line("fleet_solve_wall_seconds_p99", wall.Quantile(0.99))
	for _, h := range fleet.HistogramsNamed("solve_energy_joules") {
		e.IntL("fleet_solve_energy_joules_count", "scheme", h.Label, int64(h.Count))
		e.LineL("fleet_solve_energy_joules_p50", "scheme", h.Label, h.Quantile(0.50))
		e.LineL("fleet_solve_energy_joules_p95", "scheme", h.Label, h.Quantile(0.95))
		e.LineL("fleet_solve_energy_joules_p99", "scheme", h.Label, h.Quantile(0.99))
	}
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Shutdown stops admission, waits for in-flight forwards, and stops the
// health prober. The replicas drain on their own schedule.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.admitMu.Lock()
	already := rt.draining
	rt.draining = true
	rt.admitMu.Unlock()
	if already {
		return errors.New("router: shutdown called twice")
	}
	select {
	case <-rt.stopHealth:
	default:
		close(rt.stopHealth)
	}
	drained := make(chan struct{})
	go func() {
		rt.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		return fmt.Errorf("router: drain interrupted: %w", ctx.Err())
	}
	<-rt.healthDone
	rt.client.CloseIdleConnections()
	rt.probe.CloseIdleConnections()
	return nil
}

// reshard rebuilds the ring from the currently-alive membership.
// Callers must hold mu or be inside New.
func (rt *Router) reshard() {
	alive := make([]string, 0, len(rt.members))
	for _, m := range rt.members {
		if m.alive {
			alive = append(alive, m.url)
		}
	}
	rt.ring.Store(buildRing(alive, rt.cfg.VNodes))
}

// markDown records a forward failure against url and re-shards. Reports
// whether the membership actually changed (false if already down or
// since removed).
func (rt *Router) markDown(url, reason string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	m, ok := rt.members[url]
	if !ok || !m.alive {
		return false
	}
	m.alive = false
	m.lastErr = reason
	rt.reshard()
	return true
}

// SetMembers applies adds and removals and re-shards. Added replicas
// start alive (the prober or first forward will correct that within one
// cycle if wrong).
func (rt *Router) SetMembers(add, remove []string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, u := range remove {
		delete(rt.members, strings.TrimRight(u, "/"))
	}
	for _, u := range add {
		u = strings.TrimRight(u, "/")
		if u == "" {
			continue
		}
		if _, ok := rt.members[u]; !ok {
			rt.members[u] = &member{url: u, alive: true}
		}
	}
	rt.reshard()
}

// Members returns the membership snapshot, sorted by URL.
func (rt *Router) Members() []struct {
	URL   string
	Alive bool
} {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]struct {
		URL   string
		Alive bool
	}, 0, len(rt.members))
	for _, m := range rt.members {
		out = append(out, struct {
			URL   string
			Alive bool
		}{m.url, m.alive})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// healthLoop probes /healthz on every member: an OK answer revives it,
// anything else (including a replica's draining 503) takes it off the
// ring so new keys re-shard away before forwards start failing.
func (rt *Router) healthLoop() {
	defer close(rt.healthDone)
	tick := time.NewTicker(rt.cfg.HealthEvery)
	defer tick.Stop()
	for {
		select {
		case <-rt.stopHealth:
			return
		case <-tick.C:
		}
		rt.mu.Lock()
		urls := make([]string, 0, len(rt.members))
		for u := range rt.members {
			urls = append(urls, u)
		}
		rt.mu.Unlock()
		changed := false
		for _, u := range urls {
			alive, reason := rt.probeOne(u)
			rt.mu.Lock()
			if m, ok := rt.members[u]; ok && m.alive != alive {
				m.alive = alive
				m.lastErr = reason
				changed = true
			}
			rt.mu.Unlock()
		}
		if changed {
			rt.mu.Lock()
			rt.reshard()
			rt.mu.Unlock()
		}
	}
}

func (rt *Router) probeOne(url string) (alive bool, reason string) {
	resp, err := rt.probe.Get(url + "/healthz")
	if err != nil {
		return false, err.Error()
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Sprintf("healthz status %d", resp.StatusCode)
	}
	return true, ""
}

func (rt *Router) handleSolve(w http.ResponseWriter, r *http.Request) {
	// Mint or propagate the request ID: the router is usually the fleet
	// entry point, so IDs are born here (or at resilience-load) and
	// forwarded to the replica, which echoes them back.
	reqID := r.Header.Get("X-Request-Id")
	if reqID == "" {
		reqID = telemetry.NewRequestID()
	}
	w.Header().Set("X-Request-Id", reqID)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req service.JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Router-side admission, mirroring the replica queue discipline:
	// explicit 429 + Retry-After, never an implicitly stalled client.
	rt.admitMu.RLock()
	if rt.draining {
		rt.admitMu.RUnlock()
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	select {
	case rt.slots <- struct{}{}:
	default:
		rt.admitMu.RUnlock()
		rt.rejected.Inc()
		rt.flight.Note("router-rejected", reqID, "router saturated")
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(rt.cfg.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, "router saturated")
		return
	}
	rt.inflight.Add(1)
	rt.admitMu.RUnlock()
	defer func() {
		<-rt.slots
		rt.inflight.Done()
	}()

	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	rt.writeReply(w, rt.forward(req, body, reqID))
}

// reply is one routed job's final answer — status, pass-through headers,
// body — captured as a value rather than written to a ResponseWriter, so
// /solve and /batch share the routing path byte-for-byte.
type reply struct {
	code   int
	header http.Header
	body   []byte
}

// errReply synthesizes a router-side JSON error reply.
func errReply(code int, msg string) reply {
	body, _ := json.Marshal(map[string]string{"error": msg})
	h := http.Header{}
	h.Set("Content-Type", "application/json")
	return reply{code: code, header: h, body: body}
}

func (rt *Router) writeReply(w http.ResponseWriter, rep reply) {
	for k := range rep.header {
		w.Header().Set(k, rep.header.Get(k))
	}
	w.WriteHeader(rep.code)
	w.Write(rep.body)
}

// failVerdictMarker matches a verdict-bearing job result whose verdict
// line carries status "fail". Matching bytes instead of re-decoding the
// body keeps the campaign counters off the forwarding hot path.
var failVerdictMarker = []byte(`"verdict":"v1 status=fail`)

// forward routes one job to its replica and folds the outcome into the
// campaign counters when the job carries a verdict. Callers must hold a
// router admission slot.
func (rt *Router) forward(req service.JobRequest, body []byte, reqID string) reply {
	rep := rt.routeOne(req, body, reqID)
	if req.Verdict {
		rt.campaignJobs.Inc()
		if rep.code == http.StatusOK {
			rt.campaignVerdicts.Inc()
			if bytes.Contains(rep.body, failVerdictMarker) {
				rt.campaignFail.Inc()
			}
		}
	}
	return rep
}

// routeOne routes one job to its replica, failing over (and re-sharding)
// past dead replicas. Responses — including replica 429s with their
// Retry-After hints and X-Cache markers — pass through byte-identical.
func (rt *Router) routeOne(req service.JobRequest, body []byte, reqID string) reply {
	key, cacheable, err := service.CanonicalKey(req)
	if err != nil {
		return errReply(http.StatusBadRequest, err.Error())
	}

	fwd := rt.tracer.Start("forward", reqID)
	tried := 0
	for {
		rg := rt.ring.Load()
		var target string
		if cacheable {
			target = rg.lookup(fnv64a(key))
		} else {
			target = rg.nth(rt.rr.Add(1) - 1)
		}
		if target == "" {
			fwd.End()
			rt.noReplica.Inc()
			rt.flight.Crash("no-replica", reqID, "no replica available")
			rep := errReply(http.StatusServiceUnavailable, "no replica available")
			rep.header.Set("Retry-After", strconv.Itoa(retryAfterSeconds(rt.cfg.RetryAfter)))
			return rep
		}
		resp, err := rt.post(target, body, reqID)
		if err != nil {
			// Transport failure: take the replica off the ring and retry
			// on the re-sharded ring. Bound attempts by membership size so
			// a fully-dead fleet terminates.
			tried++
			changed := rt.markDown(target, err.Error())
			if changed {
				rt.flight.Note("replica-down", reqID, target+": "+err.Error())
			}
			if !changed && tried > len(rg.members)+1 {
				fwd.End()
				rt.noReplica.Inc()
				rt.flight.Crash("all-replicas-unreachable", reqID, err.Error())
				return errReply(http.StatusBadGateway, "all replicas unreachable: "+err.Error())
			}
			rt.rerouted.Inc()
			continue
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			tried++
			if rt.markDown(target, err.Error()) {
				rt.flight.Note("replica-down", reqID, target+": "+err.Error())
			}
			if tried > len(rg.members)+1 {
				fwd.End()
				rt.flight.Crash("replica-torn", reqID, target+": "+err.Error())
				return errReply(http.StatusBadGateway, "replica response torn: "+err.Error())
			}
			rt.rerouted.Inc()
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// A draining (or just-booted) replica: re-shard away and let
			// another replica take the key. The drained replica's cache
			// hits are lost, not its correctness.
			tried++
			if rt.markDown(target, "replica draining") && tried <= len(rg.members)+1 {
				rt.flight.Note("replica-down", reqID, target+": draining")
				rt.rerouted.Inc()
				continue
			}
			// Nothing changed (already down) or attempts exhausted: pass
			// the 503 through.
		}
		rt.hForward.With("").Record(fwd.End().Seconds())
		rt.routed.Inc()
		rt.perMu.Lock()
		rt.perRouted[target]++
		rt.perMu.Unlock()
		if resp.StatusCode >= 500 {
			rt.flight.Crash("replica-5xx", reqID,
				fmt.Sprintf("%s: status %d: %s", target, resp.StatusCode, respBody))
		}
		h := http.Header{}
		for _, k := range []string{"Content-Type", "Retry-After", "X-Cache", "X-Request-Id"} {
			if v := resp.Header.Get(k); v != "" {
				h.Set(k, v)
			}
		}
		return reply{code: resp.StatusCode, header: h, body: respBody}
	}
}

// maxBatchItems caps one /batch request. A chaos fleet shards campaigns
// into batches far below this; the cap exists so a single request can
// never hold an admission slot for an unbounded amount of work.
const maxBatchItems = 1024

// batchItem is one /batch element's outcome. Body carries the replica's
// (or the router's error) JSON verbatim — embedding it as a RawMessage
// keeps each item byte-identical to what a direct /solve would have
// returned, which is what the fleet's determinism contract rides on.
type batchItem struct {
	Code int             `json:"code"`
	Body json.RawMessage `json:"body"`
}

// handleBatch fans one campaign batch out across the fleet: a JSON array
// of job requests in, an aligned array of {code, body} items out. The
// whole batch occupies ONE router admission slot — the fan-out runs at
// Config.BatchConcurrency inside it — so a million-scenario campaign
// contends with interactive /solve traffic as a handful of slots, not a
// slot per scenario. Per-item failures (including replica 429s) land in
// that item's code; the batch itself only fails for malformed bodies or
// router saturation.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	reqID := r.Header.Get("X-Request-Id")
	if reqID == "" {
		reqID = telemetry.NewRequestID()
	}
	w.Header().Set("X-Request-Id", reqID)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var reqs []service.JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&reqs); err != nil {
		writeError(w, http.StatusBadRequest, "bad batch body: "+err.Error())
		return
	}
	if len(reqs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(reqs) > maxBatchItems {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds the %d-item cap", len(reqs), maxBatchItems))
		return
	}

	rt.admitMu.RLock()
	if rt.draining {
		rt.admitMu.RUnlock()
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	select {
	case rt.slots <- struct{}{}:
	default:
		rt.admitMu.RUnlock()
		rt.rejected.Inc()
		rt.flight.Note("router-rejected", reqID, "router saturated (batch)")
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(rt.cfg.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, "router saturated")
		return
	}
	rt.inflight.Add(1)
	rt.admitMu.RUnlock()
	defer func() {
		<-rt.slots
		rt.inflight.Done()
	}()

	items := make([]batchItem, len(reqs))
	sem := make(chan struct{}, rt.cfg.BatchConcurrency)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			items[i] = rt.batchOne(reqs[i], fmt.Sprintf("%s-%d", reqID, i))
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, items)
}

// batchOne validates and routes one batch element.
func (rt *Router) batchOne(req service.JobRequest, reqID string) batchItem {
	if err := req.Validate(); err != nil {
		rep := errReply(http.StatusBadRequest, err.Error())
		return batchItem{Code: rep.code, Body: rep.body}
	}
	body, err := json.Marshal(req)
	if err != nil {
		rep := errReply(http.StatusInternalServerError, err.Error())
		return batchItem{Code: rep.code, Body: rep.body}
	}
	rep := rt.forward(req, body, reqID)
	if !json.Valid(rep.body) {
		// A replica answered with something that is not JSON (a torn body,
		// an interposed proxy page). Wrap it so the batch document itself
		// stays parseable.
		wrapped, _ := json.Marshal(map[string]string{"error": string(rep.body)})
		return batchItem{Code: rep.code, Body: wrapped}
	}
	return batchItem{Code: rep.code, Body: rep.body}
}

// post sends one forwarded solve with the request ID attached, so the
// replica's spans and flight-recorder entries share the router's ID.
func (rt *Router) post(target string, body []byte, reqID string) (*http.Response, error) {
	hr, err := http.NewRequest(http.MethodPost, target+"/solve", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set("X-Request-Id", reqID)
	return rt.client.Do(hr)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.admitMu.RLock()
	draining := rt.draining
	rt.admitMu.RUnlock()
	status, code := "ok", http.StatusOK
	if draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	members := rt.Members()
	alive := 0
	rep := make(map[string]bool, len(members))
	for _, m := range members {
		rep[m.URL] = m.Alive
		if m.Alive {
			alive++
		}
	}
	if alive == 0 && code == http.StatusOK {
		status, code = "no-replicas", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"replicas":       rep,
		"replicas_alive": alive,
		"max_inflight":   rt.cfg.MaxInflight,
	})
}

// handleReplicas is the membership API: GET lists, POST applies
// {"add": [...], "remove": [...]} and re-shards the ring.
func (rt *Router) handleReplicas(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		var chg struct {
			Add    []string `json:"add"`
			Remove []string `json:"remove"`
		}
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&chg); err != nil {
			writeError(w, http.StatusBadRequest, "bad membership body: "+err.Error())
			return
		}
		rt.SetMembers(chg.Add, chg.Remove)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST")
		return
	}
	members := rt.Members()
	out := make([]map[string]any, 0, len(members))
	for _, m := range members {
		out = append(out, map[string]any{"url": m.URL, "alive": m.Alive})
	}
	writeJSON(w, http.StatusOK, map[string]any{"replicas": out})
}

// replicaStats is what /metrics scrapes out of one replica.
type replicaStats struct {
	queueDepth float64
	hits       float64
	misses     float64
	scraped    bool
}

// scrapeReplica pulls a replica's /metrics and extracts queue depth and
// cache counters. Failures leave scraped false — the router's metrics
// must render even with a dead replica.
func (rt *Router) scrapeReplica(url string) replicaStats {
	var st replicaStats
	resp, err := rt.probe.Get(url + "/metrics")
	if err != nil {
		return st
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return st
	}
	st.queueDepth = metricValue(body, "resilienced_queue_depth")
	st.hits = metricValue(body, "resilienced_cache_hits_total")
	st.misses = metricValue(body, "resilienced_cache_misses_total")
	st.scraped = true
	return st
}

// metricValue extracts an unlabeled metric's value from Prometheus text
// (0 when absent).
func metricValue(body []byte, name string) float64 {
	for _, line := range strings.Split(string(body), "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err == nil {
			return v
		}
	}
	return 0
}

// scrapeTelemetry pulls one replica's /telemetry JSON snapshot for the
// fleet bucket-merge. Failures report ok=false — the fleet view must
// render even with a dead replica.
func (rt *Router) scrapeTelemetry(url string) (telemetry.Snapshot, bool) {
	var snap telemetry.Snapshot
	resp, err := rt.probe.Get(url + "/telemetry")
	if err != nil {
		return snap, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return snap, false
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, false
	}
	return snap, true
}

// handleMetrics renders the registry — router counters, the forward
// latency histogram, per-replica rows, and the fleet-merged quantiles —
// in the Prometheus text format.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rt.reg.WritePrometheus(w)
}

// handleTelemetry serves the fleet-merged snapshot: the router's own
// registry folded together with every alive replica's /telemetry
// document. Because histograms share one bucket layout, a client (or a
// router-of-routers) can merge these snapshots again without losing
// exactness.
func (rt *Router) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	fleet := rt.reg.Snapshot()
	for _, m := range rt.Members() {
		if !m.Alive {
			continue
		}
		if snap, ok := rt.scrapeTelemetry(m.URL); ok {
			telemetry.Merge(&fleet, snap)
		}
	}
	writeJSON(w, http.StatusOK, fleet)
}

func retryAfterSeconds(d time.Duration) int {
	n := int(math.Ceil(d.Seconds()))
	if n < 1 {
		n = 1
	}
	return n
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}
