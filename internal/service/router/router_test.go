package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"resilience/internal/service"
)

// replica boots one real in-process solve service behind httptest.
func replica(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	srv := service.New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// boot assembles a router over the given replica URLs with background
// health probing disabled (tests drive failure detection through
// forwards, deterministically).
func boot(t *testing.T, cfg Config, urls ...string) (*Router, *httptest.Server) {
	t.Helper()
	cfg.Replicas = urls
	if cfg.HealthEvery == 0 {
		cfg.HealthEvery = -1
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	return rt, ts
}

func post(t *testing.T, base string, req service.JobRequest) (int, []byte, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header
}

// TestRingStability: removing one member must move only the keys that
// member owned — every other key keeps its replica (that is the whole
// point of consistent hashing: a re-shard does not flush every cache).
func TestRingStability(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c"}
	full := buildRing(members, 64)
	// Configuration order must not matter.
	shuffled := buildRing([]string{"http://c", "http://a", "http://b"}, 64)
	without := buildRing([]string{"http://a", "http://c"}, 64)

	moved, kept := 0, 0
	for i := 0; i < 1000; i++ {
		h := fnv64a(fmt.Sprintf("key-%d", i))
		was := full.lookup(h)
		if got := shuffled.lookup(h); got != was {
			t.Fatalf("ring depends on member order: key %d %q vs %q", i, was, got)
		}
		now := without.lookup(h)
		if was == "http://b" {
			moved++
			continue
		}
		if now != was {
			t.Fatalf("key %d moved from surviving member %q to %q", i, was, now)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
	if empty := buildRing(nil, 8); empty.lookup(42) != "" || empty.nth(3) != "" {
		t.Fatal("empty ring did not return empty member")
	}
}

// TestRouterByteIdentityAndAffinity: responses proxied through the
// router are byte-identical to the local oracle, and a repeated key
// lands on the same replica every time (second request is a cache hit).
func TestRouterByteIdentityAndAffinity(t *testing.T) {
	_, r1 := replica(t, service.Config{Workers: 2})
	_, r2 := replica(t, service.Config{Workers: 2})
	_, rts := boot(t, Config{}, r1.URL, r2.URL)

	jobs := []service.JobRequest{
		{Scenario: "-grid 8 -ranks 4 -scheme LI -seed 3"},
		{Scenario: "-grid 8 -ranks 4 -scheme CR-M -ckpt 5 -seed 7 -faults SWO@5:r1"},
		{Experiment: "tab3"},
	}
	for _, req := range jobs {
		res, _, err := service.RunJob(context.Background(), req)
		if err != nil {
			t.Fatalf("oracle %+v: %v", req, err)
		}
		want, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		code, body, hdr := post(t, rts.URL, req)
		if code != http.StatusOK {
			t.Fatalf("%+v: status %d: %s", req, code, body)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("%+v: proxied body differs from oracle:\n got %s\nwant %s", req, body, want)
		}
		if xc := hdr.Get("X-Cache"); xc != "miss" {
			t.Fatalf("first request X-Cache %q, want miss", xc)
		}
		code2, body2, hdr2 := post(t, rts.URL, req)
		if code2 != http.StatusOK || !bytes.Equal(body2, want) {
			t.Fatalf("%+v: repeat differs (status %d)", req, code2)
		}
		if xc := hdr2.Get("X-Cache"); xc != "hit" {
			t.Fatalf("repeat X-Cache %q, want hit — key did not route to the same replica", xc)
		}
	}
}

// TestRouterSpreadsKeys: with enough distinct keys both replicas see
// work — the ring actually shards instead of collapsing onto one member.
func TestRouterSpreadsKeys(t *testing.T) {
	s1, r1 := replica(t, service.Config{Workers: 2})
	s2, r2 := replica(t, service.Config{Workers: 2})
	_, rts := boot(t, Config{}, r1.URL, r2.URL)

	for seed := 1; seed <= 12; seed++ {
		req := service.JobRequest{Scenario: fmt.Sprintf("-grid 8 -ranks 4 -seed %d", seed)}
		if code, body, _ := post(t, rts.URL, req); code != http.StatusOK {
			t.Fatalf("seed %d: %d %s", seed, code, body)
		}
	}
	a, b := s1.Stats().Admitted, s2.Stats().Admitted
	if a == 0 || b == 0 {
		t.Fatalf("keys did not spread: replica admissions %d / %d", a, b)
	}
	if a+b != 12 {
		t.Fatalf("admissions %d+%d, want 12 total", a, b)
	}
}

// TestRouterForwards429: a saturated replica's 429 — body, status, and
// Retry-After hint — passes through the router untouched.
func TestRouterForwards429(t *testing.T) {
	s1, r1 := replica(t, service.Config{Workers: 1, QueueCap: 1, RetryAfter: 2 * time.Second})
	_, rts := boot(t, Config{}, r1.URL)

	// Fill the worker and the single queue slot with sleeps, and wait
	// until the replica's counters prove both are occupied before
	// probing — otherwise the probe can race past the fillers.
	release := make(chan struct{})
	for i := 0; i < 2; i++ {
		go func() {
			post(t, rts.URL, service.JobRequest{SleepMs: 800})
			release <- struct{}{}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s1.Stats().Admitted < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("fillers never saturated the replica: %+v", s1.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	code, body, hdr := post(t, rts.URL, service.JobRequest{SleepMs: 1})
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated replica answered %d through the router: %s", code, body)
	}
	if got := hdr.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After %q not forwarded (want 2)", got)
	}
	if !strings.Contains(string(body), "queue full") {
		t.Fatalf("429 body not the replica's: %s", body)
	}
	<-release
	<-release
}

// TestRouterSaturation: the router's own admission bound answers 429
// with its configured Retry-After once MaxInflight forwards are parked.
func TestRouterSaturation(t *testing.T) {
	_, r1 := replica(t, service.Config{Workers: 1, QueueCap: 4})
	rt, rts := boot(t, Config{MaxInflight: 1, RetryAfter: 3 * time.Second}, r1.URL)

	done := make(chan struct{})
	go func() {
		post(t, rts.URL, service.JobRequest{SleepMs: 800})
		close(done)
	}()
	// Wait until the filler actually holds the single in-flight slot
	// before probing, so the probe cannot race in first.
	deadline := time.Now().Add(5 * time.Second)
	for len(rt.slots) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("filler never took the in-flight slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	code, body, hdr := post(t, rts.URL, service.JobRequest{SleepMs: 1})
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated router answered %d: %s", code, body)
	}
	if got := hdr.Get("Retry-After"); got != "3" {
		t.Fatalf("router Retry-After %q, want 3", got)
	}
	if !strings.Contains(string(body), "router saturated") {
		t.Fatalf("unexpected 429 body: %s", body)
	}
	<-done
	if rt.rejected.Value() == 0 {
		t.Fatal("router rejection counter never moved")
	}
}

// TestRouterFailover: killing a replica mid-fleet re-shards the ring on
// the first failed forward; every request still succeeds and the dead
// member is marked down.
func TestRouterFailover(t *testing.T) {
	_, r1 := replica(t, service.Config{Workers: 2})
	s2 := service.New(service.Config{Workers: 2})
	r2 := httptest.NewServer(s2)
	rt, rts := boot(t, Config{}, r1.URL, r2.URL)

	r2.Close() // hard replica death: connections refused from here on

	for seed := 1; seed <= 10; seed++ {
		req := service.JobRequest{Scenario: fmt.Sprintf("-grid 8 -ranks 4 -seed %d", seed)}
		res, _, err := service.RunJob(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(res)
		code, body, _ := post(t, rts.URL, req)
		if code != http.StatusOK || !bytes.Equal(body, want) {
			t.Fatalf("seed %d after replica death: %d %s", seed, code, body)
		}
	}
	alive := 0
	for _, m := range rt.Members() {
		if m.Alive {
			alive++
			if m.URL != r1.URL {
				t.Fatalf("dead replica %q still alive in membership", m.URL)
			}
		}
	}
	if alive != 1 {
		t.Fatalf("alive members %d, want 1", alive)
	}
	if rt.rerouted.Value() == 0 {
		t.Fatal("failover never rerouted")
	}
}

// TestRouterAllDead: with every replica unreachable the router answers
// an explicit error instead of spinning.
func TestRouterAllDead(t *testing.T) {
	r1 := httptest.NewServer(service.New(service.Config{Workers: 1}))
	url := r1.URL
	r1.Close()
	_, rts := boot(t, Config{}, url)

	code, body, _ := post(t, rts.URL, service.JobRequest{Scenario: "-grid 8 -seed 1"})
	if code != http.StatusServiceUnavailable && code != http.StatusBadGateway {
		t.Fatalf("dead fleet answered %d: %s", code, body)
	}
}

// TestRouterMembershipAPI: POST /replicas adds and removes members and
// re-shards; GET lists the current set.
func TestRouterMembershipAPI(t *testing.T) {
	_, r1 := replica(t, service.Config{Workers: 2})
	_, r2 := replica(t, service.Config{Workers: 2})
	rt, rts := boot(t, Config{}, r1.URL)

	chg, _ := json.Marshal(map[string][]string{"add": {r2.URL}})
	resp, err := http.Post(rts.URL+"/replicas", "application/json", bytes.NewReader(chg))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("membership add: %d", resp.StatusCode)
	}
	if got := len(rt.Members()); got != 2 {
		t.Fatalf("members after add: %d", got)
	}

	rm, _ := json.Marshal(map[string][]string{"remove": {r1.URL}})
	resp, err = http.Post(rts.URL+"/replicas", "application/json", bytes.NewReader(rm))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	members := rt.Members()
	if len(members) != 1 || members[0].URL != r2.URL {
		t.Fatalf("members after remove: %+v", members)
	}
	// Work still routes — now necessarily to r2.
	if code, body, _ := post(t, rts.URL, service.JobRequest{Scenario: "-grid 8 -seed 4"}); code != http.StatusOK {
		t.Fatalf("post-membership solve: %d %s", code, body)
	}

	resp, err = http.Get(rts.URL + "/replicas")
	if err != nil {
		t.Fatal(err)
	}
	list, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(list), r2.URL) || strings.Contains(string(list), r1.URL) {
		t.Fatalf("GET /replicas listing wrong: %s", list)
	}
}

// TestRouterHealthProbeRevives: the background prober takes a draining
// replica off the ring and brings a recovered one back.
func TestRouterHealthProbeRevives(t *testing.T) {
	s1, r1 := replica(t, service.Config{Workers: 2})
	_, r2 := replica(t, service.Config{Workers: 2})
	rt, _ := boot(t, Config{HealthEvery: 20 * time.Millisecond}, r1.URL, r2.URL)
	defer rt.Shutdown(context.Background())

	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		alive := 0
		for _, m := range rt.Members() {
			if m.Alive {
				alive++
			}
		}
		if alive == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never detected the draining replica: %+v", rt.Members())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterDrain: Shutdown stops admission with an explicit 503 and
// flips /healthz; a second Shutdown reports the double call.
func TestRouterDrain(t *testing.T) {
	_, r1 := replica(t, service.Config{Workers: 2})
	rt, rts := boot(t, Config{}, r1.URL)

	if err := rt.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, body, _ := post(t, rts.URL, service.JobRequest{Scenario: "-grid 8 -seed 1"})
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("post-drain solve: %d %s", code, body)
	}
	resp, err := http.Get(rts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d", resp.StatusCode)
	}
	if err := rt.Shutdown(context.Background()); err == nil {
		t.Fatal("double shutdown unreported")
	}
}

// TestRouterMetricsAggregation: /metrics carries router counters,
// per-replica queue depth, and the fleet-aggregate cache hit counters
// scraped from the replicas.
func TestRouterMetricsAggregation(t *testing.T) {
	_, r1 := replica(t, service.Config{Workers: 2})
	_, r2 := replica(t, service.Config{Workers: 2})
	_, rts := boot(t, Config{}, r1.URL, r2.URL)

	req := service.JobRequest{Scenario: "-grid 8 -ranks 4 -seed 5"}
	for i := 0; i < 3; i++ {
		if code, body, _ := post(t, rts.URL, req); code != http.StatusOK {
			t.Fatalf("solve %d: %d %s", i, code, body)
		}
	}
	resp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)

	for _, want := range []string{
		"resilience_router_routed_total 3",
		"resilience_router_replicas_alive 2",
		"resilience_router_cache_hits_total 2",
		"resilience_router_cache_misses_total 1",
		"resilience_router_replica_queue_depth{replica=",
		"resilience_router_replica_up{replica=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	if v := metricValue(body, "resilience_router_cache_hit_ratio"); v < 0.6 || v > 0.7 {
		t.Errorf("hit ratio %v, want 2/3", v)
	}
}

// TestMetricValue pins the scrape parser against realistic exposition
// text, including labeled lines that share a prefix with the target.
func TestMetricValue(t *testing.T) {
	body := []byte("# HELP x\nresilienced_cache_hits_total 41\nresilienced_cache_hits_total_bogus 7\nresilienced_queue_depth 3\nresilienced_solve_wall_seconds_total{scheme=\"LI\"} 0.5\n")
	if v := metricValue(body, "resilienced_cache_hits_total"); v != 41 {
		t.Fatalf("hits = %v", v)
	}
	if v := metricValue(body, "resilienced_queue_depth"); v != 3 {
		t.Fatalf("depth = %v", v)
	}
	if v := metricValue(body, "resilienced_cache_misses_total"); v != 0 {
		t.Fatalf("absent metric = %v", v)
	}
}
