package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestQueueZeroSlot: a queue asked for zero (or negative) capacity
// still admits one job — the floor keeps a misconfigured daemon
// serving instead of rejecting everything.
func TestQueueZeroSlot(t *testing.T) {
	for _, cap := range []int{0, -3} {
		q := newQueue(cap)
		j1 := &job{done: make(chan jobOutcome, 1)}
		if !q.tryPush(j1) {
			t.Fatalf("cap %d: first push rejected", cap)
		}
		if q.tryPush(&job{done: make(chan jobOutcome, 1)}) {
			t.Fatalf("cap %d: second push admitted beyond the one-slot floor", cap)
		}
		if q.depth() != 1 {
			t.Fatalf("cap %d: depth %d, want 1", cap, q.depth())
		}
		if got := <-q.ch; got != j1 {
			t.Fatalf("cap %d: popped wrong job", cap)
		}
		if q.depth() != 0 {
			t.Fatalf("cap %d: depth %d after pop", cap, q.depth())
		}
		q.close()
		if _, open := <-q.ch; open {
			t.Fatalf("cap %d: channel still open after close", cap)
		}
	}
}

// TestRetryAfterSeconds pins the 429 hint rounding: always at least one
// second, fractions rounded up.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{-5 * time.Second, 1},
		{300 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{61 * time.Second, 61},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestDrainWithParkedWaiters: Shutdown while several handlers are
// parked on queued jobs must answer every one of them before
// returning — waiters never leak and never see a torn response.
func TestDrainWithParkedWaiters(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// One running + two queued: three handlers parked on j.done.
	codes := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go func() {
			code, _, _ := post(t, ts, JobRequest{SleepMs: 200})
			codes <- code
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().QueueDepth != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %+v", srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(context.Background()) }()
	for i := 0; i < 3; i++ {
		if c := <-codes; c != http.StatusOK {
			t.Fatalf("parked waiter answered %d", c)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("drain with parked waiters: %v", err)
	}
	// Post-drain: admission refused, queue closed, no panic on push path.
	if code, _, _ := post(t, ts, JobRequest{SleepMs: 1}); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain admission answered %d", code)
	}
}

// TestDrainTimeout: a drain bounded by an already-expired context
// reports the interruption instead of hanging.
func TestDrainTimeout(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	got := make(chan int, 1)
	go func() {
		code, _, _ := post(t, ts, JobRequest{SleepMs: 400})
		got <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Admitted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatal("expired drain context reported success")
	}
	if c := <-got; c != http.StatusOK {
		t.Fatalf("in-flight job answered %d after interrupted drain", c)
	}
}
