// Package service exposes the resilient solver as an HTTP/JSON service:
// solve and experiment jobs are admitted through a bounded queue with
// explicit backpressure, executed on a worker pool, and answered with
// bitwise-faithful results.
//
// The service's correctness contract is determinism: a job's response is
// byte-identical to running the same job offline through RunJob, for any
// worker count, queue order, or concurrency. The contract holds by
// construction — the HTTP workers and the offline oracle of
// cmd/resilience-load call the same RunJob — and is enforced end-to-end
// by the load generator and the scripts/check.sh service gate.
package service

import (
	"context"
	"fmt"
	"time"

	"resilience/internal/chaos"
	"resilience/internal/core"
	"resilience/internal/experiments"
	"resilience/internal/matgen"
	"resilience/internal/obs"
)

// JobRequest is one unit of work submitted to POST /solve. Exactly one
// of Scenario, Experiment, or SleepMs selects the job kind:
//
//   - Scenario runs one resilient solve from a chaos replay flag string
//     (the canonical scenario codec, e.g.
//     "-grid 8 -ranks 4 -scheme CR-M -ckpt 5 -seed 7 -faults SWO@5:r1").
//   - Experiment runs a registered paper experiment by ID at the given
//     scale and returns its rendered tables.
//   - SleepMs holds a worker for the given wall-clock time and returns
//     nothing. It exists so load tests can fill the queue
//     deterministically and observe backpressure without burning CPU.
type JobRequest struct {
	// Scenario is a chaos replay flag string (see chaos.ParseArgs).
	Scenario string `json:"scenario,omitempty"`

	// Verdict upgrades a scenario job to a campaign verdict job: the
	// replica runs the scenario AND the chaos invariant battery and
	// returns the encoded verdict (see chaos.Verdict) alongside the usual
	// result fields. Verdict responses are deterministic and cacheable
	// like plain scenario jobs — the distributed chaos fleet is just
	// traffic to the serving fabric.
	Verdict bool `json:"verdict,omitempty"`
	// BreakInvariant deliberately fails the named invariant on verdict
	// jobs that inject at least one fault (the fleet's end-to-end
	// self-test: a campaign must detect the violation and shrink it
	// server-side). Requires Verdict; must name a known invariant.
	BreakInvariant string `json:"break_invariant,omitempty"`

	// Experiment is a registered experiment ID (see experiments.All).
	Experiment string `json:"experiment,omitempty"`
	// Scale sizes an experiment job: "tiny", "ci", or "paper".
	// Empty means "tiny".
	Scale string `json:"scale,omitempty"`
	// Workers bounds the experiment engine's internal concurrency
	// (0 = engine default). Output is byte-identical for any value.
	Workers int `json:"workers,omitempty"`
	// Seed overrides the experiment fault-injection seed (0 = default).
	Seed int64 `json:"seed,omitempty"`

	// SleepMs holds a worker for this many milliseconds (diagnostic).
	SleepMs int `json:"sleep_ms,omitempty"`

	// TimeoutMs caps the job's wall-clock time. Zero inherits the
	// server-wide job timeout; a positive value may only tighten it.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// Kind returns "scenario", "experiment", or "sleep".
func (r *JobRequest) Kind() string {
	switch {
	case r.Scenario != "":
		return "scenario"
	case r.Experiment != "":
		return "experiment"
	default:
		return "sleep"
	}
}

// Validate rejects malformed requests before they reach the queue, so
// admission failures are the client's bill, not a worker's.
func (r *JobRequest) Validate() error {
	set := 0
	if r.Scenario != "" {
		set++
	}
	if r.Experiment != "" {
		set++
	}
	if r.SleepMs > 0 {
		set++
	}
	if set != 1 {
		return fmt.Errorf("service: request must set exactly one of scenario, experiment, sleep_ms (got %d)", set)
	}
	if r.SleepMs < 0 {
		return fmt.Errorf("service: negative sleep_ms %d", r.SleepMs)
	}
	if r.TimeoutMs < 0 {
		return fmt.Errorf("service: negative timeout_ms %d", r.TimeoutMs)
	}
	if r.Verdict && r.Scenario == "" {
		return fmt.Errorf("service: verdict requires a scenario job")
	}
	if r.BreakInvariant != "" {
		if !r.Verdict {
			return fmt.Errorf("service: break_invariant requires verdict")
		}
		if !knownInvariant(r.BreakInvariant) {
			return fmt.Errorf("service: unknown invariant %q", r.BreakInvariant)
		}
	}
	switch {
	case r.Scenario != "":
		if _, err := chaos.ParseArgs(r.Scenario); err != nil {
			return fmt.Errorf("service: bad scenario: %w", err)
		}
	case r.Experiment != "":
		if _, ok := experiments.Get(r.Experiment); !ok {
			return fmt.Errorf("service: unknown experiment %q", r.Experiment)
		}
		if r.Scale != "" {
			if _, err := matgen.ParseScale(r.Scale); err != nil {
				return fmt.Errorf("service: bad scale: %w", err)
			}
		}
		if r.Workers < 0 {
			return fmt.Errorf("service: negative workers %d", r.Workers)
		}
	}
	return nil
}

// JobResult is the response body for a completed job. Float fields are
// hex float64 strings (strconv 'x' format), which round-trip every bit;
// the solution and residual history are folded to FNV-1a-64 hashes over
// their raw float64 bit patterns, so two results are byte-equal exactly
// when the underlying runs were bitwise-identical.
type JobResult struct {
	Kind string `json:"kind"`

	// Scenario jobs.
	Scheme       string `json:"scheme,omitempty"`
	Ranks        int    `json:"ranks,omitempty"`
	Iters        int    `json:"iters,omitempty"`
	Converged    bool   `json:"converged,omitempty"`
	RelRes       string `json:"relres,omitempty"`
	Time         string `json:"time,omitempty"`
	Energy       string `json:"energy,omitempty"`
	Restarts     int    `json:"restarts,omitempty"`
	Checkpoints  int    `json:"checkpoints,omitempty"`
	Faults       int    `json:"faults,omitempty"`
	Seed         int64  `json:"seed,omitempty"`
	SolutionHash string `json:"solution_hash,omitempty"`
	HistoryHash  string `json:"history_hash,omitempty"`

	// Verdict jobs: the encoded chaos verdict line (chaos.ParseVerdict
	// inverts it). The scenario fields above are filled too when the run
	// produced a report, so verdict jobs feed the same scheme histograms.
	Verdict string `json:"verdict,omitempty"`

	// Experiment jobs: the rendered tables, verbatim.
	Output string `json:"output,omitempty"`

	// Sleep jobs.
	SleptMs int `json:"slept_ms,omitempty"`
}

// RunJob executes one job to completion, honoring ctx for cancellation
// and deadlines. It is the single execution path shared by the service
// worker pool and the offline oracle of cmd/resilience-load; the
// returned recorder (scenario jobs only, nil otherwise) carries the
// run's per-rank counters for the /metrics exporter.
func RunJob(ctx context.Context, req JobRequest) (*JobResult, *obs.Recorder, error) {
	if err := req.Validate(); err != nil {
		return nil, nil, err
	}
	switch req.Kind() {
	case "scenario":
		if req.Verdict {
			return runVerdictJob(ctx, req)
		}
		return runScenarioJob(ctx, req)
	case "experiment":
		return runExperimentJob(ctx, req)
	default:
		return runSleepJob(ctx, req)
	}
}

// verdictRunner is the process-wide chaos runner behind verdict jobs. A
// single shared runner lets every verdict job on a replica reuse the
// cached fault-free baselines and linear systems (bounded caches; see
// chaos.Runner) — the runner's output is a pure function of the scenario,
// so sharing can only change speed, never bytes.
var verdictRunner = chaos.NewRunner(chaos.Options{})

// runVerdictJob executes one scenario through the chaos invariant
// battery and returns its verdict. A scenario whose run fails is still a
// verdict (status "fail" with a run-error violation) — failure is the
// campaign's data, not a transport error — except when the job's own
// context was cut, which is a deadline, not a finding.
func runVerdictJob(ctx context.Context, req JobRequest) (*JobResult, *obs.Recorder, error) {
	s, err := chaos.ParseArgs(req.Scenario)
	if err != nil {
		return nil, nil, err
	}
	res := verdictRunner.RunContext(ctx, 0, s)
	if res.Err != nil && ctx.Err() != nil {
		return nil, nil, res.Err
	}
	if req.BreakInvariant != "" && len(s.Faults) > 0 {
		res.Violations = append(res.Violations, chaos.SelfTestViolation(req.BreakInvariant))
	}
	v := chaos.VerdictOf(res)
	out := &JobResult{Kind: "verdict", Verdict: v.Encode()}
	if rep := res.Report; rep != nil {
		out.Scheme = rep.Scheme
		out.Ranks = rep.Ranks
		out.Iters = rep.Iters
		out.Converged = rep.Converged
		out.RelRes = chaos.HexFloat(rep.RelRes)
		out.Time = chaos.HexFloat(rep.Time)
		out.Energy = chaos.HexFloat(rep.Energy)
		out.Restarts = rep.Restarts
		out.Checkpoints = rep.Checkpoints
		out.Faults = len(rep.Faults)
		out.Seed = rep.Seed
		out.SolutionHash = chaos.HashFloats(rep.Solution)
		out.HistoryHash = chaos.HashFloats(rep.History)
	}
	return out, nil, nil
}

// knownInvariant reports whether name is one of the battery's invariants.
func knownInvariant(name string) bool {
	for _, n := range chaos.InvariantNames() {
		if n == name {
			return true
		}
	}
	return false
}

func runScenarioJob(ctx context.Context, req JobRequest) (*JobResult, *obs.Recorder, error) {
	s, err := chaos.ParseArgs(req.Scenario)
	if err != nil {
		return nil, nil, err
	}
	a, b := s.System()
	cfg, err := s.RunConfig(a, b, false)
	if err != nil {
		return nil, nil, err
	}
	rec := obs.NewRecorder()
	cfg.Obs = rec
	rep, err := core.RunContext(ctx, cfg)
	if err != nil {
		return nil, nil, err
	}
	return &JobResult{
		Kind:         "scenario",
		Scheme:       rep.Scheme,
		Ranks:        rep.Ranks,
		Iters:        rep.Iters,
		Converged:    rep.Converged,
		RelRes:       chaos.HexFloat(rep.RelRes),
		Time:         chaos.HexFloat(rep.Time),
		Energy:       chaos.HexFloat(rep.Energy),
		Restarts:     rep.Restarts,
		Checkpoints:  rep.Checkpoints,
		Faults:       len(rep.Faults),
		Seed:         rep.Seed,
		SolutionHash: chaos.HashFloats(rep.Solution),
		HistoryHash:  chaos.HashFloats(rep.History),
	}, rec, nil
}

func runExperimentJob(ctx context.Context, req JobRequest) (*JobResult, *obs.Recorder, error) {
	runner, _ := experiments.Get(req.Experiment)
	scale := matgen.Tiny
	if req.Scale != "" {
		scale, _ = matgen.ParseScale(req.Scale)
	}
	cfg := experiments.Default(scale)
	cfg.Workers = req.Workers
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	// The experiment engine predates context plumbing; bound it with a
	// pre-flight check so expired jobs fail fast instead of running.
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("service: experiment canceled before start: %w", err)
	}
	res, err := runner.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return &JobResult{
		Kind:   "experiment",
		Seed:   cfg.Seed,
		Output: res.String(),
	}, nil, nil
}

func runSleepJob(ctx context.Context, req JobRequest) (*JobResult, *obs.Recorder, error) {
	d := time.Duration(req.SleepMs) * time.Millisecond
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return &JobResult{Kind: "sleep", SleptMs: req.SleepMs}, nil, nil
	case <-ctx.Done():
		return nil, nil, fmt.Errorf("service: sleep job interrupted: %w", ctx.Err())
	}
}
