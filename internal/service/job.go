// Package service exposes the resilient solver as an HTTP/JSON service:
// solve and experiment jobs are admitted through a bounded queue with
// explicit backpressure, executed on a worker pool, and answered with
// bitwise-faithful results.
//
// The service's correctness contract is determinism: a job's response is
// byte-identical to running the same job offline through RunJob, for any
// worker count, queue order, or concurrency. The contract holds by
// construction — the HTTP workers and the offline oracle of
// cmd/resilience-load call the same RunJob — and is enforced end-to-end
// by the load generator and the scripts/check.sh service gate.
package service

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"time"

	"resilience/internal/chaos"
	"resilience/internal/core"
	"resilience/internal/experiments"
	"resilience/internal/matgen"
	"resilience/internal/obs"
)

// JobRequest is one unit of work submitted to POST /solve. Exactly one
// of Scenario, Experiment, or SleepMs selects the job kind:
//
//   - Scenario runs one resilient solve from a chaos replay flag string
//     (the canonical scenario codec, e.g.
//     "-grid 8 -ranks 4 -scheme CR-M -ckpt 5 -seed 7 -faults SWO@5:r1").
//   - Experiment runs a registered paper experiment by ID at the given
//     scale and returns its rendered tables.
//   - SleepMs holds a worker for the given wall-clock time and returns
//     nothing. It exists so load tests can fill the queue
//     deterministically and observe backpressure without burning CPU.
type JobRequest struct {
	// Scenario is a chaos replay flag string (see chaos.ParseArgs).
	Scenario string `json:"scenario,omitempty"`

	// Experiment is a registered experiment ID (see experiments.All).
	Experiment string `json:"experiment,omitempty"`
	// Scale sizes an experiment job: "tiny", "ci", or "paper".
	// Empty means "tiny".
	Scale string `json:"scale,omitempty"`
	// Workers bounds the experiment engine's internal concurrency
	// (0 = engine default). Output is byte-identical for any value.
	Workers int `json:"workers,omitempty"`
	// Seed overrides the experiment fault-injection seed (0 = default).
	Seed int64 `json:"seed,omitempty"`

	// SleepMs holds a worker for this many milliseconds (diagnostic).
	SleepMs int `json:"sleep_ms,omitempty"`

	// TimeoutMs caps the job's wall-clock time. Zero inherits the
	// server-wide job timeout; a positive value may only tighten it.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// Kind returns "scenario", "experiment", or "sleep".
func (r *JobRequest) Kind() string {
	switch {
	case r.Scenario != "":
		return "scenario"
	case r.Experiment != "":
		return "experiment"
	default:
		return "sleep"
	}
}

// Validate rejects malformed requests before they reach the queue, so
// admission failures are the client's bill, not a worker's.
func (r *JobRequest) Validate() error {
	set := 0
	if r.Scenario != "" {
		set++
	}
	if r.Experiment != "" {
		set++
	}
	if r.SleepMs > 0 {
		set++
	}
	if set != 1 {
		return fmt.Errorf("service: request must set exactly one of scenario, experiment, sleep_ms (got %d)", set)
	}
	if r.SleepMs < 0 {
		return fmt.Errorf("service: negative sleep_ms %d", r.SleepMs)
	}
	if r.TimeoutMs < 0 {
		return fmt.Errorf("service: negative timeout_ms %d", r.TimeoutMs)
	}
	switch {
	case r.Scenario != "":
		if _, err := chaos.ParseArgs(r.Scenario); err != nil {
			return fmt.Errorf("service: bad scenario: %w", err)
		}
	case r.Experiment != "":
		if _, ok := experiments.Get(r.Experiment); !ok {
			return fmt.Errorf("service: unknown experiment %q", r.Experiment)
		}
		if r.Scale != "" {
			if _, err := matgen.ParseScale(r.Scale); err != nil {
				return fmt.Errorf("service: bad scale: %w", err)
			}
		}
		if r.Workers < 0 {
			return fmt.Errorf("service: negative workers %d", r.Workers)
		}
	}
	return nil
}

// JobResult is the response body for a completed job. Float fields are
// hex float64 strings (strconv 'x' format), which round-trip every bit;
// the solution and residual history are folded to FNV-1a-64 hashes over
// their raw float64 bit patterns, so two results are byte-equal exactly
// when the underlying runs were bitwise-identical.
type JobResult struct {
	Kind string `json:"kind"`

	// Scenario jobs.
	Scheme       string `json:"scheme,omitempty"`
	Ranks        int    `json:"ranks,omitempty"`
	Iters        int    `json:"iters,omitempty"`
	Converged    bool   `json:"converged,omitempty"`
	RelRes       string `json:"relres,omitempty"`
	Time         string `json:"time,omitempty"`
	Energy       string `json:"energy,omitempty"`
	Restarts     int    `json:"restarts,omitempty"`
	Checkpoints  int    `json:"checkpoints,omitempty"`
	Faults       int    `json:"faults,omitempty"`
	Seed         int64  `json:"seed,omitempty"`
	SolutionHash string `json:"solution_hash,omitempty"`
	HistoryHash  string `json:"history_hash,omitempty"`

	// Experiment jobs: the rendered tables, verbatim.
	Output string `json:"output,omitempty"`

	// Sleep jobs.
	SleptMs int `json:"slept_ms,omitempty"`
}

// RunJob executes one job to completion, honoring ctx for cancellation
// and deadlines. It is the single execution path shared by the service
// worker pool and the offline oracle of cmd/resilience-load; the
// returned recorder (scenario jobs only, nil otherwise) carries the
// run's per-rank counters for the /metrics exporter.
func RunJob(ctx context.Context, req JobRequest) (*JobResult, *obs.Recorder, error) {
	if err := req.Validate(); err != nil {
		return nil, nil, err
	}
	switch req.Kind() {
	case "scenario":
		return runScenarioJob(ctx, req)
	case "experiment":
		return runExperimentJob(ctx, req)
	default:
		return runSleepJob(ctx, req)
	}
}

func runScenarioJob(ctx context.Context, req JobRequest) (*JobResult, *obs.Recorder, error) {
	s, err := chaos.ParseArgs(req.Scenario)
	if err != nil {
		return nil, nil, err
	}
	a, b := s.System()
	cfg, err := s.RunConfig(a, b, false)
	if err != nil {
		return nil, nil, err
	}
	rec := obs.NewRecorder()
	cfg.Obs = rec
	rep, err := core.RunContext(ctx, cfg)
	if err != nil {
		return nil, nil, err
	}
	return &JobResult{
		Kind:         "scenario",
		Scheme:       rep.Scheme,
		Ranks:        rep.Ranks,
		Iters:        rep.Iters,
		Converged:    rep.Converged,
		RelRes:       hexFloat(rep.RelRes),
		Time:         hexFloat(rep.Time),
		Energy:       hexFloat(rep.Energy),
		Restarts:     rep.Restarts,
		Checkpoints:  rep.Checkpoints,
		Faults:       len(rep.Faults),
		Seed:         rep.Seed,
		SolutionHash: hashFloats(rep.Solution),
		HistoryHash:  hashFloats(rep.History),
	}, rec, nil
}

func runExperimentJob(ctx context.Context, req JobRequest) (*JobResult, *obs.Recorder, error) {
	runner, _ := experiments.Get(req.Experiment)
	scale := matgen.Tiny
	if req.Scale != "" {
		scale, _ = matgen.ParseScale(req.Scale)
	}
	cfg := experiments.Default(scale)
	cfg.Workers = req.Workers
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	// The experiment engine predates context plumbing; bound it with a
	// pre-flight check so expired jobs fail fast instead of running.
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("service: experiment canceled before start: %w", err)
	}
	res, err := runner.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return &JobResult{
		Kind:   "experiment",
		Seed:   cfg.Seed,
		Output: res.String(),
	}, nil, nil
}

func runSleepJob(ctx context.Context, req JobRequest) (*JobResult, *obs.Recorder, error) {
	d := time.Duration(req.SleepMs) * time.Millisecond
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return &JobResult{Kind: "sleep", SleptMs: req.SleepMs}, nil, nil
	case <-ctx.Done():
		return nil, nil, fmt.Errorf("service: sleep job interrupted: %w", ctx.Err())
	}
}

// hexFloat renders a float64 with every bit intact ('x' format
// round-trips exactly; %g does not).
func hexFloat(v float64) string {
	return strconv.FormatFloat(v, 'x', -1, 64)
}

// hashFloats folds a vector to an FNV-1a-64 hash over the little-endian
// bit patterns of its elements, preceded by the length — so responses
// stay small while remaining sensitive to any single-ULP difference.
func hashFloats(xs []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(xs)))
	h.Write(buf[:])
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
