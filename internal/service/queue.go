package service

import (
	"context"
	"time"

	"resilience/internal/obs"
)

// job is one admitted request in flight through the queue and pool.
type job struct {
	req JobRequest
	// reqID is the request's X-Request-Id, carried through the queue so
	// the worker's queue/solve spans attribute to the right request.
	reqID string
	// enqueued stamps admission; the worker records the queue-residency
	// span from it when it picks the job up.
	enqueued time.Time
	ctx      context.Context
	cancel   context.CancelFunc
	done     chan jobOutcome // buffered(1): the worker never blocks on it
}

// jobOutcome is what a worker hands back to the waiting handler.
type jobOutcome struct {
	result *JobResult
	rec    *obs.Recorder
	err    error
}

// queue is the bounded admission queue. Admission is non-blocking by
// design: when the queue is full the server answers 429 + Retry-After
// instead of stalling the client — backpressure is explicit, never
// implicit in a hung connection.
type queue struct {
	ch chan *job
}

func newQueue(capacity int) *queue {
	if capacity < 1 {
		capacity = 1
	}
	return &queue{ch: make(chan *job, capacity)}
}

// tryPush admits j if a slot is free and reports whether it did.
func (q *queue) tryPush(j *job) bool {
	select {
	case q.ch <- j:
		return true
	default:
		return false
	}
}

// depth returns the number of admitted jobs not yet picked up.
func (q *queue) depth() int { return len(q.ch) }

// close stops the workers once the queue drains; push after close is a
// caller bug (the server's admission lock makes it impossible).
func (q *queue) close() { close(q.ch) }
