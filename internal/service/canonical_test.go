package service

import (
	"strings"
	"testing"
)

// TestCanonicalKeyNormalizesSpellings: every spelling of the same job —
// flag order, whitespace, elided defaults, alternate float formats,
// reordered cross-iteration faults, an irrelevant timeout — must
// produce the identical key.
func TestCanonicalKeyNormalizesSpellings(t *testing.T) {
	base := JobRequest{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 1e-10 -ckpt 5 -detect 0 -seed 7 -faults SWO@5:r1,SNF@6:r0"}
	want, ok, err := CanonicalKey(base)
	if err != nil || !ok {
		t.Fatalf("base key: %q %v %v", want, ok, err)
	}
	equivalents := []JobRequest{
		// Flag order permuted.
		{Scenario: "-seed 7 -faults SWO@5:r1,SNF@6:r0 -scheme CR-M -ckpt 5 -grid 8 -ranks 4 -tol 1e-10"},
		// Extra whitespace.
		{Scenario: "  -grid   8 -ranks 4  -scheme CR-M -tol 1e-10 -ckpt 5 -seed 7 -faults SWO@5:r1,SNF@6:r0 "},
		// Defaults elided (grid 8, ranks 4, detect 0 are ParseArgs defaults).
		{Scenario: "-scheme CR-M -tol 1e-10 -ckpt 5 -seed 7 -faults SWO@5:r1,SNF@6:r0"},
		// Alternate float spelling of the same tolerance.
		{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 0.0000000001 -ckpt 5 -seed 7 -faults SWO@5:r1,SNF@6:r0"},
		{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 1E-10 -ckpt 5 -seed 7 -faults SWO@5:r1,SNF@6:r0"},
		// Leading zeros on integers.
		{Scenario: "-grid 08 -ranks 004 -scheme CR-M -tol 1e-10 -ckpt 05 -seed 07 -faults SWO@5:r1,SNF@6:r0"},
		// Faults listed in the other cross-iteration order (execution
		// stable-sorts by iteration, so this is the same job).
		{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 1e-10 -ckpt 5 -seed 7 -faults SNF@6:r0,SWO@5:r1"},
		// Scheme alias and case variants resolve to the same spec.
		{Scenario: "-grid 8 -ranks 4 -scheme CRM -tol 1e-10 -ckpt 5 -seed 7 -faults SWO@5:r1,SNF@6:r0"},
		{Scenario: "-grid 8 -ranks 4 -scheme cr-m -tol 1e-10 -ckpt 5 -seed 7 -faults SWO@5:r1,SNF@6:r0"},
		// A timeout changes the deadline, never the result bytes.
		{Scenario: base.Scenario, TimeoutMs: 1234},
	}
	for _, eq := range equivalents {
		got, ok, err := CanonicalKey(eq)
		if err != nil || !ok {
			t.Fatalf("%q: %v %v", eq.Scenario, ok, err)
		}
		if got != want {
			t.Errorf("spelling %q:\n got %q\nwant %q", eq.Scenario, got, want)
		}
	}
}

// TestCanonicalKeyPreservesSameIterationOrder: two faults at the same
// iteration fire in list order (fault.NewScheduleAt is a stable sort),
// so swapping them is a DIFFERENT job and must get a different key.
func TestCanonicalKeyPreservesSameIterationOrder(t *testing.T) {
	a := JobRequest{Scenario: "-scheme CR-M -ckpt 5 -seed 7 -faults SWO@5:r1,SNF@5:r0"}
	b := JobRequest{Scenario: "-scheme CR-M -ckpt 5 -seed 7 -faults SNF@5:r0,SWO@5:r1"}
	ka, _, err := CanonicalKey(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, _, err := CanonicalKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka == kb {
		t.Fatalf("same-iteration fault order collapsed: %q", ka)
	}
}

// TestCanonicalKeyExperiments: scale and seed defaults normalize;
// workers and timeout are excluded (the engine documents byte-identical
// output for any worker count).
func TestCanonicalKeyExperiments(t *testing.T) {
	want, ok, err := CanonicalKey(JobRequest{Experiment: "tab3", Scale: "tiny", Seed: 1})
	if err != nil || !ok {
		t.Fatalf("base: %v %v", ok, err)
	}
	for _, eq := range []JobRequest{
		{Experiment: "tab3"},                         // scale and seed elided
		{Experiment: "tab3", Scale: "tiny"},          // seed elided
		{Experiment: "tab3", Seed: 1},                // scale elided
		{Experiment: "tab3", Workers: 7},             // workers excluded
		{Experiment: "tab3", TimeoutMs: 99, Seed: 1}, // timeout excluded
		{Experiment: "tab3", Scale: "tiny", Seed: 1}, // fully explicit
	} {
		got, ok, err := CanonicalKey(eq)
		if err != nil || !ok || got != want {
			t.Errorf("%+v: key %q (ok=%v err=%v), want %q", eq, got, ok, err, want)
		}
	}
	other, _, err := CanonicalKey(JobRequest{Experiment: "tab3", Seed: 2})
	if err != nil || other == want {
		t.Fatalf("seed 2 key %q collides with seed 1 (err %v)", other, err)
	}
	ci, _, err := CanonicalKey(JobRequest{Experiment: "tab3", Scale: "ci"})
	if err != nil || ci == want {
		t.Fatalf("ci key %q collides with tiny (err %v)", ci, err)
	}
}

// TestCanonicalKeyNonCacheable: sleeps are timing diagnostics, not pure
// functions of the request — never cacheable. Invalid jobs error.
func TestCanonicalKeyNonCacheable(t *testing.T) {
	if key, ok, err := CanonicalKey(JobRequest{SleepMs: 5}); ok || key != "" || err != nil {
		t.Fatalf("sleep: %q %v %v", key, ok, err)
	}
	if _, ok, err := CanonicalKey(JobRequest{Scenario: "-grid banana"}); ok || err == nil {
		t.Fatal("bad scenario produced a key")
	}
	if _, ok, err := CanonicalKey(JobRequest{Experiment: "no-such"}); ok || err == nil {
		t.Fatal("unknown experiment produced a key")
	}
	if _, ok, err := CanonicalKey(JobRequest{Experiment: "tab3", Scale: "galactic"}); ok || err == nil {
		t.Fatal("bad scale produced a key")
	}
}

// TestCanonicalKeyDistinctCorpus is the committed no-collision corpus:
// jobs that differ in any result-affecting field must map to distinct
// keys. FuzzCanonicalKey extends this with generated spellings.
func TestCanonicalKeyDistinctCorpus(t *testing.T) {
	corpus := []JobRequest{
		{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 1e-10 -ckpt 5 -seed 7"},
		{Scenario: "-grid 9 -ranks 4 -scheme CR-M -tol 1e-10 -ckpt 5 -seed 7"},
		{Scenario: "-grid 8 -ranks 3 -scheme CR-M -tol 1e-10 -ckpt 5 -seed 7"},
		{Scenario: "-grid 8 -ranks 4 -scheme CR-D -tol 1e-10 -ckpt 5 -seed 7"},
		{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 1e-08 -ckpt 5 -seed 7"},
		{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 1e-10 -ckpt 6 -seed 7"},
		{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 1e-10 -ckpt 5 -seed 8"},
		{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 1e-10 -ckpt 5 -seed 7 -overlap"},
		{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 1e-10 -ckpt 5 -seed 7 -jacobi"},
		{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 1e-10 -ckpt 5 -seed 7 -detect 2"},
		{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 1e-10 -ckpt 5 -seed 7 -faults SWO@5:r1"},
		{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 1e-10 -ckpt 5 -seed 7 -faults SWO@5:r2"},
		{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 1e-10 -ckpt 5 -seed 7 -faults SWO@6:r1"},
		{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 1e-10 -ckpt 5 -seed 7 -faults SNF@5:r1"},
		{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 1e-10 -ckpt 5 -seed 7 -faults SWO@5:r1,SNF@5:r0"},
		{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 1e-10 -ckpt 5 -seed 7 -faults SNF@5:r0,SWO@5:r1"},
		{Experiment: "tab3"},
		{Experiment: "tab3", Scale: "ci"},
		{Experiment: "tab3", Seed: 2},
		{Experiment: "fig3"},
	}
	seen := make(map[string]string, len(corpus))
	for _, req := range corpus {
		key, ok, err := CanonicalKey(req)
		if err != nil || !ok {
			t.Fatalf("%+v: %v %v", req, ok, err)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("collision: %q maps both %+v and %s", key, req, prev)
		}
		seen[key] = req.Scenario + req.Experiment + req.Scale
	}
}

func BenchmarkCanonicalEncode(b *testing.B) {
	req := JobRequest{Scenario: testScenario}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key, ok, err := CanonicalKey(req)
		if !ok || err != nil || !strings.HasPrefix(key, "j1|") {
			b.Fatal("bad key")
		}
	}
}
