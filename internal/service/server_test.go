package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"resilience/internal/chaos"
)

const testScenario = "-grid 8 -ranks 4 -scheme CR-M -ckpt 5 -tol 1e-10 -seed 7 -faults SWO@5:r1,SNF@6:r0"

func post(t *testing.T, ts *httptest.Server, req JobRequest) (int, []byte, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, got, resp.Header
}

// TestSolveMatchesOfflineOracle is the determinism contract: the HTTP
// response body is byte-identical to marshaling the offline RunJob
// result, at any worker count and under concurrent submission.
func TestSolveMatchesOfflineOracle(t *testing.T) {
	req := JobRequest{Scenario: testScenario}
	oracleRes, _, err := RunJob(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := json.Marshal(oracleRes)
	if err != nil {
		t.Fatal(err)
	}
	if oracleRes.Restarts == 0 || oracleRes.SolutionHash == "" {
		t.Fatalf("oracle scenario exercised no recovery: %+v", oracleRes)
	}

	// With the result cache disabled every request executes: the raw
	// worker-pool path still answers byte-identically at any worker
	// count. With the cache enabled (the default) the six identical
	// requests collapse to at least one execution — hits, coalesced
	// joins, and misses must all serve the same oracle bytes.
	for _, cacheCap := range []int{-1, 0} {
		for _, workers := range []int{1, 4} {
			srv := New(Config{Workers: workers, QueueCap: 16, CacheCap: cacheCap})
			ts := httptest.NewServer(srv)
			var wg sync.WaitGroup
			for i := 0; i < 6; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					code, got, _ := post(t, ts, req)
					if code != http.StatusOK {
						t.Errorf("workers=%d: status %d: %s", workers, code, got)
						return
					}
					if !bytes.Equal(got, oracle) {
						t.Errorf("workers=%d: response differs from oracle\n got: %s\nwant: %s", workers, got, oracle)
					}
				}()
			}
			wg.Wait()
			ts.Close()
			if err := srv.Shutdown(context.Background()); err != nil {
				t.Fatal(err)
			}
			st := srv.Stats()
			if st.Failed != 0 {
				t.Fatalf("workers=%d: stats %+v", workers, st)
			}
			if cacheCap < 0 {
				if st.Admitted != 6 || st.Completed != 6 {
					t.Fatalf("workers=%d uncached: stats %+v", workers, st)
				}
			} else {
				if st.CacheHits+st.CacheMisses != 6 {
					t.Fatalf("workers=%d cached: lookups %d+%d != 6", workers, st.CacheHits, st.CacheMisses)
				}
				// Every miss either led a flight (and was admitted) or
				// joined one; dedup never loses or invents executions.
				if st.Admitted != st.CacheMisses-st.Coalesced || st.Admitted < 1 {
					t.Fatalf("workers=%d cached: stats %+v", workers, st)
				}
				if st.Completed != st.Admitted {
					t.Fatalf("workers=%d cached: completed %d != admitted %d", workers, st.Completed, st.Admitted)
				}
			}
			if st.Ranks.MsgsSent == 0 || st.Ranks.Flops == 0 {
				t.Fatalf("workers=%d: rank counters not folded: %+v", workers, st.Ranks)
			}
		}
	}
}

// TestQueueFullBackpressure fills the single worker and the queue with
// sleep jobs, then demands an immediate 429 with a Retry-After hint —
// and that the queue recovers afterwards.
func TestQueueFullBackpressure(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 1, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sleep := JobRequest{SleepMs: 400}
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, _, _ := post(t, ts, sleep)
			results <- code
		}()
	}
	// Wait until one sleeps on the worker and one occupies the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(5 * time.Millisecond)
	}

	code, body, hdr := post(t, ts, JobRequest{SleepMs: 1})
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated queue answered %d (%s), want 429", code, body)
	}
	if ra := hdr.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	for i := 0; i < 2; i++ {
		if c := <-results; c != http.StatusOK {
			t.Fatalf("in-flight sleep job answered %d", c)
		}
	}
	// Capacity is free again: the same request is admitted now.
	if code, body, _ := post(t, ts, JobRequest{SleepMs: 1}); code != http.StatusOK {
		t.Fatalf("post-drain job answered %d (%s)", code, body)
	}
	st := srv.Stats()
	if st.Rejected != 1 || st.Admitted != 3 {
		t.Fatalf("stats after backpressure: %+v", st)
	}
}

// TestJobDeadline: a request-level timeout tighter than the server's
// cancels the run mid-flight and surfaces as 504.
func TestJobDeadline(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	code, body, _ := post(t, ts, JobRequest{SleepMs: 5000, TimeoutMs: 30})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expired job answered %d (%s), want 504", code, body)
	}
	if st := srv.Stats(); st.Failed != 1 {
		t.Fatalf("stats after deadline: %+v", st)
	}
}

// TestGracefulDrain: Shutdown lets the in-flight job finish, then the
// server refuses new work with 503.
func TestGracefulDrain(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	got := make(chan int, 1)
	go func() {
		code, _, _ := post(t, ts, JobRequest{SleepMs: 300})
		got <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Admitted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := <-got; code != http.StatusOK {
		t.Fatalf("in-flight job during drain answered %d, want 200", code)
	}
	if code, body, _ := post(t, ts, JobRequest{SleepMs: 1}); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain admission answered %d (%s), want 503", code, body)
	}
	if err := srv.Shutdown(context.Background()); err == nil {
		t.Fatal("second Shutdown reported success")
	}
}

// TestValidateRejects pins the request codec's failure modes to 400s.
func TestValidateRejects(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	cases := []string{
		`{}`,                                  // no kind
		`{"scenario":"-grid banana"}`,         // unparsable scenario
		`{"experiment":"no-such-experiment"}`, // unknown ID
		`{"sleep_ms":5,"scenario":"` + testScenario + `"}`, // two kinds
		`{"sleep_ms":5,"timeout_ms":-1}`,                   // negative timeout
		`{"sleep_ms":5,"bogus_field":1}`,                   // unknown field
	}
	for _, body := range cases {
		resp, err := ts.Client().Post(ts.URL+"/solve", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
	if st := srv.Stats(); st.Admitted != 0 {
		t.Fatalf("malformed requests reached the queue: %+v", st)
	}
}

// TestExperimentJob runs a registered experiment end-to-end and checks
// the rendered output and seed echo come back.
func TestExperimentJob(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	code, body, _ := post(t, ts, JobRequest{Experiment: "tab3", Scale: "tiny", Seed: 3})
	if code != http.StatusOK {
		t.Fatalf("experiment job answered %d (%s)", code, body)
	}
	var res JobResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Kind != "experiment" || res.Seed != 3 || !bytes.Contains([]byte(res.Output), []byte("tab3")) {
		t.Fatalf("experiment result: %+v", res)
	}
}

// TestHealthzAndMetrics exercises the observability endpoints before
// and after a drain.
func TestHealthzAndMetrics(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 3})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code, _, _ := post(t, ts, JobRequest{Scenario: testScenario}); code != http.StatusOK {
		t.Fatalf("warmup solve answered %d", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hz["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, hz)
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"resilienced_jobs_admitted_total 1",
		"resilienced_jobs_completed_total 1",
		`resilienced_solve_virtual_seconds_total{scheme="CR-M"}`,
		"resilienced_rank_msgs_sent_total",
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
	}
}

// TestHexFloatRoundTrip pins the bit-exactness of the float codec.
func TestHexFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, 1e-300, 3.141592653589793, 1.0000000000000002} {
		got, err := strconv.ParseFloat(chaos.HexFloat(v), 64)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("chaos.HexFloat(%v) round-tripped to %v", v, got)
		}
	}
	if chaos.HashFloats(nil) == chaos.HashFloats([]float64{0}) {
		t.Fatal("hash ignores length")
	}
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3 + 1e-15}
	if chaos.HashFloats(a) == chaos.HashFloats(b) {
		t.Fatal("hash insensitive to a one-ULP-scale difference")
	}
	if fmt.Sprintf("%d", len(chaos.HashFloats(a))) != "16" {
		t.Fatalf("hash width %d, want 16", len(chaos.HashFloats(a)))
	}
}
