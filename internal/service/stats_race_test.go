package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"resilience/internal/telemetry"
)

// TestStatsScrapeDuringJobs hammers Stats(), /metrics and /telemetry
// while jobs complete on the worker pool. Run under -race it is the
// torn-read audit for the stats path: every counter is an atomic in the
// registry and the map/rank aggregates are deep-copied under the mutex,
// so a scrape that overlaps a completing job must observe neither a
// data race nor an inconsistent histogram (count behind its buckets).
func TestStatsScrapeDuringJobs(t *testing.T) {
	srv := New(Config{Workers: 4, QueueCap: 32, CacheCap: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const jobs = 24
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		var jw sync.WaitGroup
		for i := 0; i < jobs; i++ {
			jw.Add(1)
			go func(i int) {
				defer jw.Done()
				req := JobRequest{SleepMs: 1 + i%3}
				code, body, _ := post(t, ts, req)
				if code != http.StatusOK {
					t.Errorf("job %d: status %d: %s", i, code, body)
				}
			}(i)
		}
		jw.Wait()
	}()

	// Scrapers run until every job has completed, reading all three
	// externally visible views of the same counters.
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				st := srv.Stats()
				if st.Completed > st.Admitted {
					t.Errorf("torn stats: completed %d > admitted %d", st.Completed, st.Admitted)
				}
				for _, get := range []string{"/metrics", "/telemetry"} {
					resp, err := ts.Client().Get(ts.URL + get)
					if err != nil {
						t.Errorf("%s: %v", get, err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("%s: status %d", get, resp.StatusCode)
					}
					if get == "/telemetry" {
						var snap telemetry.Snapshot
						if err := json.Unmarshal(body, &snap); err != nil {
							t.Errorf("telemetry snapshot: %v", err)
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Completed != jobs || st.Failed != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
	// The telemetry gate at unit scope: the wall-clock histogram must
	// account for exactly the completed jobs, and the Prometheus view
	// must agree with the JSON snapshot.
	snap := srv.TelemetrySnapshot()
	h := snap.Histogram("solve_wall_seconds")
	if h.Count != jobs {
		t.Fatalf("solve_wall_seconds count = %d, want %d", h.Count, jobs)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := fmt.Sprintf("resilienced_jobs_completed_total %d", jobs)
	if !strings.Contains(string(expo), want) {
		t.Fatalf("/metrics missing %q:\n%s", want, expo)
	}
}
