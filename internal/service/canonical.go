package service

import (
	"fmt"
	"sort"

	"resilience/internal/chaos"
	"resilience/internal/core"
	"resilience/internal/experiments"
	"resilience/internal/matgen"
	"resilience/internal/recovery"
)

// canonicalVersion prefixes every cache key so a future change to the
// encoding can never alias keys produced by an older one.
const canonicalVersion = "j1"

// CanonicalKey renders req as its canonical cache key: a stable byte
// string such that two requests get the same key exactly when the
// service's determinism contract guarantees byte-identical results.
// cacheable is false for jobs whose outcome is not a pure function of
// the request (sleep diagnostics); err is non-nil only for requests
// Validate would reject.
//
// Normalization rules (pinned by TestCanonicalKey* and FuzzCanonicalKey):
//
//   - Scenario jobs: the flag string is parsed and re-rendered through
//     the canonical scenario codec, so flag order, extra whitespace,
//     elided defaults, alternate float spellings of -tol, and scheme
//     aliases/case ("crm", "CR-M") all collapse to one key. Faults are
//     stable-sorted by iteration —
//     exactly the order fault.NewScheduleAt executes them in — so
//     listings that differ only in cross-iteration order unify, while
//     same-iteration order (which changes execution) is preserved.
//   - Verdict jobs normalize like scenario jobs but key under a distinct
//     "verdict" kind (the response carries the invariant battery's
//     verdict), with the break-invariant self-test hook keyed in.
//   - Experiment jobs: the scale name is normalized ("" means tiny) and
//     a zero seed is resolved to the experiment default, so explicit and
//     elided defaults unify. Workers is excluded: the experiment engine
//     documents byte-identical output for any worker count.
//   - TimeoutMs is excluded for every kind: a deadline changes whether a
//     result is produced, never which bytes it contains, and failed jobs
//     are never cached.
func CanonicalKey(req JobRequest) (key string, cacheable bool, err error) {
	switch req.Kind() {
	case "scenario":
		s, err := chaos.ParseArgs(req.Scenario)
		if err != nil {
			return "", false, err
		}
		spec, err := chaos.ParseSchemeName(s.Scheme)
		if err != nil {
			return "", false, err
		}
		s.Scheme = canonicalSchemeName(spec)
		sort.SliceStable(s.Faults, func(i, j int) bool { return s.Faults[i].Iter < s.Faults[j].Iter })
		if req.Verdict {
			// Verdict jobs answer with the invariant battery's verdict, so
			// they can never alias a plain scenario key; the break-invariant
			// self-test hook changes the verdict and keys separately.
			// Invariant names are a fixed identifier set — no '|' collisions.
			return canonicalVersion + "|verdict|" + req.BreakInvariant + "|" + s.Args(), true, nil
		}
		return canonicalVersion + "|scenario|" + s.Args(), true, nil
	case "experiment":
		if _, ok := experiments.Get(req.Experiment); !ok {
			return "", false, fmt.Errorf("service: unknown experiment %q", req.Experiment)
		}
		scale := matgen.Tiny
		if req.Scale != "" {
			scale, err = matgen.ParseScale(req.Scale)
			if err != nil {
				return "", false, err
			}
		}
		seed := req.Seed
		if seed == 0 {
			seed = experiments.Default(scale).Seed
		}
		return fmt.Sprintf("%s|experiment|%s|%s|%d", canonicalVersion, req.Experiment, scale, seed), true, nil
	default:
		return "", false, nil
	}
}

// canonicalSchemeName inverts chaos.ParseSchemeName: one spelling per
// scheme spec, chosen from the names the parser accepts so the
// canonical scenario string stays replayable. Aliases ("CRM", "DMR")
// and case variants all land on the same name.
func canonicalSchemeName(spec core.SchemeSpec) string {
	switch spec.Kind {
	case core.F0:
		return "F0"
	case core.FI:
		return "FI"
	case core.LI:
		switch {
		case spec.DVFS:
			return "LI-DVFS"
		case spec.Construct == recovery.ConstructExact:
			return "LI-LU"
		}
		return "LI"
	case core.LSI:
		switch {
		case spec.DVFS:
			return "LSI-DVFS"
		case spec.Construct == recovery.ConstructExact:
			return "LSI-QR"
		}
		return "LSI"
	case core.CRM:
		return "CR-M"
	case core.CRD:
		return "CR-D"
	case core.CR2L:
		return "CR-2L"
	case core.RD:
		return "RD"
	case core.TMR:
		return "TMR"
	case core.ESR:
		return "ESR"
	case core.LCR:
		return "LCR"
	}
	// Unreachable: ParseSchemeName only produces the kinds above.
	return fmt.Sprintf("Kind(%d)", int(spec.Kind))
}
