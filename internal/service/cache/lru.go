// Package cache provides the serving-layer performance primitives: a
// bounded, sharded LRU for content-addressed results and a single-flight
// group that coalesces identical in-flight computations.
//
// Both are safe because of the service's determinism contract — a job's
// result bytes are a pure function of its canonical encoding — so a
// cached or coalesced answer is bitwise-indistinguishable from a fresh
// one. The Get hot path (hit or miss) performs zero allocations; the
// scripts/check.sh alloc gate and BENCH_3.json pin that property.
package cache

import (
	"sync"
	"sync/atomic"
)

// fnv64a hashes a key with FNV-1a-64 without allocating.
func fnv64a(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// entry is one resident cache line on a shard's intrusive LRU list.
type entry[V any] struct {
	key        string
	val        V
	prev, next *entry[V]
}

// shard is one lock domain: a map for lookup and a sentinel-rooted
// doubly-linked list in recency order (root.next is most recent).
type shard[V any] struct {
	mu   sync.Mutex
	m    map[string]*entry[V]
	cap  int
	root entry[V] // sentinel; root.next = MRU, root.prev = LRU
}

func (s *shard[V]) init(capacity int) {
	s.m = make(map[string]*entry[V], capacity)
	s.cap = capacity
	s.root.next = &s.root
	s.root.prev = &s.root
}

// unlink removes e from the recency list.
func (s *shard[V]) unlink(e *entry[V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

// pushFront makes e the most recently used entry.
func (s *shard[V]) pushFront(e *entry[V]) {
	e.prev = &s.root
	e.next = s.root.next
	e.next.prev = e
	s.root.next = e
}

// Cache is a bounded, sharded LRU keyed by canonical strings. Capacity
// is enforced per shard (total capacity = shards x per-shard bound), so
// shards never contend on a global list; hit/miss/eviction counters are
// process-wide atomics.
type Cache[V any] struct {
	shards []shard[V]
	mask   uint64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// New builds a cache bounded at roughly capacity entries spread over
// shards lock domains (shards is rounded up to a power of two; both
// default when <= 0: capacity 4096, shards 16). Per-shard capacity is
// at least one entry, so tiny caches still admit work on every shard.
func New[V any](capacity, shards int) *Cache[V] {
	if capacity <= 0 {
		capacity = 4096
	}
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache[V]{shards: make([]shard[V], n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].init(perShard)
	}
	return c
}

func (c *Cache[V]) shardOf(key string) *shard[V] {
	return &c.shards[fnv64a(key)&c.mask]
}

// Get returns the value cached under key, bumping its recency. The hot
// path allocates nothing for hits or misses.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shardOf(key)
	s.mu.Lock()
	e, ok := s.m[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	if s.root.next != e {
		s.unlink(e)
		s.pushFront(e)
	}
	v := e.val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put inserts or refreshes key, evicting the shard's least recently
// used entry when the shard is full.
func (c *Cache[V]) Put(key string, val V) {
	s := c.shardOf(key)
	s.mu.Lock()
	if e, ok := s.m[key]; ok {
		e.val = val
		if s.root.next != e {
			s.unlink(e)
			s.pushFront(e)
		}
		s.mu.Unlock()
		return
	}
	if len(s.m) >= s.cap {
		lru := s.root.prev
		s.unlink(lru)
		delete(s.m, lru.key)
		c.evictions.Add(1)
	}
	e := &entry[V]{key: key, val: val}
	s.m[key] = e
	s.pushFront(e)
	s.mu.Unlock()
}

// Len returns the resident entry count across all shards.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Capacity returns the total entry bound (shards x per-shard bound).
func (c *Cache[V]) Capacity() int {
	return len(c.shards) * c.shards[0].cap
}

// Stats returns the cumulative hit, miss and eviction counts.
func (c *Cache[V]) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
