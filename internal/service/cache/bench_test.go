package cache

import (
	"strconv"
	"testing"
)

// The three serving hot paths below must stay allocation-free: a cache
// hit, a cache miss, and a single-flight cycle. scripts/check.sh gates
// all three at 0 allocs/op and cmd/benchdiff records them in BENCH_3+.

func BenchmarkCacheGetHit(b *testing.B) {
	c := New[[]byte](1024, 16)
	body := []byte(`{"kind":"scenario","iters":42}`)
	for i := 0; i < 64; i++ {
		c.Put("j1|scenario|-grid 8 -seed "+strconv.Itoa(i), body)
	}
	key := "j1|scenario|-grid 8 -seed 7"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(key); !ok {
			b.Fatal("hit path missed")
		}
	}
}

func BenchmarkCacheGetMiss(b *testing.B) {
	c := New[[]byte](1024, 16)
	c.Put("resident", []byte("x"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get("j1|scenario|-grid 9 -seed 12345"); ok {
			b.Fatal("miss path hit")
		}
	}
}

func BenchmarkSingleflightJoin(b *testing.B) {
	g := NewGroup[int]()
	fn := func() (int, error) { return 42, nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v, err, _ := g.Do("k", fn); v != 42 || err != nil {
			b.Fatal("flight failed")
		}
	}
}
