package cache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestLRUEvictionOrder pins the recency discipline on a single shard:
// the least recently *used* entry goes first, and a Get refreshes
// recency just like a Put.
func TestLRUEvictionOrder(t *testing.T) {
	c := New[int](3, 1)
	if c.Capacity() != 3 {
		t.Fatalf("capacity = %d, want 3", c.Capacity())
	}
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	if _, ok := c.Get("a"); !ok { // a is now MRU; b is LRU
		t.Fatal("a missing before any eviction")
	}
	c.Put("d", 4) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted out of order", k)
		}
	}
	c.Put("e", 5) // LRU is now a (c, d were just touched after it)
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived; eviction did not follow recency")
	}
	if _, _, ev := c.Stats(); ev != 2 {
		t.Fatalf("evictions = %d, want 2", ev)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
}

// TestLRUUpdateExisting: re-putting a key refreshes value and recency
// without growing the cache or evicting.
func TestLRUUpdateExisting(t *testing.T) {
	c := New[string](2, 1)
	c.Put("a", "old")
	c.Put("b", "B")
	c.Put("a", "new") // a becomes MRU, no eviction
	if v, ok := c.Get("a"); !ok || v != "new" {
		t.Fatalf("a = %q,%v after update", v, ok)
	}
	c.Put("c", "C") // evicts b, not a
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived; update did not refresh a's recency")
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

// TestShardedBounds: a sharded cache never holds more than its total
// capacity, whatever the insert pattern.
func TestShardedBounds(t *testing.T) {
	c := New[int](64, 8)
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	if c.Len() > c.Capacity() {
		t.Fatalf("len %d exceeds capacity %d", c.Len(), c.Capacity())
	}
	hits, misses, ev := c.Stats()
	if ev == 0 {
		t.Fatal("1000 inserts into 64 slots evicted nothing")
	}
	if hits != 0 || misses != 0 {
		t.Fatalf("puts moved the lookup counters: hits=%d misses=%d", hits, misses)
	}
}

// TestCounters: every lookup is exactly one hit or one miss.
func TestCounters(t *testing.T) {
	c := New[int](8, 2)
	c.Put("k", 1)
	c.Get("k")
	c.Get("k")
	c.Get("absent")
	hits, misses, _ := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", hits, misses)
	}
}

// TestSingleflightCoalesces parks joiners on a gated leader and checks
// exactly one execution with the result fanned out to all of them.
func TestSingleflightCoalesces(t *testing.T) {
	g := NewGroup[int]()
	gate := make(chan struct{})
	var execs atomic.Int64
	lead := make(chan int, 1)
	go func() {
		v, err, shared := g.Do("k", func() (int, error) {
			execs.Add(1)
			<-gate
			return 42, nil
		})
		if err != nil || shared {
			t.Errorf("leader: v=%d err=%v shared=%v", v, err, shared)
		}
		lead <- v
	}()
	for !g.Inflight("k") {
		runtime.Gosched()
	}

	const joiners = 8
	results := make(chan int, joiners)
	var wg sync.WaitGroup
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (int, error) {
				execs.Add(1)
				return -1, nil
			})
			if err != nil || !shared {
				t.Errorf("joiner: v=%d err=%v shared=%v", v, err, shared)
			}
			results <- v
		}()
	}
	// Joiners register before the gate opens: wait until all hold a
	// reference on the flight.
	for {
		g.mu.Lock()
		f := g.m["k"]
		g.mu.Unlock()
		if f != nil && f.refs.Load() == joiners+1 {
			break
		}
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if v := <-lead; v != 42 {
		t.Fatalf("leader result %d", v)
	}
	for i := 0; i < joiners; i++ {
		if v := <-results; v != 42 {
			t.Fatalf("joiner result %d, want 42", v)
		}
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	leads, joins := g.Stats()
	if leads != 1 || joins != joiners {
		t.Fatalf("leads=%d joins=%d, want 1/%d", leads, joins, joiners)
	}
	// The key is free again: a later Do runs fresh.
	v, err, shared := g.Do("k", func() (int, error) { return 7, nil })
	if v != 7 || err != nil || shared {
		t.Fatalf("post-flight Do: v=%d err=%v shared=%v", v, err, shared)
	}
}

// TestSingleflightError: a failing flight fans the error out and leaves
// nothing cached in the group.
func TestSingleflightError(t *testing.T) {
	g := NewGroup[int]()
	boom := errors.New("boom")
	_, err, _ := g.Do("k", func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, err, _ := g.Do("k", func() (int, error) { return 3, nil })
	if v != 3 || err != nil {
		t.Fatalf("retry after error: v=%d err=%v", v, err)
	}
}

// TestEvictionUnderConcurrentSingleflight hammers a tiny cache from
// many single-flight leaders at once: whatever interleaving of
// evictions and flights occurs, every Do observes the correct value for
// its key and the cache never exceeds capacity.
func TestEvictionUnderConcurrentSingleflight(t *testing.T) {
	c := New[int](4, 1) // far smaller than the key set: constant eviction
	g := NewGroup[int]()
	compute := func(k int) (int, error) { return k * 1000, nil }

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := (w + i) % 16
				key := fmt.Sprintf("k%d", k)
				if v, ok := c.Get(key); ok {
					if v != k*1000 {
						t.Errorf("cache returned %d for %s", v, key)
					}
					continue
				}
				v, err, _ := g.Do(key, func() (int, error) {
					v, err := compute(k)
					if err == nil {
						c.Put(key, v)
					}
					return v, err
				})
				if err != nil || v != k*1000 {
					t.Errorf("Do(%s) = %d, %v", key, v, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > c.Capacity() {
		t.Fatalf("len %d exceeds capacity %d under concurrency", c.Len(), c.Capacity())
	}
	if _, _, ev := c.Stats(); ev == 0 {
		t.Fatal("no evictions despite 16 keys in 4 slots")
	}
}
