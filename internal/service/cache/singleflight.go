package cache

import (
	"sync"
	"sync/atomic"
)

// flight is one in-progress computation. It is reference-counted so the
// group can recycle flights through a sync.Pool: the leader holds one
// reference, every joiner takes another before waiting, and the last
// release returns the flight to the pool — by which point every Wait has
// returned, so the WaitGroup is safely reusable.
type flight[V any] struct {
	wg   sync.WaitGroup
	refs atomic.Int64
	val  V
	err  error
}

// Group coalesces concurrent calls that share a key: the first caller
// (the leader) runs fn, every later caller arriving before the leader
// finishes joins the flight and receives the leader's result. Because
// the service's jobs are deterministic, a joined result is
// bitwise-identical to what the joiner would have computed itself.
type Group[V any] struct {
	mu   sync.Mutex
	m    map[string]*flight[V]
	pool sync.Pool

	leads atomic.Int64
	joins atomic.Int64
}

// NewGroup builds an empty single-flight group.
func NewGroup[V any]() *Group[V] {
	return &Group[V]{m: make(map[string]*flight[V])}
}

// Do returns the result of fn for key, running it at most once across
// all concurrent callers of the same key. shared reports whether the
// result was computed by another caller's flight. The leader's
// steady-state path allocates nothing (flights are pooled); joiners
// never allocate.
func (g *Group[V]) Do(key string, fn func() (V, error)) (val V, err error, shared bool) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		f.refs.Add(1)
		g.mu.Unlock()
		g.joins.Add(1)
		f.wg.Wait()
		val, err = f.val, f.err
		g.release(f)
		return val, err, true
	}
	f, _ := g.pool.Get().(*flight[V])
	if f == nil {
		f = new(flight[V])
	}
	f.refs.Store(1)
	f.wg.Add(1)
	g.m[key] = f
	g.mu.Unlock()

	g.leads.Add(1)
	f.val, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	val, err = f.val, f.err
	f.wg.Done()
	g.release(f)
	return val, err, false
}

// release drops one reference; the last holder zeroes and pools the
// flight. Every waiter reads val/err before releasing, so recycling
// cannot race a read.
func (g *Group[V]) release(f *flight[V]) {
	if f.refs.Add(-1) == 0 {
		var zero V
		f.val, f.err = zero, nil
		g.pool.Put(f)
	}
}

// Inflight reports whether a flight for key is currently running.
func (g *Group[V]) Inflight(key string) bool {
	g.mu.Lock()
	_, ok := g.m[key]
	g.mu.Unlock()
	return ok
}

// Stats returns how many flights ran (leads) and how many callers were
// coalesced onto another caller's flight (joins).
func (g *Group[V]) Stats() (leads, joins int64) {
	return g.leads.Load(), g.joins.Load()
}
