package service

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"resilience/internal/chaos"
)

// FuzzCanonicalKey fuzzes the canonicalization contract: for any valid
// scenario flag string, a generated semantically-equal respelling —
// permuted flags, irregular whitespace, elided defaults, alternate
// float formats, faults re-listed in execution order — must encode to
// the identical cache key, and the key must round-trip through the
// scenario codec (so distinct canonical scenarios cannot alias).
func FuzzCanonicalKey(f *testing.F) {
	f.Add("", uint64(0))
	f.Add("-grid 8 -ranks 4 -scheme LI-DVFS -tol 1e-10 -ckpt 6 -detect 2 -seed 7 -overlap -faults SNF@5:r2,SDC@9:r0", uint64(1))
	f.Add("-grid 6 -ranks 1 -scheme CR-M -tol 1e-08 -ckpt 2 -seed 1 -jacobi", uint64(0xdeadbeef))
	f.Add("-grid 10 -ranks 6 -scheme F0 -faults DCE@1:r0,DUE@1:r1,SWO@2:r5,LNF@2:r3", uint64(42))
	f.Add("-scheme LSI(QR) -overlap -jacobi -faults SNF@33:r0", uint64(7))
	f.Add("-tol 0.0000000001 -seed 0099", uint64(3))
	f.Fuzz(func(t *testing.T, args string, perm uint64) {
		if strings.TrimSpace(args) == "" {
			// An empty flag string parses as the default scenario, but an
			// empty JobRequest.Scenario means "no scenario job" — out of
			// the codec's domain.
			t.Skip()
		}
		s, err := chaos.ParseArgs(args)
		if err != nil {
			t.Skip()
		}
		want, ok, err := CanonicalKey(JobRequest{Scenario: args})
		if err != nil || !ok {
			t.Fatalf("valid scenario rejected by CanonicalKey: %v %v", ok, err)
		}

		respelled := respell(s, perm)
		got, ok, err := CanonicalKey(JobRequest{Scenario: respelled})
		if err != nil || !ok {
			t.Fatalf("respelling %q of %q rejected: %v %v", respelled, args, ok, err)
		}
		if got != want {
			t.Fatalf("equivalent spellings disagree:\n  orig: %q -> %q\n  resp: %q -> %q", args, want, respelled, got)
		}

		// The canonical form itself is a fixed point.
		canon := strings.TrimPrefix(want, "j1|scenario|")
		again, ok, err := CanonicalKey(JobRequest{Scenario: canon})
		if err != nil || !ok || again != want {
			t.Fatalf("canonical form not a fixed point: %q -> %q (%v %v)", canon, again, ok, err)
		}
	})
}

// FuzzSchemeSpec fuzzes the scheme-name half of the canonicalization
// contract: any name the scenario codec accepts must map to a canonical
// spelling that re-parses to the identical spec (name -> spec ->
// canonical name -> spec is a fixpoint), and the canonical spelling must
// itself be stable. Seeded with every registered scheme, including all
// aliases and both extension schemes.
func FuzzSchemeSpec(f *testing.F) {
	seeds := []string{
		"FF", "F0", "FI",
		"LI", "LI-DVFS", "LI(LU)", "LI-LU",
		"LSI", "LSI-DVFS", "LSI(QR)", "LSI-QR",
		"CR-M", "CRM", "CR-D", "CRD", "CR-2L", "CR2L",
		"LCR", "RD", "DMR", "TMR", "ESR",
		"esr", "lcr", " cr-d ", "li-dvfs", "nope", "",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		spec, err := chaos.ParseSchemeName(name)
		if err != nil {
			return
		}
		canon := canonicalSchemeName(spec)
		spec2, err := chaos.ParseSchemeName(canon)
		if err != nil {
			t.Fatalf("canonical name %q of %q does not parse: %v", canon, name, err)
		}
		if spec2 != spec {
			t.Fatalf("spec round-trip not a fixpoint: %q -> %+v -> %q -> %+v", name, spec, canon, spec2)
		}
		if again := canonicalSchemeName(spec2); again != canon {
			t.Fatalf("canonical name not a fixpoint: %q -> %q", canon, again)
		}
	})
}

// respell renders s as a semantically-equal but syntactically different
// flag string, driven by perm: flags emitted in a permuted order with
// irregular spacing, default-valued flags sometimes elided, -tol in an
// alternate exact float format, and the fault list stable-sorted by
// descending iteration (execution order is a stable ascending sort, so
// relative order of same-iteration faults — the part that matters — is
// preserved).
func respell(s *chaos.Scenario, perm uint64) string {
	next := func(n int) int {
		perm = perm*6364136223846793005 + 1442695040888963407
		if n <= 0 {
			return 0
		}
		return int((perm >> 33) % uint64(n))
	}
	sep := func() string {
		return []string{" ", "  ", "\t", " \t "}[next(4)]
	}

	tol := strconv.FormatFloat(s.Tol, 'g', -1, 64)
	switch next(3) {
	case 1:
		tol = strconv.FormatFloat(s.Tol, 'e', -1, 64)
	case 2:
		tol = strings.ToUpper(strconv.FormatFloat(s.Tol, 'e', -1, 64))
	}

	scheme := s.Scheme
	switch next(3) {
	case 1:
		scheme = strings.ToLower(scheme)
	case 2:
		scheme = strings.ToUpper(scheme)
	}

	faults := make([]chaos.FaultSpec, len(s.Faults))
	copy(faults, s.Faults)
	if next(2) == 1 {
		// Stable sort by descending iteration: cross-iteration order
		// changes, same-iteration relative order survives.
		for i := 1; i < len(faults); i++ {
			for j := i; j > 0 && faults[j-1].Iter < faults[j].Iter; j-- {
				faults[j-1], faults[j] = faults[j], faults[j-1]
			}
		}
	}
	var fl []string
	for _, fs := range faults {
		fl = append(fl, fs.String())
	}

	type tok struct {
		s    string
		keep bool // emit even when it spells a ParseArgs default
	}
	toks := []tok{
		{fmt.Sprintf("-grid%s%d", sep(), s.Grid), s.Grid != 8},
		{fmt.Sprintf("-ranks%s%d", sep(), s.Ranks), s.Ranks != 4},
		{fmt.Sprintf("-scheme%s%s", sep(), scheme), !strings.EqualFold(s.Scheme, "LI")},
		{fmt.Sprintf("-tol%s%s", sep(), tol), s.Tol != 1e-10},
		{fmt.Sprintf("-ckpt%s%d", sep(), s.CkptEvery), s.CkptEvery != 0},
		{fmt.Sprintf("-detect%s%d", sep(), s.DetectDelay), s.DetectDelay != 0},
		{fmt.Sprintf("-seed%s%d", sep(), s.Seed), s.Seed != 1},
	}
	if s.Overlap {
		toks = append(toks, tok{"-overlap", true})
	}
	if s.Jacobi {
		toks = append(toks, tok{"-jacobi", true})
	}
	if len(fl) > 0 {
		toks = append(toks, tok{"-faults" + sep() + strings.Join(fl, ","), true})
	}

	seedTok := toks[6]
	kept := toks[:0]
	for _, tk := range toks {
		if tk.keep || next(2) == 0 {
			kept = append(kept, tk)
		}
	}
	if len(kept) == 0 {
		// All-defaults scenario with everything elided would render "",
		// which is not a scenario request at all; keep one flag.
		kept = append(kept, seedTok)
	}
	for i := len(kept) - 1; i > 0; i-- {
		j := next(i + 1)
		kept[i], kept[j] = kept[j], kept[i]
	}
	var b strings.Builder
	for i, tk := range kept {
		if i > 0 {
			b.WriteString(sep())
		}
		b.WriteString(tk.s)
	}
	return b.String()
}
