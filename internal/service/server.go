package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"resilience/internal/obs"
	"resilience/internal/service/cache"
)

// Config sizes the server. The zero value is usable: GOMAXPROCS
// workers, a queue twice that deep, a 120 s job timeout, a 4096-entry
// result cache with single-flight dedup.
type Config struct {
	// Workers is the solver pool size (<=0: GOMAXPROCS).
	Workers int
	// QueueCap bounds pending (admitted, not yet running) jobs
	// (<=0: 2*Workers). Beyond it the server answers 429.
	QueueCap int
	// JobTimeout caps each job's wall-clock time (<=0: 120 s). Requests
	// may tighten it per job via timeout_ms, never loosen it.
	JobTimeout time.Duration
	// RetryAfter is the hint sent with 429 responses (<=0: 1 s).
	RetryAfter time.Duration
	// CacheCap bounds the content-addressed result cache in entries
	// (0: 4096; negative: cache and single-flight dedup disabled).
	CacheCap int
	// CacheShards splits the cache into independent lock domains
	// (<=0: 16; rounded up to a power of two).
	CacheShards int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 2 * c.Workers
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 120 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CacheCap == 0 {
		c.CacheCap = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	return c
}

// Stats is a point-in-time snapshot of the service counters, exported
// on /metrics and used by tests and /healthz.
type Stats struct {
	Admitted  int64
	Rejected  int64
	Completed int64
	Failed    int64
	// QueueDepth is the number of admitted jobs not yet picked up.
	QueueDepth int
	// Cache counters: every cacheable lookup is exactly one hit or one
	// miss; Coalesced counts callers whose miss joined another caller's
	// in-flight execution instead of admitting new work.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	Coalesced      int64
	CacheEntries   int
	CacheCapacity  int
	// SolveVirtualSec accumulates modeled time-to-solution per scheme;
	// SolveWallSec accumulates worker wall-clock per job kind/scheme.
	SolveVirtualSec map[string]float64
	SolveWallSec    map[string]float64
	// Ranks folds every completed scenario run's per-rank counters
	// (bytes, messages, collectives, flops) into one aggregate.
	Ranks obs.Metrics
}

// Server is the HTTP solve service: a content-addressed result cache
// and single-flight dedup in front of a bounded queue and worker pool,
// explicit backpressure, per-job deadlines, and a graceful drain. It
// implements http.Handler.
//
// Cache hits and coalesced joins are answered ahead of queue admission
// and never consume a queue slot — backpressure applies only to
// genuinely new work. The determinism contract makes this invisible to
// clients: a cached body is byte-identical to a fresh recomputation.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue *queue

	// results caches marshaled 200-OK response bodies by canonical job
	// key; flights coalesces concurrent identical misses. Both nil when
	// the cache is disabled (CacheCap < 0).
	results *cache.Cache[[]byte]
	flights *cache.Group[flightOut]

	// admitMu serializes admission against the drain flip: admits hold
	// it shared across the draining check and the push, Shutdown takes
	// it exclusively to flip draining — so every successful push
	// happens-before the drain and the queue never sees a late send.
	admitMu  sync.RWMutex
	draining bool

	inflight sync.WaitGroup // admitted jobs not yet answered
	workers  sync.WaitGroup

	mu sync.Mutex // guards the Stats fields below
	st Stats
}

// flightOut is one executed job rendered as an HTTP outcome: the status
// code, the exact response body bytes, and whether a Retry-After hint
// applies. Fanning these bytes out to coalesced joiners preserves the
// byte-identity contract for every waiter, not just the leader.
type flightOut struct {
	code       int
	body       []byte
	retryAfter bool
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		queue: newQueue(cfg.QueueCap),
	}
	if cfg.CacheCap > 0 {
		s.results = cache.New[[]byte](cfg.CacheCap, cfg.CacheShards)
		s.flights = cache.NewGroup[flightOut]()
	}
	s.st.SolveVirtualSec = make(map[string]float64)
	s.st.SolveWallSec = make(map[string]float64)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/solve", s.handleSolve)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown stops admission, waits for every admitted job to be
// answered, then stops the workers. Safe to call once; ctx bounds the
// drain. A draining server still answers cache hits (they touch no
// queue or worker), which lets a replica behind a router serve out its
// hot set while the router re-shards around it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admitMu.Lock()
	already := s.draining
	s.draining = true
	s.admitMu.Unlock()
	if already {
		return errors.New("service: shutdown called twice")
	}
	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
	s.queue.close()
	s.workers.Wait()
	return nil
}

// Stats returns a snapshot of the service counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.st
	out.QueueDepth = s.queue.depth()
	if s.results != nil {
		out.CacheHits, out.CacheMisses, out.CacheEvictions = s.results.Stats()
		_, out.Coalesced = s.flights.Stats()
		out.CacheEntries = s.results.Len()
		out.CacheCapacity = s.results.Capacity()
	}
	out.SolveVirtualSec = make(map[string]float64, len(s.st.SolveVirtualSec))
	for k, v := range s.st.SolveVirtualSec {
		out.SolveVirtualSec[k] = v
	}
	out.SolveWallSec = make(map[string]float64, len(s.st.SolveWallSec))
	for k, v := range s.st.SolveWallSec {
		out.SolveWallSec[k] = v
	}
	return out
}

func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue.ch {
		start := time.Now()
		res, rec, err := RunJob(j.ctx, j.req)
		j.cancel()
		s.record(j.req, res, rec, err, time.Since(start))
		j.done <- jobOutcome{result: res, rec: rec, err: err}
		s.inflight.Done()
	}
}

// record folds one finished job into the service counters.
func (s *Server) record(req JobRequest, res *JobResult, rec *obs.Recorder, err error, wall time.Duration) {
	key := req.Kind()
	if res != nil && res.Scheme != "" {
		key = res.Scheme
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.st.Failed++
		return
	}
	s.st.Completed++
	s.st.SolveWallSec[key] += wall.Seconds()
	if res.Time != "" {
		if v, perr := strconv.ParseFloat(res.Time, 64); perr == nil {
			s.st.SolveVirtualSec[key] += v
		}
	}
	if rec != nil {
		s.st.Ranks = obs.Total([]obs.Metrics{s.st.Ranks, obs.Total(rec.Metrics())})
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	if s.results != nil {
		if key, cacheable, _ := CanonicalKey(req); cacheable {
			s.solveCached(w, key, req)
			return
		}
	}
	out := s.executeQueued(r.Context(), req)
	s.writeOutcome(w, out)
}

// solveCached answers a cacheable job ahead of queue admission: a
// resident result is served directly, a miss runs at most once per key
// via single-flight with every concurrent duplicate joining the leader's
// flight. Only the leader touches the admission queue, so backpressure
// (and 429s) applies per unique job, not per request.
//
// The leader executes under a context detached from its own HTTP
// request: its result is shared by coalesced joiners, so one client's
// disconnect must not cancel everyone's job. 200-OK bodies are cached;
// errors and rejections fan out to the current waiters but are never
// stored.
func (s *Server) solveCached(w http.ResponseWriter, key string, req JobRequest) {
	if body, ok := s.results.Get(key); ok {
		w.Header().Set("X-Cache", "hit")
		writeRaw(w, http.StatusOK, body)
		return
	}
	out, _, shared := s.flights.Do(key, func() (flightOut, error) {
		fo := s.executeQueued(context.Background(), req)
		if fo.code == http.StatusOK {
			s.results.Put(key, fo.body)
		}
		return fo, nil
	})
	if shared {
		w.Header().Set("X-Cache", "coalesced")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	s.writeOutcome(w, out)
}

// executeQueued runs req through admission, the bounded queue, and the
// worker pool, rendering the outcome as exact response bytes. It is the
// single execution path for direct, cached-miss, and coalesced-leader
// requests.
func (s *Server) executeQueued(parent context.Context, req JobRequest) flightOut {
	timeout := s.cfg.JobTimeout
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	jctx, cancel := context.WithTimeout(parent, timeout)
	j := &job{req: req, ctx: jctx, cancel: cancel, done: make(chan jobOutcome, 1)}

	s.admitMu.RLock()
	if s.draining {
		s.admitMu.RUnlock()
		cancel()
		return flightOut{code: http.StatusServiceUnavailable, body: errorBody("draining")}
	}
	s.inflight.Add(1)
	admitted := s.queue.tryPush(j)
	s.admitMu.RUnlock()

	if !admitted {
		s.inflight.Done()
		cancel()
		s.mu.Lock()
		s.st.Rejected++
		s.mu.Unlock()
		return flightOut{code: http.StatusTooManyRequests, body: errorBody("queue full"), retryAfter: true}
	}
	s.mu.Lock()
	s.st.Admitted++
	s.mu.Unlock()

	out := <-j.done
	if out.err != nil {
		code := http.StatusInternalServerError
		if errors.Is(out.err, context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		}
		return flightOut{code: code, body: errorBody(out.err.Error())}
	}
	body, err := json.Marshal(out.result)
	if err != nil {
		return flightOut{code: http.StatusInternalServerError, body: errorBody(err.Error())}
	}
	return flightOut{code: http.StatusOK, body: body}
}

// writeOutcome sends a flightOut, attaching the Retry-After hint on
// backpressure rejections.
func (s *Server) writeOutcome(w http.ResponseWriter, out flightOut) {
	if out.retryAfter {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
	}
	writeRaw(w, out.code, out.body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.admitMu.RLock()
	draining := s.draining
	s.admitMu.RUnlock()
	status, code := "ok", http.StatusOK
	if draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":      status,
		"workers":     s.cfg.Workers,
		"queue_cap":   s.cfg.QueueCap,
		"queue_depth": s.queue.depth(),
	})
}

// handleMetrics renders the counters in the Prometheus text format,
// map keys sorted so the output is deterministic.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	put := func(name string, v any) {
		fmt.Fprintf(w, "resilienced_%s %v\n", name, v)
	}
	put("jobs_admitted_total", st.Admitted)
	put("jobs_rejected_total", st.Rejected)
	put("jobs_completed_total", st.Completed)
	put("jobs_failed_total", st.Failed)
	put("queue_depth", st.QueueDepth)
	put("queue_capacity", s.cfg.QueueCap)
	put("workers", s.cfg.Workers)
	if s.results != nil {
		put("cache_hits_total", st.CacheHits)
		put("cache_misses_total", st.CacheMisses)
		put("cache_evictions_total", st.CacheEvictions)
		put("cache_coalesced_total", st.Coalesced)
		put("cache_entries", st.CacheEntries)
		put("cache_capacity", st.CacheCapacity)
		ratio := 0.0
		if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
			ratio = float64(st.CacheHits) / float64(lookups)
		}
		fmt.Fprintf(w, "resilienced_cache_hit_ratio %.9g\n", ratio)
	}
	for _, k := range sortedKeys(st.SolveVirtualSec) {
		fmt.Fprintf(w, "resilienced_solve_virtual_seconds_total{scheme=%q} %.9g\n", k, st.SolveVirtualSec[k])
	}
	for _, k := range sortedKeys(st.SolveWallSec) {
		fmt.Fprintf(w, "resilienced_solve_wall_seconds_total{scheme=%q} %.9g\n", k, st.SolveWallSec[k])
	}
	put("rank_msgs_sent_total", st.Ranks.MsgsSent)
	put("rank_bytes_sent_total", st.Ranks.BytesSent)
	put("rank_collectives_total", st.Ranks.Collectives)
	put("rank_flops_total", st.Ranks.Flops)
}

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func retryAfterSeconds(d time.Duration) int {
	n := int(math.Ceil(d.Seconds()))
	if n < 1 {
		n = 1
	}
	return n
}

// errorBody renders the canonical error payload as bytes (the same
// bytes writeError produces), so flight outcomes fan out byte-identical
// errors too.
func errorBody(msg string) []byte {
	body, err := json.Marshal(map[string]string{"error": msg})
	if err != nil {
		return []byte(`{"error":"internal"}`)
	}
	return body
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeRaw(w, code, errorBody(msg))
}

// writeRaw sends pre-marshaled JSON bytes untouched — cache hits and
// coalesced fan-outs must reproduce the original body exactly.
func writeRaw(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

// writeJSON marshals v in one shot (no Encoder trailing newline) so the
// response bytes match json.Marshal of the same value exactly — the
// load generator compares them byte-for-byte against its oracle.
func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeRaw(w, code, body)
}
