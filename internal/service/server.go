package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"resilience/internal/obs"
)

// Config sizes the server. The zero value is usable: GOMAXPROCS
// workers, a queue twice that deep, a 120 s job timeout.
type Config struct {
	// Workers is the solver pool size (<=0: GOMAXPROCS).
	Workers int
	// QueueCap bounds pending (admitted, not yet running) jobs
	// (<=0: 2*Workers). Beyond it the server answers 429.
	QueueCap int
	// JobTimeout caps each job's wall-clock time (<=0: 120 s). Requests
	// may tighten it per job via timeout_ms, never loosen it.
	JobTimeout time.Duration
	// RetryAfter is the hint sent with 429 responses (<=0: 1 s).
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 2 * c.Workers
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 120 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Stats is a point-in-time snapshot of the service counters, exported
// on /metrics and used by tests and /healthz.
type Stats struct {
	Admitted  int64
	Rejected  int64
	Completed int64
	Failed    int64
	// QueueDepth is the number of admitted jobs not yet picked up.
	QueueDepth int
	// SolveVirtualSec accumulates modeled time-to-solution per scheme;
	// SolveWallSec accumulates worker wall-clock per job kind/scheme.
	SolveVirtualSec map[string]float64
	SolveWallSec    map[string]float64
	// Ranks folds every completed scenario run's per-rank counters
	// (bytes, messages, collectives, flops) into one aggregate.
	Ranks obs.Metrics
}

// Server is the HTTP solve service: a bounded queue in front of a
// worker pool, explicit backpressure, per-job deadlines, and a graceful
// drain. It implements http.Handler.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue *queue

	// admitMu serializes admission against the drain flip: admits hold
	// it shared across the draining check and the push, Shutdown takes
	// it exclusively to flip draining — so every successful push
	// happens-before the drain and the queue never sees a late send.
	admitMu  sync.RWMutex
	draining bool

	inflight sync.WaitGroup // admitted jobs not yet answered
	workers  sync.WaitGroup

	mu sync.Mutex // guards the Stats fields below
	st Stats
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		queue: newQueue(cfg.QueueCap),
	}
	s.st.SolveVirtualSec = make(map[string]float64)
	s.st.SolveWallSec = make(map[string]float64)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/solve", s.handleSolve)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown stops admission, waits for every admitted job to be
// answered, then stops the workers. Safe to call once; ctx bounds the
// drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admitMu.Lock()
	already := s.draining
	s.draining = true
	s.admitMu.Unlock()
	if already {
		return errors.New("service: shutdown called twice")
	}
	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
	s.queue.close()
	s.workers.Wait()
	return nil
}

// Stats returns a snapshot of the service counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.st
	out.QueueDepth = s.queue.depth()
	out.SolveVirtualSec = make(map[string]float64, len(s.st.SolveVirtualSec))
	for k, v := range s.st.SolveVirtualSec {
		out.SolveVirtualSec[k] = v
	}
	out.SolveWallSec = make(map[string]float64, len(s.st.SolveWallSec))
	for k, v := range s.st.SolveWallSec {
		out.SolveWallSec[k] = v
	}
	return out
}

func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue.ch {
		start := time.Now()
		res, rec, err := RunJob(j.ctx, j.req)
		j.cancel()
		s.record(j.req, res, rec, err, time.Since(start))
		j.done <- jobOutcome{result: res, rec: rec, err: err}
		s.inflight.Done()
	}
}

// record folds one finished job into the service counters.
func (s *Server) record(req JobRequest, res *JobResult, rec *obs.Recorder, err error, wall time.Duration) {
	key := req.Kind()
	if res != nil && res.Scheme != "" {
		key = res.Scheme
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.st.Failed++
		return
	}
	s.st.Completed++
	s.st.SolveWallSec[key] += wall.Seconds()
	if res.Time != "" {
		if v, perr := strconv.ParseFloat(res.Time, 64); perr == nil {
			s.st.SolveVirtualSec[key] += v
		}
	}
	if rec != nil {
		s.st.Ranks = obs.Total([]obs.Metrics{s.st.Ranks, obs.Total(rec.Metrics())})
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	timeout := s.cfg.JobTimeout
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	jctx, cancel := context.WithTimeout(r.Context(), timeout)
	j := &job{req: req, ctx: jctx, cancel: cancel, done: make(chan jobOutcome, 1)}

	s.admitMu.RLock()
	if s.draining {
		s.admitMu.RUnlock()
		cancel()
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.inflight.Add(1)
	admitted := s.queue.tryPush(j)
	s.admitMu.RUnlock()

	if !admitted {
		s.inflight.Done()
		cancel()
		s.mu.Lock()
		s.st.Rejected++
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, "queue full")
		return
	}
	s.mu.Lock()
	s.st.Admitted++
	s.mu.Unlock()

	out := <-j.done
	if out.err != nil {
		switch {
		case errors.Is(out.err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, out.err.Error())
		default:
			writeError(w, http.StatusInternalServerError, out.err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, out.result)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.admitMu.RLock()
	draining := s.draining
	s.admitMu.RUnlock()
	status, code := "ok", http.StatusOK
	if draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":      status,
		"workers":     s.cfg.Workers,
		"queue_cap":   s.cfg.QueueCap,
		"queue_depth": s.queue.depth(),
	})
}

// handleMetrics renders the counters in the Prometheus text format,
// map keys sorted so the output is deterministic.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	put := func(name string, v any) {
		fmt.Fprintf(w, "resilienced_%s %v\n", name, v)
	}
	put("jobs_admitted_total", st.Admitted)
	put("jobs_rejected_total", st.Rejected)
	put("jobs_completed_total", st.Completed)
	put("jobs_failed_total", st.Failed)
	put("queue_depth", st.QueueDepth)
	put("queue_capacity", s.cfg.QueueCap)
	put("workers", s.cfg.Workers)
	for _, k := range sortedKeys(st.SolveVirtualSec) {
		fmt.Fprintf(w, "resilienced_solve_virtual_seconds_total{scheme=%q} %.9g\n", k, st.SolveVirtualSec[k])
	}
	for _, k := range sortedKeys(st.SolveWallSec) {
		fmt.Fprintf(w, "resilienced_solve_wall_seconds_total{scheme=%q} %.9g\n", k, st.SolveWallSec[k])
	}
	put("rank_msgs_sent_total", st.Ranks.MsgsSent)
	put("rank_bytes_sent_total", st.Ranks.BytesSent)
	put("rank_collectives_total", st.Ranks.Collectives)
	put("rank_flops_total", st.Ranks.Flops)
}

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func retryAfterSeconds(d time.Duration) int {
	n := int(math.Ceil(d.Seconds()))
	if n < 1 {
		n = 1
	}
	return n
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeJSON marshals v in one shot (no Encoder trailing newline) so the
// response bytes match json.Marshal of the same value exactly — the
// load generator compares them byte-for-byte against its oracle.
func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}
