package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"resilience/internal/obs"
	"resilience/internal/service/cache"
	"resilience/internal/telemetry"
)

// Config sizes the server. The zero value is usable: GOMAXPROCS
// workers, a queue twice that deep, a 120 s job timeout, a 4096-entry
// result cache with single-flight dedup.
type Config struct {
	// Workers is the solver pool size (<=0: GOMAXPROCS).
	Workers int
	// QueueCap bounds pending (admitted, not yet running) jobs
	// (<=0: 2*Workers). Beyond it the server answers 429.
	QueueCap int
	// JobTimeout caps each job's wall-clock time (<=0: 120 s). Requests
	// may tighten it per job via timeout_ms, never loosen it.
	JobTimeout time.Duration
	// RetryAfter is the hint sent with 429 responses (<=0: 1 s).
	RetryAfter time.Duration
	// CacheCap bounds the content-addressed result cache in entries
	// (0: 4096; negative: cache and single-flight dedup disabled).
	CacheCap int
	// CacheShards splits the cache into independent lock domains
	// (<=0: 16; rounded up to a power of two).
	CacheShards int
	// Flight is the crash flight recorder the server records into
	// (nil: telemetry.DefaultFlight()). Disk dumping is governed by the
	// recorder's own SetDump, typically wired from a -flight-dir flag.
	Flight *telemetry.FlightRecorder
	// TraceRing bounds the wall-clock span ring (<=0: 4096 spans).
	TraceRing int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 2 * c.Workers
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 120 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CacheCap == 0 {
		c.CacheCap = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.Flight == nil {
		c.Flight = telemetry.DefaultFlight()
	}
	if c.TraceRing <= 0 {
		c.TraceRing = 4096
	}
	return c
}

// Stats is a point-in-time snapshot of the service counters, exported
// on /metrics and used by tests and /healthz.
type Stats struct {
	Admitted  int64
	Rejected  int64
	Completed int64
	Failed    int64
	// QueueDepth is the number of admitted jobs not yet picked up.
	QueueDepth int
	// Cache counters: every cacheable lookup is exactly one hit or one
	// miss; Coalesced counts callers whose miss joined another caller's
	// in-flight execution instead of admitting new work.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	Coalesced      int64
	CacheEntries   int
	CacheCapacity  int
	// SolveVirtualSec accumulates modeled time-to-solution per scheme;
	// SolveWallSec accumulates worker wall-clock per job kind/scheme.
	SolveVirtualSec map[string]float64
	SolveWallSec    map[string]float64
	// Ranks folds every completed scenario run's per-rank counters
	// (bytes, messages, collectives, flops) into one aggregate.
	Ranks obs.Metrics
}

// Server is the HTTP solve service: a content-addressed result cache
// and single-flight dedup in front of a bounded queue and worker pool,
// explicit backpressure, per-job deadlines, and a graceful drain. It
// implements http.Handler.
//
// Cache hits and coalesced joins are answered ahead of queue admission
// and never consume a queue slot — backpressure applies only to
// genuinely new work. The determinism contract makes this invisible to
// clients: a cached body is byte-identical to a fresh recomputation.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue *queue

	// results caches marshaled 200-OK response bodies by canonical job
	// key; flights coalesces concurrent identical misses. Both nil when
	// the cache is disabled (CacheCap < 0).
	results *cache.Cache[[]byte]
	flights *cache.Group[flightOut]

	// admitMu serializes admission against the drain flip: admits hold
	// it shared across the draining check and the push, Shutdown takes
	// it exclusively to flip draining — so every successful push
	// happens-before the drain and the queue never sees a late send.
	admitMu  sync.RWMutex
	draining bool

	inflight sync.WaitGroup // admitted jobs not yet answered
	workers  sync.WaitGroup

	// The telemetry plane: counters and histograms live in reg (served
	// on /metrics and, as a mergeable JSON snapshot, on /telemetry);
	// tracer retains the recent wall-clock request spans; flight is the
	// crash flight recorder.
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	flight *telemetry.FlightRecorder

	cAdmitted  *telemetry.Counter
	cRejected  *telemetry.Counter
	cCompleted *telemetry.Counter
	cFailed    *telemetry.Counter
	hVirtual   *telemetry.HistogramVec // modeled time-to-solution per scheme
	hWall      *telemetry.HistogramVec // worker wall-clock per scheme/kind
	hEnergy    *telemetry.HistogramVec // modeled E_res joules per scheme

	mu      sync.Mutex // guards the Stats fields and lastRec below
	st      Stats
	lastRec *obs.Recorder // most recent completed scenario run's recorder
}

// flightOut is one executed job rendered as an HTTP outcome: the status
// code, the exact response body bytes, and whether a Retry-After hint
// applies. Fanning these bytes out to coalesced joiners preserves the
// byte-identity contract for every waiter, not just the leader.
type flightOut struct {
	code       int
	body       []byte
	retryAfter bool
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		queue:  newQueue(cfg.QueueCap),
		tracer: telemetry.NewTracer(cfg.TraceRing),
		flight: cfg.Flight,
	}
	if cfg.CacheCap > 0 {
		s.results = cache.New[[]byte](cfg.CacheCap, cfg.CacheShards)
		s.flights = cache.NewGroup[flightOut]()
	}
	s.st.SolveVirtualSec = make(map[string]float64)
	s.st.SolveWallSec = make(map[string]float64)
	s.initMetrics()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/solve", s.handleSolve)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/telemetry", s.handleTelemetry)
	s.mux.HandleFunc("/debug/trace", s.handleTrace)
	s.mux.Handle("/debug/flightrecorder", s.flight)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// initMetrics builds the registry. Registration order is the exposition
// order, kept compatible with the hand-rolled /metrics this replaces:
// the legacy metric names (resilienced_jobs_admitted_total,
// resilienced_queue_depth, resilienced_solve_virtual_seconds_total{scheme=...},
// ...) all survive — the histogram families merely grow _count, _bucket,
// and quantile lines alongside them.
func (s *Server) initMetrics() {
	r := telemetry.NewRegistry("resilienced")
	s.reg = r
	s.cAdmitted = r.Counter("jobs_admitted_total")
	s.cRejected = r.Counter("jobs_rejected_total")
	s.cCompleted = r.Counter("jobs_completed_total")
	s.cFailed = r.Counter("jobs_failed_total")
	r.GaugeFunc("queue_depth", func() float64 { return float64(s.queue.depth()) })
	r.GaugeFunc("queue_capacity", func() float64 { return float64(s.cfg.QueueCap) })
	r.GaugeFunc("workers", func() float64 { return float64(s.cfg.Workers) })
	if s.results != nil {
		r.GaugeFunc("cache_hits_total", func() float64 { h, _, _ := s.results.Stats(); return float64(h) })
		r.GaugeFunc("cache_misses_total", func() float64 { _, m, _ := s.results.Stats(); return float64(m) })
		r.GaugeFunc("cache_evictions_total", func() float64 { _, _, e := s.results.Stats(); return float64(e) })
		r.GaugeFunc("cache_coalesced_total", func() float64 { _, c := s.flights.Stats(); return float64(c) })
		r.GaugeFunc("cache_entries", func() float64 { return float64(s.results.Len()) })
		r.GaugeFunc("cache_capacity", func() float64 { return float64(s.results.Capacity()) })
		r.GaugeFunc("cache_hit_ratio", func() float64 {
			h, m, _ := s.results.Stats()
			if h+m == 0 {
				return 0
			}
			return float64(h) / float64(h+m)
		})
	}
	s.hVirtual = r.HistogramVec("solve_virtual_seconds", "scheme")
	s.hWall = r.HistogramVec("solve_wall_seconds", "scheme")
	s.hEnergy = r.HistogramVec("solve_energy_joules", "scheme")
	r.Collector(func(e *telemetry.Expo) {
		s.mu.Lock()
		rk := s.st.Ranks
		s.mu.Unlock()
		e.Int("rank_msgs_sent_total", rk.MsgsSent)
		e.Int("rank_bytes_sent_total", rk.BytesSent)
		e.Int("rank_collectives_total", rk.Collectives)
		e.Int("rank_flops_total", rk.Flops)
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown stops admission, waits for every admitted job to be
// answered, then stops the workers. Safe to call once; ctx bounds the
// drain. A draining server still answers cache hits (they touch no
// queue or worker), which lets a replica behind a router serve out its
// hot set while the router re-shards around it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admitMu.Lock()
	already := s.draining
	s.draining = true
	s.admitMu.Unlock()
	if already {
		return errors.New("service: shutdown called twice")
	}
	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
	s.queue.close()
	s.workers.Wait()
	return nil
}

// Stats returns a snapshot of the service counters. The job counters
// are registry atomics read without the stats lock; the map fields are
// deep-copied under it, so a snapshot taken mid-traffic is never torn.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	out := s.st
	out.SolveVirtualSec = make(map[string]float64, len(s.st.SolveVirtualSec))
	for k, v := range s.st.SolveVirtualSec {
		out.SolveVirtualSec[k] = v
	}
	out.SolveWallSec = make(map[string]float64, len(s.st.SolveWallSec))
	for k, v := range s.st.SolveWallSec {
		out.SolveWallSec[k] = v
	}
	s.mu.Unlock()
	out.Admitted = s.cAdmitted.Value()
	out.Rejected = s.cRejected.Value()
	out.Completed = s.cCompleted.Value()
	out.Failed = s.cFailed.Value()
	out.QueueDepth = s.queue.depth()
	if s.results != nil {
		out.CacheHits, out.CacheMisses, out.CacheEvictions = s.results.Stats()
		_, out.Coalesced = s.flights.Stats()
		out.CacheEntries = s.results.Len()
		out.CacheCapacity = s.results.Capacity()
	}
	return out
}

func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue.ch {
		s.tracer.Record("queue", j.reqID, j.enqueued, time.Since(j.enqueued))
		sp := s.tracer.Start("solve", j.reqID)
		res, rec, err := RunJob(j.ctx, j.req)
		wall := sp.End()
		j.cancel()
		s.record(j.req, res, rec, err, wall, j.reqID)
		j.done <- jobOutcome{result: res, rec: rec, err: err}
		s.inflight.Done()
	}
}

// record folds one finished job into the service counters, histograms,
// and flight-recorder timeline.
func (s *Server) record(req JobRequest, res *JobResult, rec *obs.Recorder, err error, wall time.Duration, reqID string) {
	key := req.Kind()
	if res != nil && res.Scheme != "" {
		key = res.Scheme
	}
	if err != nil {
		s.cFailed.Inc()
		s.flight.Note("job-failed", reqID, key+": "+err.Error())
		return
	}
	s.cCompleted.Inc()
	s.flight.Note("job-done", reqID, key)
	s.hWall.With(key).Record(wall.Seconds())
	var virt float64
	hasVirt := false
	if res.Time != "" {
		if v, perr := strconv.ParseFloat(res.Time, 64); perr == nil {
			virt, hasVirt = v, true
			s.hVirtual.With(key).Record(v)
		}
	}
	if res.Energy != "" {
		if v, perr := strconv.ParseFloat(res.Energy, 64); perr == nil {
			s.hEnergy.With(key).Record(v)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.SolveWallSec[key] += wall.Seconds()
	if hasVirt {
		s.st.SolveVirtualSec[key] += virt
	}
	if rec != nil {
		s.st.Ranks = obs.Total([]obs.Metrics{s.st.Ranks, obs.Total(rec.Metrics())})
		s.lastRec = rec
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	// Request-ID propagation: honor the caller's X-Request-Id (minted by
	// the router or load generator), mint one for bare requests, and
	// echo it on every response — success or failure — so a client can
	// quote the ID a flight-recorder dump will name.
	reqID := r.Header.Get("X-Request-Id")
	if reqID == "" {
		reqID = telemetry.NewRequestID()
	}
	w.Header().Set("X-Request-Id", reqID)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	if s.results != nil {
		if key, cacheable, _ := CanonicalKey(req); cacheable {
			s.solveCached(w, key, req, reqID)
			return
		}
	}
	out := s.executeQueued(r.Context(), req, reqID)
	s.writeOutcome(w, reqID, out)
}

// solveCached answers a cacheable job ahead of queue admission: a
// resident result is served directly, a miss runs at most once per key
// via single-flight with every concurrent duplicate joining the leader's
// flight. Only the leader touches the admission queue, so backpressure
// (and 429s) applies per unique job, not per request.
//
// The leader executes under a context detached from its own HTTP
// request: its result is shared by coalesced joiners, so one client's
// disconnect must not cancel everyone's job. 200-OK bodies are cached;
// errors and rejections fan out to the current waiters but are never
// stored.
func (s *Server) solveCached(w http.ResponseWriter, key string, req JobRequest, reqID string) {
	look := s.tracer.Start("cache-lookup", reqID)
	body, ok := s.results.Get(key)
	look.End()
	if ok {
		w.Header().Set("X-Cache", "hit")
		writeRaw(w, http.StatusOK, body)
		return
	}
	out, _, shared := s.flights.Do(key, func() (flightOut, error) {
		fo := s.executeQueued(context.Background(), req, reqID)
		if fo.code == http.StatusOK {
			s.results.Put(key, fo.body)
		}
		return fo, nil
	})
	if shared {
		w.Header().Set("X-Cache", "coalesced")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	s.writeOutcome(w, reqID, out)
}

// executeQueued runs req through admission, the bounded queue, and the
// worker pool, rendering the outcome as exact response bytes. It is the
// single execution path for direct, cached-miss, and coalesced-leader
// requests.
func (s *Server) executeQueued(parent context.Context, req JobRequest, reqID string) flightOut {
	timeout := s.cfg.JobTimeout
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	jctx, cancel := context.WithTimeout(parent, timeout)
	j := &job{req: req, reqID: reqID, ctx: jctx, cancel: cancel, done: make(chan jobOutcome, 1)}

	admit := s.tracer.Start("admission-wait", reqID)
	s.admitMu.RLock()
	if s.draining {
		s.admitMu.RUnlock()
		admit.End()
		cancel()
		return flightOut{code: http.StatusServiceUnavailable, body: errorBody("draining")}
	}
	s.inflight.Add(1)
	j.enqueued = time.Now()
	admitted := s.queue.tryPush(j)
	s.admitMu.RUnlock()
	admit.End()

	if !admitted {
		s.inflight.Done()
		cancel()
		s.cRejected.Inc()
		s.flight.Note("job-rejected", reqID, "queue full")
		return flightOut{code: http.StatusTooManyRequests, body: errorBody("queue full"), retryAfter: true}
	}
	s.cAdmitted.Inc()

	out := <-j.done
	if out.err != nil {
		code := http.StatusInternalServerError
		if errors.Is(out.err, context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		}
		return flightOut{code: code, body: errorBody(out.err.Error())}
	}
	enc := s.tracer.Start("encode", reqID)
	body, err := json.Marshal(out.result)
	enc.End()
	if err != nil {
		return flightOut{code: http.StatusInternalServerError, body: errorBody(err.Error())}
	}
	return flightOut{code: http.StatusOK, body: body}
}

// writeOutcome sends a flightOut, attaching the Retry-After hint on
// backpressure rejections. A 5xx outcome triggers a flight-recorder
// crash dump (throttled, and only when a dump dir is configured) naming
// the request ID.
func (s *Server) writeOutcome(w http.ResponseWriter, reqID string, out flightOut) {
	if out.code >= 500 {
		s.flight.Crash("http-5xx", reqID, fmt.Sprintf("status %d: %s", out.code, out.body))
	}
	if out.retryAfter {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
	}
	writeRaw(w, out.code, out.body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.admitMu.RLock()
	draining := s.draining
	s.admitMu.RUnlock()
	status, code := "ok", http.StatusOK
	if draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":      status,
		"workers":     s.cfg.Workers,
		"queue_cap":   s.cfg.QueueCap,
		"queue_depth": s.queue.depth(),
	})
}

// handleMetrics renders the registry in the Prometheus text format —
// registration order with label values sorted, so the output for a
// fixed set of values is byte-deterministic.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w)
}

// handleTelemetry serves the registry as a mergeable JSON snapshot: the
// router pulls these from every replica and bucket-merges the
// histograms into true fleet-wide quantiles.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.TelemetrySnapshot())
}

// TelemetrySnapshot returns the mergeable telemetry snapshot served on
// /telemetry, for in-process consumers (tests, embedding programs).
func (s *Server) TelemetrySnapshot() telemetry.Snapshot {
	return s.reg.Snapshot()
}

// handleTrace streams the merged Chrome trace: the retained wall-clock
// request spans laid alongside the most recent scenario run's
// virtual-time rank tracks. Load it in Perfetto (ui.perfetto.dev).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.WriteTrace(w)
}

// WriteTrace writes the merged wall-clock + virtual-time Chrome trace
// document (cmd/resilienced's -trace-dir dump and the /debug/trace
// endpoint share it).
func (s *Server) WriteTrace(w io.Writer) error {
	s.mu.Lock()
	rec := s.lastRec
	s.mu.Unlock()
	return telemetry.WriteMergedChromeTrace(w, s.tracer.Spans(), rec, nil)
}

func retryAfterSeconds(d time.Duration) int {
	n := int(math.Ceil(d.Seconds()))
	if n < 1 {
		n = 1
	}
	return n
}

// errorBody renders the canonical error payload as bytes (the same
// bytes writeError produces), so flight outcomes fan out byte-identical
// errors too.
func errorBody(msg string) []byte {
	body, err := json.Marshal(map[string]string{"error": msg})
	if err != nil {
		return []byte(`{"error":"internal"}`)
	}
	return body
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeRaw(w, code, errorBody(msg))
}

// writeRaw sends pre-marshaled JSON bytes untouched — cache hits and
// coalesced fan-outs must reproduce the original body exactly.
func writeRaw(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

// writeJSON marshals v in one shot (no Encoder trailing newline) so the
// response bytes match json.Marshal of the same value exactly — the
// load generator compares them byte-for-byte against its oracle.
func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeRaw(w, code, body)
}
