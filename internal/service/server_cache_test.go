package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestCacheHitSkipsQueue saturates the worker and the whole queue with
// sleep jobs, then asks for an already-cached scenario: it must answer
// 200 immediately from the cache — a hit never consumes a queue slot,
// so backpressure applies only to genuinely new work.
func TestCacheHitSkipsQueue(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	// Warm the cache while the pool is idle.
	code, warm, hdr := post(t, ts, JobRequest{Scenario: testScenario})
	if code != http.StatusOK {
		t.Fatalf("warmup answered %d", code)
	}
	if hdr.Get("X-Cache") != "miss" {
		t.Fatalf("warmup X-Cache = %q, want miss", hdr.Get("X-Cache"))
	}

	// Fill the worker and the queue with sleeps.
	busy := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, _, _ := post(t, ts, JobRequest{SleepMs: 500})
			busy <- code
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A fresh sleep is rejected (queue full) but the cached scenario is
	// served instantly.
	if code, _, _ := post(t, ts, JobRequest{SleepMs: 1}); code != http.StatusTooManyRequests {
		t.Fatalf("saturated queue admitted new work: %d", code)
	}
	start := time.Now()
	code, got, hdr := post(t, ts, JobRequest{Scenario: testScenario})
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("cached solve under saturation: code %d X-Cache %q", code, hdr.Get("X-Cache"))
	}
	if !bytes.Equal(got, warm) {
		t.Fatalf("cache hit differs from original body\n got: %s\nwant: %s", got, warm)
	}
	if d := time.Since(start); d > 400*time.Millisecond {
		t.Fatalf("cache hit waited %v — it queued behind the sleeps", d)
	}
	for i := 0; i < 2; i++ {
		if c := <-busy; c != http.StatusOK {
			t.Fatalf("sleep job answered %d", c)
		}
	}
}

// TestCoalescedSingleExecution parks a scenario flight behind a busy
// worker and sends a duplicate: exactly one execution is admitted, the
// duplicate joins the flight, and both get the same bytes.
func TestCoalescedSingleExecution(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	// Occupy the single worker so the scenario leader sits in the queue.
	sleepDone := make(chan int, 1)
	go func() {
		code, _, _ := post(t, ts, JobRequest{SleepMs: 600})
		sleepDone <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Admitted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sleep never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	type reply struct {
		code  int
		body  []byte
		cache string
	}
	replies := make(chan reply, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, body, hdr := post(t, ts, JobRequest{Scenario: testScenario})
			replies <- reply{code, body, hdr.Get("X-Cache")}
		}()
	}
	a, b := <-replies, <-replies
	if <-sleepDone != http.StatusOK {
		t.Fatal("sleep job failed")
	}
	if a.code != http.StatusOK || b.code != http.StatusOK {
		t.Fatalf("codes %d/%d", a.code, b.code)
	}
	if !bytes.Equal(a.body, b.body) {
		t.Fatalf("leader and joiner bodies differ:\n%s\n%s", a.body, b.body)
	}
	got := map[string]int{a.cache: 1}
	got[b.cache]++
	if got["miss"] != 1 || got["coalesced"] != 1 {
		t.Fatalf("X-Cache pair %q/%q, want one miss + one coalesced", a.cache, b.cache)
	}
	st := srv.Stats()
	if st.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", st.Coalesced)
	}
	// One sleep + one scenario leader were admitted; the joiner was not.
	if st.Admitted != 2 {
		t.Fatalf("admitted = %d, want 2 (sleep + leader)", st.Admitted)
	}
}

// TestDrainingServesCacheHits: after Shutdown the server refuses new
// work with 503 but keeps answering resident cache entries — a
// draining replica serves out its hot set while a router re-shards.
func TestDrainingServesCacheHits(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, warm, _ := post(t, ts, JobRequest{Scenario: testScenario})
	if code != http.StatusOK {
		t.Fatalf("warmup answered %d", code)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, got, hdr := post(t, ts, JobRequest{Scenario: testScenario})
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("draining cache hit: code %d X-Cache %q body %s", code, hdr.Get("X-Cache"), got)
	}
	if !bytes.Equal(got, warm) {
		t.Fatal("draining cache hit body differs")
	}
	// An uncached scenario (different seed) needs the queue: 503.
	other := "-grid 8 -ranks 4 -scheme CR-M -ckpt 5 -tol 1e-10 -seed 8"
	if code, _, _ := post(t, ts, JobRequest{Scenario: other}); code != http.StatusServiceUnavailable {
		t.Fatalf("draining miss answered %d, want 503", code)
	}
}
