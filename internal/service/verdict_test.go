package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"resilience/internal/chaos"
)

// TestVerdictJob pins the verdict-bearing job path: a scenario job with
// verdict set answers with the encoded chaos verdict alongside the usual
// bitwise run facts, deterministically and cacheably.
func TestVerdictJob(t *testing.T) {
	req := JobRequest{Scenario: testScenario, Verdict: true}
	oracleRes, _, err := RunJob(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if oracleRes.Kind != "verdict" {
		t.Fatalf("kind = %q, want verdict", oracleRes.Kind)
	}
	v, err := chaos.ParseVerdict(oracleRes.Verdict)
	if err != nil {
		t.Fatalf("verdict does not parse: %v", err)
	}
	if v.Status != chaos.StatusOK {
		t.Fatalf("status = %q, want ok (violations: %v)", v.Status, v.Violations)
	}
	if v.Encode() != oracleRes.Verdict {
		t.Fatalf("verdict is not an encode fixpoint:\n in: %s\nout: %s", oracleRes.Verdict, v.Encode())
	}
	// The verdict's run facts must agree with the plain scenario job's.
	plain, _, err := RunJob(context.Background(), JobRequest{Scenario: testScenario})
	if err != nil {
		t.Fatal(err)
	}
	if v.RelRes != plain.RelRes || v.SolutionHash != plain.SolutionHash || v.Iters != plain.Iters {
		t.Fatalf("verdict run facts diverge from the scenario job:\nverdict: %+v\nplain:   %+v", v, plain)
	}

	oracle, err := json.Marshal(oracleRes)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Workers: 2, QueueCap: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	code, got, hdr := post(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	if !bytes.Equal(got, oracle) {
		t.Fatalf("HTTP verdict differs from oracle\n got: %s\nwant: %s", got, oracle)
	}
	if hdr.Get("X-Cache") != "miss" {
		t.Fatalf("first verdict request X-Cache = %q, want miss", hdr.Get("X-Cache"))
	}
	code, got2, hdr := post(t, ts, req)
	if code != http.StatusOK || !bytes.Equal(got2, oracle) {
		t.Fatalf("cached verdict differs: status %d body %s", code, got2)
	}
	if hdr.Get("X-Cache") != "hit" {
		t.Fatalf("second verdict request X-Cache = %q, want hit", hdr.Get("X-Cache"))
	}
}

// TestVerdictJobBreakInvariant pins the fleet self-test hook: the named
// invariant fails on faulted scenarios with the exact violation text the
// in-process campaign runner produces, and does nothing on fault-free
// scenarios (a no-fault run cannot be "broken" — there is nothing for
// the campaign to shrink).
func TestVerdictJobBreakInvariant(t *testing.T) {
	res, _, err := RunJob(context.Background(),
		JobRequest{Scenario: testScenario, Verdict: true, BreakInvariant: chaos.InvConvergence})
	if err != nil {
		t.Fatal(err)
	}
	v, err := chaos.ParseVerdict(res.Verdict)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != chaos.StatusFail {
		t.Fatalf("broken verdict status = %q, want fail", v.Status)
	}
	want := chaos.SelfTestViolation(chaos.InvConvergence).String()
	found := false
	for _, viol := range v.Violations {
		if viol == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations %v missing %q", v.Violations, want)
	}

	noFaults := "-grid 6 -ranks 2 -scheme LI -tol 1e-10 -ckpt 0 -detect 0 -seed 3"
	res, _, err = RunJob(context.Background(),
		JobRequest{Scenario: noFaults, Verdict: true, BreakInvariant: chaos.InvConvergence})
	if err != nil {
		t.Fatal(err)
	}
	if v, err = chaos.ParseVerdict(res.Verdict); err != nil {
		t.Fatal(err)
	}
	if v.Status != chaos.StatusOK {
		t.Fatalf("fault-free broken verdict status = %q, want ok", v.Status)
	}
}

// TestVerdictValidation rejects malformed verdict requests at admission.
func TestVerdictValidation(t *testing.T) {
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"verdict without scenario", JobRequest{SleepMs: 1, Verdict: true}},
		{"break without verdict", JobRequest{Scenario: testScenario, BreakInvariant: chaos.InvConvergence}},
		{"unknown invariant", JobRequest{Scenario: testScenario, Verdict: true, BreakInvariant: "gravity"}},
	}
	for _, tc := range cases {
		if err := tc.req.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.req)
		}
	}
}

// TestVerdictCanonicalKey pins verdict cache keying: verdict jobs key
// apart from plain scenario jobs and from differently-broken verdict
// jobs, while flag-order variants of the same verdict job unify.
func TestVerdictCanonicalKey(t *testing.T) {
	plainKey, _, err := CanonicalKey(JobRequest{Scenario: testScenario})
	if err != nil {
		t.Fatal(err)
	}
	vKey, cacheable, err := CanonicalKey(JobRequest{Scenario: testScenario, Verdict: true})
	if err != nil {
		t.Fatal(err)
	}
	if !cacheable {
		t.Fatal("verdict job not cacheable")
	}
	bKey, _, err := CanonicalKey(JobRequest{Scenario: testScenario, Verdict: true, BreakInvariant: chaos.InvConvergence})
	if err != nil {
		t.Fatal(err)
	}
	if plainKey == vKey || vKey == bKey || plainKey == bKey {
		t.Fatalf("verdict keys alias: plain=%q verdict=%q broken=%q", plainKey, vKey, bKey)
	}
	reordered := "-seed 7 -ranks 4 -scheme crm -ckpt 5 -tol 1e-10 -grid 8 -faults SWO@5:r1,SNF@6:r0"
	rKey, _, err := CanonicalKey(JobRequest{Scenario: reordered, Verdict: true})
	if err != nil {
		t.Fatal(err)
	}
	if rKey != vKey {
		t.Fatalf("flag-order variant keys differ:\n %q\n %q", rKey, vKey)
	}
}
