package solver

// Workspace holds the per-rank dense buffers of a distributed CG solve.
// Passing one via Options.Work lets repeated solves — benchmark loops,
// recovery re-solves, sweep harnesses — reuse allocations instead of
// re-making every vector. A zero Workspace is ready to use; buffers grow
// on demand and are retained across solves.
//
// The Result.XLocal of a solve aliases the workspace, so callers that
// reuse one workspace across solves must copy XLocal before the next
// solve if they still need it.
type Workspace struct {
	bLocal, x, r, p, q, z, invD []float64
}

// SeqWorkspace is the sequential-solver analogue, reused across the
// per-fault reconstruction solves of the LI/LSI recovery schemes.
type SeqWorkspace struct {
	r, z, p, q, invD, diag, tmp []float64
}

// wsSized returns a length-n slice backed by *buf with undefined
// contents, growing *buf only when capacity is insufficient. Use it for
// buffers the solver fully overwrites before reading.
func wsSized(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// wsZeroed is wsSized plus clearing, for buffers whose initial zeros are
// semantically meaningful (the x = 0 initial guess).
func wsZeroed(buf *[]float64, n int) []float64 {
	s := wsSized(buf, n)
	for i := range s {
		s[i] = 0
	}
	return s
}
