package solver

import (
	"fmt"
	"os"
	"strings"
)

// SpMVLayout selects the storage layout of the rank-local SpMV kernels.
// Both layouts produce bitwise-identical results and charge the identical
// SpMVFlops cost stream, so virtual time and energy are unaffected; only
// host wall-clock changes.
type SpMVLayout int

const (
	// SpMVAuto resolves the layout from the RES_SPMV environment variable
	// ("sell" or "blocked" for SELL-C-σ) and defaults to CSR.
	SpMVAuto SpMVLayout = iota
	// SpMVCSR uses the row-major CSR kernels — the original layout and
	// the bitwise oracle the blocked kernels are pinned against.
	SpMVCSR
	// SpMVSELL uses SELL-C-σ chunks (sparse.SELL): C rows advance in
	// lockstep through column-major storage, giving the CPU C independent
	// accumulator chains instead of CSR's one.
	SpMVSELL
)

func (l SpMVLayout) String() string {
	switch l {
	case SpMVAuto:
		return "auto"
	case SpMVCSR:
		return "csr"
	case SpMVSELL:
		return "sell"
	}
	return fmt.Sprintf("SpMVLayout(%d)", int(l))
}

// ParseSpMV parses a layout name as the CLIs spell it: "" or "auto"
// (defer to RES_SPMV), "csr", or "sell"/"blocked".
func ParseSpMV(s string) (SpMVLayout, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return SpMVAuto, nil
	case "csr":
		return SpMVCSR, nil
	case "sell", "blocked", "sell-c-sigma":
		return SpMVSELL, nil
	}
	return SpMVAuto, fmt.Errorf("solver: unknown SpMV layout %q (want auto, csr or sell)", s)
}

// spmvFromEnv resolves SpMVAuto against the RES_SPMV environment
// variable. Unrecognized values fall back to CSR so a typo can never
// silently change which kernel produced a result set.
func spmvFromEnv() SpMVLayout {
	switch strings.ToLower(os.Getenv("RES_SPMV")) {
	case "sell", "blocked", "sell-c-sigma":
		return SpMVSELL
	}
	return SpMVCSR
}

// resolveSpMV applies the precedence: an explicit layout wins, SpMVAuto
// consults the environment.
func resolveSpMV(l SpMVLayout) SpMVLayout {
	if l == SpMVAuto {
		return spmvFromEnv()
	}
	return l
}
