package solver

import (
	"fmt"
	"math"

	"resilience/internal/sparse"
	"resilience/internal/vec"
)

// SeqPCG runs sequential preconditioned CG with a diagonal (Jacobi)
// preconditioner: it solves Op*x = b with M = diag(d). The localized
// LI/LSI constructions use it because the synthetic SPD spectra (and many
// real ones) have strongly varying diagonals, where Jacobi scaling cuts
// construction iterations dramatically — construction cost is the t_const
// the paper's Section 4 optimizations target.
//
// Convergence is measured on the true residual norm ||b - Op x|| relative
// to ||b||, matching SeqCG's criterion.
func SeqPCG(apply ApplyFunc, flopsPerApply int64, diag, b, x []float64, tol float64, maxIters int) SeqResult {
	return SeqPCGWork(nil, apply, flopsPerApply, diag, b, x, tol, maxIters)
}

// SeqPCGWork is SeqPCG with caller-supplied scratch buffers, so the
// per-fault reconstruction solves stop allocating. ws may be nil.
func SeqPCGWork(ws *SeqWorkspace, apply ApplyFunc, flopsPerApply int64, diag, b, x []float64, tol float64, maxIters int) SeqResult {
	n := len(b)
	if len(x) != n || len(diag) != n {
		panic(fmt.Sprintf("solver: SeqPCG len(x)=%d len(diag)=%d len(b)=%d", len(x), len(diag), n))
	}
	if maxIters <= 0 {
		maxIters = 10 * n
	}
	if ws == nil {
		ws = new(SeqWorkspace)
	}
	res := SeqResult{}

	invD := wsSized(&ws.invD, n)
	for i, d := range diag {
		if d <= 0 || math.IsNaN(d) {
			// Non-SPD-consistent diagonal: fall back to identity scaling
			// for that entry rather than failing the reconstruction.
			invD[i] = 1
			continue
		}
		invD[i] = 1 / d
	}

	r := wsSized(&ws.r, n)
	z := wsSized(&ws.z, n)
	p := wsSized(&ws.p, n)
	q := wsSized(&ws.q, n)

	apply(r, x)
	vec.Sub(r, b, r)
	res.Flops += flopsPerApply + int64(n)
	for i := range z {
		z[i] = invD[i] * r[i]
	}
	res.Flops += int64(n)
	copy(p, z)
	rho := vec.Dot(r, z)
	rr := vec.Dot(r, r)
	res.Flops += 2 * vec.DotFlops(n)
	normB := vec.Nrm2(b)
	res.Flops += vec.Nrm2Flops(n)
	if normB == 0 {
		normB = 1
	}

	for res.Iters = 0; res.Iters < maxIters; res.Iters++ {
		res.RelRes = math.Sqrt(rr) / normB
		if res.RelRes <= tol {
			res.Converged = true
			return res
		}
		apply(q, p)
		pq := vec.Dot(p, q)
		res.Flops += flopsPerApply + vec.DotFlops(n)
		if pq <= 0 || math.IsNaN(pq) {
			return res
		}
		alpha := rho / pq
		vec.Axpy(alpha, p, x)
		// Fused update: r -= alpha q, z = invD.*r, and both reductions in
		// one pass — bitwise-identical to the unfused sequence.
		var rhoNew, rrNew float64
		for i, qi := range q {
			ri := r[i] - alpha*qi
			r[i] = ri
			zi := invD[i] * ri
			z[i] = zi
			rhoNew += ri * zi
			rrNew += ri * ri
		}
		rr = rrNew
		res.Flops += 2 * vec.AxpyFlops(n)
		res.Flops += int64(n) + 2*vec.DotFlops(n)
		beta := rhoNew / rho
		vec.Xpby(z, beta, p)
		res.Flops += 2 * int64(n)
		rho = rhoNew
	}
	res.RelRes = math.Sqrt(rr) / normB
	res.Converged = res.RelRes <= tol
	return res
}

// SeqPCGMatrix is SeqPCG on a CSR operator with its own diagonal as the
// preconditioner.
func SeqPCGMatrix(a *sparse.CSR, b, x []float64, tol float64, maxIters int) SeqResult {
	return SeqPCGMatrixWork(nil, a, b, x, tol, maxIters)
}

// SeqPCGMatrixWork is SeqPCGMatrix with caller-supplied scratch buffers.
// ws may be nil.
func SeqPCGMatrixWork(ws *SeqWorkspace, a *sparse.CSR, b, x []float64, tol float64, maxIters int) SeqResult {
	if a.Rows != a.Cols || a.Rows != len(b) {
		panic(fmt.Sprintf("solver: SeqPCGMatrix %s with len(b)=%d", a, len(b)))
	}
	if ws == nil {
		ws = new(SeqWorkspace)
	}
	diag := wsSized(&ws.diag, a.Rows)
	for i := range diag {
		diag[i] = a.At(i, i)
	}
	return SeqPCGWork(ws, func(y, v []float64) { a.MulVec(y, v) }, a.SpMVFlops(), diag, b, x, tol, maxIters)
}

// PCGLS solves min ||rhs' - G x|| for the LSI normal-equation operator
// G = M*Mᵀ with Jacobi preconditioning by diag(G)_i = ||row_i(M)||².
func PCGLS(m *sparse.CSR, rhs, x []float64, tol float64, maxIters int) SeqResult {
	return PCGLSWork(nil, m, rhs, x, tol, maxIters)
}

// PCGLSWork is PCGLS with caller-supplied scratch buffers. ws may be nil.
func PCGLSWork(ws *SeqWorkspace, m *sparse.CSR, rhs, x []float64, tol float64, maxIters int) SeqResult {
	if len(rhs) != m.Rows || len(x) != m.Rows {
		panic(fmt.Sprintf("solver: PCGLS %s with len(rhs)=%d len(x)=%d", m, len(rhs), len(x)))
	}
	if ws == nil {
		ws = new(SeqWorkspace)
	}
	diag := wsSized(&ws.diag, m.Rows)
	for i := 0; i < m.Rows; i++ {
		_, vals := m.Row(i)
		var s float64
		for _, v := range vals {
			s += v * v
		}
		diag[i] = s
	}
	tmp := wsSized(&ws.tmp, m.Cols)
	apply := func(y, v []float64) {
		m.MulTransVec(tmp, v)
		m.MulVec(y, tmp)
	}
	return SeqPCGWork(ws, apply, 2*m.SpMVFlops(), diag, rhs, x, tol, maxIters)
}
