package solver

import (
	"fmt"
	"math"

	"resilience/internal/sparse"
	"resilience/internal/vec"
)

// SeqPCG runs sequential preconditioned CG with a diagonal (Jacobi)
// preconditioner: it solves Op*x = b with M = diag(d). The localized
// LI/LSI constructions use it because the synthetic SPD spectra (and many
// real ones) have strongly varying diagonals, where Jacobi scaling cuts
// construction iterations dramatically — construction cost is the t_const
// the paper's Section 4 optimizations target.
//
// Convergence is measured on the true residual norm ||b - Op x|| relative
// to ||b||, matching SeqCG's criterion.
func SeqPCG(apply ApplyFunc, flopsPerApply int64, diag, b, x []float64, tol float64, maxIters int) SeqResult {
	n := len(b)
	if len(x) != n || len(diag) != n {
		panic(fmt.Sprintf("solver: SeqPCG len(x)=%d len(diag)=%d len(b)=%d", len(x), len(diag), n))
	}
	if maxIters <= 0 {
		maxIters = 10 * n
	}
	res := SeqResult{}

	invD := make([]float64, n)
	for i, d := range diag {
		if d <= 0 || math.IsNaN(d) {
			// Non-SPD-consistent diagonal: fall back to identity scaling
			// for that entry rather than failing the reconstruction.
			invD[i] = 1
			continue
		}
		invD[i] = 1 / d
	}

	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)

	apply(r, x)
	vec.Sub(r, b, r)
	res.Flops += flopsPerApply + int64(n)
	for i := range z {
		z[i] = invD[i] * r[i]
	}
	res.Flops += int64(n)
	copy(p, z)
	rho := vec.Dot(r, z)
	rr := vec.Dot(r, r)
	res.Flops += 2 * vec.DotFlops(n)
	normB := vec.Nrm2(b)
	res.Flops += vec.Nrm2Flops(n)
	if normB == 0 {
		normB = 1
	}

	for res.Iters = 0; res.Iters < maxIters; res.Iters++ {
		res.RelRes = math.Sqrt(rr) / normB
		if res.RelRes <= tol {
			res.Converged = true
			return res
		}
		apply(q, p)
		pq := vec.Dot(p, q)
		res.Flops += flopsPerApply + vec.DotFlops(n)
		if pq <= 0 || math.IsNaN(pq) {
			return res
		}
		alpha := rho / pq
		vec.Axpy(alpha, p, x)
		vec.Axpy(-alpha, q, r)
		res.Flops += 2 * vec.AxpyFlops(n)
		for i := range z {
			z[i] = invD[i] * r[i]
		}
		rhoNew := vec.Dot(r, z)
		rr = vec.Dot(r, r)
		res.Flops += int64(n) + 2*vec.DotFlops(n)
		beta := rhoNew / rho
		vec.Xpby(z, beta, p)
		res.Flops += 2 * int64(n)
		rho = rhoNew
	}
	res.RelRes = math.Sqrt(rr) / normB
	res.Converged = res.RelRes <= tol
	return res
}

// SeqPCGMatrix is SeqPCG on a CSR operator with its own diagonal as the
// preconditioner.
func SeqPCGMatrix(a *sparse.CSR, b, x []float64, tol float64, maxIters int) SeqResult {
	if a.Rows != a.Cols || a.Rows != len(b) {
		panic(fmt.Sprintf("solver: SeqPCGMatrix %s with len(b)=%d", a, len(b)))
	}
	return SeqPCG(func(y, v []float64) { a.MulVec(y, v) }, a.SpMVFlops(), a.Diag(), b, x, tol, maxIters)
}

// PCGLS solves min ||rhs' - G x|| for the LSI normal-equation operator
// G = M*Mᵀ with Jacobi preconditioning by diag(G)_i = ||row_i(M)||².
func PCGLS(m *sparse.CSR, rhs, x []float64, tol float64, maxIters int) SeqResult {
	if len(rhs) != m.Rows || len(x) != m.Rows {
		panic(fmt.Sprintf("solver: PCGLS %s with len(rhs)=%d len(x)=%d", m, len(rhs), len(x)))
	}
	diag := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		_, vals := m.Row(i)
		var s float64
		for _, v := range vals {
			s += v * v
		}
		diag[i] = s
	}
	tmp := make([]float64, m.Cols)
	apply := func(y, v []float64) {
		m.MulTransVec(tmp, v)
		m.MulVec(y, tmp)
	}
	return SeqPCG(apply, 2*m.SpMVFlops(), diag, rhs, x, tol, maxIters)
}
