// Package solver implements the Conjugate Gradient method three ways:
// distributed block-row CG over the cluster runtime (the paper's RAPtor
// CG substitute), sequential CG, and CGLS (CG on the normal equations),
// which the paper's Section 4 optimizations use for localized LI/LSI
// reconstruction.
package solver

import (
	"fmt"
	"sort"

	"resilience/internal/cluster"
	"resilience/internal/sparse"
)

// Setup/halo exchange message tags.
const (
	tagSetup = 100
	tagHalo  = 101
)

// LocalOp is one rank's view of the distributed matrix: its row block
// with columns remapped to [own | ghost] local indexing, plus the halo
// communication plan. It provides the distributed SpMV y = (A p)_local.
//
// The communication plan requires a structurally symmetric matrix (true
// for the SPD systems CG addresses): rank r needs values from rank o iff
// o needs values from r, so need-lists can be exchanged pairwise.
type LocalOp struct {
	Part *sparse.Partition
	Rank int
	Lo   int // first owned global row
	N    int // owned rows

	RowBlock *sparse.CSR // A_{p,:} with global column indices
	localA   *sparse.CSR // RowBlock with remapped columns

	neighbors []int         // peer ranks, ascending
	needIdx   map[int][]int // global cols needed from each neighbor (sorted)
	sendIdx   map[int][]int // local row offsets each neighbor needs from us
	recvSlot  map[int][]int // ghost slots for each neighbor's values, in needIdx order
	ghostSlot map[int]int   // global col -> ghost slot
	nGhost    int

	xbuf    []float64 // [own | ghost] assembled vector
	sendBuf []float64
	recvBuf []float64
}

// NewLocalOp builds the rank-local operator and performs the one-time
// need-list exchange. Every rank must call it collectively. The matrix a
// is shared read-only across ranks.
func NewLocalOp(c *cluster.Comm, a *sparse.CSR, part *sparse.Partition) *LocalOp {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("solver: non-square matrix %s", a))
	}
	if part.N != a.Rows || part.P != c.Size() {
		panic(fmt.Sprintf("solver: partition %d/%d does not match matrix %d / ranks %d",
			part.N, part.P, a.Rows, c.Size()))
	}
	r := c.Rank()
	lo, hi := part.Range(r)
	op := &LocalOp{
		Part:     part,
		Rank:     r,
		Lo:       lo,
		N:        hi - lo,
		RowBlock: part.RowBlock(a, r),
		needIdx:  make(map[int][]int),
		sendIdx:  make(map[int][]int),
	}

	// Group halo columns by owner.
	halo := part.HaloCols(a, r)
	op.ghostSlot = make(map[int]int, len(halo))
	for slot, col := range halo {
		op.ghostSlot[col] = slot
		owner := part.Owner(col)
		op.needIdx[owner] = append(op.needIdx[owner], col)
	}
	op.nGhost = len(halo)
	for o := range op.needIdx {
		op.neighbors = append(op.neighbors, o)
	}
	sort.Ints(op.neighbors)

	// Precompute ghost slots per neighbor and size the receive buffer so
	// the per-iteration halo exchange does no map lookups or allocations.
	op.recvSlot = make(map[int][]int, len(op.neighbors))
	maxNeed := 0
	for _, o := range op.neighbors {
		cols := op.needIdx[o]
		slots := make([]int, len(cols))
		for i, col := range cols {
			slots[i] = op.ghostSlot[col]
		}
		op.recvSlot[o] = slots
		if len(cols) > maxNeed {
			maxNeed = len(cols)
		}
	}
	op.recvBuf = make([]float64, maxNeed)

	// Pairwise exchange of need lists (symmetric neighbor relation).
	for _, o := range op.neighbors {
		c.SendInts(o, tagSetup, op.needIdx[o])
	}
	for _, o := range op.neighbors {
		theirCols := c.RecvInts(o, tagSetup)
		idx := make([]int, len(theirCols))
		for i, col := range theirCols {
			if col < lo || col >= hi {
				panic(fmt.Sprintf("solver: rank %d asked for col %d not owned by %d", o, col, r))
			}
			idx[i] = col - lo
		}
		op.sendIdx[o] = idx
	}

	// Remap the row block columns into [own | ghost] indexing.
	la := op.RowBlock.Clone()
	la.Cols = op.N + op.nGhost
	for k, col := range la.ColIdx {
		if col >= lo && col < hi {
			la.ColIdx[k] = col - lo
		} else {
			la.ColIdx[k] = op.N + op.ghostSlot[col]
		}
	}
	// Note: remapping breaks the strictly-increasing column invariant
	// within rows (ghosts land after own columns); SpMV does not require
	// it, and localA is not exposed.
	op.localA = la
	op.xbuf = make([]float64, op.N+op.nGhost)
	return op
}

// Neighbors returns the peer ranks this rank exchanges halo data with.
func (op *LocalOp) Neighbors() []int { return op.neighbors }

// NGhost returns the number of remote x entries this rank reads.
func (op *LocalOp) NGhost() int { return op.nGhost }

// GatherHalo exchanges halo values for the local vector x and returns the
// assembled [own | ghost] buffer (valid until the next call). Every rank
// must call it collectively. c must be the rank's own Comm.
func (op *LocalOp) GatherHalo(c *cluster.Comm, x []float64) []float64 {
	if len(x) != op.N {
		panic(fmt.Sprintf("solver: GatherHalo len(x)=%d, want %d", len(x), op.N))
	}
	copy(op.xbuf[:op.N], x)
	for _, o := range op.neighbors {
		idx := op.sendIdx[o]
		if cap(op.sendBuf) < len(idx) {
			op.sendBuf = make([]float64, len(idx))
		}
		buf := op.sendBuf[:len(idx)]
		for i, li := range idx {
			buf[i] = x[li]
		}
		c.Send(o, tagHalo, buf)
	}
	for _, o := range op.neighbors {
		slots := op.recvSlot[o]
		vals := op.recvBuf[:len(slots)]
		c.RecvInto(o, tagHalo, vals)
		ghost := op.xbuf[op.N:]
		for i, slot := range slots {
			ghost[slot] = vals[i]
		}
	}
	return op.xbuf
}

// MulVecDist computes the local block of the distributed product
// y = A*x, where x and y are this rank's owned blocks. It performs the
// halo exchange and charges the SpMV flops to the rank's clock.
func (op *LocalOp) MulVecDist(c *cluster.Comm, y, x []float64) {
	buf := op.GatherHalo(c, x)
	op.localA.MulVec(y, buf)
	c.Compute(op.localA.SpMVFlops())
}

// OffDiagApply computes y = b_local - sum_{j != rank} A_{rank,j} x_j given
// an assembled [own|ghost] buffer from GatherHalo: the right-hand side of
// the LI reconstruction (Eq. 19). Only ghost columns contribute to the
// subtracted sum. Flops are charged to the rank's clock.
func (op *LocalOp) OffDiagApply(c *cluster.Comm, y, bLocal []float64, buf []float64) {
	if len(y) != op.N || len(bLocal) != op.N {
		panic("solver: OffDiagApply dimension mismatch")
	}
	var flops int64
	for i := 0; i < op.N; i++ {
		s := bLocal[i]
		lo, hi := op.localA.RowPtr[i], op.localA.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			if col := op.localA.ColIdx[k]; col >= op.N {
				s -= op.localA.Val[k] * buf[col]
				flops += 2
			}
		}
		y[i] = s
	}
	c.Compute(flops)
}
