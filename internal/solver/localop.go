// Package solver implements the Conjugate Gradient method three ways:
// distributed block-row CG over the cluster runtime (the paper's RAPtor
// CG substitute), sequential CG, and CGLS (CG on the normal equations),
// which the paper's Section 4 optimizations use for localized LI/LSI
// reconstruction.
package solver

import (
	"fmt"
	"sort"

	"resilience/internal/cluster"
	"resilience/internal/obs"
	"resilience/internal/sparse"
)

// Setup/halo exchange message tags.
const (
	tagSetup = 100
	tagHalo  = 101
)

// LocalOp is one rank's view of the distributed matrix: its row block
// with columns remapped to [own | ghost] local indexing, plus the halo
// communication plan. It provides the distributed SpMV y = (A p)_local.
//
// The communication plan requires a structurally symmetric matrix (true
// for the SPD systems CG addresses): rank r needs values from rank o iff
// o needs values from r, so need-lists can be exchanged pairwise.
type LocalOp struct {
	Part *sparse.Partition
	Rank int
	Lo   int // first owned global row
	N    int // owned rows

	RowBlock *sparse.CSR // A_{p,:} with global column indices
	localA   *sparse.CSR // RowBlock with remapped columns

	neighbors []int         // peer ranks, ascending
	needIdx   map[int][]int // global cols needed from each neighbor (sorted)
	sendIdx   map[int][]int // local row offsets each neighbor needs from us
	recvSlot  map[int][]int // ghost slots for each neighbor's values, in needIdx order
	ghostSlot map[int]int   // global col -> ghost slot
	nGhost    int

	xbuf    []float64 // [own | ghost] assembled vector
	sendBuf []float64
	recvBuf []float64

	// Interior/boundary split of localA for the overlapped SpMV path:
	// interior rows touch no ghost column and can be multiplied while the
	// halo exchange is in flight; boundary rows wait for it to complete.
	interior *blockRows
	boundary *blockRows
	overlap  bool

	// SELL-C-σ views of localA and of the interior/boundary subsets,
	// built by SetSpMV(SpMVSELL). Bitwise-identical products, identical
	// flops charged; only host wall-clock differs.
	sellA   *sparse.SELL
	sellInt *sparse.SELL
	sellBdy *sparse.SELL
	layout  SpMVLayout

	// Per-neighbor owned buffers for the overlapped path: every posted
	// send and pending receive keeps its own storage, so in-flight
	// payloads never alias whatever staging buffer the next post reuses.
	sendBufs map[int][]float64
	recvBufs map[int][]float64
	recvReqs []cluster.RecvReq
}

// blockRows is a packed subset of a matrix's rows: row i of the subset is
// original row rows[i], with its entries stored in the original order.
// mulVecInto writes y[rows[i]] directly, so splitting a matrix into
// disjoint row subsets and applying each reproduces the full MulVec
// bit-for-bit: per-row accumulation order is untouched and every target
// element is stored exactly once.
type blockRows struct {
	rows   []int
	rowPtr []int
	colIdx []int
	val    []float64
}

func newBlockRows(a *sparse.CSR, rows []int) *blockRows {
	b := &blockRows{
		rows:   rows,
		rowPtr: make([]int, len(rows)+1),
	}
	nnz := 0
	for _, r := range rows {
		nnz += a.RowPtr[r+1] - a.RowPtr[r]
	}
	b.colIdx = make([]int, 0, nnz)
	b.val = make([]float64, 0, nnz)
	for i, r := range rows {
		lo, hi := a.RowPtr[r], a.RowPtr[r+1]
		b.colIdx = append(b.colIdx, a.ColIdx[lo:hi]...)
		b.val = append(b.val, a.Val[lo:hi]...)
		b.rowPtr[i+1] = len(b.val)
	}
	return b
}

// mulVecInto computes y[rows[i]] = sum_k val[k]*x[colIdx[k]] for each
// packed row, mirroring sparse.CSR.MulVec's accumulation order.
func (b *blockRows) mulVecInto(y, x []float64) {
	rowPtr := b.rowPtr
	for i, r := range b.rows {
		lo, hi := rowPtr[i], rowPtr[i+1]
		cols := b.colIdx[lo:hi]
		vals := b.val[lo:hi]
		vals = vals[:len(cols)]
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[r] = s
	}
}

func (b *blockRows) flops() int64 { return 2 * int64(len(b.val)) }

// NewLocalOp builds the rank-local operator and performs the one-time
// need-list exchange. Every rank must call it collectively. The matrix a
// is shared read-only across ranks.
func NewLocalOp(c *cluster.Comm, a *sparse.CSR, part *sparse.Partition) *LocalOp {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("solver: non-square matrix %s", a))
	}
	if part.N != a.Rows || part.P != c.Size() {
		panic(fmt.Sprintf("solver: partition %d/%d does not match matrix %d / ranks %d",
			part.N, part.P, a.Rows, c.Size()))
	}
	r := c.Rank()
	lo, hi := part.Range(r)
	op := &LocalOp{
		Part:     part,
		Rank:     r,
		Lo:       lo,
		N:        hi - lo,
		RowBlock: part.RowBlock(a, r),
		needIdx:  make(map[int][]int),
		sendIdx:  make(map[int][]int),
	}

	// Group halo columns by owner.
	halo := part.HaloCols(a, r)
	op.ghostSlot = make(map[int]int, len(halo))
	for slot, col := range halo {
		op.ghostSlot[col] = slot
		owner := part.Owner(col)
		op.needIdx[owner] = append(op.needIdx[owner], col)
	}
	op.nGhost = len(halo)
	for o := range op.needIdx {
		op.neighbors = append(op.neighbors, o)
	}
	sort.Ints(op.neighbors)

	// Precompute ghost slots per neighbor and size the receive buffer so
	// the per-iteration halo exchange does no map lookups or allocations.
	op.recvSlot = make(map[int][]int, len(op.neighbors))
	maxNeed := 0
	for _, o := range op.neighbors {
		cols := op.needIdx[o]
		slots := make([]int, len(cols))
		for i, col := range cols {
			slots[i] = op.ghostSlot[col]
		}
		op.recvSlot[o] = slots
		if len(cols) > maxNeed {
			maxNeed = len(cols)
		}
	}
	op.recvBuf = make([]float64, maxNeed)

	// Pairwise exchange of need lists (symmetric neighbor relation).
	for _, o := range op.neighbors {
		c.SendInts(o, tagSetup, op.needIdx[o])
	}
	for _, o := range op.neighbors {
		theirCols := c.RecvInts(o, tagSetup)
		idx := make([]int, len(theirCols))
		for i, col := range theirCols {
			if col < lo || col >= hi {
				panic(fmt.Sprintf("solver: rank %d asked for col %d not owned by %d", o, col, r))
			}
			idx[i] = col - lo
		}
		op.sendIdx[o] = idx
	}

	// Remap the row block columns into [own | ghost] indexing.
	la := op.RowBlock.Clone()
	la.Cols = op.N + op.nGhost
	for k, col := range la.ColIdx {
		if col >= lo && col < hi {
			la.ColIdx[k] = col - lo
		} else {
			la.ColIdx[k] = op.N + op.ghostSlot[col]
		}
	}
	// Note: remapping breaks the strictly-increasing column invariant
	// within rows (ghosts land after own columns); SpMV does not require
	// it, and localA is not exposed.
	op.localA = la
	op.xbuf = make([]float64, op.N+op.nGhost)

	// Split localA rows by whether they touch a ghost column. Rows with
	// no entries are interior (they depend on nothing remote).
	var intRows, bdyRows []int
	for i := 0; i < op.N; i++ {
		touchesGhost := false
		for k := la.RowPtr[i]; k < la.RowPtr[i+1]; k++ {
			if la.ColIdx[k] >= op.N {
				touchesGhost = true
				break
			}
		}
		if touchesGhost {
			bdyRows = append(bdyRows, i)
		} else {
			intRows = append(intRows, i)
		}
	}
	op.interior = newBlockRows(la, intRows)
	op.boundary = newBlockRows(la, bdyRows)

	// Per-neighbor owned buffers for the overlapped halo exchange.
	op.sendBufs = make(map[int][]float64, len(op.neighbors))
	op.recvBufs = make(map[int][]float64, len(op.neighbors))
	for _, o := range op.neighbors {
		op.sendBufs[o] = make([]float64, len(op.sendIdx[o]))
		op.recvBufs[o] = make([]float64, len(op.needIdx[o]))
	}
	op.recvReqs = make([]cluster.RecvReq, len(op.neighbors))
	return op
}

// toSELL converts the packed row subset to SELL-C-σ; the subset's
// scatter targets compose with the σ permutation into the SELL output
// map, so the blocked product lands rows exactly where mulVecInto would.
func (b *blockRows) toSELL(cols int) *sparse.SELL {
	return sparse.NewSELLFromRows(len(b.rows), cols, b.rowPtr, b.colIdx, b.val, b.rows,
		sparse.DefaultSELLC, sparse.DefaultSELLSigma)
}

// SetSpMV selects the local SpMV kernel layout (SpMVAuto resolves
// RES_SPMV). Selecting SELL converts localA and the interior/boundary
// subsets once; results and the charged flops are bitwise-identical to
// the CSR kernels. Safe to call once after NewLocalOp, before solving.
func (op *LocalOp) SetSpMV(l SpMVLayout) {
	l = resolveSpMV(l)
	op.layout = l
	if l != SpMVSELL {
		op.sellA, op.sellInt, op.sellBdy = nil, nil, nil
		return
	}
	if op.sellA == nil {
		op.sellA = sparse.NewSELLFromCSR(op.localA, sparse.DefaultSELLC, sparse.DefaultSELLSigma)
		op.sellInt = op.interior.toSELL(op.localA.Cols)
		op.sellBdy = op.boundary.toSELL(op.localA.Cols)
	}
}

// SpMV reports the resolved kernel layout.
func (op *LocalOp) SpMV() SpMVLayout {
	if op.layout == SpMVAuto {
		return SpMVCSR
	}
	return op.layout
}

// SetOverlap selects the overlapped MulVecDist path: halo sends and
// receives are posted nonblocking, the interior rows are multiplied
// while the exchange is in flight, and the boundary rows follow once it
// completes. The result is bitwise-identical to the fused path; only the
// modeled clock differs. Collective discipline applies: every rank must
// use the same setting.
func (op *LocalOp) SetOverlap(on bool) { op.overlap = on }

// Overlap reports whether the overlapped MulVecDist path is selected.
func (op *LocalOp) Overlap() bool { return op.overlap }

// InteriorRows returns how many owned rows touch no ghost column — the
// rows whose SpMV work can hide the halo exchange.
func (op *LocalOp) InteriorRows() int { return len(op.interior.rows) }

// Neighbors returns the peer ranks this rank exchanges halo data with.
func (op *LocalOp) Neighbors() []int { return op.neighbors }

// NGhost returns the number of remote x entries this rank reads.
func (op *LocalOp) NGhost() int { return op.nGhost }

// GatherHalo exchanges halo values for the local vector x and returns the
// assembled [own | ghost] buffer (valid until the next call). Every rank
// must call it collectively. c must be the rank's own Comm.
func (op *LocalOp) GatherHalo(c *cluster.Comm, x []float64) []float64 {
	if len(x) != op.N {
		panic(fmt.Sprintf("solver: GatherHalo len(x)=%d, want %d", len(x), op.N))
	}
	if o := c.Observer(); o != nil {
		start := c.Clock()
		defer func() { o.Span(obs.SpanHalo, start, c.Clock()-start) }()
	}
	copy(op.xbuf[:op.N], x)
	for _, o := range op.neighbors {
		idx := op.sendIdx[o]
		if cap(op.sendBuf) < len(idx) {
			op.sendBuf = make([]float64, len(idx))
		}
		buf := op.sendBuf[:len(idx)]
		for i, li := range idx {
			buf[i] = x[li]
		}
		c.Send(o, tagHalo, buf)
	}
	for _, o := range op.neighbors {
		slots := op.recvSlot[o]
		vals := op.recvBuf[:len(slots)]
		c.RecvInto(o, tagHalo, vals)
		ghost := op.xbuf[op.N:]
		for i, slot := range slots {
			ghost[slot] = vals[i]
		}
	}
	return op.xbuf
}

// MulVecDist computes the local block of the distributed product
// y = A*x, where x and y are this rank's owned blocks. It dispatches to
// the fused or overlapped kernel according to SetOverlap; both produce
// bitwise-identical y.
func (op *LocalOp) MulVecDist(c *cluster.Comm, y, x []float64) {
	if op.overlap {
		op.mulVecDistOverlap(c, y, x)
		return
	}
	buf := op.GatherHalo(c, x)
	if op.sellA != nil {
		op.sellA.MulVec(y, buf)
	} else {
		op.localA.MulVec(y, buf)
	}
	c.Compute(op.localA.SpMVFlops())
}

// mulVecDistOverlap hides the halo exchange behind the interior SpMV:
// post every send and receive nonblocking, multiply the interior rows
// while messages are in flight, then complete the receives, scatter the
// ghost values, and multiply the boundary rows. Sends charge no CPU time
// (the NIC injects them, serially), so the overlapped span costs
// max(halo exchange, interior compute) on the modeled clock instead of
// their sum. When every row is boundary (tiny blocks, many ranks) there
// is no interior work to hide behind and the path degenerates to the
// fused cost.
func (op *LocalOp) mulVecDistOverlap(c *cluster.Comm, y, x []float64) {
	if len(x) != op.N {
		panic(fmt.Sprintf("solver: MulVecDist len(x)=%d, want %d", len(x), op.N))
	}
	copy(op.xbuf[:op.N], x)
	for _, o := range op.neighbors {
		buf := op.sendBufs[o]
		for i, li := range op.sendIdx[o] {
			buf[i] = x[li]
		}
		c.ISend(o, tagHalo, buf)
	}
	for i, o := range op.neighbors {
		op.recvReqs[i] = c.IRecvInto(o, tagHalo, op.recvBufs[o])
	}

	// Interior rows read only owned entries of xbuf, so they are safe to
	// multiply before the ghost region is filled.
	intStart := c.Clock()
	if op.sellInt != nil {
		op.sellInt.MulVec(y, op.xbuf)
	} else {
		op.interior.mulVecInto(y, op.xbuf)
	}
	c.Compute(op.interior.flops())
	if o := c.Observer(); o != nil {
		o.Span(obs.SpanSpMVInterior, intStart, c.Clock()-intStart)
	}

	ghost := op.xbuf[op.N:]
	for i, o := range op.neighbors {
		op.recvReqs[i].Wait()
		vals := op.recvBufs[o]
		for j, slot := range op.recvSlot[o] {
			ghost[slot] = vals[j]
		}
	}
	bdyStart := c.Clock()
	if op.sellBdy != nil {
		op.sellBdy.MulVec(y, op.xbuf)
	} else {
		op.boundary.mulVecInto(y, op.xbuf)
	}
	c.Compute(op.boundary.flops())
	if o := c.Observer(); o != nil {
		o.Span(obs.SpanSpMVBoundary, bdyStart, c.Clock()-bdyStart)
	}
}

// OffDiagApply computes y = b_local - sum_{j != rank} A_{rank,j} x_j given
// an assembled [own|ghost] buffer from GatherHalo: the right-hand side of
// the LI reconstruction (Eq. 19). Only ghost columns contribute to the
// subtracted sum. Flops are charged to the rank's clock.
func (op *LocalOp) OffDiagApply(c *cluster.Comm, y, bLocal []float64, buf []float64) {
	if len(y) != op.N || len(bLocal) != op.N {
		panic("solver: OffDiagApply dimension mismatch")
	}
	var flops int64
	for i := 0; i < op.N; i++ {
		s := bLocal[i]
		lo, hi := op.localA.RowPtr[i], op.localA.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			if col := op.localA.ColIdx[k]; col >= op.N {
				s -= op.localA.Val[k] * buf[col]
				flops += 2
			}
		}
		y[i] = s
	}
	c.Compute(flops)
}
