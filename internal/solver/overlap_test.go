package solver

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"resilience/internal/cluster"
	"resilience/internal/matgen"
	"resilience/internal/platform"
	"resilience/internal/power"
	"resilience/internal/sparse"
)

// randSymCSR builds a random structurally symmetric matrix with a full
// diagonal — the pattern class LocalOp's pairwise halo plan requires.
func randSymCSR(rng *rand.Rand, n, extraPerRow int) *sparse.CSR {
	cols := make([]map[int]float64, n)
	for i := 0; i < n; i++ {
		cols[i] = map[int]float64{i: 2 + rng.Float64()}
	}
	for i := 0; i < n; i++ {
		for e := 0; e < extraPerRow; e++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.NormFloat64()
			cols[i][j] = v
			cols[j][i] = v
		}
	}
	m := sparse.NewCSR(n, n, 0)
	for i := 0; i < n; i++ {
		var cs []int
		for j := range cols[i] {
			cs = append(cs, j)
		}
		sort.Ints(cs)
		for _, j := range cs {
			m.ColIdx = append(m.ColIdx, j)
			m.Val = append(m.Val, cols[i][j])
		}
		m.RowPtr[i+1] = len(m.Val)
	}
	return m
}

// TestMulVecDistOverlapBitwise pins the tentpole equivalence: the
// overlapped distributed SpMV produces bitwise-identical results to the
// fused kernel (and to the sequential global product) over random
// structurally symmetric matrices and partitions, across repeated
// applications that reuse the operators' internal buffers.
func TestMulVecDistOverlapBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct{ n, extra, ranks int }{
		{1, 0, 1},
		{4, 1, 2},
		{9, 2, 3},
		{16, 3, 4},
		{33, 2, 5},
		{64, 4, 8},
		{100, 6, 7},
		{128, 3, 16},
	}
	for _, tc := range cases {
		a := randSymCSR(rng, tc.n, tc.extra)
		part := sparse.NewPartition(tc.n, tc.ranks)
		// Three rounds with distinct global vectors exercise buffer reuse
		// (stale ghost values, in-flight aliasing) across iterations.
		xs := make([][]float64, 3)
		for r := range xs {
			xs[r] = make([]float64, tc.n)
			for i := range xs[r] {
				xs[r][i] = rng.NormFloat64()
			}
		}
		_, err := cluster.Run(tc.ranks, platform.Default(), power.NewMeter(false), func(c *cluster.Comm) error {
			fused := NewLocalOp(c, a, part)
			over := NewLocalOp(c, a, part)
			over.SetOverlap(true)
			if got := fused.InteriorRows() + len(fused.boundary.rows); got != fused.N {
				return fmt.Errorf("rank %d: interior+boundary rows %d != %d owned", c.Rank(), got, fused.N)
			}
			if got := fused.interior.flops() + fused.boundary.flops(); got != fused.localA.SpMVFlops() {
				return fmt.Errorf("rank %d: split flops %d != fused %d", c.Rank(), got, fused.localA.SpMVFlops())
			}
			lo, hi := part.Range(c.Rank())
			yRef := make([]float64, tc.n)
			y1 := make([]float64, fused.N)
			y2 := make([]float64, over.N)
			for r, x := range xs {
				a.MulVec(yRef, x)
				xl := part.Slice(x, c.Rank())
				fused.MulVecDist(c, y1, xl)
				over.MulVecDist(c, y2, xl)
				for i := 0; i < fused.N; i++ {
					if math.Float64bits(y1[i]) != math.Float64bits(y2[i]) {
						return fmt.Errorf("rank %d round %d: overlap row %d = %x, fused = %x",
							c.Rank(), r, lo+i, math.Float64bits(y2[i]), math.Float64bits(y1[i]))
					}
					if math.Float64bits(y1[i]) != math.Float64bits(yRef[lo+i]) {
						return fmt.Errorf("rank %d round %d: fused row %d = %x, global = %x",
							c.Rank(), r, lo+i, math.Float64bits(y1[i]), math.Float64bits(yRef[lo+i]))
					}
				}
				_ = hi
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d ranks=%d: %v", tc.n, tc.ranks, err)
		}
	}
}

// TestOverlapNeverSlower checks the clock model end-to-end on a stencil:
// an overlapped CG solve's modeled time never exceeds the fused solve's,
// and the iterates match bitwise.
func TestOverlapNeverSlower(t *testing.T) {
	a := matgen.Laplacian2D(24)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	for _, ranks := range []int{2, 4, 8} {
		part := sparse.NewPartition(a.Rows, ranks)
		var tFused, tOver float64
		var hFused, hOver []float64
		for _, overlap := range []bool{false, true} {
			var hist []float64
			maxClock, err := cluster.Run(ranks, platform.Default(), power.NewMeter(false), func(c *cluster.Comm) error {
				res, err := CG(c, a, b, part, Options{Tol: 1e-10, Overlap: overlap})
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					hist = res.History
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if overlap {
				tOver, hOver = maxClock, hist
			} else {
				tFused, hFused = maxClock, hist
			}
		}
		if tOver > tFused {
			t.Errorf("ranks=%d: overlapped solve slower than fused: %g > %g", ranks, tOver, tFused)
		}
		if len(hFused) != len(hOver) {
			t.Fatalf("ranks=%d: history lengths differ: %d vs %d", ranks, len(hFused), len(hOver))
		}
		for i := range hFused {
			if math.Float64bits(hFused[i]) != math.Float64bits(hOver[i]) {
				t.Fatalf("ranks=%d: residual history diverges at iteration %d", ranks, i)
			}
		}
	}
}
