package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"resilience/internal/matgen"
	"resilience/internal/sparse"
	"resilience/internal/vec"
)

func relErr(x, want []float64) float64 {
	return vec.Dist2(x, want) / math.Max(vec.Nrm2(want), 1)
}

func TestSeqCGOnLaplacian(t *testing.T) {
	a := matgen.Laplacian2D(12)
	b, xTrue := matgen.RHS(a)
	x := make([]float64, a.Rows)
	res := SeqCGMatrix(a, b, x, 1e-12, 10*a.Rows)
	if !res.Converged {
		t.Fatalf("did not converge: relres %g after %d iters", res.RelRes, res.Iters)
	}
	if e := relErr(x, xTrue); e > 1e-8 {
		t.Errorf("solution error %g", e)
	}
	if res.Flops <= 0 {
		t.Error("flop accounting missing")
	}
}

func TestSeqCGWarmStart(t *testing.T) {
	a := matgen.Laplacian1D(50)
	b, xTrue := matgen.RHS(a)
	// Starting at the solution must converge immediately.
	x := append([]float64(nil), xTrue...)
	res := SeqCGMatrix(a, b, x, 1e-10, 100)
	if !res.Converged || res.Iters != 0 {
		t.Errorf("warm start took %d iterations", res.Iters)
	}
}

func TestSeqCGZeroRHS(t *testing.T) {
	a := matgen.Laplacian1D(10)
	b := make([]float64, 10)
	x := make([]float64, 10)
	res := SeqCGMatrix(a, b, x, 1e-12, 100)
	if !res.Converged {
		t.Error("zero RHS must converge trivially")
	}
}

func TestSeqCGMaxItersRespected(t *testing.T) {
	a := matgen.BandedSPD(matgen.BandedOpts{N: 200, NNZPerRow: 5, Kappa: 1e6, Seed: 1})
	b, _ := matgen.RHS(a)
	x := make([]float64, a.Rows)
	res := SeqCGMatrix(a, b, x, 1e-14, 3)
	if res.Iters > 3 {
		t.Errorf("ran %d iterations with cap 3", res.Iters)
	}
	if res.Converged {
		t.Error("cannot have converged in 3 iterations on kappa=1e6")
	}
}

// Property: SeqCG solves random small SPD systems.
func TestQuickSeqCGSolves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		a := matgen.BandedSPD(matgen.BandedOpts{N: n, NNZPerRow: 5, Kappa: 50, Seed: seed})
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, want)
		x := make([]float64, n)
		res := SeqCGMatrix(a, b, x, 1e-12, 20*n)
		return res.Converged && relErr(x, want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSeqPCGMatchesCG(t *testing.T) {
	a := matgen.BandedSPD(matgen.BandedOpts{N: 300, NNZPerRow: 7, Kappa: 5000, Seed: 2})
	b, _ := matgen.RHS(a)
	xcg := make([]float64, a.Rows)
	rcg := SeqCGMatrix(a, b, xcg, 1e-10, 10*a.Rows)
	xpcg := make([]float64, a.Rows)
	rpcg := SeqPCGMatrix(a, b, xpcg, 1e-10, 10*a.Rows)
	if !rcg.Converged || !rpcg.Converged {
		t.Fatalf("convergence: cg=%v pcg=%v", rcg.Converged, rpcg.Converged)
	}
	if e := relErr(xpcg, xcg); e > 1e-6 {
		t.Errorf("PCG and CG disagree: %g", e)
	}
	// Jacobi must pay off on this spread-diagonal matrix.
	if rpcg.Iters >= rcg.Iters {
		t.Errorf("PCG %d iters not better than CG %d", rpcg.Iters, rcg.Iters)
	}
}

func TestSeqPCGHandlesBadDiagonal(t *testing.T) {
	// A zero diagonal entry must not crash the preconditioner.
	a := matgen.Laplacian1D(20)
	b, _ := matgen.RHS(a)
	diag := a.Diag()
	diag[3] = 0
	diag[7] = -1
	x := make([]float64, 20)
	res := SeqPCG(func(y, v []float64) { a.MulVec(y, v) }, a.SpMVFlops(), diag, b, x, 1e-10, 400)
	if !res.Converged {
		t.Error("PCG with patched diagonal did not converge")
	}
}

func TestCGLSSolvesLeastSquares(t *testing.T) {
	// Build a full-row-rank wide matrix M (rows < cols) and consistent
	// rhs: CGLS solves (M Mᵀ) x = rhs.
	rng := rand.New(rand.NewSource(5))
	coo := sparse.NewCOO(10, 30)
	for i := 0; i < 10; i++ {
		coo.Add(i, i, 5+rng.Float64())
		for k := 0; k < 4; k++ {
			coo.Add(i, 10+rng.Intn(20), rng.NormFloat64())
		}
	}
	m := coo.ToCSR()
	want := make([]float64, 10)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	// rhs = G*want with G = M Mᵀ.
	tmp := make([]float64, 30)
	m.MulTransVec(tmp, want)
	rhs := make([]float64, 10)
	m.MulVec(rhs, tmp)

	x := make([]float64, 10)
	res := CGLS(m, rhs, x, 1e-12, 1000)
	if !res.Converged {
		t.Fatalf("CGLS did not converge: %g", res.RelRes)
	}
	if e := relErr(x, want); e > 1e-6 {
		t.Errorf("CGLS error %g", e)
	}

	// PCGLS solves the same system at least as robustly.
	x2 := make([]float64, 10)
	res2 := PCGLS(m, rhs, x2, 1e-12, 1000)
	if !res2.Converged {
		t.Fatalf("PCGLS did not converge: %g", res2.RelRes)
	}
	if e := relErr(x2, want); e > 1e-6 {
		t.Errorf("PCGLS error %g", e)
	}
}

func TestSeqCGPanicsOnMismatch(t *testing.T) {
	a := matgen.Laplacian1D(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SeqCGMatrix(a, make([]float64, 5), make([]float64, 5), 1e-10, 10)
}
