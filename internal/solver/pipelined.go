package solver

import (
	"fmt"
	"math"

	"resilience/internal/cluster"
	"resilience/internal/sparse"
	"resilience/internal/vec"
)

// PipelinedCG is the communication-reduced CG variant of Ghysels &
// Vanroose: it fuses the two dot-product reductions of classic CG into a
// single allreduce per iteration at the cost of one extra SpMV-sized
// recurrence. On latency-bound systems (the regime the paper's Section 6
// projects, where T_O grows with log P) it halves the synchronization
// count — an extension used by the parallel-overhead ablations.
//
// The recurrences follow the standard derivation:
//
//	w = A r
//	gamma = (r,r), delta = (w,r)         — one fused allreduce
//	beta = gamma/gamma_old, alpha = gamma/(delta - beta*gamma/alpha_old)
//	p = r + beta p;  q = w + beta q      — q tracks A p
//	x += alpha p;  r -= alpha q;  w = A r
//
// Fault recovery hooks are not wired into this variant; it exists to
// quantify the synchronization trade-off against the monitored CG.
func PipelinedCG(c *cluster.Comm, a *sparse.CSR, b []float64, part *sparse.Partition, opts Options) (*Result, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("solver: PipelinedCG len(b)=%d for %s", len(b), a)
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-12
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 10 * a.Rows
	}
	if opts.Monitor != nil {
		return nil, fmt.Errorf("solver: PipelinedCG does not support monitors")
	}
	op := NewLocalOp(c, a, part)
	op.SetOverlap(opts.Overlap)
	n := op.N

	ws := opts.Work
	if ws == nil {
		ws = new(Workspace)
	}
	bLocal := wsSized(&ws.bLocal, n)
	copy(bLocal, part.Slice(b, c.Rank()))
	x := wsZeroed(&ws.x, n)
	if opts.X0 != nil {
		copy(x, part.Slice(opts.X0, c.Rank()))
	}
	r := wsSized(&ws.r, n)
	w := wsSized(&ws.z, n) // the extra pipelined recurrence vector
	p := wsZeroed(&ws.p, n)
	q := wsZeroed(&ws.q, n)

	// r = b - A x;  w = A r.
	op.MulVecDist(c, r, x)
	vec.Sub(r, bLocal, r)
	c.Compute(int64(n))
	op.MulVecDist(c, w, r)

	localBB := vec.Dot(bLocal, bLocal)
	c.Compute(vec.DotFlops(n))
	normB := math.Sqrt(c.AllreduceScalarSum(localBB))
	if normB == 0 {
		normB = 1
	}

	res := &Result{}
	var gammaOld, alphaOld float64
	first := true
	for res.Iters = 0; res.Iters < opts.MaxIters; res.Iters++ {
		// One fused reduction: gamma = (r,r), delta = (w,r).
		localG := vec.Dot(r, r)
		localD := vec.Dot(w, r)
		c.Compute(2 * vec.DotFlops(n))
		gamma, delta := c.AllreduceSum2(localG, localD)

		relres := math.Sqrt(gamma) / normB
		if c.Rank() == 0 {
			res.History = append(res.History, relres)
		}
		if relres <= opts.Tol {
			res.Converged = true
			res.RelRes = relres
			break
		}

		var alpha, beta float64
		if first {
			beta = 0
			alpha = gamma / delta
			first = false
		} else {
			beta = gamma / gammaOld
			denom := delta - beta*gamma/alphaOld
			if denom == 0 || math.IsNaN(denom) {
				res.RelRes = relres
				res.XLocal = x
				return res, nil
			}
			alpha = gamma / denom
		}
		if alpha <= 0 || math.IsNaN(alpha) {
			res.RelRes = relres
			res.XLocal = x
			return res, nil
		}

		// p = r + beta p;  q = w + beta q.
		vec.Xpby(r, beta, p)
		vec.Xpby(w, beta, q)
		// x += alpha p;  r -= alpha q.
		vec.Axpy(alpha, p, x)
		vec.Axpy(-alpha, q, r)
		c.Compute(4 * vec.AxpyFlops(n))
		// w = A r (the pipelined SpMV that overlaps the next reduction on
		// real hardware; virtual time charges it sequentially, which is
		// conservative).
		op.MulVecDist(c, w, r)

		gammaOld, alphaOld = gamma, alpha
	}
	if !res.Converged {
		localG := vec.Dot(r, r)
		c.Compute(vec.DotFlops(n))
		gamma := c.AllreduceScalarSum(localG)
		res.RelRes = math.Sqrt(gamma) / normB
		res.Converged = res.RelRes <= opts.Tol
	}
	res.XLocal = x
	return res, nil
}
