package solver

import (
	"fmt"
	"math"

	"resilience/internal/sparse"
	"resilience/internal/vec"
)

// ApplyFunc computes y = Op*x for an implicit linear operator.
type ApplyFunc func(y, x []float64)

// SeqResult reports a sequential solve.
type SeqResult struct {
	Iters     int
	RelRes    float64
	Converged bool
	// Flops is the total flop count, for charging to a virtual clock.
	Flops int64
}

// SeqCG runs plain sequential CG on the SPD operator apply, solving
// Op*x = b starting from the provided x (updated in place). It converges
// when ||r||/||b|| <= tol or maxIters is reached. flopsPerApply is the
// operator's per-application flop count for the cost accounting.
//
// This is the localized construction kernel of the paper's Section 4.1:
// the failed process solves its reconstruction system with local CG
// instead of LU/QR, trading exactness (unneeded — the target is itself an
// approximation of the lost data) for time and energy.
func SeqCG(apply ApplyFunc, flopsPerApply int64, b, x []float64, tol float64, maxIters int) SeqResult {
	return SeqCGWork(nil, apply, flopsPerApply, b, x, tol, maxIters)
}

// SeqCGWork is SeqCG with caller-supplied scratch buffers, so repeated
// reconstruction solves (one per fault) stop allocating. ws may be nil.
func SeqCGWork(ws *SeqWorkspace, apply ApplyFunc, flopsPerApply int64, b, x []float64, tol float64, maxIters int) SeqResult {
	n := len(b)
	if len(x) != n {
		panic(fmt.Sprintf("solver: SeqCG len(x)=%d len(b)=%d", len(x), n))
	}
	if maxIters <= 0 {
		maxIters = 10 * n
	}
	if ws == nil {
		ws = new(SeqWorkspace)
	}
	res := SeqResult{}

	r := wsSized(&ws.r, n)
	p := wsSized(&ws.p, n)
	q := wsSized(&ws.q, n)

	apply(r, x)
	vec.Sub(r, b, r)
	res.Flops += flopsPerApply + int64(n)
	copy(p, r)
	rho := vec.Dot(r, r)
	res.Flops += vec.DotFlops(n)
	normB := vec.Nrm2(b)
	res.Flops += vec.Nrm2Flops(n)
	if normB == 0 {
		normB = 1
	}

	for res.Iters = 0; res.Iters < maxIters; res.Iters++ {
		res.RelRes = math.Sqrt(rho) / normB
		if res.RelRes <= tol {
			res.Converged = true
			return res
		}
		apply(q, p)
		pq := vec.Dot(p, q)
		res.Flops += flopsPerApply + vec.DotFlops(n)
		if pq <= 0 || math.IsNaN(pq) {
			// Loss of positive-definiteness in finite precision; stop
			// with the best iterate so far.
			return res
		}
		alpha := rho / pq
		vec.Axpy(alpha, p, x)
		rhoNew := vec.AxpyDot(-alpha, q, r)
		res.Flops += 2*vec.AxpyFlops(n) + vec.DotFlops(n)
		beta := rhoNew / rho
		vec.Xpby(r, beta, p)
		res.Flops += 2 * int64(n)
		rho = rhoNew
	}
	res.RelRes = math.Sqrt(rho) / normB
	res.Converged = res.RelRes <= tol
	return res
}

// SeqCGMatrix is SeqCG specialized to a CSR matrix operator, in the
// RES_SPMV-resolved kernel layout.
func SeqCGMatrix(a *sparse.CSR, b, x []float64, tol float64, maxIters int) SeqResult {
	return SeqCGMatrixLayout(a, b, x, tol, maxIters, SpMVAuto)
}

// SeqCGMatrixLayout is SeqCGMatrix with an explicit SpMV layout. The
// SELL path converts once up front and iterates on the blocked kernel;
// iterates, flop charges and the returned result are bitwise-identical
// to the CSR path.
func SeqCGMatrixLayout(a *sparse.CSR, b, x []float64, tol float64, maxIters int, layout SpMVLayout) SeqResult {
	if a.Rows != a.Cols || a.Rows != len(b) {
		panic(fmt.Sprintf("solver: SeqCGMatrix %s with len(b)=%d", a, len(b)))
	}
	if resolveSpMV(layout) == SpMVSELL {
		s := sparse.NewSELLFromCSR(a, sparse.DefaultSELLC, sparse.DefaultSELLSigma)
		return SeqCG(func(y, v []float64) { s.MulVec(y, v) }, s.SpMVFlops(), b, x, tol, maxIters)
	}
	return SeqCG(func(y, v []float64) { a.MulVec(y, v) }, a.SpMVFlops(), b, x, tol, maxIters)
}

// CGLS solves the least-squares problem min ||beta - M*x||₂ via CG on the
// normal equations (M Mᵀ)-free form: it applies M and Mᵀ each iteration.
// Here M is a rows x cols CSR matrix with rows <= cols typical (the LSI
// reconstruction uses M = A_{p_i,:} and solves Eq. 21:
// (A_{p_i,:} A_{p_i,:}ᵀ) x = A_{p_i,:} beta). b must have length rows
// after the caller forms the reduced right-hand side; x has length rows.
//
// The operator G = M*Mᵀ is SPD when M has full row rank, so plain CG
// applies; each application costs two SpMVs with M.
func CGLS(m *sparse.CSR, rhs, x []float64, tol float64, maxIters int) SeqResult {
	return CGLSWork(nil, m, rhs, x, tol, maxIters)
}

// CGLSWork is CGLS with caller-supplied scratch buffers. ws may be nil.
func CGLSWork(ws *SeqWorkspace, m *sparse.CSR, rhs, x []float64, tol float64, maxIters int) SeqResult {
	if len(rhs) != m.Rows || len(x) != m.Rows {
		panic(fmt.Sprintf("solver: CGLS %s with len(rhs)=%d len(x)=%d", m, len(rhs), len(x)))
	}
	if ws == nil {
		ws = new(SeqWorkspace)
	}
	tmp := wsSized(&ws.tmp, m.Cols)
	apply := func(y, v []float64) {
		m.MulTransVec(tmp, v)
		m.MulVec(y, tmp)
	}
	return SeqCGWork(ws, apply, 2*m.SpMVFlops(), rhs, x, tol, maxIters)
}
