package solver

import (
	"fmt"
	"math"
	"testing"

	"resilience/internal/cluster"
	"resilience/internal/matgen"
	"resilience/internal/platform"
	"resilience/internal/power"
	"resilience/internal/sparse"
	"resilience/internal/vec"
)

// runCG executes a distributed CG across p ranks and returns rank 0's
// result plus the assembled solution.
func runCG(t *testing.T, a *sparse.CSR, b []float64, p int, opts Options) (*Result, []float64) {
	t.Helper()
	part := sparse.NewPartition(a.Rows, p)
	results := make([]*Result, p)
	meter := power.NewMeter(false)
	_, err := cluster.Run(p, platform.Default(), meter, func(c *cluster.Comm) error {
		res, err := CG(c, a, b, part, opts)
		if err != nil {
			return err
		}
		results[c.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	for r := 0; r < p; r++ {
		copy(part.Slice(x, r), results[r].XLocal)
	}
	return results[0], x
}

func TestDistributedCGMatchesSequential(t *testing.T) {
	a := matgen.Laplacian2D(10)
	b, xTrue := matgen.RHS(a)
	for _, p := range []int{1, 2, 3, 4, 7} {
		res, x := runCG(t, a, b, p, Options{Tol: 1e-11})
		if !res.Converged {
			t.Fatalf("p=%d did not converge", p)
		}
		if e := relErr(x, xTrue); e > 1e-7 {
			t.Errorf("p=%d solution error %g", p, e)
		}
	}
	// Iteration counts must be process-count invariant up to FP noise
	// (Table 4's observation).
	seq := make([]float64, a.Rows)
	sres := SeqCGMatrix(a, b, seq, 1e-11, 10*a.Rows)
	res4, _ := runCG(t, a, b, 4, Options{Tol: 1e-11})
	if d := res4.Iters - sres.Iters; d < -3 || d > 3 {
		t.Errorf("distributed %d vs sequential %d iterations", res4.Iters, sres.Iters)
	}
}

func TestDistributedCGScatteredMatrix(t *testing.T) {
	// Scattered off-diagonals produce long-range halos crossing many
	// ranks.
	a := matgen.BandedSPD(matgen.BandedOpts{N: 240, NNZPerRow: 7, Kappa: 100, Scatter: 0.7, Seed: 9})
	b, _ := matgen.RHS(a)
	res, x := runCG(t, a, b, 6, Options{Tol: 1e-10})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	r := make([]float64, a.Rows)
	a.MulVec(r, x)
	vec.Sub(r, b, r)
	if rel := vec.Nrm2(r) / vec.Nrm2(b); rel > 1e-9 {
		t.Errorf("true residual %g", rel)
	}
}

func TestCGHistoryRecorded(t *testing.T) {
	a := matgen.Laplacian2D(8)
	b, _ := matgen.RHS(a)
	res, _ := runCG(t, a, b, 4, Options{Tol: 1e-10})
	if len(res.History) == 0 {
		t.Fatal("no history")
	}
	if res.History[0] > 1.001 {
		t.Errorf("initial relres %g should be ~1 for x0=0", res.History[0])
	}
	last := res.History[len(res.History)-1]
	if last > res.History[0] {
		t.Error("residual did not decrease")
	}
}

func TestCGX0Honored(t *testing.T) {
	a := matgen.Laplacian2D(8)
	b, xTrue := matgen.RHS(a)
	res, _ := runCG(t, a, b, 4, Options{Tol: 1e-10, X0: xTrue})
	if res.Iters != 0 {
		t.Errorf("warm start took %d iterations", res.Iters)
	}
}

func TestCGMaxIters(t *testing.T) {
	a := matgen.BandedSPD(matgen.BandedOpts{N: 256, NNZPerRow: 5, Kappa: 1e8, Seed: 4})
	b, _ := matgen.RHS(a)
	res, _ := runCG(t, a, b, 4, Options{Tol: 1e-14, MaxIters: 5})
	if res.Iters > 5 {
		t.Errorf("ran %d iterations", res.Iters)
	}
}

// corruptingMonitor flips a block of x once, then requests a restart —
// the minimal fault-injection round trip through the Monitor interface.
type corruptingMonitor struct {
	fireAt int
	fired  bool
	rank   int
}

func (m *corruptingMonitor) BeforeIteration(it *Iter) (bool, error) {
	if m.fired || it.K < m.fireAt {
		return false, nil
	}
	m.fired = true
	if it.C.Rank() == m.rank {
		for i := range it.State.X {
			it.State.X[i] = 1e6
		}
	}
	return true, nil
}

func (m *corruptingMonitor) AfterIteration(*Iter) error { return nil }

func TestMonitorCorruptionAndRestart(t *testing.T) {
	a := matgen.Laplacian2D(8)
	b, xTrue := matgen.RHS(a)
	p := 4
	part := sparse.NewPartition(a.Rows, p)
	results := make([]*Result, p)
	meter := power.NewMeter(false)
	_, err := cluster.Run(p, platform.Default(), meter, func(c *cluster.Comm) error {
		mon := &corruptingMonitor{fireAt: 10, rank: 1}
		res, err := CG(c, a, b, part, Options{Tol: 1e-10, Monitor: mon, VerifyTrueResidual: true})
		if err != nil {
			return err
		}
		results[c.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if !res.Converged {
		t.Fatal("did not converge after corruption")
	}
	if res.Restarts == 0 {
		t.Error("restart not recorded")
	}
	x := make([]float64, a.Rows)
	for r := 0; r < p; r++ {
		copy(part.Slice(x, r), results[r].XLocal)
	}
	if e := relErr(x, xTrue); e > 1e-6 {
		t.Errorf("solution error %g after corruption+restart", e)
	}
}

func TestLocalOpHaloExchange(t *testing.T) {
	a := matgen.Laplacian2D(6)
	n := a.Rows
	p := 3
	part := sparse.NewPartition(n, p)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i) * 1.5
	}
	want := make([]float64, n)
	a.MulVec(want, x)

	meter := power.NewMeter(false)
	got := make([]float64, n)
	_, err := cluster.Run(p, platform.Default(), meter, func(c *cluster.Comm) error {
		op := NewLocalOp(c, a, part)
		lo, hi := part.Range(c.Rank())
		y := make([]float64, hi-lo)
		op.MulVecDist(c, y, x[lo:hi])
		copy(got[lo:hi], y)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("distributed SpMV wrong at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestLocalOpOffDiagApply(t *testing.T) {
	a := matgen.BandedSPD(matgen.BandedOpts{N: 60, NNZPerRow: 7, Kappa: 30, Seed: 3})
	n := a.Rows
	p := 4
	part := sparse.NewPartition(n, p)
	x := make([]float64, n)
	bGlob := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i))
		bGlob[i] = math.Cos(float64(i))
	}
	meter := power.NewMeter(false)
	_, err := cluster.Run(p, platform.Default(), meter, func(c *cluster.Comm) error {
		op := NewLocalOp(c, a, part)
		lo, hi := part.Range(c.Rank())
		buf := op.GatherHalo(c, x[lo:hi])
		y := make([]float64, hi-lo)
		op.OffDiagApply(c, y, bGlob[lo:hi], buf)
		// Reference: y_i = b_i - sum over off-block columns.
		for i := lo; i < hi; i++ {
			want := bGlob[i]
			cols, vals := a.Row(i)
			for k, j := range cols {
				if j < lo || j >= hi {
					want -= vals[k] * x[j]
				}
			}
			if math.Abs(y[i-lo]-want) > 1e-12 {
				return fmt.Errorf("rank %d row %d: %g want %g", c.Rank(), i, y[i-lo], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLocalOpNeighborsSymmetric(t *testing.T) {
	a := matgen.BandedSPD(matgen.BandedOpts{N: 120, NNZPerRow: 9, Kappa: 40, Scatter: 0.5, Seed: 8})
	p := 5
	part := sparse.NewPartition(a.Rows, p)
	neighbors := make([][]int, p)
	meter := power.NewMeter(false)
	_, err := cluster.Run(p, platform.Default(), meter, func(c *cluster.Comm) error {
		op := NewLocalOp(c, a, part)
		neighbors[c.Rank()] = op.Neighbors()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		for _, o := range neighbors[r] {
			found := false
			for _, back := range neighbors[o] {
				if back == r {
					found = true
				}
			}
			if !found {
				t.Fatalf("neighbor relation not symmetric: %d -> %d", r, o)
			}
		}
	}
}

func TestDistributedJacobiPCG(t *testing.T) {
	// A spread-diagonal matrix where Jacobi pays off.
	a := matgen.BandedSPD(matgen.BandedOpts{N: 400, NNZPerRow: 7, Kappa: 5000, Seed: 11})
	b, _ := matgen.RHS(a)
	plain, xPlain := runCG(t, a, b, 4, Options{Tol: 1e-10})
	pcg, xPCG := runCG(t, a, b, 4, Options{Tol: 1e-10, Jacobi: true})
	if !plain.Converged || !pcg.Converged {
		t.Fatalf("convergence: cg=%v pcg=%v", plain.Converged, pcg.Converged)
	}
	if pcg.Iters >= plain.Iters {
		t.Errorf("Jacobi PCG %d iters not better than CG %d", pcg.Iters, plain.Iters)
	}
	if e := relErr(xPCG, xPlain); e > 1e-6 {
		t.Errorf("PCG and CG solutions differ: %g", e)
	}
	// True residual of the PCG solution (convergence is measured on the
	// unpreconditioned residual).
	r := make([]float64, a.Rows)
	a.MulVec(r, xPCG)
	vec.Sub(r, b, r)
	if rel := vec.Nrm2(r) / vec.Nrm2(b); rel > 1e-9 {
		t.Errorf("PCG true residual %g", rel)
	}
}

func TestDistributedPCGWithMonitorCorruption(t *testing.T) {
	a := matgen.BandedSPD(matgen.BandedOpts{N: 240, NNZPerRow: 7, Kappa: 1000, Seed: 12})
	b, _ := matgen.RHS(a)
	p := 4
	part := sparse.NewPartition(a.Rows, p)
	results := make([]*Result, p)
	meter := power.NewMeter(false)
	_, err := cluster.Run(p, platform.Default(), meter, func(c *cluster.Comm) error {
		mon := &corruptingMonitor{fireAt: 8, rank: 2}
		res, err := CG(c, a, b, part, Options{
			Tol: 1e-10, Monitor: mon, VerifyTrueResidual: true, Jacobi: true,
		})
		if err != nil {
			return err
		}
		results[c.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Converged {
		t.Fatal("PCG did not recover from corruption")
	}
	x := make([]float64, a.Rows)
	for r := 0; r < p; r++ {
		copy(part.Slice(x, r), results[r].XLocal)
	}
	res := make([]float64, a.Rows)
	a.MulVec(res, x)
	vec.Sub(res, b, res)
	if rel := vec.Nrm2(res) / vec.Nrm2(b); rel > 1e-9 {
		t.Errorf("true residual %g after corruption", rel)
	}
}

func TestSolveFaultFreeIters(t *testing.T) {
	a := matgen.Laplacian2D(8)
	b, _ := matgen.RHS(a)
	iters, conv := SolveFaultFreeIters(a, b, 1e-10, 1000)
	if !conv || iters <= 0 {
		t.Errorf("iters=%d conv=%v", iters, conv)
	}
}

func TestPipelinedCGMatchesCG(t *testing.T) {
	a := matgen.Laplacian2D(10)
	b, xTrue := matgen.RHS(a)
	p := 4
	part := sparse.NewPartition(a.Rows, p)
	results := make([]*Result, p)
	meter := power.NewMeter(false)
	_, err := cluster.Run(p, platform.Default(), meter, func(c *cluster.Comm) error {
		res, err := PipelinedCG(c, a, b, part, Options{Tol: 1e-10})
		if err != nil {
			return err
		}
		results[c.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Converged {
		t.Fatalf("pipelined CG did not converge: %g", results[0].RelRes)
	}
	x := make([]float64, a.Rows)
	for r := 0; r < p; r++ {
		copy(part.Slice(x, r), results[r].XLocal)
	}
	if e := relErr(x, xTrue); e > 1e-6 {
		t.Errorf("pipelined CG solution error %g", e)
	}
	// Iteration count stays within ~20% of classic CG (same Krylov space,
	// different rounding).
	classic, _ := runCG(t, a, b, p, Options{Tol: 1e-10})
	lo, hi := classic.Iters*8/10, classic.Iters*12/10+4
	if results[0].Iters < lo || results[0].Iters > hi {
		t.Errorf("pipelined %d iters vs classic %d", results[0].Iters, classic.Iters)
	}
}

func TestPipelinedCGRejectsMonitor(t *testing.T) {
	a := matgen.Laplacian2D(4)
	b, _ := matgen.RHS(a)
	part := sparse.NewPartition(a.Rows, 2)
	meter := power.NewMeter(false)
	_, err := cluster.Run(2, platform.Default(), meter, func(c *cluster.Comm) error {
		_, err := PipelinedCG(c, a, b, part, Options{Monitor: &corruptingMonitor{}})
		if err == nil {
			return fmt.Errorf("monitor accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedCGFewerCollectives pins the synchronization saving: one
// allreduce per iteration instead of two (plus the halo exchanges, which
// both variants share).
func TestPipelinedCGFewerCollectives(t *testing.T) {
	a := matgen.Laplacian2D(12)
	b, _ := matgen.RHS(a)
	p := 8
	part := sparse.NewPartition(a.Rows, p)

	// High-latency network makes collective counts visible in the clock.
	plat := platform.Default()
	plat.NetLatency = 1e-3
	plat.FlopRate = 1e13 // compute nearly free

	timeOf := func(pipelined bool) float64 {
		meter := power.NewMeter(false)
		maxClock, err := cluster.Run(p, plat, meter, func(c *cluster.Comm) error {
			var err error
			if pipelined {
				_, err = PipelinedCG(c, a, b, part, Options{Tol: 1e-10})
			} else {
				_, err = CG(c, a, b, part, Options{Tol: 1e-10})
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return maxClock
	}
	classic := timeOf(false)
	pipe := timeOf(true)
	if pipe >= classic {
		t.Errorf("pipelined CG (%.4gs) not faster than classic (%.4gs) on a latency-bound network", pipe, classic)
	}
}

func TestLocalOpPanicsOnBadSizes(t *testing.T) {
	a := matgen.Laplacian2D(4)
	part := sparse.NewPartition(a.Rows, 2)
	meter := power.NewMeter(false)
	_, err := cluster.Run(2, platform.Default(), meter, func(c *cluster.Comm) error {
		op := NewLocalOp(c, a, part)
		defer func() {
			if recover() == nil {
				t.Error("expected panic for wrong x length")
			}
		}()
		op.GatherHalo(c, make([]float64, 3)) // wrong block size
		return nil
	})
	// The recovered panic in the closure is turned into a test error, not
	// a run error; the run itself ends normally on both ranks only if the
	// panic path re-panics. Accept either outcome here.
	_ = err
}

func TestNewLocalOpRejectsMismatchedPartition(t *testing.T) {
	a := matgen.Laplacian2D(4)
	part := sparse.NewPartition(a.Rows, 3) // 3 blocks for a 2-rank run
	meter := power.NewMeter(false)
	_, err := cluster.Run(2, platform.Default(), meter, func(c *cluster.Comm) error {
		defer func() { recover() }()
		NewLocalOp(c, a, part)
		return fmt.Errorf("no panic for mismatched partition")
	})
	if err != nil && err.Error() == "no panic for mismatched partition" {
		t.Error(err)
	}
}
