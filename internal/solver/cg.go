package solver

import (
	"fmt"
	"math"

	"resilience/internal/cluster"
	"resilience/internal/sparse"
	"resilience/internal/vec"
)

// State is the per-rank CG state a Monitor (fault injection and recovery)
// may inspect and repair. X, R, P, Q are the rank's owned blocks; A and B
// are the global static data, which the paper assumes recoverable from
// persistent storage at any time (Section 3.2).
type State struct {
	A    *sparse.CSR
	B    []float64 // global right-hand side (static data)
	Part *sparse.Partition

	BLocal []float64
	X      []float64
	R      []float64
	P      []float64
	Q      []float64
	Rho    float64
	NormB  float64
}

// Iter is the context a Monitor receives at each iteration boundary. At
// that point every rank holds an identical virtual clock (the boundary
// immediately follows a collective), so monitors can make globally
// consistent decisions without communicating.
type Iter struct {
	C     *cluster.Comm
	Op    *LocalOp
	State *State
	// K is the number of iterations executed so far (including re-executed
	// ones after rollbacks), i.e. the cost counter the paper reports.
	K int
}

// Monitor observes and may repair a distributed CG run.
type Monitor interface {
	// BeforeIteration runs at each iteration boundary before the SpMV.
	// Returning restart=true makes CG recompute R and P from the (possibly
	// repaired) X — the "renewal of other variables" the paper notes all
	// recovery schemes force.
	BeforeIteration(it *Iter) (restart bool, err error)
	// AfterIteration runs after the iteration's updates (checkpointing
	// hook).
	AfterIteration(it *Iter) error
}

// Options configure a distributed CG solve.
type Options struct {
	Tol      float64 // relative residual target (paper: 1e-12)
	MaxIters int     // executed-iteration cap
	Monitor  Monitor // optional
	// VerifyTrueResidual recomputes b - A*x on apparent convergence and
	// keeps iterating if the recurrence residual has drifted (it can,
	// after faults). The paper's runs terminate on the same accuracy for
	// every scheme; this makes that comparison honest.
	VerifyTrueResidual bool
	// X0 is the global initial guess; nil means zeros.
	X0 []float64
	// Jacobi enables diagonal preconditioning of the distributed solve —
	// an extension beyond the paper used to study how preconditioning
	// interacts with forward recovery. Convergence is still measured on
	// the unpreconditioned residual so scheme comparisons stay uniform.
	Jacobi bool
	// Work, when non-nil, supplies reusable solver buffers so repeated
	// solves stop allocating. See Workspace for the aliasing caveat.
	Work *Workspace
	// Overlap selects the overlapped MulVecDist path (halo exchange hidden
	// behind the interior SpMV). Numerics are bitwise-identical either
	// way; only the modeled clock changes. Collective: every rank must
	// pass the same value.
	Overlap bool
	// SpMV selects the local SpMV kernel layout; SpMVAuto (the zero
	// value) resolves RES_SPMV and defaults to CSR. Results and the
	// charged flops are bitwise-identical across layouts.
	SpMV SpMVLayout
}

// Result reports a distributed CG solve from one rank's perspective. The
// scalar fields are identical on every rank; History is recorded on rank
// 0 only.
type Result struct {
	Iters     int
	Converged bool
	RelRes    float64
	Restarts  int
	// History holds the relative recurrence residual at each iteration
	// boundary (rank 0 only).
	History []float64
	// XLocal is the rank's owned block of the final iterate.
	XLocal []float64
}

// CG runs distributed block-row CG on rank c. All ranks call it
// collectively with identical arguments (a and b are shared read-only).
func CG(c *cluster.Comm, a *sparse.CSR, b []float64, part *sparse.Partition, opts Options) (*Result, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("solver: CG len(b)=%d for %s", len(b), a)
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-12
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 10 * a.Rows
	}
	op := NewLocalOp(c, a, part)
	op.SetOverlap(opts.Overlap)
	op.SetSpMV(opts.SpMV)
	n := op.N

	ws := opts.Work
	if ws == nil {
		ws = new(Workspace)
	}
	st := &State{
		A:      a,
		B:      b,
		Part:   part,
		BLocal: wsSized(&ws.bLocal, n),
		X:      wsZeroed(&ws.x, n),
		R:      wsSized(&ws.r, n),
		P:      wsSized(&ws.p, n),
		Q:      wsSized(&ws.q, n),
	}
	copy(st.BLocal, part.Slice(b, c.Rank()))
	if opts.X0 != nil {
		copy(st.X, part.Slice(opts.X0, c.Rank()))
	}

	// ||b|| once.
	localBB := vec.Dot(st.BLocal, st.BLocal)
	c.Compute(vec.DotFlops(n))
	st.NormB = math.Sqrt(c.AllreduceScalarSum(localBB))
	if st.NormB == 0 {
		st.NormB = 1
	}

	// Jacobi preconditioner: the inverse of this rank's diagonal entries.
	// z holds the preconditioned residual; plain CG never touches either.
	var invD, z []float64
	if opts.Jacobi {
		lo, _ := part.Range(c.Rank())
		invD = wsSized(&ws.invD, n)
		for i := range invD {
			d := a.At(lo+i, lo+i)
			if d <= 0 || math.IsNaN(d) {
				invD[i] = 1
			} else {
				invD[i] = 1 / d
			}
		}
		z = wsSized(&ws.z, n)
	}

	// rr tracks ||r||² for convergence; Rho tracks rᵀz for the recurrence
	// (they coincide for plain CG).
	var rr float64

	// restart recomputes R, P, Rho from X: one distributed SpMV plus an
	// allreduce — the cost every recovery scheme pays to resume CG.
	restart := func() {
		if o := c.Observer(); o != nil {
			o.IncRestarts()
		}
		op.MulVecDist(c, st.R, st.X)
		vec.Sub(st.R, st.BLocal, st.R)
		c.Compute(int64(n))
		if opts.Jacobi {
			for i := range z {
				z[i] = invD[i] * st.R[i]
			}
			c.Compute(int64(n))
			st.Rho, rr = c.AllreduceSum2(vec.Dot(st.R, z), vec.Dot(st.R, st.R))
			c.Compute(2 * vec.DotFlops(n))
			copy(st.P, z)
		} else {
			copy(st.P, st.R)
			local := vec.Dot(st.R, st.R)
			c.Compute(vec.DotFlops(n))
			st.Rho = c.AllreduceScalarSum(local)
			rr = st.Rho
		}
	}
	restart()

	res := &Result{}
	it := &Iter{C: c, Op: op, State: st}
	for res.Iters = 0; res.Iters < opts.MaxIters; res.Iters++ {
		it.K = res.Iters
		relres := math.Sqrt(rr) / st.NormB
		if c.Rank() == 0 {
			res.History = append(res.History, relres)
		}
		if relres <= opts.Tol {
			if !opts.VerifyTrueResidual {
				res.Converged = true
				break
			}
			// Confirm with the true residual; faults can make the
			// recurrence lie. Convergence is only claimed at the
			// requested tolerance — accepting any slack here would let
			// a faulted run report an accuracy it never reached.
			op.MulVecDist(c, st.Q, st.X)
			vec.Sub(st.Q, st.BLocal, st.Q)
			c.Compute(int64(n))
			local := vec.Dot(st.Q, st.Q)
			c.Compute(vec.DotFlops(n))
			trueRho := c.AllreduceScalarSum(local)
			if math.Sqrt(trueRho)/st.NormB <= opts.Tol {
				res.Converged = true
				rr = trueRho
				break
			}
			// Drifted: rebuild the recurrence from the current iterate.
			restart()
			res.Restarts++
			continue
		}

		if opts.Monitor != nil {
			doRestart, err := opts.Monitor.BeforeIteration(it)
			if err != nil {
				return nil, err
			}
			if doRestart {
				restart()
				res.Restarts++
			}
		}

		// q = A p
		op.MulVecDist(c, st.Q, st.P)
		localPQ := vec.Dot(st.P, st.Q)
		c.Compute(vec.DotFlops(n))
		pq := c.AllreduceScalarSum(localPQ)
		if pq <= 0 || math.IsNaN(pq) {
			// The Krylov process broke down (possible right after a bad
			// reconstruction); rebuild from the current iterate.
			restart()
			res.Restarts++
			continue
		}
		alpha := st.Rho / pq
		vec.Axpy(alpha, st.P, st.X)
		var rhoNew float64
		if opts.Jacobi {
			// Fused update: r -= alpha q, z = invD.*r, and the two local
			// reductions in one pass. Element values and ascending-order
			// accumulation match the unfused sequence bit-for-bit.
			var localRZ, localRR float64
			for i, qi := range st.Q {
				ri := st.R[i] - alpha*qi
				st.R[i] = ri
				zi := invD[i] * ri
				z[i] = zi
				localRZ += ri * zi
				localRR += ri * ri
			}
			c.Compute(2 * vec.AxpyFlops(n))
			c.Compute(int64(n))
			rhoNew, rr = c.AllreduceSum2(localRZ, localRR)
			c.Compute(2 * vec.DotFlops(n))
			beta := rhoNew / st.Rho
			vec.Xpby(z, beta, st.P)
		} else {
			localRR := vec.AxpyDot(-alpha, st.Q, st.R)
			c.Compute(2 * vec.AxpyFlops(n))
			c.Compute(vec.DotFlops(n))
			rhoNew = c.AllreduceScalarSum(localRR)
			rr = rhoNew
			beta := rhoNew / st.Rho
			vec.Xpby(st.R, beta, st.P)
		}
		c.Compute(2 * int64(n))
		st.Rho = rhoNew

		if opts.Monitor != nil {
			it.K = res.Iters + 1
			if err := opts.Monitor.AfterIteration(it); err != nil {
				return nil, err
			}
		}
	}
	res.RelRes = math.Sqrt(rr) / st.NormB
	if !res.Converged {
		res.Converged = res.RelRes <= opts.Tol
	}
	res.XLocal = st.X
	return res, nil
}

// SolveFaultFreeIters runs a plain sequential CG on (a, b) and returns
// the iteration count at tolerance tol — the FF baseline the paper
// normalizes every experiment against, and the input the evenly-spaced
// fault schedules need.
func SolveFaultFreeIters(a *sparse.CSR, b []float64, tol float64, maxIters int) (int, bool) {
	x := make([]float64, a.Rows)
	r := SeqCGMatrix(a, b, x, tol, maxIters)
	return r.Iters, r.Converged
}
