package telemetry

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one wall-clock interval attributed to a request: the phases
// of a solve request's life (admission-wait, cache-lookup, queue,
// solve, encode) each record one. Start is wall-clock Unix
// nanoseconds; Dur is measured on the monotonic clock.
type Span struct {
	ReqID string `json:"req_id"`
	Name  string `json:"name"`
	Start int64  `json:"start_unix_ns"`
	Dur   int64  `json:"dur_ns"`
}

// Tracer records spans into a fixed-size ring — the most recent
// len(ring) spans of the process, cheap enough to leave on in
// production. Start/End is 0 allocs/op (the ring is preallocated and
// the strings are references, gated by BenchmarkSpanStartEnd); the
// ring is mutex-guarded, not lock-free, because span completion is
// orders of magnitude rarer than histogram records.
type Tracer struct {
	mu   sync.Mutex
	ring []Span
	pos  uint64 // total spans ever recorded
}

// NewTracer returns a tracer retaining the last size spans.
func NewTracer(size int) *Tracer {
	if size < 1 {
		size = 1
	}
	return &Tracer{ring: make([]Span, size)}
}

// ActiveSpan is an in-flight span handle. It is a value: starting a
// span allocates nothing.
type ActiveSpan struct {
	t     *Tracer
	name  string
	reqID string
	start time.Time
}

// Start opens a span. End records it.
func (t *Tracer) Start(name, reqID string) ActiveSpan {
	return ActiveSpan{t: t, name: name, reqID: reqID, start: time.Now()}
}

// End records the span and returns its duration.
func (s ActiveSpan) End() time.Duration {
	d := time.Since(s.start)
	if s.t != nil {
		s.t.Record(s.name, s.reqID, s.start, d)
	}
	return d
}

// Record stores an externally-timed span (e.g. queue residency, whose
// start was stamped by the admitting handler and whose end is observed
// by the worker).
func (t *Tracer) Record(name, reqID string, start time.Time, d time.Duration) {
	t.mu.Lock()
	slot := &t.ring[t.pos%uint64(len(t.ring))]
	t.pos++
	slot.ReqID = reqID
	slot.Name = name
	slot.Start = start.UnixNano()
	slot.Dur = int64(d)
	t.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.copyLocked(func(Span) bool { return true })
}

// SpansFor returns the retained spans of one request, oldest first.
func (t *Tracer) SpansFor(reqID string) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.copyLocked(func(s Span) bool { return s.ReqID == reqID })
}

func (t *Tracer) copyLocked(keep func(Span) bool) []Span {
	n := t.pos
	size := uint64(len(t.ring))
	first := uint64(0)
	if n > size {
		first = n - size
	}
	var out []Span
	for i := first; i < n; i++ {
		s := t.ring[i%size]
		if s.Name != "" && keep(s) {
			out = append(out, s)
		}
	}
	return out
}

// Request-ID minting: <prefix>-<boot entropy>-<counter>. The entropy
// ties IDs to one process start so IDs from a restarted replica never
// collide with its predecessor's; the counter makes them unique and
// ordered within the process.
var (
	reqCounter atomic.Uint64
	reqEntropy = fmt.Sprintf("%08x", uint32(time.Now().UnixNano())^uint32(os.Getpid())<<16)
)

// NewRequestID mints a process-unique request ID. Components that
// originate requests (resilience-load, the router, a replica receiving
// a bare request) mint one and propagate it via the X-Request-Id
// header; every response echoes it back.
func NewRequestID() string {
	return fmt.Sprintf("r-%s-%06d", reqEntropy, reqCounter.Add(1))
}
