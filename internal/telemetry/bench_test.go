package telemetry

import "testing"

// BenchmarkHistogramRecord gates the serving hot path: recording a
// sample must be 0 allocs/op (enforced by scripts/check.sh).
func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(float64(i&1023) * 1e-4)
	}
	if h.Snapshot().Count != uint64(b.N) {
		b.Fatal("lost samples")
	}
}

// BenchmarkSpanStartEnd gates the tracing hot path: opening and
// recording a span must be 0 allocs/op (enforced by scripts/check.sh).
func BenchmarkSpanStartEnd(b *testing.B) {
	tr := NewTracer(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("solve", "r-bench-000001")
		sp.End()
	}
}

// BenchmarkCounterInc keeps the cheapest metric cheap.
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry("bench")
	c := r.Counter("ops_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramVecWith measures the labeled hot-path accessor
// (read-locked map hit) plus a record.
func BenchmarkHistogramVecWith(b *testing.B) {
	r := NewRegistry("bench")
	v := r.HistogramVec("solve_wall_seconds", "scheme")
	v.With("CR-M") // pre-create so the loop measures the hit path
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("CR-M").Record(0.003)
	}
}

// BenchmarkFlightNote measures the always-on ring write.
func BenchmarkFlightNote(b *testing.B) {
	f := NewFlightRecorder(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Note("job-done", "r-bench-000001", "ok")
	}
}
