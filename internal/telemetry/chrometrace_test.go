package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"resilience/internal/obs"
)

// spansFixture builds two requests' worth of nested wall-clock spans:
// each request's "request" span encloses queue and solve phases, and
// the two requests overlap in time (they must land on separate tracks
// for the trace to nest).
func spansFixture() []Span {
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC).UnixNano()
	ms := int64(time.Millisecond)
	return []Span{
		{ReqID: "r-1", Name: "request", Start: base, Dur: 50 * ms},
		{ReqID: "r-1", Name: "queue", Start: base + 1*ms, Dur: 9 * ms},
		{ReqID: "r-1", Name: "solve", Start: base + 10*ms, Dur: 35 * ms},
		{ReqID: "r-2", Name: "request", Start: base + 5*ms, Dur: 30 * ms},
		{ReqID: "r-2", Name: "solve", Start: base + 6*ms, Dur: 25 * ms},
	}
}

func TestMergedTraceEventsStructure(t *testing.T) {
	events := MergedTraceEvents(spansFixture())
	var xCount int
	tids := make(map[string]int)
	for _, e := range events {
		if e.Ph == "M" && e.Name == "thread_name" {
			continue
		}
		if e.Ph != "X" {
			continue
		}
		xCount++
		if e.Pid != pidService {
			t.Fatalf("X event on pid %d, want %d", e.Pid, pidService)
		}
		arg, ok := e.Args.(reqArg)
		if !ok {
			t.Fatalf("X event args = %#v, want reqArg", e.Args)
		}
		if prev, seen := tids[arg.ReqID]; seen && prev != e.Tid {
			t.Fatalf("request %s spans on two tids (%d, %d)", arg.ReqID, prev, e.Tid)
		}
		tids[arg.ReqID] = e.Tid
	}
	if xCount != 5 {
		t.Fatalf("got %d X events, want 5", xCount)
	}
	if len(tids) != 2 || tids["r-1"] == tids["r-2"] {
		t.Fatalf("requests share a track: %v", tids)
	}
	// Re-based: earliest span starts at ts 0.
	if events[0].Name != "process_name" {
		t.Fatalf("first event %+v, want process_name metadata", events[0])
	}
}

// TestMergedTraceValidates: the merged document — wall-clock service
// tracks plus virtual-time rank tracks — passes the obs structural
// validator, the acceptance criterion for Perfetto loadability.
func TestMergedTraceValidates(t *testing.T) {
	rec := obs.NewRecorder()
	rec.Rank(0).Span(obs.SpanCompute, 0, 1.5)
	rec.Rank(1).Span(obs.SpanSend, 0.5, 0.25)

	var buf bytes.Buffer
	if err := WriteMergedChromeTrace(&buf, spansFixture(), rec, nil); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("merged trace fails validation: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`"service wall-clock"`, `"ranks"`, `"req r-1"`, `"req_id":"r-2"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged trace missing %q", want)
		}
	}
}

func TestMergedTraceEmptySpans(t *testing.T) {
	if evs := MergedTraceEvents(nil); evs != nil {
		t.Fatalf("MergedTraceEvents(nil) = %v, want nil", evs)
	}
	// Spans-only merged trace (no recorder/meter) must still validate.
	var buf bytes.Buffer
	if err := WriteMergedChromeTrace(&buf, spansFixture(), nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("spans-only merged trace fails validation: %v", err)
	}
}
