package telemetry

import (
	"io"
	"sort"

	"resilience/internal/obs"
	"resilience/internal/power"
)

// The merged Chrome-trace exporter: wall-clock service spans rendered
// as one process track ("service wall-clock", pid 2, one thread per
// request), laid alongside the virtual-time rank and power tracks of
// internal/obs (pids 0 and 1) in a single Perfetto-loadable document.
// The two clock domains share nothing but the origin: wall timestamps
// are re-based so the earliest service span starts at t=0, where the
// virtual tracks also start — so one view shows where the wall-clock
// request time went (queueing, solving, encoding) above what the
// simulated ranks were doing inside the solve.

// pidService is the synthetic process id of the wall-clock track,
// chosen past obs's rank (0) and power (1) processes.
const pidService = 2

type reqArg struct {
	ReqID string `json:"req_id"`
}

// MergedTraceEvents renders spans as wall-clock X events. Spans are
// grouped by request ID — each distinct request gets its own thread
// track in first-seen order, so concurrent requests never interleave
// on one track and the nesting validator holds. Timestamps are
// microseconds since the earliest span's start.
func MergedTraceEvents(spans []Span) []obs.TraceEvent {
	if len(spans) == 0 {
		return nil
	}
	ordered := make([]Span, len(spans))
	copy(ordered, spans)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Start != ordered[j].Start {
			return ordered[i].Start < ordered[j].Start
		}
		return ordered[i].Dur > ordered[j].Dur
	})
	base := ordered[0].Start

	events := []obs.TraceEvent{
		{Name: "process_name", Ph: "M", Pid: pidService, Args: struct {
			Name string `json:"name"`
		}{Name: "service wall-clock"}},
	}
	tids := make(map[string]int)
	for _, s := range ordered {
		tid, ok := tids[s.ReqID]
		if !ok {
			tid = len(tids)
			tids[s.ReqID] = tid
			events = append(events, obs.TraceEvent{
				Name: "thread_name", Ph: "M", Pid: pidService, Tid: tid,
				Args: struct {
					Name string `json:"name"`
				}{Name: "req " + s.ReqID},
			})
		}
		events = append(events, obs.TraceEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start-base) / 1e3, // ns -> µs
			Dur:  float64(s.Dur) / 1e3,
			Pid:  pidService,
			Tid:  tid,
			Cat:  "service",
			Args: reqArg{ReqID: s.ReqID},
		})
	}
	return events
}

// WriteMergedChromeTrace writes one Chrome trace-event document
// holding the wall-clock service spans plus the virtual-time rank
// tracks of rec and power counter tracks of meter (either may be nil).
// The output passes obs.ValidateChromeTrace and loads in Perfetto with
// the service process above the rank timelines.
func WriteMergedChromeTrace(w io.Writer, spans []Span, rec *obs.Recorder, meter *power.Meter) error {
	events := MergedTraceEvents(spans)
	events = append(events, obs.Events(rec, meter)...)
	return obs.WriteTraceEvents(w, events)
}
