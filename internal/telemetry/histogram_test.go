package telemetry

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestBucketBoundsContainment: every sample lands in the bucket whose
// [lower, upper) range contains it, across the full dynamic range.
func TestBucketBoundsContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20000; trial++ {
		// Log-uniform over the covered range plus a margin beyond it.
		exp := rng.Float64()*70 - 33 // 2^-33 .. 2^37
		v := math.Exp2(exp) * (1 + rng.Float64())
		i := bucketIndex(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketIndex(%g) = %d out of range", v, i)
		}
		lo, hi := BucketLower(i), BucketUpper(i)
		if i == 0 {
			if v >= hi {
				t.Fatalf("v=%g in underflow bucket but >= upper %g", v, hi)
			}
			continue
		}
		if i == NumBuckets-1 {
			if v < lo {
				t.Fatalf("v=%g in overflow bucket but < lower %g", v, lo)
			}
			continue
		}
		if v < lo || v >= hi {
			t.Fatalf("v=%g in bucket %d but outside [%g, %g)", v, i, lo, hi)
		}
	}
	// Degenerate inputs all land in the underflow bucket.
	for _, v := range []float64{0, -1, math.Inf(-1), math.NaN()} {
		if i := bucketIndex(v); i != 0 {
			t.Fatalf("bucketIndex(%g) = %d, want 0", v, i)
		}
	}
	if i := bucketIndex(math.Inf(1)); i != NumBuckets-1 {
		t.Fatalf("bucketIndex(+Inf) = %d, want %d", i, NumBuckets-1)
	}
}

// TestBucketBoundsContiguous: bucket bounds tile the positive axis with
// no gaps — bucket i's upper bound is bucket i+1's lower bound.
func TestBucketBoundsContiguous(t *testing.T) {
	for i := 0; i < NumBuckets-1; i++ {
		if BucketUpper(i) != BucketLower(i+1) {
			t.Fatalf("gap between bucket %d (upper %g) and %d (lower %g)",
				i, BucketUpper(i), i+1, BucketLower(i+1))
		}
	}
	if !math.IsInf(BucketUpper(NumBuckets-1), 1) {
		t.Fatalf("overflow bucket upper = %g, want +Inf", BucketUpper(NumBuckets-1))
	}
}

// TestMergeIsExactBucketwiseSum: satellite 3's core property — merging
// two snapshots adds counts bucket-wise, so the merged distribution is
// exactly what one histogram recording both streams would hold.
func TestMergeIsExactBucketwiseSum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var a, b, both Histogram
	for i := 0; i < 5000; i++ {
		v := math.Exp2(rng.Float64()*40 - 20)
		if rng.Intn(2) == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		both.Record(v)
	}
	merged := a.Snapshot().Merge(b.Snapshot())
	want := both.Snapshot()
	if merged.Count != want.Count {
		t.Fatalf("merged count %d != combined count %d", merged.Count, want.Count)
	}
	if merged.Count != a.Snapshot().Count+b.Snapshot().Count {
		t.Fatalf("merged count %d != a+b counts", merged.Count)
	}
	if len(merged.Buckets) != len(want.Buckets) {
		t.Fatalf("merged has %d buckets, combined has %d", len(merged.Buckets), len(want.Buckets))
	}
	for i, bk := range merged.Buckets {
		if bk != want.Buckets[i] {
			t.Fatalf("bucket %d: merged %+v != combined %+v", i, bk, want.Buckets[i])
		}
	}
	// The sum differs only by float addition order.
	if math.Abs(merged.Sum-want.Sum) > 1e-6*math.Abs(want.Sum) {
		t.Fatalf("merged sum %g far from combined sum %g", merged.Sum, want.Sum)
	}
}

// TestQuantileBracketsTrueValue: the quantile estimate is the upper
// bound of the bucket holding the true quantile, so the true value lies
// within one bucket of the estimate: lower(bucket) <= true <= estimate.
func TestQuantileBracketsTrueValue(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Histogram
	samples := make([]float64, 0, 4001)
	for i := 0; i < 4001; i++ {
		v := math.Exp2(rng.Float64()*30 - 15)
		h.Record(v)
		samples = append(samples, v)
	}
	sort.Float64s(samples)
	s := h.Snapshot()
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		rank := int(math.Ceil(q * float64(len(samples))))
		if rank < 1 {
			rank = 1
		}
		truth := samples[rank-1]
		est := s.Quantile(q)
		bi := s.QuantileBucket(q)
		if truth > est {
			t.Fatalf("q=%g: true value %g exceeds estimate %g", q, truth, est)
		}
		if truth < BucketLower(bi) {
			t.Fatalf("q=%g: true value %g below estimate's bucket lower %g", q, truth, BucketLower(bi))
		}
		if est != BucketUpper(bi) {
			t.Fatalf("q=%g: estimate %g != upper bound of its bucket %g", q, est, BucketUpper(bi))
		}
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

// TestQuantileMergeEqualsPooled: the fleet property the router relies
// on — quantiles of the merged snapshot equal quantiles of one
// histogram that recorded every replica's samples.
func TestQuantileMergeEqualsPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var pooled Histogram
	parts := make([]*Histogram, 3)
	for i := range parts {
		parts[i] = &Histogram{}
	}
	for i := 0; i < 9000; i++ {
		v := math.Exp2(rng.Float64()*24 - 12)
		parts[rng.Intn(len(parts))].Record(v)
		pooled.Record(v)
	}
	merged := parts[0].Snapshot()
	for _, p := range parts[1:] {
		merged = merged.Merge(p.Snapshot())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := merged.Quantile(q), pooled.Snapshot().Quantile(q); got != want {
			t.Fatalf("q=%g: merged quantile %g != pooled quantile %g", q, got, want)
		}
	}
}

// TestExpositionByteDeterministic: rendering the same registry state
// twice yields identical bytes, and re-recording the same values into a
// fresh registry yields those bytes again.
func TestExpositionByteDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry("test")
		c := r.Counter("jobs_total")
		g := r.Gauge("queue_depth")
		v := r.HistogramVec("solve_seconds", "scheme")
		c.Add(7)
		g.Set(3)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 500; i++ {
			scheme := []string{"CR-M", "PCG", "none"}[rng.Intn(3)]
			v.With(scheme).Record(math.Exp2(rng.Float64()*20 - 10))
		}
		return r
	}
	var b1, b2, b3 bytes.Buffer
	r := build()
	r.WritePrometheus(&b1)
	r.WritePrometheus(&b2)
	build().WritePrometheus(&b3)
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two renders of one registry differ")
	}
	if !bytes.Equal(b1.Bytes(), b3.Bytes()) {
		t.Fatal("renders of identically-recorded registries differ")
	}
	if b1.Len() == 0 {
		t.Fatal("exposition is empty")
	}
}

// TestHistogramConcurrentRecord: concurrent records are all counted and
// snapshots taken mid-flight stay internally consistent.
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				h.Record(float64(w+1) * 0.001)
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		s := h.Snapshot()
		var n uint64
		for _, b := range s.Buckets {
			n += b.Count
		}
		if n != s.Count {
			t.Fatalf("snapshot count %d != bucket sum %d", s.Count, n)
		}
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if got := h.Snapshot().Count; got != workers*per {
		t.Fatalf("final count %d, want %d", got, workers*per)
	}
}
