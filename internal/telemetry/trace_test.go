package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestTracerRingAndSpansFor(t *testing.T) {
	tr := NewTracer(4)
	base := time.Now()
	tr.Record("queue", "r1", base, 10*time.Millisecond)
	tr.Record("solve", "r1", base.Add(10*time.Millisecond), 20*time.Millisecond)
	tr.Record("solve", "r2", base, 5*time.Millisecond)

	all := tr.Spans()
	if len(all) != 3 {
		t.Fatalf("Spans() = %d spans, want 3", len(all))
	}
	if all[0].Name != "queue" || all[2].ReqID != "r2" {
		t.Fatalf("spans out of order: %+v", all)
	}
	r1 := tr.SpansFor("r1")
	if len(r1) != 2 || r1[0].Name != "queue" || r1[1].Name != "solve" {
		t.Fatalf("SpansFor(r1) = %+v", r1)
	}

	// Overflow: the ring keeps only the most recent len(ring) spans.
	for i := 0; i < 10; i++ {
		tr.Record("enc", "r3", base, time.Millisecond)
	}
	if got := len(tr.Spans()); got != 4 {
		t.Fatalf("after overflow Spans() = %d, want ring size 4", got)
	}
	if len(tr.SpansFor("r1")) != 0 {
		t.Fatal("evicted request's spans still returned")
	}
}

func TestActiveSpanRecords(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start("solve", "req-9")
	time.Sleep(2 * time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("End() duration = %v", d)
	}
	spans := tr.SpansFor("req-9")
	if len(spans) != 1 || spans[0].Name != "solve" || spans[0].Dur != int64(d) {
		t.Fatalf("recorded span = %+v, want dur %v", spans, d)
	}
	// A zero ActiveSpan (no tracer) must be safe to End.
	var z ActiveSpan
	z.End()
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if !strings.HasPrefix(id, "r-") {
			t.Fatalf("request ID %q lacks r- prefix", id)
		}
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = true
	}
}
