// Package telemetry is the wall-clock observability plane of the
// serving fabric: a metrics registry (counters, gauges, and fixed
// log-bucketed histograms whose bucket vectors merge exactly across
// processes), wall-clock span tracing with request-ID propagation, a
// structured flight-recorder event ring dumped to disk on failure, and
// a Chrome-trace exporter that lays service wall-clock spans alongside
// the virtual-time rank tracks of internal/obs.
//
// The design splits cleanly along the repo's two clock domains:
// internal/obs observes *virtual* time inside one simulated cluster
// run and is provably pure (bit-identical runs with recording on or
// off); this package observes *wall-clock* operations around those
// runs — admission, queueing, solving, encoding — where purity is not
// at stake but allocation discipline is. Histogram Record and span
// start/end are 0 allocs/op (benchmarked and gated in
// scripts/check.sh), so the serving hot path can afford them on every
// request.
//
// Every histogram shares one fixed bucket layout, so merging two
// snapshots is an exact element-wise sum: a router can add up its
// replicas' bucket vectors and report true fleet-wide quantiles, not
// an average of per-replica quantiles.
package telemetry

import (
	"math"
	"sync/atomic"
)

// The shared log-bucket layout: histSubs sub-buckets per power-of-two
// octave, octaves histMinOct..histMaxOct, plus an underflow bucket
// (index 0, holding zero, negative, and sub-range values) and an
// overflow bucket (the last index). Bucket membership is computed from
// the float's exponent and mantissa (math.Frexp), which is exact
// integer arithmetic — no log() rounding, so the same value lands in
// the same bucket on every platform and merges stay exact.
//
// The range covers 2^-30 s (~1 ns) through 2^34 (~1.7e10) — wide
// enough for microsecond cache hits, multi-minute solves, and modeled
// per-job energies in joules — at 4 sub-buckets per octave, i.e. a
// quantile resolution of about +19%/-16% of the true value.
const (
	histSubs   = 4
	histMinOct = -30
	histMaxOct = 33

	histOctaves = histMaxOct - histMinOct + 1

	// NumBuckets is the fixed bucket-vector length shared by every
	// histogram: underflow + histOctaves*histSubs + overflow.
	NumBuckets = 2 + histOctaves*histSubs
)

// bucketIndex maps a sample to its bucket. Exact by construction:
// Frexp decomposes v = frac * 2^exp with frac in [0.5, 1), so
// frac*2*histSubs is an exact scale of the mantissa and the floor is
// the sub-bucket.
func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		return NumBuckets - 1
	}
	frac, exp := math.Frexp(v)
	oct := exp - 1 // 2^oct <= v < 2^(oct+1)
	if oct < histMinOct {
		return 0
	}
	if oct > histMaxOct {
		return NumBuckets - 1
	}
	sub := int(frac*(2*histSubs)) - histSubs // frac in [0.5,1) -> sub in [0,histSubs)
	return 1 + (oct-histMinOct)*histSubs + sub
}

// BucketUpper returns bucket i's inclusive upper bound: samples in
// bucket i satisfy BucketLower(i) <= v < BucketUpper(i) (the overflow
// bucket's upper bound is +Inf). Bounds are exact binary floats.
func BucketUpper(i int) float64 {
	switch {
	case i <= 0:
		return math.Ldexp(1, histMinOct)
	case i >= NumBuckets-1:
		return math.Inf(1)
	}
	k := i - 1
	oct := histMinOct + k/histSubs
	sub := k % histSubs
	return math.Ldexp(1+float64(sub+1)/histSubs, oct)
}

// BucketLower returns bucket i's lower bound (0 for the underflow
// bucket).
func BucketLower(i int) float64 {
	switch {
	case i <= 0:
		return 0
	case i >= NumBuckets-1:
		return math.Ldexp(1, histMaxOct+1)
	}
	k := i - 1
	oct := histMinOct + k/histSubs
	sub := k % histSubs
	return math.Ldexp(1+float64(sub)/histSubs, oct)
}

// Histogram is one fixed log-bucketed distribution. Record is
// lock-free and allocation-free; concurrent recording is safe. The sum
// is tracked as float64 bits under CAS — informational (the exposition
// _total line), while the bucket counts are the exact, mergeable part.
type Histogram struct {
	name  string
	label string

	counts [NumBuckets]atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Record adds one sample. 0 allocs/op, gated by
// BenchmarkHistogramRecord.
func (h *Histogram) Record(v float64) {
	h.counts[bucketIndex(v)].Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Name returns the histogram's registered (unprefixed) name.
func (h *Histogram) Name() string { return h.name }

// Label returns the histogram's label value ("" when unlabeled).
func (h *Histogram) Label() string { return h.label }

// Snapshot captures the histogram as a sparse bucket vector. The count
// is derived from the buckets, so a snapshot is always internally
// consistent (Count == sum of bucket counts) even when taken while
// records are in flight.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Name: h.name, Label: h.label}
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Index: i, Count: n})
			s.Count += n
		}
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}

// Bucket is one non-empty bucket of a histogram snapshot.
type Bucket struct {
	Index int    `json:"i"`
	Count uint64 `json:"n"`
}

// HistSnapshot is a point-in-time copy of one histogram: a sparse
// vector over the shared fixed bucket layout. Snapshots with the same
// layout (enforced by the package constant) merge exactly.
type HistSnapshot struct {
	Name    string   `json:"name"`
	Label   string   `json:"label,omitempty"`
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Merge returns the exact bucket-wise sum of h and o: the merged
// distribution is what one histogram would hold had it recorded both
// sample streams. Name and Label are taken from h.
func (h HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Name: h.Name, Label: h.Label, Sum: h.Sum + o.Sum}
	var full [NumBuckets]uint64
	for _, b := range h.Buckets {
		full[b.Index] += b.Count
	}
	for _, b := range o.Buckets {
		full[b.Index] += b.Count
	}
	for i, n := range full {
		if n > 0 {
			out.Buckets = append(out.Buckets, Bucket{Index: i, Count: n})
			out.Count += n
		}
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) as the upper bound of
// the bucket holding the sample of rank ceil(q*Count): the true
// quantile is guaranteed to lie within that bucket, i.e. in
// (BucketLower(i), estimate]. Returns 0 for an empty histogram.
func (h HistSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= rank {
			return BucketUpper(b.Index)
		}
	}
	return BucketUpper(h.Buckets[len(h.Buckets)-1].Index)
}

// QuantileBucket returns the index of the bucket Quantile(q) names,
// -1 for an empty histogram. Tests use it to assert the bracketing
// guarantee.
func (h HistSnapshot) QuantileBucket(q float64) int {
	if h.Count == 0 {
		return -1
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.Index
		}
	}
	return h.Buckets[len(h.Buckets)-1].Index
}
