package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryExpositionShape(t *testing.T) {
	r := NewRegistry("svc")
	r.Counter("jobs_admitted_total").Add(3)
	r.Gauge("queue_depth").Set(2)
	r.GaugeFunc("workers", func() float64 { return 4 })
	v := r.HistogramVec("solve_wall_seconds", "scheme")
	v.With("CR-M").Record(0.25)
	v.With("CR-M").Record(0.5)
	r.Collector(func(e *Expo) { e.Int("custom_total", 9) })

	var b bytes.Buffer
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"svc_jobs_admitted_total 3\n",
		"svc_queue_depth 2\n",
		"svc_workers 4\n",
		`svc_solve_wall_seconds_total{scheme="CR-M"} 0.75` + "\n",
		`svc_solve_wall_seconds_count{scheme="CR-M"} 2` + "\n",
		`svc_solve_wall_seconds_bucket{scheme="CR-M",le="+Inf"} 2` + "\n",
		`svc_solve_wall_seconds_p50{scheme="CR-M"} 0.3125` + "\n",
		"svc_custom_total 9\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q; got:\n%s", want, out)
		}
	}
	// Registration order: counter line precedes the histogram family.
	if strings.Index(out, "svc_jobs_admitted_total") > strings.Index(out, "svc_solve_wall_seconds_total") {
		t.Fatal("exposition does not follow registration order")
	}
}

func TestRegistryDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name did not panic")
		}
	}()
	r := NewRegistry("svc")
	r.Counter("x")
	r.Counter("x")
}

// TestSnapshotJSONRoundTripAndMerge: the replica /telemetry document
// round-trips through JSON and the router-side Merge sums counters and
// merges histograms by (name, label).
func TestSnapshotJSONRoundTripAndMerge(t *testing.T) {
	mk := func(n int64, scheme string, vals ...float64) Snapshot {
		r := NewRegistry("svc")
		r.Counter("jobs_completed_total").Add(n)
		v := r.HistogramVec("solve_wall_seconds", "scheme")
		for _, x := range vals {
			v.With(scheme).Record(x)
		}
		return r.Snapshot()
	}
	a := mk(2, "CR-M", 0.1, 0.2)
	b := mk(3, "CR-M", 0.4)

	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}

	var fleet Snapshot
	Merge(&fleet, back)
	Merge(&fleet, b)
	if got := fleet.Counter("jobs_completed_total"); got != 5 {
		t.Fatalf("merged counter = %d, want 5", got)
	}
	h := fleet.Histogram("solve_wall_seconds")
	if h.Count != 3 {
		t.Fatalf("merged histogram count = %d, want 3", h.Count)
	}
	named := fleet.HistogramsNamed("solve_wall_seconds")
	if len(named) != 1 || named[0].Label != "CR-M" || named[0].Count != 3 {
		t.Fatalf("HistogramsNamed = %+v", named)
	}
}

func TestHistogramVecWithReturnsSameChild(t *testing.T) {
	r := NewRegistry("svc")
	v := r.HistogramVec("h", "k")
	if v.With("a") != v.With("a") {
		t.Fatal("With returned distinct children for one label")
	}
	v.With("b").Record(1)
	snaps := v.Snapshots()
	if len(snaps) != 2 || snaps[0].Label != "a" || snaps[1].Label != "b" {
		t.Fatalf("Snapshots not label-sorted: %+v", snaps)
	}
}

func TestFormatVal(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		3:      "3",
		-7:     "-7",
		0.25:   "0.25",
		1e20:   "1e+20",
		0.0001: "0.0001",
	}
	for v, want := range cases {
		if got := formatVal(v); got != want {
			t.Errorf("formatVal(%g) = %q, want %q", v, got, want)
		}
	}
}
