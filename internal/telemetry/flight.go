package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// FlightEvent is one structured entry in the crash flight recorder:
// what happened, when (wall clock), and on whose behalf (the request
// ID, when one is in scope).
type FlightEvent struct {
	TimeUnixNano int64  `json:"t"`
	Kind         string `json:"kind"`
	ReqID        string `json:"req_id,omitempty"`
	Msg          string `json:"msg"`
}

// FlightRecorder keeps a fixed-size ring of recent events per process
// and dumps it to disk when something goes wrong — a job failure or
// 5xx, a cluster stall-protocol abort, a chaos invariant violation —
// or on demand via the /debug/flightrecorder endpoint. Recording is
// always on (a mutex-guarded ring write); disk dumping only happens
// once a dump directory is configured, so library tests never write
// files.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []FlightEvent
	pos  uint64

	dir      string
	proc     string
	seq      int
	lastDump time.Time
	throttle time.Duration
}

// NewFlightRecorder returns a recorder retaining the last size events.
func NewFlightRecorder(size int) *FlightRecorder {
	if size < 1 {
		size = 1
	}
	return &FlightRecorder{ring: make([]FlightEvent, size), throttle: time.Second}
}

// defaultFlight is the per-process recorder: the cluster stall
// protocol, the chaos invariant battery, and (by default) the service
// all record into it, so one dump shows the whole process's recent
// history in one timeline.
var defaultFlight = NewFlightRecorder(1024)

// DefaultFlight returns the process-wide flight recorder.
func DefaultFlight() *FlightRecorder { return defaultFlight }

// SetDump enables automatic disk dumps into dir, tagging dump files
// with the process name proc (e.g. "resilienced"). The directory is
// created on first dump.
func (f *FlightRecorder) SetDump(dir, proc string) {
	f.mu.Lock()
	f.dir = dir
	f.proc = proc
	f.mu.Unlock()
}

// Note records one event.
func (f *FlightRecorder) Note(kind, reqID, msg string) {
	f.mu.Lock()
	slot := &f.ring[f.pos%uint64(len(f.ring))]
	f.pos++
	slot.TimeUnixNano = time.Now().UnixNano()
	slot.Kind = kind
	slot.ReqID = reqID
	slot.Msg = msg
	f.mu.Unlock()
}

// Notef records one event with a formatted message.
func (f *FlightRecorder) Notef(kind, reqID, format string, args ...any) {
	f.Note(kind, reqID, fmt.Sprintf(format, args...))
}

// Events returns the retained events, oldest first.
func (f *FlightRecorder) Events() []FlightEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eventsLocked()
}

func (f *FlightRecorder) eventsLocked() []FlightEvent {
	n := f.pos
	size := uint64(len(f.ring))
	first := uint64(0)
	if n > size {
		first = n - size
	}
	out := make([]FlightEvent, 0, n-first)
	for i := first; i < n; i++ {
		out = append(out, f.ring[i%size])
	}
	return out
}

// flightDump is the on-disk dump document.
type flightDump struct {
	Proc   string        `json:"proc"`
	Reason string        `json:"reason"`
	Dumped string        `json:"dumped_at"`
	Events []FlightEvent `json:"events"`
}

// Crash records the failure event and dumps the ring to disk, throttled
// to at most one dump per throttle interval so a failure storm can't
// flood the disk. Returns the dump path ("" when dumping is disabled
// or throttled).
func (f *FlightRecorder) Crash(kind, reqID, msg string) string {
	f.Note(kind, reqID, msg)
	f.mu.Lock()
	if f.dir == "" || time.Since(f.lastDump) < f.throttle && !f.lastDump.IsZero() {
		f.mu.Unlock()
		return ""
	}
	f.lastDump = time.Now()
	path, err := f.dumpLocked(kind + ": " + msg)
	f.mu.Unlock()
	if err != nil {
		return ""
	}
	return path
}

// Dump writes the current ring to disk unconditionally (no throttle).
func (f *FlightRecorder) Dump(reason string) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dir == "" {
		return "", fmt.Errorf("telemetry: flight recorder has no dump directory")
	}
	return f.dumpLocked(reason)
}

func (f *FlightRecorder) dumpLocked(reason string) (string, error) {
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return "", err
	}
	f.seq++
	proc := f.proc
	if proc == "" {
		proc = "proc"
	}
	path := filepath.Join(f.dir, fmt.Sprintf("flight-%s-%d-%03d.json", proc, os.Getpid(), f.seq))
	doc := flightDump{
		Proc:   proc,
		Reason: reason,
		Dumped: time.Now().UTC().Format(time.RFC3339Nano),
		Events: f.eventsLocked(),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ServeHTTP serves the ring as JSON on GET; ?dump=1 additionally
// writes a disk dump (when configured) and reports its path.
func (f *FlightRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	resp := struct {
		Events   []FlightEvent `json:"events"`
		DumpPath string        `json:"dump_path,omitempty"`
		DumpErr  string        `json:"dump_err,omitempty"`
	}{Events: f.Events()}
	if r.URL.Query().Get("dump") != "" {
		path, err := f.Dump("on-demand: /debug/flightrecorder?dump=1")
		if err != nil {
			resp.DumpErr = err.Error()
		} else {
			resp.DumpPath = path
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// SanitizeID reduces a request ID to a safe file-name fragment.
func SanitizeID(id string) string {
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	if b.Len() == 0 {
		return "request"
	}
	return b.String()
}
