package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a process-local metrics registry. Metrics are created
// once at wiring time and recorded against lock-free thereafter; the
// hot path (Counter.Inc, Gauge.Set, Histogram.Record) never allocates
// and never takes the registry lock. Exposition renders metrics in
// registration order with label values sorted, so the output for a
// fixed set of values is byte-deterministic.
type Registry struct {
	prefix string

	mu      sync.Mutex
	metrics []exposer
	names   map[string]bool
}

// exposer is anything the registry can render and snapshot.
type exposer interface {
	expose(e *Expo)
	snapshot(s *Snapshot)
}

// NewRegistry returns an empty registry. prefix (e.g. "resilienced")
// is prepended with an underscore to every exposed metric name.
func NewRegistry(prefix string) *Registry {
	return &Registry{prefix: prefix, names: make(map[string]bool)}
}

func (r *Registry) register(name string, m exposer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.names[name] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a monotone int64 counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{name: name}
	r.register(name, c)
	return c
}

// Gauge registers and returns a settable float64 gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{name: name}
	r.register(name, g)
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.register(name, &gaugeFunc{name: name, fn: fn})
}

// HistogramVec registers a family of histograms keyed by one label
// (e.g. scheme). With("") serves as the unlabeled singleton.
func (r *Registry) HistogramVec(name, labelKey string) *HistogramVec {
	v := &HistogramVec{name: name, labelKey: labelKey, children: make(map[string]*Histogram)}
	r.register(name, v)
	return v
}

// Collector registers a scrape-time callback that appends lines
// through the exposition writer. It exists for metrics whose label
// sets are dynamic (per-replica rows on the router); callbacks must
// emit in a deterministic order themselves.
func (r *Registry) Collector(fn func(e *Expo)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, collectorFunc(fn))
}

// WritePrometheus renders every metric in registration order in the
// Prometheus text format.
func (r *Registry) WritePrometheus(w io.Writer) {
	e := &Expo{w: w, prefix: r.prefix}
	r.mu.Lock()
	ms := make([]exposer, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	for _, m := range ms {
		m.expose(e)
	}
}

// Snapshot captures every counter, gauge, and histogram as a
// JSON-marshalable value (registration order, label values sorted).
// Collectors are exposition-only and not snapshotted.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	r.mu.Lock()
	ms := make([]exposer, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	for _, m := range ms {
		m.snapshot(&s)
	}
	return s
}

// Counter is a monotone counter. Inc/Add are lock-free and 0 allocs.
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) expose(e *Expo) { e.Int(c.name, c.v.Load()) }
func (c *Counter) snapshot(s *Snapshot) {
	s.Counters = append(s.Counters, CounterSnap{Name: c.name, Value: c.v.Load()})
}

// Gauge is a settable value.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) expose(e *Expo) { e.Line(g.name, g.Value()) }
func (g *Gauge) snapshot(s *Snapshot) {
	s.Gauges = append(s.Gauges, GaugeSnap{Name: g.name, Value: g.Value()})
}

type gaugeFunc struct {
	name string
	fn   func() float64
}

func (g *gaugeFunc) expose(e *Expo) { e.Line(g.name, g.fn()) }
func (g *gaugeFunc) snapshot(s *Snapshot) {
	s.Gauges = append(s.Gauges, GaugeSnap{Name: g.name, Value: g.fn()})
}

type collectorFunc func(e *Expo)

func (c collectorFunc) expose(e *Expo)       { c(e) }
func (c collectorFunc) snapshot(s *Snapshot) {}

// HistogramVec is a family of histograms keyed by one label value.
// With is the hot-path accessor: a read-locked map hit, no
// allocation; children are created on first use.
type HistogramVec struct {
	name     string
	labelKey string

	mu       sync.RWMutex
	children map[string]*Histogram
}

// With returns the child histogram for the given label value,
// creating it on first use.
func (v *HistogramVec) With(label string) *Histogram {
	v.mu.RLock()
	h, ok := v.children[label]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.children[label]; ok {
		return h
	}
	h = &Histogram{name: v.name, label: label}
	v.children[label] = h
	return h
}

// labels returns the child label values, sorted.
func (v *HistogramVec) labels() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	ls := make([]string, 0, len(v.children))
	for l := range v.children {
		ls = append(ls, l)
	}
	sort.Strings(ls)
	return ls
}

// Snapshots returns the sorted-by-label snapshots of every child.
func (v *HistogramVec) Snapshots() []HistSnapshot {
	ls := v.labels()
	out := make([]HistSnapshot, 0, len(ls))
	for _, l := range ls {
		v.mu.RLock()
		h := v.children[l]
		v.mu.RUnlock()
		out = append(out, h.Snapshot())
	}
	return out
}

// exposeQuantiles is the quantile set rendered for every histogram.
var exposeQuantiles = []struct {
	suffix string
	q      float64
}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}}

func (v *HistogramVec) expose(e *Expo) {
	for _, s := range v.Snapshots() {
		exposeHist(e, v.labelKey, s)
	}
}

// exposeHist renders one histogram snapshot: the _total (sum) and
// _count lines, cumulative _bucket lines for the non-empty buckets
// plus +Inf, and the quantile estimates. The _total suffix (rather
// than Prometheus's _sum) keeps the pre-histogram metric names — e.g.
// resilienced_solve_virtual_seconds_total{scheme="CR-M"} — stable for
// existing scrapers.
func exposeHist(e *Expo, labelKey string, s HistSnapshot) {
	e.LineL(s.Name+"_total", labelKey, s.Label, s.Sum)
	e.IntL(s.Name+"_count", labelKey, s.Label, int64(s.Count))
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		e.bucket(s.Name, labelKey, s.Label, formatVal(BucketUpper(b.Index)), cum)
	}
	if s.Count > 0 {
		e.bucket(s.Name, labelKey, s.Label, "+Inf", cum)
	}
	for _, pq := range exposeQuantiles {
		e.LineL(s.Name+pq.suffix, labelKey, s.Label, s.Quantile(pq.q))
	}
}

func (v *HistogramVec) snapshot(s *Snapshot) {
	s.Histograms = append(s.Histograms, v.Snapshots()...)
}

// Snapshot is a registry's JSON-marshalable state: what a replica
// serves on /telemetry and what the router merges into the fleet view.
type Snapshot struct {
	Counters   []CounterSnap  `json:"counters,omitempty"`
	Gauges     []GaugeSnap    `json:"gauges,omitempty"`
	Histograms []HistSnapshot `json:"histograms,omitempty"`
}

// CounterSnap is one counter's snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge's snapshot.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Counter returns the named counter's value (0 when absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Merge folds src into dst: counters and gauges sum by name,
// histograms merge bucket-wise by (name, label). The result is exactly
// what one process would report had it observed both sample streams;
// ordering is dst-first then src-only entries in src order, so merging
// identically-shaped snapshots is order-deterministic.
func Merge(dst *Snapshot, src Snapshot) {
	for _, c := range src.Counters {
		found := false
		for i := range dst.Counters {
			if dst.Counters[i].Name == c.Name {
				dst.Counters[i].Value += c.Value
				found = true
				break
			}
		}
		if !found {
			dst.Counters = append(dst.Counters, c)
		}
	}
	for _, g := range src.Gauges {
		found := false
		for i := range dst.Gauges {
			if dst.Gauges[i].Name == g.Name {
				dst.Gauges[i].Value += g.Value
				found = true
				break
			}
		}
		if !found {
			dst.Gauges = append(dst.Gauges, g)
		}
	}
	for _, h := range src.Histograms {
		found := false
		for i := range dst.Histograms {
			if dst.Histograms[i].Name == h.Name && dst.Histograms[i].Label == h.Label {
				dst.Histograms[i] = dst.Histograms[i].Merge(h)
				found = true
				break
			}
		}
		if !found {
			dst.Histograms = append(dst.Histograms, h)
		}
	}
}

// Histogram returns the merged snapshot named name across every label
// value (the fleet-wide "all schemes" view), or an empty snapshot.
func (s Snapshot) Histogram(name string) HistSnapshot {
	out := HistSnapshot{Name: name}
	for _, h := range s.Histograms {
		if h.Name == name {
			out = out.Merge(h)
		}
	}
	return out
}

// HistogramsNamed returns the label-sorted snapshots named name.
func (s Snapshot) HistogramsNamed(name string) []HistSnapshot {
	var out []HistSnapshot
	for _, h := range s.Histograms {
		if h.Name == name {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// Expo writes Prometheus text lines with a fixed prefix. Values render
// as integers when integral (matching the repo's established /metrics
// style) and as shortest-form %g otherwise.
type Expo struct {
	w      io.Writer
	prefix string
}

// NewExpo returns an exposition writer for collectors and tests.
func NewExpo(w io.Writer, prefix string) *Expo { return &Expo{w: w, prefix: prefix} }

// Line writes `<prefix>_<name> <v>`.
func (e *Expo) Line(name string, v float64) {
	fmt.Fprintf(e.w, "%s_%s %s\n", e.prefix, name, formatVal(v))
}

// Int writes `<prefix>_<name> <v>` for an integer value.
func (e *Expo) Int(name string, v int64) {
	fmt.Fprintf(e.w, "%s_%s %d\n", e.prefix, name, v)
}

// LineL writes a labeled line; an empty labelKey or labelVal falls
// back to the unlabeled form.
func (e *Expo) LineL(name, labelKey, labelVal string, v float64) {
	if labelKey == "" || labelVal == "" {
		e.Line(name, v)
		return
	}
	fmt.Fprintf(e.w, "%s_%s{%s=%q} %s\n", e.prefix, name, labelKey, labelVal, formatVal(v))
}

// IntL is LineL for integer values.
func (e *Expo) IntL(name, labelKey, labelVal string, v int64) {
	if labelKey == "" || labelVal == "" {
		e.Int(name, v)
		return
	}
	fmt.Fprintf(e.w, "%s_%s{%s=%q} %d\n", e.prefix, name, labelKey, labelVal, v)
}

// bucket writes one cumulative bucket line with the le label (plus the
// vec label when present).
func (e *Expo) bucket(name, labelKey, labelVal, le string, cum uint64) {
	if labelKey == "" || labelVal == "" {
		fmt.Fprintf(e.w, "%s_%s_bucket{le=%q} %d\n", e.prefix, name, le, cum)
		return
	}
	fmt.Fprintf(e.w, "%s_%s_bucket{%s=%q,le=%q} %d\n", e.prefix, name, labelKey, labelVal, le, cum)
}

// formatVal renders integral values without a decimal point and
// everything else in strconv's shortest 'g' form — deterministic for a
// fixed value, matching the style of the hand-rolled exposition this
// registry replaces.
func formatVal(v float64) string {
	if v == float64(int64(v)) && v >= -1e15 && v <= 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	s := strconv.FormatFloat(v, 'g', -1, 64)
	// Normalize Inf spellings to Prometheus's.
	if strings.HasSuffix(s, "Inf") {
		if strings.HasPrefix(s, "-") {
			return "-Inf"
		}
		return "+Inf"
	}
	return s
}
