package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	f.Note("a", "", "first")
	f.Note("b", "r1", "second")
	f.Notef("c", "", "n=%d", 3)
	f.Note("d", "", "fourth")
	evs := f.Events()
	if len(evs) != 3 {
		t.Fatalf("Events() = %d, want ring size 3", len(evs))
	}
	if evs[0].Kind != "b" || evs[0].ReqID != "r1" || evs[2].Msg != "fourth" {
		t.Fatalf("ring contents wrong: %+v", evs)
	}
}

// TestCrashDumpNamesRequestID: a crash dump lands on disk and contains
// the failing request's ID — the acceptance criterion for the flight
// recorder.
func TestCrashDumpNamesRequestID(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(16)

	// Without a dump dir, Crash records but does not write.
	if p := f.Crash("job-failed", "r-abc-1", "timeout"); p != "" {
		t.Fatalf("Crash without dump dir returned path %q", p)
	}

	f.SetDump(dir, "testproc")
	path := f.Crash("job-failed", "r-abc-2", "solver blew up")
	if path == "" {
		t.Fatal("Crash with dump dir returned no path")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Proc   string        `json:"proc"`
		Reason string        `json:"reason"`
		Events []FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if doc.Proc != "testproc" || !strings.Contains(doc.Reason, "job-failed") {
		t.Fatalf("dump header wrong: %+v", doc)
	}
	if !strings.Contains(string(data), "r-abc-2") {
		t.Fatal("dump does not name the failing request ID")
	}
	if len(doc.Events) < 2 {
		t.Fatalf("dump retains %d events, want the full ring history", len(doc.Events))
	}

	// Throttle: an immediate second crash records but skips the dump.
	if p := f.Crash("job-failed", "r-abc-3", "again"); p != "" {
		t.Fatalf("throttled Crash returned path %q", p)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if len(files) != 1 {
		t.Fatalf("dump dir holds %d files, want 1 (throttled)", len(files))
	}

	// Dump is unthrottled.
	if _, err := f.Dump("manual"); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	files, _ = filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if len(files) != 2 {
		t.Fatalf("dump dir holds %d files after manual Dump, want 2", len(files))
	}
}

func TestFlightServeHTTP(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(8)
	f.SetDump(dir, "svc")
	f.Note("boot", "", "up")

	rr := httptest.NewRecorder()
	f.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flightrecorder", nil))
	var resp struct {
		Events   []FlightEvent `json:"events"`
		DumpPath string        `json:"dump_path"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if len(resp.Events) != 1 || resp.Events[0].Kind != "boot" {
		t.Fatalf("events = %+v", resp.Events)
	}
	if resp.DumpPath != "" {
		t.Fatal("plain GET should not dump")
	}

	rr = httptest.NewRecorder()
	f.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flightrecorder?dump=1", nil))
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.DumpPath == "" {
		t.Fatal("?dump=1 did not report a dump path")
	}
	if _, err := os.Stat(resp.DumpPath); err != nil {
		t.Fatalf("reported dump path missing: %v", err)
	}

	rr = httptest.NewRecorder()
	f.ServeHTTP(rr, httptest.NewRequest("POST", "/debug/flightrecorder", nil))
	if rr.Code != 405 {
		t.Fatalf("POST = %d, want 405", rr.Code)
	}
}

func TestSanitizeID(t *testing.T) {
	if got := SanitizeID("r-00af-12/..\\x"); got != "r-00af-12_.._x" {
		t.Fatalf("SanitizeID = %q", got)
	}
	if got := SanitizeID(""); got != "request" {
		t.Fatalf("SanitizeID(\"\") = %q", got)
	}
}
