// Package cluster is the message-passing substrate that stands in for MPI
// (offline substitution: no MPI implementation is practical here). Ranks
// are goroutines exchanging data through typed mailboxes and tree-modeled
// collectives, exactly as a block-row CG would over MPI.
//
// Time is virtual. Every rank owns a clock that advances by modeled costs:
//
//	compute:        flops / rate(freq)
//	point-to-point: alpha + bytes/bandwidth  (LogGP-style)
//	collectives:    ceil(log2 P) * (alpha + bytes/bandwidth)
//
// and synchronizes at collectives to the participants' maximum. This is
// the standard conservative network simulation (cf. SimGrid/SMPI) and is
// what lets the repository report time-to-solution and energy-to-solution
// without the paper's physical testbed.
//
// Power: every clock advance is recorded into a power.Meter with the
// per-core wattage implied by the core's frequency and activity. While a
// rank waits (for a message or at a collective) it is charged busy-wait
// power by default, matching MPI's polling progress engines — the paper
// relies on this to explain why plain LI only drops node power to ~0.75×.
// Recovery code switches waiting ranks to idle/sleep accounting (and
// optionally a lower frequency) through SetWaitIdle and SetFreq.
//
// Execution modes: the runtime can step its ranks in one of two ways
// (see SchedMode). Both produce bitwise-identical clocks, energy,
// traces and solutions, because every result is derived from virtual
// time and rank-ordered reductions, never from host scheduling order.
package cluster

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"resilience/internal/obs"
	"resilience/internal/platform"
	"resilience/internal/power"
	"resilience/internal/telemetry"
)

// SchedMode selects how the runtime steps its ranks.
type SchedMode int

const (
	// SchedAuto resolves the mode from the RES_SCHED environment
	// variable ("coop" for the cooperative scheduler, "goroutine" for
	// the preemptive one) and defaults to SchedGoroutine.
	SchedAuto SchedMode = iota
	// SchedGoroutine runs one preemptively-scheduled goroutine per rank
	// with mutex/cond blocking — the original runtime and the golden
	// oracle the cooperative mode is pinned against.
	SchedGoroutine
	// SchedCoop runs all ranks as run-to-block coroutines stepped by a
	// deterministic cooperative scheduler: exactly one rank executes at
	// a time, until it blocks on a receive or a collective, and the
	// scheduler then resumes the next runnable rank in rank order. No
	// mutexes, no condition-variable broadcasts, no spurious wake-ups.
	SchedCoop
)

func (m SchedMode) String() string {
	switch m {
	case SchedAuto:
		return "auto"
	case SchedGoroutine:
		return "goroutine"
	case SchedCoop:
		return "coop"
	}
	return fmt.Sprintf("SchedMode(%d)", int(m))
}

// ParseSched parses a scheduler mode name as the CLIs spell it: "" or
// "auto" (defer to RES_SCHED), "goroutine", or "coop"/"cooperative"/
// "coroutine".
func ParseSched(s string) (SchedMode, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return SchedAuto, nil
	case "goroutine":
		return SchedGoroutine, nil
	case "coop", "cooperative", "coroutine":
		return SchedCoop, nil
	}
	return SchedAuto, fmt.Errorf("cluster: unknown scheduler mode %q (want auto, goroutine or coop)", s)
}

// schedFromEnv resolves SchedAuto against the RES_SCHED environment
// variable. Unrecognized values fall back to the goroutine oracle so a
// typo can never silently change which engine produced a result set.
func schedFromEnv() SchedMode {
	switch strings.ToLower(os.Getenv("RES_SCHED")) {
	case "coop", "cooperative", "coroutine":
		return SchedCoop
	}
	return SchedGoroutine
}

// Options configures a Runtime beyond its rank count and platform.
type Options struct {
	// Sched selects the execution mode; SchedAuto (the zero value)
	// resolves RES_SCHED.
	Sched SchedMode
}

// Runtime couples P ranks to a platform and a meter for one parallel run.
type Runtime struct {
	p     int
	plat  *platform.Platform
	meter *power.Meter
	rec   *obs.Recorder

	coll *collectiveState
	mail *mailbox

	// sched is non-nil iff the runtime runs in cooperative mode. The
	// wait/wake sites in collectives.go and p2p.go branch on it: nil
	// means mutex/cond blocking, non-nil means park in the scheduler.
	sched *coopSched

	// abortFlag is the hot-path view of "has any rank failed": checkAbort
	// runs before every operation, so it reads one atomic instead of
	// serializing all ranks on abortMu. The mutex still orders the error.
	abortFlag atomic.Bool
	abortMu   sync.Mutex
	abortErr  error

	// exited is an atomic bitset of ranks whose function has returned. A
	// rank blocked on a collective or a receive that an exited rank can
	// no longer satisfy is deadlocked; the waiters detect this and abort
	// with a diagnostic instead of hanging the run (and the test suite)
	// forever. A bitset (vs. the former mutex-guarded []bool) keeps the
	// per-receive deadlock probe lock-free.
	exited []atomic.Uint64
}

// abortPanic is the sentinel carried by panics raised when the run has
// been aborted by another rank's failure.
type abortPanic struct{ err error }

// NewRuntime builds a runtime for p ranks in the default (auto) mode.
func NewRuntime(p int, plat *platform.Platform, meter *power.Meter) *Runtime {
	return NewRuntimeOpts(p, plat, meter, Options{})
}

// NewRuntimeOpts builds a runtime for p ranks with explicit options.
func NewRuntimeOpts(p int, plat *platform.Platform, meter *power.Meter, opts Options) *Runtime {
	if p <= 0 {
		panic(fmt.Sprintf("cluster: invalid rank count %d", p))
	}
	rt := &Runtime{p: p, plat: plat, meter: meter,
		exited: make([]atomic.Uint64, (p+63)/64)}
	// Pre-size the meter's per-core table so every clock advance takes the
	// meter's lock-free single-writer path (core id = rank).
	meter.Reserve(p)
	rt.coll = newCollectiveState(p, rt)
	rt.mail = newMailbox(rt)
	mode := opts.Sched
	if mode == SchedAuto {
		mode = schedFromEnv()
	}
	if mode == SchedCoop {
		rt.sched = newCoopSched(rt)
	}
	return rt
}

// Sched reports the resolved execution mode.
func (rt *Runtime) Sched() SchedMode {
	if rt.sched != nil {
		return SchedCoop
	}
	return SchedGoroutine
}

// markExited records that a rank's function returned and wakes every
// blocked waiter so it can re-run its deadlock check. In goroutine mode
// each wait mutex is taken (and released) before its broadcast so a
// waiter cannot evaluate the check and go to sleep across the
// transition; in cooperative mode the scheduler's progress note plays
// the same role (parked ranks re-check when next stepped).
func (rt *Runtime) markExited(rank int) {
	w := &rt.exited[rank>>6]
	bit := uint64(1) << (uint(rank) & 63)
	for {
		old := w.Load()
		if w.CompareAndSwap(old, old|bit) {
			break
		}
	}
	if rt.sched != nil {
		rt.sched.noteProgress()
		return
	}
	rt.coll.mu.Lock()
	//lint:ignore SA2001 empty critical section orders the flag before the wake-up
	rt.coll.mu.Unlock()
	rt.coll.cond.Broadcast()
	rt.mail.mu.Lock()
	//lint:ignore SA2001 see above
	rt.mail.mu.Unlock()
	rt.mail.cond.Broadcast()
}

// isExited reports whether a rank's function has returned.
func (rt *Runtime) isExited(rank int) bool {
	return rt.exited[rank>>6].Load()&(uint64(1)<<(uint(rank)&63)) != 0
}

// SetRecorder attaches an observability recorder before Run: every rank's
// Comm then records spans and counters against its surface. Recording is
// pure — it reads the virtual clocks but never advances one — so runs are
// byte-identical with or without a recorder. Must be called before Run.
func (rt *Runtime) SetRecorder(rec *obs.Recorder) { rt.rec = rec }

// abort records the first failure and unblocks every waiting rank. The
// first abort of a run also lands in the process flight recorder, so a
// stall-protocol trip or deadlock detection inside a service job shows
// up in the same timeline as the request that carried it.
func (rt *Runtime) abort(err error) {
	rt.abortMu.Lock()
	first := rt.abortErr == nil
	if first {
		rt.abortErr = err
		rt.abortFlag.Store(true)
	}
	rt.abortMu.Unlock()
	if first {
		telemetry.DefaultFlight().Note("cluster-abort", "", err.Error())
	}
	rt.coll.abort()
	rt.mail.abort()
}

func (rt *Runtime) aborted() error {
	if !rt.abortFlag.Load() {
		return nil
	}
	rt.abortMu.Lock()
	defer rt.abortMu.Unlock()
	return rt.abortErr
}

// Run executes fn on every rank concurrently and waits for completion.
// The first error (or converted panic) aborts all ranks and is returned.
// MaxClock afterwards holds the final virtual time.
func Run(p int, plat *platform.Platform, meter *power.Meter, fn func(c *Comm) error) (maxClock float64, err error) {
	rt := NewRuntime(p, plat, meter)
	return rt.Run(fn)
}

// Run executes fn on every rank of this runtime.
func (rt *Runtime) Run(fn func(c *Comm) error) (maxClock float64, err error) {
	clocks := make([]float64, rt.p)
	errs := make([]error, rt.p)
	body := func(rank int) {
		c := newComm(rank, rt)
		defer func() {
			clocks[rank] = c.clock
			rec := recover()
			// Exit is marked before abort handling so waiters woken by
			// either path re-evaluate against the final exit set.
			rt.markExited(rank)
			if rec != nil {
				if ap, ok := rec.(abortPanic); ok {
					errs[rank] = ap.err
					return
				}
				err := fmt.Errorf("cluster: rank %d panicked: %v", rank, rec)
				errs[rank] = err
				rt.abort(err)
			}
		}()
		if e := fn(c); e != nil {
			errs[rank] = e
			rt.abort(e)
		}
	}
	if rt.sched != nil {
		rt.sched.run(body)
	} else {
		var wg sync.WaitGroup
		for r := 0; r < rt.p; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				body(rank)
			}(r)
		}
		wg.Wait()
	}
	for _, c := range clocks {
		if c > maxClock {
			maxClock = c
		}
	}
	if aerr := rt.aborted(); aerr != nil {
		return maxClock, aerr
	}
	for _, e := range errs {
		if e != nil {
			return maxClock, e
		}
	}
	return maxClock, nil
}
