// Package cluster is the message-passing substrate that stands in for MPI
// (offline substitution: no MPI implementation is practical here). Ranks
// are goroutines exchanging data through typed mailboxes and tree-modeled
// collectives, exactly as a block-row CG would over MPI.
//
// Time is virtual. Every rank owns a clock that advances by modeled costs:
//
//	compute:        flops / rate(freq)
//	point-to-point: alpha + bytes/bandwidth  (LogGP-style)
//	collectives:    ceil(log2 P) * (alpha + bytes/bandwidth)
//
// and synchronizes at collectives to the participants' maximum. This is
// the standard conservative network simulation (cf. SimGrid/SMPI) and is
// what lets the repository report time-to-solution and energy-to-solution
// without the paper's physical testbed.
//
// Power: every clock advance is recorded into a power.Meter with the
// per-core wattage implied by the core's frequency and activity. While a
// rank waits (for a message or at a collective) it is charged busy-wait
// power by default, matching MPI's polling progress engines — the paper
// relies on this to explain why plain LI only drops node power to ~0.75×.
// Recovery code switches waiting ranks to idle/sleep accounting (and
// optionally a lower frequency) through SetWaitIdle and SetFreq.
package cluster

import (
	"fmt"
	"sync"

	"resilience/internal/obs"
	"resilience/internal/platform"
	"resilience/internal/power"
)

// Runtime couples P ranks to a platform and a meter for one parallel run.
type Runtime struct {
	p     int
	plat  *platform.Platform
	meter *power.Meter
	rec   *obs.Recorder

	coll *collectiveState
	mail *mailbox

	abortMu  sync.Mutex
	abortErr error

	// exited marks ranks whose function has returned. A rank blocked on a
	// collective or a receive that an exited rank can no longer satisfy is
	// deadlocked; the waiters detect this and abort with a diagnostic
	// instead of hanging the run (and the test suite) forever.
	exitMu sync.Mutex
	exited []bool
}

// abortPanic is the sentinel carried by panics raised when the run has
// been aborted by another rank's failure.
type abortPanic struct{ err error }

// NewRuntime builds a runtime for p ranks.
func NewRuntime(p int, plat *platform.Platform, meter *power.Meter) *Runtime {
	if p <= 0 {
		panic(fmt.Sprintf("cluster: invalid rank count %d", p))
	}
	rt := &Runtime{p: p, plat: plat, meter: meter, exited: make([]bool, p)}
	rt.coll = newCollectiveState(p, rt)
	rt.mail = newMailbox(rt)
	return rt
}

// markExited records that a rank's function returned and wakes every
// blocked waiter so it can re-run its deadlock check. Each wait mutex is
// taken (and released) before its broadcast so a waiter cannot evaluate
// the check and go to sleep across the transition.
func (rt *Runtime) markExited(rank int) {
	rt.exitMu.Lock()
	rt.exited[rank] = true
	rt.exitMu.Unlock()
	rt.coll.mu.Lock()
	//lint:ignore SA2001 empty critical section orders the flag before the wake-up
	rt.coll.mu.Unlock()
	rt.coll.cond.Broadcast()
	rt.mail.mu.Lock()
	//lint:ignore SA2001 see above
	rt.mail.mu.Unlock()
	rt.mail.cond.Broadcast()
}

// isExited reports whether a rank's function has returned.
func (rt *Runtime) isExited(rank int) bool {
	rt.exitMu.Lock()
	defer rt.exitMu.Unlock()
	return rt.exited[rank]
}

// SetRecorder attaches an observability recorder before Run: every rank's
// Comm then records spans and counters against its surface. Recording is
// pure — it reads the virtual clocks but never advances one — so runs are
// byte-identical with or without a recorder. Must be called before Run.
func (rt *Runtime) SetRecorder(rec *obs.Recorder) { rt.rec = rec }

// abort records the first failure and unblocks every waiting rank.
func (rt *Runtime) abort(err error) {
	rt.abortMu.Lock()
	if rt.abortErr == nil {
		rt.abortErr = err
	}
	rt.abortMu.Unlock()
	rt.coll.abort()
	rt.mail.abort()
}

func (rt *Runtime) aborted() error {
	rt.abortMu.Lock()
	defer rt.abortMu.Unlock()
	return rt.abortErr
}

// Run executes fn on every rank concurrently and waits for completion.
// The first error (or converted panic) aborts all ranks and is returned.
// MaxClock afterwards holds the final virtual time.
func Run(p int, plat *platform.Platform, meter *power.Meter, fn func(c *Comm) error) (maxClock float64, err error) {
	rt := NewRuntime(p, plat, meter)
	return rt.Run(fn)
}

// Run executes fn on every rank of this runtime.
func (rt *Runtime) Run(fn func(c *Comm) error) (maxClock float64, err error) {
	var wg sync.WaitGroup
	clocks := make([]float64, rt.p)
	errs := make([]error, rt.p)
	for r := 0; r < rt.p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := newComm(rank, rt)
			defer func() {
				clocks[rank] = c.clock
				rec := recover()
				// Exit is marked before abort handling so waiters woken by
				// either path re-evaluate against the final exit set.
				rt.markExited(rank)
				if rec != nil {
					if ap, ok := rec.(abortPanic); ok {
						errs[rank] = ap.err
						return
					}
					err := fmt.Errorf("cluster: rank %d panicked: %v", rank, rec)
					errs[rank] = err
					rt.abort(err)
				}
			}()
			if e := fn(c); e != nil {
				errs[rank] = e
				rt.abort(e)
			}
		}(r)
	}
	wg.Wait()
	for _, c := range clocks {
		if c > maxClock {
			maxClock = c
		}
	}
	if aerr := rt.aborted(); aerr != nil {
		return maxClock, aerr
	}
	for _, e := range errs {
		if e != nil {
			return maxClock, e
		}
	}
	return maxClock, nil
}
