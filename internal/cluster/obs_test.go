package cluster

import (
	"math"
	"sort"
	"testing"

	"resilience/internal/obs"
	"resilience/internal/platform"
	"resilience/internal/power"
)

// runObserved mirrors the run helper but attaches a recorder.
func runObserved(t *testing.T, p int, rec *obs.Recorder, fn func(c *Comm) error) (float64, *power.Meter) {
	t.Helper()
	meter := power.NewMeter(true)
	rt := NewRuntime(p, platform.Default(), meter)
	rt.SetRecorder(rec)
	maxClock, err := rt.Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	return maxClock, meter
}

// TestObsExactCounts pins the per-rank counters and span taxonomy of a
// fully known exchange: one blocking send, one blocking receive, one
// scalar allreduce, one compute block per rank.
func TestObsExactCounts(t *testing.T) {
	rec := obs.NewRecorder()
	runObserved(t, 2, rec, func(c *Comm) error {
		c.Compute(1000)
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			c.Recv(0, 7)
		}
		c.AllreduceScalarSum(1)
		return nil
	})

	ms := rec.Metrics()
	if len(ms) != 2 {
		t.Fatalf("metrics for %d ranks, want 2", len(ms))
	}
	m0, m1 := ms[0], ms[1]
	if m0.MsgsSent != 1 || m0.BytesSent != 24 {
		t.Errorf("rank 0 send counters: %+v", m0)
	}
	if m0.MsgsRecv != 0 || m1.MsgsRecv != 1 || m1.BytesRecv != 24 {
		t.Errorf("recv counters: %+v / %+v", m0, m1)
	}
	if m0.Collectives != 1 || m1.Collectives != 1 {
		t.Errorf("collective counters: %+v / %+v", m0, m1)
	}
	if m0.Flops != 1000 || m1.Flops != 1000 {
		t.Errorf("flop counters: %+v / %+v", m0, m1)
	}

	// Span kinds per rank: the sender has compute+send+collective, the
	// receiver compute+recv+collective (the receiver blocks, so its recv
	// wait has positive duration — Send costs time the receiver spends
	// blocked on arrival).
	kindsOf := func(r int) map[obs.SpanKind]int {
		ks := map[obs.SpanKind]int{}
		for _, s := range rec.RankSpans(r) {
			ks[s.Kind]++
		}
		return ks
	}
	k0, k1 := kindsOf(0), kindsOf(1)
	if k0[obs.SpanCompute] != 1 || k0[obs.SpanSend] != 1 || k0[obs.SpanCollective] != 1 {
		t.Errorf("rank 0 span kinds: %v", k0)
	}
	if k1[obs.SpanCompute] != 1 || k1[obs.SpanRecv] != 1 || k1[obs.SpanCollective] != 1 {
		t.Errorf("rank 1 span kinds: %v", k1)
	}
	if k0[obs.SpanRecv] != 0 || k1[obs.SpanSend] != 0 {
		t.Errorf("span kinds crossed ranks: %v / %v", k0, k1)
	}
}

// TestObsPurityCluster verifies the zero-perturbation contract at the
// runtime layer: identical final clocks, total energy, and per-segment
// power trace with and without a recorder attached.
func TestObsPurityCluster(t *testing.T) {
	workload := func(c *Comm) error {
		c.Compute(int64(2000 * (c.Rank() + 1)))
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() + c.Size() - 1) % c.Size()
		c.ISend(next, 3, []float64{float64(c.Rank())})
		c.Recv(prev, 3)
		c.AllreduceScalarSum(float64(c.Rank()))
		return nil
	}

	bareClock, bareMeter := run(t, 4, workload)
	rec := obs.NewRecorder()
	obsClock, obsMeter := runObserved(t, 4, rec, workload)

	if math.Float64bits(bareClock) != math.Float64bits(obsClock) {
		t.Errorf("final clock drift: %v vs %v", bareClock, obsClock)
	}
	if be, oe := bareMeter.TotalEnergy(), obsMeter.TotalEnergy(); math.Float64bits(be) != math.Float64bits(oe) {
		t.Errorf("energy drift: %v vs %v", be, oe)
	}
	// Segments() returns arrival order, which is scheduling-dependent;
	// per (core, start) the set is deterministic, so compare sorted.
	bySpace := func(s []power.Segment) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].Core != s[j].Core {
				return s[i].Core < s[j].Core
			}
			return s[i].Start < s[j].Start
		}
	}
	bs, os := bareMeter.Segments(), obsMeter.Segments()
	sort.Slice(bs, bySpace(bs))
	sort.Slice(os, bySpace(os))
	if len(bs) != len(os) {
		t.Fatalf("segment count drift: %d vs %d", len(bs), len(os))
	}
	for i := range bs {
		if bs[i] != os[i] {
			t.Fatalf("segment %d drift: %+v vs %+v", i, bs[i], os[i])
		}
	}
	if rec.SpanCount() == 0 {
		t.Error("observed run recorded no spans")
	}
}

// TestObsISendCountedNotSpanned: nonblocking sends are metered as traffic
// but own no CPU extent on the timeline (the NIC injects them).
func TestObsISendCountedNotSpanned(t *testing.T) {
	rec := obs.NewRecorder()
	runObserved(t, 2, rec, func(c *Comm) error {
		if c.Rank() == 0 {
			c.ISend(1, 1, []float64{1, 2})
		} else {
			c.Recv(0, 1)
		}
		return nil
	})
	m0 := rec.Metrics()[0]
	if m0.MsgsSent != 1 || m0.BytesSent != 16 {
		t.Errorf("ISend not counted: %+v", m0)
	}
	for _, s := range rec.RankSpans(0) {
		if s.Kind == obs.SpanSend {
			t.Errorf("ISend produced a send span: %+v", s)
		}
	}
}
