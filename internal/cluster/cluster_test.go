package cluster

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"resilience/internal/platform"
	"resilience/internal/power"
)

func run(t *testing.T, p int, fn func(c *Comm) error) (float64, *power.Meter) {
	t.Helper()
	meter := power.NewMeter(true)
	maxClock, err := Run(p, platform.Default(), meter, fn)
	if err != nil {
		t.Fatal(err)
	}
	return maxClock, meter
}

func TestAllreduceSum(t *testing.T) {
	const p = 7
	_, _ = run(t, p, func(c *Comm) error {
		got := c.AllreduceSum([]float64{float64(c.Rank()), 1})
		wantSum := float64(p*(p-1)) / 2
		if got[0] != wantSum || got[1] != p {
			return fmt.Errorf("rank %d: got %v", c.Rank(), got)
		}
		return nil
	})
}

func TestAllreduceSumDeterministicOrder(t *testing.T) {
	// Summation must happen in rank order regardless of arrival order, so
	// repeated runs give bitwise-identical results.
	vals := []float64{1e-16, 1.0, -1.0, 3e-16, 1e16, -1e16, 2.5}
	var first float64
	for trial := 0; trial < 5; trial++ {
		res := make([]float64, 7)
		_, _ = run(t, 7, func(c *Comm) error {
			// Stagger arrival by doing rank-dependent fake work.
			c.Compute(int64(1000 * (7 - c.Rank())))
			out := c.AllreduceScalarSum(vals[c.Rank()])
			res[c.Rank()] = out
			return nil
		})
		for r := 1; r < 7; r++ {
			if res[r] != res[0] {
				t.Fatalf("trial %d: ranks disagree: %v", trial, res)
			}
		}
		if trial == 0 {
			first = res[0]
		} else if res[0] != first {
			t.Fatalf("trial %d: non-deterministic sum %g vs %g", trial, res[0], first)
		}
	}
}

func TestAllreduceMax(t *testing.T) {
	_, _ = run(t, 5, func(c *Comm) error {
		got := c.AllreduceMax([]float64{float64(-c.Rank()), float64(c.Rank())})
		if got[0] != 0 || got[1] != 4 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
}

func TestBcast(t *testing.T) {
	_, _ = run(t, 6, func(c *Comm) error {
		var in []float64
		if c.Rank() == 2 {
			in = []float64{42, 43}
		} else {
			in = []float64{0, 0}
		}
		got := c.Bcast(2, in)
		if got[0] != 42 || got[1] != 43 {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		// The result must be a private copy.
		got[0] = -1
		return nil
	})
}

func TestBcastInt(t *testing.T) {
	_, _ = run(t, 3, func(c *Comm) error {
		v := -1
		if c.Rank() == 0 {
			v = 17
		}
		if got := c.BcastInt(0, v); got != 17 {
			return fmt.Errorf("got %d", got)
		}
		return nil
	})
}

func TestAllgatherV(t *testing.T) {
	_, _ = run(t, 4, func(c *Comm) error {
		block := make([]float64, c.Rank()+1) // variable lengths
		for i := range block {
			block[i] = float64(c.Rank())
		}
		all := c.AllgatherV(block)
		if len(all) != 4 {
			return fmt.Errorf("got %d blocks", len(all))
		}
		for r, b := range all {
			if len(b) != r+1 {
				return fmt.Errorf("block %d has len %d", r, len(b))
			}
			for _, v := range b {
				if v != float64(r) {
					return fmt.Errorf("block %d contents %v", r, b)
				}
			}
		}
		return nil
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	const p = 4
	clocks := make([]float64, p)
	_, _ = run(t, p, func(c *Comm) error {
		c.Compute(int64(1e6 * (c.Rank() + 1))) // staggered work
		c.Barrier()
		clocks[c.Rank()] = c.Clock()
		return nil
	})
	for r := 1; r < p; r++ {
		if math.Abs(clocks[r]-clocks[0]) > 1e-12 {
			t.Fatalf("clocks diverge after barrier: %v", clocks)
		}
	}
}

func TestSendRecvFIFO(t *testing.T) {
	_, _ = run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 9, []float64{1})
			c.Send(1, 9, []float64{2})
			c.Send(1, 9, []float64{3})
			return nil
		}
		for want := 1.0; want <= 3; want++ {
			got := c.Recv(0, 9)
			if got[0] != want {
				return fmt.Errorf("got %v want %g", got, want)
			}
		}
		return nil
	})
}

func TestSendCopiesPayload(t *testing.T) {
	_, _ = run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{5}
			c.Send(1, 1, buf)
			buf[0] = 99 // must not affect the receiver
			return nil
		}
		if got := c.Recv(0, 1); got[0] != 5 {
			return fmt.Errorf("payload aliased: %v", got)
		}
		return nil
	})
}

func TestRecvAdvancesClockToArrival(t *testing.T) {
	_, _ = run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Compute(2e9) // ~1s of work before sending
			c.Send(1, 1, []float64{1})
			return nil
		}
		before := c.Clock()
		c.Recv(0, 1)
		if c.Clock() <= before || c.Clock() < 0.9 {
			return fmt.Errorf("receiver clock %g did not advance to arrival", c.Clock())
		}
		return nil
	})
}

func TestSendIntsRoundTrip(t *testing.T) {
	_, _ = run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendInts(1, 3, []int{10, -20, 30})
			return nil
		}
		got := c.RecvInts(0, 3)
		if len(got) != 3 || got[0] != 10 || got[1] != -20 || got[2] != 30 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
}

func TestComputeAdvancesClockAndMetersEnergy(t *testing.T) {
	plat := platform.Default()
	maxClock, meter := run(t, 1, func(c *Comm) error {
		c.Compute(int64(plat.FlopRate)) // exactly 1s at fmax
		return nil
	})
	if math.Abs(maxClock-1) > 1e-9 {
		t.Errorf("clock %g want 1", maxClock)
	}
	want := plat.PowerActive(plat.FreqMax)
	if got := meter.TotalEnergy(); math.Abs(got-want) > 1e-9 {
		t.Errorf("energy %g want %g", got, want)
	}
}

func TestSetFreqSlowsCompute(t *testing.T) {
	plat := platform.Default()
	maxClock, _ := run(t, 1, func(c *Comm) error {
		c.SetFreq(plat.FreqMin)
		if c.Freq() != plat.FreqMin {
			return fmt.Errorf("freq %g", c.Freq())
		}
		c.Compute(int64(plat.FlopRate))
		return nil
	})
	want := plat.FreqMax / plat.FreqMin // slowdown factor
	if maxClock < want*0.99 {
		t.Errorf("clock %g want >= %g", maxClock, want)
	}
}

func TestWaitIdlePowerAccounting(t *testing.T) {
	// Rank 1 waits for rank 0; with SetWaitIdle(true) the waiting time
	// must be charged at idle power.
	plat := platform.Default()
	meter := power.NewMeter(true)
	_, err := Run(2, plat, meter, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Compute(int64(plat.FlopRate)) // 1s
		} else {
			c.SetWaitIdle(true)
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := meter.TotalEnergy()
	// Expect ~1s active (rank 0) + ~1s idle (rank 1).
	want := plat.PowerActive(plat.FreqMax) + plat.PowerIdle(plat.FreqMax)
	if math.Abs(total-want) > 0.05*want {
		t.Errorf("energy %g want ~%g", total, want)
	}
}

func TestPhaseTagging(t *testing.T) {
	_, meter := run(t, 1, func(c *Comm) error {
		c.Compute(1e6)
		prev := c.SetPhase("reconstruct")
		if prev != "solve" {
			return fmt.Errorf("default phase %q", prev)
		}
		c.Compute(1e6)
		c.SetPhase(prev)
		return nil
	})
	by := meter.EnergyByPhase()
	if by["solve"] <= 0 || by["reconstruct"] <= 0 {
		t.Errorf("phase energies %v", by)
	}
}

func TestRankErrorPropagates(t *testing.T) {
	meter := power.NewMeter(false)
	sentinel := errors.New("boom")
	_, err := Run(4, platform.Default(), meter, func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		// Other ranks block on a collective; the abort must release them.
		c.Barrier()
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
}

func TestRankPanicBecomesError(t *testing.T) {
	meter := power.NewMeter(false)
	_, err := Run(3, platform.Default(), meter, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("kaboom")
		}
		c.Recv(0, 1) // blocked forever unless aborted
		return nil
	})
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
}

func TestCollectiveTimeChargedToClock(t *testing.T) {
	plat := platform.Default()
	maxClock, _ := run(t, 8, func(c *Comm) error {
		c.AllreduceScalarSum(1)
		return nil
	})
	if maxClock < plat.CollectiveTime(8, 8) {
		t.Errorf("clock %g below collective cost %g", maxClock, plat.CollectiveTime(8, 8))
	}
}

func TestManySequentialCollectives(t *testing.T) {
	// Generation bookkeeping must hold over many rounds.
	_, _ = run(t, 5, func(c *Comm) error {
		for i := 0; i < 200; i++ {
			got := c.AllreduceScalarSum(1)
			if got != 5 {
				return fmt.Errorf("round %d: %g", i, got)
			}
		}
		return nil
	})
}

func TestAllgatherVEmptyBlocks(t *testing.T) {
	_, _ = run(t, 3, func(c *Comm) error {
		var block []float64
		if c.Rank() == 1 {
			block = []float64{9}
		}
		all := c.AllgatherV(block)
		if len(all[0]) != 0 || len(all[2]) != 0 || len(all[1]) != 1 || all[1][0] != 9 {
			return fmt.Errorf("rank %d: %v", c.Rank(), all)
		}
		return nil
	})
}

func TestSendToInvalidRankPanics(t *testing.T) {
	meter := power.NewMeter(false)
	_, err := Run(2, platform.Default(), meter, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(5, 1, []float64{1})
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error from invalid destination")
	}
}

func TestSetFreqNoopWhenUnchanged(t *testing.T) {
	plat := platform.Default()
	maxClock, _ := run(t, 1, func(c *Comm) error {
		c.SetFreq(plat.FreqMax) // already there: must not charge latency
		return nil
	})
	if maxClock != 0 {
		t.Errorf("no-op SetFreq advanced clock to %g", maxClock)
	}
}

func TestSetFreqClampsToLadder(t *testing.T) {
	plat := platform.Default()
	_, _ = run(t, 1, func(c *Comm) error {
		c.SetFreq(1.234)
		if c.Freq() != plat.ClampFreq(1.234) {
			return fmt.Errorf("freq %g", c.Freq())
		}
		c.SetFreq(-5)
		if c.Freq() != plat.FreqMin {
			return fmt.Errorf("underflow freq %g", c.Freq())
		}
		return nil
	})
}

func TestElapseHelpers(t *testing.T) {
	plat := platform.Default()
	_, meter := run(t, 1, func(c *Comm) error {
		c.ElapseActive(1)
		c.ElapseIdle(1)
		return nil
	})
	want := plat.PowerActive(plat.FreqMax) + plat.PowerIdle(plat.FreqMax)
	if got := meter.TotalEnergy(); math.Abs(got-want) > 1e-9 {
		t.Errorf("energy %g want %g", got, want)
	}
}

func TestMixedCollectiveAndP2P(t *testing.T) {
	// Interleaving p2p traffic with collectives must not confuse either.
	_, _ = run(t, 4, func(c *Comm) error {
		next := (c.Rank() + 1) % 4
		prev := (c.Rank() + 3) % 4
		for i := 0; i < 20; i++ {
			c.Send(next, 7, []float64{float64(c.Rank()*100 + i)})
			got := c.Recv(prev, 7)
			if int(got[0]) != prev*100+i {
				return fmt.Errorf("iteration %d: got %v", i, got)
			}
			sum := c.AllreduceScalarSum(1)
			if sum != 4 {
				return fmt.Errorf("allreduce %g", sum)
			}
		}
		return nil
	})
}

func TestZeroRanksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRuntime(0, platform.Default(), power.NewMeter(false))
}

func TestReduce(t *testing.T) {
	_, _ = run(t, 5, func(c *Comm) error {
		got := c.Reduce(2, []float64{1, float64(c.Rank())})
		if c.Rank() != 2 {
			if got != nil {
				return fmt.Errorf("non-root received %v", got)
			}
			return nil
		}
		if got[0] != 5 || got[1] != 10 {
			return fmt.Errorf("root got %v", got)
		}
		return nil
	})
}

func TestGatherScatterRoundTrip(t *testing.T) {
	_, _ = run(t, 4, func(c *Comm) error {
		block := []float64{float64(c.Rank() * 10), float64(c.Rank()*10 + 1)}
		gathered := c.Gather(0, block)
		var back []float64
		if c.Rank() == 0 {
			if len(gathered) != 4 || gathered[3][1] != 31 {
				return fmt.Errorf("gather got %v", gathered)
			}
			back = c.Scatter(0, gathered)
		} else {
			if gathered != nil {
				return fmt.Errorf("non-root gather %v", gathered)
			}
			back = c.Scatter(0, nil)
		}
		if back[0] != block[0] || back[1] != block[1] {
			return fmt.Errorf("rank %d scatter got %v want %v", c.Rank(), back, block)
		}
		return nil
	})
}
