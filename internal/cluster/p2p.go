package cluster

import (
	"fmt"
	"sync"
)

// mailbox implements matched point-to-point messaging with per-channel
// FIFO ordering, the semantics block-row CG's halo exchange needs.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[mkey][]message
	dead   bool
}

type mkey struct{ from, to, tag int }

type message struct {
	data   []float64
	arrive float64 // virtual arrival time at the receiver
}

func newMailbox(*Runtime) *mailbox {
	mb := &mailbox{queues: make(map[mkey][]message)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) abort() {
	mb.mu.Lock()
	mb.dead = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// Send transmits a copy of data to rank `to` with the given tag. The
// sender's clock advances by the injection cost; the message carries its
// modeled arrival time.
func (c *Comm) Send(to, tag int, data []float64) {
	c.checkAbort()
	if to < 0 || to >= c.rt.p {
		panic(fmt.Sprintf("cluster: Send to invalid rank %d", to))
	}
	cost := c.rt.plat.P2PTime(int64(8 * len(data)))
	// The sender is occupied while injecting the message.
	c.ElapseActive(cost)
	cp := make([]float64, len(data))
	copy(cp, data)
	msg := message{data: cp, arrive: c.clock}

	mb := c.rt.mail
	mb.mu.Lock()
	k := mkey{from: c.rank, to: to, tag: tag}
	mb.queues[k] = append(mb.queues[k], msg)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// Recv blocks until a message from rank `from` with the given tag is
// available, advances the virtual clock to its arrival time (charged at
// wait power), and returns the payload.
func (c *Comm) Recv(from, tag int) []float64 {
	c.checkAbort()
	if from < 0 || from >= c.rt.p {
		panic(fmt.Sprintf("cluster: Recv from invalid rank %d", from))
	}
	mb := c.rt.mail
	k := mkey{from: from, to: c.rank, tag: tag}
	mb.mu.Lock()
	for len(mb.queues[k]) == 0 && !mb.dead {
		mb.cond.Wait()
	}
	if mb.dead {
		mb.mu.Unlock()
		panic(abortPanic{err: fmt.Errorf("cluster: recv on aborted runtime")})
	}
	q := mb.queues[k]
	msg := q[0]
	if len(q) == 1 {
		delete(mb.queues, k)
	} else {
		mb.queues[k] = q[1:]
	}
	mb.mu.Unlock()

	c.advanceTo(msg.arrive)
	return msg.data
}

// SendInts / RecvInts move integer payloads (setup-phase exchanges of
// column index lists).
func (c *Comm) SendInts(to, tag int, data []int) {
	f := make([]float64, len(data))
	for i, v := range data {
		f[i] = float64(v)
	}
	c.Send(to, tag, f)
}

// RecvInts receives an integer payload sent with SendInts.
func (c *Comm) RecvInts(from, tag int) []int {
	f := c.Recv(from, tag)
	out := make([]int, len(f))
	for i, v := range f {
		out[i] = int(v)
	}
	return out
}
