package cluster

import (
	"fmt"
	"sync"

	"resilience/internal/obs"
)

// mailbox implements matched point-to-point messaging with per-channel
// FIFO ordering, the semantics block-row CG's halo exchange needs.
// Payload buffers are pooled: Send copies into a pooled buffer and
// RecvInto returns it after copying out, so a steady-state halo exchange
// performs no allocations.
type mailbox struct {
	rt     *Runtime
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[mkey]*msgQueue
	pool   sync.Pool // of *payload
	dead   bool
}

type mkey struct{ from, to, tag int }

// msgQueue is one (from, to, tag) channel's FIFO. Queues are looked up
// once per post/dequeue and then mutated through the pointer, so the
// steady-state halo exchange pays one map access per message end, not
// one per touch.
type msgQueue struct {
	msgs []message
}

type message struct {
	pl     *payload
	arrive float64 // virtual arrival time at the receiver
}

// payload is a pooled message buffer. Pooling pointers to the struct
// (rather than slices) avoids boxing a fresh interface value on every
// Put.
type payload struct {
	data []float64
}

func newMailbox(rt *Runtime) *mailbox {
	mb := &mailbox{rt: rt, queues: make(map[mkey]*msgQueue)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// queue returns (creating if needed) the FIFO for k. Callers must hold
// the mailbox locked (goroutine mode) or the scheduling token (coop).
func (mb *mailbox) queue(k mkey) *msgQueue {
	q := mb.queues[k]
	if q == nil {
		q = &msgQueue{}
		mb.queues[k] = q
	}
	return q
}

// lock/unlock guard the mailbox in goroutine mode; no-ops under the
// cooperative scheduler, where exactly one rank runs at a time.
func (mb *mailbox) lock() {
	if mb.rt.sched == nil {
		mb.mu.Lock()
	}
}

func (mb *mailbox) unlock() {
	if mb.rt.sched == nil {
		mb.mu.Unlock()
	}
}

// wake publishes a newly queued message on k: broadcast in goroutine
// mode (every blocked receiver wakes, re-locks and re-checks its own
// queue), an exact wake of k's receiver — one bit test — in cooperative
// mode.
func (mb *mailbox) wake(k mkey) {
	if s := mb.rt.sched; s != nil {
		s.wakeMail(k)
		return
	}
	mb.cond.Broadcast()
}

// waitFor blocks the rank until a message may be queued on k: cond.Wait
// in goroutine mode, a scheduler park in cooperative mode. Either way
// the caller re-checks the queue on return.
func (mb *mailbox) waitFor(rank int, k mkey) {
	if s := mb.rt.sched; s != nil {
		s.parkMail(rank, k)
		return
	}
	mb.cond.Wait()
}

func (mb *mailbox) getPayload(n int) *payload {
	pl, _ := mb.pool.Get().(*payload)
	if pl == nil {
		pl = &payload{}
	}
	if cap(pl.data) < n {
		pl.data = make([]float64, n)
	}
	pl.data = pl.data[:n]
	return pl
}

func (mb *mailbox) putPayload(pl *payload) {
	mb.pool.Put(pl)
}

func (mb *mailbox) abort() {
	if s := mb.rt.sched; s != nil {
		mb.dead = true
		s.wakeAll()
		return
	}
	mb.mu.Lock()
	mb.dead = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// Send transmits a copy of data to rank `to` with the given tag. The
// sender's clock advances by the injection cost; the message carries its
// modeled arrival time.
//
// Aliasing contract: Send copies data into an internal buffer before
// returning, so the caller may immediately reuse or overwrite data. Code
// that reuses one staging buffer across consecutive Sends (as the fused
// halo exchange does) relies on this copy; TestSendCopiesPayload pins it.
func (c *Comm) Send(to, tag int, data []float64) {
	c.checkAbort()
	if to < 0 || to >= c.rt.p {
		panic(fmt.Sprintf("cluster: Send to invalid rank %d", to))
	}
	cost := c.rt.plat.P2PTime(int64(8 * len(data)))
	if c.obs != nil {
		c.obs.Span(obs.SpanSend, c.clock, cost)
		c.obs.AddSend(int64(8 * len(data)))
	}
	// The sender is occupied while injecting the message.
	c.ElapseActive(cost)
	if c.clock > c.nicFree {
		c.nicFree = c.clock
	}
	c.post(to, tag, data, c.clock)
}

// post copies data into a pooled payload and enqueues it with the given
// arrival time.
func (c *Comm) post(to, tag int, data []float64, arrive float64) {
	mb := c.rt.mail
	pl := mb.getPayload(len(data))
	copy(pl.data, data)
	msg := message{pl: pl, arrive: arrive}

	mb.lock()
	k := mkey{from: c.rank, to: to, tag: tag}
	q := mb.queue(k)
	q.msgs = append(q.msgs, msg)
	mb.unlock()
	mb.wake(k)
}

// SendReq is the completion handle returned by ISend.
type SendReq struct {
	arrive float64
}

// Wait completes the send. Under the model the payload is copied at post
// time, so the buffer is already reusable and Wait returns immediately
// without advancing the clock; it exists for API symmetry with RecvReq.
func (r *SendReq) Wait() {}

// Arrive returns the modeled time at which the message lands at the
// receiver.
func (r *SendReq) Arrive() float64 { return r.arrive }

// ISend posts a nonblocking send. Unlike Send it charges no CPU time:
// the NIC carries the injection, serializing with any earlier posted
// sends, so a burst of k ISends has its last message arrive k wire-times
// after the first injection starts. Overlapped spans therefore cost
// max(communication, concurrent compute) rather than their sum.
//
// Aliasing contract: like Send, ISend copies data before returning, so
// the buffer may be reused immediately. Callers should still prefer
// per-destination owned buffers (as the overlapped halo exchange does)
// so the code stays correct if a zero-copy transport is ever modeled.
func (c *Comm) ISend(to, tag int, data []float64) SendReq {
	c.checkAbort()
	if to < 0 || to >= c.rt.p {
		panic(fmt.Sprintf("cluster: ISend to invalid rank %d", to))
	}
	cost := c.rt.plat.P2PTime(int64(8 * len(data)))
	start := c.clock
	if c.nicFree > start {
		start = c.nicFree
	}
	arrive := start + cost
	c.nicFree = arrive
	// Counted but not spanned: the NIC, not the CPU, owns the injection
	// interval, so it has no extent on the rank's timeline.
	if c.obs != nil {
		c.obs.AddSend(int64(8 * len(data)))
	}
	c.post(to, tag, data, arrive)
	return SendReq{arrive: arrive}
}

// RecvReq is the completion handle returned by IRecvInto. Wait must be
// called exactly once; the destination buffer holds the payload only
// after Wait returns.
type RecvReq struct {
	c    *Comm
	from int
	tag  int
	dst  []float64
	done bool
}

// IRecvInto posts a nonblocking receive into dst. Posting costs no
// virtual time and does not block; the message is matched, the clock
// advanced to its arrival, and the payload copied when Wait is called.
func (c *Comm) IRecvInto(from, tag int, dst []float64) RecvReq {
	c.checkAbort()
	if from < 0 || from >= c.rt.p {
		panic(fmt.Sprintf("cluster: IRecvInto from invalid rank %d", from))
	}
	return RecvReq{c: c, from: from, tag: tag, dst: dst}
}

// Wait blocks until the posted receive's message is available, advances
// the virtual clock to its arrival time (charged at wait power), and
// copies the payload into the destination buffer.
func (r *RecvReq) Wait() {
	if r.done {
		panic("cluster: RecvReq.Wait called twice")
	}
	r.done = true
	c := r.c
	c.checkAbort()
	msg := c.dequeue(r.from, r.tag)
	c.advanceTo(msg.arrive, obs.SpanRecv)
	if c.obs != nil {
		c.obs.AddRecv(int64(8 * len(msg.pl.data)))
	}
	if len(msg.pl.data) != len(r.dst) {
		panic(fmt.Sprintf("cluster: IRecvInto got %d values for a %d-length buffer", len(msg.pl.data), len(r.dst)))
	}
	copy(r.dst, msg.pl.data)
	c.rt.mail.putPayload(msg.pl)
}

// dequeue pops the oldest message on (from→rank, tag), blocking until one
// arrives. The pop shifts the queue down in place instead of re-slicing
// from the front, keeping the backing array anchored so a sender running
// several exchanges ahead of its receiver never forces the queue to
// reallocate on append.
func (c *Comm) dequeue(from, tag int) message {
	if from < 0 || from >= c.rt.p {
		panic(fmt.Sprintf("cluster: Recv from invalid rank %d", from))
	}
	mb := c.rt.mail
	k := mkey{from: from, to: c.rank, tag: tag}
	mb.lock()
	mq := mb.queue(k)
	for len(mq.msgs) == 0 && !mb.dead {
		// Deadlock check: an exited sender can never post the message we
		// are waiting for. Abort with a diagnostic instead of hanging; the
		// abort sets mb.dead, so continue (not wait) past our own wake-up.
		if c.rt.isExited(from) {
			err := fmt.Errorf("cluster: deadlock: rank %d blocked receiving from rank %d (tag %d), which exited without sending", c.rank, from, tag)
			mb.unlock()
			c.rt.abort(err)
			mb.lock()
			continue
		}
		mb.waitFor(c.rank, k)
	}
	if mb.dead {
		mb.unlock()
		panic(abortPanic{err: fmt.Errorf("cluster: recv on aborted runtime")})
	}
	q := mq.msgs
	msg := q[0]
	n := copy(q, q[1:])
	q[n] = message{}
	mq.msgs = q[:n]
	mb.unlock()
	return msg
}

// Recv blocks until a message from rank `from` with the given tag is
// available, advances the virtual clock to its arrival time (charged at
// wait power), and returns the payload as a fresh slice.
func (c *Comm) Recv(from, tag int) []float64 {
	c.checkAbort()
	msg := c.dequeue(from, tag)
	c.advanceTo(msg.arrive, obs.SpanRecv)
	if c.obs != nil {
		c.obs.AddRecv(int64(8 * len(msg.pl.data)))
	}
	out := make([]float64, len(msg.pl.data))
	copy(out, msg.pl.data)
	c.rt.mail.putPayload(msg.pl)
	return out
}

// RecvInto is Recv without the allocation: the payload is copied into
// dst, which must match the message length exactly, and the internal
// buffer is recycled.
func (c *Comm) RecvInto(from, tag int, dst []float64) {
	c.checkAbort()
	msg := c.dequeue(from, tag)
	c.advanceTo(msg.arrive, obs.SpanRecv)
	if c.obs != nil {
		c.obs.AddRecv(int64(8 * len(msg.pl.data)))
	}
	if len(msg.pl.data) != len(dst) {
		panic(fmt.Sprintf("cluster: RecvInto got %d values for a %d-length buffer", len(msg.pl.data), len(dst)))
	}
	copy(dst, msg.pl.data)
	c.rt.mail.putPayload(msg.pl)
}

// SendInts / RecvInts move integer payloads (setup-phase exchanges of
// column index lists).
func (c *Comm) SendInts(to, tag int, data []int) {
	f := make([]float64, len(data))
	for i, v := range data {
		f[i] = float64(v)
	}
	c.Send(to, tag, f)
}

// RecvInts receives an integer payload sent with SendInts.
func (c *Comm) RecvInts(from, tag int) []int {
	f := c.Recv(from, tag)
	out := make([]int, len(f))
	for i, v := range f {
		out[i] = int(v)
	}
	return out
}
