package cluster

import (
	"math"
	"strings"
	"testing"
	"time"

	"resilience/internal/platform"
	"resilience/internal/power"
)

// runSched executes fn on p ranks under an explicit scheduler mode and
// returns the final virtual clock, the total metered energy and the
// per-rank result values fn stored.
func runSched(t *testing.T, mode SchedMode, p int, fn func(c *Comm, out []float64) error) (clock, energy float64, out []float64, err error) {
	t.Helper()
	meter := power.NewMeter(true)
	rt := NewRuntimeOpts(p, platform.Default(), meter, Options{Sched: mode})
	out = make([]float64, p)
	clock, err = rt.Run(func(c *Comm) error { return fn(c, out) })
	return clock, meter.TotalEnergy(), out, err
}

// mixedWorkload exercises every blocking primitive: compute, collectives
// on both the boxed and scalar paths, blocking and nonblocking p2p in a
// ring, bcast/gather, and a frequency change mid-run.
func mixedWorkload(c *Comm, out []float64) error {
	p := c.Size()
	rank := c.Rank()
	acc := 0.0

	c.Compute(int64(1e6 * (rank + 1)))
	acc += c.AllreduceScalarSum(float64(rank) + 0.25)
	a, b := c.AllreduceSum2(float64(rank)*1.5, 1.0/float64(rank+1))
	acc += a + b

	// Ring exchange: blocking send forward, receive from behind.
	next, prev := (rank+1)%p, (rank+p-1)%p
	c.Send(next, 7, []float64{float64(rank) * 3.5})
	got := c.Recv(prev, 7)
	acc += got[0]

	// Nonblocking halo-style exchange the other way.
	buf := []float64{acc}
	req := c.IRecvInto(next, 9, make([]float64, 1))
	sreq := c.ISend(prev, 9, buf)
	sreq.Wait()
	c.Compute(500_000)
	req.Wait()
	acc += req.dst[0]

	v := c.AllreduceSum([]float64{acc, float64(rank)})
	acc = v[0] + v[1]
	acc += c.Bcast(2%p, []float64{acc})[0]
	if g := c.Gather(0, []float64{acc}); g != nil {
		for _, blk := range g {
			acc += blk[0]
		}
	}
	c.SetFreq(c.Freq() * 0.8)
	c.Compute(2_000_000)
	c.Barrier()
	out[rank] = acc
	return nil
}

// TestCoopMatchesGoroutine pins the cooperative scheduler bitwise against
// the goroutine oracle over a workload touching every primitive: final
// virtual clocks, metered energy and all computed values must be
// byte-identical, for several rank counts.
func TestCoopMatchesGoroutine(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8, 13} {
		gc, ge, gout, gerr := runSched(t, SchedGoroutine, p, mixedWorkload)
		cc, ce, cout, cerr := runSched(t, SchedCoop, p, mixedWorkload)
		if gerr != nil || cerr != nil {
			t.Fatalf("p=%d: errors goroutine=%v coop=%v", p, gerr, cerr)
		}
		if math.Float64bits(gc) != math.Float64bits(cc) {
			t.Fatalf("p=%d: clocks differ: goroutine=%v coop=%v", p, gc, cc)
		}
		if math.Float64bits(ge) != math.Float64bits(ce) {
			t.Fatalf("p=%d: energy differs: goroutine=%v coop=%v", p, ge, ce)
		}
		for r := range gout {
			if math.Float64bits(gout[r]) != math.Float64bits(cout[r]) {
				t.Fatalf("p=%d rank %d: values differ: goroutine=%v coop=%v", p, r, gout[r], cout[r])
			}
		}
	}
}

// runCoopWatchdog is runWithWatchdog pinned to the cooperative mode,
// regardless of RES_SCHED.
func runCoopWatchdog(t *testing.T, p int, fn func(c *Comm) error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		rt := NewRuntimeOpts(p, platform.Default(), power.NewMeter(false), Options{Sched: SchedCoop})
		_, err := rt.Run(fn)
		done <- err
	}()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("run hung: cooperative scheduler did not detect the stall within 30s")
		return nil
	}
}

// TestCoopDeadlockDiagnostics re-runs the named-rank deadlock scenarios
// under the cooperative scheduler explicitly (the shared suite covers
// them via RES_SCHED): the stall protocol must force-wake parked ranks so
// they produce the same diagnostics as the goroutine runtime.
func TestCoopDeadlockDiagnostics(t *testing.T) {
	err := runCoopWatchdog(t, 4, func(c *Comm) error {
		if c.Rank() == 0 {
			return nil
		}
		c.Barrier()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("mismatched collective: want deadlock diagnostic, got: %v", err)
	}

	err = runCoopWatchdog(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return nil
		}
		c.RecvInto(0, 3, make([]float64, 1))
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") ||
		!strings.Contains(err.Error(), "rank 1") || !strings.Contains(err.Error(), "rank 0") {
		t.Fatalf("recv from exited: want named-rank deadlock diagnostic, got: %v", err)
	}
}

// TestCoopDetectsReceiveCycle: two live ranks each blocked receiving from
// the other — neither ever exits, so the exited-rank probes stay silent
// and only the scheduler-level stall detection can fire. The goroutine
// runtime would hang forever on this program; the cooperative scheduler
// must abort it with a deadlock diagnostic.
func TestCoopDetectsReceiveCycle(t *testing.T) {
	err := runCoopWatchdog(t, 2, func(c *Comm) error {
		other := 1 - c.Rank()
		c.RecvInto(other, 5, make([]float64, 1)) // both block: nobody sent
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("receive cycle: want deadlock diagnostic, got: %v", err)
	}
}

// TestSchedResolution pins the Options/RES_SCHED precedence: an explicit
// Options.Sched wins, SchedAuto resolves the environment, and an unset or
// unrecognized environment falls back to the goroutine oracle.
func TestSchedResolution(t *testing.T) {
	plat, meter := platform.Default(), power.NewMeter(false)
	t.Setenv("RES_SCHED", "")
	if got := NewRuntime(1, plat, meter).Sched(); got != SchedGoroutine {
		t.Fatalf("default mode: got %v, want goroutine", got)
	}
	t.Setenv("RES_SCHED", "coop")
	if got := NewRuntime(1, plat, meter).Sched(); got != SchedCoop {
		t.Fatalf("RES_SCHED=coop: got %v, want coop", got)
	}
	if got := NewRuntimeOpts(1, plat, meter, Options{Sched: SchedGoroutine}).Sched(); got != SchedGoroutine {
		t.Fatalf("explicit goroutine under RES_SCHED=coop: got %v, want goroutine", got)
	}
	t.Setenv("RES_SCHED", "warp-drive")
	if got := NewRuntime(1, plat, meter).Sched(); got != SchedGoroutine {
		t.Fatalf("unrecognized RES_SCHED: got %v, want goroutine fallback", got)
	}
	if SchedCoop.String() != "coop" || SchedGoroutine.String() != "goroutine" || SchedAuto.String() != "auto" {
		t.Fatalf("SchedMode.String broken: %v %v %v", SchedCoop, SchedGoroutine, SchedAuto)
	}
}
