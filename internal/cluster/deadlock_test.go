package cluster

import (
	"strings"
	"testing"
	"time"

	"resilience/internal/platform"
	"resilience/internal/power"
)

// runWithWatchdog runs fn on p ranks and fails the test if the run does
// not complete within the deadline — the whole point of the deadlock
// detector is that a broken program terminates with a diagnostic instead
// of hanging the suite.
func runWithWatchdog(t *testing.T, p int, fn func(c *Comm) error) error {
	t.Helper()
	type result struct{ err error }
	done := make(chan result, 1)
	go func() {
		_, err := Run(p, platform.Default(), power.NewMeter(false), fn)
		done <- result{err: err}
	}()
	select {
	case r := <-done:
		return r.err
	case <-time.After(30 * time.Second):
		t.Fatal("run hung: deadlock detector did not fire within 30s")
		return nil
	}
}

func TestDeadlockMismatchedCollective(t *testing.T) {
	// Rank 0 skips the barrier and exits cleanly; the other ranks block in
	// a collective that can never complete. The detector must abort the
	// run with a participation diagnostic.
	err := runWithWatchdog(t, 4, func(c *Comm) error {
		if c.Rank() == 0 {
			return nil
		}
		c.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("mismatched collective participation returned nil error")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock diagnostic, got: %v", err)
	}
}

func TestDeadlockMismatchedScalarCollective(t *testing.T) {
	// Same as above through the allocation-free scalar fast path.
	err := runWithWatchdog(t, 4, func(c *Comm) error {
		if c.Rank() == 2 {
			return nil
		}
		c.AllreduceScalarSum(1.0)
		return nil
	})
	if err == nil {
		t.Fatal("mismatched scalar collective returned nil error")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock diagnostic, got: %v", err)
	}
}

func TestDeadlockRecvFromExitedRank(t *testing.T) {
	// Rank 1 waits for a message rank 0 never sends; rank 0 exits. The
	// receive must fail with a diagnostic naming both ends.
	err := runWithWatchdog(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			c.Recv(0, 7)
		}
		return nil
	})
	if err == nil {
		t.Fatal("recv from exited rank returned nil error")
	}
	for _, want := range []string{"deadlock", "rank 1", "rank 0"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("diagnostic missing %q: %v", want, err)
		}
	}
}

func TestDeadlockPostedRecvFromExitedRank(t *testing.T) {
	// Same through the nonblocking IRecvInto/Wait path.
	err := runWithWatchdog(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			buf := make([]float64, 3)
			req := c.IRecvInto(0, 9, buf)
			req.Wait()
		}
		return nil
	})
	if err == nil {
		t.Fatal("posted recv from exited rank returned nil error")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock diagnostic, got: %v", err)
	}
}

func TestDeadlockRankFaultsMidCollective(t *testing.T) {
	// A rank that dies (panics) while the others sit in a collective must
	// abort the whole run promptly — this is the "rank faulting
	// mid-collective" scenario a fault campaign produces when an injected
	// process fault escapes its recovery scheme.
	err := runWithWatchdog(t, 4, func(c *Comm) error {
		if c.Rank() == 3 {
			panic("injected process fault")
		}
		c.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("rank fault mid-collective returned nil error")
	}
	if !strings.Contains(err.Error(), "injected process fault") {
		t.Fatalf("abort should carry the faulting rank's panic, got: %v", err)
	}
}

func TestDeadlockDetectorNoFalsePositive(t *testing.T) {
	// A healthy bulk-synchronous program where ranks finish at staggered
	// times must not trip the detector: ranks that exit after the final
	// collective are not "missing" from any in-flight generation.
	err := runWithWatchdog(t, 8, func(c *Comm) error {
		for i := 0; i < 50; i++ {
			c.AllreduceScalarSum(float64(c.Rank() + i))
			if c.Rank()%2 == 0 {
				c.Compute(int64(1000 * (c.Rank() + 1)))
			}
		}
		// Staggered p2p drain, then exit at different virtual times.
		if c.Rank() > 0 {
			c.Send(0, 1, []float64{float64(c.Rank())})
		} else {
			for r := 1; r < 8; r++ {
				c.Recv(r, 1)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("healthy program tripped the deadlock detector: %v", err)
	}
}
