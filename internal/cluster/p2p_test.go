package cluster

import (
	"fmt"
	"math"
	"testing"

	"resilience/internal/platform"
)

// TestSendBufferReuseAcrossSends pins the aliasing contract on Send: the
// payload is copied before Send returns, so a caller may overwrite its
// staging buffer between consecutive sends. The fused halo exchange
// reuses one buffer across neighbors and silently depends on this.
func TestSendBufferReuseAcrossSends(t *testing.T) {
	_, _ = run(t, 2, func(c *Comm) error {
		const tag = 7
		if c.Rank() == 0 {
			buf := []float64{1, 2, 3}
			c.Send(1, tag, buf)
			// Clobber the staging buffer and send again, as GatherHalo does.
			buf[0], buf[1], buf[2] = 4, 5, 6
			c.Send(1, tag, buf)
			return nil
		}
		first := c.Recv(0, tag)
		second := c.Recv(0, tag)
		if first[0] != 1 || first[1] != 2 || first[2] != 3 {
			return fmt.Errorf("first message clobbered by buffer reuse: %v", first)
		}
		if second[0] != 4 || second[1] != 5 || second[2] != 6 {
			return fmt.Errorf("second message wrong: %v", second)
		}
		return nil
	})
}

// TestISendCopiesPayload pins the same contract on the nonblocking send.
func TestISendCopiesPayload(t *testing.T) {
	_, _ = run(t, 2, func(c *Comm) error {
		const tag = 8
		if c.Rank() == 0 {
			buf := []float64{1, 2}
			c.ISend(1, tag, buf)
			buf[0], buf[1] = 9, 9
			c.ISend(1, tag, buf)
			return nil
		}
		dst := make([]float64, 2)
		req := c.IRecvInto(0, tag, dst)
		req.Wait()
		if dst[0] != 1 || dst[1] != 2 {
			return fmt.Errorf("first ISend payload clobbered: %v", dst)
		}
		c.RecvInto(0, tag, dst)
		if dst[0] != 9 || dst[1] != 9 {
			return fmt.Errorf("second ISend payload wrong: %v", dst)
		}
		return nil
	})
}

// TestISendChargesNoCPUTime verifies the overlap clock model: posting a
// nonblocking send leaves the sender's clock untouched, while a blocking
// Send advances it by the full injection cost.
func TestISendChargesNoCPUTime(t *testing.T) {
	_, _ = run(t, 2, func(c *Comm) error {
		const tag = 9
		if c.Rank() == 0 {
			data := make([]float64, 64)
			before := c.Clock()
			req := c.ISend(1, tag, data)
			if c.Clock() != before {
				return fmt.Errorf("ISend advanced sender clock %g -> %g", before, c.Clock())
			}
			if req.Arrive() <= before {
				return fmt.Errorf("ISend arrival %g not after post time %g", req.Arrive(), before)
			}
			c.Send(1, tag, data)
			if c.Clock() <= before {
				return fmt.Errorf("Send did not advance sender clock")
			}
			return nil
		}
		dst := make([]float64, 64)
		c.RecvInto(0, tag, dst)
		c.RecvInto(0, tag, dst)
		return nil
	})
}

// TestISendNICSerialization verifies that a burst of ISends injects
// serially on the NIC: message k arrives k wire-times after the first
// injection starts, so overlapping cannot conjure infinite bandwidth.
func TestISendNICSerialization(t *testing.T) {
	_, _ = run(t, 2, func(c *Comm) error {
		const tag, k, n = 10, 4, 128
		cost := platform.Default().P2PTime(8 * n)
		if c.Rank() == 0 {
			data := make([]float64, n)
			t0 := c.Clock()
			for i := 0; i < k; i++ {
				req := c.ISend(1, tag, data)
				want := t0 + float64(i+1)*cost
				if math.Abs(req.Arrive()-want) > 1e-15 {
					return fmt.Errorf("ISend %d arrives at %g, want %g", i, req.Arrive(), want)
				}
			}
			return nil
		}
		dst := make([]float64, n)
		for i := 0; i < k; i++ {
			c.RecvInto(0, tag, dst)
		}
		return nil
	})
}

// TestOverlapChargesMaxCommCompute pins the LogGP-style accounting the
// overlapped SpMV relies on: a posted receive completed after local
// compute costs max(comm, compute) for the span, not their sum.
func TestOverlapChargesMaxCommCompute(t *testing.T) {
	_, _ = run(t, 2, func(c *Comm) error {
		const tag, n = 11, 512
		plat := platform.Default()
		wire := plat.P2PTime(8 * n)
		if c.Rank() == 0 {
			// Both messages are posted at clock 0 (ISend charges no CPU
			// time); NIC serialization lands them at wire and 2*wire.
			c.ISend(1, tag, make([]float64, n))
			c.ISend(1, tag, make([]float64, n))
			return nil
		}
		dst := make([]float64, n)

		// Case 1: compute shorter than the wire time -> the span costs the
		// full communication time.
		req := c.IRecvInto(0, tag, dst)
		t0 := c.Clock()
		c.Compute(1)
		req.Wait()
		if span := c.Clock() - t0; math.Abs(span-wire) > 1e-12 {
			return fmt.Errorf("short-compute span %g, want wire time %g", span, wire)
		}

		// Case 2: compute longer than the remaining flight time -> the
		// communication is fully hidden and the span costs only the compute.
		req = c.IRecvInto(0, tag, dst)
		const bigFlops = int64(1_000_000)
		work := plat.ComputeTime(bigFlops, c.Freq())
		if work <= 2*wire {
			return fmt.Errorf("test setup: compute %g does not dominate flight %g", work, 2*wire)
		}
		t1 := c.Clock()
		c.Compute(bigFlops)
		req.Wait()
		if span := c.Clock() - t1; math.Abs(span-work) > 1e-12 {
			return fmt.Errorf("long-compute span %g, want compute time %g (comm hidden)", span, work)
		}
		return nil
	})
}
