package cluster

import (
	"fmt"

	"resilience/internal/obs"
)

// Comm is a rank's handle on the parallel run: its identity, virtual
// clock, frequency, power-accounting mode, and communication operations.
// A Comm is used only by its own rank goroutine and is not safe for
// sharing across goroutines.
type Comm struct {
	rank int
	rt   *Runtime

	clock    float64
	freq     float64
	phase    string
	waitIdle bool // whether waiting time is charged at idle power

	// nicFree is the virtual time at which the rank's network interface
	// finishes injecting its last posted message. Nonblocking sends cost
	// no CPU time but serialize on the NIC: a burst of ISends completes
	// one wire-time apart, never all at once.
	nicFree float64

	// obs is this rank's observability surface, nil unless a recorder was
	// attached to the runtime. Recording reads the clock but never
	// advances it, and a nil surface costs one pointer check on the hot
	// path.
	obs *obs.Rank
}

func newComm(rank int, rt *Runtime) *Comm {
	c := &Comm{
		rank:  rank,
		rt:    rt,
		freq:  rt.plat.FreqMax,
		phase: "solve",
	}
	if rt.rec != nil {
		c.obs = rt.rec.Rank(rank)
	}
	return c
}

// Observer returns this rank's observability surface, or nil when no
// recorder is attached. Callers recording composite spans (halo, SpMV
// halves, recovery phases) bracket their work with Clock reads:
//
//	if o := c.Observer(); o != nil {
//		start := c.Clock()
//		defer func() { o.Span(obs.SpanHalo, start, c.Clock()-start) }()
//	}
func (c *Comm) Observer() *obs.Rank { return c.obs }

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.rt.p }

// Clock returns the rank's current virtual time in seconds.
func (c *Comm) Clock() float64 { return c.clock }

// Freq returns the rank's current core frequency in GHz.
func (c *Comm) Freq() float64 { return c.freq }

// Phase returns the current accounting phase label.
func (c *Comm) Phase() string { return c.phase }

// SetPhase switches the accounting phase label for subsequent activity
// and returns the previous label.
func (c *Comm) SetPhase(phase string) string {
	prev := c.phase
	c.phase = phase
	return prev
}

// SetFreq transitions the core to the given frequency (snapped to the
// platform ladder), charging the DVFS transition latency. It models a
// write to the CPUfreq userspace governor.
func (c *Comm) SetFreq(f float64) {
	f = c.rt.plat.ClampFreq(f)
	if f == c.freq {
		return
	}
	// The transition itself is brief; charge it at the lower of the two
	// powers to avoid rewarding rapid toggling.
	c.record(c.rt.plat.DVFSLatency, minf(c.rt.plat.PowerIdle(c.freq), c.rt.plat.PowerIdle(f)))
	c.freq = f
}

// SetWaitIdle selects how waiting time (blocked receives, collective
// arrival gaps) is charged: true means idle/sleep power, false (default)
// means busy-wait at active power. Returns the previous setting.
func (c *Comm) SetWaitIdle(idle bool) bool {
	prev := c.waitIdle
	c.waitIdle = idle
	return prev
}

// Compute advances the clock by the cost of the given flops at the
// current frequency, charged at active power.
func (c *Comm) Compute(flops int64) {
	if flops <= 0 {
		return
	}
	dur := c.rt.plat.ComputeTime(flops, c.freq)
	if c.obs != nil {
		c.obs.Span(obs.SpanCompute, c.clock, dur)
		c.obs.AddFlops(flops)
	}
	c.record(dur, c.rt.plat.PowerActive(c.freq))
}

// ElapseActive advances the clock by dur seconds at active power. It is
// used for modeled work that is not flop-shaped (e.g. memory copies).
func (c *Comm) ElapseActive(dur float64) {
	c.record(dur, c.rt.plat.PowerActive(c.freq))
}

// ElapseIdle advances the clock by dur seconds at idle power (e.g.
// blocking on a disk write).
func (c *Comm) ElapseIdle(dur float64) {
	c.record(dur, c.rt.plat.PowerIdle(c.freq))
}

// record advances the clock by dur and meters the energy.
func (c *Comm) record(dur, watts float64) {
	if dur == 0 {
		return
	}
	if dur < 0 {
		panic(fmt.Sprintf("cluster: rank %d negative duration %g", c.rank, dur))
	}
	c.rt.meter.Record(c.rank, c.phase, c.clock, dur, watts)
	c.clock += dur
}

// advanceTo waits (in virtual time) until t, charging wait power. kind
// classifies the wait for the observability layer (a blocked receive vs a
// collective arrival gap).
func (c *Comm) advanceTo(t float64, kind obs.SpanKind) {
	if t <= c.clock {
		return
	}
	if c.obs != nil {
		c.obs.Span(kind, c.clock, t-c.clock)
	}
	watts := c.rt.plat.PowerActive(c.freq)
	if c.waitIdle {
		watts = c.rt.plat.PowerIdle(c.freq)
	}
	c.record(t-c.clock, watts)
}

// checkAbort panics with the abort sentinel if the run has been aborted.
func (c *Comm) checkAbort() {
	if err := c.rt.aborted(); err != nil {
		panic(abortPanic{err: fmt.Errorf("cluster: rank %d aborted: %w", c.rank, err)})
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
