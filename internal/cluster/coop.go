package cluster

import (
	"fmt"
	"math/bits"
)

// coopSched steps all P ranks of one runtime as run-to-block coroutines.
// Exactly one rank goroutine is ever runnable: ownership of the single
// scheduling token is handed from rank to rank through per-rank
// capacity-1 channels, so the channel operations provide the
// happens-before edges that make the shared collective/mailbox state
// race-free without any mutex. A rank executes until it must block — a
// receive with an empty queue, a collective it is not the last arriver
// of — then parks and hands the token to the next runnable rank in
// cyclic rank order.
//
// Readiness is event-driven, not polled: posting a message marks exactly
// the rank parked on that queue runnable, and completing a collective
// generation marks exactly its parked waiters runnable. The
// cond.Broadcast storms of the goroutine mode — every post wakes every
// blocked receiver, which re-locks and re-checks its queue — have no
// cooperative equivalent, and runnability is a bitmask scan, O(1) per
// 64 ranks.
//
// Determinism: results never depend on the resume order in the first
// place — reductions combine in rank order and all costs are virtual
// time — so the cooperative mode is byte-identical to the goroutine
// oracle by construction. What the fixed rank-order scan adds is a
// *reproducible wall-clock execution order*, which makes
// scheduler-level failures (stalls, deadlocks) deterministic too.
type coopSched struct {
	rt *Runtime
	p  int

	// resume[r] carries the scheduling token to rank r. Capacity 1 and a
	// single token in existence mean sends never block.
	resume []chan struct{}

	// runnable marks ranks that may be handed the token; parked marks
	// ranks blocked inside a primitive (the force-wake and abort sets);
	// collWait marks the subset parked on the in-flight collective
	// generation. waitKey[r] is the queue a mail-parked rank needs.
	runnable rankMask
	parked   rankMask
	collWait rankMask
	waitKey  []mkey

	nLive int
	done  chan struct{}

	// progress counts scheduler-visible events (messages posted,
	// collective generations completed, rank exits). The stall protocol
	// compares it across no-runnable-rank episodes: the first stall
	// force-wakes every parked rank so each runs its own deadlock
	// diagnostics; a second stall with no progress in between means
	// nothing can ever run again and the run is aborted.
	progress      uint64
	stallProgress uint64
}

// rankMask is a bitset over ranks.
type rankMask []uint64

func newRankMask(p int) rankMask { return make(rankMask, (p+63)/64) }

func (m rankMask) set(r int)      { m[r>>6] |= 1 << (uint(r) & 63) }
func (m rankMask) clear(r int)    { m[r>>6] &^= 1 << (uint(r) & 63) }
func (m rankMask) has(r int) bool { return m[r>>6]&(1<<(uint(r)&63)) != 0 }

// or folds src into m and zeroes src.
func (m rankMask) or(src rankMask) {
	for i, w := range src {
		m[i] |= w
		src[i] = 0
	}
}

func (m rankMask) reset() {
	for i := range m {
		m[i] = 0
	}
}

// next returns the first set bit at or after start, or -1.
func (m rankMask) next(start int) int {
	if start < 0 {
		start = 0
	}
	w := start >> 6
	if w >= len(m) {
		return -1
	}
	word := m[w] &^ (1<<(uint(start)&63) - 1)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w >= len(m) {
			return -1
		}
		word = m[w]
	}
}

func newCoopSched(rt *Runtime) *coopSched {
	s := &coopSched{
		rt:       rt,
		p:        rt.p,
		resume:   make([]chan struct{}, rt.p),
		runnable: newRankMask(rt.p),
		parked:   newRankMask(rt.p),
		collWait: newRankMask(rt.p),
		waitKey:  make([]mkey, rt.p),
	}
	for r := range s.resume {
		s.resume[r] = make(chan struct{}, 1)
	}
	return s
}

// run executes body(rank) for every rank to completion, one rank at a
// time. Rank 0 is stepped first; thereafter the token follows the
// rank-order scan in transfer.
func (s *coopSched) run(body func(rank int)) {
	s.nLive = s.p
	s.done = make(chan struct{})
	s.progress = 0
	s.stallProgress = ^uint64(0) // first stall always force-wakes
	s.parked.reset()
	s.collWait.reset()
	for r := 0; r < s.p; r++ {
		s.runnable.set(r)
	}
	for r := 0; r < s.p; r++ {
		go func(rank int) {
			<-s.resume[rank]
			body(rank)
			s.exit(rank)
		}(r)
	}
	s.runnable.clear(0)
	s.resume[0] <- struct{}{}
	<-s.done
}

// noteProgress records a scheduler-visible state change. Called only by
// the rank holding the token (or by run before the first handoff), so a
// plain increment is race-free.
func (s *coopSched) noteProgress() { s.progress++ }

// wakeMail marks the rank parked on queue k (if any) runnable. Only the
// queue's receiver can be parked on it, so this is one bit test.
func (s *coopSched) wakeMail(k mkey) {
	s.progress++
	if s.parked.has(k.to) && s.waitKey[k.to] == k {
		s.runnable.set(k.to)
	}
}

// wakeColl marks every rank parked on the just-completed collective
// generation runnable. All of them were waiting on exactly that
// generation (no rank can enter generation g+1 before every rank has
// finished g), so no wake is spurious.
func (s *coopSched) wakeColl() {
	s.progress++
	s.runnable.or(s.collWait)
}

// wakeAll marks every parked rank runnable: the abort path (all wait
// loops re-check the dead flag) and the stall protocol's forced
// diagnostic round.
func (s *coopSched) wakeAll() {
	s.progress++
	for i, w := range s.parked {
		s.runnable[i] |= w
	}
}

// transfer hands the token to the next runnable rank after `from` in
// cyclic rank order. Reports false when no rank is runnable.
func (s *coopSched) transfer(from int) bool {
	r := s.runnable.next(from + 1)
	if r < 0 {
		r = s.runnable.next(0)
	}
	if r < 0 {
		return false
	}
	s.runnable.clear(r)
	s.parked.clear(r)
	s.collWait.clear(r)
	s.resume[r] <- struct{}{}
	return true
}

// handoff releases the token on behalf of a rank that just parked or
// exited. If no rank is runnable the stall protocol runs: a force-wake
// round lets every parked rank execute its own deadlock checks (exited
// senders, mismatched collectives) and produce the same diagnostics as
// the goroutine runtime; if a full forced round yields no progress the
// scheduler aborts the run itself.
func (s *coopSched) handoff(from int) {
	if s.transfer(from) {
		return
	}
	if s.progress != s.stallProgress {
		stamp := s.progress
		s.wakeAll() // increments progress; remember the pre-wake stamp
		s.stallProgress = stamp + 1
		if s.transfer(from) {
			return
		}
	}
	// A forced round changed nothing: nothing can ever run again.
	s.rt.abort(fmt.Errorf("cluster: deadlock: all %d live ranks blocked with no runnable peer", s.nLive))
	if s.transfer(from) {
		return
	}
	panic("cluster: cooperative scheduler stalled after abort")
}

// parkColl parks the calling rank until the collective generation it
// contributed to completes (or the runtime dies), running other ranks
// meanwhile.
func (s *coopSched) parkColl(rank int) {
	s.parked.set(rank)
	s.collWait.set(rank)
	s.handoff(rank)
	<-s.resume[rank]
}

// parkMail parks the calling rank until a message is queued on key (or
// the runtime dies), running other ranks meanwhile.
func (s *coopSched) parkMail(rank int, key mkey) {
	s.waitKey[rank] = key
	s.parked.set(rank)
	s.handoff(rank)
	<-s.resume[rank]
}

// exit retires a finished rank and passes the token on (or completes the
// run when it was the last one).
func (s *coopSched) exit(rank int) {
	s.nLive--
	if s.nLive == 0 {
		close(s.done)
		return
	}
	s.handoff(rank)
}
