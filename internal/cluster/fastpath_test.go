package cluster

import (
	"fmt"
	"math"
	"testing"

	"resilience/internal/platform"
	"resilience/internal/power"
)

// TestScalarFastPathMatchesVector checks that the allocation-free scalar
// collectives return the same values and charge the same virtual time as
// the boxed AllreduceSum they replace, including when scalar and vector
// generations interleave.
func TestScalarFastPathMatchesVector(t *testing.T) {
	const p = 5
	vals := []float64{1e-16, -3.25, 7.5, 1e16, -1e16}
	clockScalar := make([]float64, p)
	clockVector := make([]float64, p)

	_, _ = run(t, p, func(c *Comm) error {
		c.Compute(int64(500 * (c.Rank() + 1)))
		sv := c.AllreduceScalarSum(vals[c.Rank()])
		a, b := c.AllreduceSum2(vals[c.Rank()], float64(c.Rank()))
		clockScalar[c.Rank()] = c.Clock()

		// Interleave a vector collective between scalar generations.
		vv := c.AllreduceSum([]float64{vals[c.Rank()]})
		if sv != vv[0] || a != vv[0] {
			return fmt.Errorf("rank %d: scalar %v/%v != vector %v", c.Rank(), sv, a, vv[0])
		}
		if want := float64(p*(p-1)) / 2; b != want {
			return fmt.Errorf("rank %d: pair second sum %v, want %v", c.Rank(), b, want)
		}
		s2 := c.AllreduceScalarSum(1)
		if s2 != p {
			return fmt.Errorf("rank %d: post-interleave scalar sum %v, want %d", c.Rank(), s2, p)
		}
		return nil
	})

	// The scalar path must charge the identical collective cost as the
	// equivalent vector calls.
	_, _ = run(t, p, func(c *Comm) error {
		c.Compute(int64(500 * (c.Rank() + 1)))
		_ = c.AllreduceSum([]float64{vals[c.Rank()]})
		_ = c.AllreduceSum([]float64{vals[c.Rank()], float64(c.Rank())})
		clockVector[c.Rank()] = c.Clock()
		return nil
	})
	for r := 0; r < p; r++ {
		if math.Float64bits(clockScalar[r]) != math.Float64bits(clockVector[r]) {
			t.Fatalf("rank %d: scalar-path clock %v != vector-path clock %v", r, clockScalar[r], clockVector[r])
		}
	}
}

// TestRecvInto checks the pooled receive path: payload contents, arrival
// clock, and buffer reuse across repeated exchanges.
func TestRecvInto(t *testing.T) {
	const rounds = 10
	_, _ = run(t, 2, func(c *Comm) error {
		buf := make([]float64, 3)
		for i := 0; i < rounds; i++ {
			if c.Rank() == 0 {
				c.Send(1, 5, []float64{float64(i), float64(2 * i), -1})
			} else {
				before := c.Clock()
				c.RecvInto(0, 5, buf)
				if c.Clock() < before {
					return fmt.Errorf("clock moved backwards on recv")
				}
				if buf[0] != float64(i) || buf[1] != float64(2*i) || buf[2] != -1 {
					return fmt.Errorf("round %d: got %v", i, buf)
				}
			}
		}
		return nil
	})
}

// TestRecvIntoLengthMismatch ensures a wrong-size destination panics with
// a diagnostic rather than silently truncating.
func TestRecvIntoLengthMismatch(t *testing.T) {
	_, err := Run(2, platform.Default(), power.NewMeter(true), func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1, 2, 3})
		} else {
			dst := make([]float64, 2)
			c.RecvInto(0, 1, dst)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error from mismatched RecvInto length")
	}
}
