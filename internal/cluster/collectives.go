package cluster

import (
	"fmt"
	"sync"

	"resilience/internal/obs"
)

// collectiveState implements generation-counted collectives. A bulk-
// synchronous program has every rank call the same sequence of
// collectives, so generations align across ranks by construction.
type collectiveState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	rt      *Runtime
	p       int
	gen     int64
	count   int
	clocks  []float64
	contrib []any
	results map[int64]*collResult
	dead    bool

	// arrived marks the ranks that have contributed to the in-flight
	// generation; it feeds the deadlock check (a rank that exited without
	// arriving can never arrive, so the collective can never complete).
	arrived []bool

	// Scalar fast path: the CG dot products reduce one or two float64s
	// per collective, so they bypass the boxed `any` machinery entirely.
	// scontrib holds up to two values per rank; sres double-buffers the
	// combined results. Two slots suffice: before any rank can enter
	// generation g+2, every rank must have finished generation g+1, which
	// in turn requires having read generation g's result.
	scontrib []float64
	sres     [2]scalarResult
}

type collResult struct {
	value     any
	tmax      float64
	remaining int
}

type scalarResult struct {
	gen    int64
	v0, v1 float64
	tmax   float64
}

func newCollectiveState(p int, rt *Runtime) *collectiveState {
	cs := &collectiveState{
		rt:       rt,
		p:        p,
		clocks:   make([]float64, p),
		contrib:  make([]any, p),
		results:  make(map[int64]*collResult),
		scontrib: make([]float64, 2*p),
		arrived:  make([]bool, p),
	}
	cs.sres[1].gen = -1 // slot 1 is first written at generation 1
	cs.cond = sync.NewCond(&cs.mu)
	return cs
}

// lock/unlock guard the collective state in goroutine mode; under the
// cooperative scheduler exactly one rank runs at a time, so they are
// no-ops there (token handoff supplies the happens-before edges).
func (cs *collectiveState) lock() {
	if cs.rt.sched == nil {
		cs.mu.Lock()
	}
}

func (cs *collectiveState) unlock() {
	if cs.rt.sched == nil {
		cs.mu.Unlock()
	}
}

// wake publishes a completed generation: broadcast in goroutine mode
// (every waiter re-locks and re-checks), an exact wake of the parked
// generation waiters in cooperative mode.
func (cs *collectiveState) wake() {
	if s := cs.rt.sched; s != nil {
		s.wakeColl()
		return
	}
	cs.cond.Broadcast()
}

// waitFor blocks the rank until the generation it contributed to may
// have completed: cond.Wait in goroutine mode, a scheduler park in
// cooperative mode. Either way the caller re-checks its predicate on
// return.
func (cs *collectiveState) waitFor(rank int) {
	if s := cs.rt.sched; s != nil {
		s.parkColl(rank)
		return
	}
	cs.cond.Wait()
}

// checkStuck reports (and aborts on) a deadlocked collective: a rank that
// has not contributed to the in-flight generation but whose function has
// already exited can never arrive, so the waiters would block forever.
// Called with the state locked; it temporarily releases the lock to abort
// the runtime (abort re-acquires it) and reports true so the caller
// re-checks cs.dead instead of going to sleep past its own wake-up.
func (cs *collectiveState) checkStuck(rank int) bool {
	var missing []int
	for r := 0; r < cs.p; r++ {
		if cs.rt.isExited(r) && !cs.arrived[r] {
			missing = append(missing, r)
		}
	}
	if len(missing) == 0 {
		return false
	}
	err := fmt.Errorf("cluster: deadlock: rank %d blocked in a collective that rank(s) %v exited without joining (mismatched collective participation)", rank, missing)
	cs.unlock()
	cs.rt.abort(err)
	cs.lock()
	return true
}

func (cs *collectiveState) abort() {
	if s := cs.rt.sched; s != nil {
		cs.dead = true
		s.wakeAll()
		return
	}
	cs.mu.Lock()
	cs.dead = true
	cs.mu.Unlock()
	cs.cond.Broadcast()
}

// enter contributes to the current collective and blocks until all ranks
// have arrived. combine is evaluated exactly once, by the last arriver,
// over the contributions in rank order. It may retain contribution values
// but must not retain the slice itself (it is the shared scratch buffer).
// The returned value is shared by all ranks and must be treated as
// read-only.
func (cs *collectiveState) enter(rank int, clock float64, contribution any,
	combine func(all []any) any) (value any, tmax float64) {

	cs.lock()
	defer cs.unlock()
	if cs.dead {
		panic(abortPanic{err: fmt.Errorf("cluster: collective on aborted runtime")})
	}
	myGen := cs.gen
	cs.clocks[rank] = clock
	cs.contrib[rank] = contribution
	cs.arrived[rank] = true
	cs.count++
	if cs.count == cs.p {
		var t float64
		for _, cl := range cs.clocks {
			if cl > t {
				t = cl
			}
		}
		cs.results[myGen] = &collResult{value: combine(cs.contrib), tmax: t, remaining: cs.p}
		for i := range cs.contrib {
			cs.contrib[i] = nil
			cs.arrived[i] = false
		}
		cs.count = 0
		cs.gen++
		cs.wake()
	} else {
		for cs.gen == myGen && !cs.dead {
			if cs.checkStuck(rank) {
				continue // our own abort set cs.dead; re-evaluate, don't sleep
			}
			cs.waitFor(rank)
		}
		if cs.dead {
			panic(abortPanic{err: fmt.Errorf("cluster: collective on aborted runtime")})
		}
	}
	res := cs.results[myGen]
	res.remaining--
	if res.remaining == 0 {
		delete(cs.results, myGen)
	}
	return res.value, res.tmax
}

// enterScalar is the allocation-free twin of enter for collectives that
// reduce one or two float64 values. It shares the generation counter with
// the boxed path, so scalar and vector collectives can interleave freely.
// Summation runs in rank order, bitwise-identical to AllreduceSum.
func (cs *collectiveState) enterScalar(rank int, clock, v0, v1 float64) (r0, r1, tmax float64) {
	cs.lock()
	defer cs.unlock()
	if cs.dead {
		panic(abortPanic{err: fmt.Errorf("cluster: collective on aborted runtime")})
	}
	myGen := cs.gen
	cs.clocks[rank] = clock
	cs.scontrib[2*rank] = v0
	cs.scontrib[2*rank+1] = v1
	cs.arrived[rank] = true
	cs.count++
	if cs.count == cs.p {
		var t float64
		for _, cl := range cs.clocks {
			if cl > t {
				t = cl
			}
		}
		var s0, s1 float64
		for r := 0; r < cs.p; r++ {
			s0 += cs.scontrib[2*r]
			s1 += cs.scontrib[2*r+1]
		}
		slot := &cs.sres[myGen&1]
		slot.gen, slot.v0, slot.v1, slot.tmax = myGen, s0, s1, t
		for i := range cs.arrived {
			cs.arrived[i] = false
		}
		cs.count = 0
		cs.gen++
		cs.wake()
	} else {
		for cs.gen == myGen && !cs.dead {
			if cs.checkStuck(rank) {
				continue // our own abort set cs.dead; re-evaluate, don't sleep
			}
			cs.waitFor(rank)
		}
		if cs.dead {
			panic(abortPanic{err: fmt.Errorf("cluster: collective on aborted runtime")})
		}
	}
	slot := &cs.sres[myGen&1]
	if slot.gen != myGen {
		panic(fmt.Sprintf("cluster: scalar collective slot for gen %d holds gen %d", myGen, slot.gen))
	}
	return slot.v0, slot.v1, slot.tmax
}

// collect is the shared driver: synchronize clocks to the arrival maximum
// (charged at wait power) and then charge the tree cost at active power.
func (c *Comm) collect(bytesPerStage int64, contribution any, combine func(all []any) any) any {
	c.checkAbort()
	value, tmax := c.rt.coll.enter(c.rank, c.clock, contribution, combine)
	c.advanceTo(tmax, obs.SpanWait)
	cost := c.rt.plat.CollectiveTime(bytesPerStage, c.rt.p)
	if c.obs != nil {
		c.obs.Span(obs.SpanCollective, c.clock, cost)
		c.obs.AddCollective()
	}
	c.ElapseActive(cost)
	return value
}

// Barrier synchronizes all ranks (clocks included). It rides the
// allocation-free scalar collective path with a discarded zero
// contribution; the modeled cost is the same 8-byte stage the boxed path
// charged, so virtual times are unchanged.
func (c *Comm) Barrier() {
	c.checkAbort()
	_, _, tmax := c.rt.coll.enterScalar(c.rank, c.clock, 0, 0)
	c.advanceTo(tmax, obs.SpanWait)
	cost := c.rt.plat.CollectiveTime(8, c.rt.p)
	if c.obs != nil {
		c.obs.Span(obs.SpanCollective, c.clock, cost)
		c.obs.AddCollective()
	}
	c.ElapseActive(cost)
}

// AllreduceSum element-wise sums vals across ranks. All ranks receive the
// same result (deterministic rank-order summation). vals is not modified.
func (c *Comm) AllreduceSum(vals []float64) []float64 {
	in := make([]float64, len(vals))
	copy(in, vals)
	out := c.collect(int64(8*len(vals)), in, func(all []any) any {
		sum := make([]float64, len(vals))
		for _, a := range all {
			v := a.([]float64)
			if len(v) != len(sum) {
				panic(fmt.Sprintf("cluster: AllreduceSum length mismatch %d vs %d", len(v), len(sum)))
			}
			for i, x := range v {
				sum[i] += x
			}
		}
		return sum
	})
	return out.([]float64)
}

// AllreduceScalarSum is AllreduceSum for one value (the CG dot products).
// It takes the allocation-free scalar fast path; the cost model and the
// rank-order summation are identical to AllreduceSum([]float64{v})[0].
func (c *Comm) AllreduceScalarSum(v float64) float64 {
	c.checkAbort()
	r0, _, tmax := c.rt.coll.enterScalar(c.rank, c.clock, v, 0)
	c.advanceTo(tmax, obs.SpanWait)
	cost := c.rt.plat.CollectiveTime(8, c.rt.p)
	if c.obs != nil {
		c.obs.Span(obs.SpanCollective, c.clock, cost)
		c.obs.AddCollective()
	}
	c.ElapseActive(cost)
	return r0
}

// AllreduceSum2 sums two scalars across ranks in one fused collective.
// Results and virtual-time cost are bitwise-identical to
// AllreduceSum([]float64{a, b}), without the per-call allocations.
func (c *Comm) AllreduceSum2(a, b float64) (float64, float64) {
	c.checkAbort()
	r0, r1, tmax := c.rt.coll.enterScalar(c.rank, c.clock, a, b)
	c.advanceTo(tmax, obs.SpanWait)
	cost := c.rt.plat.CollectiveTime(16, c.rt.p)
	if c.obs != nil {
		c.obs.Span(obs.SpanCollective, c.clock, cost)
		c.obs.AddCollective()
	}
	c.ElapseActive(cost)
	return r0, r1
}

// AllreduceMax element-wise maximizes vals across ranks.
func (c *Comm) AllreduceMax(vals []float64) []float64 {
	in := make([]float64, len(vals))
	copy(in, vals)
	out := c.collect(int64(8*len(vals)), in, func(all []any) any {
		m := make([]float64, len(vals))
		copy(m, all[0].([]float64))
		for _, a := range all[1:] {
			for i, x := range a.([]float64) {
				if x > m[i] {
					m[i] = x
				}
			}
		}
		return m
	})
	return out.([]float64)
}

// Bcast broadcasts root's data to all ranks; every rank receives a fresh
// copy. Non-root callers pass their (ignored) input, which may be nil.
func (c *Comm) Bcast(root int, data []float64) []float64 {
	var in []float64
	if c.rank == root {
		in = make([]float64, len(data))
		copy(in, data)
	}
	out := c.collect(int64(8*len(data)), in, func(all []any) any {
		if all[root] == nil {
			panic(fmt.Sprintf("cluster: Bcast root %d contributed nil", root))
		}
		return all[root]
	})
	shared := out.([]float64)
	res := make([]float64, len(shared))
	copy(res, shared)
	return res
}

// BcastInt broadcasts one integer from root (used for control decisions
// such as "a fault occurred on rank r at iteration k").
func (c *Comm) BcastInt(root int, v int) int {
	res := c.Bcast(root, []float64{float64(v)})
	return int(res[0])
}

// AllgatherV concatenates per-rank variable-length blocks; every rank
// receives all blocks indexed by rank. Blocks are copied.
func (c *Comm) AllgatherV(block []float64) [][]float64 {
	in := make([]float64, len(block))
	copy(in, block)
	// Payload estimate: total gathered bytes dominate a ring/tree
	// allgather; use the per-rank block size per stage.
	out := c.collect(int64(8*len(block)), in, func(all []any) any {
		blocks := make([][]float64, len(all))
		for i, a := range all {
			if a == nil {
				blocks[i] = nil
				continue
			}
			blocks[i] = a.([]float64)
		}
		return blocks
	})
	shared := out.([][]float64)
	res := make([][]float64, len(shared))
	for i, b := range shared {
		res[i] = make([]float64, len(b))
		copy(res[i], b)
	}
	return res
}

// Reduce sums vals across ranks; only root receives the result (others
// get nil). Cost-modeled like Allreduce's tree without the broadcast
// half, i.e. the same ceil(log2 P) stages.
func (c *Comm) Reduce(root int, vals []float64) []float64 {
	in := make([]float64, len(vals))
	copy(in, vals)
	out := c.collect(int64(8*len(vals)), in, func(all []any) any {
		sum := make([]float64, len(vals))
		for _, a := range all {
			for i, x := range a.([]float64) {
				sum[i] += x
			}
		}
		return sum
	})
	if c.rank != root {
		return nil
	}
	shared := out.([]float64)
	res := make([]float64, len(shared))
	copy(res, shared)
	return res
}

// Gather collects fixed-size blocks on root (nil elsewhere).
func (c *Comm) Gather(root int, block []float64) [][]float64 {
	in := make([]float64, len(block))
	copy(in, block)
	out := c.collect(int64(8*len(block)), in, func(all []any) any {
		blocks := make([][]float64, len(all))
		for i, a := range all {
			blocks[i] = a.([]float64)
		}
		return blocks
	})
	if c.rank != root {
		return nil
	}
	shared := out.([][]float64)
	res := make([][]float64, len(shared))
	for i, b := range shared {
		res[i] = make([]float64, len(b))
		copy(res[i], b)
	}
	return res
}

// Scatter distributes root's per-rank blocks; every rank receives its own
// copy. Non-root callers pass nil.
func (c *Comm) Scatter(root int, blocks [][]float64) []float64 {
	var in any
	if c.rank == root {
		cp := make([][]float64, len(blocks))
		for i, b := range blocks {
			cp[i] = append([]float64(nil), b...)
		}
		in = cp
	}
	var stage int64 = 8
	if c.rank == root && len(blocks) > 0 {
		stage = int64(8 * len(blocks[0]))
	}
	out := c.collect(stage, in, func(all []any) any {
		if all[root] == nil {
			panic(fmt.Sprintf("cluster: Scatter root %d contributed nil", root))
		}
		return all[root]
	})
	shared := out.([][]float64)
	if c.rank >= len(shared) {
		panic(fmt.Sprintf("cluster: Scatter root provided %d blocks for %d ranks", len(shared), c.rt.p))
	}
	res := make([]float64, len(shared[c.rank]))
	copy(res, shared[c.rank])
	return res
}
