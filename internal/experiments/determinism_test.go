package experiments

import (
	"math"
	"testing"

	"resilience/internal/chaos"
	"resilience/internal/core"
	"resilience/internal/fault"
	"resilience/internal/matgen"
)

// TestEngineDeterminism asserts the rendered output of an experiment is
// byte-identical whether the engine runs its cells sequentially or on
// eight workers. fig5 and tab5 cover the widest fan-outs (matrix x scheme
// grids with cached FF baselines); fig3 covers Poisson fault injection,
// proving each cell's RNG is isolated from scheduling order.
func TestEngineDeterminism(t *testing.T) {
	cfg := Default(0) // Tiny
	for _, id := range []string{"fig5", "tab5", "fig3"} {
		id := id
		t.Run(id, func(t *testing.T) {
			r, ok := Get(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			render := func(workers string) string {
				t.Setenv("RES_WORKERS", workers)
				res, err := r.Run(cfg)
				if err != nil {
					t.Fatalf("%s with RES_WORKERS=%s: %v", id, workers, err)
				}
				return res.String()
			}
			seq := render("1")
			par := render("8")
			if seq != par {
				t.Errorf("%s output differs between RES_WORKERS=1 and RES_WORKERS=8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					id, seq, par)
			}
		})
	}
}

// TestOverlapSolverDeterminism asserts the overlapped solver path is a
// pure clock-model change at ci scale: bitwise-identical residual
// history, identical iteration count, bitwise-identical solution — and a
// modeled time no worse than the fused path.
func TestOverlapSolverDeterminism(t *testing.T) {
	cfg := Default(matgen.CI)
	s, err := cfg.loadSystem("Andrews")
	if err != nil {
		t.Fatal(err)
	}
	runOne := func(overlap bool) *core.RunReport {
		rc := cfg.baseConfig(s)
		rc.Overlap = overlap
		rep, err := core.Run(rc)
		if err != nil {
			t.Fatalf("overlap=%t: %v", overlap, err)
		}
		if !rep.Converged {
			t.Fatalf("overlap=%t did not converge (relres %g after %d iters)", overlap, rep.RelRes, rep.Iters)
		}
		return rep
	}
	fused := runOne(false)
	over := runOne(true)

	if fused.Iters != over.Iters {
		t.Errorf("iteration counts differ: fused %d, overlapped %d", fused.Iters, over.Iters)
	}
	if math.Float64bits(fused.RelRes) != math.Float64bits(over.RelRes) {
		t.Errorf("final residuals differ: fused %x, overlapped %x",
			math.Float64bits(fused.RelRes), math.Float64bits(over.RelRes))
	}
	if len(fused.History) != len(over.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(fused.History), len(over.History))
	}
	for i := range fused.History {
		if math.Float64bits(fused.History[i]) != math.Float64bits(over.History[i]) {
			t.Fatalf("residual history diverges at iteration %d: %x vs %x",
				i, math.Float64bits(fused.History[i]), math.Float64bits(over.History[i]))
		}
	}
	if len(fused.Solution) != len(over.Solution) {
		t.Fatalf("solution lengths differ: %d vs %d", len(fused.Solution), len(over.Solution))
	}
	for i := range fused.Solution {
		if math.Float64bits(fused.Solution[i]) != math.Float64bits(over.Solution[i]) {
			t.Fatalf("solution diverges at row %d", i)
		}
	}
	if over.Time > fused.Time {
		t.Errorf("overlapped modeled time %g exceeds fused %g", over.Time, fused.Time)
	}
}

// TestOverlapRecoveryDeterminism extends the overlap purity guarantee to
// the fault path: under every default recovery scheme, a chaos scenario
// with faults landing inside reconstruction / checkpoint / rollback
// windows must produce bitwise-identical iterates with the halo exchange
// overlapped or fused. Overlap is a clock-model change; recovery phases
// (which replay SpMVs during reconstruction and rollback) must not leak
// it into the numerics.
func TestOverlapRecoveryDeterminism(t *testing.T) {
	for _, scheme := range chaos.DefaultSchemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			scn := &chaos.Scenario{
				Grid: 8, Ranks: 4, Scheme: scheme, Tol: 1e-10, Seed: 3,
				CkptEvery: 6, DetectDelay: 2,
				// Back-to-back faults: the second lands while the first is
				// still being repaired, and for CR schemes iteration 7 sits
				// just past the checkpoint at 6 — inside the rollback window.
				Faults: []chaos.FaultSpec{
					{Class: fault.SNF, Rank: 1, Iter: 7},
					{Class: fault.SNF, Rank: 2, Iter: 8},
				},
			}
			a, b := scn.System()
			runOne := func(overlap bool) *core.RunReport {
				s := *scn
				s.Overlap = overlap
				rc, err := s.RunConfig(a, b, false)
				if err != nil {
					t.Fatalf("overlap=%t: %v", overlap, err)
				}
				rep, err := core.Run(rc)
				if err != nil {
					t.Fatalf("overlap=%t: %v", overlap, err)
				}
				return rep
			}
			fused := runOne(false)
			over := runOne(true)

			if fused.Iters != over.Iters || fused.Converged != over.Converged {
				t.Fatalf("fused (iters %d, converged %t) and overlapped (iters %d, converged %t) diverge",
					fused.Iters, fused.Converged, over.Iters, over.Converged)
			}
			if math.Float64bits(fused.RelRes) != math.Float64bits(over.RelRes) {
				t.Errorf("final residuals differ: fused %x, overlapped %x",
					math.Float64bits(fused.RelRes), math.Float64bits(over.RelRes))
			}
			if len(fused.History) != len(over.History) {
				t.Fatalf("history lengths differ: %d vs %d", len(fused.History), len(over.History))
			}
			for i := range fused.History {
				if math.Float64bits(fused.History[i]) != math.Float64bits(over.History[i]) {
					t.Fatalf("residual history diverges at iteration %d under faults: %x vs %x",
						i, math.Float64bits(fused.History[i]), math.Float64bits(over.History[i]))
				}
			}
			for i := range fused.Solution {
				if math.Float64bits(fused.Solution[i]) != math.Float64bits(over.Solution[i]) {
					t.Fatalf("solution diverges at row %d under faults", i)
				}
			}
			if len(fused.Faults) == 0 {
				t.Error("scenario injected no faults; the test exercised nothing")
			}
			if over.Time > fused.Time {
				t.Errorf("overlapped modeled time %g exceeds fused %g", over.Time, fused.Time)
			}
		})
	}
}

// TestOverlapResolution checks the precedence of the overlap knobs:
// Config.Overlap beats RES_OVERLAP beats the fused default.
func TestOverlapResolution(t *testing.T) {
	if (Config{}).overlapEnabled() {
		t.Error("overlap must default to off")
	}
	t.Setenv("RES_OVERLAP", "1")
	if !(Config{}).overlapEnabled() {
		t.Error("RES_OVERLAP=1 must enable overlap")
	}
	t.Setenv("RES_OVERLAP", "0")
	if (Config{}).overlapEnabled() {
		t.Error("RES_OVERLAP=0 must leave overlap off")
	}
	if !(Config{Overlap: true}).overlapEnabled() {
		t.Error("Config.Overlap must override the environment")
	}
}

// TestWorkersResolution checks the precedence of the worker-count knobs:
// Config.Workers beats RES_WORKERS beats GOMAXPROCS.
func TestWorkersResolution(t *testing.T) {
	t.Setenv("RES_WORKERS", "3")
	if got := (Config{}).workers(); got != 3 {
		t.Errorf("RES_WORKERS=3: workers() = %d, want 3", got)
	}
	if got := (Config{Workers: 5}).workers(); got != 5 {
		t.Errorf("Workers=5 should override the environment: workers() = %d, want 5", got)
	}
	t.Setenv("RES_WORKERS", "bogus")
	if got := (Config{}).workers(); got < 1 {
		t.Errorf("invalid RES_WORKERS must fall back to GOMAXPROCS: workers() = %d", got)
	}
}
