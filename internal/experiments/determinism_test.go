package experiments

import "testing"

// TestEngineDeterminism asserts the rendered output of an experiment is
// byte-identical whether the engine runs its cells sequentially or on
// eight workers. fig5 and tab5 cover the widest fan-outs (matrix x scheme
// grids with cached FF baselines); fig3 covers Poisson fault injection,
// proving each cell's RNG is isolated from scheduling order.
func TestEngineDeterminism(t *testing.T) {
	cfg := Default(0) // Tiny
	for _, id := range []string{"fig5", "tab5", "fig3"} {
		id := id
		t.Run(id, func(t *testing.T) {
			r, ok := Get(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			render := func(workers string) string {
				t.Setenv("RES_WORKERS", workers)
				res, err := r.Run(cfg)
				if err != nil {
					t.Fatalf("%s with RES_WORKERS=%s: %v", id, workers, err)
				}
				return res.String()
			}
			seq := render("1")
			par := render("8")
			if seq != par {
				t.Errorf("%s output differs between RES_WORKERS=1 and RES_WORKERS=8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					id, seq, par)
			}
		})
	}
}

// TestWorkersResolution checks the precedence of the worker-count knobs:
// Config.Workers beats RES_WORKERS beats GOMAXPROCS.
func TestWorkersResolution(t *testing.T) {
	t.Setenv("RES_WORKERS", "3")
	if got := (Config{}).workers(); got != 3 {
		t.Errorf("RES_WORKERS=3: workers() = %d, want 3", got)
	}
	if got := (Config{Workers: 5}).workers(); got != 5 {
		t.Errorf("Workers=5 should override the environment: workers() = %d, want 5", got)
	}
	t.Setenv("RES_WORKERS", "bogus")
	if got := (Config{}).workers(); got < 1 {
		t.Errorf("invalid RES_WORKERS must fall back to GOMAXPROCS: workers() = %d", got)
	}
}
