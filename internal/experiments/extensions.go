package experiments

import (
	"fmt"

	"resilience/internal/cluster"
	"resilience/internal/core"
	"resilience/internal/fault"
	"resilience/internal/matgen"
	"resilience/internal/platform"
	"resilience/internal/power"
	"resilience/internal/recovery"
	"resilience/internal/report"
	"resilience/internal/solver"
	"resilience/internal/sparse"
)

func init() {
	register("ablation-multilevel", "Ablation: two-level checkpointing under mixed fault classes", runAblationMultilevel)
	register("ablation-sdc", "Ablation: silent-corruption detection latency", runAblationSDC)
	register("ablation-pipeline", "Ablation: pipelined CG vs classic CG synchronization", runAblationPipeline)
	register("ablation-construction", "Ablation: DVFS savings vs construction-cost fraction", runAblationConstructionCost)
}

// runAblationMultilevel compares CR-M, CR-D and the SCR-style two-level
// CR-2L under a fault mix where most failures are single-node but some
// are system-wide outages. Memory checkpoints do not survive an outage,
// so CR-M pays full restarts there; CR-2L falls back to its disk level.
func runAblationMultilevel(cfg Config) (*Result, error) {
	s, err := cfg.loadSystem("crystm02")
	if err != nil {
		return nil, err
	}
	ff, err := cfg.faultFree(s)
	if err != nil {
		return nil, err
	}
	ckptEvery := 100
	if ff.Iters < 400 {
		ckptEvery = 10
	}
	classes := []fault.Class{fault.SNF, fault.SNF, fault.SNF, fault.SWO}
	specs := []core.SchemeSpec{
		{Kind: core.CRM, CkptEvery: ckptEvery},
		{Kind: core.CRD, CkptEvery: ckptEvery},
		{Kind: core.CR2L, CkptEvery: ckptEvery, DiskEvery: 4 * ckptEvery},
	}
	reps := make([]*core.RunReport, len(specs))
	err = cfg.runCells(len(specs), func(i int) error {
		rc := cfg.baseConfig(s)
		rc.Scheme = specs[i]
		ffIters := ff.Iters
		ranks := rc.Ranks
		seed := cfg.Seed
		nFaults := cfg.Faults
		rc.InjectorFactory = func() fault.Injector {
			return fault.NewScheduleClasses(nFaults, ffIters, ranks, classes, seed)
		}
		rep, err := core.Run(rc)
		if err != nil {
			return err
		}
		if !rep.Converged {
			return fmt.Errorf("experiments: %s did not converge", specs[i].Name())
		}
		reps[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := report.NewTable(
		fmt.Sprintf("Two-level checkpointing: crystm02 analog, %d faults (every 4th a system-wide outage)", cfg.Faults),
		"Scheme", "Checkpoints", "Iters/FF", "Time/FF", "Energy/FF")
	for _, rep := range reps {
		t.AddF(rep.Scheme, rep.Checkpoints, float64(rep.Iters)/float64(ff.Iters),
			rep.Time/ff.Time, rep.Energy/ff.Energy)
	}
	return &Result{
		ID:     "ablation-multilevel",
		Title:  "Two-level checkpointing under mixed fault classes",
		Tables: []*report.Table{t},
		Notes: []string{
			"Expectation: CR-M loses its memory checkpoints at each outage (costly full restarts); CR-D survives everything but pays disk on every checkpoint; CR-2L approaches CR-M's cost while keeping CR-D's coverage.",
		},
	}, nil
}

// runAblationSDC studies silent data corruption that propagates for a
// detection latency before recovery runs — the regime the paper excludes
// by assuming prompt detection (Section 3), built on the SDC-propagation
// literature it cites.
func runAblationSDC(cfg Config) (*Result, error) {
	s, err := cfg.loadSystem("Kuu")
	if err != nil {
		return nil, err
	}
	ff, err := cfg.faultFree(s)
	if err != nil {
		return nil, err
	}
	nFaults := 3
	// The eligible delay list depends only on the FF baseline, so it is
	// fixed before the cells launch.
	var delays []int
	for _, d := range []int{0, 2, 8, 32} {
		if d > ff.Iters/4 {
			break
		}
		delays = append(delays, d)
	}
	reps := make([]*core.RunReport, len(delays))
	err = cfg.runCells(len(delays), func(i int) error {
		rc := cfg.baseConfig(s)
		rc.Scheme = core.SchemeSpec{Kind: core.LI}
		rc.DetectDelay = delays[i]
		ffIters := ff.Iters
		ranks := rc.Ranks
		seed := cfg.Seed
		rc.InjectorFactory = func() fault.Injector {
			return fault.NewSchedule(nFaults, ffIters, ranks, fault.SDC, seed)
		}
		rep, err := core.Run(rc)
		if err != nil {
			return err
		}
		if !rep.Converged {
			return fmt.Errorf("experiments: delay=%d did not converge", delays[i])
		}
		reps[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("SDC detection latency: Kuu analog, %d silent corruptions, LI recovery", nFaults),
		"Detection delay (iters)", "Iters", "Iters/FF", "Time/FF", "Energy/FF")
	for i, d := range delays {
		rep := reps[i]
		t.AddF(d, rep.Iters, float64(rep.Iters)/float64(ff.Iters),
			rep.Time/ff.Time, rep.Energy/ff.Energy)
	}
	return &Result{
		ID:     "ablation-sdc",
		Title:  "Silent-corruption detection latency",
		Tables: []*report.Table{t},
		Notes: []string{
			"Expectation: the longer a corruption propagates through SpMV before detection, the more iterations recovery must win back — prompt detection (the paper's assumption) is the best case.",
		},
	}, nil
}

// runAblationPipeline compares classic CG (two reductions per iteration)
// against pipelined CG (one fused reduction) as the rank count grows on a
// latency-dominated network — quantifying the parallel-overhead T_O term
// the paper's Section 6 projection identifies as a scaling limiter.
func runAblationPipeline(cfg Config) (*Result, error) {
	s, err := cfg.loadSystem("wathen100")
	if err != nil {
		return nil, err
	}
	// Exaggerate network latency so synchronization dominates, as it does
	// at the projected large scales.
	plat := *cfg.Plat
	plat.NetLatency = 50e-6

	var plist []int
	switch cfg.Scale {
	case matgen.Tiny:
		plist = []int{2, 8}
	default:
		plist = []int{4, 16, 64}
	}
	// One cell per (rank count, variant): even index classic, odd pipelined.
	variants := make([]*variantReport, 2*len(plist))
	err = cfg.runCells(len(variants), func(i int) error {
		v, err := runVariant(s, &plat, plist[i/2], cfg.Tol, i%2 == 1)
		variants[i] = v
		return err
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Pipelined vs classic CG: wathen100 analog, latency-bound network",
		"#p", "Classic iters", "Classic T (s)", "Pipelined iters", "Pipelined T (s)", "Speedup")
	for pi, p := range plist {
		classic, pipe := variants[2*pi], variants[2*pi+1]
		t.AddF(p, classic.Iters, classic.Time, pipe.Iters, pipe.Time, classic.Time/pipe.Time)
	}
	return &Result{
		ID:     "ablation-pipeline",
		Title:  "Pipelined CG synchronization ablation",
		Tables: []*report.Table{t},
		Notes: []string{
			"Expectation: one fused allreduce per iteration instead of two buys up to ~1/3 of the latency-bound runtime as ranks grow.",
		},
	}, nil
}

// variantReport is the minimal outcome of a pipelined/classic run.
type variantReport struct {
	Iters int
	Time  float64
}

func runVariant(s *system, plat *platform.Platform, ranks int, tol float64, pipelined bool) (*variantReport, error) {
	if tol <= 0 {
		tol = 1e-10
	}
	part := sparse.NewPartition(s.a.Rows, ranks)
	meter := power.NewMeter(false)
	results := make([]*solver.Result, ranks)
	maxClock, err := cluster.Run(ranks, plat, meter, func(c *cluster.Comm) error {
		var res *solver.Result
		var err error
		if pipelined {
			res, err = solver.PipelinedCG(c, s.a, s.b, part, solver.Options{Tol: tol})
		} else {
			res, err = solver.CG(c, s.a, s.b, part, solver.Options{Tol: tol})
		}
		if err != nil {
			return err
		}
		results[c.Rank()] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !results[0].Converged {
		return nil, fmt.Errorf("experiments: pipelined=%v did not converge (relres %g)", pipelined, results[0].RelRes)
	}
	return &variantReport{Iters: results[0].Iters, Time: maxClock}, nil
}

// runAblationConstructionCost shows how the whole-run energy saving of
// DVFS grows with the fraction of the run spent reconstructing — the
// scale effect separating our CI-scale Fig. 7(b) numbers from the
// paper's 11-16%. Fewer ranks mean larger per-rank blocks, and the exact
// (LU) construction's cubic cost then dominates the run.
func runAblationConstructionCost(cfg Config) (*Result, error) {
	s, err := cfg.loadSystem("nd24k")
	if err != nil {
		return nil, err
	}
	var plist []int
	switch cfg.Scale {
	case matgen.Tiny:
		plist = []int{8, 4}
	default:
		plist = []int{32, 8, 4}
	}
	nFaults := 5
	// One cell per (rank count, variant): even index plain (keeps its power
	// segments for the reconstruction-window fraction), odd DVFS.
	reps := make([]*core.RunReport, 2*len(plist))
	err = cfg.runCells(len(reps), func(i int) error {
		c := cfg
		c.Ranks = plist[i/2]
		c.Faults = nFaults
		spec := core.SchemeSpec{Kind: core.LI, Construct: recovery.ConstructExact, DVFS: i%2 == 1}
		rep, err := c.runScheme(s, spec, i%2 == 0)
		reps[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Construction-cost ablation: nd24k analog, LI(LU) vs LI(LU)-DVFS",
		"#p", "Reconstr. frac of run", "E(no DVFS)/FF", "E(DVFS)/FF", "DVFS saving")
	for pi, p := range plist {
		c := cfg
		c.Ranks = p
		c.Faults = nFaults
		ff, err := c.faultFree(s)
		if err != nil {
			return nil, err
		}
		plain, dvfs := reps[2*pi], reps[2*pi+1]
		var reconDur float64
		for _, w := range plain.Meter.PhaseWindows("reconstruct") {
			reconDur += w[1] - w[0]
		}
		t.AddF(p, reconDur/plain.Time, plain.Energy/ff.Energy, dvfs.Energy/ff.Energy,
			(plain.Energy-dvfs.Energy)/plain.Energy)
	}
	return &Result{
		ID:     "ablation-construction",
		Title:  "DVFS savings vs construction-cost fraction",
		Tables: []*report.Table{t},
		Notes: []string{
			"Expectation: the larger the share of the run spent reconstructing, the closer the whole-run DVFS saving approaches the paper's 11-16% regime.",
		},
	}, nil
}
