package experiments

import (
	"fmt"

	"resilience/internal/core"
	"resilience/internal/matgen"
	"resilience/internal/report"
	"resilience/internal/sparse"
)

func init() {
	register("ablation-overlap", "Ablation: halo exchange overlapped with interior SpMV", runAblationOverlap)
}

// minInteriorFrac returns the smallest per-rank fraction of owned rows
// that touch no off-block column. The slowest rank sets the solve's
// critical path, so the minimum governs how much exchange the overlap
// can actually hide.
func minInteriorFrac(a *sparse.CSR, ranks int) float64 {
	part := sparse.NewPartition(a.Rows, ranks)
	minFrac := 1.0
	for r := 0; r < ranks; r++ {
		lo, hi := part.Range(r)
		if hi <= lo {
			continue
		}
		interior := 0
		for i := lo; i < hi; i++ {
			rowInterior := true
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if c := a.ColIdx[k]; c < lo || c >= hi {
					rowInterior = false
					break
				}
			}
			if rowInterior {
				interior++
			}
		}
		if frac := float64(interior) / float64(hi-lo); frac < minFrac {
			minFrac = frac
		}
	}
	return minFrac
}

// runAblationOverlap quantifies the modeled savings of hiding the halo
// exchange behind the interior SpMV on a 5-point stencil, the boundary
// structure the paper's weak-scaling projection assumes. Row-blocked
// partitions keep exactly two grid lines of boundary rows per interior
// rank, so the interior fraction — and with it the hideable exchange —
// shrinks as ranks grow until every row is boundary and overlap cannot
// help at all.
func runAblationOverlap(cfg Config) (*Result, error) {
	s, err := cfg.loadSystem("5-point stencil")
	if err != nil {
		return nil, err
	}

	var plist []int
	switch cfg.Scale {
	case matgen.Tiny:
		plist = []int{2, 4, 8}
	default:
		plist = []int{2, 4, 8, 16, 32}
	}

	// One cell per (rank count, variant): even index fused, odd overlapped.
	reps := make([]*core.RunReport, 2*len(plist))
	err = cfg.runCells(len(reps), func(i int) error {
		rc := cfg.baseConfig(s)
		rc.Ranks = plist[i/2]
		rc.Overlap = i%2 == 1
		rep, err := core.Run(rc)
		if err != nil {
			return fmt.Errorf("experiments: overlap ablation p=%d overlap=%t: %w", rc.Ranks, rc.Overlap, err)
		}
		if !rep.Converged {
			return fmt.Errorf("experiments: overlap ablation p=%d overlap=%t did not converge", rc.Ranks, rc.Overlap)
		}
		reps[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := report.NewTable(
		fmt.Sprintf("Halo/compute overlap: 5-point stencil analog (%d rows), fault-free", s.a.Rows),
		"#p", "Interior frac", "Iters", "Fused T (s)", "Overlap T (s)", "T saved", "Fused E (J)", "Overlap E (J)")
	for pi, p := range plist {
		fused, over := reps[2*pi], reps[2*pi+1]
		if fused.Iters != over.Iters {
			return nil, fmt.Errorf("experiments: overlap changed iteration count at p=%d: %d vs %d",
				p, fused.Iters, over.Iters)
		}
		t.AddF(p, minInteriorFrac(s.a, p), fused.Iters,
			fused.Time, over.Time,
			fmt.Sprintf("%.1f%%", 100*(1-over.Time/fused.Time)),
			fused.Energy, over.Energy)
	}
	return &Result{
		ID:     "ablation-overlap",
		Title:  "Halo exchange overlapped with interior SpMV",
		Tables: []*report.Table{t},
		Notes: []string{
			"Expectation: overlap hides min(send injection, interior compute) per exchange; savings shrink as the interior fraction falls with rank count and vanish once every row is boundary (all-boundary ranks).",
			"Iteration counts and residual histories are bitwise-identical between the two paths; only the modeled clock differs.",
		},
	}, nil
}
