package experiments

import (
	"strconv"
	"testing"

	"resilience/internal/matgen"
	"resilience/internal/report"
)

// These tests assert the paper's qualitative claims — the orderings and
// shapes its figures and tables report — at tiny scale, where the full
// suite runs in seconds. Quantitative CI-scale values live in
// EXPERIMENTS.md.

func tinyCfg() Config { return Default(matgen.Tiny) }

// cell parses a float cell from a report table.
func cell(t *testing.T, tb *report.Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) %q: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

// colIndex finds a column by header.
func colIndex(t *testing.T, tb *report.Table, name string) int {
	t.Helper()
	for i, c := range tb.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("no column %q in %v", name, tb.Columns)
	return -1
}

func TestTab4Claims(t *testing.T) {
	res, err := Get2(t, "tab4").Run(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	iRD := colIndex(t, tb, "RD")
	iF0 := colIndex(t, tb, "F0")
	iLI := colIndex(t, tb, "LI")
	iCR := colIndex(t, tb, "CR-D")
	for r := range tb.Rows {
		rd, f0, li, cr := cell(t, tb, r, iRD), cell(t, tb, r, iF0), cell(t, tb, r, iLI), cell(t, tb, r, iCR)
		// RD matches the fault-free run.
		if rd != 1 {
			t.Errorf("row %d: RD %g != 1", r, rd)
		}
		// F0 is the worst; LI beats F0; CR sits between LI and F0.
		if li >= f0 {
			t.Errorf("row %d: LI %g not better than F0 %g", r, li, f0)
		}
		if cr > f0+1e-9 {
			t.Errorf("row %d: CR %g worse than F0 %g", r, cr, f0)
		}
	}
	// Process-count invariance: each scheme's ratio varies by < 25%
	// across rows (the paper's Table 4 shows it constant).
	for _, col := range []int{iF0, iLI, iCR} {
		lo, hi := 1e18, 0.0
		for r := range tb.Rows {
			v := cell(t, tb, r, col)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi/lo > 1.25 {
			t.Errorf("column %s varies %gx across process counts", tb.Columns[col], hi/lo)
		}
	}
}

func TestFig4Claims(t *testing.T) {
	res, err := Get2(t, "fig4").Run(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range res.Tables {
		iImp := colIndex(t, tb, "vs exact")
		best := -1e18
		for r := 1; r < len(tb.Rows); r++ {
			if v := cell(t, tb, r, iImp); v > best {
				best = v
			}
		}
		// The paper reports a 4-15% improvement; at simulator scales the
		// CG construction must at least beat the exact baseline.
		if best <= 0 {
			t.Errorf("%s: best CG improvement %g not positive", tb.Title, best)
		}
	}
}

func TestFig5Claims(t *testing.T) {
	res, err := Get2(t, "fig5").Run(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	iRD := colIndex(t, tb, "RD")
	iF0 := colIndex(t, tb, "F0")
	iFI := colIndex(t, tb, "FI")
	iLI := colIndex(t, tb, "LI")
	iLSI := colIndex(t, tb, "LSI")
	avg := len(tb.Rows) - 1 // last row is the average
	rd, f0, fi, li, lsi := cell(t, tb, avg, iRD), cell(t, tb, avg, iF0),
		cell(t, tb, avg, iFI), cell(t, tb, avg, iLI), cell(t, tb, avg, iLSI)
	if rd != 1 {
		t.Errorf("RD average %g", rd)
	}
	// F0 and FI are the worst pair and essentially equal.
	if f0 <= li || f0 <= lsi {
		t.Errorf("F0 %g must exceed LI %g and LSI %g", f0, li, lsi)
	}
	if d := f0 - fi; d < -0.1 || d > 0.1 {
		t.Errorf("F0 %g and FI %g should be close", f0, fi)
	}
	// Every scheme needs at least as many iterations as fault-free.
	for r := 0; r < avg; r++ {
		for _, c := range []int{iF0, iFI, iLI, iLSI} {
			if v := cell(t, tb, r, c); v < 1 {
				t.Errorf("row %d col %s: normalized iterations %g < 1", r, tb.Columns[c], v)
			}
		}
	}
}

func TestFig7aClaims(t *testing.T) {
	res, err := Get2(t, "fig7").Run(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0] // power profile table: LI row then LI-DVFS row
	iRecon := colIndex(t, tb, "Reconstr. power/FF")
	li := cell(t, tb, 0, iRecon)
	dvfs := cell(t, tb, 1, iRecon)
	// The reconstruction-phase power drop is the paper's headline claim:
	// ~0.75x without DVFS, ~0.45x with.
	if dvfs >= li {
		t.Fatalf("DVFS reconstruction power %g not below plain %g", dvfs, li)
	}
	if li < 0.6 || li > 0.95 {
		t.Errorf("plain LI reconstruction power %g, paper ~0.75", li)
	}
	if dvfs < 0.3 || dvfs > 0.7 {
		t.Errorf("LI-DVFS reconstruction power %g, paper ~0.45", dvfs)
	}
}

func TestTab5Claims(t *testing.T) {
	res, err := Get2(t, "tab5").Run(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	vals := map[string][3]float64{}
	for r := range tb.Rows {
		vals[tb.Rows[r][0]] = [3]float64{
			cell(t, tb, r, 1), cell(t, tb, r, 2), cell(t, tb, r, 3),
		}
	}
	rd := vals["RD"]
	if rd[0] > 1.05 || rd[1] < 1.95 || rd[1] > 2.05 || rd[2] < 1.9 || rd[2] > 2.15 {
		t.Errorf("RD row %v, paper {1, 2, 2}", rd)
	}
	// CR-D takes the most time and energy among the compared schemes.
	crd := vals["CR-D"]
	for _, s := range []string{"LI-DVFS", "LSI-DVFS", "CR-M"} {
		if vals[s][0] >= crd[0] {
			t.Errorf("%s time %g not below CR-D %g", s, vals[s][0], crd[0])
		}
		if vals[s][2] >= crd[2] {
			t.Errorf("%s energy %g not below CR-D %g", s, vals[s][2], crd[2])
		}
	}
	// LI-DVFS costs less than LSI-DVFS (cheaper construction).
	if vals["LI-DVFS"][2] >= vals["LSI-DVFS"][2] {
		t.Errorf("LI-DVFS energy %g not below LSI-DVFS %g",
			vals["LI-DVFS"][2], vals["LSI-DVFS"][2])
	}
}

func TestTab6Claims(t *testing.T) {
	res, err := Get2(t, "tab6").Run(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	// RD row: model and measurement both at {0, 2, 1}.
	for r := range tb.Rows {
		if tb.Rows[r][0] != "RD" {
			continue
		}
		if cell(t, tb, r, 1) != 0 || cell(t, tb, r, 2) != 2 || cell(t, tb, r, 3) != 1 {
			t.Errorf("RD model row wrong: %v", tb.Rows[r])
		}
		if mp := cell(t, tb, r, 5); mp < 1.9 || mp > 2.1 {
			t.Errorf("RD measured power %g", mp)
		}
	}
	// Model and measurement agree within a factor for every scheme row.
	for r := 1; r < len(tb.Rows); r++ {
		model := cell(t, tb, r, 1)
		meas := cell(t, tb, r, 4)
		if meas > 0.01 && model > 0.01 {
			if ratio := model / meas; ratio < 0.1 || ratio > 10 {
				t.Errorf("%s: model T_res %g vs measured %g", tb.Rows[r][0], model, meas)
			}
		}
	}
}

// Get2 wraps Get with a fatal error on missing runners.
func Get2(t *testing.T, id string) Runner {
	t.Helper()
	r, ok := Get(id)
	if !ok {
		t.Fatalf("no runner %q", id)
	}
	return r
}

func TestLoadSystemCaching(t *testing.T) {
	cfg := tinyCfg()
	a, err := cfg.loadSystem("Kuu")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.loadSystem("Kuu")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("loadSystem must cache per name+scale")
	}
	if _, err := cfg.loadSystem("nonexistent"); err == nil {
		t.Error("unknown matrix accepted")
	}
}

func TestBaseConfigClampsRanks(t *testing.T) {
	cfg := tinyCfg()
	cfg.Ranks = 1 << 20
	s, err := cfg.loadSystem("bcsstk06")
	if err != nil {
		t.Fatal(err)
	}
	rc := cfg.baseConfig(s)
	if rc.Ranks > s.a.Rows/2 {
		t.Errorf("ranks %d not clamped for %d rows", rc.Ranks, s.a.Rows)
	}
}

func TestFaultFreeCachePerRankCount(t *testing.T) {
	cfg := tinyCfg()
	s, err := cfg.loadSystem("wathen100")
	if err != nil {
		t.Fatal(err)
	}
	ff8, err := cfg.faultFree(s)
	if err != nil {
		t.Fatal(err)
	}
	c2 := cfg
	c2.Ranks = 4
	ff4, err := c2.faultFree(s)
	if err != nil {
		t.Fatal(err)
	}
	if ff8 == ff4 {
		t.Error("fault-free cache must key on rank count")
	}
	again, _ := cfg.faultFree(s)
	if again != ff8 {
		t.Error("fault-free baseline not cached")
	}
}

func TestRunnersHaveTitlesAndOrder(t *testing.T) {
	all := All()
	if len(all) < 19 {
		t.Fatalf("only %d runners", len(all))
	}
	for _, r := range all {
		if r.ID == "" || r.Title == "" || r.Run == nil {
			t.Errorf("incomplete runner %+v", r.ID)
		}
	}
	// Paper order: fig1 first, fig9 before the ablations.
	if all[0].ID != "fig1" {
		t.Errorf("first runner %s", all[0].ID)
	}
	pos := map[string]int{}
	for i, r := range all {
		pos[r.ID] = i
	}
	if pos["fig9"] > pos["ablation-interval"] {
		t.Error("fig9 must precede the ablations")
	}
}
