package experiments

import (
	"fmt"

	"resilience/internal/core"
	"resilience/internal/fault"
	"resilience/internal/recovery"
	"resilience/internal/report"
)

func init() {
	register("fig4", "CG-based construction vs LU/QR baselines (Figure 4): Kuu, 5 faults", runFig4)
	register("ablation-interval", "Ablation: checkpoint interval policy (fixed vs Young vs Daly)", runAblationInterval)
	register("ablation-tol", "Ablation: localized construction tolerance sweep", runAblationTol)
	register("ablation-dvfs", "Ablation: DVFS floor frequency sweep during reconstruction", runAblationDVFS)
	register("ablation-tmr", "Ablation: DMR vs TMR redundancy degree", runAblationTMR)
	register("ablation-pcg", "Ablation: Jacobi preconditioning vs forward recovery", runAblationPCG)
}

// runAblationPCG studies how diagonal preconditioning of the global solve
// (extension beyond the paper) interacts with forward recovery: the
// preconditioner shortens the fault-free run, which makes each fault
// relatively more expensive.
func runAblationPCG(cfg Config) (*Result, error) {
	s, err := cfg.loadSystem("crystm02")
	if err != nil {
		return nil, err
	}
	variants := []bool{false, true}
	labels := []string{"CG", "PCG(Jacobi)"}
	// Phase 1: the fault-free baseline of each solver variant.
	ffs := make([]*core.RunReport, len(variants))
	err = cfg.runCells(len(variants), func(i int) error {
		rcFF := cfg.baseConfig(s)
		rcFF.Jacobi = variants[i]
		ff, err := core.Run(rcFF)
		if err != nil {
			return err
		}
		if !ff.Converged {
			return fmt.Errorf("experiments: %s FF did not converge", labels[i])
		}
		ffs[i] = ff
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Phase 2: each variant under LI and F0 recovery.
	schemes := []core.SchemeSpec{{Kind: core.LI}, {Kind: core.F0}}
	reps := make([]*core.RunReport, len(variants)*len(schemes))
	err = cfg.runCells(len(reps), func(i int) error {
		vi, si := i/len(schemes), i%len(schemes)
		rc := cfg.baseConfig(s)
		rc.Jacobi = variants[vi]
		rc.Scheme = schemes[si]
		ffIters := ffs[vi].Iters
		ranks := rc.Ranks
		seed := cfg.Seed
		nFaults := cfg.Faults
		rc.InjectorFactory = func() fault.Injector {
			return fault.NewSchedule(nFaults, ffIters, ranks, fault.SNF, seed)
		}
		rep, err := core.Run(rc)
		if err != nil {
			return err
		}
		if !rep.Converged {
			return fmt.Errorf("experiments: %s/%s did not converge", labels[vi], schemes[si].Name())
		}
		reps[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(fmt.Sprintf("Jacobi-PCG ablation: crystm02 analog, %d faults", cfg.Faults),
		"Solver", "Scheme", "Iters", "Time (s)", "Energy (J)", "Iters/FF-of-solver")
	for vi, label := range labels {
		ff := ffs[vi]
		t.AddF(label, "FF", ff.Iters, ff.Time, ff.Energy, 1.0)
		for si := range schemes {
			rep := reps[vi*len(schemes)+si]
			t.AddF(label, rep.Scheme, rep.Iters, rep.Time, rep.Energy,
				float64(rep.Iters)/float64(ff.Iters))
		}
	}
	return &Result{
		ID:     "ablation-pcg",
		Title:  "Jacobi preconditioning vs forward recovery",
		Tables: []*report.Table{t},
		Notes: []string{
			"Expectation: PCG shortens the fault-free solve; the normalized penalty of each fault grows because recovery cost is amortized over fewer iterations.",
		},
	}, nil
}

// runFig4 reproduces Figure 4: time-to-solution of the CG-based LI/LSI
// construction across construction tolerances, against the exact LU/QR
// baselines of prior work.
func runFig4(cfg Config) (*Result, error) {
	c := cfg
	c.Faults = 5 // the figure's setting
	s, err := c.loadSystem("Kuu")
	if err != nil {
		return nil, err
	}
	ff, err := c.faultFree(s)
	if err != nil {
		return nil, err
	}
	tols := []float64{1e-2, 1e-4, 1e-6, 1e-8, 1e-10}
	kinds := []core.SchemeKind{core.LI, core.LSI}

	// One cell per (kind, construction): slot 0 of each kind is the exact
	// baseline, slots 1..len(tols) the CG construction at each tolerance.
	perKind := 1 + len(tols)
	reps := make([]*core.RunReport, len(kinds)*perKind)
	err = c.runCells(len(reps), func(i int) error {
		kind := kinds[i/perKind]
		spec := core.SchemeSpec{Kind: kind, Construct: recovery.ConstructExact}
		if j := i % perKind; j > 0 {
			spec = core.SchemeSpec{Kind: kind, LocalTol: tols[j-1]}
		}
		rep, err := c.runScheme(s, spec, false)
		reps[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	var tables []*report.Table
	for ki, kind := range kinds {
		baseline := reps[ki*perKind]
		label := "LI (LU)"
		if kind == core.LSI {
			label = "LSI (QR)"
		}
		t := report.NewTable(fmt.Sprintf("Figure 4: %s analog, 5 faults, %s baseline TTS=%.4gs",
			s.spec.Name, label, baseline.Time),
			"Construction", "Tol", "Iters", "TTS (s)", "TTS/FF", "vs exact")
		t.AddF(label, "exact", baseline.Iters, baseline.Time, baseline.Time/ff.Time, 0.0)
		for ti, tol := range tols {
			rep := reps[ki*perKind+1+ti]
			t.AddF(rep.Scheme+" (CG)", fmt.Sprintf("%.0e", tol), rep.Iters, rep.Time,
				rep.Time/ff.Time, (baseline.Time-rep.Time)/baseline.Time)
		}
		tables = append(tables, t)
	}
	return &Result{
		ID:     "fig4",
		Title:  "Time-to-solution with the CG-based construction (Figure 4)",
		Tables: tables,
		Notes: []string{
			"Paper expectation: CG-based LI/LSI beat the LU/QR exact baselines by ~4-15% TTS depending on the tolerance.",
		},
	}, nil
}

// runAblationInterval compares fixed-interval, Young and Daly checkpoint
// policies for CR-D (extension beyond the paper).
func runAblationInterval(cfg Config) (*Result, error) {
	s, err := cfg.loadSystem("crystm02")
	if err != nil {
		return nil, err
	}
	ff, err := cfg.faultFree(s)
	if err != nil {
		return nil, err
	}
	mtbf := ff.Time / float64(cfg.Faults)
	specs := []struct {
		label string
		spec  core.SchemeSpec
	}{
		{"fixed-25", core.SchemeSpec{Kind: core.CRD, CkptEvery: 25}},
		{"fixed-100", core.SchemeSpec{Kind: core.CRD, CkptEvery: 100}},
		{"fixed-400", core.SchemeSpec{Kind: core.CRD, CkptEvery: 400}},
		{"young", core.SchemeSpec{Kind: core.CRD, CkptMTBF: mtbf}},
		{"daly", core.SchemeSpec{Kind: core.CRD, CkptMTBF: mtbf, UseDaly: true}},
	}
	reps := make([]*core.RunReport, len(specs))
	err = cfg.runCells(len(specs), func(i int) error {
		rep, err := cfg.runScheme(s, specs[i].spec, false)
		reps[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(fmt.Sprintf("Checkpoint policy ablation: crystm02 analog, CR-D, %d faults", cfg.Faults),
		"Policy", "Checkpoints", "Iters/FF", "Time/FF", "Energy/FF")
	for i, sp := range specs {
		rep := reps[i]
		t.AddF(sp.label, rep.Checkpoints, float64(rep.Iters)/float64(ff.Iters),
			rep.Time/ff.Time, rep.Energy/ff.Energy)
	}
	return &Result{
		ID:     "ablation-interval",
		Title:  "Checkpoint interval policy ablation",
		Tables: []*report.Table{t},
		Notes: []string{
			"Expectation: too-frequent checkpoints waste checkpoint time, too-rare ones waste recomputation; Young/Daly land near the sweet spot.",
		},
	}, nil
}

// runAblationTol quantifies how the localized construction tolerance
// trades construction work against extra solver iterations.
func runAblationTol(cfg Config) (*Result, error) {
	s, err := cfg.loadSystem("cvxbqp1")
	if err != nil {
		return nil, err
	}
	ff, err := cfg.faultFree(s)
	if err != nil {
		return nil, err
	}
	tols := []float64{1e-1, 1e-3, 1e-6, 1e-9, 1e-12}
	reps := make([]*core.RunReport, len(tols))
	err = cfg.runCells(len(tols), func(i int) error {
		rep, err := cfg.runScheme(s, core.SchemeSpec{Kind: core.LI, LocalTol: tols[i]}, false)
		reps[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(fmt.Sprintf("Construction tolerance ablation: cvxbqp1 analog, LI(CG), %d faults", cfg.Faults),
		"LocalTol", "Iters", "Iters/FF", "Time/FF", "Energy/FF")
	for i, tol := range tols {
		rep := reps[i]
		t.AddF(fmt.Sprintf("%.0e", tol), rep.Iters, float64(rep.Iters)/float64(ff.Iters),
			rep.Time/ff.Time, rep.Energy/ff.Energy)
	}
	return &Result{
		ID:     "ablation-tol",
		Title:  "Localized construction tolerance ablation",
		Tables: []*report.Table{t},
		Notes: []string{
			"Expectation: looser tolerances cut construction cost but add solver iterations; the optimum is in the middle (the paper's Fig. 4 observation).",
		},
	}, nil
}

// runAblationDVFS sweeps the parked-core frequency during reconstruction.
func runAblationDVFS(cfg Config) (*Result, error) {
	s, err := cfg.loadSystem("nd24k")
	if err != nil {
		return nil, err
	}
	// The baseline must be computed with the original platform BEFORE the
	// cells launch: the per-rank-count FF cache is keyed by rank count
	// only, so a cell's modified platform must not be the one to fill it.
	ff, err := cfg.faultFree(s)
	if err != nil {
		return nil, err
	}
	plat := *cfg.Plat
	floors := []float64{plat.FreqMax, 1.8, 1.5, plat.FreqMin}
	reps := make([]*core.RunReport, len(floors))
	err = cfg.runCells(len(floors), func(i int) error {
		p := plat
		p.FreqMin = floors[i] // parkOthers parks at FreqMin
		c := cfg
		c.Plat = &p
		rep, err := c.runScheme(s, core.SchemeSpec{Kind: core.LI, DVFS: true}, false)
		reps[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(fmt.Sprintf("DVFS floor ablation: nd24k analog, LI, %d faults", cfg.Faults),
		"Floor (GHz)", "Time/FF", "Energy/FF", "Power/FF")
	for i, floor := range floors {
		rep := reps[i]
		t.AddF(fmt.Sprintf("%.1f", floor), rep.Time/ff.Time, rep.Energy/ff.Energy, rep.AvgPower/ff.AvgPower)
	}
	return &Result{
		ID:     "ablation-dvfs",
		Title:  "DVFS floor frequency ablation",
		Tables: []*report.Table{t},
		Notes: []string{
			"Expectation: lower floors save more energy during reconstruction with no time penalty (the reconstructing core stays at f_max).",
		},
	}, nil
}

// runAblationTMR compares DMR against TMR (extension).
func runAblationTMR(cfg Config) (*Result, error) {
	s, err := cfg.loadSystem("Kuu")
	if err != nil {
		return nil, err
	}
	ff, err := cfg.faultFree(s)
	if err != nil {
		return nil, err
	}
	kinds := []core.SchemeKind{core.RD, core.TMR}
	reps := make([]*core.RunReport, len(kinds))
	err = cfg.runCells(len(kinds), func(i int) error {
		rep, err := cfg.runScheme(s, core.SchemeSpec{Kind: kinds[i]}, false)
		reps[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(fmt.Sprintf("Redundancy degree: Kuu analog, %d faults", cfg.Faults),
		"Scheme", "Iters/FF", "Time/FF", "Power/FF", "Energy/FF")
	for _, rep := range reps {
		t.AddF(rep.Scheme, float64(rep.Iters)/float64(ff.Iters),
			rep.Time/ff.Time, rep.AvgPower/ff.AvgPower, rep.Energy/ff.Energy)
	}
	return &Result{
		ID:     "ablation-tmr",
		Title:  "DMR vs TMR redundancy ablation",
		Tables: []*report.Table{t},
		Notes: []string{
			"Expectation: both match FF iterations; power/energy scale with the redundancy degree (2x, 3x).",
		},
	}, nil
}
