package experiments

import (
	"fmt"
	"math"

	"resilience/internal/core"
	"resilience/internal/fault"
	"resilience/internal/matgen"
	"resilience/internal/report"
)

func init() {
	register("fig3", "Accuracy and cost of recovery mechanisms (Figure 3): Andrews, Poisson faults", runFig3)
	register("fig7", "DVFS power reduction and energy savings (Figure 7)", runFig7)
	register("tab5", "Time/power/energy cost of resilience (Table 5): averages over all matrices", runTab5)
	register("fig8", "Best scheme per workload (Figure 8): x104, nd24k, cvxbqp1", runFig8)
}

// runFig3 reproduces Figure 3: time and energy overhead of CR, RD and FW
// on the Andrews workload under MTBF-driven Poisson faults. The paper
// uses MTBF = 0.1h on a run lasting a sizable fraction of that; the
// simulated run is shorter, so the MTBF is scaled to preserve the
// expected fault count (documented substitution).
func runFig3(cfg Config) (*Result, error) {
	s, err := cfg.loadSystem("Andrews")
	if err != nil {
		return nil, err
	}
	ff, err := cfg.faultFree(s)
	if err != nil {
		return nil, err
	}
	// Expected faults over the run, matching the paper's fault pressure.
	// The MTBF must stay well above the per-fault recovery cost or
	// progress halts (the paper's own Section 6 caveat); tiny-scale runs
	// are short enough that a gentler rate is needed.
	expectedFaults := 4.0
	if cfg.Scale == matgen.Tiny {
		expectedFaults = 1.5
	}
	mtbf := ff.Time / expectedFaults
	limit := int(3*expectedFaults) + 2

	specs := []core.SchemeSpec{
		{Kind: core.CRD, CkptMTBF: mtbf},
		{Kind: core.RD},
		{Kind: core.LI, DVFS: true},
		{Kind: core.ESR},
		{Kind: core.LCR, CkptMTBF: mtbf},
	}
	reps := make([]*core.RunReport, len(specs))
	err = cfg.runCells(len(specs), func(i int) error {
		rc := cfg.baseConfig(s)
		rc.Scheme = specs[i]
		ranks := rc.Ranks
		seed := cfg.Seed
		rc.InjectorFactory = func() fault.Injector {
			return fault.NewPoisson(mtbf, ranks, fault.SNF, seed).WithLimit(limit)
		}
		rep, err := core.Run(rc)
		if err != nil {
			return err
		}
		if !rep.Converged {
			return fmt.Errorf("experiments: fig3 %s did not converge", specs[i].Name())
		}
		reps[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 3: Andrews analog, %d ranks, Poisson MTBF=%.3gs (=%g expected faults)",
			cfg.baseConfig(s).Ranks, mtbf, expectedFaults),
		"Scheme", "RelRes", "Time/FF", "Energy/FF", "Time ovh", "Energy ovh")
	t.AddF("FF", ff.RelRes, 1.0, 1.0, 0.0, 0.0)
	for _, rep := range reps {
		t.AddF(rep.Scheme, rep.RelRes,
			rep.Time/ff.Time, rep.Energy/ff.Energy,
			rep.Time/ff.Time-1, rep.Energy/ff.Energy-1)
	}
	return &Result{
		ID:     "fig3",
		Title:  "Accuracy and cost of different recovery mechanisms (Figure 3)",
		Tables: []*report.Table{t},
		Notes: []string{
			"Paper expectation: every mechanism costs up to ~2x; FW has the least energy overhead (~30% vs ~68% CR, ~63% RD); RD has no time overhead but doubles energy.",
			"Extension rows: ESR persists x/p redundancy every iteration and reconstructs exactly with no rollback; LCR compresses checkpoints 8x and pays a re-convergence penalty per restore.",
		},
	}, nil
}

// runFig7 reproduces Figure 7: (a) the power profile of nd24k under LI
// vs LI-DVFS and the reconstruction-phase power drop; (b) average
// normalized time/power/energy for all matrices with and without DVFS.
func runFig7(cfg Config) (*Result, error) {
	// (a) power profile on nd24k.
	s, err := cfg.loadSystem("nd24k")
	if err != nil {
		return nil, err
	}
	ff, err := cfg.faultFree(s)
	if err != nil {
		return nil, err
	}
	normalPower := ff.AvgPower

	dvfsVariants := []bool{false, true}
	repsA := make([]*core.RunReport, len(dvfsVariants))
	err = cfg.runCells(len(dvfsVariants), func(i int) error {
		rep, err := cfg.runScheme(s, core.SchemeSpec{Kind: core.LI, DVFS: dvfsVariants[i]}, true)
		repsA[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	tA := report.NewTable("Figure 7(a): nd24k analog power profile, LI vs LI-DVFS",
		"Scheme", "Avg power/FF", "Reconstr. power/FF", "Reconstr. windows", "Node power timeline")
	for _, rep := range repsA {
		reconP, nWindows := reconstructionPower(rep)
		timeline := rep.Meter.Timeline(rep.Time / 120)
		watts := make([]float64, len(timeline))
		for i, p := range timeline {
			watts[i] = p.Watts
		}
		tA.AddF(rep.Scheme, rep.AvgPower/normalPower, reconP/normalPower, nWindows,
			report.Sparkline(watts, 60))
	}

	// (b) averages over the whole catalog, one cell per (matrix, scheme).
	type fig7Cell struct{ t, p, e, eres float64 }
	specs := []core.SchemeSpec{
		{Kind: core.LI},
		{Kind: core.LI, DVFS: true},
		{Kind: core.LSI},
		{Kind: core.LSI, DVFS: true},
	}
	names := fig5Matrices()
	cells := make([]fig7Cell, len(names)*len(specs))
	err = cfg.runCells(len(cells), func(i int) error {
		sm, err := cfg.loadSystem(names[i/len(specs)])
		if err != nil {
			return err
		}
		ffm, err := cfg.faultFree(sm)
		if err != nil {
			return err
		}
		rep, err := cfg.runScheme(sm, specs[i%len(specs)], false)
		if err != nil {
			return err
		}
		cells[i] = fig7Cell{
			t:    rep.Time / ffm.Time,
			p:    rep.AvgPower / ffm.AvgPower,
			e:    rep.Energy / ffm.Energy,
			eres: (rep.Energy - ffm.Energy) / ffm.Energy,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	tB := report.NewTable(fmt.Sprintf("Figure 7(b): averages over %d matrices, %d faults", len(names), cfg.Faults),
		"Scheme", "T/FF", "P/FF", "E/FF", "E_res/E_solve")
	for i, spec := range specs {
		var sum fig7Cell
		for mi := range names {
			c := cells[mi*len(specs)+i]
			sum.t += c.t
			sum.p += c.p
			sum.e += c.e
			sum.eres += c.eres
		}
		n := float64(len(names))
		tB.AddF(spec.Name(), sum.t/n, sum.p/n, sum.e/n, sum.eres/n)
	}
	return &Result{
		ID:     "fig7",
		Title:  "Power reduction and energy savings with DVFS (Figure 7)",
		Tables: []*report.Table{tA, tB},
		Notes: []string{
			"Paper expectation: (a) LI-DVFS cuts reconstruction-phase node power ~39-40% (0.75x -> 0.45x of normal) with no performance loss; (b) LI-DVFS and LSI-DVFS keep T and cut E by ~11%/16%.",
		},
	}, nil
}

// reconstructionPower returns the mean cluster power inside reconstruction
// windows and the window count.
func reconstructionPower(rep *core.RunReport) (watts float64, windows int) {
	if rep.Meter == nil {
		return 0, 0
	}
	ws := rep.Meter.PhaseWindows("reconstruct")
	if len(ws) == 0 {
		return 0, 0
	}
	var energy, dur float64
	for _, seg := range rep.Meter.Segments() {
		for _, w := range ws {
			lo := math.Max(seg.Start, w[0])
			hi := math.Min(seg.End(), w[1])
			if hi > lo {
				energy += seg.Watts * (hi - lo)
			}
		}
	}
	for _, w := range ws {
		dur += w[1] - w[0]
	}
	if dur == 0 {
		return 0, len(ws)
	}
	return energy / dur * float64(rep.Redundancy), len(ws)
}

// runTab5 reproduces Table 5: normalized time, power and energy of each
// scheme averaged over the full catalog, with Young-interval CR.
func runTab5(cfg Config) (*Result, error) {
	specs := energySchemeSet()
	type tab5Cell struct{ t, p, e float64 }
	names := fig5Matrices()
	cells := make([]tab5Cell, len(names)*len(specs))
	err := cfg.runCells(len(cells), func(i int) error {
		s, err := cfg.loadSystem(names[i/len(specs)])
		if err != nil {
			return err
		}
		ff, err := cfg.faultFree(s)
		if err != nil {
			return err
		}
		rep, err := cfg.runScheme(s, specs[i%len(specs)], false)
		if err != nil {
			return err
		}
		cells[i] = tab5Cell{
			t: rep.Time / ff.Time,
			p: rep.AvgPower / ff.AvgPower,
			e: rep.Energy / ff.Energy,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(fmt.Sprintf("Table 5: normalized cost of resilience, averaged over %d matrices", len(names)),
		"Scheme", "Time", "Power", "Energy", "E_res")
	t.AddF("FF", 1.0, 1.0, 1.0, 0.0)
	n := float64(len(names))
	for i, spec := range specs {
		var sum tab5Cell
		for mi := range names {
			c := cells[mi*len(specs)+i]
			sum.t += c.t
			sum.p += c.p
			sum.e += c.e
		}
		// E_res normalized by the fault-free energy: E/FF - 1.
		t.AddF(spec.Name(), sum.t/n, sum.p/n, sum.e/n, sum.e/n-1)
	}
	return &Result{
		ID:     "tab5",
		Title:  "Time and energy cost of resilience (Table 5)",
		Tables: []*report.Table{t},
		Notes: []string{
			"Paper expectation: RD {1, 2, 2}; LI-DVFS least energy overhead among FW; CR-M least time overhead after RD; CR-D most time and energy; checkpoint interval from Young's formula.",
			"E_res is the resilience energy overhead normalized by the fault-free energy (E/FF - 1). Extension rows ESR and LCR trade persist traffic and compression error against rollback.",
		},
	}, nil
}

// runFig8 reproduces Figure 8: normalized time, energy and average power
// for the three contrasting workloads.
func runFig8(cfg Config) (*Result, error) {
	matrices := []string{"x104", "nd24k", "cvxbqp1"}
	specs := energySchemeSet()
	reps := make([]*core.RunReport, len(matrices)*len(specs))
	err := cfg.runCells(len(reps), func(i int) error {
		s, err := cfg.loadSystem(matrices[i/len(specs)])
		if err != nil {
			return err
		}
		rep, err := cfg.runScheme(s, specs[i%len(specs)], false)
		reps[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	var tables []*report.Table
	for mi, name := range matrices {
		s, err := cfg.loadSystem(name)
		if err != nil {
			return nil, err
		}
		ff, err := cfg.faultFree(s)
		if err != nil {
			return nil, err
		}
		t := report.NewTable(fmt.Sprintf("Figure 8: %s analog (FF iters=%d)", name, ff.Iters),
			"Scheme", "Time/FF", "Energy/FF", "Power/FF")
		t.AddF("FF", 1.0, 1.0, 1.0)
		for si := range specs {
			rep := reps[mi*len(specs)+si]
			t.AddF(rep.Scheme, rep.Time/ff.Time, rep.Energy/ff.Energy, rep.AvgPower/ff.AvgPower)
		}
		tables = append(tables, t)
	}
	return &Result{
		ID:     "fig8",
		Title:  "Normalized time, energy and power for contrasting matrices (Figure 8)",
		Tables: tables,
		Notes: []string{
			"Paper expectation: best scheme depends on the workload — CR-M for irregular x104, RD for dense-row nd24k, FW for regular cvxbqp1.",
		},
	}, nil
}
