package experiments

import "testing"

// TestObserveDeterminism asserts the rendered experiment output is
// byte-identical with and without a recorder attached to every cell solve
// (the observability purity guarantee exercised across the full matrix;
// fig3 adds Poisson fault injection and recovery to the mix).
func TestObserveDeterminism(t *testing.T) {
	cfg := Default(0) // Tiny
	for _, id := range []string{"fig5", "fig3"} {
		id := id
		t.Run(id, func(t *testing.T) {
			r, ok := Get(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			render := func(observe bool) string {
				c := cfg
				c.Observe = observe
				res, err := r.Run(c)
				if err != nil {
					t.Fatalf("%s with Observe=%t: %v", id, observe, err)
				}
				return res.String()
			}
			plain := render(false)
			observed := render(true)
			if plain != observed {
				t.Errorf("%s output differs with observation:\n--- plain ---\n%s\n--- observed ---\n%s",
					id, plain, observed)
			}
		})
	}
}

// TestObserveResolution checks the precedence of the observation knobs:
// Config.Observe beats RES_OBS beats the off default.
func TestObserveResolution(t *testing.T) {
	if (Config{}).observeEnabled() {
		t.Error("observation must default to off")
	}
	t.Setenv("RES_OBS", "1")
	if !(Config{}).observeEnabled() {
		t.Error("RES_OBS=1 must enable observation")
	}
	t.Setenv("RES_OBS", "0")
	if (Config{}).observeEnabled() {
		t.Error("RES_OBS=0 must leave observation off")
	}
	if !(Config{Observe: true}).observeEnabled() {
		t.Error("Config.Observe must override the environment")
	}
}
