package experiments

import (
	"strings"
	"testing"

	"resilience/internal/chaos"
	"resilience/internal/cluster"
	"resilience/internal/matgen"
	"resilience/internal/solver"
)

// TestSchedulerDeterminismFig3 is the cross-scheduler battery's
// end-to-end leg: the fig3 experiment (Poisson fault injection with
// forward recovery) at ci scale must render byte-identical output under
// the goroutine and cooperative schedulers, with the halo exchange fused
// and overlapped. This covers clocks, energy, iteration counts and
// residuals at once — every one feeds the rendered table.
func TestSchedulerDeterminismFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("ci-scale experiment battery")
	}
	r, ok := Get("fig3")
	if !ok {
		t.Fatal("experiment fig3 not registered")
	}
	for _, overlap := range []bool{false, true} {
		render := func(mode cluster.SchedMode) string {
			cfg := Default(matgen.CI)
			cfg.Overlap = overlap
			cfg.Sched = mode
			res, err := r.Run(cfg)
			if err != nil {
				t.Fatalf("fig3 sched=%v overlap=%t: %v", mode, overlap, err)
			}
			return res.String()
		}
		gor := render(cluster.SchedGoroutine)
		coop := render(cluster.SchedCoop)
		if gor != coop {
			t.Errorf("fig3 output differs between schedulers (overlap=%t):\n--- goroutine ---\n%s\n--- coop ---\n%s",
				overlap, gor, coop)
		}
	}
}

// TestSchedulerDeterminismChaos is the battery's fault leg: a seeded
// chaos campaign — randomized schemes, overlapping fault injections,
// recovery and checkpoint/rollback windows — must produce byte-identical
// report lines (iteration counts, residuals, invariant verdicts) under
// both schedulers. The campaign resolves the mode from RES_SCHED, so
// this also exercises the environment path end to end.
func TestSchedulerDeterminismChaos(t *testing.T) {
	render := func(mode string) string {
		t.Setenv("RES_SCHED", mode)
		var b strings.Builder
		for _, r := range chaos.RunCampaign(chaos.Options{N: 12, Seed: 99, Workers: 2}) {
			if r.Failed() {
				t.Fatalf("RES_SCHED=%s: scenario failed:\n%s", mode, r.Line())
			}
			b.WriteString(r.Line())
			b.WriteByte('\n')
		}
		return b.String()
	}
	gor := render("goroutine")
	coop := render("coop")
	if gor != coop {
		t.Errorf("chaos campaign differs between schedulers:\n--- goroutine ---\n%s\n--- coop ---\n%s", gor, coop)
	}
	if !strings.Contains(gor, "faults=") {
		t.Fatal("campaign report carries no fault counts; the battery exercised nothing")
	}
}

// TestSpMVLayoutDeterminism pins the SELL-C-σ kernels at the experiment
// level: fig5 (the scheme-comparison grid, heavy in reconstruction
// solves) must render byte-identical tables with the CSR and SELL
// layouts, fused and overlapped. The layout resolves through the typed
// Config field; TestSchedResolution-style env precedence is covered in
// the solver package.
func TestSpMVLayoutDeterminism(t *testing.T) {
	r, ok := Get("fig5")
	if !ok {
		t.Fatal("experiment fig5 not registered")
	}
	for _, overlap := range []bool{false, true} {
		render := func(layout solver.SpMVLayout) string {
			cfg := Default(0) // tiny: fig5 at ci is the suite's slowest cell
			cfg.Overlap = overlap
			cfg.SpMV = layout
			res, err := r.Run(cfg)
			if err != nil {
				t.Fatalf("fig5 spmv=%v overlap=%t: %v", layout, overlap, err)
			}
			return res.String()
		}
		csr := render(solver.SpMVCSR)
		sell := render(solver.SpMVSELL)
		if csr != sell {
			t.Errorf("fig5 output differs between SpMV layouts (overlap=%t):\n--- csr ---\n%s\n--- sell ---\n%s",
				overlap, csr, sell)
		}
	}
}
