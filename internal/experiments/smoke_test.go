package experiments

import "testing"

// TestSmokeAllTiny runs every registered experiment at tiny scale.
func TestSmokeAllTiny(t *testing.T) {
	cfg := Default(0) // Tiny
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			res, err := r.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			t.Logf("%s:\n%s", r.ID, res.String())
		})
	}
}
