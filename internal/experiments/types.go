package experiments

import "resilience/internal/sparse"

// sparseCSR aliases the matrix type used throughout the experiments.
type sparseCSR = sparse.CSR
