package experiments

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// The concurrent experiment engine. Every experiment decomposes into
// independent cells — one (matrix, scheme, sweep-point) run each. A cell
// owns its private cluster.Runtime, power.Meter, and RNG, so cells are
// embarrassingly parallel; the only shared state is the read-only system
// cache, which serializes per key with once semantics. Results land in
// caller-owned slices indexed by cell, and tables are assembled
// sequentially afterwards, so the rendered output is byte-identical for
// any worker count.

// workers resolves the engine's concurrency: Config.Workers when set,
// else the RES_WORKERS environment variable, else GOMAXPROCS.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	if env := os.Getenv("RES_WORKERS"); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// overlapEnabled resolves the halo-overlap setting: Config.Overlap when
// set, else the RES_OVERLAP environment variable ("1"/"true"/"on"), else
// off — the seed behavior.
func (c Config) overlapEnabled() bool {
	if c.Overlap {
		return true
	}
	switch os.Getenv("RES_OVERLAP") {
	case "1", "true", "TRUE", "on", "yes":
		return true
	}
	return false
}

// observeEnabled resolves the observability setting: Config.Observe when
// set, else the RES_OBS environment variable ("1"/"true"/"on"), else off.
func (c Config) observeEnabled() bool {
	if c.Observe {
		return true
	}
	switch os.Getenv("RES_OBS") {
	case "1", "true", "TRUE", "on", "yes":
		return true
	}
	return false
}

// runCells executes fn(0..n-1) on the configured worker pool and returns
// the lowest-indexed error, matching what sequential execution would
// report first. With one worker it degrades to a plain loop that stops at
// the first failure.
func (c Config) runCells(n int, fn func(i int) error) error {
	return forEachCell(c.workers(), n, fn)
}

func forEachCell(workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
