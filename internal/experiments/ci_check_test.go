package experiments

import (
	"os"
	"testing"

	"resilience/internal/matgen"
)

// TestCICheck runs selected experiments at CI scale when RES_CI=1.
func TestCICheck(t *testing.T) {
	if os.Getenv("RES_CI") == "" {
		t.Skip("set RES_CI=1 to run CI-scale experiment checks")
	}
	cfg := Default(matgen.CI)
	for _, id := range []string{"tab5"} {
		r, _ := Get(id)
		res, err := r.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		t.Logf("%s:\n%s", id, res.String())
	}
}

// TestPaperScaleCapability verifies the paper-scale generation path end
// to end on the smallest Table 3 matrix when RES_PAPER=1 (it is exact at
// paper size already: bcsstk06 has 420 rows).
func TestPaperScaleCapability(t *testing.T) {
	if os.Getenv("RES_PAPER") == "" {
		t.Skip("set RES_PAPER=1 to exercise paper-scale generation")
	}
	cfg := Default(matgen.Paper)
	cfg.Ranks = 8
	s, err := cfg.loadSystem("bcsstk06")
	if err != nil {
		t.Fatal(err)
	}
	ff, err := cfg.faultFree(s)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.Converged {
		t.Fatalf("paper-scale bcsstk06 did not converge")
	}
}

func TestDefaultConfigs(t *testing.T) {
	for _, sc := range []matgen.Scale{matgen.Tiny, matgen.CI, matgen.Paper} {
		cfg := Default(sc)
		if cfg.Ranks <= 0 || cfg.Tol <= 0 || cfg.Faults != 10 || cfg.Plat == nil {
			t.Errorf("scale %v: bad defaults %+v", sc, cfg)
		}
	}
	if Default(matgen.Paper).Ranks != 192 {
		t.Error("paper scale must use the cluster's 192 cores")
	}
}
