package experiments

import (
	"fmt"

	"resilience/internal/core"
	"resilience/internal/fault"
	"resilience/internal/model"
	"resilience/internal/projection"
	"resilience/internal/report"
)

func init() {
	register("fig1", "Estimated MTBF for exascale systems (Figure 1)", runFig1)
	register("tab6", "Model validation on x104 (Table 6)", runTab6)
	register("fig9", "Weak-scaling projection of resilience cost (Figure 9)", runFig9)
}

// runFig1 reproduces Figure 1: the per-class MTBF projection from a
// petascale to an exascale machine.
func runFig1(Config) (*Result, error) {
	t := report.NewTable(
		fmt.Sprintf("Figure 1: system MTBF per fault class (%d-node petascale vs %d-node 11nm exascale)",
			fault.PetascaleNodes, fault.ExascaleNodes),
		"Class", "Petascale MTBF (h)", "Exascale MTBF (h)", "Exascale MTBF (min)")
	for _, row := range fault.ProjectFig1() {
		t.AddF(row.Class.String(), row.PetascaleHours, row.ExascaleHours, row.ExascaleHours*60)
	}
	t.AddF("combined",
		fault.CombinedSystemMTBF(fault.PetascaleNodes, fault.TechPetascale),
		fault.CombinedSystemMTBF(fault.ExascaleNodes, fault.TechExascale),
		fault.CombinedSystemMTBF(fault.ExascaleNodes, fault.TechExascale)*60)
	return &Result{
		ID:     "fig1",
		Title:  "Estimated MTBF for exascale systems from petascale systems (Figure 1)",
		Tables: []*report.Table{t},
		Notes: []string{
			"Paper expectation: hard-failure MTBF of 1-7 days at petascale shrinks to within an hour at exascale.",
		},
	}, nil
}

// runTab6 reproduces Table 6: analytical-model predictions vs measured
// costs for the x104 workload, everything normalized to FF.
func runTab6(cfg Config) (*Result, error) {
	s, err := cfg.loadSystem("x104")
	if err != nil {
		return nil, err
	}
	ff, err := cfg.faultFree(s)
	if err != nil {
		return nil, err
	}
	base := model.BaseParams(ff)

	// One cell per scheme fit: RD, LI-DVFS, LSI-DVFS, CR-M, CR-D. The CR
	// schemes use a fixed interval so the model knows I_C exactly.
	ckptEvery := 100
	fits := []func() (model.Validation, error){
		func() (model.Validation, error) {
			run, err := cfg.runScheme(s, core.SchemeSpec{Kind: core.RD}, false)
			if err != nil {
				return model.Validation{}, err
			}
			pred, err := model.PredictRD(model.FitRD(ff, 2))
			if err != nil {
				return model.Validation{}, err
			}
			return model.Validate("RD", pred, base, ff, run), nil
		},
	}
	for _, kind := range []core.SchemeKind{core.LI, core.LSI} {
		spec := core.SchemeSpec{Kind: kind, DVFS: true}
		fits = append(fits, func() (model.Validation, error) {
			run, err := cfg.runScheme(s, spec, true)
			if err != nil {
				return model.Validation{}, err
			}
			params, err := model.FitFW(ff, run, cfg.Plat, true)
			if err != nil {
				return model.Validation{}, err
			}
			pred, err := model.PredictFW(params)
			if err != nil {
				return model.Validation{}, err
			}
			return model.Validate(spec.Name(), pred, base, ff, run), nil
		})
	}
	for _, kind := range []core.SchemeKind{core.CRM, core.CRD} {
		spec := core.SchemeSpec{Kind: kind, CkptEvery: ckptEvery}
		fits = append(fits, func() (model.Validation, error) {
			run, err := cfg.runScheme(s, spec, false)
			if err != nil {
				return model.Validation{}, err
			}
			params, err := model.FitCR(ff, run, cfg.Plat, ckptEvery)
			if err != nil {
				return model.Validation{}, err
			}
			pred, err := model.PredictCR(params)
			if err != nil {
				return model.Validation{}, err
			}
			return model.Validate(spec.Name(), pred, base, ff, run), nil
		})
	}
	rows := make([]model.Validation, len(fits))
	err = cfg.runCells(len(fits), func(i int) error {
		v, err := fits[i]()
		rows[i] = v
		return err
	})
	if err != nil {
		return nil, err
	}

	t := report.NewTable("Table 6: model vs experiment, x104 analog, normalized to FF",
		"Scheme", "model T_res", "model P", "model E_res", "meas T_res", "meas P", "meas E_res")
	t.AddF("FF", 0.0, 1.0, 0.0, 0.0, 1.0, 0.0)
	for _, v := range rows {
		t.AddF(v.Scheme, v.ModelTRes, v.ModelP, v.ModelERes, v.MeasTRes, v.MeasP, v.MeasERes)
	}

	return &Result{
		ID:     "tab6",
		Title:  "Validation of the analytical models (Table 6)",
		Tables: []*report.Table{t},
		Notes: []string{
			"Paper expectation: model and measurement agree on ordering; the FW models slightly over-estimate T_res and E_res.",
		},
	}, nil
}

// runFig9 reproduces Figure 9: projected normalized resilience overheads
// under weak scaling with decreasing system MTBF. Measured constants
// (construction time, extra-iteration penalty) are fitted from a run at
// the experimental scale.
func runFig9(cfg Config) (*Result, error) {
	pc := projection.DefaultConfig()
	pc.Plat = cfg.Plat

	// Fit the FW constants from a measured LI-DVFS run on the stencil.
	s, err := cfg.loadSystem("5-point stencil")
	if err != nil {
		return nil, err
	}
	ff, err := cfg.faultFree(s)
	if err != nil {
		return nil, err
	}
	run, err := cfg.runScheme(s, core.SchemeSpec{Kind: core.LI, DVFS: true}, true)
	if err != nil {
		return nil, err
	}
	params, err := model.FitFW(ff, run, cfg.Plat, true)
	if err != nil {
		return nil, err
	}
	pc.ExtraFracPerFault = params.ExtraFracPerFault
	pc.LocalConstSecs = params.TConst
	pc.ItersBase = ff.Iters

	rows, err := projection.Project(pc)
	if err != nil {
		return nil, err
	}
	byScheme := map[string]*report.Table{}
	order := []string{"RD", "CR-D", "CR-M", "FW"}
	for _, sch := range order {
		byScheme[sch] = report.NewTable("Figure 9: "+sch+" (normalized to FF at each size)",
			"#procs", "MTBF (h)", "T_res/T", "E_res/E", "P/P_ff")
	}
	for _, r := range rows {
		byScheme[r.Scheme].AddF(r.N, r.MTBFHours, r.TResNorm, r.EResNorm, r.PNorm)
	}
	tables := make([]*report.Table, 0, len(order))
	for _, sch := range order {
		tables = append(tables, byScheme[sch])
	}
	return &Result{
		ID:     "fig9",
		Title:  "Normalized resilience overhead under weak scaling (Figure 9)",
		Tables: tables,
		Notes: []string{
			"Paper expectation: RD flat; FW overhead grows roughly linearly; CR-D grows fastest; CR-M stays smallest; average power of FW and CR-D drops as recovery time dominates.",
			fmt.Sprintf("FW constants fitted from the 5-point stencil run: t_const=%.3gs, extra-frac/fault=%.3g", pc.LocalConstSecs, pc.ExtraFracPerFault),
		},
	}, nil
}
