package experiments

import (
	"fmt"
	"math"

	"resilience/internal/core"
	"resilience/internal/fault"
	"resilience/internal/matgen"
	"resilience/internal/report"
	"resilience/internal/solver"
)

func init() {
	register("tab3", "Matrix catalog (Table 3): synthetic analogs and fault-free iterations", runTab3)
	register("tab4", "Iterations vs parallelism (Table 4): crystm02, 10 faults", runTab4)
	register("fig5", "Iterations to convergence per matrix (Figure 5): 10 faults, normalized to FF", runFig5)
	register("fig6", "Residual histories (Figure 6): single fault and 10-fault stencil", runFig6)
}

// runTab3 reproduces Table 3: the matrix catalog with measured fault-free
// iteration counts of the synthetic analogs.
func runTab3(cfg Config) (*Result, error) {
	specs := matgen.Catalog()
	type tab3Cell struct {
		rows, nnzPerRow int
		measured        string
	}
	cells := make([]tab3Cell, len(specs))
	err := cfg.runCells(len(specs), func(i int) error {
		spec := specs[i]
		a := spec.Generate(cfg.Scale)
		b, _ := matgen.RHS(a)
		iters, conv := solver.SolveFaultFreeIters(a, b, cfg.Tol, 40*spec.TargetIters(cfg.Scale))
		measured := fmt.Sprintf("%d", iters)
		if !conv {
			measured += " (not converged)"
		}
		cells[i] = tab3Cell{rows: a.Rows, nnzPerRow: a.NNZ() / a.Rows, measured: measured}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 3 analogs at scale "+cfg.Scale.String(),
		"Name", "#Rows(paper)", "#Rows(gen)", "#NNZ/row(paper)", "#NNZ/row(gen)",
		"Kind", "#Iters(paper)", "#Iters(target)", "#Iters(measured)")
	for i, spec := range specs {
		t.AddF(spec.Name, spec.PaperRows, cells[i].rows, spec.NNZPerRow, cells[i].nnzPerRow,
			spec.Kind, spec.PaperIters, spec.TargetIters(cfg.Scale), cells[i].measured)
	}
	return &Result{
		ID:     "tab3",
		Title:  "Matrix properties (Table 3)",
		Tables: []*report.Table{t},
		Notes: []string{
			"SuiteSparse is unavailable offline; analogs match size, sparsity and a conditioning target (see DESIGN.md).",
		},
	}, nil
}

// runTab4 reproduces Table 4: normalized iterations to converge for
// crystm02 under each scheme at several process counts.
func runTab4(cfg Config) (*Result, error) {
	var plist []int
	switch cfg.Scale {
	case matgen.Tiny:
		plist = []int{2, 4, 8}
	case matgen.CI:
		plist = []int{4, 16, 64}
	default:
		plist = []int{4, 16, 64, 256}
	}
	s, err := cfg.loadSystem("crystm02")
	if err != nil {
		return nil, err
	}
	schemes := cfg.schemeSet()
	cols := []string{"#p", "FF"}
	for _, sc := range schemes {
		cols = append(cols, sc.Name())
	}
	norms := make([]float64, len(plist)*len(schemes))
	err = cfg.runCells(len(norms), func(i int) error {
		c := cfg
		c.Ranks = plist[i/len(schemes)]
		ff, err := c.faultFree(s)
		if err != nil {
			return err
		}
		rep, err := c.runScheme(s, schemes[i%len(schemes)], false)
		if err != nil {
			return err
		}
		norms[i] = float64(rep.Iters) / float64(ff.Iters)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 4: normalized iterations, crystm02 analog, 10 faults", cols...)
	for pi, p := range plist {
		row := []any{p, 1.0}
		for si := range schemes {
			row = append(row, norms[pi*len(schemes)+si])
		}
		t.AddF(row...)
	}
	return &Result{
		ID:     "tab4",
		Title:  "Resilience vs parallelization (Table 4)",
		Tables: []*report.Table{t},
		Notes: []string{
			"Paper expectation: per-scheme ratios are constant across process counts; RD≈1, F0/FI worst (~2.2), LI/LSI≈1.44, CR≈1.55.",
		},
	}, nil
}

// fig5Matrices are the Figure 5 workloads: the full Table 3 catalog.
func fig5Matrices() []string {
	names := make([]string, 0, 14)
	for _, s := range matgen.Catalog() {
		names = append(names, s.Name)
	}
	return names
}

// runFig5 reproduces Figure 5: normalized iterations per matrix per
// scheme with 10 faults.
func runFig5(cfg Config) (*Result, error) {
	schemes := cfg.schemeSet()
	cols := []string{"Matrix", "FF(iters)"}
	for _, sc := range schemes {
		cols = append(cols, sc.Name())
	}
	names := fig5Matrices()
	ffIters := make([]int, len(names))
	norms := make([]float64, len(names)*len(schemes))
	err := cfg.runCells(len(norms), func(i int) error {
		s, err := cfg.loadSystem(names[i/len(schemes)])
		if err != nil {
			return err
		}
		ff, err := cfg.faultFree(s)
		if err != nil {
			return err
		}
		if i%len(schemes) == 0 {
			ffIters[i/len(schemes)] = ff.Iters
		}
		rep, err := cfg.runScheme(s, schemes[i%len(schemes)], false)
		if err != nil {
			return err
		}
		norms[i] = float64(rep.Iters) / float64(ff.Iters)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(fmt.Sprintf("Figure 5: normalized iterations, %d ranks, %d faults", cfg.Ranks, cfg.Faults), cols...)
	sums := make([]float64, len(schemes))
	for mi, name := range names {
		row := []any{name, ffIters[mi]}
		for si := range schemes {
			norm := norms[mi*len(schemes)+si]
			sums[si] += norm
			row = append(row, norm)
		}
		t.AddF(row...)
	}
	avg := []any{"average", ""}
	for _, v := range sums {
		avg = append(avg, v/float64(len(names)))
	}
	t.AddF(avg...)
	return &Result{
		ID:     "fig5",
		Title:  "Iterations to convergence per matrix (Figure 5)",
		Tables: []*report.Table{t},
		Notes: []string{
			"Paper expectation: F0/FI worst (~2.5x average), RD lowest (1x), LI/LSI beat CR on regular matrices and degrade toward F0/FI on irregular ones (bcsstk06, ex10hs).",
		},
	}, nil
}

// runFig6 reproduces Figure 6: residual-vs-iteration histories.
func runFig6(cfg Config) (*Result, error) {
	schemes := append([]core.SchemeSpec{{Kind: core.FF}}, cfg.schemeSet()...)

	// (a) one fault at a fixed iteration on a mid-sized regular matrix.
	sA, err := cfg.loadSystem("Kuu")
	if err != nil {
		return nil, err
	}
	ffA, err := cfg.faultFree(sA)
	if err != nil {
		return nil, err
	}
	faultIter := 200
	if faultIter > ffA.Iters/2 {
		faultIter = ffA.Iters / 2
	}
	repsA := make([]*core.RunReport, len(schemes))
	err = cfg.runCells(len(schemes), func(i int) error {
		rep, err := runWithSingleFault(cfg, sA, schemes[i], faultIter)
		repsA[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	tA := report.NewTable(fmt.Sprintf("Figure 6(a): Kuu analog, 1 fault at iteration %d", faultIter),
		"Scheme", "Iters", "Iters/FF", "Residual history (log-scale sparkline)")
	for i, sc := range schemes {
		rep := repsA[i]
		tA.AddF(sc.Name(), rep.Iters, float64(rep.Iters)/float64(ffA.Iters),
			report.Sparkline(logs(rep.History), 60))
	}

	// (b) the 5-point stencil with 10 faults.
	sB, err := cfg.loadSystem("5-point stencil")
	if err != nil {
		return nil, err
	}
	ffB, err := cfg.faultFree(sB)
	if err != nil {
		return nil, err
	}
	repsB := make([]*core.RunReport, len(schemes))
	err = cfg.runCells(len(schemes), func(i int) error {
		rep, err := cfg.runScheme(sB, schemes[i], false)
		repsB[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	tB := report.NewTable(fmt.Sprintf("Figure 6(b): 5-point stencil, %d faults", cfg.Faults),
		"Scheme", "Iters", "Iters/FF", "Residual history (log-scale sparkline)")
	for i, sc := range schemes {
		rep := repsB[i]
		tB.AddF(sc.Name(), rep.Iters, float64(rep.Iters)/float64(ffB.Iters),
			report.Sparkline(logs(rep.History), 60))
	}
	return &Result{
		ID:     "fig6",
		Title:  "Residual histories under faults (Figure 6)",
		Tables: []*report.Table{tA, tB},
		Notes: []string{
			"Paper expectation: RD overlaps FF; F0/FI jump the most at the fault; LI/LSI jump minimally; CR shows a rollback plateau.",
		},
	}, nil
}

// runWithSingleFault runs one scheme with exactly one fault at iter.
func runWithSingleFault(cfg Config, s *system, spec core.SchemeSpec, iter int) (*core.RunReport, error) {
	rc := cfg.baseConfig(s)
	rc.Scheme = spec
	if spec.Kind != core.FF {
		ranks := rc.Ranks
		rc.InjectorFactory = func() fault.Injector {
			return fault.NewSingle(iter, int(cfg.Seed)%ranks, fault.SNF)
		}
		if (spec.Kind == core.CRM || spec.Kind == core.CRD) && spec.CkptEvery == 0 && spec.CkptMTBF == 0 {
			rc.Scheme.CkptEvery = 100
		}
	}
	rep, err := core.Run(rc)
	if err != nil {
		return nil, err
	}
	if !rep.Converged {
		return nil, fmt.Errorf("experiments: %s single-fault run did not converge", spec.Name())
	}
	return rep, nil
}

// logs maps a residual history to log10 for sparkline display.
func logs(h []float64) []float64 {
	out := make([]float64, len(h))
	for i, v := range h {
		if v <= 0 {
			v = 1e-300
		}
		out[i] = math.Log10(v)
	}
	return out
}
