// Package experiments contains one runner per table and figure of the
// paper's evaluation (Section 2.2's Figure 3 through Section 6's Figure
// 9), plus ablation studies of the design choices. Each runner produces
// text tables that mirror what the paper reports, at a configurable
// scale (see internal/matgen.Scale for the scale policy).
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"resilience/internal/cluster"
	"resilience/internal/core"
	"resilience/internal/fault"
	"resilience/internal/matgen"
	"resilience/internal/obs"
	"resilience/internal/platform"
	"resilience/internal/report"
	"resilience/internal/solver"
)

// Config selects the scale and environment all experiments run in.
type Config struct {
	Scale matgen.Scale
	// Ranks is the process count for the solver experiments (the paper
	// uses 256 for iteration studies and 192 cores for energy studies;
	// scaled-down defaults keep runtimes practical — the paper's own
	// Table 4 shows normalized iterations are process-count invariant).
	Ranks int
	Plat  *platform.Platform
	// Tol is the solver tolerance (paper: 1e-12; relaxed at tiny scale).
	Tol float64
	// Faults is the injected fault count for Section 5.2-style runs
	// (paper: 10).
	Faults int
	Seed   int64
	// Workers bounds the experiment engine's cell concurrency. Zero means
	// "use the RES_WORKERS environment variable, else GOMAXPROCS"; one
	// forces sequential execution. Output is byte-identical for any value.
	Workers int
	// Overlap runs every distributed solve with the halo exchange hidden
	// behind the interior SpMV. False means "use the RES_OVERLAP
	// environment variable, else fused" — so all seed tables stay
	// byte-identical by default. Numerics are bitwise-identical either
	// way; modeled time and energy change.
	Overlap bool
	// Observe attaches a fresh, discarded observability recorder to every
	// cell solve. False means "use the RES_OBS environment variable, else
	// off". Rendered output is byte-identical either way — the point is to
	// exercise the purity guarantee under the whole experiment matrix.
	Observe bool
	// Sched selects the cluster execution mode for every cell solve.
	// cluster.SchedAuto (the zero value) means "use the RES_SCHED
	// environment variable, else the goroutine runtime". All rendered
	// tables are byte-identical across modes.
	Sched cluster.SchedMode
	// SpMV selects the local SpMV kernel layout for every cell solve.
	// solver.SpMVAuto (the zero value) means "use the RES_SPMV
	// environment variable, else CSR". All rendered tables are
	// byte-identical across layouts.
	SpMV solver.SpMVLayout
}

// Default returns the standard configuration for a scale.
func Default(scale matgen.Scale) Config {
	cfg := Config{
		Scale:  scale,
		Plat:   platform.Default(),
		Faults: 10,
		Seed:   1,
	}
	switch scale {
	case matgen.Tiny:
		cfg.Ranks = 8
		cfg.Tol = 1e-10
	case matgen.CI:
		cfg.Ranks = 32
		cfg.Tol = 1e-12
	default:
		cfg.Ranks = 192
		cfg.Tol = 1e-12
	}
	return cfg
}

// Result is one experiment's rendered output.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
	Notes  []string
	// Seed is the fault-injection seed the experiment ran with (filled in
	// by the public RunExperiment* entry points). It is not part of the
	// String rendering, so checked-in tables stay byte-identical; CLIs
	// print it alongside so every report names its replay seed.
	Seed int64
}

// String renders the result for terminals and EXPERIMENTS.md.
func (r *Result) String() string {
	s := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		s += "\n" + t.String()
	}
	for _, n := range r.Notes {
		s += "\nnote: " + n + "\n"
	}
	return s
}

// Runner is a registered experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) (*Result, error)
}

var registry []Runner

func register(id, title string, run func(Config) (*Result, error)) {
	registry = append(registry, Runner{ID: id, Title: title, Run: run})
}

// All returns the runners in paper order.
func All() []Runner {
	out := make([]Runner, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return orderOf(out[i].ID) < orderOf(out[j].ID) })
	return out
}

var paperOrder = []string{
	"fig1", "fig3", "fig4", "tab3", "tab4", "fig5", "fig6", "fig7",
	"tab5", "fig8", "tab6", "fig9",
	"ablation-interval", "ablation-tol", "ablation-dvfs", "ablation-tmr",
	"ablation-pcg", "ablation-multilevel", "ablation-sdc", "ablation-pipeline",
	"ablation-construction", "ablation-overlap",
}

func orderOf(id string) int {
	for i, s := range paperOrder {
		if s == id {
			return i
		}
	}
	return len(paperOrder)
}

// Get finds a runner by id.
func Get(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// --- shared run helpers ------------------------------------------------

// system is a generated workload with its cached fault-free baseline.
// Generation and each per-rank-count baseline run exactly once; concurrent
// cells needing the same entry block on the winner instead of holding a
// global lock, so distinct systems generate and solve in parallel.
type system struct {
	once   sync.Once
	genErr error
	spec   matgen.Spec
	a      *coreMatrix
	b      []float64

	mu sync.Mutex
	ff map[ffKey]*ffEntry
}

// ffKey identifies one fault-free baseline variant. Overlap changes the
// modeled time (not the numerics), so overlapped and fused baselines are
// cached separately.
type ffKey struct {
	ranks   int
	overlap bool
}

// ffEntry is one fault-free baseline computed with once semantics.
type ffEntry struct {
	once sync.Once
	rep  *core.RunReport
	err  error
}

// coreMatrix aliases the sparse matrix type without re-importing it in
// every experiment file.
type coreMatrix = sparseCSR

var (
	sysMu    sync.Mutex
	sysCache = map[string]*system{}
)

// loadSystem generates (or returns the cached) analog for a catalog
// matrix at the config's scale. The registry lock is held only for the
// map access; generation itself runs outside it so concurrent cells can
// build distinct systems in parallel.
func (c Config) loadSystem(name string) (*system, error) {
	key := fmt.Sprintf("%s@%s", name, c.Scale)
	sysMu.Lock()
	s, ok := sysCache[key]
	if !ok {
		s = &system{ff: map[ffKey]*ffEntry{}}
		sysCache[key] = s
	}
	sysMu.Unlock()
	scale := c.Scale
	s.once.Do(func() {
		spec, err := matgen.Lookup(name)
		if err != nil {
			s.genErr = err
			return
		}
		s.spec = spec
		s.a = spec.Generate(scale)
		s.b, _ = matgen.RHS(s.a)
	})
	if s.genErr != nil {
		return nil, s.genErr
	}
	return s, nil
}

// baseConfig assembles the core.RunConfig shared by all schemes.
func (c Config) baseConfig(s *system) core.RunConfig {
	ranks := c.Ranks
	if ranks > s.a.Rows/2 {
		ranks = s.a.Rows / 2
	}
	if ranks < 1 {
		ranks = 1
	}
	rc := core.RunConfig{
		A:        s.a,
		B:        s.b,
		Ranks:    ranks,
		Plat:     c.Plat,
		Tol:      c.Tol,
		MaxIters: 40 * s.spec.TargetIters(c.Scale),
		Seed:     c.Seed,
		Overlap:  c.overlapEnabled(),
		Sched:    c.Sched,
		SpMV:     c.SpMV,
	}
	if c.observeEnabled() {
		// One private recorder per cell, discarded with the report: the
		// tables must come out byte-identical whether or not anyone watched.
		rc.Obs = obs.NewRecorder()
	}
	return rc
}

// faultFree returns the cached fault-free distributed baseline, computing
// it exactly once per (system, rank count) even under concurrent cells.
func (c Config) faultFree(s *system) (*core.RunReport, error) {
	rc := c.baseConfig(s)
	key := ffKey{ranks: rc.Ranks, overlap: rc.Overlap}
	s.mu.Lock()
	e, ok := s.ff[key]
	if !ok {
		e = &ffEntry{}
		s.ff[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		r, err := core.Run(rc)
		if err != nil {
			e.err = fmt.Errorf("experiments: FF baseline for %s: %w", s.spec.Name, err)
			return
		}
		if !r.Converged {
			e.err = fmt.Errorf("experiments: FF baseline for %s did not converge (relres %g after %d iters)",
				s.spec.Name, r.RelRes, r.Iters)
			return
		}
		e.rep = r
	})
	return e.rep, e.err
}

// runScheme executes one scheme with the standard evenly-spaced fault
// schedule derived from the fault-free iteration count.
func (c Config) runScheme(s *system, spec core.SchemeSpec, keepSegs bool) (*core.RunReport, error) {
	ff, err := c.faultFree(s)
	if err != nil {
		return nil, err
	}
	rc := c.baseConfig(s)
	rc.Scheme = spec
	rc.KeepSegments = keepSegs
	if spec.Kind != core.FF {
		ffIters := ff.Iters
		nFaults := c.Faults
		ranks := rc.Ranks
		seed := c.Seed
		rc.InjectorFactory = func() fault.Injector {
			return fault.NewSchedule(nFaults, ffIters, ranks, fault.SNF, seed)
		}
		// Young-policy CR needs the failure rate the schedule implies.
		if spec.CkptEvery == 0 &&
			(spec.Kind == core.CRM || spec.Kind == core.CRD || spec.Kind == core.LCR) &&
			spec.CkptMTBF == 0 {
			rc.Scheme.CkptMTBF = ff.Time / float64(nFaults)
		}
	}
	rep, err := core.Run(rc)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", spec.Name(), s.spec.Name, err)
	}
	if !rep.Converged {
		return nil, fmt.Errorf("experiments: %s on %s did not converge (relres %g after %d iters)",
			spec.Name(), s.spec.Name, rep.RelRes, rep.Iters)
	}
	return rep, nil
}

// schemeSet is the paper's standard comparison set for iteration studies.
// The checkpoint interval is the paper's 100 iterations, shrunk at tiny
// scale where fault-free runs are themselves under 100 iterations.
func (c Config) schemeSet() []core.SchemeSpec {
	ckptEvery := 100
	if c.Scale == matgen.Tiny {
		ckptEvery = 10
	}
	return []core.SchemeSpec{
		{Kind: core.RD},
		{Kind: core.F0},
		{Kind: core.FI},
		{Kind: core.LI},
		{Kind: core.LSI},
		{Kind: core.CRD, CkptEvery: ckptEvery},
	}
}

// energySchemeSet is the Section 5.3 comparison set (Table 5), widened
// with the two extension schemes (ESR, LCR) so the comparison tables
// cover the full taxonomy.
func energySchemeSet() []core.SchemeSpec {
	return []core.SchemeSpec{
		{Kind: core.RD},
		{Kind: core.LI, DVFS: true},
		{Kind: core.LSI, DVFS: true},
		{Kind: core.CRM},
		{Kind: core.CRD},
		{Kind: core.ESR},
		{Kind: core.LCR},
	}
}
