// Package trace records structured per-iteration events of a resilient
// solve — iteration number, virtual clock, relative residual, and fault/
// recovery markers — and exports them as CSV for offline analysis. It is
// the machine-readable companion to the residual-history figures
// (Figure 6 of the paper).
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// EventKind classifies a trace event.
type EventKind int

const (
	// Iteration is a regular solver step record.
	Iteration EventKind = iota
	// FaultEvent marks an injected fault.
	FaultEvent
	// RecoveryEvent marks a completed recovery.
	RecoveryEvent
	// CheckpointEvent marks a checkpoint write.
	CheckpointEvent
	// ConvergedEvent marks termination.
	ConvergedEvent
)

var kindNames = [...]string{"iter", "fault", "recovery", "checkpoint", "converged"}

func (k EventKind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
	return kindNames[k]
}

// Event is one trace record.
type Event struct {
	Kind EventKind
	Iter int
	// Rank is the rank the event concerns: the struck rank for fault and
	// recovery events, 0 for the rank-0-owned iteration and convergence
	// records.
	Rank   int
	Clock  float64 // virtual seconds
	RelRes float64 // relative residual at the boundary (0 when unknown)
	// Detail carries kind-specific information (fault description,
	// checkpoint store, ...).
	Detail string
}

// Trace is an append-only, concurrency-safe event log. Rank goroutines
// may append concurrently; rank 0 conventionally owns iteration records
// so logs stay deduplicated.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// Add appends an event.
func (t *Trace) Add(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, e)
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the log.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Filter returns the events of one kind.
func (t *Trace) Filter(kind EventKind) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// WriteCSV emits the full log as CSV with a header row.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "kind,iter,rank,clock,relres,detail"); err != nil {
		return err
	}
	for _, e := range t.Events() {
		detail := e.Detail
		if strings.ContainsAny(detail, ",\"\n") {
			detail = `"` + strings.ReplaceAll(detail, `"`, `""`) + `"`
		}
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%.9g,%.9g,%s\n",
			e.Kind, e.Iter, e.Rank, e.Clock, e.RelRes, detail); err != nil {
			return err
		}
	}
	return nil
}

// ResidualSeries extracts (iter, relres) pairs from the iteration events.
func (t *Trace) ResidualSeries() (iters []int, relres []float64) {
	for _, e := range t.Filter(Iteration) {
		iters = append(iters, e.Iter)
		relres = append(relres, e.RelRes)
	}
	return iters, relres
}
