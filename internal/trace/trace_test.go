package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestAddAndFilter(t *testing.T) {
	tr := New()
	tr.Add(Event{Kind: Iteration, Iter: 0, RelRes: 1})
	tr.Add(Event{Kind: FaultEvent, Iter: 5, Detail: "SNF on rank 2"})
	tr.Add(Event{Kind: Iteration, Iter: 1, RelRes: 0.5})
	if tr.Len() != 3 {
		t.Fatalf("len %d", tr.Len())
	}
	iters := tr.Filter(Iteration)
	if len(iters) != 2 || iters[1].RelRes != 0.5 {
		t.Errorf("filter got %v", iters)
	}
	if len(tr.Filter(CheckpointEvent)) != 0 {
		t.Error("empty filter must be empty")
	}
}

func TestResidualSeries(t *testing.T) {
	tr := New()
	tr.Add(Event{Kind: Iteration, Iter: 0, RelRes: 1})
	tr.Add(Event{Kind: FaultEvent, Iter: 1})
	tr.Add(Event{Kind: Iteration, Iter: 1, RelRes: 0.1})
	is, rs := tr.ResidualSeries()
	if len(is) != 2 || is[1] != 1 || rs[1] != 0.1 {
		t.Errorf("series %v %v", is, rs)
	}
}

func TestWriteCSV(t *testing.T) {
	tr := New()
	tr.Add(Event{Kind: Iteration, Iter: 3, Clock: 0.25, RelRes: 1e-3})
	tr.Add(Event{Kind: FaultEvent, Iter: 4, Rank: 2, Detail: `has,comma and "quote"`})
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "kind,iter,rank,clock,relres,detail\n") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "iter,3,0,0.25,0.001,") {
		t.Errorf("iteration row missing:\n%s", out)
	}
	if !strings.Contains(out, "fault,4,2,") {
		t.Errorf("fault rank column missing:\n%s", out)
	}
	if !strings.Contains(out, `"has,comma and ""quote"""`) {
		t.Errorf("detail quoting wrong:\n%s", out)
	}
}

func TestConcurrentAppend(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Add(Event{Kind: Iteration, Iter: i})
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Errorf("len %d", tr.Len())
	}
}

func TestKindString(t *testing.T) {
	if Iteration.String() != "iter" || ConvergedEvent.String() != "converged" {
		t.Error("kind names")
	}
	if EventKind(99).String() == "iter" {
		t.Error("unknown kind")
	}
}
