package sparse

import (
	"fmt"
	"sort"
)

// Partition describes a 1-D block-row partition of an n x n matrix among P
// processes, as in Figure 2 of the paper. Block p owns rows
// [Starts[p], Starts[p+1]).
type Partition struct {
	N      int
	P      int
	Starts []int // length P+1, Starts[0]=0, Starts[P]=N
}

// NewPartition splits n rows into p nearly-equal contiguous blocks. The
// first n%p blocks receive one extra row.
func NewPartition(n, p int) *Partition {
	if p <= 0 || n < 0 {
		panic(fmt.Sprintf("sparse: invalid partition n=%d p=%d", n, p))
	}
	starts := make([]int, p+1)
	base, extra := n/p, n%p
	for i := 0; i < p; i++ {
		sz := base
		if i < extra {
			sz++
		}
		starts[i+1] = starts[i] + sz
	}
	return &Partition{N: n, P: p, Starts: starts}
}

// Range returns the half-open row range [lo, hi) of block p.
func (pt *Partition) Range(p int) (lo, hi int) {
	return pt.Starts[p], pt.Starts[p+1]
}

// Size returns the number of rows owned by block p.
func (pt *Partition) Size(p int) int { return pt.Starts[p+1] - pt.Starts[p] }

// Owner returns the block that owns global row i.
func (pt *Partition) Owner(i int) int {
	if i < 0 || i >= pt.N {
		panic(fmt.Sprintf("sparse: Owner(%d) out of range [0,%d)", i, pt.N))
	}
	// Binary search over Starts.
	lo, hi := 0, pt.P
	for lo < hi {
		mid := (lo + hi) / 2
		if pt.Starts[mid+1] <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Slice returns the sub-slice of a global vector owned by block p.
func (pt *Partition) Slice(x []float64, p int) []float64 {
	return x[pt.Starts[p]:pt.Starts[p+1]]
}

// RowBlock extracts the row block A_{p,:} of m: the rows owned by block p,
// all columns (global column indexing is preserved).
func (pt *Partition) RowBlock(m *CSR, p int) *CSR {
	lo, hi := pt.Range(p)
	nnz := m.RowPtr[hi] - m.RowPtr[lo]
	b := &CSR{
		Rows:   hi - lo,
		Cols:   m.Cols,
		RowPtr: make([]int, hi-lo+1),
		ColIdx: make([]int, nnz),
		Val:    make([]float64, nnz),
	}
	base := m.RowPtr[lo]
	for i := lo; i <= hi; i++ {
		b.RowPtr[i-lo] = m.RowPtr[i] - base
	}
	copy(b.ColIdx, m.ColIdx[base:base+nnz])
	copy(b.Val, m.Val[base:base+nnz])
	return b
}

// DiagBlock extracts the diagonal block A_{p,p}: rows and columns owned by
// block p, with local (0-based within the block) indexing. For an SPD
// matrix the diagonal block is itself SPD, which the LI recovery scheme
// relies on.
func (pt *Partition) DiagBlock(m *CSR, p int) *CSR {
	lo, hi := pt.Range(p)
	b := NewCSR(hi-lo, hi-lo, 0)
	for i := lo; i < hi; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if j >= lo && j < hi {
				b.ColIdx = append(b.ColIdx, j-lo)
				b.Val = append(b.Val, m.Val[k])
			}
		}
		b.RowPtr[i-lo+1] = len(b.Val)
	}
	return b
}

// OffDiagBlock extracts the off-diagonal part of row block p: rows owned
// by p, all columns NOT owned by p, with global column indexing. It is
// used to form y = b_p - sum_{j != p} A_{p,j} x_j in LI recovery (Eq. 19).
func (pt *Partition) OffDiagBlock(m *CSR, p int) *CSR {
	lo, hi := pt.Range(p)
	b := NewCSR(hi-lo, m.Cols, 0)
	for i := lo; i < hi; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if j < lo || j >= hi {
				b.ColIdx = append(b.ColIdx, j)
				b.Val = append(b.Val, m.Val[k])
			}
		}
		b.RowPtr[i-lo+1] = len(b.Val)
	}
	return b
}

// ColBlock extracts the column block A_{:,p}: all rows, columns owned by
// block p, with local column indexing. For LSI (Eq. 18/20) this is the
// least-squares operator. For symmetric A it equals RowBlock(m, p)
// transposed, which the optimized LSI path exploits (Eq. 21).
func (pt *Partition) ColBlock(m *CSR, p int) *CSR {
	lo, hi := pt.Range(p)
	b := NewCSR(m.Rows, hi-lo, 0)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if j >= lo && j < hi {
				b.ColIdx = append(b.ColIdx, j-lo)
				b.Val = append(b.Val, m.Val[k])
			}
		}
		b.RowPtr[i+1] = len(b.Val)
	}
	return b
}

// HaloCols returns the sorted global column indices referenced by the row
// block of p that are NOT owned by p. These are the remote x entries a
// process must receive before its local SpMV — the communication pattern
// of distributed CG.
func (pt *Partition) HaloCols(m *CSR, p int) []int {
	lo, hi := pt.Range(p)
	seen := make(map[int]struct{})
	for i := lo; i < hi; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if j < lo || j >= hi {
				seen[j] = struct{}{}
			}
		}
	}
	cols := make([]int, 0, len(seen))
	for j := range seen {
		cols = append(cols, j)
	}
	sort.Ints(cols)
	return cols
}
