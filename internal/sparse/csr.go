// Package sparse implements compressed sparse row (CSR) and coordinate
// (COO) matrices, the kernels CG needs (SpMV, transpose-free symmetric
// products), block-row partitioning for distributed solves, and Matrix
// Market I/O.
//
// The block-row partition mirrors Figure 2 of the paper: matrix A and
// vectors x, b are split into contiguous row blocks, one per process. A
// process owns A_{p_i,:} (its row block), the diagonal block A_{p_i,p_i},
// and the sub-vectors x_{p_i}, b_{p_i}.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row format.
//
// RowPtr has length Rows+1; the column indices and values of row i are
// ColIdx[RowPtr[i]:RowPtr[i+1]] and Val[RowPtr[i]:RowPtr[i+1]]. Column
// indices within a row are strictly increasing.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NewCSR allocates an empty Rows x Cols matrix with capacity for nnz
// non-zeros.
func NewCSR(rows, cols, nnz int) *CSR {
	return &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int, rows+1),
		ColIdx: make([]int, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// Dims returns (rows, cols).
func (m *CSR) Dims() (int, int) { return m.Rows, m.Cols }

// At returns the value at (i, j), zero if not stored. It is O(log nnz(i)).
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("sparse: At(%d,%d) out of bounds for %dx%d", i, j, m.Rows, m.Cols))
	}
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	cols := m.ColIdx[lo:hi]
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return m.Val[lo+k]
	}
	return 0
}

// Row returns the column indices and values of row i, aliasing internal
// storage. Callers must not modify the column indices.
func (m *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// The SpMV kernels below hoist every per-element bounds check out of the
// inner loop: ranging over the row's column slice bounds k and c, and
// re-slicing vals to len(cols) proves vals[k] safe. The accumulator is a
// single in-order chain, so results are bitwise-identical to the naive
// scalar loop (Go never reassociates floating-point additions). A 4-way
// unrolled variant was measured slower: with one accumulator the adds
// form a dependency chain the CPU cannot pipeline, so unrolling only
// adds loop-body overhead — the win is entirely in the hoisting.

// MulVec computes y = A*x. y must have length Rows and x length Cols.
func (m *CSR) MulVec(y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVec dims %dx%d with len(x)=%d len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	rowPtr := m.RowPtr
	for i := range y {
		lo, hi := rowPtr[i], rowPtr[i+1]
		cols := m.ColIdx[lo:hi]
		vals := m.Val[lo:hi]
		vals = vals[:len(cols)]
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] = s
	}
}

// MulVecAdd computes y += A*x.
func (m *CSR) MulVecAdd(y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVecAdd dims %dx%d with len(x)=%d len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	rowPtr := m.RowPtr
	for i := range y {
		lo, hi := rowPtr[i], rowPtr[i+1]
		cols := m.ColIdx[lo:hi]
		vals := m.Val[lo:hi]
		vals = vals[:len(cols)]
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] += s
	}
}

// MulTransVecAdd computes y += Aᵀ*x. y must have length Cols, x length Rows.
func (m *CSR) MulTransVecAdd(y, x []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("sparse: MulTransVecAdd dims %dx%d with len(x)=%d len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		cols := m.ColIdx[lo:hi]
		vals := m.Val[lo:hi]
		vals = vals[:len(cols)]
		for k, c := range cols {
			y[c] += vals[k] * xi
		}
	}
}

// MulTransVec computes y = Aᵀ*x.
func (m *CSR) MulTransVec(y, x []float64) {
	for i := range y {
		y[i] = 0
	}
	m.MulTransVecAdd(y, x)
}

// Diag returns the main diagonal as a dense vector (zeros where absent).
func (m *CSR) Diag() []float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// Transpose returns Aᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int, m.Cols+1),
		ColIdx: make([]int, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	// Count entries per column.
	for _, j := range m.ColIdx {
		t.RowPtr[j+1]++
	}
	for j := 0; j < m.Cols; j++ {
		t.RowPtr[j+1] += t.RowPtr[j]
	}
	next := make([]int, m.Cols)
	copy(next, t.RowPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			pos := next[j]
			t.ColIdx[pos] = i
			t.Val[pos] = m.Val[k]
			next[j]++
		}
	}
	return t
}

// IsSymmetric reports whether the matrix is symmetric to within tol in a
// relative sense: |a_ij - a_ji| <= tol * max(|a_ij|, |a_ji|, 1).
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	t := m.Transpose()
	if t.NNZ() != m.NNZ() {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		tlo := t.RowPtr[i]
		if hi-lo != t.RowPtr[i+1]-tlo {
			return false
		}
		for k := lo; k < hi; k++ {
			tk := tlo + (k - lo)
			if m.ColIdx[k] != t.ColIdx[tk] {
				return false
			}
			a, b := m.Val[k], t.Val[tk]
			scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
			if math.Abs(a-b) > tol*scale {
				return false
			}
		}
	}
	return true
}

// GershgorinBounds returns lower and upper bounds on the eigenvalues from
// Gershgorin's circle theorem. For SPD matrices lower may still come out
// negative; it is a bound, not an estimate.
func (m *CSR) GershgorinBounds() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < m.Rows; i++ {
		var center, radius float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.ColIdx[k] == i {
				center = m.Val[k]
			} else {
				radius += math.Abs(m.Val[k])
			}
		}
		if c := center - radius; c < lo {
			lo = c
		}
		if c := center + radius; c > hi {
			hi = c
		}
	}
	if m.Rows == 0 {
		return 0, 0
	}
	return lo, hi
}

// Clone returns a deep copy.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int, len(m.RowPtr)),
		ColIdx: make([]int, len(m.ColIdx)),
		Val:    make([]float64, len(m.Val)),
	}
	copy(c.RowPtr, m.RowPtr)
	copy(c.ColIdx, m.ColIdx)
	copy(c.Val, m.Val)
	return c
}

// Scale multiplies every stored value by alpha in place.
func (m *CSR) Scale(alpha float64) {
	for i := range m.Val {
		m.Val[i] *= alpha
	}
}

// SpMVFlops returns the flop count of one SpMV with this matrix
// (a multiply and an add per stored entry).
func (m *CSR) SpMVFlops() int64 { return 2 * int64(m.NNZ()) }

// Validate checks structural invariants and returns a descriptive error if
// any are violated. It is used by tests and by Matrix Market loading.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("sparse: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	if m.RowPtr[m.Rows] != len(m.Val) || len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("sparse: nnz mismatch: RowPtr end %d, ColIdx %d, Val %d",
			m.RowPtr[m.Rows], len(m.ColIdx), len(m.Val))
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
		prev := -1
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if j < 0 || j >= m.Cols {
				return fmt.Errorf("sparse: column %d out of range in row %d", j, i)
			}
			if j <= prev {
				return fmt.Errorf("sparse: row %d columns not strictly increasing at %d", i, j)
			}
			prev = j
		}
	}
	return nil
}

// String returns a short description, e.g. "CSR 420x420 nnz=7860".
func (m *CSR) String() string {
	return fmt.Sprintf("CSR %dx%d nnz=%d", m.Rows, m.Cols, m.NNZ())
}
