package sparse

import (
	"testing"
)

// decodeMatrix builds a small COO matrix plus input vectors from fuzz
// bytes. All values are small integers, so every sum below is exact in
// float64 and reference comparisons can demand bitwise equality without
// worrying about accumulation order.
func decodeMatrix(data []byte) (rows, cols int, coo *COO, dense [][]float64, x, xt []float64, ok bool) {
	if len(data) < 2 {
		return 0, 0, nil, nil, nil, nil, false
	}
	rows = 1 + int(data[0])%8
	cols = 1 + int(data[1])%8
	data = data[2:]
	coo = NewCOO(rows, cols)
	dense = make([][]float64, rows)
	for i := range dense {
		dense[i] = make([]float64, cols)
	}
	for len(data) >= 3 {
		i := int(data[0]) % rows
		j := int(data[1]) % cols
		v := float64(int8(data[2]))
		coo.Add(i, j, v)
		dense[i][j] += v
		data = data[3:]
	}
	x = make([]float64, cols)
	xt = make([]float64, rows)
	for j := range x {
		x[j] = float64(j%5 - 2)
	}
	for i := range xt {
		xt[i] = float64(i%7 - 3)
	}
	return rows, cols, coo, dense, x, xt, true
}

// FuzzCSRMulVec checks COO→CSR construction and the bounds-check-hoisted
// SpMV kernels against a dense reference. Duplicate COO entries must sum;
// the produced CSR must pass its structural validator; MulVec and
// MulTransVec must agree with the dense product bitwise (all values are
// exact small integers).
func FuzzCSRMulVec(f *testing.F) {
	f.Add([]byte{4, 4, 0, 0, 1, 1, 2, 3, 3, 1, 255})
	f.Add([]byte{1, 1, 0, 0, 127})
	f.Add([]byte{8, 8, 0, 7, 1, 7, 0, 2, 3, 3, 128, 0, 7, 1, 0, 7, 1}) // duplicates
	f.Add([]byte{2, 3})                                                // empty matrix
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, cols, coo, dense, x, xt, ok := decodeMatrix(data)
		if !ok {
			return
		}
		m := coo.ToCSR()
		if err := m.Validate(); err != nil {
			t.Fatalf("ToCSR produced invalid CSR: %v", err)
		}
		if m.Rows != rows || m.Cols != cols {
			t.Fatalf("ToCSR dims %dx%d, want %dx%d", m.Rows, m.Cols, rows, cols)
		}
		// At must reproduce the summed dense entries.
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if got := m.At(i, j); got != dense[i][j] {
					t.Fatalf("At(%d,%d) = %g, dense reference %g", i, j, got, dense[i][j])
				}
			}
		}
		// y = A x against the dense reference.
		y := make([]float64, rows)
		m.MulVec(y, x)
		for i := 0; i < rows; i++ {
			var want float64
			for j := 0; j < cols; j++ {
				want += dense[i][j] * x[j]
			}
			if y[i] != want {
				t.Fatalf("MulVec row %d = %g, dense reference %g", i, y[i], want)
			}
		}
		// y = A' xt against the dense reference.
		yt := make([]float64, cols)
		m.MulTransVec(yt, xt)
		for j := 0; j < cols; j++ {
			var want float64
			for i := 0; i < rows; i++ {
				want += dense[i][j] * xt[i]
			}
			if yt[j] != want {
				t.Fatalf("MulTransVec col %d = %g, dense reference %g", j, yt[j], want)
			}
		}
		// MulVecAdd accumulates: y += A x doubles a fresh product.
		y2 := make([]float64, rows)
		m.MulVecAdd(y2, x)
		m.MulVecAdd(y2, x)
		for i := range y2 {
			if y2[i] != 2*y[i] {
				t.Fatalf("MulVecAdd row %d accumulated %g, want %g", i, y2[i], 2*y[i])
			}
		}
	})
}

// FuzzPartition checks the block-row partitioner's invariants for any
// (n, p): contiguous coverage, balanced sizes (difference at most one),
// and Owner/Range/Slice consistency.
func FuzzPartition(f *testing.F) {
	f.Add(uint16(1), uint16(1))
	f.Add(uint16(64), uint16(7))
	f.Add(uint16(1000), uint16(32))
	f.Add(uint16(5), uint16(5))
	f.Fuzz(func(t *testing.T, nRaw, pRaw uint16) {
		n := 1 + int(nRaw)%2048
		p := 1 + int(pRaw)%n
		pt := NewPartition(n, p)
		if len(pt.Starts) != p+1 || pt.Starts[0] != 0 || pt.Starts[p] != n {
			t.Fatalf("Starts must run 0..%d over %d blocks, got %v", n, p, pt.Starts)
		}
		minSz, maxSz := n, 0
		for r := 0; r < p; r++ {
			lo, hi := pt.Range(r)
			if lo != pt.Starts[r] || hi != pt.Starts[r+1] || hi < lo {
				t.Fatalf("Range(%d) = [%d, %d) disagrees with Starts %v", r, lo, hi, pt.Starts)
			}
			sz := pt.Size(r)
			if sz != hi-lo {
				t.Fatalf("Size(%d) = %d, Range says %d", r, sz, hi-lo)
			}
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			x := make([]float64, n)
			if got := len(pt.Slice(x, r)); got != sz {
				t.Fatalf("Slice(%d) has %d elements, want %d", r, got, sz)
			}
		}
		if maxSz-minSz > 1 {
			t.Fatalf("unbalanced partition: block sizes span [%d, %d]", minSz, maxSz)
		}
		for i := 0; i < n; i++ {
			r := pt.Owner(i)
			lo, hi := pt.Range(r)
			if i < lo || i >= hi {
				t.Fatalf("Owner(%d) = %d but Range(%d) = [%d, %d)", i, r, r, lo, hi)
			}
		}
	})
}
