package sparse

import (
	"fmt"
	"math"
	"sort"
)

// MaxSELLC is the largest supported SELL chunk height. The SpMV kernel
// keeps one accumulator per lane in a fixed-size stack array, so the
// chunk height is bounded at compile time; 8 lanes of float64 fill one
// cache line of accumulators.
const MaxSELLC = 8

// Default SELL shape: 8-row chunks, 64-row sorting windows. C=8 matches
// the accumulator register budget; sigma=64 is wide enough to group the
// equal-length rows of stencil matrices into uniform chunks while keeping
// the permutation local (a row moves at most 63 slots from home).
const (
	DefaultSELLC     = 8
	DefaultSELLSigma = 64
)

// SELL is a sparse matrix in SELL-C-σ format (sliced ELLPACK with sorted
// windows; Kreutzer et al., SIAM J. Sci. Comput. 36(5), 2014): rows are
// grouped into chunks of C, each chunk is stored column-major and padded
// to its longest row, and rows are permuted within σ-row windows —
// longest first — so the rows sharing a chunk have similar lengths and
// padding stays small.
//
// Bitwise contract with CSR: each row's entries are stored in their CSR
// order and accumulated left to right into that row's own accumulator, so
// MulVec/MulVecAdd produce exactly CSR.MulVec/MulVecAdd's bits. The σ
// permutation moves only whole rows; OutRow carries the inverse map, so
// results land at their original CSR row positions and callers never see
// the permutation. Padding slots are never read by the kernels (the
// active-lane prefix excludes them), so pad values cannot leak into
// results even for NaN/Inf inputs.
type SELL struct {
	Rows, Cols int
	C          int // chunk height (rows per chunk), 1..MaxSELLC
	Sigma      int // sorting window height, a multiple of C

	// ChunkOff[ch] is the offset of chunk ch in ColIdx/Val; chunk ch
	// occupies [ChunkOff[ch], ChunkOff[ch+1]) = C * width(ch) slots.
	ChunkOff []int32
	// OutRow[ch*C+r] is the original row stored in lane r of chunk ch,
	// or -1 for a padding lane (only the tail of the last chunk). Pads
	// are trailing within their chunk.
	OutRow []int32
	// LaneLen[ch*C+r] is lane r's entry count. Within a chunk lanes are
	// sorted longest first, so for any entry column j the active lanes
	// form a prefix.
	LaneLen []int32

	// ColIdx/Val are the chunk-local column-major entry arrays: entry j
	// of lane r in chunk ch lives at ChunkOff[ch] + j*C + r. Slots past
	// a lane's length are padding (zero value, column 0), present in
	// storage but never read.
	ColIdx []uint32
	Val    []float64

	nnz int
}

// NewSELLFromCSR converts m to SELL-C-σ. The identity OutRow maps lane
// results straight back to m's row order. sigma is rounded up to a
// multiple of c so chunks never straddle sorting windows.
func NewSELLFromCSR(m *CSR, c, sigma int) *SELL {
	return NewSELLFromRows(m.Rows, m.Cols, m.RowPtr, m.ColIdx, m.Val, nil, c, sigma)
}

// NewSELLFromRows builds a SELL operator over an arbitrary packed row
// set in CSR-shaped arrays: row i's entries are colIdx[rowPtr[i]:
// rowPtr[i+1]] / val[...], and its result is written to y[outRow[i]]
// (outRow nil means the identity). This is the constructor the solver's
// interior/boundary row subsets use: their packed blocks already carry a
// scatter target per row, which composes with the σ permutation into a
// single indirection.
func NewSELLFromRows(rows, cols int, rowPtr, colIdx []int, val []float64, outRow []int, c, sigma int) *SELL {
	if c < 1 || c > MaxSELLC {
		panic(fmt.Sprintf("sparse: SELL chunk height %d outside 1..%d", c, MaxSELLC))
	}
	if sigma < 1 {
		panic(fmt.Sprintf("sparse: SELL sigma %d < 1", sigma))
	}
	sigma = (sigma + c - 1) / c * c
	if rows < 0 || cols < 0 || len(rowPtr) != rows+1 {
		panic(fmt.Sprintf("sparse: SELL over %d rows with %d row offsets", rows, len(rowPtr)))
	}
	if cols > math.MaxUint32 {
		panic(fmt.Sprintf("sparse: SELL column count %d overflows uint32 indices", cols))
	}
	if outRow != nil && len(outRow) != rows {
		panic(fmt.Sprintf("sparse: SELL outRow length %d, want %d", len(outRow), rows))
	}

	// σ permutation: within each window of sigma rows, stable-sort by
	// descending length. Stability makes the layout a pure function of
	// the row lengths, and equal-length runs (the common stencil case)
	// keep their original order.
	perm := make([]int32, rows)
	for i := range perm {
		perm[i] = int32(i)
	}
	rowLen := func(i int32) int { return rowPtr[i+1] - rowPtr[i] }
	for w0 := 0; w0 < rows; w0 += sigma {
		hi := w0 + sigma
		if hi > rows {
			hi = rows
		}
		win := perm[w0:hi]
		sort.SliceStable(win, func(a, b int) bool { return rowLen(win[a]) > rowLen(win[b]) })
	}

	nChunks := (rows + c - 1) / c
	s := &SELL{
		Rows: rows, Cols: cols, C: c, Sigma: sigma,
		ChunkOff: make([]int32, nChunks+1),
		OutRow:   make([]int32, nChunks*c),
		LaneLen:  make([]int32, nChunks*c),
		nnz:      rowPtr[rows],
	}
	size := 0
	for ch := 0; ch < nChunks; ch++ {
		width := 0
		for r := 0; r < c; r++ {
			slot := ch*c + r
			if i := ch*c + r; i < rows {
				row := perm[i]
				if outRow != nil {
					s.OutRow[slot] = int32(outRow[row])
				} else {
					s.OutRow[slot] = row
				}
				n := rowLen(row)
				s.LaneLen[slot] = int32(n)
				if n > width {
					width = n
				}
			} else {
				s.OutRow[slot] = -1
			}
		}
		size += c * width
		s.ChunkOff[ch+1] = int32(size)
	}
	s.ColIdx = make([]uint32, size)
	s.Val = make([]float64, size)
	for ch := 0; ch < nChunks; ch++ {
		base := int(s.ChunkOff[ch])
		for r := 0; r < c; r++ {
			i := ch*c + r
			if i >= rows {
				break
			}
			row := perm[i]
			lo := rowPtr[row]
			for j := 0; j < rowLen(row); j++ {
				s.ColIdx[base+j*c+r] = uint32(colIdx[lo+j])
				s.Val[base+j*c+r] = val[lo+j]
			}
		}
	}
	return s
}

// NNZ returns the number of stored (non-padding) entries.
func (s *SELL) NNZ() int { return s.nnz }

// SpMVFlops returns the flop count of one SpMV: a multiply and an add
// per stored entry, identical to the source CSR's count — padding is
// layout, not work, so the virtual-time cost stream is unchanged by the
// format.
func (s *SELL) SpMVFlops() int64 { return 2 * int64(s.nnz) }

// MulVec computes y[OutRow[lane]] = row · x for every lane; with the
// identity OutRow that is y = A*x in original row order.
func (s *SELL) MulVec(y, x []float64) {
	if len(x) != s.Cols {
		panic(fmt.Sprintf("sparse: SELL MulVec %dx%d with len(x)=%d", s.Rows, s.Cols, len(x)))
	}
	s.mulVec(y, x, false)
}

// MulVecAdd computes y[OutRow[lane]] += row · x for every lane.
func (s *SELL) MulVecAdd(y, x []float64) {
	if len(x) != s.Cols {
		panic(fmt.Sprintf("sparse: SELL MulVecAdd %dx%d with len(x)=%d", s.Rows, s.Cols, len(x)))
	}
	s.mulVec(y, x, true)
}

// mulVec is the SELL kernel. Per chunk it walks entry columns j-major
// with one accumulator per lane: the C rows of a chunk advance in
// lockstep, turning the CSR kernel's single serial dependency chain into
// C independent chains the CPU can pipeline, while each row's own chain
// keeps its CSR order (bitwise-identical sums). The active-lane count
// only shrinks as j grows (lanes are sorted longest first), so padding
// is excluded by slicing, not tested per element.
func (s *SELL) mulVec(y, x []float64, add bool) {
	c := s.C
	for ch := 0; ch+1 < len(s.ChunkOff); ch++ {
		base := int(s.ChunkOff[ch])
		width := (int(s.ChunkOff[ch+1]) - base) / c
		lens := s.LaneLen[ch*c : ch*c+c]
		var acc [MaxSELLC]float64
		if c == MaxSELLC && width > 0 && int(lens[MaxSELLC-1]) == width {
			// Uniform full chunk — the dominant case after σ-sorting a
			// stencil matrix: every lane is active for every j, so the
			// active-prefix scan and the slice re-derivation drop out and
			// the fixed-size array views eliminate the bounds checks.
			// width > 0 with a full shortest lane implies no pad lanes
			// (pads are empty), so every OutRow below is a real row.
			// Named scalar accumulators stay in registers across the j
			// loop (an indexed array would bounce through the stack),
			// and the unrolled body exposes 8 independent madd chains.
			var a0, a1, a2, a3, a4, a5, a6, a7 float64
			for j := 0; j < width; j++ {
				off := base + j*MaxSELLC
				cols := (*[MaxSELLC]uint32)(s.ColIdx[off : off+MaxSELLC])
				vals := (*[MaxSELLC]float64)(s.Val[off : off+MaxSELLC])
				a0 += vals[0] * x[cols[0]]
				a1 += vals[1] * x[cols[1]]
				a2 += vals[2] * x[cols[2]]
				a3 += vals[3] * x[cols[3]]
				a4 += vals[4] * x[cols[4]]
				a5 += vals[5] * x[cols[5]]
				a6 += vals[6] * x[cols[6]]
				a7 += vals[7] * x[cols[7]]
			}
			acc[0], acc[1], acc[2], acc[3] = a0, a1, a2, a3
			acc[4], acc[5], acc[6], acc[7] = a4, a5, a6, a7
			outs := (*[MaxSELLC]int32)(s.OutRow[ch*MaxSELLC : ch*MaxSELLC+MaxSELLC])
			if add {
				for r, row := range outs {
					y[row] += acc[r]
				}
			} else {
				for r, row := range outs {
					y[row] = acc[r]
				}
			}
			continue
		}
		act := c
		for j := 0; j < width; j++ {
			for int(lens[act-1]) <= j {
				act--
			}
			off := base + j*c
			cols := s.ColIdx[off : off+act]
			vals := s.Val[off : off+act]
			vals = vals[:len(cols)]
			for r, ci := range cols {
				acc[r] += vals[r] * x[ci]
			}
		}
		outs := s.OutRow[ch*c : ch*c+c]
		for r, row := range outs {
			if row < 0 {
				break
			}
			if add {
				y[row] += acc[r]
			} else {
				y[row] = acc[r]
			}
		}
	}
}

// Validate checks the structural invariants and returns a descriptive
// error if any are violated.
func (s *SELL) Validate() error {
	if s.C < 1 || s.C > MaxSELLC {
		return fmt.Errorf("sparse: SELL chunk height %d outside 1..%d", s.C, MaxSELLC)
	}
	if s.Sigma < s.C || s.Sigma%s.C != 0 {
		return fmt.Errorf("sparse: SELL sigma %d not a positive multiple of C=%d", s.Sigma, s.C)
	}
	nChunks := (s.Rows + s.C - 1) / s.C
	if len(s.ChunkOff) != nChunks+1 || len(s.OutRow) != nChunks*s.C || len(s.LaneLen) != nChunks*s.C {
		return fmt.Errorf("sparse: SELL table sizes %d/%d/%d for %d chunks of %d",
			len(s.ChunkOff), len(s.OutRow), len(s.LaneLen), nChunks, s.C)
	}
	if nChunks > 0 && s.ChunkOff[0] != 0 {
		return fmt.Errorf("sparse: SELL ChunkOff[0] = %d, want 0", s.ChunkOff[0])
	}
	nnz := 0
	for ch := 0; ch < nChunks; ch++ {
		ext := int(s.ChunkOff[ch+1]) - int(s.ChunkOff[ch])
		if ext < 0 || ext%s.C != 0 {
			return fmt.Errorf("sparse: SELL chunk %d extent %d not a multiple of C", ch, ext)
		}
		width := ext / s.C
		prev := int32(math.MaxInt32)
		for r := 0; r < s.C; r++ {
			slot := ch*s.C + r
			n := s.LaneLen[slot]
			if n > prev {
				return fmt.Errorf("sparse: SELL chunk %d lane lengths not descending at lane %d", ch, r)
			}
			prev = n
			if int(n) > width {
				return fmt.Errorf("sparse: SELL chunk %d lane %d length %d exceeds width %d", ch, r, n, width)
			}
			if s.OutRow[slot] < 0 && n != 0 {
				return fmt.Errorf("sparse: SELL chunk %d pad lane %d has %d entries", ch, r, n)
			}
			nnz += int(n)
		}
	}
	if nnz != s.nnz {
		return fmt.Errorf("sparse: SELL lane lengths sum to %d, recorded nnz %d", nnz, s.nnz)
	}
	if int(s.ChunkOff[nChunks]) != len(s.Val) || len(s.ColIdx) != len(s.Val) {
		return fmt.Errorf("sparse: SELL storage %d/%d vs ChunkOff end %d",
			len(s.ColIdx), len(s.Val), s.ChunkOff[nChunks])
	}
	for i, ci := range s.ColIdx {
		if int(ci) >= s.Cols && !(ci == 0 && s.Cols == 0) {
			return fmt.Errorf("sparse: SELL column %d out of range at slot %d", ci, i)
		}
	}
	return nil
}

// String returns a short description, e.g. "SELL-8-64 420x420 nnz=7860".
func (s *SELL) String() string {
	return fmt.Sprintf("SELL-%d-%d %dx%d nnz=%d", s.C, s.Sigma, s.Rows, s.Cols, s.nnz)
}
