package sparse

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Scalar reference kernels: the pre-optimization implementations, kept
// here verbatim so the hoisted loops can be checked for bitwise identity.

func refMulVec(m *CSR, y, x []float64) {
	for i := 0; i < m.Rows; i++ {
		var s float64
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
}

func refMulVecAdd(m *CSR, y, x []float64) {
	for i := 0; i < m.Rows; i++ {
		var s float64
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] += s
	}
}

func refMulTransVecAdd(m *CSR, y, x []float64) {
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			y[m.ColIdx[k]] += m.Val[k] * xi
		}
	}
}

// randCSR builds a random rows x cols matrix whose rows have between 0 and
// maxPerRow entries, so row lengths hit every short-row shape.
func randCSR(rng *rand.Rand, rows, cols, maxPerRow int) *CSR {
	m := NewCSR(rows, cols, rows*maxPerRow)
	for i := 0; i < rows; i++ {
		nnz := 0
		if cols > 0 && maxPerRow > 0 {
			nnz = rng.Intn(maxPerRow + 1)
			if nnz > cols {
				nnz = cols
			}
		}
		seen := map[int]bool{}
		var cs []int
		for len(cs) < nnz {
			j := rng.Intn(cols)
			if !seen[j] {
				seen[j] = true
				cs = append(cs, j)
			}
		}
		sort.Ints(cs)
		for _, j := range cs {
			m.ColIdx = append(m.ColIdx, j)
			m.Val = append(m.Val, rng.NormFloat64())
		}
		m.RowPtr[i+1] = len(m.Val)
	}
	return m
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestSpMVBitwiseEquivalence checks that the optimized kernels reproduce
// the scalar reference bit-for-bit across every short-row shape
// (row lengths 0..maxPerRow for n = 0..17) and one large random case.
func TestSpMVBitwiseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	check := func(m *CSR) {
		t.Helper()
		x := randVec(rng, m.Cols)
		xt := randVec(rng, m.Rows)
		if m.Rows > 0 {
			xt[rng.Intn(m.Rows)] = 0 // exercise the zero-skip branch
		}
		y0 := randVec(rng, m.Rows)

		got, want := append([]float64(nil), y0...), append([]float64(nil), y0...)
		m.MulVec(got, x)
		refMulVec(m, want, x)
		if !sameBits(got, want) {
			t.Fatalf("MulVec differs from scalar reference for %s", m)
		}

		got, want = append([]float64(nil), y0...), append([]float64(nil), y0...)
		m.MulVecAdd(got, x)
		refMulVecAdd(m, want, x)
		if !sameBits(got, want) {
			t.Fatalf("MulVecAdd differs from scalar reference for %s", m)
		}

		gotT, wantT := randVec(rng, m.Cols), []float64(nil)
		wantT = append(wantT, gotT...)
		m.MulTransVecAdd(gotT, xt)
		refMulTransVecAdd(m, wantT, xt)
		if !sameBits(gotT, wantT) {
			t.Fatalf("MulTransVecAdd differs from scalar reference for %s", m)
		}
	}

	for n := 0; n <= 17; n++ {
		check(randCSR(rng, n, n, n))     // square, row lengths 0..n
		check(randCSR(rng, n, n+3, n+1)) // rectangular
	}
	check(randCSR(rng, 300, 280, 40)) // large random case
}
