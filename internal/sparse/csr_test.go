package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// denseOf expands a CSR matrix for reference computations.
func denseOf(m *CSR) [][]float64 {
	d := make([][]float64, m.Rows)
	for i := range d {
		d[i] = make([]float64, m.Cols)
		cols, vals := m.Row(i)
		for k, j := range cols {
			d[i][j] = vals[k]
		}
	}
	return d
}

// randomCSR builds a random sparse matrix via COO with the given density.
func randomCSR(rows, cols int, density float64, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

func TestCSRBasics(t *testing.T) {
	coo := NewCOO(3, 3)
	coo.Add(0, 0, 1)
	coo.Add(0, 2, 2)
	coo.Add(1, 1, 3)
	coo.Add(2, 0, 4)
	m := coo.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 4 {
		t.Fatalf("NNZ=%d", m.NNZ())
	}
	if m.At(0, 2) != 2 || m.At(0, 1) != 0 || m.At(2, 0) != 4 {
		t.Error("At returned wrong values")
	}
	if r, c := m.Dims(); r != 3 || c != 3 {
		t.Error("Dims wrong")
	}
	if m.RowNNZ(0) != 2 || m.RowNNZ(1) != 1 {
		t.Error("RowNNZ wrong")
	}
	if m.String() != "CSR 3x3 nnz=4" {
		t.Errorf("String()=%q", m.String())
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	m := NewCSR(2, 2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.At(2, 0)
}

func TestMulVecAgainstDense(t *testing.T) {
	m := randomCSR(17, 23, 0.2, 1)
	d := denseOf(m)
	x := make([]float64, 23)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	y := make([]float64, 17)
	m.MulVec(y, x)
	for i := range y {
		var want float64
		for j := range x {
			want += d[i][j] * x[j]
		}
		if math.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("row %d: got %g want %g", i, y[i], want)
		}
	}
}

func TestMulTransVecAgainstDense(t *testing.T) {
	m := randomCSR(11, 7, 0.3, 2)
	d := denseOf(m)
	x := make([]float64, 11)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	y := make([]float64, 7)
	m.MulTransVec(y, x)
	for j := range y {
		var want float64
		for i := range x {
			want += d[i][j] * x[i]
		}
		if math.Abs(y[j]-want) > 1e-12 {
			t.Fatalf("col %d: got %g want %g", j, y[j], want)
		}
	}
}

func TestMulVecAddAccumulates(t *testing.T) {
	m := randomCSR(5, 5, 0.5, 3)
	x := []float64{1, 2, 3, 4, 5}
	y1 := make([]float64, 5)
	m.MulVec(y1, x)
	y2 := []float64{1, 1, 1, 1, 1}
	m.MulVecAdd(y2, x)
	for i := range y1 {
		if math.Abs(y2[i]-(y1[i]+1)) > 1e-14 {
			t.Fatalf("MulVecAdd wrong at %d", i)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := randomCSR(13, 9, 0.25, 4)
	tt := m.Transpose().Transpose()
	if err := tt.Validate(); err != nil {
		t.Fatal(err)
	}
	if tt.Rows != m.Rows || tt.Cols != m.Cols || tt.NNZ() != m.NNZ() {
		t.Fatal("transpose changed shape")
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tt.At(i, j) {
				t.Fatalf("(%d,%d) differs", i, j)
			}
		}
	}
}

// Property: (Aᵀ x)·y == x·(A y) for random shapes.
func TestQuickTransposeAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(20)
		cols := 1 + rng.Intn(20)
		m := randomCSR(rows, cols, 0.3, seed)
		x := make([]float64, rows)
		y := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		atx := make([]float64, cols)
		m.MulTransVec(atx, x)
		ay := make([]float64, rows)
		m.MulVec(ay, y)
		var lhs, rhs float64
		for i := range atx {
			lhs += atx[i] * y[i]
		}
		for i := range ay {
			rhs += ay[i] * x[i]
		}
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIsSymmetric(t *testing.T) {
	coo := NewCOO(3, 3)
	coo.AddSym(0, 1, 2)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 1)
	coo.Add(2, 2, 1)
	if !coo.ToCSR().IsSymmetric(1e-14) {
		t.Error("symmetric matrix not detected")
	}
	coo2 := NewCOO(2, 2)
	coo2.Add(0, 1, 1)
	coo2.Add(1, 0, 2)
	coo2.Add(0, 0, 1)
	coo2.Add(1, 1, 1)
	if coo2.ToCSR().IsSymmetric(1e-14) {
		t.Error("asymmetric matrix reported symmetric")
	}
	rect := NewCSR(2, 3, 0)
	if rect.IsSymmetric(1e-14) {
		t.Error("rectangular matrix reported symmetric")
	}
}

func TestDiagAndScale(t *testing.T) {
	coo := NewCOO(3, 3)
	coo.Add(0, 0, 2)
	coo.Add(1, 1, 3)
	coo.Add(2, 1, 7)
	m := coo.ToCSR()
	d := m.Diag()
	if d[0] != 2 || d[1] != 3 || d[2] != 0 {
		t.Errorf("Diag got %v", d)
	}
	m.Scale(2)
	if m.At(2, 1) != 14 {
		t.Error("Scale failed")
	}
}

func TestGershgorinBounds(t *testing.T) {
	// tridiag(-1, 2, -1): eigenvalues in (0, 4); Gershgorin gives [0, 4].
	coo := NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		coo.Add(i, i, 2)
		if i+1 < 4 {
			coo.AddSym(i, i+1, -1)
		}
	}
	lo, hi := coo.ToCSR().GershgorinBounds()
	if lo != 0 || hi != 4 {
		t.Errorf("Gershgorin got [%g, %g] want [0, 4]", lo, hi)
	}
}

func TestCloneDeep(t *testing.T) {
	m := randomCSR(4, 4, 0.5, 5)
	c := m.Clone()
	if m.NNZ() == 0 {
		t.Skip("empty random draw")
	}
	c.Val[0] = 1e9
	if m.Val[0] == 1e9 {
		t.Error("Clone aliases values")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := randomCSR(5, 5, 0.5, 6)
	if m.NNZ() == 0 {
		t.Skip("empty random draw")
	}
	bad := m.Clone()
	bad.ColIdx[0] = 99
	if bad.Validate() == nil {
		t.Error("out-of-range column not caught")
	}
	bad2 := m.Clone()
	bad2.RowPtr[0] = 1
	if bad2.Validate() == nil {
		t.Error("bad RowPtr[0] not caught")
	}
	bad3 := m.Clone()
	bad3.RowPtr[bad3.Rows] = 0
	if bad3.Validate() == nil {
		t.Error("nnz mismatch not caught")
	}
}

func TestSpMVFlops(t *testing.T) {
	m := randomCSR(6, 6, 0.4, 7)
	if m.SpMVFlops() != 2*int64(m.NNZ()) {
		t.Error("SpMVFlops wrong")
	}
}
