package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Matrix Market I/O supports the "coordinate real general" and
// "coordinate real symmetric" formats used by the SuiteSparse collection
// the paper draws its matrices from. Symmetric files store only the lower
// triangle; reading expands them to full storage.

// WriteMatrixMarket writes m in coordinate real general format.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.ColIdx[k]+1, m.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a coordinate real matrix (general or symmetric).
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)

	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty Matrix Market stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("sparse: bad Matrix Market header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported format %q (only coordinate)", header[2])
	}
	if header[3] != "real" && header[3] != "integer" {
		return nil, fmt.Errorf("sparse: unsupported field %q (only real/integer)", header[3])
	}
	symmetric := false
	switch header[4] {
	case "general":
	case "symmetric":
		symmetric = true
	default:
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", header[4])
	}

	// Skip comments, find the size line.
	var rows, cols, nnz int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("sparse: missing size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %v", line, err)
		}
		break
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: negative size in header %d %d %d", rows, cols, nnz)
	}

	coo := NewCOO(rows, cols)
	read := 0
	for read < nnz {
		if !sc.Scan() {
			return nil, fmt.Errorf("sparse: expected %d entries, got %d", nnz, read)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %v", fields[0], err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad col index %q: %v", fields[1], err)
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("sparse: bad value %q: %v", fields[2], err)
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of bounds %dx%d", i, j, rows, cols)
		}
		if symmetric {
			coo.AddSym(i-1, j-1, v)
		} else {
			coo.Add(i-1, j-1, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	m := coo.ToCSR()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
