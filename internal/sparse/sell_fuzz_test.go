package sparse

import (
	"testing"
)

// FuzzSELLFromCSR checks CSR → SELL-C-σ conversion and the blocked SpMV
// kernel on arbitrary small matrices: the conversion must produce a
// structurally valid layout whose entries round-trip (every CSR entry
// present in its lane in CSR order, pads zero), and MulVec/MulVecAdd
// must reproduce CSR.MulVec/MulVecAdd bitwise — the values are exact
// small integers, so equality is exact regardless of magnitude.
func FuzzSELLFromCSR(f *testing.F) {
	f.Add([]byte{4, 4, 0, 0, 1, 1, 2, 3, 3, 1, 255}, uint8(8), uint8(64))
	f.Add([]byte{1, 1, 0, 0, 127}, uint8(1), uint8(1))
	f.Add([]byte{8, 8, 0, 7, 1, 7, 0, 2, 3, 3, 128, 0, 7, 1, 0, 7, 1}, uint8(3), uint8(5))
	f.Add([]byte{2, 3}, uint8(4), uint8(2)) // empty matrix
	f.Add([]byte{8, 2, 7, 0, 1, 6, 1, 2, 5, 0, 3}, uint8(2), uint8(16))
	f.Fuzz(func(t *testing.T, data []byte, cRaw, sigmaRaw uint8) {
		rows, cols, coo, _, x, _, ok := decodeMatrix(data)
		if !ok {
			return
		}
		m := coo.ToCSR()
		c := 1 + int(cRaw)%MaxSELLC
		sigma := 1 + int(sigmaRaw)%128
		s := NewSELLFromCSR(m, c, sigma)
		if err := s.Validate(); err != nil {
			t.Fatalf("C=%d sigma=%d: conversion produced invalid SELL: %v", c, sigma, err)
		}
		if s.Rows != rows || s.Cols != cols || s.NNZ() != m.NNZ() || s.SpMVFlops() != m.SpMVFlops() {
			t.Fatalf("C=%d sigma=%d: shape/nnz/flops drifted: %s vs %s", c, sigma, s, m)
		}

		// Round-trip: every lane must hold its source row's entries in
		// CSR order, and its pad slots must be zero-valued.
		seen := make([]bool, rows)
		for ch := 0; ch+1 < len(s.ChunkOff); ch++ {
			base := int(s.ChunkOff[ch])
			width := (int(s.ChunkOff[ch+1]) - base) / s.C
			for r := 0; r < s.C; r++ {
				row := s.OutRow[ch*s.C+r]
				n := int(s.LaneLen[ch*s.C+r])
				if row < 0 {
					continue
				}
				if seen[row] {
					t.Fatalf("row %d stored in two lanes", row)
				}
				seen[row] = true
				lo, hi := m.RowPtr[row], m.RowPtr[row+1]
				if n != hi-lo {
					t.Fatalf("row %d lane length %d, CSR has %d", row, n, hi-lo)
				}
				for j := 0; j < width; j++ {
					ci, v := s.ColIdx[base+j*s.C+r], s.Val[base+j*s.C+r]
					if j < n {
						if int(ci) != m.ColIdx[lo+j] || v != m.Val[lo+j] {
							t.Fatalf("row %d entry %d: lane has (%d,%g), CSR (%d,%g)",
								row, j, ci, v, m.ColIdx[lo+j], m.Val[lo+j])
						}
					} else if ci != 0 || v != 0 {
						t.Fatalf("row %d pad slot %d holds (%d,%g), want zeros", row, j, ci, v)
					}
				}
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("row %d has no lane", i)
			}
		}

		// Kernel equivalence, bitwise, against the CSR kernels.
		got, want := make([]float64, rows), make([]float64, rows)
		s.MulVec(got, x)
		m.MulVec(want, x)
		if !sameBits(got, want) {
			t.Fatalf("C=%d sigma=%d: MulVec differs from CSR", c, sigma)
		}
		s.MulVecAdd(got, x)
		m.MulVecAdd(want, x)
		if !sameBits(got, want) {
			t.Fatalf("C=%d sigma=%d: MulVecAdd differs from CSR", c, sigma)
		}
	})
}
