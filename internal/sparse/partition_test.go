package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPartitionSizes(t *testing.T) {
	pt := NewPartition(10, 3)
	if pt.Size(0) != 4 || pt.Size(1) != 3 || pt.Size(2) != 3 {
		t.Errorf("sizes %d %d %d", pt.Size(0), pt.Size(1), pt.Size(2))
	}
	if pt.Starts[3] != 10 {
		t.Error("Starts must end at N")
	}
}

// Property: every row is owned by exactly the block whose range covers it.
func TestQuickOwnerConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		p := 1 + rng.Intn(16)
		if p > n {
			p = n
		}
		pt := NewPartition(n, p)
		for i := 0; i < n; i++ {
			o := pt.Owner(i)
			lo, hi := pt.Range(o)
			if i < lo || i >= hi {
				return false
			}
		}
		// Sizes sum to n and are balanced within 1.
		minSz, maxSz := n, 0
		total := 0
		for b := 0; b < p; b++ {
			s := pt.Size(b)
			total += s
			if s < minSz {
				minSz = s
			}
			if s > maxSz {
				maxSz = s
			}
		}
		return total == n && maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSlice(t *testing.T) {
	pt := NewPartition(6, 2)
	x := []float64{0, 1, 2, 3, 4, 5}
	s := pt.Slice(x, 1)
	if len(s) != 3 || s[0] != 3 {
		t.Errorf("Slice got %v", s)
	}
	s[0] = 99
	if x[3] != 99 {
		t.Error("Slice must alias the input")
	}
}

// blockSPD builds a small random symmetric matrix for partition tests.
func blockSPD(n int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 10)
		for d := 1; d <= 3; d++ {
			if j := i + d; j < n && rng.Float64() < 0.6 {
				coo.AddSym(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

// TestBlockDecomposition checks RowBlock = DiagBlock + OffDiagBlock by
// applying all three to a vector.
func TestBlockDecomposition(t *testing.T) {
	n, p := 37, 5
	a := blockSPD(n, 1)
	pt := NewPartition(n, p)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(float64(i))
	}
	for b := 0; b < p; b++ {
		lo, hi := pt.Range(b)
		rb := pt.RowBlock(a, b)
		db := pt.DiagBlock(a, b)
		ob := pt.OffDiagBlock(a, b)
		if rb.NNZ() != db.NNZ()+ob.NNZ() {
			t.Fatalf("block %d: nnz %d != %d + %d", b, rb.NNZ(), db.NNZ(), ob.NNZ())
		}
		yr := make([]float64, hi-lo)
		rb.MulVec(yr, x)
		yd := make([]float64, hi-lo)
		db.MulVec(yd, x[lo:hi])
		yo := make([]float64, hi-lo)
		ob.MulVec(yo, x)
		for i := range yr {
			if math.Abs(yr[i]-(yd[i]+yo[i])) > 1e-12 {
				t.Fatalf("block %d row %d: %g != %g + %g", b, i, yr[i], yd[i], yo[i])
			}
		}
	}
}

// TestColBlockMatchesTransposedRowBlock verifies the symmetric-matrix
// identity A_{:,p} == (A_{p,:})ᵀ the optimized LSI path relies on.
func TestColBlockMatchesTransposedRowBlock(t *testing.T) {
	n, p := 29, 4
	a := blockSPD(n, 2)
	pt := NewPartition(n, p)
	for b := 0; b < p; b++ {
		cb := pt.ColBlock(a, b)
		rbT := pt.RowBlock(a, b).Transpose()
		if cb.Rows != rbT.Rows || cb.Cols != rbT.Cols || cb.NNZ() != rbT.NNZ() {
			t.Fatalf("block %d: shape mismatch", b)
		}
		for i := 0; i < cb.Rows; i++ {
			for j := 0; j < cb.Cols; j++ {
				if math.Abs(cb.At(i, j)-rbT.At(i, j)) > 1e-14 {
					t.Fatalf("block %d (%d,%d): %g != %g", b, i, j, cb.At(i, j), rbT.At(i, j))
				}
			}
		}
	}
}

func TestHaloCols(t *testing.T) {
	// Tridiagonal: each interior block needs exactly its two boundary
	// neighbors.
	n, p := 12, 3
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i+1 < n {
			coo.AddSym(i, i+1, -1)
		}
	}
	a := coo.ToCSR()
	pt := NewPartition(n, p)
	halo := pt.HaloCols(a, 1) // rows 4..7
	want := []int{3, 8}
	if len(halo) != len(want) {
		t.Fatalf("halo %v want %v", halo, want)
	}
	for i := range want {
		if halo[i] != want[i] {
			t.Fatalf("halo %v want %v", halo, want)
		}
	}
	// Edge blocks have one neighbor.
	if h := pt.HaloCols(a, 0); len(h) != 1 || h[0] != 4 {
		t.Errorf("block 0 halo %v", h)
	}
}

// Property: halo columns are exactly the off-diagonal block's column
// support.
func TestQuickHaloMatchesOffDiag(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		p := 2 + rng.Intn(5)
		a := blockSPD(n, seed)
		pt := NewPartition(n, p)
		for b := 0; b < p; b++ {
			halo := pt.HaloCols(a, b)
			set := map[int]bool{}
			for _, c := range halo {
				set[c] = true
			}
			ob := pt.OffDiagBlock(a, b)
			seen := map[int]bool{}
			for i := 0; i < ob.Rows; i++ {
				cols, _ := ob.Row(i)
				for _, c := range cols {
					seen[c] = true
					if !set[c] {
						return false
					}
				}
			}
			if len(seen) != len(set) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPartitionPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewPartition(-1, 2) },
		func() { NewPartition(4, 0) },
		func() { NewPartition(4, 2).Owner(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
