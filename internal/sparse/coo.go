package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format builder for sparse matrices. Duplicate
// entries are summed on conversion to CSR, which makes assembly of
// stencil and finite-element style matrices straightforward.
type COO struct {
	Rows, Cols int
	I, J       []int
	V          []float64
}

// NewCOO returns an empty builder for a rows x cols matrix.
func NewCOO(rows, cols int) *COO {
	return &COO{Rows: rows, Cols: cols}
}

// Add appends entry (i, j, v). Adding to the same coordinate twice
// accumulates on conversion.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		panic(fmt.Sprintf("sparse: COO.Add(%d,%d) out of bounds for %dx%d", i, j, c.Rows, c.Cols))
	}
	c.I = append(c.I, i)
	c.J = append(c.J, j)
	c.V = append(c.V, v)
}

// AddSym appends (i, j, v) and, when i != j, also (j, i, v). It is a
// convenience for assembling symmetric matrices.
func (c *COO) AddSym(i, j int, v float64) {
	c.Add(i, j, v)
	if i != j {
		c.Add(j, i, v)
	}
}

// NNZ returns the number of accumulated (possibly duplicate) entries.
func (c *COO) NNZ() int { return len(c.V) }

// ToCSR converts to CSR, summing duplicates and dropping exact zeros that
// result from cancellation only if dropZeros is true.
func (c *COO) ToCSR() *CSR {
	n := len(c.V)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if c.I[ia] != c.I[ib] {
			return c.I[ia] < c.I[ib]
		}
		return c.J[ia] < c.J[ib]
	})

	m := NewCSR(c.Rows, c.Cols, n)
	row := 0
	lastI, lastJ := -1, -1
	for _, k := range order {
		i, j, v := c.I[k], c.J[k], c.V[k]
		if i == lastI && j == lastJ {
			m.Val[len(m.Val)-1] += v
			continue
		}
		for row < i {
			row++
			m.RowPtr[row] = len(m.Val)
		}
		m.ColIdx = append(m.ColIdx, j)
		m.Val = append(m.Val, v)
		lastI, lastJ = i, j
	}
	for row < c.Rows {
		row++
		m.RowPtr[row] = len(m.Val)
	}
	return m
}
