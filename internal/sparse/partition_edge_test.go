package sparse

import "testing"

// TestPartitionDegenerate is the table-driven edge battery for the block-
// row partitioner: a single rank owning everything, one row per rank, and
// a one-row system. Every consistency property the fuzz target checks
// probabilistically is pinned here on the exact boundary shapes.
func TestPartitionDegenerate(t *testing.T) {
	cases := []struct {
		name string
		n, p int
	}{
		{"single-rank", 9, 1},
		{"single-rank-single-row", 1, 1},
		{"rank-per-row", 7, 7},
		{"two-rows-two-ranks", 2, 2},
		{"prime-split", 13, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pt := NewPartition(tc.n, tc.p)
			if len(pt.Starts) != tc.p+1 || pt.Starts[0] != 0 || pt.Starts[tc.p] != tc.n {
				t.Fatalf("Starts = %v, want %d boundaries covering [0, %d)", pt.Starts, tc.p+1, tc.n)
			}
			total, minSz, maxSz := 0, tc.n+1, -1
			for r := 0; r < tc.p; r++ {
				sz := pt.Size(r)
				if sz < 1 {
					t.Fatalf("rank %d owns %d rows; every rank must own at least one", r, sz)
				}
				total += sz
				if sz < minSz {
					minSz = sz
				}
				if sz > maxSz {
					maxSz = sz
				}
			}
			if total != tc.n {
				t.Fatalf("blocks cover %d rows, want %d", total, tc.n)
			}
			if maxSz-minSz > 1 {
				t.Fatalf("block sizes span [%d, %d], want balanced within 1", minSz, maxSz)
			}
			for i := 0; i < tc.n; i++ {
				r := pt.Owner(i)
				lo, hi := pt.Range(r)
				if i < lo || i >= hi {
					t.Fatalf("Owner(%d) = %d but Range(%d) = [%d, %d)", i, r, r, lo, hi)
				}
			}
		})
	}
}

// TestPartitionSingleRankBlocks: with p = 1 the rank's row block IS the
// matrix, its diagonal block IS the matrix, and its off-diagonal block
// and halo are empty — the distributed SpMV degenerates to the serial one.
func TestPartitionSingleRankBlocks(t *testing.T) {
	m := NewCOO(5, 5)
	for i := 0; i < 5; i++ {
		m.Add(i, i, 2)
		if i > 0 {
			m.Add(i, i-1, -1)
			m.Add(i-1, i, -1)
		}
	}
	a := m.ToCSR()
	pt := NewPartition(5, 1)

	rb := pt.RowBlock(a, 0)
	if rb.Rows != 5 || rb.Cols != 5 || rb.NNZ() != a.NNZ() {
		t.Fatalf("RowBlock(0) is %dx%d with %d nnz, want the whole 5x5 matrix with %d", rb.Rows, rb.Cols, rb.NNZ(), a.NNZ())
	}
	db := pt.DiagBlock(a, 0)
	if db.NNZ() != a.NNZ() {
		t.Fatalf("DiagBlock(0) has %d nnz, want all %d (nothing is off-diagonal for one rank)", db.NNZ(), a.NNZ())
	}
	ob := pt.OffDiagBlock(a, 0)
	if ob.NNZ() != 0 {
		t.Fatalf("OffDiagBlock(0) has %d nnz, want 0", ob.NNZ())
	}
	if halo := pt.HaloCols(a, 0); len(halo) != 0 {
		t.Fatalf("HaloCols(0) = %v, want empty (no remote columns exist)", halo)
	}
}
