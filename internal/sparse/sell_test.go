package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// sellShapes are the (C, sigma) pairs the equivalence tests sweep: the
// degenerate C=1 (pure CSR order), non-power-of-two heights, sigma
// smaller than C (rounded up), sigma not a multiple of C, and the
// default shape.
var sellShapes = [][2]int{{1, 1}, {2, 2}, {3, 7}, {4, 16}, {8, 5}, {DefaultSELLC, DefaultSELLSigma}}

// TestSELLBitwiseEquivalence pins the SELL kernels bitwise against
// CSR.MulVec/MulVecAdd across every short-row shape and chunk geometry,
// the same contract spmv_equiv_test.go pins for the hoisted CSR loops.
func TestSELLBitwiseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(m *CSR) {
		t.Helper()
		x := randVec(rng, m.Cols)
		y0 := randVec(rng, m.Rows)
		for _, sh := range sellShapes {
			s := NewSELLFromCSR(m, sh[0], sh[1])
			if err := s.Validate(); err != nil {
				t.Fatalf("C=%d sigma=%d: invalid SELL for %s: %v", sh[0], sh[1], m, err)
			}
			if s.NNZ() != m.NNZ() || s.SpMVFlops() != m.SpMVFlops() {
				t.Fatalf("C=%d sigma=%d: nnz/flops %d/%d, want %d/%d",
					sh[0], sh[1], s.NNZ(), s.SpMVFlops(), m.NNZ(), m.SpMVFlops())
			}
			got, want := append([]float64(nil), y0...), append([]float64(nil), y0...)
			s.MulVec(got, x)
			m.MulVec(want, x)
			if !sameBits(got, want) {
				t.Fatalf("C=%d sigma=%d: MulVec differs from CSR for %s", sh[0], sh[1], m)
			}
			got, want = append([]float64(nil), y0...), append([]float64(nil), y0...)
			s.MulVecAdd(got, x)
			m.MulVecAdd(want, x)
			if !sameBits(got, want) {
				t.Fatalf("C=%d sigma=%d: MulVecAdd differs from CSR for %s", sh[0], sh[1], m)
			}
		}
	}

	for n := 0; n <= 17; n++ {
		check(randCSR(rng, n, n, n))     // square, row lengths 0..n
		check(randCSR(rng, n, n+3, n+1)) // rectangular
	}
	check(randCSR(rng, 300, 280, 40)) // large: many windows and chunks
	check(randCSR(rng, 300, 300, 2))  // very sparse: mostly empty lanes
}

// TestSELLPadsNeverRead proves padding isolation the adversarial way:
// poison x with NaN everywhere, multiply a matrix whose rows reference
// only column 0, and demand finite results. If the kernel ever touched a
// pad slot (column 0, value 0) against NaN input, 0*NaN = NaN would leak
// into a sum.
func TestSELLPadsNeverRead(t *testing.T) {
	m := NewCSR(9, 4, 9)
	for i := 0; i < 9; i++ {
		// Ragged rows: lengths 1..3 so every chunk gets real padding.
		n := i%3 + 1
		for j := 0; j < n; j++ {
			m.ColIdx = append(m.ColIdx, j+1)
			m.Val = append(m.Val, float64(i+j+1))
		}
		m.RowPtr[i+1] = len(m.Val)
	}
	x := []float64{math.NaN(), 1, 2, 3} // column 0 poisoned: only pads point there
	for _, sh := range sellShapes {
		s := NewSELLFromCSR(m, sh[0], sh[1])
		y := make([]float64, 9)
		s.MulVec(y, x)
		for i, v := range y {
			if math.IsNaN(v) {
				t.Fatalf("C=%d sigma=%d: NaN leaked into row %d: pad slot was read", sh[0], sh[1], i)
			}
		}
	}
}

// TestSELLFromRowsScatter checks the composed output mapping: a packed
// row subset with explicit scatter targets must land results exactly
// where the equivalent per-row CSR products would.
func TestSELLFromRowsScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randCSR(rng, 40, 30, 6)
	// Take every third row, scattering to its original position.
	var rows []int
	for i := 0; i < m.Rows; i += 3 {
		rows = append(rows, i)
	}
	rowPtr := make([]int, len(rows)+1)
	var colIdx []int
	var val []float64
	for i, r := range rows {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		colIdx = append(colIdx, m.ColIdx[lo:hi]...)
		val = append(val, m.Val[lo:hi]...)
		rowPtr[i+1] = len(val)
	}
	s := NewSELLFromRows(len(rows), m.Cols, rowPtr, colIdx, val, rows, 4, 8)
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid SELL: %v", err)
	}
	x := randVec(rng, m.Cols)
	want := make([]float64, m.Rows)
	m.MulVec(want, x)
	got := make([]float64, m.Rows)
	for i := range got {
		got[i] = -1 // sentinel: rows outside the subset must stay untouched
	}
	s.MulVec(got, x)
	for i := range got {
		if i%3 == 0 {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("row %d: scatter product %v, CSR %v", i, got[i], want[i])
			}
		} else if got[i] != -1 {
			t.Fatalf("row %d outside subset was written: %v", i, got[i])
		}
	}
}

// TestSELLValidateRejects exercises the validator against corrupted
// layouts.
func TestSELLValidateRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fresh := func() *SELL { return NewSELLFromCSR(randCSR(rng, 20, 20, 5), 4, 8) }

	s := fresh()
	if len(s.LaneLen) > 1 && s.LaneLen[0] == 0 {
		s.LaneLen[0] = 1 // force a non-descending pair below
	}
	s.LaneLen[0], s.LaneLen[1] = 0, s.LaneLen[0]
	if s.Validate() == nil {
		t.Fatal("non-descending lane lengths must be rejected")
	}

	s = fresh()
	s.ChunkOff[len(s.ChunkOff)-1]++
	if s.Validate() == nil {
		t.Fatal("ChunkOff/storage mismatch must be rejected")
	}

	s = fresh()
	if len(s.ColIdx) > 0 {
		s.ColIdx[0] = uint32(s.Cols)
		if s.Validate() == nil {
			t.Fatal("out-of-range column must be rejected")
		}
	}
}
