package sparse

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	m := randomCSR(9, 7, 0.3, 11)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
		t.Fatalf("shape mismatch: %v vs %v", back, m)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if math.Abs(back.At(i, j)-m.At(i, j)) > 1e-15 {
				t.Fatalf("(%d,%d): %g != %g", i, j, back.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestQuickMatrixMarketRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		m := randomCSR(1+int(seed%13+13)%13, 1+int(seed%7+7)%7, 0.4, seed)
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			return false
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			return false
		}
		if back.NNZ() != m.NNZ() {
			return false
		}
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				if back.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestReadSymmetricExpansion(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 4
1 1 2.0
2 2 2.0
3 3 2.0
2 1 -1.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 5 {
		t.Fatalf("symmetric expansion NNZ=%d want 5", m.NNZ())
	}
	if m.At(0, 1) != -1 || m.At(1, 0) != -1 {
		t.Error("mirror entry missing")
	}
	if !m.IsSymmetric(1e-15) {
		t.Error("expanded matrix not symmetric")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "%%NotMatrixMarket\n1 1 0\n",
		"bad format":     "%%MatrixMarket matrix array real general\n1 1\n",
		"bad symmetry":   "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
		"missing size":   "%%MatrixMarket matrix coordinate real general\n",
		"short entries":  "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 5.0\n",
		"out of bounds":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 5.0\n",
		"bad value":      "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 zap\n",
		"bad row index":  "%%MatrixMarket matrix coordinate real general\n1 1 1\nx 1 1.0\n",
		"negative sizes": "%%MatrixMarket matrix coordinate real general\n-1 2 0\n",
	}
	for name, src := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% comment one

% comment two
2 2 2
1 1 1.5

% inline comment
2 2 2.5
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1.5 || m.At(1, 1) != 2.5 {
		t.Error("values wrong after comment skipping")
	}
}

func TestCOODuplicatesSum(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(0, 0, 2)
	coo.Add(1, 1, 5)
	m := coo.ToCSR()
	if m.NNZ() != 2 {
		t.Fatalf("NNZ=%d want 2", m.NNZ())
	}
	if m.At(0, 0) != 3 {
		t.Errorf("duplicate sum got %g", m.At(0, 0))
	}
}

func TestCOOEmptyRows(t *testing.T) {
	coo := NewCOO(5, 5)
	coo.Add(4, 4, 1)
	m := coo.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.RowNNZ(0) != 0 || m.RowNNZ(4) != 1 {
		t.Error("empty leading rows mishandled")
	}
}

func TestCOOAddPanicsOutOfBounds(t *testing.T) {
	coo := NewCOO(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	coo.Add(2, 0, 1)
}
