package model

import (
	"math"
	"testing"
	"testing/quick"
)

func baseParams() Params {
	return Params{
		TBase:  100,
		PBase:  1920, // 192 cores x 10 W
		N:      192,
		Lambda: 0.01, // one fault per 100 s: one expected fault per run
	}
}

func TestPredictFF(t *testing.T) {
	p := baseParams()
	pred, err := PredictFF(p)
	if err != nil {
		t.Fatal(err)
	}
	if pred.T != p.TBase || pred.P != p.PBase {
		t.Error("FF prediction must be the baseline")
	}
	if pred.E != p.TBase*p.PBase {
		t.Error("FF energy")
	}
}

func TestPredictRDEq12(t *testing.T) {
	p := baseParams()
	p.Replicas = 2
	pred, err := PredictRD(p)
	if err != nil {
		t.Fatal(err)
	}
	if pred.TRes != 0 {
		t.Error("RD has no time overhead")
	}
	if math.Abs(pred.PNorm(p)-2) > 1e-12 {
		t.Errorf("RD power %g want 2x", pred.PNorm(p))
	}
	if math.Abs(pred.EResNorm(p)-1) > 1e-12 {
		t.Errorf("RD E_res %g want 1", pred.EResNorm(p))
	}
	// TMR.
	p.Replicas = 3
	pred3, _ := PredictRD(p)
	if math.Abs(pred3.PNorm(p)-3) > 1e-12 {
		t.Error("TMR power must be 3x")
	}
}

func TestPredictCREq9to11(t *testing.T) {
	p := baseParams()
	p.TC = 0.5
	p.IC = 10
	p.PCkptFrac = 0.8
	pred, err := PredictCR(p)
	if err != nil {
		t.Fatal(err)
	}
	// T_chkpt = 0.5 * 100/10 = 5; T_lost = 10/2 * 0.01 * 100 = 5.
	if math.Abs(pred.TRes-10) > 1e-9 {
		t.Errorf("CR T_res %g want 10", pred.TRes)
	}
	wantE := 5*0.8*p.PBase + 5*p.PBase
	if math.Abs(pred.ERes-wantE) > 1e-6 {
		t.Errorf("CR E_res %g want %g", pred.ERes, wantE)
	}
	if pred.P >= p.PBase {
		t.Error("CR average power must dip below baseline (cheap checkpoints)")
	}
}

func TestPredictCRValidation(t *testing.T) {
	p := baseParams()
	if _, err := PredictCR(p); err == nil {
		t.Error("CR without TC/IC accepted")
	}
}

func TestPredictFWEq13to16(t *testing.T) {
	p := baseParams()
	p.TConst = 2
	p.ExtraFracPerFault = 0.05
	p.NTilde = 1
	p.PIdleFrac = 0.45
	pred, err := PredictFW(p)
	if err != nil {
		t.Fatal(err)
	}
	// lambda*T = 1 expected fault: T_const = 2, T_extra = 0.05*100 = 5.
	if math.Abs(pred.TRes-7) > 1e-9 {
		t.Errorf("FW T_res %g want 7", pred.TRes)
	}
	perCore := p.PBase / float64(p.N)
	pConst := perCore + 191*perCore*0.45
	wantE := pConst*2 + p.PBase*5
	if math.Abs(pred.ERes-wantE) > 1e-6 {
		t.Errorf("FW E_res %g want %g", pred.ERes, wantE)
	}
}

func TestPredictFWValidation(t *testing.T) {
	p := baseParams()
	p.PIdleFrac = 0 // invalid
	if _, err := PredictFW(p); err == nil {
		t.Error("FW without PIdleFrac accepted")
	}
	p = baseParams()
	p.PIdleFrac = 0.5
	p.NTilde = 1000
	if _, err := PredictFW(p); err == nil {
		t.Error("NTilde > N accepted")
	}
}

// Property: more faults (higher lambda) never reduce predicted overheads.
func TestQuickOverheadMonotoneInLambda(t *testing.T) {
	f := func(l1, l2 float64) bool {
		a := math.Mod(math.Abs(l1), 0.1)
		b := a + math.Mod(math.Abs(l2), 0.1)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		mk := func(lambda float64) Params {
			p := baseParams()
			p.Lambda = lambda
			p.TConst = 1
			p.ExtraFracPerFault = 0.02
			p.PIdleFrac = 0.45
			p.TC = 0.3
			p.IC = 8
			p.PCkptFrac = 0.8
			return p
		}
		fwA, err1 := PredictFW(mk(a))
		fwB, err2 := PredictFW(mk(b))
		crA, err3 := PredictCR(mk(a))
		crB, err4 := PredictCR(mk(b))
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return fwB.TRes >= fwA.TRes-1e-12 && fwB.ERes >= fwA.ERes-1e-12 &&
			crB.TRes >= crA.TRes-1e-12 && crB.ERes >= crA.ERes-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: E = P * T holds for every prediction.
func TestQuickEnergyIdentity(t *testing.T) {
	p := baseParams()
	p.TC, p.IC, p.PCkptFrac = 0.5, 10, 0.8
	p.TConst, p.ExtraFracPerFault, p.PIdleFrac = 1, 0.03, 0.45
	p.Replicas = 2
	preds := []func() (Prediction, error){
		func() (Prediction, error) { return PredictFF(p) },
		func() (Prediction, error) { return PredictRD(p) },
		func() (Prediction, error) { return PredictCR(p) },
		func() (Prediction, error) { return PredictFW(p) },
	}
	for i, mk := range preds {
		pred, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pred.E-pred.P*pred.T) > 1e-6*pred.E {
			t.Errorf("prediction %d: E=%g P*T=%g", i, pred.E, pred.P*pred.T)
		}
		if pred.T < p.TBase {
			t.Errorf("prediction %d: T below baseline", i)
		}
	}
}

func TestLambdaHelpers(t *testing.T) {
	if LambdaFromMTBF(100) != 0.01 {
		t.Error("LambdaFromMTBF")
	}
	if ExpectedFaults(0.01, 100) != 1 {
		t.Error("ExpectedFaults")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for MTBF<=0")
		}
	}()
	LambdaFromMTBF(0)
}

func TestValidateParams(t *testing.T) {
	bad := Params{TBase: -1, PBase: 1, N: 1}
	if _, err := PredictFF(bad); err == nil {
		t.Error("negative TBase accepted")
	}
	bad = baseParams()
	bad.Lambda = -1
	if _, err := PredictFF(bad); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestPredictESR(t *testing.T) {
	p := baseParams()
	p.PersistFrac = 0.05
	p.TConst = 2
	pred, err := PredictESR(p)
	if err != nil {
		t.Fatal(err)
	}
	// T_persist = 0.05*100 = 5; T_const = 0.01*100*2 = 2.
	if math.Abs(pred.TRes-7) > 1e-9 {
		t.Errorf("ESR T_res %g want 7", pred.TRes)
	}
	// All cores busy: E_res = PBase * T_res, so P stays at baseline.
	if math.Abs(pred.ERes-p.PBase*7) > 1e-6 {
		t.Errorf("ESR E_res %g want %g", pred.ERes, p.PBase*7)
	}
	if math.Abs(pred.P-p.PBase) > 1e-9 {
		t.Errorf("ESR average power %g want baseline %g", pred.P, p.PBase)
	}
	// Fault-free still pays the persist overhead — that is the trade.
	p.Lambda = 0
	pred0, _ := PredictESR(p)
	if math.Abs(pred0.TRes-5) > 1e-9 {
		t.Errorf("fault-free ESR T_res %g want 5 (persist only)", pred0.TRes)
	}
	p.PersistFrac = -1
	if _, err := PredictESR(p); err == nil {
		t.Error("negative persist fraction must be rejected")
	}
}

func TestPredictLCR(t *testing.T) {
	p := baseParams()
	p.TC = 0.5
	p.IC = 10
	p.PCkptFrac = 0.8
	p.CompressRatio = 8
	p.ExtraFracPerFault = 0.02
	pred, err := PredictLCR(p)
	if err != nil {
		t.Fatal(err)
	}
	// T_chkpt = (0.5/8)*100/10 = 0.625; T_lost = 5; T_extra = 1*0.02*100 = 2.
	if math.Abs(pred.TRes-7.625) > 1e-9 {
		t.Errorf("LCR T_res %g want 7.625", pred.TRes)
	}
	wantE := 0.625*0.8*p.PBase + 5*p.PBase + 2*p.PBase
	if math.Abs(pred.ERes-wantE) > 1e-6 {
		t.Errorf("LCR E_res %g want %g", pred.ERes, wantE)
	}
	// Without a re-convergence penalty the compressed checkpoints beat
	// plain CR outright; the penalty is what the trade-off is about.
	q := p
	q.ExtraFracPerFault = 0
	lcr0, _ := PredictLCR(q)
	cr, _ := PredictCR(q)
	if lcr0.TRes >= cr.TRes {
		t.Errorf("penalty-free LCR T_res %g not below CR's %g", lcr0.TRes, cr.TRes)
	}
	// Ratio 1 with no penalty degenerates to plain CR.
	q.CompressRatio = 1
	same, _ := PredictLCR(q)
	if math.Abs(same.TRes-cr.TRes) > 1e-12 || math.Abs(same.ERes-cr.ERes) > 1e-9 {
		t.Error("ratio-1 LCR must degenerate to CR")
	}
	p.CompressRatio = 0.5
	if _, err := PredictLCR(p); err == nil {
		t.Error("compression ratio below 1 must be rejected")
	}
}
