// Package model implements the paper's Section 3 analytical models: the
// generalized time/power/energy metrics (Eqs. 1–8) and the per-scheme
// resilience cost refinements (Eqs. 9–16). Parameters are extracted from
// measured runs (Section 5's methodology) and predictions are compared
// against measurements to validate the models (Table 6).
package model

import (
	"fmt"
)

// Params carries the model inputs for one workload/scheme configuration.
// All times in seconds, powers in watts, energies in joules.
type Params struct {
	// Fault-free baseline for the scaled workload w' on N cores.
	TBase float64 // T_solve + T_O(N)  (Eq. 2)
	PBase float64 // N * P_1(w)        (Eq. 4)
	N     int     // core count

	// Failure rate lambda, faults per second (Eq. 3).
	Lambda float64

	// Checkpoint/restart (Eqs. 9–11).
	TC float64 // per-checkpoint cost t_C
	IC float64 // checkpoint interval I_C, seconds
	// PCkptFrac is the power during checkpointing relative to PBase
	// (CPUs are under-utilized while checkpointing: < 1).
	PCkptFrac float64

	// Forward recovery (Eqs. 13–16).
	TConst float64 // per-reconstruction cost t_const
	// ExtraFracPerFault is the extra-iteration time per fault relative to
	// TBase (the workload/matrix-dependent convergence penalty).
	ExtraFracPerFault float64
	// NTilde is the number of cores actively constructing (1 for the
	// schemes under study).
	NTilde int
	// PIdleFrac is idle-core power relative to an active core during
	// construction (set from the platform curve; lower when DVFS parks
	// the idle cores at f_min).
	PIdleFrac float64

	// Redundancy degree for RD (2 for DMR).
	Replicas int

	// Exact state reconstruction (extension; arXiv:2007.04066).
	// PersistFrac is the per-iteration redundancy-persist overhead as a
	// fraction of TBase — the x/p buddy copies ESR streams out every
	// iteration, paid fault or no fault.
	PersistFrac float64

	// Lossy-compressed checkpointing (extension; arXiv:1804.11268).
	// CompressRatio divides the per-checkpoint cost t_C for LCR.
	CompressRatio float64
}

// Prediction is the model output for one scheme.
type Prediction struct {
	TRes float64 // resilience time overhead, seconds (T_res)
	ERes float64 // resilience energy overhead, joules (E_res)
	T    float64 // total time-to-solution (Eq. 3)
	E    float64 // total energy-to-solution (Eq. 8)
	P    float64 // average power E/T
}

// normalized view helpers.

// TResNorm returns T_res / TBase (the paper's Table 6 normalization).
func (p Prediction) TResNorm(base Params) float64 { return p.TRes / base.TBase }

// EResNorm returns E_res / EBase.
func (p Prediction) EResNorm(base Params) float64 {
	return p.ERes / (base.PBase * base.TBase)
}

// PNorm returns P / PBase.
func (p Prediction) PNorm(base Params) float64 { return p.P / base.PBase }

func (pr Prediction) String() string {
	return fmt.Sprintf("T_res=%.4g E_res=%.4g P=%.4g", pr.TRes, pr.ERes, pr.P)
}

func (p Params) validate() error {
	if p.TBase <= 0 || p.PBase <= 0 || p.N <= 0 {
		return fmt.Errorf("model: invalid baseline TBase=%g PBase=%g N=%d", p.TBase, p.PBase, p.N)
	}
	if p.Lambda < 0 {
		return fmt.Errorf("model: negative failure rate %g", p.Lambda)
	}
	return nil
}

// PredictFF returns the fault-free prediction (Eqs. 2, 4, 7).
func PredictFF(p Params) (Prediction, error) {
	if err := p.validate(); err != nil {
		return Prediction{}, err
	}
	e := p.PBase * p.TBase
	return Prediction{T: p.TBase, E: e, P: p.PBase}, nil
}

// PredictRD models dual (or N-) modular redundancy: no time overhead,
// Replicas× power for the full duration (Eq. 12).
func PredictRD(p Params) (Prediction, error) {
	if err := p.validate(); err != nil {
		return Prediction{}, err
	}
	r := float64(p.Replicas)
	if r < 2 {
		r = 2
	}
	e := r * p.PBase * p.TBase
	return Prediction{
		TRes: 0,
		ERes: (r - 1) * p.PBase * p.TBase,
		T:    p.TBase,
		E:    e,
		P:    e / p.TBase,
	}, nil
}

// PredictCR models checkpoint/restart (Eqs. 9–11):
//
//	T_chkpt = t_C * T/I_C        (Eq. 10)
//	T_lost  = (I_C/2) * λ * T    (Eq. 11)
//
// with T approximated by the fault-free TBase (first-order, as the paper
// does). Checkpointing runs at PCkptFrac * PBase; recomputation at PBase.
func PredictCR(p Params) (Prediction, error) {
	if err := p.validate(); err != nil {
		return Prediction{}, err
	}
	if p.TC <= 0 || p.IC <= 0 {
		return Prediction{}, fmt.Errorf("model: CR needs TC>0 and IC>0 (got %g, %g)", p.TC, p.IC)
	}
	ckptFrac := p.PCkptFrac
	if ckptFrac <= 0 {
		ckptFrac = 1
	}
	tChkpt := p.TC * p.TBase / p.IC
	tLost := p.IC / 2 * p.Lambda * p.TBase
	tRes := tChkpt + tLost
	eRes := tChkpt*ckptFrac*p.PBase + tLost*p.PBase
	t := p.TBase + tRes
	e := p.PBase*p.TBase + eRes
	return Prediction{TRes: tRes, ERes: eRes, T: t, E: e, P: e / t}, nil
}

// PredictFW models forward recovery (Eqs. 13–16):
//
//	T_const = λ * T * t_const                         (Eq. 14)
//	T_extra = (λ * T) * ExtraFracPerFault * TBase
//	P_const = Ñ*P_1 + (N-Ñ)*P_idle                    (Eq. 15)
//	E_res   = P_const*T_const + N*P_1*T_extra         (Eq. 16)
func PredictFW(p Params) (Prediction, error) {
	if err := p.validate(); err != nil {
		return Prediction{}, err
	}
	nTilde := p.NTilde
	if nTilde <= 0 {
		nTilde = 1
	}
	if nTilde > p.N {
		return Prediction{}, fmt.Errorf("model: NTilde %d > N %d", nTilde, p.N)
	}
	idleFrac := p.PIdleFrac
	if idleFrac <= 0 || idleFrac > 1 {
		return Prediction{}, fmt.Errorf("model: FW needs PIdleFrac in (0,1], got %g", idleFrac)
	}
	nFaults := p.Lambda * p.TBase
	tConst := nFaults * p.TConst
	tExtra := nFaults * p.ExtraFracPerFault * p.TBase
	tRes := tConst + tExtra

	perCore := p.PBase / float64(p.N)
	pConst := float64(nTilde)*perCore + float64(p.N-nTilde)*perCore*idleFrac
	eRes := pConst*tConst + p.PBase*tExtra
	t := p.TBase + tRes
	e := p.PBase*p.TBase + eRes
	return Prediction{TRes: tRes, ERes: eRes, T: t, E: e, P: e / t}, nil
}

// PredictESR models exact state reconstruction (extension;
// arXiv:2007.04066): a constant redundancy-persist overhead spread over
// every iteration, plus a per-fault reconstruction cost — and nothing
// else, because recovery is exact: no rollback, no lost work, no extra
// iterations. All cores stay busy throughout, so the overhead is charged
// at PBase:
//
//	T_persist = PersistFrac * TBase
//	T_const   = λ * T * t_const
//	E_res     = PBase * (T_persist + T_const)
func PredictESR(p Params) (Prediction, error) {
	if err := p.validate(); err != nil {
		return Prediction{}, err
	}
	if p.PersistFrac < 0 {
		return Prediction{}, fmt.Errorf("model: negative ESR persist fraction %g", p.PersistFrac)
	}
	tPersist := p.PersistFrac * p.TBase
	tConst := p.Lambda * p.TBase * p.TConst
	tRes := tPersist + tConst
	eRes := p.PBase * tRes
	t := p.TBase + tRes
	e := p.PBase*p.TBase + eRes
	return Prediction{TRes: tRes, ERes: eRes, T: t, E: e, P: e / t}, nil
}

// PredictLCR models lossy-compressed checkpoint/restart (extension;
// arXiv:1804.11268): plain CR with the
// per-checkpoint cost divided by the compression ratio, plus a
// re-convergence penalty per restore — restarting from an error-bounded
// decompressed iterate costs extra iterations, priced like the forward
// schemes' convergence penalty:
//
//	T_chkpt = (t_C/R) * T/I_C
//	T_lost  = (I_C/2) * λ * T
//	T_extra = (λ * T) * ExtraFracPerFault * TBase
func PredictLCR(p Params) (Prediction, error) {
	if p.CompressRatio < 1 {
		return Prediction{}, fmt.Errorf("model: LCR needs CompressRatio >= 1, got %g", p.CompressRatio)
	}
	q := p
	q.TC = p.TC / p.CompressRatio
	cr, err := PredictCR(q)
	if err != nil {
		return Prediction{}, err
	}
	tExtra := p.Lambda * p.TBase * p.ExtraFracPerFault * p.TBase
	tRes := cr.TRes + tExtra
	eRes := cr.ERes + p.PBase*tExtra
	t := p.TBase + tRes
	e := p.PBase*p.TBase + eRes
	return Prediction{TRes: tRes, ERes: eRes, T: t, E: e, P: e / t}, nil
}

// ExpectedFaults returns λ·T, the expected fault count over a duration.
func ExpectedFaults(lambda, t float64) float64 { return lambda * t }

// LambdaFromMTBF converts an MTBF in seconds to a rate.
func LambdaFromMTBF(mtbfSeconds float64) float64 {
	if mtbfSeconds <= 0 {
		panic(fmt.Sprintf("model: non-positive MTBF %g", mtbfSeconds))
	}
	return 1 / mtbfSeconds
}
