package model

import (
	"testing"

	"resilience/internal/core"
	"resilience/internal/fault"
	"resilience/internal/matgen"
	"resilience/internal/platform"
)

// fitFixture runs a small FF baseline and one scheme run for fitting.
func fitFixture(t *testing.T, spec core.SchemeSpec, keepSegs bool) (ff, run *core.RunReport, plat *platform.Platform) {
	t.Helper()
	a := matgen.BandedSPD(matgen.BandedOpts{N: 256, NNZPerRow: 7, Kappa: 400, Seed: 21})
	b, _ := matgen.RHS(a)
	plat = platform.Default()
	cfg := core.RunConfig{
		A: a, B: b, Ranks: 4, Plat: plat, Tol: 1e-10, MaxIters: 5000, Seed: 1,
	}
	var err error
	ff, err = core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.Scheme = spec
	c.KeepSegments = keepSegs
	ffIters := ff.Iters
	c.InjectorFactory = func() fault.Injector {
		return fault.NewSchedule(4, ffIters, 4, fault.SNF, 9)
	}
	run, err = core.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	return ff, run, plat
}

func TestBaseParams(t *testing.T) {
	ff, _, _ := fitFixture(t, core.SchemeSpec{Kind: core.LI}, false)
	p := BaseParams(ff)
	if p.TBase != ff.Time || p.PBase != ff.AvgPower || p.N != ff.Ranks {
		t.Error("BaseParams must mirror the FF run")
	}
}

func TestFitFWAndPredict(t *testing.T) {
	ff, run, plat := fitFixture(t, core.SchemeSpec{Kind: core.LI, DVFS: true}, true)
	params, err := FitFW(ff, run, plat, true)
	if err != nil {
		t.Fatal(err)
	}
	if params.Lambda <= 0 {
		t.Error("lambda not fitted")
	}
	if params.TConst <= 0 {
		t.Error("t_const not measured from reconstruction windows")
	}
	if params.PIdleFrac <= 0 || params.PIdleFrac >= 1 {
		t.Errorf("idle fraction %g", params.PIdleFrac)
	}
	pred, err := PredictFW(params)
	if err != nil {
		t.Fatal(err)
	}
	v := Validate("LI-DVFS", pred, BaseParams(ff), ff, run)
	// The model and the measurement must agree on the order of magnitude
	// of the overheads (the paper's Table 6 shows ~30% model error).
	if v.MeasTRes < 0 {
		t.Errorf("measured T_res %g negative", v.MeasTRes)
	}
	if v.ModelTRes <= 0 {
		t.Errorf("model T_res %g", v.ModelTRes)
	}
	if ratio := v.ModelTRes / v.MeasTRes; ratio < 0.2 || ratio > 5 {
		t.Errorf("model/measured T_res ratio %g out of range (model %g, meas %g)",
			ratio, v.ModelTRes, v.MeasTRes)
	}
}

func TestFitFWWithoutSegments(t *testing.T) {
	ff, run, plat := fitFixture(t, core.SchemeSpec{Kind: core.LI, DVFS: true}, false)
	params, err := FitFW(ff, run, plat, true)
	if err != nil {
		t.Fatal(err)
	}
	if params.TConst <= 0 {
		t.Error("t_const fallback from phase energy failed")
	}
}

func TestFitCRAndPredict(t *testing.T) {
	ff, run, plat := fitFixture(t, core.SchemeSpec{Kind: core.CRM, CkptEvery: 20}, false)
	params, err := FitCR(ff, run, plat, 20)
	if err != nil {
		t.Fatal(err)
	}
	if params.TC <= 0 || params.IC <= 0 {
		t.Errorf("t_C=%g I_C=%g", params.TC, params.IC)
	}
	pred, err := PredictCR(params)
	if err != nil {
		t.Fatal(err)
	}
	if pred.TRes <= 0 {
		t.Error("CR must predict positive overhead under faults")
	}
	v := Validate("CR-M", pred, BaseParams(ff), ff, run)
	if v.MeasERes < 0 {
		t.Errorf("measured E_res %g", v.MeasERes)
	}
}

func TestFitCRRejectsBadInput(t *testing.T) {
	ff, run, plat := fitFixture(t, core.SchemeSpec{Kind: core.CRM, CkptEvery: 20}, false)
	if _, err := FitCR(ff, ff, plat, 20); err == nil {
		t.Error("fault-free run accepted for CR fitting")
	}
	if _, err := FitCR(ff, run, plat, 0); err == nil {
		t.Error("zero interval accepted")
	}
	liRun := run
	liRun.Scheme = "LI"
	if _, err := FitCR(ff, liRun, plat, 20); err == nil {
		t.Error("non-CR scheme accepted")
	}
}

func TestFitRDValidatesAsPaper(t *testing.T) {
	ff, run, _ := fitFixture(t, core.SchemeSpec{Kind: core.RD}, false)
	pred, err := PredictRD(FitRD(ff, 2))
	if err != nil {
		t.Fatal(err)
	}
	v := Validate("RD", pred, BaseParams(ff), ff, run)
	// Table 6's RD row: T_res 0, P 2, E_res 1 — in both columns.
	if v.ModelTRes != 0 || v.ModelP != 2 || v.ModelERes != 1 {
		t.Errorf("model RD row: %+v", v)
	}
	if v.MeasTRes > 0.05 {
		t.Errorf("measured RD T_res %g want ~0", v.MeasTRes)
	}
	if v.MeasP < 1.9 || v.MeasP > 2.1 {
		t.Errorf("measured RD P %g want ~2", v.MeasP)
	}
}
