package model

import (
	"fmt"

	"resilience/internal/checkpoint"
	"resilience/internal/core"
	"resilience/internal/platform"
)

// Fitting follows the paper's Section 5 methodology: first-order model
// parameters are derived from measured (here: simulated) runs — t_C and
// t_const are measured per scheme, extra-iteration penalties are averaged
// and normalized against the fault-free case, power fractions come from
// the platform's calibrated curves.

// BaseParams extracts the fault-free baseline from a measured FF run.
func BaseParams(ff *core.RunReport) Params {
	return Params{
		TBase: ff.Time,
		PBase: ff.AvgPower,
		N:     ff.Ranks,
	}
}

// FitCR builds CR parameters from the FF baseline and a measured CR run.
// ckptEvery is the iteration interval used; the store kind is inferred
// from the scheme name.
func FitCR(ff, run *core.RunReport, plat *platform.Platform, ckptEvery int) (Params, error) {
	if len(run.Faults) == 0 {
		return Params{}, fmt.Errorf("model: FitCR needs a faulty run")
	}
	if ckptEvery <= 0 {
		return Params{}, fmt.Errorf("model: FitCR needs the checkpoint interval")
	}
	p := BaseParams(ff)
	p.Lambda = float64(len(run.Faults)) / run.Time

	iterTime := ff.Time / float64(ff.Iters)
	p.IC = float64(ckptEvery) * iterTime

	blockRows := (ff.Ranks - 1 + firstDim(ff)) / ff.Ranks
	bytes := int64(8 * blockRows)
	var store checkpoint.Store
	switch run.Scheme {
	case "CR-M":
		store = checkpoint.MemStore{Plat: plat}
		p.PCkptFrac = 1
	case "CR-D":
		store = checkpoint.DiskStore{Plat: plat}
		p.PCkptFrac = plat.PowerIdle(plat.FreqMax) / plat.PowerActive(plat.FreqMax)
	default:
		return Params{}, fmt.Errorf("model: FitCR on non-CR scheme %q", run.Scheme)
	}
	p.TC = store.WriteTime(bytes, ff.Ranks)
	return p, nil
}

// FitFW builds forward-recovery parameters from the FF baseline and a
// measured LI/LSI run. dvfs selects the idle-power level of the parked
// cores during construction.
func FitFW(ff, run *core.RunReport, plat *platform.Platform, dvfs bool) (Params, error) {
	n := len(run.Faults)
	if n == 0 {
		return Params{}, fmt.Errorf("model: FitFW needs a faulty run")
	}
	p := BaseParams(ff)
	p.Lambda = float64(n) / run.Time
	p.NTilde = 1

	// t_const: measured from the reconstruction phase windows when the
	// run kept power segments; otherwise derived from the reconstruct
	// phase energy at construction power.
	if run.Meter != nil {
		var total float64
		for _, w := range run.Meter.PhaseWindows("reconstruct") {
			total += w[1] - w[0]
		}
		p.TConst = total / float64(n)
	} else {
		eRecon := run.EnergyByPhase["reconstruct"]
		idle := plat.PowerIdle(freqParked(plat, dvfs))
		pConst := plat.PowerActive(plat.FreqMax) + float64(ff.Ranks-1)*idle
		if pConst > 0 {
			p.TConst = eRecon / pConst / float64(n)
		}
	}

	// Extra-iteration penalty per fault, normalized to the FF runtime.
	iterTime := ff.Time / float64(ff.Iters)
	extraTime := float64(run.Iters-ff.Iters) * iterTime
	if extraTime < 0 {
		extraTime = 0
	}
	p.ExtraFracPerFault = extraTime / float64(n) / ff.Time

	p.PIdleFrac = plat.PowerIdle(freqParked(plat, dvfs)) / plat.PowerActive(plat.FreqMax)
	return p, nil
}

// FitRD builds redundancy parameters from the FF baseline.
func FitRD(ff *core.RunReport, replicas int) Params {
	p := BaseParams(ff)
	p.Replicas = replicas
	return p
}

func freqParked(plat *platform.Platform, dvfs bool) float64 {
	if dvfs {
		return plat.FreqMin
	}
	return plat.FreqMax
}

// firstDim recovers the problem dimension from a report.
func firstDim(r *core.RunReport) int { return len(r.Solution) }

// Validation compares a model prediction against a measured run, both
// normalized to the FF baseline — one row of the paper's Table 6.
type Validation struct {
	Scheme string
	// Model-predicted, normalized to FF.
	ModelTRes, ModelP, ModelERes float64
	// Measured, normalized to FF.
	MeasTRes, MeasP, MeasERes float64
}

// Validate computes a Table 6 row from a prediction and measurements.
func Validate(scheme string, pred Prediction, base Params, ff, run *core.RunReport) Validation {
	// For every scheme (RD included) the resilience energy is whatever
	// exceeds one copy's fault-free energy; RD then measures E_res = 1,
	// matching the paper's Table 6.
	return Validation{
		Scheme:    scheme,
		ModelTRes: pred.TResNorm(base),
		ModelP:    pred.PNorm(base),
		ModelERes: pred.EResNorm(base),
		MeasTRes:  (run.Time - ff.Time) / ff.Time,
		MeasP:     run.AvgPower / ff.AvgPower,
		MeasERes:  (run.Energy - ff.Energy) / ff.Energy,
	}
}
