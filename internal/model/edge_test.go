package model

import (
	"math"
	"testing"
)

// baseParams is a plausible baseline for the edge tables: one second of
// fault-free solve on 16 cores at 100 W.
func edgeBase() Params {
	return Params{TBase: 1.0, PBase: 100.0, N: 16}
}

// TestZeroFaultCampaign: with Lambda = 0 (a campaign that injects no
// faults) every scheme's fault-proportional overhead must vanish exactly
// — not approximately — and the totals must collapse to the fault-free
// prediction. CR keeps its checkpoint-write tax (checkpoints are taken
// whether or not faults arrive); FW and the lost-work term must be
// identically zero.
func TestZeroFaultCampaign(t *testing.T) {
	base := edgeBase()
	base.Lambda = 0

	ff, err := PredictFF(base)
	if err != nil {
		t.Fatal(err)
	}
	if ff.T != base.TBase || ff.E != base.PBase*base.TBase {
		t.Fatalf("PredictFF at lambda=0: T=%g E=%g, want TBase=%g and PBase*TBase=%g",
			ff.T, ff.E, base.TBase, base.PBase*base.TBase)
	}

	p := base
	p.TConst = 0.05
	p.ExtraFracPerFault = 0.04
	p.NTilde = 1
	p.PIdleFrac = 0.5
	fw, err := PredictFW(p)
	if err != nil {
		t.Fatal(err)
	}
	if fw.TRes != 0 || fw.ERes != 0 {
		t.Errorf("PredictFW at lambda=0: TRes=%g ERes=%g, want exactly 0", fw.TRes, fw.ERes)
	}
	if fw.T != base.TBase || fw.E != ff.E {
		t.Errorf("PredictFW at lambda=0 must equal the fault-free totals: T=%g E=%g", fw.T, fw.E)
	}

	p = base
	p.TC = 0.01
	p.IC = 0.5
	p.PCkptFrac = 0.6
	cr, err := PredictCR(p)
	if err != nil {
		t.Fatal(err)
	}
	wantCkpt := p.TC * p.TBase / p.IC
	if cr.TRes != wantCkpt {
		t.Errorf("PredictCR at lambda=0: TRes=%g, want pure checkpoint tax %g (no lost work)", cr.TRes, wantCkpt)
	}
	if cr.ERes != wantCkpt*p.PCkptFrac*p.PBase {
		t.Errorf("PredictCR at lambda=0: ERes=%g, want %g", cr.ERes, wantCkpt*p.PCkptFrac*p.PBase)
	}
}

// TestMTBFLimits drives the predictions to both ends of the failure-rate
// axis via LambdaFromMTBF: a huge-but-finite MTBF (1e300 s — the ∞ limit;
// +Inf itself would make lambda exactly 0 and is covered above) and a
// tiny MTBF (faults nearly continuous). All outputs must stay finite, and
// overheads must be monotone in the rate.
func TestMTBFLimits(t *testing.T) {
	base := edgeBase()
	cases := []struct {
		name string
		mtbf float64
	}{
		{"mtbf-huge", 1e300},
		{"mtbf-1e9", 1e9},
		{"mtbf-1", 1},
		{"mtbf-1e-9", 1e-9},
	}
	var prevFW, prevCR float64
	prevFW, prevCR = -1, -1
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			p.Lambda = LambdaFromMTBF(tc.mtbf)

			fwp := p
			fwp.TConst = 0.05
			fwp.ExtraFracPerFault = 0.04
			fwp.NTilde = 1
			fwp.PIdleFrac = 0.5
			fw, err := PredictFW(fwp)
			if err != nil {
				t.Fatal(err)
			}
			crp := p
			crp.TC = 0.01
			crp.IC = YoungIntervalLike(crp.TC, tc.mtbf)
			crp.PCkptFrac = 0.6
			cr, err := PredictCR(crp)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range []struct {
				name string
				pred Prediction
			}{{"FW", fw}, {"CR", cr}} {
				for _, f := range []float64{v.pred.TRes, v.pred.ERes, v.pred.T, v.pred.E, v.pred.P} {
					if math.IsNaN(f) || math.IsInf(f, 0) {
						t.Fatalf("%s at MTBF %g produced non-finite prediction %+v", v.name, tc.mtbf, v.pred)
					}
				}
				if v.pred.TRes < 0 || v.pred.ERes < 0 {
					t.Fatalf("%s at MTBF %g: negative overhead %+v", v.name, tc.mtbf, v.pred)
				}
			}
			// The cases run from rare to frequent faults: overheads must
			// not decrease as the MTBF shrinks.
			if fw.TRes < prevFW || cr.TRes < prevCR {
				t.Fatalf("overhead not monotone in failure rate at MTBF %g: FW %g (prev %g), CR %g (prev %g)",
					tc.mtbf, fw.TRes, prevFW, cr.TRes, prevCR)
			}
			prevFW, prevCR = fw.TRes, cr.TRes
		})
	}
}

// YoungIntervalLike mirrors checkpoint.YoungInterval without importing the
// package (model must stay dependency-free below platform).
func YoungIntervalLike(tC, mtbf float64) float64 { return math.Sqrt(2 * tC * mtbf) }

// TestLambdaFromMTBFPanics: the conversion is undefined at or below zero.
func TestLambdaFromMTBFPanics(t *testing.T) {
	for _, mtbf := range []float64{0, -1, math.Inf(-1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LambdaFromMTBF(%g) did not panic", mtbf)
				}
			}()
			LambdaFromMTBF(mtbf)
		}()
	}
	// +Inf MTBF is a meaningful limit: a system that never faults.
	if got := LambdaFromMTBF(math.Inf(1)); got != 0 {
		t.Errorf("LambdaFromMTBF(+Inf) = %g, want exactly 0", got)
	}
}

// TestSingleCoreDegenerateParams: N = 1 is the single-rank partition
// degenerate case — FW's "other cores idle" term has no other cores, so
// construction power equals baseline power and the model must not divide
// into nonsense.
func TestSingleCoreDegenerateParams(t *testing.T) {
	p := Params{TBase: 1, PBase: 10, N: 1, Lambda: 0.5,
		TConst: 0.05, ExtraFracPerFault: 0.04, NTilde: 1, PIdleFrac: 0.5}
	fw, err := PredictFW(p)
	if err != nil {
		t.Fatal(err)
	}
	// With N == NTilde == 1 the idle term is empty: the construction runs
	// at exactly the baseline (= per-core) power.
	nFaults := p.Lambda * p.TBase
	tConst := nFaults * p.TConst
	tExtra := nFaults * p.ExtraFracPerFault * p.TBase
	wantERes := p.PBase*tConst + p.PBase*tExtra
	if fw.ERes != wantERes {
		t.Errorf("PredictFW N=1: ERes=%g, want %g (no idle-core discount possible)", fw.ERes, wantERes)
	}
	// NTilde beyond the machine is a configuration error, not a silent clamp.
	p.NTilde = 2
	if _, err := PredictFW(p); err == nil {
		t.Error("PredictFW with NTilde > N must fail")
	}
}
