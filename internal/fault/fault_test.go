package fault

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClassTaxonomy(t *testing.T) {
	soft := []Class{DCE, DUE, SDC}
	hard := []Class{SWO, SNF, LNF}
	for _, c := range soft {
		if !c.IsSoft() || c.IsHard() {
			t.Errorf("%v must be soft", c)
		}
	}
	for _, c := range hard {
		if !c.IsHard() || c.IsSoft() {
			t.Errorf("%v must be hard", c)
		}
	}
	if len(Classes()) != 6 {
		t.Error("six classes expected")
	}
	if SNF.String() != "SNF" || Class(99).String() == "SNF" {
		t.Error("String() wrong")
	}
}

func TestEffectOf(t *testing.T) {
	if EffectOf(SDC) != EffectCorrupt || EffectOf(DCE) != EffectCorrupt {
		t.Error("soft data corruption must corrupt")
	}
	for _, c := range []Class{DUE, SWO, SNF, LNF} {
		if EffectOf(c) != EffectLose {
			t.Errorf("%v must lose data", c)
		}
	}
}

func TestApplyLose(t *testing.T) {
	x := []float64{1, 2, 3}
	Apply(EffectLose, x, rand.New(rand.NewSource(1)))
	for _, v := range x {
		if v != 0 {
			t.Fatal("EffectLose must zero the block")
		}
	}
}

func TestApplyCorruptChangesData(t *testing.T) {
	x := make([]float64, 50)
	for i := range x {
		x[i] = 1
	}
	orig := append([]float64(nil), x...)
	Apply(EffectCorrupt, x, rand.New(rand.NewSource(2)))
	changed := 0
	for i := range x {
		if x[i] != orig[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Error("EffectCorrupt changed nothing")
	}
}

func TestApplyDeterministic(t *testing.T) {
	a := make([]float64, 20)
	b := make([]float64, 20)
	for i := range a {
		a[i], b[i] = float64(i), float64(i)
	}
	Apply(EffectCorrupt, a, rand.New(rand.NewSource(3)))
	Apply(EffectCorrupt, b, rand.New(rand.NewSource(3)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("corruption not deterministic in seed")
		}
	}
}

// --- MTBF / Figure 1 --------------------------------------------------

func TestSystemMTBFScaling(t *testing.T) {
	// System MTBF must scale inversely with node count.
	m1 := SystemMTBF(SNF, 1000, TechPetascale)
	m2 := SystemMTBF(SNF, 2000, TechPetascale)
	if math.Abs(m1/m2-2) > 1e-12 {
		t.Errorf("MTBF scaling %g", m1/m2)
	}
}

func TestFig1PaperClaims(t *testing.T) {
	// Hard-failure MTBF at petascale: the paper cites 1-7 days.
	snf := SystemMTBF(SNF, PetascaleNodes, TechPetascale)
	if snf < 24 || snf > 7*24 {
		t.Errorf("petascale SNF MTBF %g h, want 1-7 days", snf)
	}
	// Exascale: within an hour.
	snfEx := SystemMTBF(SNF, ExascaleNodes, TechExascale)
	if snfEx > 1.01 {
		t.Errorf("exascale SNF MTBF %g h, want <= ~1 h", snfEx)
	}
	rows := ProjectFig1()
	if len(rows) != 6 {
		t.Fatalf("Fig1 rows %d", len(rows))
	}
	for _, r := range rows {
		if r.ExascaleHours >= r.PetascaleHours {
			t.Errorf("%v: exascale MTBF must shrink (%g vs %g)",
				r.Class, r.ExascaleHours, r.PetascaleHours)
		}
	}
	// Combined MTBF is below every individual class MTBF.
	comb := CombinedSystemMTBF(PetascaleNodes, TechPetascale)
	for _, r := range rows {
		if comb > r.PetascaleHours {
			t.Errorf("combined %g exceeds %v %g", comb, r.Class, r.PetascaleHours)
		}
	}
}

func TestTechDegradationSoftWorse(t *testing.T) {
	// Miniaturization hurts soft faults more than hard ones.
	softRatio := NodeMTBF(SDC, TechPetascale) / NodeMTBF(SDC, TechExascale)
	hardRatio := NodeMTBF(SNF, TechPetascale) / NodeMTBF(SNF, TechExascale)
	if softRatio <= hardRatio {
		t.Errorf("soft degradation %g must exceed hard %g", softRatio, hardRatio)
	}
}

// --- injectors ---------------------------------------------------------

func TestScheduleEvenSpacing(t *testing.T) {
	s := NewSchedule(10, 1100, 8, SNF, 1)
	faults := s.Faults()
	if len(faults) != 10 {
		t.Fatalf("%d faults", len(faults))
	}
	for i, f := range faults {
		want := (i + 1) * 1100 / 11
		if f.Iter != want {
			t.Errorf("fault %d at iter %d want %d", i, f.Iter, want)
		}
		if f.Rank < 0 || f.Rank >= 8 {
			t.Errorf("fault %d on rank %d", i, f.Rank)
		}
	}
}

func TestScheduleCheckFiresOnce(t *testing.T) {
	s := NewSchedule(2, 100, 4, SNF, 1)
	fired := 0
	for iter := 0; iter <= 200; iter++ {
		if f := s.Check(iter, float64(iter)); f != nil {
			fired++
			if f.Time != float64(iter) {
				t.Error("fault time not stamped")
			}
		}
	}
	if fired != 2 {
		t.Errorf("fired %d", fired)
	}
	if s.Remaining() != 0 {
		t.Errorf("remaining %d", s.Remaining())
	}
}

func TestScheduleDeterministic(t *testing.T) {
	a := NewSchedule(5, 500, 16, SNF, 42).Faults()
	b := NewSchedule(5, 500, 16, SNF, 42).Faults()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("schedules differ for same seed")
		}
	}
}

func TestNewSingle(t *testing.T) {
	s := NewSingle(200, 3, SDC)
	if f := s.Check(100, 0); f != nil {
		t.Error("fired early")
	}
	f := s.Check(200, 1.5)
	if f == nil || f.Rank != 3 || f.Class != SDC {
		t.Fatalf("got %v", f)
	}
	if s.Check(201, 2) != nil {
		t.Error("fired twice")
	}
}

func TestPoissonRate(t *testing.T) {
	// Over a long horizon the empirical rate must match 1/MTBF.
	mtbf := 10.0
	p := NewPoisson(mtbf, 4, SNF, 7)
	horizon := 10000.0
	dt := 0.5 // iteration duration; several iterations per MTBF
	count := 0
	iter := 0
	for clock := 0.0; clock < horizon; clock += dt {
		if f := p.Check(iter, clock); f != nil {
			count++
		}
		iter++
	}
	expected := horizon / mtbf
	if math.Abs(float64(count)-expected) > 4*math.Sqrt(expected) {
		t.Errorf("Poisson count %d, expected ~%g", count, expected)
	}
}

func TestPoissonLimit(t *testing.T) {
	p := NewPoisson(0.001, 2, SNF, 1).WithLimit(3)
	count := 0
	for i := 0; i < 10000; i++ {
		if p.Check(i, float64(i)) != nil {
			count++
		}
	}
	if count != 3 {
		t.Errorf("limit ignored: %d faults", count)
	}
	if p.Remaining() != 0 {
		t.Errorf("remaining %d", p.Remaining())
	}
}

func TestPoissonAtMostOnePerCheck(t *testing.T) {
	// Even if many arrivals fall in one step, each Check yields one fault.
	p := NewPoisson(0.01, 2, SNF, 3)
	if f := p.Check(0, 1000); f == nil {
		t.Fatal("expected a fault")
	}
	// The next fault arrives on the next check, not the same one.
	if f := p.Check(1, 1000); f == nil {
		t.Fatal("back-to-back fault expected on next check")
	}
}

func TestNoneInjector(t *testing.T) {
	var n None
	if n.Check(0, 0) != nil || n.Remaining() != 0 {
		t.Error("None must never fire")
	}
}

// Property: schedule iterations are non-decreasing and within bounds.
func TestQuickScheduleSorted(t *testing.T) {
	f := func(seed int64) bool {
		count := 1 + int(seed%9+9)%9
		ff := 10 + int(seed%991+991)%991
		s := NewSchedule(count, ff, 4, SNF, seed)
		faults := s.Faults()
		prev := 0
		for _, fa := range faults {
			if fa.Iter < prev || fa.Iter < 1 || fa.Iter > ff {
				return false
			}
			prev = fa.Iter
		}
		return len(faults) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestScheduleClasses(t *testing.T) {
	classes := []Class{SNF, SNF, SWO}
	s := NewScheduleClasses(7, 700, 4, classes, 1)
	faults := s.Faults()
	if len(faults) != 7 {
		t.Fatalf("%d faults", len(faults))
	}
	for i, f := range faults {
		if f.Class != classes[i%3] {
			t.Errorf("fault %d class %v want %v", i, f.Class, classes[i%3])
		}
	}
}

func TestScheduleClassesPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewScheduleClasses(3, 100, 2, nil, 1)
}

func TestExpHours(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		d := ExpHours(100, rng)
		if d < 0 {
			t.Fatal("negative interarrival")
		}
		sum += d
	}
	mean := sum / n
	if mean < 90 || mean > 110 {
		t.Errorf("empirical mean %g, want ~100", mean)
	}
}
