package fault

import (
	"fmt"
	"math/rand"
	"sort"
)

// Injector decides when faults strike a run. Check is called once per
// solver iteration, at a point where all ranks hold identical virtual
// clocks (immediately after a collective), so every rank reaches the same
// decision without extra communication.
//
// Implementations must be deterministic functions of (iter, clock) and
// their seed.
type Injector interface {
	// Check returns the fault striking at this iteration, or nil.
	Check(iter int, clock float64) *Fault
	// Remaining returns how many more faults this injector can produce
	// (a negative value means unbounded).
	Remaining() int
}

// None is an injector that never fires (fault-free baseline).
type None struct{}

// Check implements Injector.
func (None) Check(int, float64) *Fault { return nil }

// Remaining implements Injector.
func (None) Remaining() int { return 0 }

// Schedule injects faults at predetermined iterations, the paper's
// Section 5.2 protocol: "10 faults are inserted evenly over the iterations
// required by the fault free execution (no more faults inserted after the
// fault free execution converges)".
type Schedule struct {
	faults []Fault
	next   int
}

// NewSchedule spreads `count` faults evenly over [1, ffIters], assigning
// each to a deterministic pseudo-random rank in [0, ranks).
func NewSchedule(count, ffIters, ranks int, class Class, seed int64) *Schedule {
	if count < 0 || ffIters <= 0 || ranks <= 0 {
		panic(fmt.Sprintf("fault: bad schedule count=%d ffIters=%d ranks=%d", count, ffIters, ranks))
	}
	rng := rand.New(rand.NewSource(seed))
	faults := make([]Fault, 0, count)
	for i := 1; i <= count; i++ {
		iter := i * ffIters / (count + 1)
		if iter < 1 {
			iter = 1
		}
		faults = append(faults, Fault{
			Class: class,
			Rank:  rng.Intn(ranks),
			Iter:  iter,
		})
	}
	// Evenly spaced iterations are already sorted; keep the invariant
	// explicit for safety with tiny ffIters where divisions collide.
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].Iter < faults[j].Iter })
	return &Schedule{faults: faults}
}

// NewScheduleClasses spreads `count` faults evenly like NewSchedule but
// cycles the fault class through the given list, producing mixed-class
// workloads (e.g. mostly node failures with occasional system-wide
// outages) for the multi-level checkpointing studies.
func NewScheduleClasses(count, ffIters, ranks int, classes []Class, seed int64) *Schedule {
	if len(classes) == 0 {
		panic("fault: NewScheduleClasses needs at least one class")
	}
	s := NewSchedule(count, ffIters, ranks, classes[0], seed)
	for i := range s.faults {
		s.faults[i].Class = classes[i%len(classes)]
	}
	return s
}

// NewScheduleAt schedules exactly the given faults at their explicit
// iterations and ranks (the chaos campaigns' injector: fault placement is
// part of the scenario, not derived from the fault-free iteration count).
// Faults are ordered stably by iteration; several faults at the same
// iteration fire on consecutive Check calls, which the solver boundary
// drains back-to-back — the "fault during recovery" case.
func NewScheduleAt(faults []Fault) *Schedule {
	fs := make([]Fault, len(faults))
	copy(fs, faults)
	for _, f := range fs {
		if f.Iter < 1 || f.Rank < 0 {
			panic(fmt.Sprintf("fault: bad scheduled fault %v (need Iter >= 1, Rank >= 0)", f))
		}
	}
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Iter < fs[j].Iter })
	return &Schedule{faults: fs}
}

// NewSingle schedules exactly one fault at the given iteration on the
// given rank (the paper's Figure 6(a): one fault at iteration 200).
func NewSingle(iter, rank int, class Class) *Schedule {
	return &Schedule{faults: []Fault{{Class: class, Rank: rank, Iter: iter}}}
}

// Check implements Injector. Multiple faults scheduled for the same
// iteration fire on consecutive Check calls.
func (s *Schedule) Check(iter int, clock float64) *Fault {
	if s.next >= len(s.faults) {
		return nil
	}
	f := s.faults[s.next]
	if iter < f.Iter {
		return nil
	}
	s.next++
	out := f
	out.Iter = iter
	out.Time = clock
	return &out
}

// Remaining implements Injector.
func (s *Schedule) Remaining() int { return len(s.faults) - s.next }

// Faults exposes the full schedule (for reports and tests).
func (s *Schedule) Faults() []Fault {
	out := make([]Fault, len(s.faults))
	copy(out, s.faults)
	return out
}

// Poisson injects faults as a Poisson process in virtual time with the
// given MTBF, the paper's Section 5.3 / Figure 3 protocol.
type Poisson struct {
	mtbf  float64 // seconds
	ranks int
	class Class
	rng   *rand.Rand
	next  float64
	fired int
	limit int // stop after this many faults; <0 unbounded
}

// NewPoisson draws exponential interarrivals with mean mtbfSeconds.
func NewPoisson(mtbfSeconds float64, ranks int, class Class, seed int64) *Poisson {
	if mtbfSeconds <= 0 || ranks <= 0 {
		panic(fmt.Sprintf("fault: bad poisson mtbf=%g ranks=%d", mtbfSeconds, ranks))
	}
	p := &Poisson{mtbf: mtbfSeconds, ranks: ranks, class: class,
		rng: rand.New(rand.NewSource(seed)), limit: -1}
	p.next = p.rng.ExpFloat64() * p.mtbf
	return p
}

// WithLimit caps the number of injected faults and returns p.
func (p *Poisson) WithLimit(n int) *Poisson {
	p.limit = n
	return p
}

// Check implements Injector. At most one fault is reported per iteration;
// if several arrivals fall inside one iteration they fire on subsequent
// iterations (back-to-back faults).
func (p *Poisson) Check(iter int, clock float64) *Fault {
	if p.limit >= 0 && p.fired >= p.limit {
		return nil
	}
	if clock < p.next {
		return nil
	}
	f := &Fault{
		Class: p.class,
		Rank:  p.rng.Intn(p.ranks),
		Iter:  iter,
		Time:  clock,
	}
	p.next += p.rng.ExpFloat64() * p.mtbf
	p.fired++
	return f
}

// Remaining implements Injector.
func (p *Poisson) Remaining() int {
	if p.limit < 0 {
		return -1
	}
	return p.limit - p.fired
}
