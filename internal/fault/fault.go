// Package fault provides the fault taxonomy of the paper's Section 2.1,
// MTBF estimation and projection (Figure 1), and fault injectors used by
// the resilient solver experiments (Section 5).
//
// Soft faults: Detected and Corrected Error (DCE), Detected but
// Uncorrected Error (DUE), Silent Data Corruption (SDC). Hard faults:
// System-Wide Outage (SWO), Single Node Failure (SNF), Link and Node
// Failure (LNF).
//
// The injected effect in all solver experiments follows the paper: the
// dynamic data x_{p_i} of one process is lost (hard fault) or corrupted
// (soft fault); static data A, b and the environment are assumed to be
// restored immediately (Section 3.2).
package fault

import (
	"fmt"
	"math"
	"math/rand"
)

// Class is a fault classification.
type Class int

// Fault classes, in the order the paper lists them.
const (
	DCE Class = iota // detected and corrected error (soft)
	DUE              // detected but uncorrected error (soft)
	SDC              // silent data corruption (soft)
	SWO              // system-wide outage (hard)
	SNF              // single node failure (hard)
	LNF              // link and node failure (hard)
)

var classNames = [...]string{"DCE", "DUE", "SDC", "SWO", "SNF", "LNF"}

func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// IsSoft reports whether the class is a soft fault.
func (c Class) IsSoft() bool { return c == DCE || c == DUE || c == SDC }

// IsHard reports whether the class is a hard fault.
func (c Class) IsHard() bool { return !c.IsSoft() }

// Classes returns all classes in presentation order.
func Classes() []Class { return []Class{DCE, DUE, SDC, SWO, SNF, LNF} }

// Fault is one injected fault event.
type Fault struct {
	Class Class
	Rank  int     // the process whose x block is affected
	Iter  int     // solver iteration at which it strikes
	Time  float64 // virtual time at which it strikes (seconds)
}

func (f Fault) String() string {
	return fmt.Sprintf("%s on rank %d at iter %d (t=%.3gs)", f.Class, f.Rank, f.Iter, f.Time)
}

// Effect describes what a fault does to the owned block of x.
type Effect int

const (
	// EffectLose zeroes the block and marks it lost — the hard-fault /
	// DUE case where the data is simply gone.
	EffectLose Effect = iota
	// EffectCorrupt perturbs the block with large-magnitude noise — the
	// SDC case where the data is silently wrong.
	EffectCorrupt
)

// EffectOf maps a fault class to its effect on dynamic data.
func EffectOf(c Class) Effect {
	if c == SDC || c == DCE {
		return EffectCorrupt
	}
	return EffectLose
}

// Apply destroys or corrupts the block in place according to the effect.
// The RNG makes corruption deterministic per fault.
func Apply(e Effect, block []float64, rng *rand.Rand) {
	switch e {
	case EffectLose:
		for i := range block {
			block[i] = 0
		}
	case EffectCorrupt:
		// Multi-bit upsets: scale and flip signs of a random subset, and
		// inject a few large outliers.
		for i := range block {
			switch rng.Intn(4) {
			case 0:
				block[i] = -block[i] * (1 + 10*rng.Float64())
			case 1:
				block[i] *= 1e6 * (rng.Float64() - 0.5)
			}
		}
		if len(block) > 0 {
			block[rng.Intn(len(block))] = 1e12 * (rng.Float64() - 0.5)
		}
	default:
		panic(fmt.Sprintf("fault: unknown effect %d", int(e)))
	}
}

// --- MTBF estimation (Figure 1) -------------------------------------

// Tech identifies the node technology generation used in the Figure 1
// projection.
type Tech int

const (
	// TechPetascale is "today's technology" in the paper: a petascale
	// machine of 20K compute nodes.
	TechPetascale Tech = iota
	// TechExascale is the projected 11 nm technology: 1M compute nodes,
	// with per-node reliability degraded by miniaturization and low-power
	// operation (Section 2.1, [5, 38]).
	TechExascale
)

// PetascaleNodes and ExascaleNodes are the system sizes the paper assumes.
const (
	PetascaleNodes = 20_000
	ExascaleNodes  = 1_000_000
)

// nodeMTBFHours gives per-node MTBF in hours for petascale-generation
// nodes, per fault class. The constants are calibrated so the projected
// system-level MTBFs land where the paper's Figure 1 puts them: hard
// failures every 1–7 days at petascale and within an hour at exascale.
var nodeMTBFHours = map[Class]float64{
	DCE: 50_000,     // corrected errors: every couple hours system-wide at petascale
	DUE: 500_000,    // uncorrected errors: roughly daily at petascale
	SDC: 1_000_000,  // silent corruptions: every ~2 days at petascale
	SWO: 14_400_000, // system-wide outages: monthly at petascale
	SNF: 2_000_000,  // node failures: every ~4 days at petascale
	LNF: 4_000_000,  // link+node failures: every ~8 days at petascale
}

// techDegradation is the per-node MTBF divisor when moving to 11 nm
// exascale technology. Soft faults worsen faster than hard faults with
// feature-size miniaturization and near-threshold operation.
func techDegradation(c Class, t Tech) float64 {
	if t == TechPetascale {
		return 1
	}
	if c.IsSoft() {
		return 4
	}
	return 2
}

// NodeMTBF returns the per-node MTBF in hours for a class and technology.
func NodeMTBF(c Class, t Tech) float64 {
	base, ok := nodeMTBFHours[c]
	if !ok {
		panic(fmt.Sprintf("fault: no MTBF table entry for %v", c))
	}
	return base / techDegradation(c, t)
}

// SystemMTBF returns the system-level MTBF in hours for `nodes` nodes,
// assuming independent exponential failures (system rate = sum of node
// rates), the method of [19, 38] the paper adopts.
func SystemMTBF(c Class, nodes int, t Tech) float64 {
	if nodes <= 0 {
		panic(fmt.Sprintf("fault: SystemMTBF with %d nodes", nodes))
	}
	return NodeMTBF(c, t) / float64(nodes)
}

// CombinedSystemMTBF aggregates all classes: rates add.
func CombinedSystemMTBF(nodes int, t Tech) float64 {
	var rate float64
	for _, c := range Classes() {
		rate += 1 / SystemMTBF(c, nodes, t)
	}
	return 1 / rate
}

// Fig1Row is one row of the Figure 1 projection.
type Fig1Row struct {
	Class          Class
	PetascaleHours float64 // system MTBF, 20K nodes, today's technology
	ExascaleHours  float64 // system MTBF, 1M nodes, 11nm technology
}

// ProjectFig1 reproduces Figure 1: estimated system MTBF per fault class
// for a petascale and an exascale machine.
func ProjectFig1() []Fig1Row {
	rows := make([]Fig1Row, 0, len(classNames))
	for _, c := range Classes() {
		rows = append(rows, Fig1Row{
			Class:          c,
			PetascaleHours: SystemMTBF(c, PetascaleNodes, TechPetascale),
			ExascaleHours:  SystemMTBF(c, ExascaleNodes, TechExascale),
		})
	}
	return rows
}

// ExpHours draws an exponential interarrival with the given MTBF.
func ExpHours(mtbfHours float64, rng *rand.Rand) float64 {
	return rng.ExpFloat64() * mtbfHours
}

// guard against accidental zero rates in projections.
var _ = math.Inf
