// Package report renders experiment results as aligned text tables, CSV,
// and ASCII charts, the presentation layer for the per-figure/table
// runners and CLIs.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; cells beyond the column count are dropped, missing
// cells are blank.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddF appends a row of formatted values: strings pass through, float64
// render with %.3g, ints with %d.
func (t *Table) AddF(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, FmtF(v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case int64:
			row = append(row, fmt.Sprintf("%d", v))
		case bool:
			row = append(row, fmt.Sprintf("%t", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.Add(row...)
}

// FmtF formats a float compactly for tables.
func FmtF(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 0.01 && math.Abs(v) < 10000:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// String renders the aligned table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes cells that need
// them).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Bars renders a labeled horizontal bar chart of non-negative values.
func Bars(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("report: Bars %d labels vs %d values", len(labels), len(values)))
	}
	if width <= 0 {
		width = 50
	}
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	lw := 0
	for _, l := range labels {
		if len(l) > lw {
			lw = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(math.Round(v / max * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s |%s %s\n", lw, labels[i], strings.Repeat("#", n), FmtF(v))
	}
	return b.String()
}

// Sparkline renders values as a one-line unicode mini chart, resampled to
// the given width.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, width)
	for i := 0; i < width; i++ {
		j := i * len(values) / width
		v := values[j]
		var lvl int
		if hi > lo {
			lvl = int((v - lo) / (hi - lo) * float64(len(levels)-1))
		}
		out[i] = levels[lvl]
	}
	return string(out)
}

// LogTicks returns human labels for power-of-two axis values.
func LogTicks(ns []int) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		switch {
		case n >= 1<<20 && n%(1<<20) == 0:
			out[i] = fmt.Sprintf("%dM", n>>20)
		case n >= 1<<10 && n%(1<<10) == 0:
			out[i] = fmt.Sprintf("%dK", n>>10)
		default:
			out[i] = fmt.Sprintf("%d", n)
		}
	}
	return out
}
