package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "A", "Blong", "C")
	tb.Add("1", "2", "3")
	tb.AddF("x", 1.5, 42)
	s := tb.String()
	if !strings.HasPrefix(s, "Title\n") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	// Columns align: header and rows share prefix widths.
	if !strings.Contains(lines[1], "A") || !strings.Contains(lines[1], "Blong") {
		t.Error("header wrong")
	}
	if !strings.Contains(lines[4], "1.5") || !strings.Contains(lines[4], "42") {
		t.Error("AddF formatting wrong")
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.Add("only")        // short row padded
	tb.Add("1", "2", "3") // long row truncated
	s := tb.String()
	if strings.Contains(s, "3") {
		t.Error("extra cell not dropped")
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("", "name", "value")
	tb.Add(`quo"te`, "a,b")
	csv := tb.CSV()
	if !strings.Contains(csv, `"quo""te"`) {
		t.Errorf("quote escaping wrong: %s", csv)
	}
	if !strings.Contains(csv, `"a,b"`) {
		t.Errorf("comma escaping wrong: %s", csv)
	}
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Errorf("header wrong: %s", csv)
	}
}

func TestFmtF(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5",
		2:       "2",
		0.001:   "0.001",
		123456:  "1.23e+05",
		1.23456: "1.235",
	}
	for in, want := range cases {
		if got := FmtF(in); got != want {
			t.Errorf("FmtF(%g)=%q want %q", in, got, want)
		}
	}
}

func TestBars(t *testing.T) {
	s := Bars("chart", []string{"a", "bb"}, []float64{1, 2}, 10)
	if !strings.Contains(s, "chart") || !strings.Contains(s, "##########") {
		t.Errorf("bars output:\n%s", s)
	}
	// Max value fills the width; half value fills half.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if !strings.Contains(lines[1], "#####") || strings.Contains(lines[1], "######") {
		t.Errorf("scaling wrong: %q", lines[1])
	}
}

func TestBarsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Bars("", []string{"a"}, []float64{1, 2}, 10)
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3}, 4)
	if len([]rune(s)) != 4 {
		t.Fatalf("width wrong: %q", s)
	}
	runes := []rune(s)
	if runes[0] >= runes[3] {
		t.Errorf("ascending data must produce ascending blocks: %q", s)
	}
	if Sparkline(nil, 5) != "" || Sparkline([]float64{1}, 0) != "" {
		t.Error("degenerate inputs must return empty")
	}
	// Constant series renders the lowest level without dividing by zero.
	flat := Sparkline([]float64{2, 2, 2}, 3)
	if len([]rune(flat)) != 3 {
		t.Error("flat series broken")
	}
}

func TestLogTicks(t *testing.T) {
	got := LogTicks([]int{512, 1024, 1 << 20, 3 << 20, 1500})
	want := []string{"512", "1K", "1M", "3M", "1500"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tick %d: %q want %q", i, got[i], want[i])
		}
	}
}
