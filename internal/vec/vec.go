// Package vec provides dense vector kernels (BLAS level-1 style) used by
// every solver in this repository, together with flop-count helpers that
// feed the virtual-time cost model.
//
// All kernels operate on []float64 and panic on length mismatch: a length
// mismatch is always a programming error in a solver, never a runtime
// condition to recover from.
package vec

import (
	"fmt"
	"math"
)

// checkLen panics if the two vectors differ in length.
func checkLen(op string, a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: %s length mismatch %d != %d", op, len(a), len(b)))
	}
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	checkLen("Dot", x, y)
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Nrm2 returns the Euclidean norm of x.
func Nrm2(x []float64) float64 {
	// Scaled sum of squares for robustness against overflow.
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	checkLen("Axpy", x, y)
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal scales x by alpha in place.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Copy copies src into dst.
func Copy(dst, src []float64) {
	checkLen("Copy", dst, src)
	copy(dst, src)
}

// Clone returns a fresh copy of x.
func Clone(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Zero sets every element of x to zero.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Sub computes dst = a - b.
func Sub(dst, a, b []float64) {
	checkLen("Sub", a, b)
	checkLen("Sub", dst, a)
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Add computes dst = a + b.
func Add(dst, a, b []float64) {
	checkLen("Add", a, b)
	checkLen("Add", dst, a)
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// DotAxpy computes y += alpha*x and returns the dot product of the
// updated y with z, in one pass. Each y[i] and the ascending-order dot
// accumulation are exactly those of Axpy followed by Dot, so the result
// is bitwise-identical to the unfused sequence. z may alias y.
func DotAxpy(alpha float64, x, y, z []float64) float64 {
	checkLen("DotAxpy", x, y)
	checkLen("DotAxpy", y, z)
	var s float64
	for i, v := range x {
		yi := y[i] + alpha*v
		y[i] = yi
		s += yi * z[i]
	}
	return s
}

// AxpyDot computes y += alpha*x and returns the squared 2-norm y·y of the
// updated y — the CG residual update fused with its following reduction.
// Bitwise-identical to Axpy(alpha, x, y) followed by Dot(y, y).
func AxpyDot(alpha float64, x, y []float64) float64 {
	checkLen("AxpyDot", x, y)
	var s float64
	for i, v := range x {
		yi := y[i] + alpha*v
		y[i] = yi
		s += yi * yi
	}
	return s
}

// Xpby computes y = x + beta*y in place (the CG direction update).
func Xpby(x []float64, beta float64, y []float64) {
	checkLen("Xpby", x, y)
	for i, v := range x {
		y[i] = v + beta*y[i]
	}
}

// MaxAbs returns the infinity norm of x.
func MaxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// AllFinite reports whether every entry of x is finite (no NaN or Inf).
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	checkLen("Dist2", a, b)
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Flop counts for the cost model. One fused multiply-add counts as two
// flops, matching the convention used in HPC benchmark reporting.

// DotFlops returns the flop count of a length-n dot product.
func DotFlops(n int) int64 { return 2 * int64(n) }

// AxpyFlops returns the flop count of a length-n axpy.
func AxpyFlops(n int) int64 { return 2 * int64(n) }

// Nrm2Flops returns the flop count of a length-n 2-norm.
func Nrm2Flops(n int) int64 { return 2 * int64(n) }
