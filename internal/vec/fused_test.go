package vec

import (
	"math"
	"math/rand"
	"testing"
)

func randSlice(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestFusedKernelsBitwiseEquivalence checks that DotAxpy and AxpyDot are
// bitwise-identical to the unfused Axpy-then-Dot sequence across every
// remainder length and a large random case.
func TestFusedKernelsBitwiseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := make([]int, 0, 19)
	for n := 0; n <= 17; n++ {
		lengths = append(lengths, n)
	}
	lengths = append(lengths, 4099)

	for _, n := range lengths {
		alpha := rng.NormFloat64()
		x := randSlice(rng, n)
		y0 := randSlice(rng, n)
		z := randSlice(rng, n)

		// Reference: separate Axpy then Dot.
		yRef := append([]float64(nil), y0...)
		Axpy(alpha, x, yRef)
		wantYZ := Dot(yRef, z)
		wantYY := Dot(yRef, yRef)

		y := append([]float64(nil), y0...)
		gotYZ := DotAxpy(alpha, x, y, z)
		if math.Float64bits(gotYZ) != math.Float64bits(wantYZ) {
			t.Fatalf("n=%d: DotAxpy dot %v != reference %v", n, gotYZ, wantYZ)
		}
		for i := range y {
			if math.Float64bits(y[i]) != math.Float64bits(yRef[i]) {
				t.Fatalf("n=%d: DotAxpy y[%d]=%v != reference %v", n, i, y[i], yRef[i])
			}
		}

		y = append([]float64(nil), y0...)
		gotYY := AxpyDot(alpha, x, y)
		if math.Float64bits(gotYY) != math.Float64bits(wantYY) {
			t.Fatalf("n=%d: AxpyDot dot %v != reference %v", n, gotYY, wantYY)
		}
		for i := range y {
			if math.Float64bits(y[i]) != math.Float64bits(yRef[i]) {
				t.Fatalf("n=%d: AxpyDot y[%d]=%v != reference %v", n, i, y[i], yRef[i])
			}
		}

		// DotAxpy with z aliasing y must equal AxpyDot.
		y = append([]float64(nil), y0...)
		gotAlias := DotAxpy(alpha, x, y, y)
		if math.Float64bits(gotAlias) != math.Float64bits(wantYY) {
			t.Fatalf("n=%d: DotAxpy(y,y) %v != Dot(y,y) reference %v", n, gotAlias, wantYY)
		}
	}
}
