package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestDot(t *testing.T) {
	cases := []struct {
		x, y []float64
		want float64
	}{
		{nil, nil, 0},
		{[]float64{1}, []float64{2}, 2},
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{-1, 1}, []float64{1, 1}, 0},
	}
	for _, c := range cases {
		if got := Dot(c.x, c.y); got != c.want {
			t.Errorf("Dot(%v,%v)=%g want %g", c.x, c.y, got, c.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNrm2(t *testing.T) {
	if got := Nrm2([]float64{3, 4}); !almostEq(got, 5, 1e-15) {
		t.Errorf("Nrm2{3,4}=%g want 5", got)
	}
	if got := Nrm2(nil); got != 0 {
		t.Errorf("Nrm2(nil)=%g want 0", got)
	}
	// Overflow robustness: naive sum of squares would overflow.
	big := []float64{1e200, 1e200}
	if got := Nrm2(big); math.IsInf(got, 0) || !almostEq(got, 1e200*math.Sqrt2, 1e-12) {
		t.Errorf("Nrm2 overflow-robustness failed: %g", got)
	}
}

func TestAxpyScalCopy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy got %v want %v", y, want)
		}
	}
	Scal(0.5, y)
	for i := range y {
		if y[i] != want[i]/2 {
			t.Fatalf("Scal got %v", y)
		}
	}
	dst := make([]float64, 3)
	Copy(dst, y)
	for i := range dst {
		if dst[i] != y[i] {
			t.Fatalf("Copy got %v want %v", dst, y)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	x := []float64{1, 2}
	c := Clone(x)
	c[0] = 99
	if x[0] != 1 {
		t.Error("Clone aliases its input")
	}
}

func TestSubAddXpby(t *testing.T) {
	a := []float64{5, 7}
	b := []float64{2, 3}
	d := make([]float64, 2)
	Sub(d, a, b)
	if d[0] != 3 || d[1] != 4 {
		t.Errorf("Sub got %v", d)
	}
	Add(d, a, b)
	if d[0] != 7 || d[1] != 10 {
		t.Errorf("Add got %v", d)
	}
	y := []float64{1, 1}
	Xpby(a, 2, y) // y = a + 2*y
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Xpby got %v", y)
	}
}

func TestFillZeroMaxAbs(t *testing.T) {
	x := make([]float64, 4)
	Fill(x, -2.5)
	if MaxAbs(x) != 2.5 {
		t.Errorf("MaxAbs got %g", MaxAbs(x))
	}
	Zero(x)
	if MaxAbs(x) != 0 {
		t.Errorf("Zero failed: %v", x)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Error("finite vector reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Error("NaN not detected")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Error("Inf not detected")
	}
}

func TestDist2(t *testing.T) {
	if got := Dist2([]float64{0, 0}, []float64{3, 4}); !almostEq(got, 5, 1e-15) {
		t.Errorf("Dist2 got %g", got)
	}
}

// Property: Dot is symmetric and bilinear (quick-check).
func TestQuickDotSymmetry(t *testing.T) {
	f := func(xs []float64) bool {
		// Clamp to avoid Inf-Inf = NaN in the reference comparison.
		for i := range xs {
			if math.Abs(xs[i]) > 1e100 || math.IsNaN(xs[i]) {
				xs[i] = 1
			}
		}
		ys := make([]float64, len(xs))
		for i := range ys {
			ys[i] = float64(i) - 1.5
		}
		return Dot(xs, ys) == Dot(ys, xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ||x||² == Dot(x, x) within rounding.
func TestQuickNrm2MatchesDot(t *testing.T) {
	f := func(xs []float64) bool {
		// Clamp inputs to a sane range to avoid overflow in Dot (Nrm2 is
		// robust but Dot is not, by design).
		for i := range xs {
			if math.Abs(xs[i]) > 1e100 || math.IsNaN(xs[i]) {
				xs[i] = 1
			}
		}
		n := Nrm2(xs)
		return almostEq(n*n, Dot(xs, xs), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Axpy(-1, x, x') zeroes a copy of x.
func TestQuickAxpySelfCancel(t *testing.T) {
	f := func(xs []float64) bool {
		y := Clone(xs)
		Axpy(-1, xs, y)
		return MaxAbs(y) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlopCounts(t *testing.T) {
	if DotFlops(10) != 20 || AxpyFlops(10) != 20 || Nrm2Flops(10) != 20 {
		t.Error("flop count helpers changed unexpectedly")
	}
}
