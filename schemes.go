package resilience

import (
	"fmt"
	"strings"

	"resilience/internal/core"
	"resilience/internal/recovery"
)

// SchemeNames lists the recognized scheme names in presentation order.
func SchemeNames() []string {
	return []string{
		"FF", "F0", "FI",
		"LI", "LI-DVFS", "LI(LU)",
		"LSI", "LSI-DVFS", "LSI(QR)",
		"CR-M", "CR-D", "CR-2L", "LCR", "RD", "TMR", "ESR",
	}
}

// ParseScheme resolves a scheme name (case-insensitive) to its spec.
func ParseScheme(name string) (core.SchemeSpec, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "FF", "":
		return core.SchemeSpec{Kind: core.FF}, nil
	case "F0":
		return core.SchemeSpec{Kind: core.F0}, nil
	case "FI":
		return core.SchemeSpec{Kind: core.FI}, nil
	case "LI":
		return core.SchemeSpec{Kind: core.LI}, nil
	case "LI-DVFS":
		return core.SchemeSpec{Kind: core.LI, DVFS: true}, nil
	case "LI(LU)", "LI-LU":
		return core.SchemeSpec{Kind: core.LI, Construct: recovery.ConstructExact}, nil
	case "LSI":
		return core.SchemeSpec{Kind: core.LSI}, nil
	case "LSI-DVFS":
		return core.SchemeSpec{Kind: core.LSI, DVFS: true}, nil
	case "LSI(QR)", "LSI-QR":
		return core.SchemeSpec{Kind: core.LSI, Construct: recovery.ConstructExact}, nil
	case "CR-M", "CRM":
		return core.SchemeSpec{Kind: core.CRM}, nil
	case "CR-D", "CRD":
		return core.SchemeSpec{Kind: core.CRD}, nil
	case "CR-2L", "CR2L":
		return core.SchemeSpec{Kind: core.CR2L}, nil
	case "LCR":
		return core.SchemeSpec{Kind: core.LCR}, nil
	case "RD", "DMR":
		return core.SchemeSpec{Kind: core.RD}, nil
	case "TMR":
		return core.SchemeSpec{Kind: core.TMR}, nil
	case "ESR":
		return core.SchemeSpec{Kind: core.ESR}, nil
	}
	return core.SchemeSpec{}, fmt.Errorf("resilience: unknown scheme %q (known: %s)",
		name, strings.Join(SchemeNames(), ", "))
}
